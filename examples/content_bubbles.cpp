// Content bubbles in action: follow one satellite around its orbit and watch
// its cache being re-filled with regionally popular content as it crosses
// regions -- "the infrastructure moves but the content remains accessible"
// (paper section 5).
//
//   $ ./examples/content_bubbles
#include <iostream>
#include <map>

#include "cdn/popularity.hpp"
#include "data/datasets.hpp"
#include "sim/world.hpp"
#include "spacecdn/bubbles.hpp"
#include "util/table.hpp"

int main() {
  using namespace spacecdn;

  des::Rng rng(3);
  const cdn::ContentCatalog catalog({.object_count = 5000}, rng);
  cdn::PopularityConfig pop_cfg;
  pop_cfg.global_share = 0.1;
  const cdn::RegionalPopularity popularity(catalog.size(), pop_cfg);

  sim::World world;
  const orbit::WalkerConstellation& shell = world.constellation();
  space::SatelliteFleet fleet = world.make_fleet(
      space::FleetConfig{Megabytes{8000.0}, cdn::CachePolicy::kLru});
  space::BubbleConfig bubble_cfg;
  bubble_cfg.prefetch_top_k = 300;
  const space::ContentBubbleManager bubbles(catalog, popularity, bubble_cfg);

  // Follow one satellite for a full orbital period (~95 minutes).
  const std::uint32_t sat = 100;
  const auto period_min = shell.orbit(sat).period().value() / 60000.0;
  std::cout << "following satellite " << sat << " for one orbit (" << period_min
            << " minutes)\n\n";

  ConsoleTable table({"t (min)", "sub-satellite point", "nearest metro", "region",
                      "objects prefetched", "cache objects"});
  for (double t_min = 0.0; t_min < period_min; t_min += 8.0) {
    const Milliseconds t = Milliseconds::from_minutes(t_min);
    const geo::GeoPoint sub = shell.orbit(sat).subsatellite_point(t);
    const auto& metro = data::nearest_city(sub);
    const data::Region region = bubbles.region_under(sub);
    const auto inserted = bubbles.refresh(fleet, sat, sub, t);
    table.add_row({ConsoleTable::format_fixed(t_min, 0),
                   ConsoleTable::format_fixed(sub.lat_deg, 1) + ", " +
                       ConsoleTable::format_fixed(sub.lon_deg, 1),
                   std::string(metro.name), std::string(data::to_string(region)),
                   std::to_string(inserted),
                   std::to_string(fleet.cache(sat).object_count())});
  }
  table.render(std::cout);

  std::cout << "\nEach region crossing swaps the cached head: the satellite "
               "arrives over a region already carrying its popular content.\n";
  return 0;
}
