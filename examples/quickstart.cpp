// Quickstart: build the Starlink Shell-1 model, place content on the
// constellation, and fetch it through the three-tier SpaceCDN router.
//
//   $ ./examples/quickstart
//
// Walks through the library's core objects in ~60 lines of user code.
#include <iostream>

#include "cdn/deployment.hpp"
#include "data/datasets.hpp"
#include "sim/world.hpp"
#include "spacecdn/placement.hpp"
#include "spacecdn/router.hpp"

int main() {
  using namespace spacecdn;

  // 1. The LEO ISP: Starlink Shell 1 (72 planes x 22 satellites at 550 km),
  //    ground stations, PoPs, and the bent-pipe router -- all built by the
  //    scenario engine's default world.
  sim::World world;
  lsn::StarlinkNetwork& network = world.network();
  std::cout << "constellation: " << network.constellation().size() << " satellites, "
            << network.ground().gateway_count() << " gateways, "
            << network.ground().pop_count() << " PoPs\n";

  // 2. A client in Maputo, Mozambique -- the paper's flagship vantage point.
  const auto& city = data::city("Maputo");
  const auto& country = data::country(city.country_code);
  const geo::GeoPoint client = data::location(city);

  // Today's path: bent pipe to the assigned PoP (Frankfurt!), then on to the
  // anycast CDN.
  const auto route = network.router().route_to_pop(client, country);
  if (route) {
    std::cout << "bent-pipe route: serving sat " << route->serving_satellite << " --["
              << route->isl_hops << " ISL hops]--> gateway '"
              << network.ground().gateway(route->gateway).name << "' -> PoP '"
              << network.ground().pop(route->pop).key << "', baseline RTT "
              << network.baseline_rtt(*route) << "\n";
  }

  // 3. SpaceCDN: give every satellite a cache and replicate one object four
  //    times per orbital plane (the paper's 5-hop-reachability recipe).
  space::SatelliteFleet& fleet = world.fleet();
  space::PlacementConfig placement_cfg;
  placement_cfg.copies_per_plane = 4;
  const space::ContentPlacement placement(network.constellation(), placement_cfg);

  const cdn::ContentItem video{/*id=*/1, Megabytes{250.0}, data::Region::kAfrica};
  placement.place(fleet, video, Milliseconds{0.0});
  std::cout << "placed " << placement.replicas(video.id).size() << " replicas of object "
            << video.id << " across the constellation\n";

  // 4. Fetch through the three-tier router (overhead satellite -> ISL
  //    neighbourhood -> ground CDN).
  cdn::CdnDeployment& ground_cdn = world.ground_cdn();
  space::SpaceCdnRouter router(network, fleet, ground_cdn);
  des::Rng rng(1);

  const auto result = router.fetch(client, country, video, rng, Milliseconds{0.0});
  if (result) {
    std::cout << "SpaceCDN fetch: tier=" << space::to_string(result->tier)
              << ", isl_hops=" << result->isl_hops << ", rtt=" << result->rtt << "\n";
    std::cout << "(compare with the " << network.baseline_rtt(*route)
              << " bent-pipe baseline above)\n";
  }
  return 0;
}
