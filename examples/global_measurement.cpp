// Global measurement campaign: run the synthetic Cloudflare-AIM study over
// every Starlink-covered country and export the per-country aggregation as
// CSV -- the workflow behind the paper's Figure 2 and Table 1.
//
//   $ ./examples/global_measurement > aim_summary.csv
//   $ ./examples/global_measurement --tests-per-city=50 --seed=7 > aim_summary.csv
#include <iostream>

#include "data/datasets.hpp"
#include "measurement/aim.hpp"
#include "measurement/analysis.hpp"
#include "sim/runner.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace spacecdn;
  sim::RunnerOptions options;
  options.name = "global_measurement";
  options.default_seed = 20240318;
  options.defaults.tests_per_city = 25;
  // No banner: stdout is the CSV (redirect it, or pass --csv-out=FILE).
  sim::Runner runner(argc, argv, options);
  measurement::AimCampaign& campaign = runner.world().aim();

  std::cerr << "running speed tests from "
            << data::starlink_countries().size() << " countries...\n";
  const measurement::AimAnalysis analysis(campaign.run());
  std::cerr << "collected " << analysis.records().size() << " records\n";

  CsvWriter csv(runner.csv(),
                {"country", "region", "terrestrial_distance_km", "terrestrial_min_rtt_ms",
                 "starlink_distance_km", "starlink_min_rtt_ms", "delta_ms"});
  for (const auto& code : analysis.countries()) {
    const auto row = analysis.country_row(code);
    if (!row) continue;
    const auto& info = data::country(code);
    csv.row({std::string(info.name), std::string(data::to_string(info.region)),
             CsvWriter::format_number(row->terrestrial_distance_km),
             CsvWriter::format_number(row->terrestrial_min_rtt_ms),
             CsvWriter::format_number(row->starlink_distance_km),
             CsvWriter::format_number(row->starlink_min_rtt_ms),
             CsvWriter::format_number(row->starlink_min_rtt_ms -
                                      row->terrestrial_min_rtt_ms)});
  }
  std::cerr << "wrote " << csv.rows_written() << " country rows\n";
  return runner.finish();
}
