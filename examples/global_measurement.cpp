// Global measurement campaign: run the synthetic Cloudflare-AIM study over
// every Starlink-covered country and export the per-country aggregation as
// CSV -- the workflow behind the paper's Figure 2 and Table 1.
//
//   $ ./examples/global_measurement > aim_summary.csv
//   $ ./examples/global_measurement --tests=50 --seed=7 > aim_summary.csv
#include <iostream>

#include "data/datasets.hpp"
#include "lsn/starlink.hpp"
#include "measurement/aim.hpp"
#include "measurement/analysis.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace spacecdn;
  const CliArgs args(argc, argv);

  lsn::StarlinkNetwork network;
  measurement::AimConfig config;
  config.tests_per_city = static_cast<std::uint32_t>(args.get("tests", 25L));
  config.seed = static_cast<std::uint64_t>(args.get("seed", 20240318L));
  for (const auto& unknown : args.unused()) {
    std::cerr << "warning: unknown flag --" << unknown << "\n";
  }
  measurement::AimCampaign campaign(network, config);

  std::cerr << "running speed tests from "
            << data::starlink_countries().size() << " countries...\n";
  const measurement::AimAnalysis analysis(campaign.run());
  std::cerr << "collected " << analysis.records().size() << " records\n";

  CsvWriter csv(std::cout,
                {"country", "region", "terrestrial_distance_km", "terrestrial_min_rtt_ms",
                 "starlink_distance_km", "starlink_min_rtt_ms", "delta_ms"});
  for (const auto& code : analysis.countries()) {
    const auto row = analysis.country_row(code);
    if (!row) continue;
    const auto& info = data::country(code);
    csv.row({std::string(info.name), std::string(data::to_string(info.region)),
             CsvWriter::format_number(row->terrestrial_distance_km),
             CsvWriter::format_number(row->terrestrial_min_rtt_ms),
             CsvWriter::format_number(row->starlink_distance_km),
             CsvWriter::format_number(row->starlink_min_rtt_ms),
             CsvWriter::format_number(row->starlink_min_rtt_ms -
                                      row->terrestrial_min_rtt_ms)});
  }
  std::cerr << "wrote " << csv.rows_written() << " country rows\n";
  return 0;
}
