// Stateful edge service on SpaceCDN: a multiplayer-game region server hosted
// on whichever satellite is overhead, with state replicated to the next
// satellites before each handover (paper section 5, Space VMs -- "CDNs today
// are critical for low-latency use cases, such as coordinating state across
// users within a local area in multiplayer games").
//
//   $ ./examples/edge_gaming
#include <iostream>

#include "data/datasets.hpp"
#include "lsn/handover.hpp"
#include "sim/world.hpp"
#include "spacecdn/space_vm.hpp"
#include "util/table.hpp"

int main() {
  using namespace spacecdn;

  sim::World world;
  const orbit::WalkerConstellation& shell = world.constellation();
  const auto& city = data::city("Manila");  // players in an LSN-served metro
  const geo::GeoPoint arena = data::location(city);
  const Milliseconds session = Milliseconds::from_minutes(45.0);

  std::cout << "game region: " << city.name << "; session length "
            << session.value() / 60000.0 << " min\n\n";

  // 1. The serving-satellite timeline the game server must ride.
  const lsn::HandoverTracker tracker(shell);
  const auto timeline = tracker.timeline(arena, Milliseconds{0.0}, session);
  ConsoleTable schedule({"from (min)", "to (min)", "host satellite"});
  for (const auto& interval : timeline) {
    schedule.add_row({ConsoleTable::format_fixed(interval.start.value() / 60000.0, 1),
                      ConsoleTable::format_fixed(interval.end.value() / 60000.0, 1),
                      interval.satellite ? std::to_string(*interval.satellite)
                                         : "(outage)"});
  }
  schedule.render(std::cout);

  // 2. Replicate the game state (~60 MB of live world + player state) to the
  //    successor satellite before each handover.
  space::VmConfig vm;
  vm.state_delta = Megabytes{60.0};
  vm.sync_interval = Milliseconds::from_seconds(2.0);  // tick-aligned syncs
  const space::SpaceVmOrchestrator orchestrator(shell, vm);
  des::Rng rng(21);

  const auto migrations =
      orchestrator.plan_migrations(arena, Milliseconds{0.0}, session, rng);
  std::cout << "\nhandover migrations:\n";
  for (const auto& m : migrations) {
    std::cout << "  t=" << ConsoleTable::format_fixed(m.at.value() / 60000.0, 1)
              << " min: sat " << m.from_satellite << " -> sat " << m.to_satellite
              << ", stop-and-copy " << ConsoleTable::format_fixed(m.switchover.value(), 1)
              << " ms\n";
  }

  const auto report = orchestrator.run(arena, Milliseconds{0.0}, session, rng);
  std::cout << "\nsession report: " << report.migrations << " migrations, mean freeze "
            << ConsoleTable::format_fixed(report.mean_switchover.value(), 1)
            << " ms, worst "
            << ConsoleTable::format_fixed(report.worst_switchover.value(), 1)
            << " ms, continuity "
            << ConsoleTable::format_fixed(report.continuity * 100.0, 3) << "%\n";
  std::cout << "background sync traffic: "
            << ConsoleTable::format_fixed(report.sync_traffic.value() / 1000.0, 1)
            << " GB over ISLs\n";
  return 0;
}
