// Video streaming over SpaceCDN: stripe a DASH-like video across the
// satellites that will pass over the viewer, exactly as the paper's
// section 4 sketches, and compare against fetching every segment over the
// bent pipe.
//
//   $ ./examples/video_streaming
//   $ ./examples/video_streaming --city="Buenos Aires"
#include <iostream>

#include "data/datasets.hpp"
#include "sim/runner.hpp"
#include "spacecdn/striping.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace spacecdn;
  sim::RunnerOptions options;
  options.name = "video_streaming";
  options.default_seed = 7;
  sim::Runner runner(argc, argv, options);

  lsn::StarlinkNetwork& network = runner.world().network();
  const space::StripingPlanner planner(network.constellation());
  const space::StripedPlaybackSimulator simulator(network, planner);
  des::Rng rng = runner.rng();

  const auto& viewer_city = data::city(runner.get("city", std::string("Nairobi")));
  const auto& country = data::country(viewer_city.country_code);
  const geo::GeoPoint viewer = data::location(viewer_city);

  const Milliseconds video_length = Milliseconds::from_minutes(44.0);  // one episode
  const Milliseconds stripe_length = Milliseconds::from_minutes(4.0);
  const Megabytes stripe_size{180.0};  // ~4 min of 1080p at ~6 Mbps

  std::cout << "viewer: " << viewer_city.name << " (" << country.name << "), assigned PoP: "
            << country.assigned_pop << "\n\n";

  // Show the stripe plan: which satellite serves which playback interval.
  const auto plan = planner.plan(viewer, Milliseconds{0.0}, video_length, stripe_length);
  ConsoleTable schedule({"stripe", "playback window (min)", "satellite overhead"});
  for (const auto& stripe : plan) {
    schedule.add_row(
        {std::to_string(stripe.index),
         ConsoleTable::format_fixed(stripe.start.value() / 60000.0, 1) + " - " +
             ConsoleTable::format_fixed(stripe.end.value() / 60000.0, 1),
         stripe.satellite ? std::to_string(*stripe.satellite) : "(coverage gap)"});
  }
  schedule.render(std::cout);

  const auto striped = simulator.simulate_striped(viewer, country, video_length,
                                                  stripe_length, stripe_size, rng);
  const auto ground = simulator.simulate_ground(viewer, country, video_length,
                                                stripe_length, stripe_size, rng);

  std::cout << "\nstriped playback:   startup " << striped.startup_latency
            << ", mean stripe RTT " << striped.mean_stripe_rtt << ", worst "
            << striped.worst_stripe_rtt << "\n";
  std::cout << "                    " << striped.stripes_from_space
            << " stripes from satellites, " << striped.stripes_from_ground
            << " from the ground; " << striped.prefetch_upload
            << " pre-positioned behind the scenes\n";
  std::cout << "bent-pipe playback: startup " << ground.startup_latency
            << ", mean stripe RTT " << ground.mean_stripe_rtt << ", worst "
            << ground.worst_stripe_rtt << " (loaded-link bufferbloat included)\n";
  return runner.finish();
}
