// Synthetic traceroute: see the PoP-centric Starlink data path the way the
// measurement community discovered it.
//
//   $ ./examples/trace_path                      # Maputo -> Frankfurt
//   $ ./examples/trace_path --city="Nairobi" --dest="Johannesburg"
#include <iostream>

#include "data/datasets.hpp"
#include "lsn/starlink.hpp"
#include "measurement/traceroute.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

void print(const char* title, const spacecdn::measurement::Traceroute& trace) {
  using namespace spacecdn;
  std::cout << "\n" << title << "\n";
  ConsoleTable table({"ttl", "kind", "router", "rtt (ms)"});
  for (const auto& hop : trace.hops) {
    table.add_row({std::to_string(hop.ttl),
                   std::string(measurement::to_string(hop.kind)),
                   hop.responds ? hop.label : "* * * (no response)",
                   hop.responds ? ConsoleTable::format_fixed(hop.rtt.value(), 1) : "-"});
  }
  table.render(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spacecdn;
  const CliArgs args(argc, argv);
  const std::string city_name = args.get("city", std::string("Maputo"));
  const std::string dest_name = args.get("dest", std::string("Frankfurt"));
  for (const auto& unknown : args.unused()) {
    std::cerr << "warning: unknown flag --" << unknown << "\n";
  }

  const auto& client = data::city(city_name);
  const geo::GeoPoint destination = data::location(data::city(dest_name));

  lsn::StarlinkNetwork network;
  const measurement::TracerouteSynthesizer synth(network);
  des::Rng rng(23);

  std::cout << "traceroute from " << client.name << " to " << dest_name << ":\n";
  const auto star = synth.starlink(client, destination, rng);
  print("=== over Starlink ===", star);
  const std::string inferred = synth.infer_pop(star, client);
  if (!inferred.empty()) {
    const auto& pop = data::pop(inferred);
    std::cout << "inferred PoP: " << pop.city << " (" << pop.country_code
              << ") -- the subscriber's public IP geolocates here, not in "
              << data::country(client.country_code).name << "\n";
  }

  const auto terr = synth.terrestrial(client, destination, rng);
  print("=== over a terrestrial ISP ===", terr);
  return 0;
}
