// Synthetic traceroute: see the PoP-centric Starlink data path the way the
// measurement community discovered it.
//
//   $ ./examples/trace_path                      # Maputo -> Frankfurt
//   $ ./examples/trace_path --city="Nairobi" --dest="Johannesburg"
//   $ ./examples/trace_path --waterfall          # + SpaceCDN fetch trace
#include <iostream>

#include "cdn/content.hpp"
#include "data/datasets.hpp"
#include "measurement/traceroute.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/runner.hpp"
#include "spacecdn/fleet.hpp"
#include "spacecdn/placement.hpp"
#include "spacecdn/router.hpp"
#include "util/table.hpp"

namespace {

void print(const char* title, const spacecdn::measurement::Traceroute& trace) {
  using namespace spacecdn;
  std::cout << "\n" << title << "\n";
  ConsoleTable table({"ttl", "kind", "router", "rtt (ms)"});
  for (const auto& hop : trace.hops) {
    table.add_row({std::to_string(hop.ttl),
                   std::string(measurement::to_string(hop.kind)),
                   hop.responds ? hop.label : "* * * (no response)",
                   hop.responds ? ConsoleTable::format_fixed(hop.rtt.value(), 1) : "-"});
  }
  table.render(std::cout);
}

/// --waterfall: run three SpaceCDN fetches (one per tier) through the
/// instrumented router and render each request's span tree.
void print_fetch_waterfalls(spacecdn::sim::World& world,
                            const spacecdn::data::CityInfo& client_city,
                            spacecdn::des::Rng rng) {
  using namespace spacecdn;
  const lsn::StarlinkNetwork& network = world.network();
  space::SatelliteFleet fleet =
      world.make_fleet(space::FleetConfig{Megabytes{1000.0}});
  cdn::CdnDeployment& ground = world.ground_cdn();
  space::RouterConfig rcfg;
  rcfg.admit_on_fetch = false;  // keep each demo fetch on its own tier
  space::SpaceCdnRouter router(network, fleet, ground, rcfg);

  obs::TelemetrySession telemetry;
  telemetry.tracer().set_retain(1);

  const geo::GeoPoint client = data::location(client_city);
  const auto& country = data::country(client_city.country_code);
  const auto serving = network.snapshot().serving_satellite(
      client, network.config().user_min_elevation_deg);
  if (!serving) {
    std::cout << "\n(no satellite coverage over " << client_city.name
              << "; skipping fetch waterfalls)\n";
    return;
  }

  // Tier (i): on the overhead satellite.  Tier (ii): on a grid neighbour.
  // Tier (iii): nowhere in space, so the bent pipe serves.
  const cdn::ContentItem tier1{1, Megabytes{10.0}, country.region};
  const cdn::ContentItem tier2{2, Megabytes{10.0}, country.region};
  const cdn::ContentItem tier3{3, Megabytes{10.0}, country.region};
  (void)fleet.cache(*serving).insert(tier1, Milliseconds{0.0});
  (void)fleet.cache(network.constellation().grid_neighbors(*serving)[2])
      .insert(tier2, Milliseconds{0.0});

  std::cout << "\n=== SpaceCDN fetch waterfalls from " << client_city.name
            << " (simulated ms) ===\n";
  for (const auto& item : {tier1, tier2, tier3}) {
    const auto result = router.fetch(client, country, item, rng, Milliseconds{0.0});
    std::cout << "\n";
    obs::render_waterfall(std::cout, telemetry.tracer().last());
    if (result) {
      std::cout << "served by tier: " << space::to_string(result->tier) << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spacecdn;
  sim::RunnerOptions options;
  options.name = "trace_path";
  options.default_seed = 23;
  sim::Runner runner(argc, argv, options);
  const std::string city_name = runner.get("city", std::string("Maputo"));
  const std::string dest_name = runner.get("dest", std::string("Frankfurt"));
  const bool waterfall = runner.get("waterfall", false);
  const std::uint64_t waterfall_seed =
      static_cast<std::uint64_t>(runner.get("waterfall-seed", 24L));

  const auto& client = data::city(city_name);
  const geo::GeoPoint destination = data::location(data::city(dest_name));

  lsn::StarlinkNetwork& network = runner.world().network();
  const measurement::TracerouteSynthesizer synth(network);
  des::Rng rng = runner.rng();

  std::cout << "traceroute from " << client.name << " to " << dest_name << ":\n";
  const auto star = synth.starlink(client, destination, rng);
  print("=== over Starlink ===", star);
  const std::string inferred = synth.infer_pop(star, client);
  if (!inferred.empty()) {
    const auto& pop = data::pop(inferred);
    std::cout << "inferred PoP: " << pop.city << " (" << pop.country_code
              << ") -- the subscriber's public IP geolocates here, not in "
              << data::country(client.country_code).name << "\n";
  }

  const auto terr = synth.terrestrial(client, destination, rng);
  print("=== over a terrestrial ISP ===", terr);

  if (waterfall) {
    print_fetch_waterfalls(runner.world(), client, des::Rng(waterfall_seed));
  }
  return runner.finish();
}
