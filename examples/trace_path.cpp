// Synthetic traceroute: see the PoP-centric Starlink data path the way the
// measurement community discovered it.
//
//   $ ./examples/trace_path                      # Maputo -> Frankfurt
//   $ ./examples/trace_path --city="Nairobi" --dest="Johannesburg"
//   $ ./examples/trace_path --waterfall          # + SpaceCDN fetch trace
#include <iostream>

#include "cdn/content.hpp"
#include "data/datasets.hpp"
#include "lsn/starlink.hpp"
#include "measurement/traceroute.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "spacecdn/fleet.hpp"
#include "spacecdn/placement.hpp"
#include "spacecdn/router.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

void print(const char* title, const spacecdn::measurement::Traceroute& trace) {
  using namespace spacecdn;
  std::cout << "\n" << title << "\n";
  ConsoleTable table({"ttl", "kind", "router", "rtt (ms)"});
  for (const auto& hop : trace.hops) {
    table.add_row({std::to_string(hop.ttl),
                   std::string(measurement::to_string(hop.kind)),
                   hop.responds ? hop.label : "* * * (no response)",
                   hop.responds ? ConsoleTable::format_fixed(hop.rtt.value(), 1) : "-"});
  }
  table.render(std::cout);
}

/// --waterfall: run three SpaceCDN fetches (one per tier) through the
/// instrumented router and render each request's span tree.
void print_fetch_waterfalls(const spacecdn::lsn::StarlinkNetwork& network,
                            const spacecdn::data::CityInfo& client_city) {
  using namespace spacecdn;
  space::SatelliteFleet fleet(network.constellation().size(),
                              space::FleetConfig{Megabytes{1000.0}});
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  space::RouterConfig rcfg;
  rcfg.admit_on_fetch = false;  // keep each demo fetch on its own tier
  space::SpaceCdnRouter router(network, fleet, ground, rcfg);

  obs::TelemetrySession telemetry;
  telemetry.tracer().set_retain(1);

  const geo::GeoPoint client = data::location(client_city);
  const auto& country = data::country(client_city.country_code);
  const auto serving = network.snapshot().serving_satellite(
      client, network.config().user_min_elevation_deg);
  if (!serving) {
    std::cout << "\n(no satellite coverage over " << client_city.name
              << "; skipping fetch waterfalls)\n";
    return;
  }

  // Tier (i): on the overhead satellite.  Tier (ii): on a grid neighbour.
  // Tier (iii): nowhere in space, so the bent pipe serves.
  const cdn::ContentItem tier1{1, Megabytes{10.0}, country.region};
  const cdn::ContentItem tier2{2, Megabytes{10.0}, country.region};
  const cdn::ContentItem tier3{3, Megabytes{10.0}, country.region};
  (void)fleet.cache(*serving).insert(tier1, Milliseconds{0.0});
  (void)fleet.cache(network.constellation().grid_neighbors(*serving)[2])
      .insert(tier2, Milliseconds{0.0});

  des::Rng rng(24);
  std::cout << "\n=== SpaceCDN fetch waterfalls from " << client_city.name
            << " (simulated ms) ===\n";
  for (const auto& item : {tier1, tier2, tier3}) {
    const auto result = router.fetch(client, country, item, rng, Milliseconds{0.0});
    std::cout << "\n";
    obs::render_waterfall(std::cout, telemetry.tracer().last());
    if (result) {
      std::cout << "served by tier: " << space::to_string(result->tier) << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spacecdn;
  const CliArgs args(argc, argv);
  const std::string city_name = args.get("city", std::string("Maputo"));
  const std::string dest_name = args.get("dest", std::string("Frankfurt"));
  const bool waterfall = args.get("waterfall", false);
  for (const auto& unknown : args.unused()) {
    std::cerr << "warning: unknown flag --" << unknown << "\n";
  }

  const auto& client = data::city(city_name);
  const geo::GeoPoint destination = data::location(data::city(dest_name));

  lsn::StarlinkNetwork network;
  const measurement::TracerouteSynthesizer synth(network);
  des::Rng rng(23);

  std::cout << "traceroute from " << client.name << " to " << dest_name << ":\n";
  const auto star = synth.starlink(client, destination, rng);
  print("=== over Starlink ===", star);
  const std::string inferred = synth.infer_pop(star, client);
  if (!inferred.empty()) {
    const auto& pop = data::pop(inferred);
    std::cout << "inferred PoP: " << pop.city << " (" << pop.country_code
              << ") -- the subscriber's public IP geolocates here, not in "
              << data::country(client.country_code).name << "\n";
  }

  const auto terr = synth.terrestrial(client, destination, rng);
  print("=== over a terrestrial ISP ===", terr);

  if (waterfall) print_fetch_waterfalls(network, client);
  return 0;
}
