// Load-engine tests: burst traces, traffic rates, LinkQueue (FIFO + DRR),
// admission control, the scenario-key mapping, and end-to-end LoadRunner
// determinism on the reduced test-shell constellation.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "des/random.hpp"
#include "des/simulator.hpp"
#include "faults/schedule.hpp"
#include "load/capacity.hpp"
#include "load/degradation.hpp"
#include "load/load_runner.hpp"
#include "load/sharded.hpp"
#include "load/traffic.hpp"
#include "lsn/starlink.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace {

using namespace spacecdn;

// ---------------------------------------------------------------------------
// Burst traces
// ---------------------------------------------------------------------------

TEST(BurstTrace, ParsesSecondsToMultiplierPairs) {
  const auto steps = load::parse_burst_trace("0:1,30:4,60:1");
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_DOUBLE_EQ(steps[0].start.value(), 0.0);
  EXPECT_DOUBLE_EQ(steps[0].multiplier, 1.0);
  EXPECT_DOUBLE_EQ(steps[1].start.value(), 30'000.0);
  EXPECT_DOUBLE_EQ(steps[1].multiplier, 4.0);
  EXPECT_DOUBLE_EQ(steps[2].start.value(), 60'000.0);
}

TEST(BurstTrace, EmptyStringMeansConstantRate) {
  EXPECT_TRUE(load::parse_burst_trace("").empty());
}

TEST(BurstTrace, RejectsMalformedInput) {
  EXPECT_THROW((void)load::parse_burst_trace("0:1,oops"), ConfigError);
  EXPECT_THROW((void)load::parse_burst_trace("0"), ConfigError);
  EXPECT_THROW((void)load::parse_burst_trace("0:-2"), ConfigError);
  // Times must be strictly increasing.
  EXPECT_THROW((void)load::parse_burst_trace("10:1,10:2"), ConfigError);
  EXPECT_THROW((void)load::parse_burst_trace("10:1,5:2"), ConfigError);
}

TEST(BurstTrace, RejectsTrailingAndEmptyPairs) {
  // A trailing comma leaves an empty pair; fail loudly instead of silently
  // truncating the schedule.
  EXPECT_THROW((void)load::parse_burst_trace("0:1,"), ConfigError);
  EXPECT_THROW((void)load::parse_burst_trace(","), ConfigError);
  EXPECT_THROW((void)load::parse_burst_trace("0:1,,5:2"), ConfigError);
  EXPECT_THROW((void)load::parse_burst_trace(":2"), ConfigError);
  EXPECT_THROW((void)load::parse_burst_trace("5:"), ConfigError);
  // Partial-garbage numbers must not strtod-truncate silently either.
  EXPECT_THROW((void)load::parse_burst_trace("1x:2"), ConfigError);
  EXPECT_THROW((void)load::parse_burst_trace("1:2y"), ConfigError);
}

// ---------------------------------------------------------------------------
// TrafficModel
// ---------------------------------------------------------------------------

std::vector<sim::Shell1Client> test_clients() {
  // A handful of real cities keeps the regional popularity model happy.
  auto clients = sim::shell1_clients();
  clients.resize(8);
  return clients;
}

TEST(TrafficModel, CityRatesAreProportionalToPopulationAndSumToTotal) {
  load::TrafficConfig config;
  config.requests_per_second = 1000.0;
  const load::TrafficModel traffic(test_clients(), config);

  double sum = 0.0;
  for (std::size_t i = 0; i < traffic.clients().size(); ++i) {
    sum += traffic.city_rate_rps(i);
  }
  EXPECT_NEAR(sum, 1000.0, 1e-6);

  // Rates scale with metro population.
  const auto& clients = traffic.clients();
  for (std::size_t i = 1; i < clients.size(); ++i) {
    const double expected_ratio =
        clients[i].city->population_k / clients[0].city->population_k;
    EXPECT_NEAR(traffic.city_rate_rps(i) / traffic.city_rate_rps(0), expected_ratio,
                1e-9);
  }
}

TEST(TrafficModel, BurstScheduleIsPiecewiseConstant) {
  load::TrafficConfig config;
  config.burst = load::parse_burst_trace("0:1,10:4,20:0.5");
  const load::TrafficModel traffic(test_clients(), config);
  EXPECT_DOUBLE_EQ(traffic.rate_multiplier(Milliseconds::from_seconds(0.0)), 1.0);
  EXPECT_DOUBLE_EQ(traffic.rate_multiplier(Milliseconds::from_seconds(9.9)), 1.0);
  EXPECT_DOUBLE_EQ(traffic.rate_multiplier(Milliseconds::from_seconds(10.0)), 4.0);
  EXPECT_DOUBLE_EQ(traffic.rate_multiplier(Milliseconds::from_seconds(19.0)), 4.0);
  EXPECT_DOUBLE_EQ(traffic.rate_multiplier(Milliseconds::from_seconds(25.0)), 0.5);
}

TEST(TrafficModel, InterarrivalMeanMatchesCityRate) {
  load::TrafficConfig config;
  config.requests_per_second = 500.0;
  const load::TrafficModel traffic(test_clients(), config);
  const double rate = traffic.city_rate_rps(0);  // requests/second
  des::Rng rng(7);
  double total_s = 0.0;
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) {
    total_s += traffic.next_interarrival(0, Milliseconds{0.0}, rng).seconds();
  }
  EXPECT_NEAR(total_s / kDraws, 1.0 / rate, 0.05 / rate);
}

TEST(TrafficModel, RegionalSurgeMultipliesOnlyInRegionAndWindow) {
  const auto clients = test_clients();
  load::TrafficConfig config;
  config.requests_per_second = 100.0;
  config.surge.center = {clients[0].city->lat_deg, clients[0].city->lon_deg, 0.0};
  config.surge.radius = Kilometers{50.0};
  config.surge.multiplier = 4.0;
  config.surge.start = Milliseconds::from_seconds(5.0);
  config.surge.duration = Milliseconds::from_seconds(10.0);
  const load::TrafficModel traffic(clients, config);

  // In region, inside the window.
  EXPECT_DOUBLE_EQ(traffic.surge_multiplier(0, Milliseconds::from_seconds(6.0)), 4.0);
  // In region but before/after the window.
  EXPECT_DOUBLE_EQ(traffic.surge_multiplier(0, Milliseconds::from_seconds(4.9)), 1.0);
  EXPECT_DOUBLE_EQ(traffic.surge_multiplier(0, Milliseconds::from_seconds(15.0)), 1.0);
  // A different metro (well outside the 50 km radius) never surges.
  EXPECT_DOUBLE_EQ(traffic.surge_multiplier(1, Milliseconds::from_seconds(6.0)), 1.0);

  // Disabled surge is the multiplicative identity everywhere.
  load::TrafficConfig plain;
  plain.requests_per_second = 100.0;
  const load::TrafficModel no_surge(clients, plain);
  EXPECT_DOUBLE_EQ(no_surge.surge_multiplier(0, Milliseconds::from_seconds(6.0)), 1.0);
}

TEST(TrafficModel, RejectsDegenerateConfigs) {
  load::TrafficConfig config;
  config.requests_per_second = 0.0;
  EXPECT_THROW((load::TrafficModel(test_clients(), config)), ConfigError);
  config.requests_per_second = 100.0;
  EXPECT_THROW((load::TrafficModel({}, config)), ConfigError);
}

// ---------------------------------------------------------------------------
// LinkQueue
// ---------------------------------------------------------------------------

TEST(LinkQueue, FifoSingleTransferSeesNoQueueing) {
  des::Simulator sim;
  load::LinkQueue queue(sim, Mbps{800.0});  // 100 MB/s -> 10 ms/MB
  Milliseconds wait{-1.0};
  Milliseconds completed{-1.0};
  queue.submit(Megabytes{1.0}, 0, [&](Milliseconds w) {
    wait = w;
    completed = sim.now();
  });
  sim.run();
  EXPECT_DOUBLE_EQ(wait.value(), 0.0);
  EXPECT_DOUBLE_EQ(completed.value(),
                   transmission_delay(Megabytes{1.0}, Mbps{800.0}).value());
  EXPECT_EQ(queue.served(), 1u);
  EXPECT_DOUBLE_EQ(queue.carried().value(), 1.0);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(LinkQueue, FifoWaitsAccumulateInArrivalOrder) {
  des::Simulator sim;
  load::LinkQueue queue(sim, Mbps{800.0});  // 10 ms per MB
  std::vector<double> waits;
  for (int i = 0; i < 3; ++i) {
    queue.submit(Megabytes{1.0}, 0, [&](Milliseconds w) { waits.push_back(w.value()); });
  }
  EXPECT_EQ(queue.peak_depth(), 2u);  // one in service, two waiting
  sim.run();
  ASSERT_EQ(waits.size(), 3u);
  EXPECT_DOUBLE_EQ(waits[0], 0.0);
  EXPECT_DOUBLE_EQ(waits[1], 10.0);
  EXPECT_DOUBLE_EQ(waits[2], 20.0);
  EXPECT_DOUBLE_EQ(queue.busy_time().value(), 30.0);
  EXPECT_DOUBLE_EQ(queue.utilization(Milliseconds{60.0}), 0.5);
}

TEST(LinkQueue, DrrInterleavesClassesInsteadOfHeadOfLineBlocking) {
  des::Simulator sim;
  // Quantum of 1 MB: the elephant class drains one 1 MB segment per round,
  // so the mouse class's small objects are served between them.
  load::LinkQueue queue(sim, Mbps{800.0}, load::QueueDiscipline::kDrr, Megabytes{1.0});
  std::vector<int> order;
  // Class 0: four 1 MB segments, all enqueued first.
  for (int i = 0; i < 4; ++i) {
    queue.submit(Megabytes{1.0}, 0, [&order](Milliseconds) { order.push_back(0); });
  }
  // Class 1: four 1 MB segments enqueued behind them.
  for (int i = 0; i < 4; ++i) {
    queue.submit(Megabytes{1.0}, 1, [&order](Milliseconds) { order.push_back(1); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 8u);
  // Under FIFO the order would be 0,0,0,0,1,1,1,1.  DRR alternates rounds,
  // so class 1 finishes its first segment well before class 0 finishes all.
  const auto first_one = std::find(order.begin(), order.end(), 1);
  ASSERT_NE(first_one, order.end());
  EXPECT_LT(first_one - order.begin(), 4);
  EXPECT_EQ(queue.served(), 8u);
}

TEST(LinkQueue, RejectsNonPositiveCapacity) {
  des::Simulator sim;
  EXPECT_THROW((load::LinkQueue(sim, Mbps{0.0})), ConfigError);
}

TEST(QueueDiscipline, ParsesNames) {
  EXPECT_EQ(load::parse_queue_discipline("fifo"), load::QueueDiscipline::kFifo);
  EXPECT_EQ(load::parse_queue_discipline("drr"), load::QueueDiscipline::kDrr);
  EXPECT_THROW((void)load::parse_queue_discipline("lifo"), ConfigError);
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

TEST(AdmissionController, EnforcesPerSatelliteCap) {
  load::AdmissionController admission(4, 2);
  EXPECT_TRUE(admission.try_admit(0));
  EXPECT_TRUE(admission.try_admit(0));
  EXPECT_FALSE(admission.try_admit(0));  // satellite 0 full
  EXPECT_TRUE(admission.try_admit(1));   // other satellites unaffected
  EXPECT_EQ(admission.active(0), 2u);
  EXPECT_EQ(admission.admitted(), 3u);
  EXPECT_EQ(admission.rejected(), 1u);
  EXPECT_EQ(admission.peak_active(), 2u);

  admission.release(0);
  EXPECT_TRUE(admission.try_admit(0));  // slot freed
}

TEST(AdmissionController, RejectHookFiresWithContext) {
  load::AdmissionController admission(2, 1);
  std::uint32_t hook_satellite = 99;
  std::size_t hook_active = 0;
  admission.set_reject_hook([&](std::uint32_t satellite, std::size_t active) {
    hook_satellite = satellite;
    hook_active = active;
  });
  ASSERT_TRUE(admission.try_admit(1));
  EXPECT_FALSE(admission.try_admit(1));
  EXPECT_EQ(hook_satellite, 1u);
  EXPECT_EQ(hook_active, 1u);
}

TEST(AdmissionController, ZeroCapDisablesAdmissionControl) {
  load::AdmissionController admission(1, 0);
  for (int i = 0; i < 500; ++i) EXPECT_TRUE(admission.try_admit(0));
  EXPECT_EQ(admission.rejected(), 0u);
}

TEST(AdmissionController, RejectStormsCountOncePerRollingWindow) {
  load::AdmissionController admission(1, 1, /*reject_storm_threshold=*/3);
  ASSERT_TRUE(admission.try_admit(0, Milliseconds{0.0}));

  // Two rejections in the first 1 s window stay below the threshold.
  EXPECT_FALSE(admission.try_admit(0, Milliseconds{10.0}));
  EXPECT_FALSE(admission.try_admit(0, Milliseconds{20.0}));
  EXPECT_EQ(admission.storms(), 0u);
  // The third crosses the threshold: exactly one storm per window...
  EXPECT_FALSE(admission.try_admit(0, Milliseconds{30.0}));
  EXPECT_EQ(admission.storms(), 1u);
  EXPECT_FALSE(admission.try_admit(0, Milliseconds{40.0}));
  EXPECT_EQ(admission.storms(), 1u);
  // ...and a later window can trip again.
  EXPECT_FALSE(admission.try_admit(0, Milliseconds{1'500.0}));
  EXPECT_FALSE(admission.try_admit(0, Milliseconds{1'510.0}));
  EXPECT_EQ(admission.storms(), 1u);
  EXPECT_FALSE(admission.try_admit(0, Milliseconds{1'520.0}));
  EXPECT_EQ(admission.storms(), 2u);
}

// ---------------------------------------------------------------------------
// DegradationPolicy
// ---------------------------------------------------------------------------

TEST(DegradationPolicy, HotMarksExpireAndCountOncePerWindow) {
  load::DegradationConfig config;
  config.enabled = true;
  config.hot_window = Milliseconds{1'000.0};
  load::DegradationPolicy policy(4, config);

  EXPECT_FALSE(policy.hot(2, Milliseconds{0.0}));
  policy.on_reject(2, Milliseconds{0.0});
  EXPECT_TRUE(policy.hot(2, Milliseconds{999.0}));
  EXPECT_FALSE(policy.hot(2, Milliseconds{1'000.0}));
  EXPECT_FALSE(policy.hot(3, Milliseconds{500.0}));  // other satellites untouched
  EXPECT_EQ(policy.hot_marks(), 1u);

  // Re-marking inside an active window extends it without recounting.
  policy.on_reject(2, Milliseconds{500.0});
  EXPECT_EQ(policy.hot_marks(), 1u);
  EXPECT_TRUE(policy.hot(2, Milliseconds{1'200.0}));

  // A fresh mark after expiry is a new hot entry.
  policy.on_reject(2, Milliseconds{3'000.0});
  EXPECT_EQ(policy.hot_marks(), 2u);
}

// ---------------------------------------------------------------------------
// Scenario-key mapping
// ---------------------------------------------------------------------------

TEST(LoadConfig, ObjectSizePresetsDifferAndUnknownThrows) {
  const cdn::CatalogConfig web = load::object_size_preset("web");
  const cdn::CatalogConfig video = load::object_size_preset("video");
  const cdn::CatalogConfig mixed = load::object_size_preset("mixed");
  EXPECT_GT(web.object_count, video.object_count);
  EXPECT_LT(web.median_size.value(), video.median_size.value());
  EXPECT_EQ(mixed.object_count, 10'000u);
  EXPECT_THROW((void)load::object_size_preset("tape-archive"), ConfigError);
}

TEST(LoadConfig, FromSpecMapsScenarioKeys) {
  sim::ScenarioSpec spec;
  spec.constellation = "test-shell";
  spec.arrival_rate_rps = 321.0;
  spec.object_size_dist = "video";
  spec.link_capacity_scale = 0.5;
  spec.burst_trace = "0:1,5:2";
  spec.load_horizon_s = 3.0;
  spec.queue_discipline = "drr";
  spec.seed = 77;

  const load::LoadConfig config = load::load_config_from_spec(spec);
  EXPECT_DOUBLE_EQ(config.traffic.requests_per_second, 321.0);
  EXPECT_EQ(config.traffic.catalog.object_count, 2'000u);
  ASSERT_EQ(config.traffic.burst.size(), 2u);
  EXPECT_DOUBLE_EQ(config.horizon.seconds(), 3.0);
  EXPECT_EQ(config.capacity.discipline, load::QueueDiscipline::kDrr);
  EXPECT_EQ(config.seed, 77u);

  // Capacities come from the preset's annotations scaled by link-capacity.
  const lsn::StarlinkConfig preset = lsn::starlink_preset("test-shell");
  EXPECT_DOUBLE_EQ(config.capacity.satellite_downlink.value(),
                   preset.access.satellite_downlink_aggregate.value() * 0.5);
  EXPECT_DOUBLE_EQ(config.capacity.isl.value(), preset.isl.capacity.value() * 0.5);
}

TEST(LoadConfig, FromSpecMapsResilienceAndChaosKeys) {
  sim::ScenarioSpec spec;
  spec.constellation = "test-shell";
  spec.resilient_fetch = true;
  spec.request_deadline_ms = 350.0;
  spec.attempt_timeout_ms = 90.0;
  spec.hedge_delay_ms = 25.0;
  spec.backoff_jitter = 0.2;
  spec.breaker_threshold = 7;
  spec.breaker_cooldown_s = 2.0;
  spec.shed_to_ground = true;
  spec.chaos = "disaster-region";
  spec.chaos_surge = 3.0;
  spec.chaos_lat = 10.0;
  spec.chaos_lon = 20.0;
  spec.chaos_radius_km = 500.0;
  spec.chaos_start_s = 2.0;
  spec.chaos_duration_s = 4.0;

  const load::LoadConfig config = load::load_config_from_spec(spec);
  EXPECT_TRUE(config.resilient_fetch);
  EXPECT_DOUBLE_EQ(config.request_deadline.value(), 350.0);
  EXPECT_DOUBLE_EQ(config.resilience.deadline.value(), 350.0);
  EXPECT_DOUBLE_EQ(config.resilience.attempt_timeout.value(), 90.0);
  EXPECT_DOUBLE_EQ(config.resilience.hedge_delay.value(), 25.0);
  EXPECT_FALSE(config.hedge_auto);
  EXPECT_DOUBLE_EQ(config.resilience.backoff_jitter, 0.2);
  EXPECT_EQ(config.resilience.breaker.failure_threshold, 7u);
  EXPECT_DOUBLE_EQ(config.resilience.breaker.open_cooldown.seconds(), 2.0);
  EXPECT_TRUE(config.degradation.enabled);
  EXPECT_TRUE(config.degradation.shed_to_ground);
  // The chaos surge window rides along for region-scoped chaos modes.
  EXPECT_TRUE(config.traffic.surge.enabled());
  EXPECT_DOUBLE_EQ(config.traffic.surge.multiplier, 3.0);
  EXPECT_DOUBLE_EQ(config.traffic.surge.start.seconds(), 2.0);
  EXPECT_DOUBLE_EQ(config.traffic.surge.duration.seconds(), 4.0);

  // hedge-delay-ms = -1 switches to trailing-p99 auto mode.
  spec.hedge_delay_ms = -1.0;
  const load::LoadConfig auto_config = load::load_config_from_spec(spec);
  EXPECT_TRUE(auto_config.hedge_auto);

  // A constellation-wide storm has no epicentre, so no regional surge.
  spec.chaos = "solar-storm";
  const load::LoadConfig storm_config = load::load_config_from_spec(spec);
  EXPECT_FALSE(storm_config.traffic.surge.enabled());
}

// ---------------------------------------------------------------------------
// End-to-end LoadRunner on the reduced test shell
// ---------------------------------------------------------------------------

sim::ScenarioSpec load_test_spec() {
  sim::ScenarioSpec spec;
  spec.constellation = "test-shell";  // 8x8, cheap enough for unit tests
  spec.arrival_rate_rps = 400.0;
  spec.load_horizon_s = 2.0;
  spec.link_capacity_scale = 0.02;  // tight enough that queues actually form
  return spec;
}

load::LoadReport run_load(sim::World& world, const load::LoadConfig& config) {
  space::SatelliteFleet fleet = world.make_fleet();
  cdn::CdnDeployment ground = world.make_ground_cdn();
  load::LoadRunner engine(world.network(), fleet, ground, world.clients(), config);
  return engine.run();
}

TEST(LoadRunner, SameSeedIsBitIdenticalAndSeedsMatter) {
  sim::World world(load_test_spec());
  const load::LoadConfig config = load::load_config_from_spec(world.spec());

  const load::LoadReport a = run_load(world, config);
  const load::LoadReport b = run_load(world, config);
  ASSERT_GT(a.completed, 0u);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  ASSERT_EQ(a.latency_ms.raw().size(), b.latency_ms.raw().size());
  for (std::size_t i = 0; i < a.latency_ms.raw().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.latency_ms.raw()[i], b.latency_ms.raw()[i]);
  }

  load::LoadConfig reseeded = config;
  reseeded.seed = config.seed + 1;
  const load::LoadReport c = run_load(world, reseeded);
  EXPECT_NE(a.offered, c.offered);  // different arrival streams
}

TEST(LoadRunner, ReportIsInternallyConsistent) {
  sim::World world(load_test_spec());
  const load::LoadConfig config = load::load_config_from_spec(world.spec());
  const load::LoadReport report = run_load(world, config);

  EXPECT_EQ(report.completed + report.rejected + report.no_coverage, report.offered);
  EXPECT_EQ(report.tier[0] + report.tier[1] + report.tier[2], report.completed);
  EXPECT_EQ(report.latency_ms.raw().size(), report.completed);
  EXPECT_EQ(report.queue_wait_ms.raw().size(), report.completed);
  EXPECT_GT(report.delivered.value(), 0.0);
  EXPECT_GT(report.goodput_mbps, 0.0);
  EXPECT_EQ(report.satellite_utilization.size(), world.constellation().size());
  for (const double u : report.satellite_utilization) EXPECT_GE(u, 0.0);
  // Latency includes queueing, so every sample dominates its queue wait.
  const auto& latency = report.latency_ms.raw();
  const auto& wait = report.queue_wait_ms.raw();
  for (std::size_t i = 0; i < latency.size(); ++i) {
    EXPECT_GE(latency[i], wait[i]);
  }
}

TEST(LoadRunner, HigherOfferedLoadDoesNotReduceQueueing) {
  sim::World world(load_test_spec());
  const load::LoadConfig base = load::load_config_from_spec(world.spec());
  load::LoadConfig heavy = base;
  heavy.traffic.requests_per_second *= 8.0;

  const load::LoadReport light_report = run_load(world, base);
  const load::LoadReport heavy_report = run_load(world, heavy);
  ASSERT_GT(light_report.completed, 0u);
  ASSERT_GT(heavy_report.completed, 0u);
  EXPECT_GE(heavy_report.queue_wait_ms.mean(), light_report.queue_wait_ms.mean());
  EXPECT_GE(heavy_report.max_utilization, light_report.max_utilization);
}

TEST(LoadRunner, RejectHookSeesAdmissionDrops) {
  sim::World world(load_test_spec());
  load::LoadConfig config = load::load_config_from_spec(world.spec());
  config.traffic.requests_per_second *= 16.0;  // deep overload
  config.capacity.max_transfers_per_satellite = 4;

  space::SatelliteFleet fleet = world.make_fleet();
  cdn::CdnDeployment ground = world.make_ground_cdn();
  load::LoadRunner engine(world.network(), fleet, ground, world.clients(), config);
  std::uint64_t hook_fired = 0;
  engine.set_reject_hook([&](std::uint32_t, std::size_t) { ++hook_fired; });
  const load::LoadReport report = engine.run();
  EXPECT_GT(report.rejected, 0u);
  EXPECT_EQ(hook_fired, report.rejected);
  EXPECT_LE(report.peak_active_transfers, 4u);
}

TEST(LoadRunner, ResilientDeadlineAccountingIsConsistent) {
  sim::World world(load_test_spec());
  load::LoadConfig config = load::load_config_from_spec(world.spec());
  config.resilient_fetch = true;
  config.request_deadline = Milliseconds{40.0};  // tight: queueing makes many miss
  config.resilience.deadline = config.request_deadline;

  const load::LoadReport report = run_load(world, config);
  ASSERT_GT(report.completed, 0u);
  EXPECT_EQ(report.completed + report.rejected + report.no_coverage + report.failed,
            report.offered);
  EXPECT_GT(report.deadline_missed, 0u);
  EXPECT_LE(report.deadline_missed, report.completed);
  EXPECT_LE(report.abandoned, report.deadline_missed);
  const double miss = report.deadline_miss_fraction();
  EXPECT_GT(miss, 0.0);
  EXPECT_LE(miss, 1.0);

  // Without a deadline the SLO counters stay untouched.
  load::LoadConfig no_deadline = config;
  no_deadline.request_deadline = Milliseconds{0.0};
  no_deadline.resilience.deadline = Milliseconds{0.0};
  const load::LoadReport free_report = run_load(world, no_deadline);
  EXPECT_EQ(free_report.deadline_missed, 0u);
  EXPECT_EQ(free_report.abandoned, 0u);
  // Only hard losses (rejects / coverage gaps / exhausted fetches) remain in
  // the SLO-miss numerator once the deadline is lifted.
  EXPECT_DOUBLE_EQ(
      free_report.deadline_miss_fraction(),
      static_cast<double>(free_report.rejected + free_report.no_coverage +
                          free_report.failed) /
          static_cast<double>(free_report.offered));
}

TEST(LoadConfig, FromSpecMapsObservabilityKeys) {
  sim::ScenarioSpec spec;
  spec.constellation = "test-shell";
  spec.series_out = "series.csv";
  spec.series_interval_s = 0.5;
  spec.timeline_out = "timeline.jsonl";
  spec.slo_objective = 0.99;
  spec.slo_window_short_s = 2.0;
  spec.slo_window_long_s = 8.0;
  spec.slo_burn_threshold = 4.0;

  const load::LoadConfig config = load::load_config_from_spec(spec);
  EXPECT_DOUBLE_EQ(config.series_interval.value(), 500.0);
  EXPECT_TRUE(config.timeline);
  EXPECT_DOUBLE_EQ(config.slo.objective, 0.99);
  EXPECT_DOUBLE_EQ(config.slo.short_window.seconds(), 2.0);
  EXPECT_DOUBLE_EQ(config.slo.long_window.seconds(), 8.0);
  EXPECT_DOUBLE_EQ(config.slo.burn_threshold, 4.0);

  // With no sink paths the recorder and timeline stay disabled (the
  // default-off guarantee behind the published checksums).
  sim::ScenarioSpec off;
  off.constellation = "test-shell";
  const load::LoadConfig off_config = load::load_config_from_spec(off);
  EXPECT_DOUBLE_EQ(off_config.series_interval.value(), 0.0);
  EXPECT_FALSE(off_config.timeline);
}

TEST(LoadRunner, SeriesWindowsSumToReportTotals) {
  sim::World world(load_test_spec());
  load::LoadConfig config = load::load_config_from_spec(world.spec());
  config.series_interval = Milliseconds{500.0};
  config.timeline = true;

  const load::LoadReport report = run_load(world, config);
  ASSERT_GT(report.completed, 0u);
  const obs::TimeSeries& series = report.series;
  ASSERT_FALSE(series.empty());
  // 2 s horizon / 0.5 s windows; the drain phase past the arrival horizon
  // closes no extra windows (the recorder stops at the arrival horizon).
  EXPECT_EQ(series.windows.size(), 4u);

  const auto column = [&](const char* name) {
    const auto it = std::find(series.columns.begin(), series.columns.end(), name);
    EXPECT_NE(it, series.columns.end()) << name;
    return static_cast<std::size_t>(it - series.columns.begin());
  };
  const auto sum = [&](std::size_t col) {
    double total = 0.0;
    for (const auto& w : series.windows) total += w.values[col];
    return total;
  };
  EXPECT_DOUBLE_EQ(sum(column("offered")), static_cast<double>(report.offered));
  EXPECT_DOUBLE_EQ(sum(column("rejected")), static_cast<double>(report.rejected));
  // Completions can land after the last window closes (in-flight transfers
  // drain past the arrival horizon), so windows undercount at most.
  EXPECT_LE(sum(column("completed")), static_cast<double>(report.completed));
  EXPECT_GT(sum(column("completed")), 0.0);
}

TEST(LoadRunner, SeriesAndTimelineAreDeterministic) {
  sim::World world(load_test_spec());
  load::LoadConfig config = load::load_config_from_spec(world.spec());
  config.series_interval = Milliseconds{500.0};
  config.timeline = true;
  // Overload + churn so the timeline actually has fault and shed traffic.
  config.traffic.requests_per_second *= 16.0;
  config.capacity.max_transfers_per_satellite = 4;
  config.degradation.enabled = true;
  config.degradation.shed_to_ground = true;

  using faults::Component;
  using faults::Transition;
  config.fault_schedule = faults::FaultSchedule::from_trace({
      {Milliseconds{600.0}, Component::kSatellite, Transition::kFail, 3},
      {Milliseconds{1'400.0}, Component::kSatellite, Transition::kRecover, 3},
  });

  const auto run_once = [&] { return run_load(world, config); };
  const load::LoadReport a = run_once();
  const load::LoadReport b = run_once();

  EXPECT_EQ(a.series.checksum(), b.series.checksum());
  EXPECT_EQ(a.timeline.checksum(), b.timeline.checksum());
  EXPECT_FALSE(a.timeline.empty());
  EXPECT_GT(a.timeline.count("fault.fail"), 0u);
  // Shedding salvages admission rejects, so overload shows up as
  // degradation events too.
  EXPECT_GT(a.timeline.count("degradation."), 0u);

  // Turning observability off must not change the simulated outcome.
  load::LoadConfig off = config;
  off.series_interval = Milliseconds{0.0};
  off.timeline = false;
  const load::LoadReport plain = run_load(world, off);
  EXPECT_EQ(plain.offered, a.offered);
  EXPECT_EQ(plain.completed, a.completed);
  EXPECT_EQ(plain.rejected, a.rejected);
  EXPECT_TRUE(plain.timeline.empty());
  EXPECT_TRUE(plain.series.empty());
}

// ---------------------------------------------------------------------------
// Sharded load mode (load::run_sharded_load over des::ShardedSimulator)
// ---------------------------------------------------------------------------

load::ShardedLoadOutcome run_sharded(sim::World& world, const load::LoadConfig& config,
                                     std::size_t shards, ThreadPool* pool) {
  load::ShardedLoadOptions options;
  options.shards = shards;
  return load::run_sharded_load(
      world.network(), world.clients(), config, options,
      [&world] { return world.make_fleet(); },
      [&world] { return world.make_ground_cdn(); }, pool);
}

void expect_reports_identical(const load::LoadReport& a, const load::LoadReport& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.no_coverage, b.no_coverage);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.latency_ms.raw(), b.latency_ms.raw());  // bit-exact, in order
  EXPECT_EQ(a.queue_wait_ms.raw(), b.queue_wait_ms.raw());
  EXPECT_EQ(a.satellite_utilization, b.satellite_utilization);
}

TEST(ShardedLoad, PartitionPreservesClientsAndOrder) {
  sim::World world(load_test_spec());
  const auto& clients = world.clients();
  const auto groups =
      load::partition_clients_by_serving(world.network(), clients, 3);
  ASSERT_EQ(groups.size(), 3u);
  std::size_t total = 0;
  for (const auto& group : groups) {
    total += group.size();
    // Within a group, clients keep their input (dataset) order.
    for (std::size_t i = 1; i < group.size(); ++i) {
      EXPECT_LT(group[i - 1].dataset_index, group[i].dataset_index);
    }
  }
  EXPECT_EQ(total, clients.size());
}

TEST(ShardedLoad, SingleShardMatchesSerialRunner) {
  sim::World world(load_test_spec());
  const load::LoadConfig config = load::load_config_from_spec(world.spec());
  const load::LoadReport serial = run_load(world, config);
  const load::ShardedLoadOutcome sharded = run_sharded(world, config, 1, nullptr);
  expect_reports_identical(serial, sharded.report);
  EXPECT_GT(sharded.windows, 0u);
  ASSERT_EQ(sharded.shard_completed.size(), 1u);
  EXPECT_EQ(sharded.shard_completed[0], serial.completed);
}

TEST(ShardedLoad, FixedShardCountIsThreadInvariant) {
  sim::World world(load_test_spec());
  const load::LoadConfig config = load::load_config_from_spec(world.spec());
  const load::ShardedLoadOutcome serial = run_sharded(world, config, 3, nullptr);
  EXPECT_GT(serial.report.completed, 0u);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    const load::ShardedLoadOutcome parallel = run_sharded(world, config, 3, &pool);
    expect_reports_identical(serial.report, parallel.report);
    EXPECT_EQ(serial.shard_completed, parallel.shard_completed);
    EXPECT_EQ(serial.windows, parallel.windows);
  }
}

TEST(ShardedLoad, RejectsPerRunGlobalProducers) {
  sim::World world(load_test_spec());
  load::LoadConfig faulted = load::load_config_from_spec(world.spec());
  using faults::Component;
  using faults::Transition;
  faulted.fault_schedule = faults::FaultSchedule::from_trace(
      {{Milliseconds{100.0}, Component::kSatellite, Transition::kFail, 1}});
  EXPECT_THROW((void)run_sharded(world, faulted, 2, nullptr), ConfigError);

  load::LoadConfig with_series = load::load_config_from_spec(world.spec());
  with_series.series_interval = Milliseconds{100.0};
  EXPECT_THROW((void)run_sharded(world, with_series, 2, nullptr), ConfigError);
}

}  // namespace
