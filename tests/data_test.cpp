// Dataset integrity tests: the embedded geography must satisfy the
// structural properties the paper's analysis depends on.
#include <gtest/gtest.h>

#include <set>

#include "data/datasets.hpp"
#include "geo/distance.hpp"
#include "util/error.hpp"

namespace spacecdn::data {
namespace {

TEST(Countries, LookupByCode) {
  EXPECT_EQ(country("MZ").name, "Mozambique");
  EXPECT_EQ(country("JP").region, Region::kAsia);
  EXPECT_THROW((void)country("XX"), spacecdn::NotFoundError);
}

TEST(Countries, CodesAreUnique) {
  std::set<std::string_view> codes;
  for (const auto& c : countries()) {
    EXPECT_TRUE(codes.insert(c.code).second) << "duplicate " << c.code;
    EXPECT_EQ(c.code.size(), 2u);
  }
}

TEST(Countries, StarlinkCoverageMatchesPaperScale) {
  // The paper analyses 55 countries with Starlink coverage (~60% of the
  // coverage footprint); our dataset carries a comparable population.
  const auto covered = starlink_countries();
  EXPECT_GE(covered.size(), 55u);
}

TEST(Countries, CalibrationValuesAreSane) {
  for (const auto& c : countries()) {
    EXPECT_GE(c.path_stretch, 1.0) << c.code;
    EXPECT_LE(c.path_stretch, 4.0) << c.code;
    EXPECT_GT(c.access_latency.value(), 0.0) << c.code;
    EXPECT_LT(c.access_latency.value(), 100.0) << c.code;
    EXPECT_GT(c.access_bandwidth.value(), 0.0) << c.code;
  }
}

TEST(Countries, AssignedPopsExist) {
  for (const auto& c : countries()) {
    if (!c.assigned_pop.empty()) {
      EXPECT_NO_THROW((void)pop(c.assigned_pop)) << c.code << " -> " << c.assigned_pop;
    }
  }
}

TEST(Countries, PaperTable1CountriesPresent) {
  // Every country in the paper's Table 1 must be representable.
  for (const char* code :
       {"GT", "MZ", "CY", "SZ", "HT", "KE", "ZM", "RW", "LT", "ES", "JP"}) {
    EXPECT_TRUE(country(code).starlink_available) << code;
  }
}

TEST(Countries, AfricanIslCountriesMapToFrankfurt) {
  // Paper: southern/eastern African subscribers land in Frankfurt.
  for (const char* code : {"MZ", "KE", "ZM", "RW", "SZ", "MW"}) {
    EXPECT_EQ(country(code).assigned_pop, "frankfurt") << code;
  }
  // Nigeria has its own PoP (the paper's outlier).
  EXPECT_EQ(country("NG").assigned_pop, "lagos");
}

TEST(Cities, LookupAndMembership) {
  EXPECT_EQ(city("Maputo").country_code, "MZ");
  EXPECT_THROW((void)city("Atlantis"), spacecdn::NotFoundError);
  const auto mz = cities_in("MZ");
  EXPECT_GE(mz.size(), 2u);
  EXPECT_THROW((void)cities_in("XX"), spacecdn::NotFoundError);
}

TEST(Cities, EveryStarlinkCountryHasACity) {
  for (const CountryInfo* c : starlink_countries()) {
    EXPECT_NO_THROW((void)cities_in(c->code)) << c->code;
  }
}

TEST(Cities, CoordinatesValid) {
  for (const auto& c : cities()) {
    EXPECT_GE(c.lat_deg, -90.0) << c.name;
    EXPECT_LE(c.lat_deg, 90.0) << c.name;
    EXPECT_GE(c.lon_deg, -180.0) << c.name;
    EXPECT_LE(c.lon_deg, 180.0) << c.name;
    EXPECT_GT(c.population_k, 0.0) << c.name;
    EXPECT_NO_THROW((void)country(c.country_code)) << c.name;
  }
}

TEST(Cities, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const auto& c : cities()) {
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate " << c.name;
  }
}

TEST(Cities, NearestCityIsItself) {
  const auto& maputo = city("Maputo");
  EXPECT_EQ(nearest_city(location(maputo)).name, "Maputo");
}

TEST(Cities, NearestCityOfOffshorePoint) {
  // A point in the English Channel resolves to a nearby European city.
  const auto& near = nearest_city({50.5, -0.5, 0.0});
  const Region region = country(near.country_code).region;
  EXPECT_EQ(region, Region::kEurope);
}

TEST(Pops, ExactlyTwentyTwo) {
  // Figure 2: "the currently 22 operational Starlink PoP locations".
  EXPECT_EQ(starlink_pops().size(), 22u);
}

TEST(Pops, KeysUniqueAndLookupWorks) {
  std::set<std::string_view> keys;
  for (const auto& p : starlink_pops()) {
    EXPECT_TRUE(keys.insert(p.key).second) << "duplicate " << p.key;
  }
  EXPECT_EQ(pop("frankfurt").country_code, "DE");
  EXPECT_THROW((void)pop("nowhere"), spacecdn::NotFoundError);
}

TEST(GroundStations, ThinAfricanFootprint) {
  // The reproduction's key structural property: nearly no gateways in
  // Africa (only Lagos), so southern/eastern African traffic must ride ISLs.
  int african = 0;
  for (const auto& gs : ground_stations()) {
    if (country(gs.country_code).region == Region::kAfrica) ++african;
  }
  EXPECT_EQ(african, 1);
}

TEST(GroundStations, EveryPopHasAGatewayWithin1500km) {
  // Traffic must be able to land near each PoP.
  for (const auto& p : starlink_pops()) {
    double best = 1e18;
    for (const auto& gs : ground_stations()) {
      best = std::min(best,
                      geo::great_circle_distance(location(p), location(gs)).value());
    }
    EXPECT_LT(best, 1500.0) << p.key;
  }
}

TEST(CdnSites, CoverageAndLookup) {
  EXPECT_GE(cdn_sites().size(), 100u);
  EXPECT_EQ(cdn_site("MPM").city, "Maputo");
  EXPECT_THROW((void)cdn_site("ZZZ"), spacecdn::NotFoundError);
}

TEST(CdnSites, IataCodesUnique) {
  std::set<std::string_view> codes;
  for (const auto& s : cdn_sites()) {
    EXPECT_TRUE(codes.insert(s.iata).second) << "duplicate " << s.iata;
  }
}

TEST(CdnSites, AfricanGapsMatchPaperTable1) {
  // Table 1 implies: no site in Zambia (terrestrial users travel ~1,200 km)
  // nor Eswatini (~300 km), but Maputo and Kigali have local sites.
  std::set<std::string_view> countries_with_sites;
  for (const auto& s : cdn_sites()) countries_with_sites.insert(s.country_code);
  EXPECT_FALSE(countries_with_sites.count("ZM"));
  EXPECT_FALSE(countries_with_sites.count("SZ"));
  EXPECT_TRUE(countries_with_sites.count("MZ"));
  EXPECT_TRUE(countries_with_sites.count("RW"));
  EXPECT_TRUE(countries_with_sites.count("KE"));
}

TEST(CdnSites, PopMetrosHaveSites) {
  // Anycast must have somewhere near each PoP to land requests.
  for (const auto& p : starlink_pops()) {
    double best = 1e18;
    for (const auto& s : cdn_sites()) {
      best =
          std::min(best, geo::great_circle_distance(location(p), location(s)).value());
    }
    EXPECT_LT(best, 300.0) << p.key;
  }
}

TEST(Regions, ToStringCoversAll) {
  EXPECT_EQ(to_string(Region::kAfrica), "Africa");
  EXPECT_EQ(to_string(Region::kEurope), "Europe");
  EXPECT_EQ(to_string(Region::kOceania), "Oceania");
}

}  // namespace
}  // namespace spacecdn::data
