// Tests for the dynamic fault-injection engine (faults/) and the
// self-healing layer on top of it (spacecdn/resilience, fetch_resilient,
// circuit breakers, correlated fault domains).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "data/datasets.hpp"
#include "faults/domains.hpp"
#include "faults/schedule.hpp"
#include "geo/distance.hpp"
#include "lsn/starlink.hpp"
#include "sim/world.hpp"
#include "spacecdn/circuit_breaker.hpp"
#include "spacecdn/placement.hpp"
#include "spacecdn/resilience.hpp"
#include "spacecdn/router.hpp"
#include "util/error.hpp"

namespace spacecdn {
namespace {

using faults::ChurnConfig;
using faults::Component;
using faults::FaultEvent;
using faults::FaultSchedule;
using faults::Transition;

ChurnConfig small_churn() {
  ChurnConfig config;
  config.horizon = Milliseconds::from_minutes(24.0 * 60.0);
  config.satellite = {Milliseconds::from_minutes(6.0 * 60.0),
                      Milliseconds::from_minutes(30.0)};
  config.cache_node = {Milliseconds::from_minutes(12.0 * 60.0),
                       Milliseconds::from_minutes(20.0)};
  return config;
}

TEST(FaultSchedule, SameSeedSameTimeline) {
  des::Rng a(77), b(77), c(78);
  const auto one = FaultSchedule::generate(small_churn(), {100, 8}, a);
  const auto two = FaultSchedule::generate(small_churn(), {100, 8}, b);
  const auto other = FaultSchedule::generate(small_churn(), {100, 8}, c);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one.events(), two.events());
  EXPECT_NE(one.events(), other.events());
}

TEST(FaultSchedule, EventsSortedAndWithinHorizon) {
  des::Rng rng(5);
  const auto config = small_churn();
  const auto schedule = FaultSchedule::generate(config, {64, 4}, rng);
  Milliseconds prev{0.0};
  for (const FaultEvent& event : schedule.events()) {
    EXPECT_GE(event.at.value(), prev.value());
    EXPECT_LE(event.at.value(), config.horizon.value());
    prev = event.at;
  }
}

TEST(FaultSchedule, PerInstanceAlternatingRenewal) {
  // Every instance's own timeline must strictly alternate fail, recover,
  // fail, ... starting from the up state, with strictly increasing times.
  des::Rng rng(6);
  const auto schedule = FaultSchedule::generate(small_churn(), {32, 0}, rng);
  std::map<std::pair<Component, std::uint32_t>, std::pair<Transition, double>> last;
  for (const FaultEvent& event : schedule.events()) {
    const auto key = std::make_pair(event.component, event.target);
    const auto it = last.find(key);
    if (it == last.end()) {
      EXPECT_EQ(event.transition, Transition::kFail) << "instance starts up";
    } else {
      EXPECT_NE(event.transition, it->second.first) << "must alternate";
      EXPECT_GT(event.at.value(), it->second.second);
    }
    last[key] = {event.transition, event.at.value()};
  }
  // Failure counts bracket recovery counts: each recover has its fail.
  EXPECT_GE(schedule.count(Component::kSatellite, Transition::kFail),
            schedule.count(Component::kSatellite, Transition::kRecover));
}

TEST(FaultSchedule, DisabledClassesProduceNoEvents) {
  ChurnConfig config;
  config.horizon = Milliseconds::from_minutes(60.0);
  config.satellite = {Milliseconds::from_minutes(60.0), Milliseconds::from_minutes(5.0)};
  des::Rng rng(9);
  const auto schedule = FaultSchedule::generate(config, {16, 16}, rng);
  EXPECT_EQ(schedule.count(Component::kGroundStation, Transition::kFail), 0u);
  EXPECT_EQ(schedule.count(Component::kIslTerminal, Transition::kFail), 0u);
  EXPECT_EQ(schedule.count(Component::kCacheNode, Transition::kFail), 0u);
}

TEST(FaultSchedule, RejectsBadConfig) {
  des::Rng rng(1);
  ChurnConfig no_horizon;  // horizon 0
  EXPECT_THROW((void)FaultSchedule::generate(no_horizon, {4, 0}, rng), ConfigError);
  ChurnConfig no_mttr;
  no_mttr.horizon = Milliseconds::from_minutes(60.0);
  no_mttr.satellite = {Milliseconds::from_minutes(10.0), Milliseconds{0.0}};
  EXPECT_THROW((void)FaultSchedule::generate(no_mttr, {4, 0}, rng), ConfigError);
}

TEST(FaultSchedule, TraceModeReplaysSortedStable) {
  const FaultEvent late{Milliseconds{20.0}, Component::kSatellite, Transition::kRecover, 3};
  const FaultEvent early{Milliseconds{5.0}, Component::kSatellite, Transition::kFail, 3};
  const FaultEvent tie_a{Milliseconds{20.0}, Component::kCacheNode, Transition::kFail, 1};
  const auto schedule = FaultSchedule::from_trace({late, early, tie_a});
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule.events()[0], early);
  EXPECT_EQ(schedule.events()[1], late);  // ties keep insertion order
  EXPECT_EQ(schedule.events()[2], tie_a);

  des::Simulator sim;
  std::vector<FaultEvent> fired;
  schedule.install(sim, [&](const FaultEvent& event) { fired.push_back(event); });
  sim.run();
  EXPECT_EQ(fired, schedule.events());
}

class ChurnControllerTest : public ::testing::Test {
 protected:
  ChurnControllerTest()
      : network_([] {
          lsn::StarlinkConfig cfg;
          cfg.shell = orbit::test_shell();
          return cfg;
        }()),
        fleet_(network_.constellation().size(),
               space::FleetConfig{Megabytes{1000.0}, cdn::CachePolicy::kLru}),
        controller_(network_, fleet_) {}

  static FaultEvent event(Component component, Transition transition,
                          std::uint32_t target) {
    return {Milliseconds{0.0}, component, transition, target};
  }

  lsn::StarlinkNetwork network_;
  space::SatelliteFleet fleet_;
  space::ChurnController controller_;
};

TEST_F(ChurnControllerTest, SatelliteOutageDropsIslsAndService) {
  controller_.apply(event(Component::kSatellite, Transition::kFail, 12));
  EXPECT_TRUE(network_.isl().is_failed(12));
  EXPECT_FALSE(fleet_.online(12));
  EXPECT_EQ(controller_.satellites_down(), 1u);

  controller_.apply(event(Component::kSatellite, Transition::kRecover, 12));
  EXPECT_FALSE(network_.isl().is_failed(12));
  EXPECT_TRUE(fleet_.online(12));
  EXPECT_EQ(controller_.satellites_down(), 0u);
  EXPECT_EQ(controller_.counters().satellite_failures, 1u);
  EXPECT_EQ(controller_.counters().satellite_recoveries, 1u);
}

TEST_F(ChurnControllerTest, DuplicateEventsAreIdempotent) {
  controller_.apply(event(Component::kSatellite, Transition::kFail, 3));
  controller_.apply(event(Component::kSatellite, Transition::kFail, 3));
  EXPECT_EQ(controller_.counters().satellite_failures, 1u);
  EXPECT_EQ(controller_.satellites_down(), 1u);
}

TEST_F(ChurnControllerTest, FlapAndOutageCompose) {
  // A laser flap during a whole-satellite outage: the ISLs stay down until
  // BOTH processes have recovered, and the bus comes back serving as soon as
  // the outage (alone) ends.
  controller_.apply(event(Component::kSatellite, Transition::kFail, 20));
  controller_.apply(event(Component::kIslTerminal, Transition::kFail, 20));
  controller_.apply(event(Component::kSatellite, Transition::kRecover, 20));
  EXPECT_TRUE(fleet_.online(20));              // bus is back...
  EXPECT_TRUE(network_.isl().is_failed(20));   // ...but terminals still flapped
  controller_.apply(event(Component::kIslTerminal, Transition::kRecover, 20));
  EXPECT_FALSE(network_.isl().is_failed(20));
}

TEST_F(ChurnControllerTest, GatewayOutageIsTracked) {
  controller_.apply(event(Component::kGroundStation, Transition::kFail, 0));
  EXPECT_TRUE(network_.ground().gateway_failed(0));
  EXPECT_EQ(network_.ground().failed_gateway_count(), 1u);
  controller_.apply(event(Component::kGroundStation, Transition::kRecover, 0));
  EXPECT_EQ(network_.ground().failed_gateway_count(), 0u);
}

TEST_F(ChurnControllerTest, CacheCrashDropsContents) {
  const cdn::ContentItem obj{2, Megabytes{1.0}, data::Region::kEurope};
  ASSERT_TRUE(fleet_.cache(8).insert(obj, Milliseconds{0.0}));
  controller_.apply(event(Component::kCacheNode, Transition::kFail, 8));
  EXPECT_FALSE(fleet_.cache_up(8));
  EXPECT_FALSE(fleet_.cache(8).contains(obj.id));
  // The satellite itself still flies and relays: no ISL surgery happened.
  EXPECT_FALSE(network_.isl().is_failed(8));
  controller_.apply(event(Component::kCacheNode, Transition::kRecover, 8));
  EXPECT_TRUE(fleet_.cache_up(8));
  EXPECT_EQ(controller_.counters().cache_crashes, 1u);
  EXPECT_EQ(controller_.counters().cache_restores, 1u);
}

TEST(RepairDaemon, RestoresReplicasFromSurvivingHolders) {
  const orbit::WalkerConstellation shell(orbit::test_shell());
  space::SatelliteFleet fleet(shell.size(), space::FleetConfig{Megabytes{1000.0},
                                                               cdn::CachePolicy::kLru});
  space::PlacementConfig pcfg;
  pcfg.copies_per_plane = 2;
  const space::ContentPlacement placement(shell, pcfg);
  const std::vector<cdn::ContentItem> catalog{
      {1, Megabytes{2.0}, data::Region::kEurope},
      {2, Megabytes{2.0}, data::Region::kAsia}};
  for (const auto& item : catalog) placement.place(fleet, item, Milliseconds{0.0});

  space::RepairDaemon daemon(fleet, placement, catalog, {});
  // Invariant holds: a scan repairs nothing.
  const auto clean = daemon.run_once(Milliseconds{1.0});
  EXPECT_EQ(clean.objects_scanned, catalog.size());
  EXPECT_EQ(clean.under_replicated, 0u);

  // Crash one holder of object 1: its copies are lost until the process
  // restarts, then the next audit re-replicates from a surviving holder.
  const std::uint32_t victim = placement.replicas(1).front();
  fleet.crash_cache(victim);
  daemon.note_crash(victim, Milliseconds{10.0});
  const auto while_down = daemon.run_once(Milliseconds{20.0});
  EXPECT_GT(while_down.unrepairable, 0u);  // slot dark; repair deferred
  EXPECT_EQ(daemon.open_crashes(), 1u);

  fleet.restore_cache(victim);
  const auto repaired = daemon.run_once(Milliseconds{500.0});
  EXPECT_GT(repaired.re_replicated, 0u);
  EXPECT_EQ(repaired.ground_refills, 0u);  // space copies survived
  EXPECT_TRUE(fleet.holds(victim, 1));
  EXPECT_EQ(daemon.open_crashes(), 0u);
  ASSERT_EQ(daemon.time_to_repair().size(), 1u);
  EXPECT_DOUBLE_EQ(daemon.time_to_repair().mean(), 490.0);  // crash at 10, fixed at 500
}

TEST(RepairDaemon, FallsBackToGroundWhenAllSpaceCopiesDie) {
  const orbit::WalkerConstellation shell(orbit::test_shell());
  space::SatelliteFleet fleet(shell.size(), space::FleetConfig{Megabytes{1000.0},
                                                               cdn::CachePolicy::kLru});
  space::PlacementConfig pcfg;
  pcfg.copies_per_plane = 1;
  pcfg.plane_stride = 8;  // a single replica in the whole test shell
  const space::ContentPlacement placement(shell, pcfg);
  const std::vector<cdn::ContentItem> catalog{{7, Megabytes{2.0}, data::Region::kEurope}};
  placement.place(fleet, catalog.front(), Milliseconds{0.0});

  const auto replicas = placement.replicas(7);
  ASSERT_EQ(replicas.size(), 1u);
  fleet.crash_cache(replicas.front());
  fleet.restore_cache(replicas.front());

  space::RepairDaemon daemon(fleet, placement, catalog, {});
  const auto report = daemon.run_once(Milliseconds{100.0});
  EXPECT_EQ(report.re_replicated, 0u);
  EXPECT_EQ(report.ground_refills, 1u);  // no surviving space holder
  EXPECT_TRUE(fleet.holds(replicas.front(), 7));
}

TEST(ResilientFetch, HealthyPathSucceedsWithoutRetry) {
  // Shell 1; shared, never mutated here.
  lsn::StarlinkNetwork& network = sim::shared_world().network();
  space::SatelliteFleet fleet(network.constellation().size(),
                              space::FleetConfig{Megabytes{1000.0},
                                                 cdn::CachePolicy::kLru});
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  space::SpaceCdnRouter router(network, fleet, ground);

  const auto& city = data::city("London");
  const cdn::ContentItem obj{3, Megabytes{5.0}, data::Region::kEurope};
  des::Rng rng(40);
  const auto result = router.fetch_resilient(data::location(city),
                                             data::country(city.country_code), obj, rng,
                                             Milliseconds{0.0});
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_EQ(result.retries, 0u);
  ASSERT_TRUE(result.served.has_value());
  EXPECT_EQ(result.served->tier, space::FetchTier::kGround);  // cold caches
  EXPECT_DOUBLE_EQ(result.total_latency.value(), result.served->rtt.value());
}

TEST(ResilientFetch, ExhaustsBoundedRetriesUnderTotalLoss) {
  lsn::StarlinkNetwork& network = sim::shared_world().network();
  space::SatelliteFleet fleet(network.constellation().size(),
                              space::FleetConfig{Megabytes{1000.0},
                                                 cdn::CachePolicy::kLru});
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  space::RouterConfig config;
  config.resilience.max_attempts = 3;
  config.resilience.attempt_timeout = Milliseconds{100.0};
  config.resilience.backoff_base = Milliseconds{10.0};
  config.resilience.backoff_multiplier = 2.0;
  config.resilience.transient_loss = 1.0;  // every attempt is lost in flight
  space::SpaceCdnRouter router(network, fleet, ground, config);

  const auto& city = data::city("Tokyo");
  const cdn::ContentItem obj{6, Megabytes{5.0}, data::Region::kAsia};
  des::Rng rng(41);
  const auto result = router.fetch_resilient(data::location(city),
                                             data::country(city.country_code), obj, rng,
                                             Milliseconds{0.0});
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.served.has_value());
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_EQ(result.retries, 2u);
  // 3 burned timeouts plus backoffs 10 and 20 ms between the attempts.
  EXPECT_DOUBLE_EQ(result.total_latency.value(), 3 * 100.0 + 10.0 + 20.0);
}

TEST(ResilientFetch, DeadlineBudgetCapsTotalLatency) {
  lsn::StarlinkNetwork& network = sim::shared_world().network();
  space::SatelliteFleet fleet(network.constellation().size(),
                              space::FleetConfig{Megabytes{1000.0},
                                                 cdn::CachePolicy::kLru});
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  space::RouterConfig config;
  config.resilience.max_attempts = 10;
  config.resilience.attempt_timeout = Milliseconds{100.0};
  config.resilience.backoff_base = Milliseconds{10.0};
  config.resilience.backoff_multiplier = 2.0;
  config.resilience.transient_loss = 1.0;  // nothing ever lands
  config.resilience.deadline = Milliseconds{250.0};
  space::SpaceCdnRouter router(network, fleet, ground, config);

  const auto& city = data::city("Tokyo");
  const cdn::ContentItem obj{6, Megabytes{5.0}, data::Region::kAsia};
  des::Rng rng(41);
  const auto result = router.fetch_resilient(data::location(city),
                                             data::country(city.country_code), obj, rng,
                                             Milliseconds{0.0});
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.deadline_exceeded);
  // 100 + 10 backoff + 100 + 20 backoff leaves a 20 ms budget for attempt 3;
  // the worst case is exactly the deadline, never more.
  EXPECT_DOUBLE_EQ(result.total_latency.value(), 250.0);
  EXPECT_EQ(result.attempts, 3u);
}

TEST(ResilientFetch, HedgeRacesSecondSatelliteAndNeverWorsensRtt) {
  lsn::StarlinkNetwork& network = sim::shared_world().network();
  space::SatelliteFleet fleet(network.constellation().size(),
                              space::FleetConfig{Megabytes{1000.0},
                                                 cdn::CachePolicy::kLru});
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  const auto& city = data::city("London");
  const cdn::ContentItem obj{3, Megabytes{5.0}, data::Region::kEurope};

  space::SpaceCdnRouter plain(network, fleet, ground);
  des::Rng rng_plain(40);
  const auto base = plain.fetch_resilient(data::location(city),
                                          data::country(city.country_code), obj,
                                          rng_plain, Milliseconds{0.0});
  ASSERT_TRUE(base.success);

  space::RouterConfig config;
  config.resilience.hedge_delay = Milliseconds{0.01};  // hedge almost always
  space::SpaceCdnRouter hedged_router(network, fleet, ground, config);
  des::Rng rng_hedged(40);
  const auto hedged = hedged_router.fetch_resilient(data::location(city),
                                                    data::country(city.country_code),
                                                    obj, rng_hedged, Milliseconds{0.0});
  ASSERT_TRUE(hedged.success);
  EXPECT_TRUE(hedged.hedged);
  // The client keeps min(primary, hedge_delay + hedge), so hedging can only
  // improve the observed RTT; a win must actually be cheaper.
  EXPECT_LE(hedged.served->rtt.value(), base.served->rtt.value());
  if (hedged.hedge_won) {
    EXPECT_LT(hedged.served->rtt.value(), base.served->rtt.value());
  }
}

// ---------------------------------------------------------------------------
// Correlated fault domains
// ---------------------------------------------------------------------------

TEST(FaultDomains, PlaneDomainCoversExactlyOnePlane) {
  const orbit::WalkerConstellation& constellation = sim::shared_world().constellation();
  const std::uint32_t plane = 3;
  const auto domain = faults::plane_domain(constellation, plane);
  EXPECT_EQ(domain.size(), constellation.design().sats_per_plane);
  for (std::uint32_t slot = 0; slot < constellation.design().sats_per_plane; ++slot) {
    EXPECT_EQ(domain.members[slot].first, Component::kSatellite);
    EXPECT_EQ(domain.members[slot].second, constellation.id_of({plane, slot}));
  }
  EXPECT_THROW((void)faults::plane_domain(constellation, constellation.design().planes),
               ConfigError);
}

TEST(FaultDomains, GatewayRegionSelectsByRadius) {
  const auto gateways = data::ground_stations();
  const geo::GeoPoint frankfurt{50.2, 8.6, 0.0};
  const Kilometers radius{2000.0};
  const auto domain =
      faults::gateway_region_domain("europe", gateways, frankfurt, radius);
  ASSERT_GE(domain.size(), 5u);  // the European teleport cluster
  EXPECT_LT(domain.size(), gateways.size());
  for (const auto& [component, target] : domain.members) {
    EXPECT_EQ(component, Component::kGroundStation);
    const auto& gw = gateways[target];
    EXPECT_LE(geo::great_circle_distance(frankfurt, {gw.lat_deg, gw.lon_deg, 0.0})
                  .value(),
              radius.value());
  }
  // A 1 km radius keeps only the epicentre's own gateway.
  EXPECT_EQ(
      faults::gateway_region_domain("fra", gateways, frankfurt, Kilometers{1.0}).size(),
      1u);
}

TEST(FaultDomains, CorrelatedTraceFansOutAtomicallyAndDeterministically) {
  const orbit::WalkerConstellation& constellation = sim::shared_world().constellation();
  const auto domain = faults::constellation_domain(constellation);
  ASSERT_EQ(domain.size(), constellation.size());
  const std::vector<faults::CorrelatedEvent> events{
      {Milliseconds{1'000.0}, Milliseconds{500.0}, 0.25}};

  des::Rng a(9), b(9), c(10);
  const auto one = faults::correlated_trace(domain, events, a);
  const auto two = faults::correlated_trace(domain, events, b);
  const auto other = faults::correlated_trace(domain, events, c);
  EXPECT_EQ(one.events(), two.events());
  EXPECT_NE(one.events(), other.events());

  const auto expected = static_cast<std::size_t>(0.25 * constellation.size() + 0.5);
  EXPECT_EQ(one.count(Component::kSatellite, Transition::kFail), expected);
  EXPECT_EQ(one.count(Component::kSatellite, Transition::kRecover), expected);
  for (const FaultEvent& event : one.events()) {
    // Atomic fan-out: every member fails and recovers at the shared instants.
    EXPECT_DOUBLE_EQ(event.at.value(),
                     event.transition == Transition::kFail ? 1'000.0 : 1'500.0);
  }
}

TEST(FaultDomains, FullFractionTakesWholeDomainWithoutRng) {
  const orbit::WalkerConstellation& constellation = sim::shared_world().constellation();
  const auto domain = faults::plane_domain(constellation, 0);
  des::Rng a(1), b(2);  // different seeds: fraction 1.0 must not consult them
  const std::vector<faults::CorrelatedEvent> events{
      {Milliseconds{100.0}, Milliseconds{50.0}, 1.0}};
  EXPECT_EQ(faults::correlated_trace(domain, events, a).events(),
            faults::correlated_trace(domain, events, b).events());
  EXPECT_EQ(faults::correlated_trace(domain, events, a).size(), 2 * domain.size());
}

TEST(FaultDomains, RejectsBadEvents) {
  const auto domain = faults::plane_domain(sim::shared_world().constellation(), 0);
  des::Rng rng(3);
  EXPECT_THROW((void)faults::correlated_trace(
                   domain, {{Milliseconds{0.0}, Milliseconds{-1.0}, 1.0}}, rng),
               ConfigError);
  EXPECT_THROW((void)faults::correlated_trace(
                   domain, {{Milliseconds{0.0}, Milliseconds{1.0}, 1.5}}, rng),
               ConfigError);
}

TEST(FaultDomains, CorrelatedScheduleIsSeededAndHorizonBounded) {
  const auto domain = faults::constellation_domain(sim::shared_world().constellation());
  const faults::CorrelatedProcess process{Milliseconds{5'000.0}, Milliseconds{1'000.0},
                                          0.1};
  const Milliseconds horizon{60'000.0};
  des::Rng a(21), b(21);
  const auto one = faults::correlated_schedule(domain, process, horizon, a);
  const auto two = faults::correlated_schedule(domain, process, horizon, b);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one.events(), two.events());
  for (const FaultEvent& event : one.events()) {
    EXPECT_LT(event.at.value(), horizon.value());
  }
}

TEST(MergeSchedules, UnionDepthPreventsEarlyRecovery) {
  // A renewal blip (fail 200, recover 400) inside a correlated storm window
  // (fail 100, recover 1000) must not revive the satellite at 400.
  const auto storm = FaultSchedule::from_trace(
      {{Milliseconds{100.0}, Component::kSatellite, Transition::kFail, 5},
       {Milliseconds{1'000.0}, Component::kSatellite, Transition::kRecover, 5}});
  const auto blip = FaultSchedule::from_trace(
      {{Milliseconds{200.0}, Component::kSatellite, Transition::kFail, 5},
       {Milliseconds{400.0}, Component::kSatellite, Transition::kRecover, 5}});
  const auto merged = faults::merge_schedules({&storm, &blip});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.events()[0],
            (FaultEvent{Milliseconds{100.0}, Component::kSatellite, Transition::kFail, 5}));
  EXPECT_EQ(merged.events()[1], (FaultEvent{Milliseconds{1'000.0}, Component::kSatellite,
                                            Transition::kRecover, 5}));
}

TEST(MergeSchedules, DisjointTargetsPassThroughSorted) {
  const auto a = FaultSchedule::from_trace(
      {{Milliseconds{300.0}, Component::kSatellite, Transition::kFail, 1},
       {Milliseconds{500.0}, Component::kSatellite, Transition::kRecover, 1}});
  const auto b = FaultSchedule::from_trace(
      {{Milliseconds{100.0}, Component::kGroundStation, Transition::kFail, 2},
       {Milliseconds{200.0}, Component::kGroundStation, Transition::kRecover, 2}});
  const auto merged = faults::merge_schedules({&a, &b});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_TRUE(std::is_sorted(
      merged.events().begin(), merged.events().end(),
      [](const FaultEvent& x, const FaultEvent& y) { return x.at < y.at; }));
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

TEST(CircuitBreaker, OpensAfterThresholdThenProbesAfterCooldown) {
  space::CircuitBreaker breaker({.failure_threshold = 3,
                                 .open_cooldown = Milliseconds{1'000.0}});
  ASSERT_TRUE(breaker.enabled());
  EXPECT_TRUE(breaker.allow(Milliseconds{0.0}));
  breaker.record_failure(Milliseconds{10.0});
  breaker.record_failure(Milliseconds{20.0});
  EXPECT_EQ(breaker.state(), space::CircuitBreaker::State::kClosed);
  breaker.record_failure(Milliseconds{30.0});
  EXPECT_EQ(breaker.state(), space::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);

  // Open: everything short-circuits until the cooldown elapses.
  EXPECT_FALSE(breaker.allow(Milliseconds{500.0}));
  EXPECT_EQ(breaker.short_circuits(), 1u);
  // Cooldown over: exactly one probe passes, concurrent calls still blocked.
  EXPECT_TRUE(breaker.allow(Milliseconds{1'031.0}));
  EXPECT_EQ(breaker.state(), space::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow(Milliseconds{1'032.0}));
  // Probe succeeds: closed again, failure count reset.
  breaker.record_success();
  EXPECT_EQ(breaker.state(), space::CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
  EXPECT_TRUE(breaker.allow(Milliseconds{1'040.0}));
}

TEST(CircuitBreaker, HalfOpenFailureReopens) {
  space::CircuitBreaker breaker({.failure_threshold = 1,
                                 .open_cooldown = Milliseconds{100.0}});
  breaker.record_failure(Milliseconds{0.0});
  EXPECT_EQ(breaker.state(), space::CircuitBreaker::State::kOpen);
  EXPECT_TRUE(breaker.allow(Milliseconds{150.0}));  // half-open probe
  breaker.record_failure(Milliseconds{160.0});      // probe fails
  EXPECT_EQ(breaker.state(), space::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  // The new open window counts from the probe failure.
  EXPECT_FALSE(breaker.allow(Milliseconds{200.0}));
  EXPECT_TRUE(breaker.allow(Milliseconds{261.0}));
}

TEST(CircuitBreaker, ZeroThresholdDisables) {
  space::CircuitBreaker breaker(space::BreakerConfig{});
  EXPECT_FALSE(breaker.enabled());
  for (int i = 0; i < 100; ++i) breaker.record_failure(Milliseconds{0.0});
  EXPECT_EQ(breaker.state(), space::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(Milliseconds{0.0}));
}

}  // namespace
}  // namespace spacecdn