// Unit tests for the discrete-event core: simulator semantics, RNG
// distributions, statistics containers.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <vector>

#include "des/random.hpp"
#include "des/simulator.hpp"
#include "des/stats.hpp"
#include "util/error.hpp"

namespace spacecdn::des {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(Milliseconds{30.0}, [&] { order.push_back(3); });
  sim.schedule(Milliseconds{10.0}, [&] { order.push_back(1); });
  sim.schedule(Milliseconds{20.0}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().value(), 30.0);
  EXPECT_EQ(sim.processed_events(), 3u);
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(Milliseconds{5.0}, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Milliseconds{1.0}, [&] {
    ++fired;
    sim.schedule(Milliseconds{1.0}, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now().value(), 2.0);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Milliseconds{10.0}, [&] { ++fired; });
  sim.schedule(Milliseconds{50.0}, [&] { ++fired; });
  sim.run_until(Milliseconds{20.0});
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().value(), 20.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule(Milliseconds{5.0}, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // already cancelled
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelOfFiredEventIsFalse) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule(Milliseconds{5.0}, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // The event already ran; cancelling its id must report false and must not
  // disturb later events, even though the pooled slot gets recycled.
  EXPECT_FALSE(sim.cancel(id));
  int later = 0;
  const EventId reused = sim.schedule(Milliseconds{1.0}, [&] { ++later; });
  EXPECT_FALSE(sim.cancel(id));  // stale generation, not the new occupant
  sim.run();
  EXPECT_EQ(later, 1);
  EXPECT_FALSE(sim.cancel(reused));
}

TEST(Simulator, RunUntilEmptyQueueAdvancesClock) {
  Simulator sim;
  sim.run_until(Milliseconds{42.0});
  EXPECT_DOUBLE_EQ(sim.now().value(), 42.0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.processed_events(), 0u);
  // run() on an empty queue is likewise a no-op that leaves the clock alone.
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now().value(), 42.0);
}

TEST(Simulator, SameInstantStableOrderingAcrossThousandEvents) {
  Simulator sim;
  std::vector<int> order;
  order.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    sim.schedule(Milliseconds{7.0}, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAtInThePastThrowsConfigError) {
  Simulator sim;
  sim.schedule(Milliseconds{10.0}, [] {});
  sim.run();  // clock is now 10
  EXPECT_THROW(sim.schedule_at(Milliseconds{9.999}, [] {}), ConfigError);
  // run_until also moves the clock; scheduling before it must throw too.
  sim.run_until(Milliseconds{20.0});
  EXPECT_THROW(sim.schedule_at(Milliseconds{15.0}, [] {}), ConfigError);
  // Scheduling exactly at now() is allowed (zero-delay follow-up work).
  int fired = 0;
  sim.schedule_at(Milliseconds{20.0}, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, SlotPoolRecyclesWithoutGrowth) {
  // A long-running open-loop simulation keeps scheduling follow-up events;
  // the pooled storage must keep the live-event count exact throughout.
  Simulator sim;
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 10'000) sim.schedule(Milliseconds{1.0}, tick);
  };
  sim.schedule(Milliseconds{1.0}, tick);
  sim.run();
  EXPECT_EQ(fired, 10'000);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.processed_events(), 10'000u);
}

TEST(Simulator, StepRunsExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Milliseconds{1.0}, [&] { ++fired; });
  sim.schedule(Milliseconds{2.0}, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RejectsNegativeDelayAndPastSchedule) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(Milliseconds{-1.0}, [] {}), ConfigError);
  sim.schedule(Milliseconds{10.0}, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(Milliseconds{5.0}, [] {}), ConfigError);
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, LognormalMedianIsMedian) {
  Rng rng(3);
  SampleSet s;
  for (int i = 0; i < 20000; ++i) s.add(rng.lognormal_median(20.0, 0.5));
  EXPECT_NEAR(s.median(), 20.0, 0.6);
  // Zero sigma degenerates to the median exactly.
  EXPECT_DOUBLE_EQ(rng.lognormal_median(7.0, 0.0), 7.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(4);
  OnlineSummary s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(10.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.3);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(5);
  std::vector<double> counts(3, 0.0);
  for (int i = 0; i < 30000; ++i) counts[rng.weighted_index({1.0, 2.0, 7.0})] += 1.0;
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(6);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::uint32_t v : sample) EXPECT_LT(v, 100u);
  EXPECT_THROW((void)rng.sample_without_replacement(5, 6), ConfigError);
}

TEST(Zipf, PmfSumsToOne) {
  const ZipfDistribution zipf(1000, 0.9);
  double total = 0.0;
  for (std::uint64_t r = 1; r <= 1000; ++r) total += zipf.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankOneMostPopular) {
  const ZipfDistribution zipf(100, 1.0);
  EXPECT_GT(zipf.pmf(1), zipf.pmf(2));
  EXPECT_GT(zipf.pmf(2), zipf.pmf(50));
}

TEST(Zipf, SampleFrequenciesFollowPmf) {
  const ZipfDistribution zipf(50, 0.8);
  Rng rng(7);
  std::vector<double> counts(51, 0.0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[zipf.sample(rng)] += 1.0;
  EXPECT_NEAR(counts[1] / n, zipf.pmf(1), 0.01);
  EXPECT_NEAR(counts[10] / n, zipf.pmf(10), 0.01);
}

TEST(Zipf, ZeroExponentIsUniform) {
  const ZipfDistribution zipf(10, 0.0);
  EXPECT_NEAR(zipf.pmf(1), 0.1, 1e-12);
  EXPECT_NEAR(zipf.pmf(10), 0.1, 1e-12);
}

TEST(OnlineSummary, MatchesDirectComputation) {
  OnlineSummary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineSummary, MergeMatchesSingleStream) {
  // Chan et al. parallel combine: merging per-shard summaries must agree
  // with accumulating the concatenated stream into one summary.
  Rng rng(17);
  std::vector<double> all;
  OnlineSummary whole;
  OnlineSummary shards[3];
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.lognormal_median(50.0, 0.7);
    all.push_back(x);
    whole.add(x);
    shards[i % 3].add(x);
  }
  OnlineSummary merged;
  for (const OnlineSummary& shard : shards) merged.merge(shard);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9 * whole.mean());
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9 * whole.variance());
}

TEST(OnlineSummary, MergeIsAssociativeAcrossShards) {
  // Parallel sweeps fold per-shard summaries in whatever grouping the
  // scheduler produced; (a+b)+c and a+(b+c) must agree with the flat fold
  // to floating-point tolerance, or thread count would leak into results.
  Rng rng(19);
  OnlineSummary shards[4];
  for (int i = 0; i < 4000; ++i) {
    shards[i % 4].add(rng.lognormal_median(30.0, 0.9));
  }

  OnlineSummary left;  // ((a+b)+c)+d
  for (const OnlineSummary& shard : shards) left.merge(shard);

  OnlineSummary bc = shards[1];  // a+((b+c)+d)
  bc.merge(shards[2]);
  bc.merge(shards[3]);
  OnlineSummary right = shards[0];
  right.merge(bc);

  OnlineSummary pairs = shards[0];  // (a+b)+(c+d)
  pairs.merge(shards[1]);
  OnlineSummary cd = shards[2];
  cd.merge(shards[3]);
  pairs.merge(cd);

  for (const OnlineSummary* grouped : {&right, &pairs}) {
    EXPECT_EQ(grouped->count(), left.count());
    EXPECT_DOUBLE_EQ(grouped->min(), left.min());
    EXPECT_DOUBLE_EQ(grouped->max(), left.max());
    EXPECT_NEAR(grouped->mean(), left.mean(), 1e-9 * left.mean());
    EXPECT_NEAR(grouped->variance(), left.variance(), 1e-9 * left.variance());
  }

  // Merging an empty shard is the identity in any position.
  OnlineSummary with_empty = left;
  with_empty.merge(OnlineSummary{});
  EXPECT_EQ(with_empty.count(), left.count());
  EXPECT_DOUBLE_EQ(with_empty.mean(), left.mean());
  EXPECT_DOUBLE_EQ(with_empty.variance(), left.variance());
}

TEST(OnlineSummary, MergeSkewedShardSizes) {
  // 1 sample vs 10,000: the combine must stay exact, not just balanced.
  OnlineSummary big, tiny, whole;
  Rng rng(18);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    big.add(x);
    whole.add(x);
  }
  tiny.add(123.0);
  whole.add(123.0);
  OnlineSummary merged = big;
  merged.merge(tiny);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12 * whole.mean());
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9 * whole.variance());
  EXPECT_DOUBLE_EQ(merged.max(), 123.0);
}

TEST(OnlineSummary, MergeEmptyEdgeCases) {
  OnlineSummary empty1, empty2;
  empty1.merge(empty2);
  EXPECT_EQ(empty1.count(), 0u);

  OnlineSummary filled;
  filled.add(3.0);
  filled.add(5.0);
  OnlineSummary target;
  target.merge(filled);  // empty <- filled copies
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 4.0);
  EXPECT_DOUBLE_EQ(target.min(), 3.0);

  filled.merge(empty1);  // filled <- empty is a no-op
  EXPECT_EQ(filled.count(), 2u);
  EXPECT_DOUBLE_EQ(filled.mean(), 4.0);
}

TEST(SampleSet, QuantilesInterpolate) {
  SampleSet s({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 1.75);
}

TEST(SampleSet, SingleSample) {
  SampleSet s({42.0});
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 42.0);
}

TEST(SampleSet, RejectsEmptyAndBadQuantile) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW((void)s.median(), ConfigError);
  s.add(1.0);
  EXPECT_THROW((void)s.quantile(1.5), ConfigError);
}

TEST(SampleSet, CdfIsMonotone) {
  Rng rng(8);
  SampleSet s;
  for (int i = 0; i < 1000; ++i) s.add(rng.normal(50.0, 10.0));
  const auto cdf = s.cdf(20);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].cumulative_probability, cdf[i].cumulative_probability);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_probability, 1.0);
}

TEST(SampleSet, FractionBelow) {
  SampleSet s({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.fraction_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_below(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_below(10.0), 1.0);
}

TEST(SampleSet, BoxStats) {
  SampleSet s({1.0, 2.0, 3.0, 4.0, 100.0});
  const BoxStats box = s.box_stats();
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.median, 3.0);
  EXPECT_DOUBLE_EQ(box.max, 100.0);
  EXPECT_DOUBLE_EQ(box.mean, 22.0);
  EXPECT_EQ(box.count, 5u);
}

TEST(SampleSet, AddAllInvalidatesCache) {
  SampleSet s({5.0});
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add_all({1.0, 9.0});
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
}

TEST(Histogram, RenderSketchesBars) {
  Histogram h(0.0, 10.0, 2);
  for (int i = 0; i < 8; ++i) h.add(2.0);
  h.add(7.0);
  std::ostringstream os;
  h.render(os, 8);
  const std::string out = os.str();
  EXPECT_NE(out.find("########"), std::string::npos);  // peak bin at full width
  EXPECT_NE(out.find("[     0.0,      5.0)"), std::string::npos);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-5.0);  // clamps to bin 0
  h.add(50.0);  // clamps to bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lower(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(1), 4.0);
  EXPECT_THROW((void)h.count(5), ConfigError);
}

}  // namespace
}  // namespace spacecdn::des
