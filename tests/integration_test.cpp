// Integration tests: end-to-end scenarios across the full stack, matching
// the paper's headline claims.
#include <gtest/gtest.h>

#include "cdn/deployment.hpp"
#include "cdn/popularity.hpp"
#include "data/datasets.hpp"
#include "des/simulator.hpp"
#include "measurement/aim.hpp"
#include "measurement/analysis.hpp"
#include "measurement/web.hpp"
#include "sim/world.hpp"
#include "spacecdn/duty_cycle.hpp"
#include "spacecdn/placement.hpp"
#include "spacecdn/router.hpp"

namespace spacecdn {
namespace {

// Read-only Shell-1 substrate, shared with every other fixture in the
// process via the scenario engine (built once, memoized).
const lsn::StarlinkNetwork& shell1() { return sim::shared_world().network(); }

TEST(EndToEnd, TerrestrialBeatsStarlinkToCdnsAlmostEverywhere) {
  // Section 3.2: "Terrestrial connections almost always achieve lower
  // latencies to CDNs, typically around 50 ms less than Starlink."
  measurement::AimConfig cfg;
  cfg.tests_per_city = 10;
  measurement::AimCampaign campaign(shell1(), cfg);
  std::vector<measurement::SpeedTestRecord> records;
  for (const char* cc : {"GB", "DE", "ES", "US", "BR", "JP", "AU", "CY", "LT", "GT"}) {
    auto r = campaign.run_country(data::country(cc));
    records.insert(records.end(), r.begin(), r.end());
  }
  const measurement::AimAnalysis analysis(std::move(records));
  int terrestrial_wins = 0, total = 0;
  des::OnlineSummary deltas;
  for (const auto& country : analysis.countries()) {
    if (const auto delta = analysis.median_delta_ms(country)) {
      ++total;
      if (*delta > 0) ++terrestrial_wins;
      deltas.add(*delta);
    }
  }
  EXPECT_EQ(terrestrial_wins, total);
  EXPECT_GT(deltas.mean(), 20.0);
  EXPECT_LT(deltas.mean(), 90.0);
}

TEST(EndToEnd, AfricanIslCountriesSeeLargestDegradation) {
  // Section 3.2: African countries served via ISLs see 120-150 ms extra.
  measurement::AimConfig cfg;
  cfg.tests_per_city = 10;
  measurement::AimCampaign campaign(shell1(), cfg);
  std::vector<measurement::SpeedTestRecord> records;
  for (const char* cc : {"MZ", "GB"}) {
    auto r = campaign.run_country(data::country(cc));
    records.insert(records.end(), r.begin(), r.end());
  }
  const measurement::AimAnalysis analysis(std::move(records));
  const auto mz = analysis.median_delta_ms("MZ");
  const auto gb = analysis.median_delta_ms("GB");
  ASSERT_TRUE(mz && gb);
  EXPECT_GT(*mz, 90.0);
  EXPECT_GT(*mz, 2.0 * *gb);
}

TEST(EndToEnd, MaputoCaseStudyMatchesFigure3) {
  // Figure 3: over Starlink, Maputo's best site is Frankfurt (~160 ms) and
  // African sites are worse (~250 ms); over terrestrial, Maputo itself wins
  // (~20 ms) and Johannesburg is within ~70 ms.
  measurement::AimConfig cfg;
  cfg.tests_per_city = 60;
  measurement::AimCampaign campaign(shell1(), cfg);
  const measurement::AimAnalysis analysis(campaign.run_country(data::country("MZ")));

  const auto star_opt =
      analysis.optimal_site("Maputo", measurement::IspType::kStarlink);
  ASSERT_TRUE(star_opt.has_value());
  // Best Starlink mapping lands in Europe, not Africa.
  const auto& star_site = data::cdn_site(star_opt->site);
  EXPECT_EQ(data::country(star_site.country_code).region, data::Region::kEurope);

  const auto terr_opt =
      analysis.optimal_site("Maputo", measurement::IspType::kTerrestrial);
  ASSERT_TRUE(terr_opt.has_value());
  EXPECT_EQ(terr_opt->site, "MPM");
  EXPECT_LT(terr_opt->median_idle_rtt.value(), 25.0);

  // Over Starlink, reaching an African site costs more than the European
  // optimum (the "skips the nearby CDN" effect).
  for (const auto& site : analysis.site_stats("Maputo", measurement::IspType::kStarlink)) {
    if (site.site == "JNB" || site.site == "CPT") {
      EXPECT_GT(site.median_idle_rtt.value(), star_opt->median_idle_rtt.value() + 30.0);
    }
  }
}

TEST(EndToEnd, SpaceCdnWithinFiveHopsIsCompetitive) {
  // Figure 7's claim: content within <=5 ISL hops makes SpaceCDN comparable
  // to terrestrial CDN access; even 10 hops halves today's Starlink latency.
  const auto& net = shell1();
  const orbit::WalkerConstellation& cons = net.constellation();
  space::SatelliteFleet fleet(cons.size(), space::FleetConfig{Megabytes{1e6},
                                                              cdn::CachePolicy::kLru});
  space::PlacementConfig pcfg;
  pcfg.copies_per_plane = 4;
  const space::ContentPlacement placement(cons, pcfg);
  des::Rng rng(1);

  // Place one object and fetch it from many cities.
  const cdn::ContentItem obj{0, Megabytes{20.0}, data::Region::kEurope};
  placement.place(fleet, obj, Milliseconds{0.0});

  cdn::CdnDeployment ground(data::cdn_sites(), {});
  space::SpaceCdnRouter router(net, fleet, ground, {.max_isl_hops = 5,
                                                    .admit_on_fetch = false});

  des::SampleSet space_rtts;
  for (const auto& city : data::cities()) {
    if (std::abs(city.lat_deg) > 56.0) continue;  // stay in Shell 1 coverage
    const auto& country = data::country(city.country_code);
    const auto result =
        router.fetch(data::location(city), country, obj, rng, Milliseconds{0.0});
    if (!result) continue;
    ASSERT_NE(result->tier, space::FetchTier::kGround) << city.name;
    EXPECT_LE(result->isl_hops, 5u);
    space_rtts.add(result->rtt.value());
  }
  ASSERT_GT(space_rtts.size(), 50u);
  // Median fetch latency lands in the terrestrial-CDN ballpark.
  EXPECT_LT(space_rtts.median(), 50.0);
}

TEST(EndToEnd, DutyCycleFiftyPercentStaysCompetitive) {
  // Figure 8: with >=50% of satellites caching, SpaceCDN stays competitive
  // with the terrestrial median.
  const auto& net = shell1();
  space::SatelliteFleet fleet(net.constellation().size(),
                              space::FleetConfig{Megabytes{1e6}, cdn::CachePolicy::kLru});
  des::Rng rng(2);
  std::vector<geo::GeoPoint> clients;
  for (const char* name : {"London", "Berlin", "Madrid", "New York", "Tokyo",
                           "Sao Paulo", "Sydney", "Nairobi"}) {
    clients.push_back(data::location(data::city(name)));
  }

  space::DutyCycleConfig half;
  half.cache_fraction = 0.5;
  space::DutyCycleSimulation sim50(net, fleet, half);
  const auto rtts50 = sim50.run(clients, 5, 4, rng);

  space::DutyCycleConfig low;
  low.cache_fraction = 0.3;
  space::DutyCycleSimulation sim30(net, fleet, low);
  const auto rtts30 = sim30.run(clients, 5, 4, rng);

  EXPECT_LT(rtts50.median(), 55.0);               // competitive with terrestrial
  EXPECT_LE(rtts50.median(), rtts30.median());    // more caches never hurt
}

TEST(EndToEnd, PullThroughCachingConvergesToSatelliteHits) {
  // Repeated Zipf requests from one region migrate the working set into the
  // constellation: the ground tier fades out.
  const auto& net = shell1();
  des::Rng rng(3);
  const cdn::ContentCatalog catalog({.object_count = 300}, rng);
  const cdn::RegionalPopularity popularity(300, {});
  space::SatelliteFleet fleet(net.constellation().size(),
                              space::FleetConfig{Megabytes{1e6}, cdn::CachePolicy::kLru});
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  space::SpaceCdnRouter router(net, fleet, ground);

  const geo::GeoPoint client = data::location(data::city("Nairobi"));
  const auto& country = data::country("KE");
  int ground_first_half = 0, ground_second_half = 0;
  const int n = 600;
  for (int i = 0; i < n; ++i) {
    const auto id = popularity.sample(data::Region::kAfrica, rng);
    const auto result =
        router.fetch(client, country, catalog.item(id), rng, Milliseconds{i * 100.0});
    ASSERT_TRUE(result.has_value());
    if (result->tier == space::FetchTier::kGround) {
      (i < n / 2 ? ground_first_half : ground_second_half) += 1;
    }
  }
  EXPECT_LT(ground_second_half, ground_first_half / 2);
}

TEST(EndToEnd, SimulatorDrivesHandoversAcrossEpochs) {
  // The DES engine advancing a StarlinkNetwork through reconfiguration
  // epochs changes serving satellites (handover) without breaking routing.
  lsn::StarlinkNetwork net;
  des::Simulator sim;
  const geo::GeoPoint client = data::location(data::city("London"));
  std::vector<std::uint32_t> serving;
  for (int epoch = 0; epoch < 4; ++epoch) {
    sim.schedule(Milliseconds::from_minutes(2.0 * epoch), [&net, &sim, &serving, client] {
      net.set_time(sim.now());
      const auto route = net.router().route_to_pop(client, data::country("GB"));
      ASSERT_TRUE(route.has_value());
      serving.push_back(route->serving_satellite);
    });
  }
  sim.run();
  ASSERT_EQ(serving.size(), 4u);
  // At least one handover across 6 minutes (satellites pass in 5-10 min).
  bool changed = false;
  for (std::size_t i = 1; i < serving.size(); ++i) changed |= serving[i] != serving[0];
  EXPECT_TRUE(changed);
}

TEST(EndToEnd, WebAndAimAgreeOnWinners) {
  // HRT differences (NetMet) and idle RTT differences (AIM) must agree in
  // sign per country -- both derive from the same path asymmetry.
  measurement::AimConfig acfg;
  acfg.tests_per_city = 10;
  measurement::AimCampaign aim(shell1(), acfg);
  measurement::NetMetCampaign web(shell1(), {.fetches_per_page = 3});
  for (const char* cc : {"GB", "NG"}) {
    const auto& country = data::country(cc);
    const measurement::AimAnalysis analysis(aim.run_country(country));
    const auto delta = analysis.median_delta_ms(cc);
    ASSERT_TRUE(delta.has_value());

    const auto records = web.run_country(country);
    des::SampleSet star, terr;
    for (const auto& r : records) {
      (r.isp == measurement::IspType::kStarlink ? star : terr)
          .add(r.http_response.value());
    }
    const double web_delta = star.median() - terr.median();
    EXPECT_EQ(*delta > 0, web_delta > 0) << cc;
  }
}

}  // namespace
}  // namespace spacecdn
