// Unit tests for the measurement module: AIM campaign, analysis, NetMet web
// model.  These validate the paper's section-3 aggregations on synthetic
// records with known structure, then check the campaign reproduces the
// published shapes.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include <sstream>

#include "data/datasets.hpp"
#include "measurement/aim.hpp"
#include "measurement/analysis.hpp"
#include "measurement/dataset_io.hpp"
#include "measurement/web.hpp"
#include "sim/world.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace spacecdn::measurement {
namespace {

const lsn::StarlinkNetwork& shell1() { return sim::shared_world().network(); }

SpeedTestRecord record(const char* country, const char* city, IspType isp,
                       const char* site, double rtt, double distance_km = 100.0) {
  SpeedTestRecord r;
  r.country_code = country;
  r.city = city;
  r.isp = isp;
  r.cdn_site = site;
  r.idle_rtt = Milliseconds{rtt};
  r.loaded_rtt = Milliseconds{rtt + 100.0};
  r.distance = Kilometers{distance_km};
  return r;
}

TEST(Analysis, OptimalSiteIsLowestMedian) {
  std::vector<SpeedTestRecord> records;
  // Site A: median 30; site B: median 10.
  for (double rtt : {28.0, 30.0, 32.0}) {
    records.push_back(record("XX", "TestCity", IspType::kTerrestrial, "AAA", rtt, 500));
  }
  for (double rtt : {9.0, 10.0, 11.0}) {
    records.push_back(record("XX", "TestCity", IspType::kTerrestrial, "BBB", rtt, 50));
  }
  const AimAnalysis analysis({records.begin(), records.end()});
  const auto opt = analysis.optimal_site("TestCity", IspType::kTerrestrial);
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(opt->site, "BBB");
  EXPECT_DOUBLE_EQ(opt->median_idle_rtt.value(), 10.0);
  EXPECT_DOUBLE_EQ(opt->distance.value(), 50.0);
}

TEST(Analysis, SiteStatsSortedByMedian) {
  std::vector<SpeedTestRecord> records{
      record("XX", "C", IspType::kStarlink, "AAA", 50.0),
      record("XX", "C", IspType::kStarlink, "BBB", 20.0),
      record("XX", "C", IspType::kStarlink, "CCC", 35.0),
  };
  const AimAnalysis analysis(std::move(records));
  const auto stats = analysis.site_stats("C", IspType::kStarlink);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].site, "BBB");
  EXPECT_EQ(stats[2].site, "AAA");
}

TEST(Analysis, CountryRowAggregatesCities) {
  std::vector<SpeedTestRecord> records{
      record("XX", "C1", IspType::kTerrestrial, "AAA", 10.0, 10.0),
      record("XX", "C2", IspType::kTerrestrial, "AAA", 20.0, 30.0),
      record("XX", "C1", IspType::kStarlink, "BBB", 110.0, 1000.0),
      record("XX", "C2", IspType::kStarlink, "BBB", 130.0, 3000.0),
  };
  const AimAnalysis analysis(std::move(records));
  const auto row = analysis.country_row("XX");
  ASSERT_TRUE(row.has_value());
  EXPECT_DOUBLE_EQ(row->terrestrial_distance_km, 20.0);   // mean(10, 30)
  EXPECT_DOUBLE_EQ(row->terrestrial_min_rtt_ms, 15.0);    // median(10, 20)
  EXPECT_DOUBLE_EQ(row->starlink_distance_km, 2000.0);
  EXPECT_DOUBLE_EQ(row->starlink_min_rtt_ms, 120.0);
  EXPECT_DOUBLE_EQ(*analysis.median_delta_ms("XX"), 105.0);
}

TEST(Analysis, MissingIspYieldsNoRow) {
  std::vector<SpeedTestRecord> records{
      record("XX", "C1", IspType::kTerrestrial, "AAA", 10.0)};
  const AimAnalysis analysis(std::move(records));
  EXPECT_FALSE(analysis.country_row("XX").has_value());
  EXPECT_FALSE(analysis.country_row("YY").has_value());
}

TEST(Analysis, OptimalIdleRttsFilterToOptimalSite) {
  std::vector<SpeedTestRecord> records{
      record("XX", "C", IspType::kStarlink, "FAR", 100.0),
      record("XX", "C", IspType::kStarlink, "NEAR", 20.0),
      record("XX", "C", IspType::kStarlink, "NEAR", 22.0),
  };
  const AimAnalysis analysis(std::move(records));
  const auto rtts = analysis.optimal_idle_rtts(IspType::kStarlink);
  EXPECT_EQ(rtts.size(), 2u);  // only NEAR samples
  EXPECT_LT(rtts.max(), 30.0);
}

TEST(Campaign, ProducesBothIspsForCoveredCountry) {
  AimConfig cfg;
  cfg.tests_per_city = 5;
  AimCampaign campaign(shell1(), cfg);
  const auto records = campaign.run_country(data::country("DE"));
  std::uint32_t star = 0, terr = 0;
  for (const auto& r : records) {
    EXPECT_EQ(r.country_code, "DE");
    (r.isp == IspType::kStarlink ? star : terr) += 1;
    EXPECT_GT(r.idle_rtt.value(), 0.0);
    EXPECT_GE(r.loaded_rtt.value(), r.idle_rtt.value());
  }
  // 3 German cities x 5 tests per ISP.
  EXPECT_EQ(star, 15u);
  EXPECT_EQ(terr, 15u);
}

TEST(Campaign, ReproducesTable1Shape) {
  AimConfig cfg;
  cfg.tests_per_city = 15;
  AimCampaign campaign(shell1(), cfg);
  std::vector<SpeedTestRecord> records;
  for (const char* cc : {"MZ", "ES"}) {
    auto r = campaign.run_country(data::country(cc));
    records.insert(records.end(), r.begin(), r.end());
  }
  const AimAnalysis analysis(std::move(records));

  // Mozambique: Starlink ~139 ms over ~8,800 km; terrestrial ~7 ms local.
  const auto mz = analysis.country_row("MZ");
  ASSERT_TRUE(mz.has_value());
  EXPECT_GT(mz->starlink_min_rtt_ms, 100.0);
  EXPECT_LT(mz->starlink_min_rtt_ms, 190.0);
  EXPECT_GT(mz->starlink_distance_km, 6000.0);
  EXPECT_LT(mz->terrestrial_min_rtt_ms, 25.0);

  // Spain: local PoP, Starlink ~33 ms, small distance.
  const auto es = analysis.country_row("ES");
  ASSERT_TRUE(es.has_value());
  EXPECT_LT(es->starlink_min_rtt_ms, 50.0);
  EXPECT_LT(es->starlink_distance_km, 700.0);
}

TEST(Campaign, AnycastSpreadsAcrossSites) {
  // Paper: "clients from the same city often target several CDN servers
  // across different neighbouring countries".
  AimConfig cfg;
  cfg.tests_per_city = 40;
  AimCampaign campaign(shell1(), cfg);
  const auto records = campaign.run_country(data::country("CH"));
  std::set<std::string> sites;
  for (const auto& r : records) {
    if (r.isp == IspType::kTerrestrial && r.city == "Zurich") sites.insert(r.cdn_site);
  }
  EXPECT_GE(sites.size(), 2u);
}

TEST(Campaign, LoadedRttsShowStarlinkBufferbloat) {
  AimConfig cfg;
  cfg.tests_per_city = 10;
  AimCampaign campaign(shell1(), cfg);
  const AimAnalysis analysis(campaign.run_country(data::country("GB")));
  const auto star = analysis.loaded_rtts(IspType::kStarlink);
  const auto terr = analysis.loaded_rtts(IspType::kTerrestrial);
  EXPECT_GT(star.median(), 200.0);              // paper: >200 ms under load
  EXPECT_LT(terr.median(), star.median());
}

TEST(Web, TrancoMixHasTwentyPages) {
  const auto pages = tranco_top_pages();
  EXPECT_EQ(pages.size(), 20u);
  for (const auto& p : pages) {
    EXPECT_GT(p.html.value(), 0.0);
    EXPECT_GT(p.critical_objects, 0u);
  }
}

TEST(Web, FetchMetricsAreConsistent) {
  NetMetProbe probe;
  des::Rng rng(1);
  PathModel path;
  path.bandwidth = Mbps{100.0};
  path.sample_rtt = [](des::Rng&) { return Milliseconds{30.0}; };
  const auto rec = probe.fetch(tranco_top_pages()[0], path, rng);
  EXPECT_DOUBLE_EQ(rec.tcp_connect.value(), 30.0);
  EXPECT_DOUBLE_EQ(rec.tls_handshake.value(), 30.0);
  EXPECT_GT(rec.http_response.value(), 30.0);  // + server think
  EXPECT_GT(rec.first_contentful_paint.value(),
            rec.dns_lookup.value() + rec.tcp_connect.value() +
                rec.tls_handshake.value() + rec.http_response.value());
}

TEST(Web, HigherRttSlowsEverything) {
  NetMetProbe probe;
  des::Rng rng(2);
  PathModel fast, slow;
  fast.bandwidth = slow.bandwidth = Mbps{100.0};
  fast.sample_rtt = [](des::Rng&) { return Milliseconds{10.0}; };
  slow.sample_rtt = [](des::Rng&) { return Milliseconds{80.0}; };
  des::SampleSet fast_fcp, slow_fcp;
  for (int i = 0; i < 50; ++i) {
    fast_fcp.add(probe.fetch(tranco_top_pages()[1], fast, rng).first_contentful_paint.value());
    slow_fcp.add(probe.fetch(tranco_top_pages()[1], slow, rng).first_contentful_paint.value());
  }
  EXPECT_LT(fast_fcp.median(), slow_fcp.median());
}

TEST(Web, StarlinkPathSlowerThanTerrestrialInGermany) {
  // Figure 5: even with a local PoP, Starlink FCP medians are ~200 ms higher.
  const auto& country = data::country("DE");
  const auto& city = data::city("Frankfurt");
  const PathModel terr = terrestrial_path(country, city);
  const PathModel star = starlink_path(shell1(), country, city);
  ASSERT_TRUE(terr.sample_rtt && star.sample_rtt);
  des::Rng rng(3);
  des::SampleSet terr_rtt, star_rtt;
  for (int i = 0; i < 500; ++i) {
    terr_rtt.add(terr.sample_rtt(rng).value());
    star_rtt.add(star.sample_rtt(rng).value());
  }
  EXPECT_GT(star_rtt.median(), terr_rtt.median() + 15.0);
}

TEST(Web, NoCoverageYieldsEmptySampler) {
  // A country marked non-Starlink with far-polar geometry is not routable;
  // use a fabricated pole city via the lat band instead: South Africa has
  // coverage geometry but starlink_available=false -- the campaign must
  // simply skip Starlink records for it.
  NetMetCampaign campaign(shell1(), {.fetches_per_page = 1});
  const auto records = campaign.run_country(data::country("ZA"));
  for (const auto& r : records) EXPECT_EQ(r.isp, IspType::kTerrestrial);
}

TEST(Web, CampaignEmitsPairedRecords) {
  NetMetCampaign campaign(shell1(), {.fetches_per_page = 2});
  const auto records = campaign.run_country(data::country("CY"));
  std::uint32_t star = 0, terr = 0;
  for (const auto& r : records) (r.isp == IspType::kStarlink ? star : terr) += 1;
  EXPECT_EQ(star, terr);
  EXPECT_EQ(terr, 2u * 20u * 2u);  // 2 cities x 20 pages x 2 fetches
}

TEST(Web, HrtDifferenceShapeMatchesFigure4) {
  // Starlink HRT minus terrestrial HRT is mostly positive (terrestrial
  // faster) for GB, negative for NG (the paper's outlier).
  NetMetCampaign campaign(shell1(), {.fetches_per_page = 4});
  for (const auto& [code, mostly_positive] :
       std::vector<std::pair<const char*, bool>>{{"GB", true}, {"NG", false}}) {
    const auto records = campaign.run_country(data::country(code));
    des::SampleSet star, terr;
    for (const auto& r : records) {
      (r.isp == IspType::kStarlink ? star : terr).add(r.http_response.value());
    }
    const double delta = star.median() - terr.median();
    EXPECT_EQ(delta > 0, mostly_positive) << code << " delta=" << delta;
  }
}

TEST(DatasetIo, SpeedTestRoundTrip) {
  AimConfig cfg;
  cfg.tests_per_city = 4;
  AimCampaign campaign(shell1(), cfg);
  const auto original = campaign.run_country(data::country("CY"));
  ASSERT_FALSE(original.empty());

  std::stringstream buffer;
  write_speedtests(buffer, original);
  const auto restored = read_speedtests(buffer);
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i].country_code, original[i].country_code);
    EXPECT_EQ(restored[i].city, original[i].city);
    EXPECT_EQ(restored[i].isp, original[i].isp);
    EXPECT_EQ(restored[i].cdn_site, original[i].cdn_site);
    // %.6g formatting keeps 6 significant digits.
    EXPECT_NEAR(restored[i].idle_rtt.value(), original[i].idle_rtt.value(),
                original[i].idle_rtt.value() * 1e-5 + 1e-4);
    EXPECT_NEAR(restored[i].distance.value(), original[i].distance.value(),
                original[i].distance.value() * 1e-5 + 1e-4);
  }
}

TEST(DatasetIo, WebRecordRoundTripPreservesAnalysis) {
  NetMetCampaign campaign(shell1(), {.fetches_per_page = 1});
  const auto original = campaign.run_country(data::country("JP"));
  std::stringstream buffer;
  write_web_records(buffer, original);
  const auto restored = read_web_records(buffer);
  ASSERT_EQ(restored.size(), original.size());
  des::SampleSet before, after;
  for (const auto& r : original) before.add(r.http_response.value());
  for (const auto& r : restored) after.add(r.http_response.value());
  EXPECT_NEAR(before.median(), after.median(), 0.01);
}

TEST(DatasetIo, RejectsWrongSchema) {
  std::stringstream wrong("a,b,c\n1,2,3\n");
  EXPECT_THROW((void)read_speedtests(wrong), ConfigError);
  std::stringstream bad_isp(
      "country,city,isp,cdn_site,idle_rtt_ms,loaded_rtt_ms,jitter_ms,"
      "download_mbps,upload_mbps,distance_km\nXX,C,carrier-pigeon,AAA,1,2,3,4,5,6\n");
  EXPECT_THROW((void)read_speedtests(bad_isp), ConfigError);
}

TEST(DatasetIo, CsvParserHandlesQuoting) {
  const auto cells = parse_csv_line(R"(plain,"with,comma","say ""hi""",)");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0], "plain");
  EXPECT_EQ(cells[1], "with,comma");
  EXPECT_EQ(cells[2], "say \"hi\"");
  EXPECT_EQ(cells[3], "");
  EXPECT_THROW((void)parse_csv_line("\"unterminated"), ConfigError);
}

}  // namespace
}  // namespace spacecdn::measurement
