// Multi-shell constellation invariants: global-id addressing, grid-ISL shell
// containment, spatial-index/brute-force equivalence, bit-exact incremental
// advance, the lowest-id serving tie-break, derived coverage latitudes, and
// the router's epoch-keyed landing-list refresh.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "des/random.hpp"
#include "lsn/starlink.hpp"
#include "orbit/ephemeris.hpp"
#include "orbit/walker.hpp"
#include "sim/scenario.hpp"
#include "util/error.hpp"

namespace spacecdn::orbit {
namespace {

const std::vector<std::string>& all_presets() { return constellation_preset_names(); }

TEST(MultiShellDesignTest, PresetSizes) {
  EXPECT_EQ(multi_shell_preset("shell1").total_satellites(), 1584u);
  EXPECT_EQ(multi_shell_preset("test-shell").total_satellites(), 64u);
  EXPECT_EQ(multi_shell_preset("starlink-4shell").total_satellites(), 4236u);
  EXPECT_EQ(multi_shell_preset("gen2-10k").total_satellites(), 9996u);
  EXPECT_THROW((void)multi_shell_preset("shell5"), ConfigError);
}

TEST(MultiShellDesignTest, SingleShellImplicitConversionKeepsIds) {
  // Pre-multi-shell call sites construct from a bare WalkerDesign; ids and
  // structure must match the historical single-shell layout.
  const WalkerConstellation single(starlink_shell1());
  EXPECT_EQ(single.shell_count(), 1u);
  EXPECT_EQ(single.size(), 1584u);
  EXPECT_EQ(single.plane_count(), 72u);
  EXPECT_EQ(single.id_of({3, 7}), 3u * 22u + 7u);
}

TEST(MultiShellDesignTest, IdRoundTripAllPresets) {
  for (const std::string& name : all_presets()) {
    const WalkerConstellation c(multi_shell_preset(name));
    for (std::uint32_t id = 0; id < c.size(); ++id) {
      const SatelliteIndex idx = c.index_of(id);
      EXPECT_EQ(c.id_of(idx), id) << name << " id " << id;
      EXPECT_EQ(c.shell_of(id), idx.shell) << name << " id " << id;
      EXPECT_EQ(id, c.shell_base(idx.shell) +
                        idx.plane * c.shell(idx.shell).sats_per_plane + idx.in_plane)
          << name << " id " << id;
      // Global-plane addressing agrees with the shell-local view.
      const std::uint32_t gp = c.plane_of(id);
      EXPECT_EQ(c.plane_size(gp), c.shell(idx.shell).sats_per_plane);
      EXPECT_EQ(c.plane_sat(gp, idx.in_plane), id) << name << " id " << id;
    }
    // Planes partition the id space in order.
    std::uint32_t total = 0;
    for (std::uint32_t p = 0; p < c.plane_count(); ++p) total += c.plane_size(p);
    EXPECT_EQ(total, c.size()) << name;
  }
}

TEST(MultiShellDesignTest, GridNeighborsNeverCrossShells) {
  for (const std::string& name : all_presets()) {
    const WalkerConstellation c(multi_shell_preset(name));
    for (std::uint32_t id = 0; id < c.size(); ++id) {
      for (const std::uint32_t n : c.grid_neighbors(id)) {
        ASSERT_LT(n, c.size());
        EXPECT_EQ(c.shell_of(n), c.shell_of(id))
            << name << ": grid link " << id << " -> " << n << " crosses shells";
      }
    }
  }
}

TEST(MultiShellEphemerisTest, IndexedQueriesMatchBruteForceAllPresets) {
  for (const std::string& name : all_presets()) {
    const WalkerConstellation c(multi_shell_preset(name));
    const EphemerisSnapshot snapshot(c, Milliseconds::from_minutes(17.0));
    des::Rng rng(des::mix_seed(42, c.size()));
    for (int i = 0; i < 200; ++i) {
      const geo::GeoPoint ground{rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0),
                                 0.0};
      for (const double min_elev : {10.0, 25.0, 40.0}) {
        const auto indexed = snapshot.visible_satellites(ground, min_elev);
        const auto scanned = snapshot.visible_satellites_scan(ground, min_elev);
        ASSERT_EQ(indexed, scanned)
            << name << " lat " << ground.lat_deg << " lon " << ground.lon_deg
            << " elev " << min_elev;
        EXPECT_EQ(snapshot.serving_satellite(ground, min_elev),
                  snapshot.serving_satellite_scan(ground, min_elev))
            << name << " lat " << ground.lat_deg << " lon " << ground.lon_deg;
      }
    }
  }
}

TEST(MultiShellEphemerisTest, AdvanceIsBitIdenticalToFreshSnapshot) {
  for (const std::string& name : {std::string("test-shell"), std::string("shell1"),
                                  std::string("starlink-4shell")}) {
    const WalkerConstellation c(multi_shell_preset(name));
    EphemerisSnapshot advanced(c, Milliseconds{0.0});
    // Wander through intermediate times, then land on the probe time: any
    // accumulated state would show up against the fresh snapshot.
    for (const double t_min : {3.0, 11.5, 47.25}) {
      advanced.advance(Milliseconds::from_minutes(t_min));
    }
    const Milliseconds probe = Milliseconds::from_minutes(47.25);
    const EphemerisSnapshot fresh(c, probe);
    ASSERT_EQ(advanced.time().value(), probe.value());
    for (std::uint32_t id = 0; id < c.size(); ++id) {
      const geo::Ecef a = advanced.position(id);
      const geo::Ecef f = fresh.position(id);
      ASSERT_EQ(a.x, f.x) << name << " id " << id;
      ASSERT_EQ(a.y, f.y) << name << " id " << id;
      ASSERT_EQ(a.z, f.z) << name << " id " << id;
    }
  }
}

TEST(MultiShellEphemerisTest, EpochIsProcessGloballyMonotonic) {
  const WalkerConstellation c(multi_shell_preset("test-shell"));
  EphemerisSnapshot a(c, Milliseconds{0.0});
  const std::uint64_t e0 = a.epoch();
  a.advance(Milliseconds::from_minutes(1.0));
  const std::uint64_t e1 = a.epoch();
  EXPECT_GT(e1, e0);
  // Advancing back to an already-seen time must still mint a fresh epoch:
  // {pointer, time} pairs recur, epochs never do.
  a.advance(Milliseconds{0.0});
  EXPECT_GT(a.epoch(), e1);
  const EphemerisSnapshot b(c, Milliseconds{0.0});
  EXPECT_GT(b.epoch(), a.epoch());
}

TEST(MultiShellEphemerisTest, ServingSatelliteTiesBreakToLowestId) {
  // Two identical shells stacked: every satellite of shell 1 flies exactly on
  // top of its shell-0 twin (bit-identical propagation math), so every query
  // with coverage is an exact elevation tie.  The serving pick must always be
  // the shell-0 (lower) id, from both the indexed and the brute-force path.
  const WalkerConstellation twins(
      MultiShellDesign{{test_shell(), test_shell()}});
  const std::uint32_t half = twins.shell_base(1);
  const EphemerisSnapshot snapshot(twins, Milliseconds::from_minutes(9.0));
  des::Rng rng(7);
  int covered = 0;
  for (int i = 0; i < 300; ++i) {
    const geo::GeoPoint ground{rng.uniform(-60.0, 60.0), rng.uniform(-180.0, 180.0),
                               0.0};
    const auto indexed = snapshot.serving_satellite(ground, 25.0);
    const auto scanned = snapshot.serving_satellite_scan(ground, 25.0);
    EXPECT_EQ(indexed, scanned);
    if (!indexed) continue;
    ++covered;
    EXPECT_LT(*indexed, half) << "tie broke to the higher-id twin";
    // The twin is genuinely co-located and visible.
    const auto visible = snapshot.visible_satellites(ground, 25.0);
    EXPECT_TRUE(std::find(visible.begin(), visible.end(), *indexed + half) !=
                visible.end());
  }
  EXPECT_GT(covered, 0);
}

TEST(MultiShellCoverageTest, DerivedCoverageLatitudes) {
  // The paper's Shell-1 experiments pin the published 56 deg band exactly.
  EXPECT_EQ(sim::derived_coverage_lat_deg("shell1"), sim::kShell1CoverageLatDeg);
  EXPECT_EQ(sim::derived_coverage_lat_deg("test-shell"), sim::kShell1CoverageLatDeg);
  // The Gen1 stack includes the 97.6-deg polar shell: global coverage.
  EXPECT_EQ(sim::derived_coverage_lat_deg("starlink-4shell"), 90.0);
  EXPECT_EQ(sim::derived_coverage_lat_deg("gen2-10k"), 90.0);
  // The geometric derivation itself: one 53-deg shell reaches inclination
  // plus the coverage half-angle, strictly between 53 and 90.
  const double shell1_limit =
      coverage_lat_limit_deg(multi_shell_preset("shell1"),
                             lsn::StarlinkConfig{}.user_min_elevation_deg);
  EXPECT_GT(shell1_limit, 53.0);
  EXPECT_LT(shell1_limit, 90.0);
}

TEST(MultiShellRouterTest, LandingListsRefreshAcrossInPlaceAdvance) {
  // Regression for the router's stale-landing-list hazard: the network keeps
  // one router across in-place ephemeris advances, so its per-gateway landing
  // candidates must refresh whenever the snapshot epoch moves.  Routes from a
  // long-lived network must match a network freshly built at the same time.
  lsn::StarlinkConfig cfg;
  lsn::StarlinkNetwork net(cfg);
  const geo::GeoPoint client = data::location(data::city("Maputo"));
  const auto& country = data::country("MZ");

  const auto at_zero = net.router().route_to_pop(client, country);
  ASSERT_TRUE(at_zero.has_value());

  const Milliseconds later = Milliseconds::from_minutes(5.0);
  net.set_time(later);
  const auto advanced = net.router().route_to_pop(client, country);
  ASSERT_TRUE(advanced.has_value());

  lsn::StarlinkNetwork fresh(cfg);
  fresh.set_time(later);
  const auto rebuilt = fresh.router().route_to_pop(client, country);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(advanced->serving_satellite, rebuilt->serving_satellite);
  EXPECT_EQ(advanced->landing_satellite, rebuilt->landing_satellite);
  EXPECT_EQ(advanced->gateway, rebuilt->gateway);
  EXPECT_EQ(advanced->one_way().value(), rebuilt->one_way().value());

  // Returning to t=0 reproduces the original route exactly -- and must NOT be
  // served from lists cached at t=5min (same snapshot address, different
  // geometry: the ABA shape a {pointer, time} cache key gets wrong).
  net.set_time(Milliseconds{0.0});
  const auto back = net.router().route_to_pop(client, country);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->serving_satellite, at_zero->serving_satellite);
  EXPECT_EQ(back->landing_satellite, at_zero->landing_satellite);
  EXPECT_EQ(back->one_way().value(), at_zero->one_way().value());
}

}  // namespace
}  // namespace spacecdn::orbit
