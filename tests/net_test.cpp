// Unit tests for the net module: graph/routing, link models, TCP, DNS,
// anycast.
#include <gtest/gtest.h>

#include <cmath>

#include "des/stats.hpp"
#include "net/anycast.hpp"
#include "net/dns.hpp"
#include "net/graph.hpp"
#include "net/link.hpp"
#include "net/tcp_model.hpp"
#include "util/error.hpp"

namespace spacecdn::net {
namespace {

Graph diamond() {
  // Diamond: 0-1 (1 ms), 1-3 (1 ms), 0-2 (1 ms), 2-3 (5 ms).
  Graph g(4);
  g.add_undirected_edge(0, 1, Milliseconds{1.0});
  g.add_undirected_edge(1, 3, Milliseconds{1.0});
  g.add_undirected_edge(0, 2, Milliseconds{1.0});
  g.add_undirected_edge(2, 3, Milliseconds{5.0});
  return g;
}

TEST(Graph, AddNodesAndEdges) {
  Graph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b, Milliseconds{2.0});
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  ASSERT_EQ(g.neighbors(a).size(), 1u);
  EXPECT_EQ(g.neighbors(a)[0].to, b);
  EXPECT_TRUE(g.neighbors(b).empty());  // directed
}

TEST(Graph, RejectsBadEdges) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5, Milliseconds{1.0}), ConfigError);
  EXPECT_THROW(g.add_edge(0, 1, Milliseconds{-1.0}), ConfigError);
  EXPECT_THROW((void)g.neighbors(9), ConfigError);
}

TEST(Graph, ClearEdgesKeepsNodes) {
  Graph g = diamond();
  g.clear_edges();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Csr, ViewMatchesAdjacencyInInsertionOrder) {
  const Graph g = diamond();
  const CsrView csr = g.csr();
  ASSERT_EQ(csr.offsets.size(), g.node_count() + 1);
  EXPECT_EQ(csr.targets.size(), g.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto& adj = g.neighbors(u);
    ASSERT_EQ(csr.offsets[u + 1] - csr.offsets[u], adj.size());
    for (std::size_t k = 0; k < adj.size(); ++k) {
      // Per-node edge order is insertion order: Dijkstra's relaxation
      // sequence over the flat view is bit-identical to the nested one.
      EXPECT_EQ(csr.targets[csr.offsets[u] + k], adj[k].to);
      EXPECT_EQ(csr.weights[csr.offsets[u] + k], adj[k].weight.value());
    }
  }
}

TEST(Csr, RebuildsAfterMutationAndTracksMinWeight) {
  Graph g = diamond();
  EXPECT_EQ(g.min_edge_weight().value(), 1.0);
  g.add_undirected_edge(1, 2, Milliseconds{0.25});
  const CsrView csr = g.csr();  // lazily rebuilt after the mutation
  EXPECT_EQ(csr.targets.size(), g.edge_count());
  EXPECT_EQ(g.min_edge_weight().value(), 0.25);
  g.clear_edges();
  EXPECT_EQ(g.csr().targets.size(), 0u);
  EXPECT_TRUE(std::isinf(g.min_edge_weight().value()));  // no edges
}

TEST(Csr, CopiedGraphHasIndependentView) {
  Graph original = diamond();
  (void)original.csr();
  Graph copy = original;
  copy.add_undirected_edge(0, 3, Milliseconds{0.5});
  EXPECT_EQ(copy.csr().targets.size(), original.csr().targets.size() + 2);
  EXPECT_EQ(original.min_edge_weight().value(), 1.0);
  EXPECT_EQ(copy.min_edge_weight().value(), 0.5);
}

TEST(Dijkstra, FindsShortestPath) {
  const Graph g = diamond();
  const auto path = shortest_path(g, 0, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->total.value(), 2.0);
  EXPECT_EQ(path->nodes, (std::vector<NodeId>{0, 1, 3}));
  EXPECT_EQ(path->hop_count(), 2u);
}

TEST(Dijkstra, DistancesFromSource) {
  const Graph g = diamond();
  const auto dist = shortest_distances(g, 0);
  EXPECT_DOUBLE_EQ(dist[0].value(), 0.0);
  EXPECT_DOUBLE_EQ(dist[1].value(), 1.0);
  EXPECT_DOUBLE_EQ(dist[2].value(), 1.0);
  EXPECT_DOUBLE_EQ(dist[3].value(), 2.0);
}

TEST(Dijkstra, UnreachableNodes) {
  Graph g(3);
  g.add_undirected_edge(0, 1, Milliseconds{1.0});
  EXPECT_FALSE(shortest_path(g, 0, 2).has_value());
  EXPECT_TRUE(std::isinf(shortest_distances(g, 0)[2].value()));
}

TEST(Dijkstra, SelfPathIsEmpty) {
  const Graph g = diamond();
  const auto path = shortest_path(g, 2, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->total.value(), 0.0);
  EXPECT_EQ(path->hop_count(), 0u);
}

TEST(Bfs, NodesWithinHops) {
  // Path graph 0-1-2-3-4.
  Graph g(5);
  for (NodeId i = 0; i + 1 < 5; ++i) g.add_undirected_edge(i, i + 1, Milliseconds{1.0});
  const auto within = nodes_within_hops(g, 0, 2);
  ASSERT_EQ(within.size(), 3u);
  EXPECT_EQ(within[0].node, 0u);
  EXPECT_EQ(within[0].hops, 0u);
  EXPECT_EQ(within[2].node, 2u);
  EXPECT_EQ(within[2].hops, 2u);
}

TEST(Bfs, ZeroHopsIsJustSource) {
  const Graph g = diamond();
  const auto within = nodes_within_hops(g, 1, 0);
  ASSERT_EQ(within.size(), 1u);
  EXPECT_EQ(within[0].node, 1u);
}

TEST(Bfs, HopOrderIsBreadthFirst) {
  const Graph g = diamond();
  const auto within = nodes_within_hops(g, 0, 10);
  for (std::size_t i = 1; i < within.size(); ++i) {
    EXPECT_GE(within[i].hops, within[i - 1].hops);
  }
  EXPECT_EQ(within.size(), 4u);
}

TEST(Queueing, GrowsWithUtilisation) {
  const QueueingModel q(Milliseconds{1.0}, Milliseconds{100.0});
  EXPECT_DOUBLE_EQ(q.expected_delay(0.0).value(), 0.0);
  EXPECT_NEAR(q.expected_delay(0.5).value(), 1.0, 1e-9);
  EXPECT_NEAR(q.expected_delay(0.9).value(), 9.0, 1e-9);
  EXPECT_DOUBLE_EQ(q.expected_delay(1.0).value(), 100.0);  // capped
  EXPECT_THROW((void)q.expected_delay(1.5), ConfigError);
}

TEST(Queueing, SamplesRespectCap) {
  const QueueingModel q(Milliseconds{5.0}, Milliseconds{50.0});
  des::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(q.sample_delay(0.95, rng).value(), 50.0);
  }
}

TEST(Bufferbloat, QuadraticInLoad) {
  const BufferbloatModel b(Milliseconds{200.0});
  EXPECT_DOUBLE_EQ(b.expected_bloat(0.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(b.expected_bloat(0.5).value(), 50.0);
  EXPECT_DOUBLE_EQ(b.expected_bloat(1.0).value(), 200.0);
}

TEST(Bufferbloat, SamplesCenterOnExpectation) {
  const BufferbloatModel b(Milliseconds{200.0}, 0.3);
  des::Rng rng(2);
  des::SampleSet s;
  for (int i = 0; i < 10000; ++i) s.add(b.sample_bloat(1.0, rng).value());
  EXPECT_NEAR(s.median(), 200.0, 10.0);
}

TEST(Tcp, ConnectAndTlsAreRtts) {
  const TcpModel tcp;
  EXPECT_DOUBLE_EQ(tcp.connect_time(Milliseconds{30.0}).value(), 30.0);
  EXPECT_DOUBLE_EQ(tcp.tls_time(Milliseconds{30.0}).value(), 30.0);
  EXPECT_DOUBLE_EQ(
      tcp.http_response_time(Milliseconds{30.0}, Milliseconds{10.0}).value(), 40.0);
}

TEST(Tcp, TinyObjectFitsInInitialWindow) {
  const TcpModel tcp;
  // 10 KB < IW10 * 1460 B, so the transfer takes less than one full RTT.
  const Milliseconds t =
      tcp.transfer_time(Megabytes{0.01}, Milliseconds{50.0}, Mbps{100.0});
  EXPECT_LT(t.value(), 50.0);
  EXPECT_GT(t.value(), 0.0);
}

TEST(Tcp, SlowStartDoublesPerRtt) {
  const TcpModel tcp;
  // 100 KB at IW10 (14.6 KB): rounds of 14.6 and 29.2 KB leave 56.2 KB,
  // which the 58.4 KB third window finishes -> just under 3 RTTs.
  const Milliseconds t =
      tcp.transfer_time(Megabytes{0.1}, Milliseconds{40.0}, Mbps{1000.0});
  EXPECT_GT(t.value(), 2 * 40.0);
  EXPECT_LT(t.value(), 3 * 40.0);
}

TEST(Tcp, LargeTransferApproachesLineRate) {
  const TcpModel tcp;
  // 100 MB over 100 Mbps: ~8 s at line rate; slow start adds little.
  const Milliseconds t =
      tcp.transfer_time(Megabytes{100.0}, Milliseconds{20.0}, Mbps{100.0});
  EXPECT_NEAR(t.value(), 8000.0, 300.0);
}

TEST(Tcp, TransferMonotoneInRttAndSize) {
  const TcpModel tcp;
  const Milliseconds small =
      tcp.transfer_time(Megabytes{1.0}, Milliseconds{20.0}, Mbps{100.0});
  const Milliseconds larger =
      tcp.transfer_time(Megabytes{2.0}, Milliseconds{20.0}, Mbps{100.0});
  const Milliseconds slower =
      tcp.transfer_time(Megabytes{1.0}, Milliseconds{80.0}, Mbps{100.0});
  EXPECT_LT(small, larger);
  EXPECT_LT(small, slower);
}

TEST(Tcp, ZeroSizeIsFree) {
  const TcpModel tcp;
  EXPECT_DOUBLE_EQ(
      tcp.transfer_time(Megabytes{0.0}, Milliseconds{50.0}, Mbps{10.0}).value(), 0.0);
}

TEST(Tcp, ObjectFetchComposes) {
  const TcpModel tcp;
  const Milliseconds rtt{10.0};
  const Milliseconds fetch =
      tcp.object_fetch_time(Megabytes{0.001}, rtt, Mbps{1000.0}, Milliseconds{5.0});
  // connect (10) + tls (10) + response (15) + tiny transfer.
  EXPECT_GT(fetch.value(), 35.0);
  EXPECT_LT(fetch.value(), 40.0);
}

TEST(Dns, CacheHitIsResolverRtt) {
  DnsConfig cfg;
  cfg.resolver_rtt = Milliseconds{12.0};
  cfg.cache_hit_probability = 1.0;
  const DnsModel dns(cfg);
  des::Rng rng(3);
  EXPECT_DOUBLE_EQ(dns.sample_lookup_time(rng).value(), 12.0);
  EXPECT_DOUBLE_EQ(dns.expected_lookup_time().value(), 12.0);
}

TEST(Dns, MissAddsAuthoritativeRtts) {
  DnsConfig cfg;
  cfg.resolver_rtt = Milliseconds{10.0};
  cfg.cache_hit_probability = 0.0;
  cfg.miss_round_trips = 2;
  cfg.authoritative_rtt = Milliseconds{30.0};
  const DnsModel dns(cfg);
  des::Rng rng(4);
  EXPECT_DOUBLE_EQ(dns.sample_lookup_time(rng).value(), 70.0);
  EXPECT_DOUBLE_EQ(dns.expected_lookup_time().value(), 70.0);
}

TEST(Dns, ExpectedInterpolatesHitRate) {
  DnsConfig cfg;
  cfg.resolver_rtt = Milliseconds{10.0};
  cfg.cache_hit_probability = 0.5;
  cfg.miss_round_trips = 1;
  cfg.authoritative_rtt = Milliseconds{40.0};
  EXPECT_DOUBLE_EQ(DnsModel(cfg).expected_lookup_time().value(), 30.0);
}

TEST(Anycast, IdealPicksArgmin) {
  const std::vector<Milliseconds> latencies{Milliseconds{30.0}, Milliseconds{10.0},
                                            Milliseconds{20.0}};
  const AnycastChoice c = AnycastSelector::select_ideal(latencies);
  EXPECT_EQ(c.site_index, 1u);
  EXPECT_DOUBLE_EQ(c.latency.value(), 10.0);
}

TEST(Anycast, ZeroNoiseEqualsIdeal) {
  const AnycastSelector selector(0.0);
  des::Rng rng(5);
  const std::vector<Milliseconds> latencies{Milliseconds{5.0}, Milliseconds{50.0}};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(selector.select(latencies, rng).site_index, 0u);
  }
}

TEST(Anycast, NoiseSpreadsChoicesButFavorsNear) {
  const AnycastSelector selector(15.0);
  des::Rng rng(6);
  const std::vector<Milliseconds> latencies{Milliseconds{10.0}, Milliseconds{18.0},
                                            Milliseconds{300.0}};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 5000; ++i) ++counts[selector.select(latencies, rng).site_index];
  EXPECT_GT(counts[0], counts[1]);   // nearer wins more often
  EXPECT_GT(counts[1], 100);         // but the neighbour gets real share
  EXPECT_LT(counts[2], 50);          // the far site almost never
}

TEST(Anycast, RejectsEmptySites) {
  EXPECT_THROW((void)AnycastSelector::select_ideal({}), ConfigError);
}

}  // namespace
}  // namespace spacecdn::net
