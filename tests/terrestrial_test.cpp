// Unit tests for the terrestrial ISP substrate.
#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "des/stats.hpp"
#include "terrestrial/access.hpp"
#include "terrestrial/backbone.hpp"
#include "terrestrial/isp.hpp"
#include "util/error.hpp"

namespace spacecdn::terrestrial {
namespace {

TEST(Backbone, RouteLengthAppliesStretch) {
  BackboneConfig cfg;
  cfg.path_stretch = 2.0;
  const Backbone bb(cfg);
  const geo::GeoPoint a{0.0, 0.0, 0.0};
  const geo::GeoPoint b{0.0, 10.0, 0.0};
  const double gc = geo::great_circle_distance(a, b).value();
  EXPECT_NEAR(bb.route_length(a, b).value(), 2.0 * gc, 1e-9);
}

TEST(Backbone, LatencyIncludesHops) {
  BackboneConfig cfg;
  cfg.path_stretch = 1.0;
  cfg.per_hop_overhead = Milliseconds{1.0};
  cfg.hop_spacing = Kilometers{100.0};
  const Backbone bb(cfg);
  const geo::GeoPoint a{0.0, 0.0, 0.0};
  const geo::GeoPoint b{0.0, 1.0, 0.0};  // ~111 km -> 2 hops
  const double prop = 111.2 / geo::kFiberSpeedKmPerSec * 1000.0;
  EXPECT_NEAR(bb.one_way_latency(a, b).value(), prop + 2.0, 0.05);
}

TEST(Backbone, RttIsTwiceOneWay) {
  const Backbone bb({});
  const geo::GeoPoint a{10.0, 10.0, 0.0};
  const geo::GeoPoint b{20.0, 30.0, 0.0};
  EXPECT_DOUBLE_EQ(bb.rtt(a, b).value(), 2.0 * bb.one_way_latency(a, b).value());
}

TEST(Backbone, ZeroDistanceIsFree) {
  const Backbone bb({});
  const geo::GeoPoint a{10.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(bb.one_way_latency(a, a).value(), 0.0);
}

TEST(Backbone, RejectsBadConfig) {
  BackboneConfig cfg;
  cfg.path_stretch = 0.5;
  EXPECT_THROW(Backbone{cfg}, ConfigError);
}

TEST(Backbone, ContinentalRttMagnitude) {
  // ~6,000 km route at stretch 1.6: RTT ~100 ms, the familiar
  // transcontinental number.
  const Backbone bb({});
  const geo::GeoPoint ny{40.71, -74.01, 0.0};
  const geo::GeoPoint la{34.05, -118.24, 0.0};
  EXPECT_NEAR(bb.rtt(ny, la).value(), 66.0, 12.0);
}

TEST(Access, IdleSamplesCenterOnMedian) {
  AccessConfig cfg;
  cfg.median_latency = Milliseconds{8.0};
  const AccessNetwork access(cfg);
  des::Rng rng(1);
  des::SampleSet s;
  for (int i = 0; i < 20000; ++i) s.add(access.sample_idle_rtt(rng).value());
  EXPECT_NEAR(s.median(), 8.0, 0.4);
}

TEST(Access, LoadAddsBloat) {
  AccessConfig cfg;
  cfg.median_latency = Milliseconds{8.0};
  cfg.bloat_at_full_load = Milliseconds{60.0};
  const AccessNetwork access(cfg);
  des::Rng rng(2);
  des::SampleSet idle, loaded;
  for (int i = 0; i < 5000; ++i) {
    idle.add(access.sample_idle_rtt(rng).value());
    loaded.add(access.sample_loaded_rtt(0.9, rng).value());
  }
  EXPECT_GT(loaded.median(), idle.median() + 20.0);
}

TEST(Isp, BaselineComposition) {
  const TerrestrialIsp isp(data::country("DE"));
  const geo::GeoPoint berlin = data::location(data::city("Berlin"));
  const geo::GeoPoint frankfurt = data::location(data::city("Frankfurt"));
  const double expected = data::country("DE").access_latency.value() +
                          isp.backbone().rtt(berlin, frankfurt).value();
  EXPECT_DOUBLE_EQ(isp.baseline_rtt(berlin, frankfurt).value(), expected);
}

TEST(Isp, LocalCdnIsFast) {
  // Table 1 terrestrial column: countries with a local site see ~5-15 ms.
  const TerrestrialIsp isp(data::country("MZ"));
  const geo::GeoPoint maputo = data::location(data::city("Maputo"));
  EXPECT_LT(isp.baseline_rtt(maputo, maputo).value(), 15.0);
}

TEST(Isp, CrossBorderAfricanLatencyIsLarge) {
  // Zambia -> Johannesburg, ~1,170 km at African stretch: tens of ms
  // (Table 1: 44 ms).
  const TerrestrialIsp isp(data::country("ZM"));
  const geo::GeoPoint lusaka = data::location(data::city("Lusaka"));
  const geo::GeoPoint jnb = data::location(data::city("Johannesburg"));
  const double rtt = isp.baseline_rtt(lusaka, jnb).value();
  EXPECT_GT(rtt, 30.0);
  EXPECT_LT(rtt, 70.0);
}

TEST(Isp, SamplesAreStochasticButBounded) {
  const TerrestrialIsp isp(data::country("GB"));
  const geo::GeoPoint london = data::location(data::city("London"));
  const geo::GeoPoint manchester = data::location(data::city("Manchester"));
  des::Rng rng(3);
  const double base = isp.baseline_rtt(london, manchester).value();
  des::SampleSet s;
  for (int i = 0; i < 5000; ++i) {
    s.add(isp.sample_idle_rtt(london, manchester, rng).value());
  }
  EXPECT_NEAR(s.median(), base, 2.0);
  EXPECT_GT(s.quantile(0.95), s.median());  // lognormal tail exists
}

TEST(Isp, LoadedRttExceedsIdle) {
  const TerrestrialIsp isp(data::country("US"));
  const geo::GeoPoint a = data::location(data::city("New York"));
  const geo::GeoPoint b = data::location(data::city("Chicago"));
  des::Rng rng(4);
  des::SampleSet idle, loaded;
  for (int i = 0; i < 3000; ++i) {
    idle.add(isp.sample_idle_rtt(a, b, rng).value());
    loaded.add(isp.sample_loaded_rtt(a, b, 0.95, rng).value());
  }
  EXPECT_GT(loaded.median(), idle.median());
}

}  // namespace
}  // namespace spacecdn::terrestrial
