// Unit tests for the util module: strong units, error handling, CSV, tables.
#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace spacecdn {
namespace {

using namespace spacecdn::literals;

TEST(Units, MillisecondsArithmetic) {
  const Milliseconds a{10.0};
  const Milliseconds b{2.5};
  EXPECT_DOUBLE_EQ((a + b).value(), 12.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 7.5);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 20.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 20.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 2.5);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
}

TEST(Units, MillisecondsComparisons) {
  EXPECT_LT(Milliseconds{1.0}, Milliseconds{2.0});
  EXPECT_GE(Milliseconds{2.0}, Milliseconds{2.0});
  EXPECT_EQ(Milliseconds{3.0}, Milliseconds{3.0});
}

TEST(Units, MillisecondsConversions) {
  EXPECT_DOUBLE_EQ(Milliseconds::from_seconds(1.5).value(), 1500.0);
  EXPECT_DOUBLE_EQ(Milliseconds::from_minutes(2.0).value(), 120000.0);
  EXPECT_DOUBLE_EQ(Milliseconds{2500.0}.seconds(), 2.5);
}

TEST(Units, CompoundAssignment) {
  Milliseconds t{5.0};
  t += Milliseconds{3.0};
  EXPECT_DOUBLE_EQ(t.value(), 8.0);
  t -= Milliseconds{2.0};
  EXPECT_DOUBLE_EQ(t.value(), 6.0);
  t *= 2.0;
  EXPECT_DOUBLE_EQ(t.value(), 12.0);
  t /= 3.0;
  EXPECT_DOUBLE_EQ(t.value(), 4.0);
}

TEST(Units, KilometersArithmetic) {
  EXPECT_DOUBLE_EQ((Kilometers{3.0} + Kilometers{4.0}).value(), 7.0);
  EXPECT_DOUBLE_EQ((Kilometers{10.0} - Kilometers{4.0}).value(), 6.0);
  EXPECT_DOUBLE_EQ(Kilometers{1.0}.meters(), 1000.0);
  EXPECT_DOUBLE_EQ(Kilometers{8.0} / Kilometers{2.0}, 4.0);
}

TEST(Units, MbpsBytesPerMs) {
  // 8 Mbps = 1 MB/s = 1000 bytes per ms.
  EXPECT_DOUBLE_EQ(Mbps{8.0}.bytes_per_ms(), 1000.0);
}

TEST(Units, MegabytesConversions) {
  EXPECT_DOUBLE_EQ(Megabytes{2.0}.bytes(), 2e6);
  EXPECT_DOUBLE_EQ(Megabytes{2.0}.megabits(), 16.0);
  EXPECT_DOUBLE_EQ(Megabytes::from_bytes(5e6).value(), 5.0);
}

TEST(Units, TransmissionDelay) {
  // 1 MB over 8 Mbps = 1 second.
  EXPECT_DOUBLE_EQ(transmission_delay(1.0_mb, 8.0_mbps).value(), 1000.0);
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((15_ms).value(), 15.0);
  EXPECT_DOUBLE_EQ((1.5_km).value(), 1.5);
  EXPECT_DOUBLE_EQ((100_mbps).value(), 100.0);
  EXPECT_DOUBLE_EQ((2.5_mb).value(), 2.5);
}

TEST(Units, Streaming) {
  std::ostringstream os;
  os << Milliseconds{12.5} << " / " << Kilometers{3.0};
  EXPECT_EQ(os.str(), "12.5 ms / 3 km");
}

TEST(Error, ExpectMacroThrowsConfigError) {
  EXPECT_THROW(SPACECDN_EXPECT(false, "must fail"), ConfigError);
  EXPECT_NO_THROW(SPACECDN_EXPECT(true, "must pass"));
}

TEST(Error, MessageContainsContext) {
  try {
    SPACECDN_EXPECT(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw NotFoundError("x"), Error);
  EXPECT_THROW(throw SimulationError("y"), Error);
  EXPECT_THROW(throw ConfigError("z"), std::runtime_error);
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  csv.row({"1", "2"});
  csv.row_numeric({3.5, 4.25});
  EXPECT_EQ(os.str(), "a,b\n1,2\n3.5,4.25\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RejectsWrongArity) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), ConfigError);
}

TEST(Csv, LabeledRow) {
  std::ostringstream os;
  CsvWriter csv(os, {"name", "x"});
  csv.row_labeled("alpha", {1.25});
  EXPECT_EQ(os.str(), "name,x\nalpha,1.25\n");
}

TEST(Csv, FormatNumber) {
  EXPECT_EQ(CsvWriter::format_number(42.0), "42");
  EXPECT_EQ(CsvWriter::format_number(0.5), "0.5");
  EXPECT_EQ(CsvWriter::format_number(std::nan("")), "nan");
}

TEST(Table, RendersAlignedColumns) {
  ConsoleTable table({"name", "value"});
  table.add_row({"alpha", "1.0"});
  table.add_row({"b", "22.5"});
  std::ostringstream os;
  table.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, NumericRowHelper) {
  ConsoleTable table({"k", "v1", "v2"});
  table.add_row("row", {1.234, 5.678}, 2);
  std::ostringstream os;
  table.render(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
  EXPECT_NE(os.str().find("5.68"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  ConsoleTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"1", "2", "3"}), ConfigError);
}

TEST(Table, AsciiBar) {
  const std::string bar = ascii_bar("x", 5.0, 10.0, 10);
  EXPECT_NE(bar.find("#####"), std::string::npos);
  EXPECT_EQ(bar.find("######"), std::string::npos);
  const std::string full = ascii_bar("y", 10.0, 10.0, 10);
  EXPECT_NE(full.find("##########"), std::string::npos);
  // Values beyond the max clamp rather than overflow.
  const std::string over = ascii_bar("z", 20.0, 10.0, 10);
  EXPECT_NE(over.find("##########"), std::string::npos);
}

TEST(Table, FormatFixed) {
  EXPECT_EQ(ConsoleTable::format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(ConsoleTable::format_fixed(-1.0, 0), "-1");
}

}  // namespace
}  // namespace spacecdn
