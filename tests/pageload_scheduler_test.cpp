// Tests for the DES page-load simulator and the predictive bubble scheduler,
// including cross-validation of the DES page loader against the analytic
// NetMet model.
#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "des/stats.hpp"
#include "lsn/starlink.hpp"
#include "measurement/pageload.hpp"
#include "measurement/web.hpp"
#include "sim/world.hpp"
#include "spacecdn/bubble_scheduler.hpp"
#include "util/error.hpp"

namespace spacecdn {
namespace {

measurement::PathModel fixed_path(double rtt_ms, double mbps) {
  measurement::PathModel path;
  path.bandwidth = Mbps{mbps};
  path.sample_rtt = [rtt_ms](des::Rng&) { return Milliseconds{rtt_ms}; };
  return path;
}

TEST(PageLoad, FetchesEveryCriticalObject) {
  const measurement::PageLoadSimulator sim;
  des::Rng rng(1);
  const auto page = measurement::tranco_top_pages()[0];
  const auto result = sim.load(page, fixed_path(30.0, 100.0), rng);
  EXPECT_EQ(result.objects_fetched, page.critical_objects);
  EXPECT_GT(result.page_load_time.value(), 0.0);
  EXPECT_GT(result.first_contentful_paint.value(), result.page_load_time.value());
}

TEST(PageLoad, LowerBoundFromSetupAndTransmission) {
  const measurement::PageLoadSimulator sim;
  des::Rng rng(2);
  measurement::PageProfile page;
  page.name = "tiny";
  page.html = Megabytes{0.1};
  page.critical_objects = 4;
  page.critical_total = Megabytes{0.4};
  page.request_rounds = 1;
  const double rtt = 40.0;
  const auto result = sim.load(page, fixed_path(rtt, 100.0), rng);
  // At minimum: DNS (>= rtt) + connect + TLS + request + html + bodies.
  const double transmission_ms = (0.5 * 8.0) / 100.0 * 1000.0;  // all bytes
  EXPECT_GT(result.page_load_time.value(), 4 * rtt + transmission_ms);
}

TEST(PageLoad, SlowerPathSlowerLoad) {
  const measurement::PageLoadSimulator sim;
  des::Rng rng(3);
  const auto page = measurement::tranco_top_pages()[1];
  const auto fast = sim.load(page, fixed_path(15.0, 150.0), rng);
  const auto slow = sim.load(page, fixed_path(90.0, 150.0), rng);
  EXPECT_LT(fast.page_load_time.value(), slow.page_load_time.value());
}

TEST(PageLoad, BandwidthBoundWhenFat) {
  const measurement::PageLoadSimulator sim;
  des::Rng rng(4);
  measurement::PageProfile page;
  page.name = "heavy";
  page.html = Megabytes{0.2};
  page.critical_objects = 10;
  page.critical_total = Megabytes{20.0};
  page.request_rounds = 1;
  const auto narrow = sim.load(page, fixed_path(20.0, 20.0), rng);
  const auto wide = sim.load(page, fixed_path(20.0, 200.0), rng);
  // 20 MB at 20 Mbps is ~8 s of pure transmission; bandwidth dominates.
  EXPECT_GT(narrow.page_load_time.value(), 8000.0);
  EXPECT_LT(wide.page_load_time.value(), narrow.page_load_time.value() / 3.0);
}

TEST(PageLoad, MoreConnectionsNeverSlower) {
  des::Rng rng_a(5), rng_b(5);
  measurement::PageLoadConfig one_cfg;
  one_cfg.parallel_connections = 1;
  measurement::PageLoadConfig six_cfg;
  six_cfg.parallel_connections = 6;
  const measurement::PageLoadSimulator one(one_cfg), six(six_cfg);
  const auto page = measurement::tranco_top_pages()[2];
  const auto serial = one.load(page, fixed_path(50.0, 500.0), rng_a);
  const auto parallel = six.load(page, fixed_path(50.0, 500.0), rng_b);
  // With many small objects and a high-RTT path, pipelining across
  // connections hides request round trips.
  EXPECT_LT(parallel.page_load_time.value(), serial.page_load_time.value());
}

TEST(PageLoad, AgreesWithAnalyticModelOnDirection) {
  // Cross-validation: both models must rank Starlink vs terrestrial the
  // same way for the same page and city.
  const lsn::StarlinkNetwork& network = sim::shared_world().network();
  const auto& country = data::country("DE");
  const auto& city = data::city("Frankfurt");
  const auto terr = measurement::terrestrial_path(country, city);
  const auto star = measurement::starlink_path(network, country, city);
  ASSERT_TRUE(terr.sample_rtt && star.sample_rtt);

  const measurement::PageLoadSimulator des_sim;
  const measurement::NetMetProbe analytic;
  des::Rng rng(6);
  const auto page = measurement::tranco_top_pages()[4];

  des::SampleSet des_terr, des_star, ana_terr, ana_star;
  for (int i = 0; i < 30; ++i) {
    des_terr.add(des_sim.load(page, terr, rng).first_contentful_paint.value());
    des_star.add(des_sim.load(page, star, rng).first_contentful_paint.value());
    ana_terr.add(analytic.fetch(page, terr, rng).first_contentful_paint.value());
    ana_star.add(analytic.fetch(page, star, rng).first_contentful_paint.value());
  }
  EXPECT_GT(des_star.median(), des_terr.median());
  EXPECT_GT(ana_star.median(), ana_terr.median());
  // The two models agree within a factor of two on the medians.
  EXPECT_LT(std::abs(des_terr.median() - ana_terr.median()),
            std::max(des_terr.median(), ana_terr.median()));
}

TEST(BubbleScheduler, PlansOneTaskPerPass) {
  static const orbit::WalkerConstellation shell(orbit::starlink_shell1());
  des::Rng rng(7);
  const cdn::ContentCatalog catalog({.object_count = 1000}, rng);
  const cdn::RegionalPopularity popularity(catalog.size(), {});
  const space::ContentBubbleManager bubbles(catalog, popularity, {});
  const space::BubbleScheduler scheduler(shell, bubbles, catalog);

  const geo::GeoPoint anchor = data::location(data::city("Berlin"));
  const orbit::GroundTrackPredictor predictor(shell);
  const Milliseconds horizon = Milliseconds::from_minutes(300.0);
  const auto passes = predictor.passes(5, anchor, 25.0, Milliseconds{0.0}, horizon);
  const auto tasks = scheduler.plan(5, data::Region::kEurope, anchor,
                                    Milliseconds{0.0}, horizon);
  EXPECT_EQ(tasks.size(), passes.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_LE(tasks[i].start_upload.value(), tasks[i].deadline.value());
    EXPECT_DOUBLE_EQ(tasks[i].deadline.value(), passes[i].rise.value());
  }
}

TEST(BubbleScheduler, UploadTimeScalesWithFeeder) {
  static const orbit::WalkerConstellation shell(orbit::starlink_shell1());
  des::Rng rng(8);
  const cdn::ContentCatalog catalog({.object_count = 1000}, rng);
  const cdn::RegionalPopularity popularity(catalog.size(), {});
  const space::ContentBubbleManager bubbles(catalog, popularity, {});

  space::BubbleScheduleConfig fast_cfg;
  fast_cfg.feeder_bandwidth = Mbps{2000.0};
  space::BubbleScheduleConfig slow_cfg;
  slow_cfg.feeder_bandwidth = Mbps{200.0};
  const space::BubbleScheduler fast(shell, bubbles, catalog, fast_cfg);
  const space::BubbleScheduler slow(shell, bubbles, catalog, slow_cfg);
  EXPECT_NEAR(slow.upload_time(data::Region::kAsia).value(),
              10.0 * fast.upload_time(data::Region::kAsia).value(), 1e-6);
}

TEST(BubbleScheduler, ExecuteDueWarmsCacheBeforeArrival) {
  static const orbit::WalkerConstellation shell(orbit::starlink_shell1());
  des::Rng rng(9);
  const cdn::ContentCatalog catalog({.object_count = 1000}, rng);
  const cdn::RegionalPopularity popularity(catalog.size(), {});
  space::BubbleConfig bcfg;
  bcfg.prefetch_top_k = 50;
  const space::ContentBubbleManager bubbles(catalog, popularity, bcfg);
  const space::BubbleScheduler scheduler(shell, bubbles, catalog);

  const geo::GeoPoint anchor = data::location(data::city("Madrid"));
  auto tasks = scheduler.plan(11, data::Region::kEurope, anchor, Milliseconds{0.0},
                              Milliseconds::from_minutes(300.0));
  if (tasks.empty()) GTEST_SKIP() << "satellite 11 has no pass in the window";

  space::SatelliteFleet fleet(shell.size(),
                              space::FleetConfig{Megabytes{1e6},
                                                 cdn::CachePolicy::kLru});
  // Before the upload window: nothing executes.
  const Milliseconds before{tasks.front().start_upload - Milliseconds{1.0}};
  if (before.value() > 0.0) {
    EXPECT_EQ(scheduler.execute_due(tasks, fleet, anchor, before), 0u);
  }
  // At the deadline every opened window has executed and the cache is warm.
  const std::size_t planned = tasks.size();
  const auto executed =
      scheduler.execute_due(tasks, fleet, anchor, tasks.front().deadline);
  EXPECT_GE(executed, 1u);
  EXPECT_EQ(tasks.size(), planned - executed);
  EXPECT_GE(fleet.cache(11).object_count(), 50u);
}

}  // namespace
}  // namespace spacecdn
