// Stress and differential tests: randomized workloads checked against naive
// reference implementations, and event-storm robustness for the DES core.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <vector>

#include "cdn/cache.hpp"
#include "des/simulator.hpp"
#include "net/flow.hpp"
#include "net/graph.hpp"
#include "util/error.hpp"

namespace spacecdn {
namespace {

// A deliberately naive LRU used as the oracle for the production LruCache.
class ReferenceLru {
 public:
  explicit ReferenceLru(double capacity_mb) : capacity_(capacity_mb) {}

  bool access(cdn::ContentId id) {
    const auto it = std::find_if(items_.begin(), items_.end(),
                                 [&](const auto& e) { return e.first == id; });
    if (it == items_.end()) return false;
    items_.splice(items_.begin(), items_, it);
    return true;
  }

  bool insert(cdn::ContentId id, double mb) {
    if (access(id)) return true;
    if (mb > capacity_) return false;
    while (used_ + mb > capacity_) {
      used_ -= items_.back().second;
      items_.pop_back();
    }
    items_.emplace_front(id, mb);
    used_ += mb;
    return true;
  }

  bool erase(cdn::ContentId id) {
    const auto it = std::find_if(items_.begin(), items_.end(),
                                 [&](const auto& e) { return e.first == id; });
    if (it == items_.end()) return false;
    used_ -= it->second;
    items_.erase(it);
    return true;
  }

  [[nodiscard]] bool contains(cdn::ContentId id) const {
    return std::any_of(items_.begin(), items_.end(),
                       [&](const auto& e) { return e.first == id; });
  }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] double used() const { return used_; }

 private:
  double capacity_;
  double used_ = 0.0;
  std::list<std::pair<cdn::ContentId, double>> items_;  // front = most recent
};

TEST(Differential, LruMatchesReferenceModel) {
  des::Rng rng(101);
  cdn::LruCache cache(Megabytes{40.0});
  ReferenceLru reference(40.0);

  std::map<cdn::ContentId, double> sizes;  // stable size per id
  for (int op = 0; op < 20000; ++op) {
    const cdn::ContentId id = rng.uniform_int(0, 30);
    if (sizes.find(id) == sizes.end()) sizes[id] = rng.uniform(1.0, 6.0);
    const double mb = sizes[id];
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.45) {
      EXPECT_EQ(cache.insert(cdn::ContentItem{id, Megabytes{mb},
                                              data::Region::kEurope},
                             Milliseconds{0.0}),
                reference.insert(id, mb))
          << "op " << op;
    } else if (roll < 0.55) {
      EXPECT_EQ(cache.erase(id), reference.erase(id)) << "op " << op;
    } else {
      EXPECT_EQ(cache.access(id, Milliseconds{0.0}), reference.access(id))
          << "op " << op;
    }
    ASSERT_EQ(cache.object_count(), reference.size()) << "op " << op;
    ASSERT_NEAR(cache.used().value(), reference.used(), 1e-9) << "op " << op;
  }
}

TEST(Differential, EveryPolicyAgreesOnPresenceAfterColdInsert) {
  // Whatever the eviction order, an object inserted into an empty cache is
  // present, and after capacity-1 more inserts of tiny objects it still is.
  for (const auto policy : {cdn::CachePolicy::kLru, cdn::CachePolicy::kLfu,
                            cdn::CachePolicy::kFifo}) {
    const auto cache = cdn::make_cache(policy, Megabytes{100.0});
    ASSERT_TRUE(cache->insert(cdn::ContentItem{0, Megabytes{1.0},
                                               data::Region::kAsia},
                              Milliseconds{0.0}));
    for (cdn::ContentId id = 1; id <= 50; ++id) {
      (void)cache->insert(cdn::ContentItem{id, Megabytes{1.0}, data::Region::kAsia},
                          Milliseconds{0.0});
    }
    EXPECT_TRUE(cache->contains(0)) << cdn::to_string(policy);
  }
}

TEST(Stress, SimulatorScheduleCancelStorm) {
  des::Simulator sim;
  des::Rng rng(102);
  std::vector<des::EventId> live;
  int fired = 0;
  int scheduled = 0;
  int cancelled = 0;

  // A self-perpetuating storm: events schedule and cancel other events.
  std::function<void()> spawn = [&] {
    ++fired;
    if (scheduled > 5000) return;
    const int children = static_cast<int>(rng.uniform_int(0, 3));
    for (int c = 0; c < children; ++c) {
      ++scheduled;
      live.push_back(sim.schedule(Milliseconds{rng.uniform(0.1, 10.0)}, spawn));
    }
    if (!live.empty() && rng.chance(0.3)) {
      const std::size_t victim = rng.uniform_int(0, live.size() - 1);
      if (sim.cancel(live[victim])) ++cancelled;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  };
  for (int seed_events = 0; seed_events < 10; ++seed_events) {
    ++scheduled;
    sim.schedule(Milliseconds{rng.uniform(0.0, 1.0)}, spawn);
  }
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(fired + cancelled, scheduled);
  EXPECT_GT(cancelled, 0);
}

TEST(Stress, SimulatorClockNeverRegresses) {
  des::Simulator sim;
  des::Rng rng(103);
  double last = -1.0;
  for (int i = 0; i < 500; ++i) {
    sim.schedule(Milliseconds{rng.uniform(0.0, 100.0)}, [&] {
      EXPECT_GE(sim.now().value(), last);
      last = sim.now().value();
    });
  }
  sim.run();
  EXPECT_GE(last, 0.0);
}

TEST(Stress, SharedLinkRandomArrivalsConserveBytes) {
  des::Simulator sim;
  net::SharedLink link(sim, Mbps{160.0});  // 20 MB/s
  des::Rng rng(104);

  double total_mb = 0.0;
  double weighted_completion = 0.0;  // sum of per-flow size
  double arrivals_span_ms = 0.0;
  for (int i = 0; i < 120; ++i) {
    const double at = rng.uniform(0.0, 3000.0);
    const double mb = rng.uniform(0.2, 8.0);
    arrivals_span_ms = std::max(arrivals_span_ms, at);
    total_mb += mb;
    sim.schedule(Milliseconds{at}, [&, mb] {
      (void)link.start_flow(Megabytes{mb}, [&](const net::FlowRecord& r) {
        weighted_completion += r.size.value();
        // No flow finishes before its bytes could possibly have been sent.
        EXPECT_GE(r.duration().value(), r.size.value() / 20.0 * 1000.0 - 1e-6);
      });
    });
  }
  sim.run();
  EXPECT_EQ(link.completed_flows(), 120u);
  EXPECT_NEAR(weighted_completion, total_mb, 1e-9);
  EXPECT_EQ(link.active_flows(), 0u);
  // The whole batch cannot finish before all bytes fit through the pipe.
  EXPECT_GE(sim.now().value(), total_mb / 20.0 * 1000.0 - 1e-6);
}

TEST(Stress, GraphReusedAfterClearEdges) {
  net::Graph g(100);
  des::Rng rng(105);
  for (int round = 0; round < 5; ++round) {
    g.clear_edges();
    for (int e = 0; e < 300; ++e) {
      const auto a = static_cast<net::NodeId>(rng.uniform_int(0, 99));
      const auto b = static_cast<net::NodeId>(rng.uniform_int(0, 99));
      if (a != b) g.add_undirected_edge(a, b, Milliseconds{rng.uniform(0.5, 5.0)});
    }
    const auto dist = net::shortest_distances(g, 0);
    EXPECT_EQ(dist.size(), 100u);
    EXPECT_DOUBLE_EQ(dist[0].value(), 0.0);
  }
}

TEST(Stress, DijkstraHopBfsConsistency) {
  // On a unit-weight graph, Dijkstra distance equals BFS hop count.
  des::Rng rng(106);
  net::Graph g(60);
  for (int e = 0; e < 150; ++e) {
    const auto a = static_cast<net::NodeId>(rng.uniform_int(0, 59));
    const auto b = static_cast<net::NodeId>(rng.uniform_int(0, 59));
    if (a != b) g.add_undirected_edge(a, b, Milliseconds{1.0});
  }
  const auto dist = net::shortest_distances(g, 7);
  for (const auto& hd : net::nodes_within_hops(g, 7, 60)) {
    EXPECT_DOUBLE_EQ(dist[hd.node].value(), static_cast<double>(hd.hops));
  }
}

}  // namespace
}  // namespace spacecdn
