// Unit tests for the geo module: coordinates, great circles, visibility,
// propagation delays.  Reference values are hand-computed or from standard
// geodesy tables.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "geo/batch.hpp"
#include "geo/coordinates.hpp"
#include "geo/distance.hpp"
#include "geo/propagation.hpp"
#include "geo/visibility.hpp"
#include "util/error.hpp"

namespace spacecdn::geo {
namespace {

TEST(Coordinates, NormalizedWrapsLongitude) {
  EXPECT_DOUBLE_EQ(normalized({0.0, 190.0, 0.0}).lon_deg, -170.0);
  EXPECT_DOUBLE_EQ(normalized({0.0, -190.0, 0.0}).lon_deg, 170.0);
  EXPECT_DOUBLE_EQ(normalized({0.0, 360.0, 0.0}).lon_deg, 0.0);
}

TEST(Coordinates, NormalizedRejectsBadLatitude) {
  EXPECT_THROW((void)normalized({91.0, 0.0, 0.0}), ConfigError);
  EXPECT_THROW((void)normalized({-90.5, 0.0, 0.0}), ConfigError);
}

TEST(Coordinates, SphericalRoundTrip) {
  const GeoPoint p{47.3, -122.5, 550.0};
  const GeoPoint back = to_geodetic_spherical(to_ecef_spherical(p));
  EXPECT_NEAR(back.lat_deg, p.lat_deg, 1e-9);
  EXPECT_NEAR(back.lon_deg, p.lon_deg, 1e-9);
  EXPECT_NEAR(back.alt_km, p.alt_km, 1e-6);
}

TEST(Coordinates, SphericalEquatorPrimeMeridian) {
  const Ecef v = to_ecef_spherical({0.0, 0.0, 0.0});
  EXPECT_NEAR(v.x, kEarthRadiusKm, 1e-9);
  EXPECT_NEAR(v.y, 0.0, 1e-9);
  EXPECT_NEAR(v.z, 0.0, 1e-9);
}

TEST(Coordinates, SphericalNorthPole) {
  const Ecef v = to_ecef_spherical({90.0, 0.0, 0.0});
  EXPECT_NEAR(v.x, 0.0, 1e-9);
  EXPECT_NEAR(v.z, kEarthRadiusKm, 1e-9);
}

TEST(Coordinates, Wgs84EquatorMatchesSemiMajor) {
  const Ecef v = to_ecef_wgs84({0.0, 0.0, 0.0});
  EXPECT_NEAR(v.x, kWgs84SemiMajorKm, 1e-9);
}

TEST(Coordinates, Wgs84PoleMatchesSemiMinor) {
  const Ecef v = to_ecef_wgs84({90.0, 0.0, 0.0});
  const double b = kWgs84SemiMajorKm * (1.0 - kWgs84Flattening);
  EXPECT_NEAR(v.z, b, 1e-9);
}

TEST(Coordinates, Wgs84RoundTrip) {
  for (const GeoPoint p : {GeoPoint{52.52, 13.40, 0.03}, GeoPoint{-33.87, 151.21, 0.0},
                           GeoPoint{35.68, 139.69, 550.0}, GeoPoint{-89.0, 10.0, 2.0}}) {
    const GeoPoint back = to_geodetic_wgs84(to_ecef_wgs84(p));
    EXPECT_NEAR(back.lat_deg, p.lat_deg, 1e-6);
    EXPECT_NEAR(back.lon_deg, p.lon_deg, 1e-6);
    EXPECT_NEAR(back.alt_km, p.alt_km, 1e-3);
  }
}

TEST(Coordinates, Wgs84PoleSingularity) {
  const GeoPoint pole = to_geodetic_wgs84(Ecef{0.0, 0.0, 6400.0});
  EXPECT_DOUBLE_EQ(pole.lat_deg, 90.0);
}

TEST(Coordinates, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(euclidean_distance({0, 0, 0}, {3, 4, 0}).value(), 5.0);
  EXPECT_DOUBLE_EQ(norm({1, 2, 2}).value(), 3.0);
}

TEST(Distance, KnownCityPairs) {
  // London - Paris: ~343 km great circle.
  const GeoPoint london{51.51, -0.13, 0.0};
  const GeoPoint paris{48.86, 2.35, 0.0};
  EXPECT_NEAR(great_circle_distance(london, paris).value(), 343.0, 10.0);

  // New York - Los Angeles: ~3940 km.
  const GeoPoint nyc{40.71, -74.01, 0.0};
  const GeoPoint la{34.05, -118.24, 0.0};
  EXPECT_NEAR(great_circle_distance(nyc, la).value(), 3940.0, 40.0);
}

TEST(Distance, AntipodalIsHalfCircumference) {
  const GeoPoint a{0.0, 0.0, 0.0};
  const GeoPoint b{0.0, 180.0, 0.0};
  EXPECT_NEAR(great_circle_distance(a, b).value(), kPi * kEarthRadiusKm, 1e-6);
}

TEST(Distance, ZeroForIdenticalPoints) {
  const GeoPoint p{12.3, 45.6, 0.0};
  EXPECT_DOUBLE_EQ(great_circle_distance(p, p).value(), 0.0);
}

TEST(Distance, BearingCardinalDirections) {
  const GeoPoint origin{0.0, 0.0, 0.0};
  EXPECT_NEAR(initial_bearing_deg(origin, {10.0, 0.0, 0.0}), 0.0, 1e-9);    // north
  EXPECT_NEAR(initial_bearing_deg(origin, {0.0, 10.0, 0.0}), 90.0, 1e-9);   // east
  EXPECT_NEAR(initial_bearing_deg(origin, {-10.0, 0.0, 0.0}), 180.0, 1e-9); // south
  EXPECT_NEAR(initial_bearing_deg(origin, {0.0, -10.0, 0.0}), 270.0, 1e-9); // west
}

TEST(Distance, DestinationInverse) {
  const GeoPoint origin{48.86, 2.35, 0.0};
  const GeoPoint dest = destination(origin, 45.0, Kilometers{500.0});
  EXPECT_NEAR(great_circle_distance(origin, dest).value(), 500.0, 0.5);
  EXPECT_NEAR(initial_bearing_deg(origin, dest), 45.0, 0.5);
}

TEST(Distance, IntermediatePointEndpoints) {
  const GeoPoint a{10.0, 20.0, 0.0};
  const GeoPoint b{-30.0, 60.0, 0.0};
  const GeoPoint p0 = intermediate_point(a, b, 0.0);
  const GeoPoint p1 = intermediate_point(a, b, 1.0);
  EXPECT_NEAR(p0.lat_deg, a.lat_deg, 1e-9);
  EXPECT_NEAR(p1.lat_deg, b.lat_deg, 1e-9);
}

TEST(Distance, IntermediateMidpointEquidistant) {
  const GeoPoint a{0.0, 0.0, 0.0};
  const GeoPoint b{0.0, 90.0, 0.0};
  const GeoPoint mid = intermediate_point(a, b, 0.5);
  EXPECT_NEAR(great_circle_distance(a, mid).value(),
              great_circle_distance(mid, b).value(), 1e-6);
}

TEST(Visibility, ZenithSatellite) {
  const GeoPoint ground{30.0, 40.0, 0.0};
  GeoPoint above = ground;
  above.alt_km = 550.0;
  const Ecef sat = to_ecef_spherical(above);
  EXPECT_NEAR(elevation_angle_deg(ground, sat), 90.0, 1e-6);
  EXPECT_NEAR(slant_range(ground, sat).value(), 550.0, 1e-6);
  EXPECT_TRUE(is_visible(ground, sat, 25.0));
}

TEST(Visibility, BelowHorizonIsNegative) {
  const GeoPoint ground{0.0, 0.0, 0.0};
  // Satellite on the other side of the planet.
  const Ecef sat = to_ecef_spherical({0.0, 180.0, 550.0});
  EXPECT_LT(elevation_angle_deg(ground, sat), 0.0);
  EXPECT_FALSE(is_visible(ground, sat, 10.0));
}

TEST(Visibility, SlantRangeAtElevationLimits) {
  // At 90 degrees, slant range equals altitude.
  EXPECT_NEAR(slant_range_at_elevation(Kilometers{550.0}, 90.0).value(), 550.0, 1e-6);
  // At 0 degrees, range is the horizon distance sqrt((R+h)^2 - R^2) ~ 2704 km.
  EXPECT_NEAR(slant_range_at_elevation(Kilometers{550.0}, 0.0).value(), 2704.0, 5.0);
}

TEST(Visibility, SlantRangeMonotonicInElevation) {
  double prev = slant_range_at_elevation(Kilometers{550.0}, 5.0).value();
  for (double e = 10.0; e <= 90.0; e += 5.0) {
    const double cur = slant_range_at_elevation(Kilometers{550.0}, e).value();
    EXPECT_LT(cur, prev) << "elevation " << e;
    prev = cur;
  }
}

TEST(Visibility, CoverageRadiusShrinksWithElevationMask) {
  const Kilometers r25 = coverage_radius(Kilometers{550.0}, 25.0);
  const Kilometers r10 = coverage_radius(Kilometers{550.0}, 10.0);
  EXPECT_LT(r25, r10);
  // Starlink 550 km / 25 deg: ~940 km footprint radius.
  EXPECT_NEAR(r25.value(), 940.0, 60.0);
}

TEST(Visibility, ElevationMatchesSlantRangeGeometry) {
  // Consistency: place a satellite at a given elevation, verify range.
  const GeoPoint ground{0.0, 0.0, 0.0};
  // Satellite 5 degrees of central angle east at 550 km.
  const Ecef sat = to_ecef_spherical({0.0, 5.0, 550.0});
  const double elev = elevation_angle_deg(ground, sat);
  const double expected_range = slant_range_at_elevation(Kilometers{550.0}, elev).value();
  EXPECT_NEAR(slant_range(ground, sat).value(), expected_range, 1e-6);
}

TEST(Propagation, SpeedsAreOrdered) {
  EXPECT_GT(propagation_speed_km_per_sec(Medium::kVacuum),
            propagation_speed_km_per_sec(Medium::kFiber));
}

TEST(Propagation, KnownDelays) {
  // 299792.458 km at c = 1000 ms.
  EXPECT_NEAR(propagation_delay(Kilometers{299792.458}, Medium::kVacuum).value(), 1000.0,
              1e-9);
  // 1000 km of fiber: ~4.9 ms.
  EXPECT_NEAR(propagation_delay(Kilometers{1000.0}, Medium::kFiber).value(), 4.9, 0.1);
}

// Batched SoA kernels must be *bit-identical* to the scalar reference --
// exact elevation ties break by satellite id, so a one-ulp drift could flip
// a serving-satellite choice and a committed run checksum.
TEST(BatchGeometry, ElevationsBitIdenticalToScalar) {
  const Ecef ground = to_ecef_spherical(GeoPoint{37.7749, -122.4194});
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<double> zs;
  for (int i = 0; i < 64; ++i) {
    // A ring of positions from zenith to well below the horizon, plus the
    // degenerate coincident point (index 0).
    const double lat = -80.0 + 2.5 * i;
    const double lon = -170.0 + 5.0 * i;
    const Ecef sat =
        i == 0 ? ground : to_ecef_spherical(GeoPoint{lat, lon, 300.0 + 20.0 * i});
    xs.push_back(sat.x);
    ys.push_back(sat.y);
    zs.push_back(sat.z);
  }
  std::vector<double> batched(xs.size());
  elevation_angles_deg(ground, xs, ys, zs, batched);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double scalar = elevation_angle_deg(ground, Ecef{xs[i], ys[i], zs[i]});
    EXPECT_EQ(batched[i], scalar) << "elevation drifted at index " << i;
  }
  EXPECT_EQ(batched[0], 90.0);  // coincident point: straight up by convention

  // Gathered variant: a shuffled id subset reads the same values.
  const std::vector<std::uint32_t> ids{63, 0, 17, 17, 4};
  std::vector<double> gathered(ids.size());
  elevation_angles_deg(ground, xs, ys, zs, ids, gathered);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(gathered[i], batched[ids[i]]);
  }
}

TEST(BatchGeometry, SlantRangesBitIdenticalToEuclidean) {
  const Ecef ground = to_ecef_spherical(GeoPoint{51.5074, -0.1278});
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<double> zs;
  for (int i = 0; i < 33; ++i) {
    const Ecef sat =
        to_ecef_spherical(GeoPoint{-60.0 + 4.0 * i, 11.0 * i, 550.0 + 3.0 * i});
    xs.push_back(sat.x);
    ys.push_back(sat.y);
    zs.push_back(sat.z);
  }
  std::vector<double> ranges(xs.size());
  slant_ranges_km(ground, xs, ys, zs, ranges);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(ranges[i],
              euclidean_distance(ground, Ecef{xs[i], ys[i], zs[i]}).value());
  }
}

}  // namespace
}  // namespace spacecdn::geo
