// Unit tests for the CDN substrate: catalog, popularity, cache policies,
// deployment.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cdn/cache.hpp"
#include "cdn/content.hpp"
#include "cdn/deployment.hpp"
#include "cdn/popularity.hpp"
#include "data/datasets.hpp"
#include "util/error.hpp"

namespace spacecdn::cdn {
namespace {

ContentItem item(ContentId id, double mb) {
  return ContentItem{id, Megabytes{mb}, data::Region::kEurope};
}

constexpr Milliseconds kNow{0.0};

TEST(Catalog, GeneratesRequestedObjects) {
  des::Rng rng(1);
  CatalogConfig cfg;
  cfg.object_count = 500;
  const ContentCatalog catalog(cfg, rng);
  EXPECT_EQ(catalog.size(), 500u);
  EXPECT_GT(catalog.total_bytes().value(), 0.0);
  EXPECT_THROW((void)catalog.item(500), NotFoundError);
}

TEST(Catalog, SizesWithinBounds) {
  des::Rng rng(2);
  CatalogConfig cfg;
  cfg.object_count = 2000;
  const ContentCatalog catalog(cfg, rng);
  for (const auto& it : catalog.items()) {
    EXPECT_GE(it.size.value(), cfg.min_size.value());
    EXPECT_LE(it.size.value(), cfg.max_size.value());
  }
}

TEST(Catalog, IdsAreDense) {
  des::Rng rng(3);
  CatalogConfig cfg;
  cfg.object_count = 100;
  const ContentCatalog catalog(cfg, rng);
  for (ContentId id = 0; id < 100; ++id) EXPECT_EQ(catalog.item(id).id, id);
}

TEST(Popularity, RanksAreAPermutation) {
  const RegionalPopularity pop(100, {});
  std::set<ContentId> seen;
  for (std::uint64_t rank = 1; rank <= 100; ++rank) {
    seen.insert(pop.object_at_rank(data::Region::kAfrica, rank));
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Popularity, RankOfInvertsObjectAtRank) {
  const RegionalPopularity pop(200, {});
  for (std::uint64_t rank = 1; rank <= 200; rank += 13) {
    const ContentId id = pop.object_at_rank(data::Region::kAsia, rank);
    EXPECT_EQ(pop.rank_of(data::Region::kAsia, id), rank);
  }
}

TEST(Popularity, GlobalHeadIsShared) {
  PopularityConfig cfg;
  cfg.global_share = 0.3;
  const RegionalPopularity pop(100, cfg);
  // The first 30 ranks are identical across regions.
  for (std::uint64_t rank = 1; rank <= 30; ++rank) {
    EXPECT_EQ(pop.object_at_rank(data::Region::kEurope, rank),
              pop.object_at_rank(data::Region::kAfrica, rank));
  }
}

TEST(Popularity, TailsDivergeAcrossRegions) {
  PopularityConfig cfg;
  cfg.global_share = 0.0;
  const RegionalPopularity pop(2000, cfg);
  const double overlap =
      pop.top_k_overlap(data::Region::kEurope, data::Region::kAfrica, 100);
  EXPECT_LT(overlap, 0.3);  // mostly different content is popular
  EXPECT_DOUBLE_EQ(pop.top_k_overlap(data::Region::kEurope, data::Region::kEurope, 100),
                   1.0);
}

TEST(Popularity, SamplesFavorTopRanks) {
  const RegionalPopularity pop(1000, {});
  des::Rng rng(4);
  std::uint64_t head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const ContentId id = pop.sample(data::Region::kLatinAmerica, rng);
    if (pop.rank_of(data::Region::kLatinAmerica, id) <= 100) ++head;
  }
  // Zipf 0.9 over 1000: top 10% of ranks draw well over a third of requests.
  EXPECT_GT(static_cast<double>(head) / n, 0.35);
}

TEST(Popularity, TopKIsRankPrefix) {
  const RegionalPopularity pop(50, {});
  const auto top = pop.top_k(data::Region::kOceania, 5);
  ASSERT_EQ(top.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(top[i], pop.object_at_rank(data::Region::kOceania, i + 1));
  }
}

template <typename CacheT>
class CachePolicyTest : public ::testing::Test {};

using Policies = ::testing::Types<LruCache, LfuCache, FifoCache>;
TYPED_TEST_SUITE(CachePolicyTest, Policies);

TYPED_TEST(CachePolicyTest, HitAfterInsert) {
  TypeParam cache(Megabytes{10.0});
  EXPECT_FALSE(cache.access(1, kNow));
  EXPECT_TRUE(cache.insert(item(1, 2.0), kNow));
  EXPECT_TRUE(cache.access(1, kNow));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TYPED_TEST(CachePolicyTest, NeverExceedsCapacity) {
  TypeParam cache(Megabytes{10.0});
  for (ContentId id = 0; id < 100; ++id) {
    (void)cache.insert(item(id, 3.0), kNow);
    EXPECT_LE(cache.used().value(), 10.0 + 1e-9);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

TYPED_TEST(CachePolicyTest, RejectsOversizedObject) {
  TypeParam cache(Megabytes{10.0});
  EXPECT_FALSE(cache.insert(item(1, 11.0), kNow));
  EXPECT_EQ(cache.object_count(), 0u);
}

TYPED_TEST(CachePolicyTest, CountsOversizedRejections) {
  // The rejection must be visible in stats: a placement loop re-offering an
  // oversized object would otherwise spin without any counter moving.
  TypeParam cache(Megabytes{10.0});
  EXPECT_FALSE(cache.insert(item(1, 11.0), kNow));
  EXPECT_FALSE(cache.insert(item(2, 200.0), kNow));
  EXPECT_EQ(cache.stats().rejected_oversized, 2u);
  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_TRUE(cache.insert(item(3, 10.0), kNow));  // exactly at capacity fits
  EXPECT_EQ(cache.stats().rejected_oversized, 2u);
}

TYPED_TEST(CachePolicyTest, EraseRemoves) {
  TypeParam cache(Megabytes{10.0});
  (void)cache.insert(item(1, 2.0), kNow);
  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_DOUBLE_EQ(cache.used().value(), 0.0);
}

TYPED_TEST(CachePolicyTest, ReinsertIsIdempotent) {
  TypeParam cache(Megabytes{10.0});
  EXPECT_TRUE(cache.insert(item(1, 2.0), kNow));
  EXPECT_TRUE(cache.insert(item(1, 2.0), kNow));
  EXPECT_EQ(cache.object_count(), 1u);
  EXPECT_DOUBLE_EQ(cache.used().value(), 2.0);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(Megabytes{6.0});
  (void)cache.insert(item(1, 2.0), kNow);
  (void)cache.insert(item(2, 2.0), kNow);
  (void)cache.insert(item(3, 2.0), kNow);
  (void)cache.access(1, kNow);  // 2 becomes LRU
  (void)cache.insert(item(4, 2.0), kNow);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(LfuCache, EvictsLeastFrequentlyUsed) {
  LfuCache cache(Megabytes{6.0});
  (void)cache.insert(item(1, 2.0), kNow);
  (void)cache.insert(item(2, 2.0), kNow);
  (void)cache.insert(item(3, 2.0), kNow);
  (void)cache.access(1, kNow);
  (void)cache.access(1, kNow);
  (void)cache.access(3, kNow);
  (void)cache.insert(item(4, 2.0), kNow);  // evicts 2 (frequency 1)
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(LfuCache, TieBreaksByRecency) {
  LfuCache cache(Megabytes{4.0});
  (void)cache.insert(item(1, 2.0), kNow);
  (void)cache.insert(item(2, 2.0), kNow);
  // Both frequency 1; 1 is older (less recently inserted).
  (void)cache.insert(item(3, 2.0), kNow);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(FifoCache, EvictsInInsertionOrder) {
  FifoCache cache(Megabytes{6.0});
  (void)cache.insert(item(1, 2.0), kNow);
  (void)cache.insert(item(2, 2.0), kNow);
  (void)cache.insert(item(3, 2.0), kNow);
  (void)cache.access(1, kNow);  // FIFO ignores recency
  (void)cache.insert(item(4, 2.0), kNow);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(TtlCache, RejectsAndCountsOversizedBeforeDelegating) {
  TtlCache cache(std::make_unique<LruCache>(Megabytes{10.0}), Milliseconds{100.0});
  EXPECT_FALSE(cache.insert(item(1, 11.0), kNow));
  EXPECT_EQ(cache.stats().rejected_oversized, 1u);
  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_EQ(cache.object_count(), 0u);
}

TEST(TtlCache, ExpiresEntries) {
  TtlCache cache(std::make_unique<LruCache>(Megabytes{10.0}), Milliseconds{100.0});
  (void)cache.insert(item(1, 2.0), Milliseconds{0.0});
  EXPECT_TRUE(cache.access(1, Milliseconds{50.0}));
  EXPECT_FALSE(cache.access(1, Milliseconds{200.0}));  // expired
  EXPECT_FALSE(cache.contains(1));                     // erased on expiry
}

TEST(TtlCache, ReinsertResetsClock) {
  TtlCache cache(std::make_unique<LruCache>(Megabytes{10.0}), Milliseconds{100.0});
  (void)cache.insert(item(1, 2.0), Milliseconds{0.0});
  (void)cache.insert(item(1, 2.0), Milliseconds{90.0});
  EXPECT_TRUE(cache.access(1, Milliseconds{150.0}));
}

TEST(CacheFactory, MakesEachPolicy) {
  for (const CachePolicy p : {CachePolicy::kLru, CachePolicy::kLfu, CachePolicy::kFifo}) {
    const auto cache = make_cache(p, Megabytes{5.0});
    ASSERT_NE(cache, nullptr);
    EXPECT_DOUBLE_EQ(cache->capacity().value(), 5.0);
  }
  EXPECT_EQ(to_string(CachePolicy::kLru), "LRU");
}

TEST(CacheStats, HitRate) {
  CacheStats stats;
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.0);
  stats.hits = 3;
  stats.misses = 1;
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.75);
}

TEST(Deployment, NearestSite) {
  const CdnDeployment cdn(data::cdn_sites(), {});
  const std::size_t idx = cdn.nearest_site(data::location(data::city("Maputo")));
  EXPECT_EQ(cdn.site(idx).iata, "MPM");
}

TEST(Deployment, ServeMissThenHit) {
  CdnDeployment cdn(data::cdn_sites(), {});
  const ContentItem obj = item(7, 10.0);
  const auto miss = cdn.serve(0, obj, Milliseconds{20.0}, Milliseconds{80.0}, kNow);
  EXPECT_FALSE(miss.hit);
  EXPECT_DOUBLE_EQ(miss.first_byte.value(), 100.0);
  const auto hit = cdn.serve(0, obj, Milliseconds{20.0}, Milliseconds{80.0}, kNow);
  EXPECT_TRUE(hit.hit);
  EXPECT_DOUBLE_EQ(hit.first_byte.value(), 20.0);
}

TEST(Deployment, WarmPreloadsSite) {
  CdnDeployment cdn(data::cdn_sites(), {});
  const std::vector<ContentItem> items{item(1, 1.0), item(2, 1.0)};
  cdn.warm(3, items, kNow);
  EXPECT_TRUE(cdn.cache(3).contains(1));
  EXPECT_TRUE(cdn.cache(3).contains(2));
  EXPECT_FALSE(cdn.cache(4).contains(1));  // other sites untouched
}

TEST(Deployment, SitesAreIndependentCaches) {
  CdnDeployment cdn(data::cdn_sites(), {});
  (void)cdn.serve(0, item(9, 1.0), Milliseconds{1.0}, Milliseconds{1.0}, kNow);
  EXPECT_TRUE(cdn.cache(0).contains(9));
  EXPECT_FALSE(cdn.cache(1).contains(9));
}

}  // namespace
}  // namespace spacecdn::cdn
