// Unit tests for the jump-hash placement map: hash movement properties,
// versioned membership, orbit-aware replica diversity, erasure accounting,
// and the RepairDaemon's delta-repair mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "data/datasets.hpp"
#include "des/random.hpp"
#include "orbit/walker.hpp"
#include "spacecdn/fleet.hpp"
#include "spacecdn/placement_map.hpp"
#include "spacecdn/resilience.hpp"
#include "util/error.hpp"

namespace spacecdn::space {
namespace {

constexpr Milliseconds kNow{0.0};
constexpr cdn::ContentId kCatalog = 2000;

const orbit::WalkerConstellation& shell1() {
  static const orbit::WalkerConstellation c(orbit::starlink_shell1());
  return c;
}

cdn::ContentItem item(cdn::ContentId id, double mb = 10.0) {
  return cdn::ContentItem{id, Megabytes{mb}, data::Region::kEurope};
}

bool holds_sat(const std::vector<std::uint32_t>& set, std::uint32_t sat) {
  return std::find(set.begin(), set.end(), sat) != set.end();
}

TEST(JumpHash, BucketRangeAndDeterminism) {
  for (std::uint64_t key : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL}) {
    const std::uint32_t bucket = jump_consistent_hash(key, 100);
    EXPECT_LT(bucket, 100u);
    EXPECT_EQ(bucket, jump_consistent_hash(key, 100));
  }
  EXPECT_EQ(jump_consistent_hash(123, 1), 0u);
}

TEST(JumpHash, GrowthMovesKeysOnlyToTheNewBucket) {
  // The defining jump-hash property: going from n to n+1 buckets, every key
  // either keeps its bucket or moves to the brand-new bucket n.
  for (std::uint32_t n = 1; n < 40; ++n) {
    for (std::uint64_t key = 0; key < 500; ++key) {
      const std::uint32_t before = jump_consistent_hash(key, n);
      const std::uint32_t after = jump_consistent_hash(key, n + 1);
      EXPECT_TRUE(after == before || after == n)
          << "key " << key << " jumped " << before << " -> " << after
          << " growing " << n << " -> " << n + 1;
    }
  }
}

TEST(PlacementMapConfigTest, PolicyAndDiversityParsing) {
  EXPECT_EQ(parse_placement_policy("baseline"), PlacementPolicy::kBaseline);
  EXPECT_EQ(parse_placement_policy("jump"), PlacementPolicy::kJump);
  EXPECT_EQ(parse_placement_policy("jump-ec"), PlacementPolicy::kJumpEc);
  EXPECT_THROW((void)parse_placement_policy("mod"), ConfigError);
  EXPECT_EQ(parse_replica_diversity("plane"), ReplicaDiversity::kPlane);
  EXPECT_EQ(parse_replica_diversity("phase"), ReplicaDiversity::kPhase);
  EXPECT_THROW((void)parse_replica_diversity("shell"), ConfigError);
  EXPECT_EQ(to_string(PlacementPolicy::kJumpEc), "jump-ec");
  EXPECT_EQ(to_string(ReplicaDiversity::kPhase), "phase");
}

TEST(PlacementMapConfigTest, RejectsUnsatisfiableConfigs) {
  const orbit::WalkerConstellation& c = shell1();
  PlacementMapConfig cfg;
  cfg.replicas = 0;
  EXPECT_THROW(PlacementMap(c, cfg), ConfigError);
  cfg = {};
  cfg.replicas = c.plane_count() + 1;  // more placements than planes
  EXPECT_THROW(PlacementMap(c, cfg), ConfigError);
  cfg = {};
  cfg.diversity = ReplicaDiversity::kPhase;
  cfg.replicas = c.design().sats_per_plane + 1;  // more than phase slots
  EXPECT_THROW(PlacementMap(c, cfg), ConfigError);
  cfg = {};
  cfg.policy = PlacementPolicy::kJumpEc;
  cfg.ec.data = 0;
  EXPECT_THROW(PlacementMap(c, cfg), ConfigError);
}

TEST(MembershipMapTest, VersioningAndIdempotence) {
  EXPECT_THROW(MembershipMap(0), ConfigError);
  MembershipMap m(8);
  EXPECT_EQ(m.size(), 8u);
  EXPECT_EQ(m.version(), 0u);
  EXPECT_EQ(m.live_count(), 8u);
  EXPECT_FALSE(m.set_live(3, true));  // already live: no version bump
  EXPECT_EQ(m.version(), 0u);
  EXPECT_TRUE(m.set_live(3, false));
  EXPECT_EQ(m.version(), 1u);
  EXPECT_EQ(m.live_count(), 7u);
  EXPECT_FALSE(m.live(3));
  EXPECT_FALSE(m.set_live(3, false));  // idempotent repeat
  EXPECT_EQ(m.version(), 1u);
  EXPECT_TRUE(m.set_live(3, true));
  EXPECT_EQ(m.version(), 2u);
  EXPECT_EQ(m.live_count(), 8u);
}

TEST(PlacementMapTest, SameMembershipSameReplicas) {
  const orbit::WalkerConstellation& c = shell1();
  const PlacementMap a(c, {});
  const PlacementMap b(c, {});
  for (cdn::ContentId id = 0; id < kCatalog; ++id) {
    const auto holders = a.replicas(id);
    EXPECT_EQ(holders, b.replicas(id));  // pure function of (id, membership)
    EXPECT_EQ(holders, a.replicas_under(id, a.membership().bitmap()));
    EXPECT_EQ(holders.size(), a.placements_per_object());
  }
}

TEST(PlacementMapTest, RemovalMovesOnlyTheFailedSatellitesObjects) {
  PlacementMap map(shell1(), {});
  const std::vector<bool> before = map.membership().bitmap();
  const std::uint32_t failed = map.replicas(0)[0];  // known to hold object 0
  ASSERT_TRUE(map.membership().set_live(failed, false));
  std::uint64_t touched = 0;
  for (cdn::ContentId id = 0; id < kCatalog; ++id) {
    const auto old_set = map.replicas_under(id, before);
    const auto now_set = map.replicas(id);
    EXPECT_FALSE(holds_sat(now_set, failed));
    if (holds_sat(old_set, failed)) {
      ++touched;
    } else {
      // The strict minimal-movement property: an object that never lived on
      // the failed satellite keeps every holder, in order.
      EXPECT_EQ(now_set, old_set) << "object " << id << " moved needlessly";
    }
  }
  // Expected fraction is replicas/N (~4/1584); allow generous slack.
  EXPECT_GE(touched, 1u);
  EXPECT_LT(touched, kCatalog / 20);
}

TEST(PlacementMapTest, BaselinePolicyReshufflesNearlyEverything) {
  PlacementMapConfig cfg;
  cfg.policy = PlacementPolicy::kBaseline;
  PlacementMap map(shell1(), cfg);
  const std::vector<bool> before = map.membership().bitmap();
  ASSERT_TRUE(map.membership().set_live(7, false));
  std::uint64_t changed = 0;
  for (cdn::ContentId id = 0; id < kCatalog; ++id) {
    if (map.replicas(id) != map.replicas_under(id, before)) ++changed;
  }
  // The mod-live-count strawman renumbers nearly the whole catalog on a
  // single flip -- the pathology the jump policy exists to avoid.
  EXPECT_GT(changed, kCatalog * 9 / 10);
}

TEST(PlacementMapTest, PlaneDiversityHoldsOnEveryPreset) {
  for (const std::string& name : orbit::constellation_preset_names()) {
    const orbit::WalkerConstellation c(orbit::multi_shell_preset(name));
    PlacementMapConfig cfg;
    cfg.replicas = std::min<std::uint32_t>(4, c.plane_count());
    const PlacementMap map(c, cfg);
    for (cdn::ContentId id = 0; id < 500; ++id) {
      const auto holders = map.replicas(id);
      std::set<std::uint32_t> planes;
      for (const std::uint32_t sat : holders) planes.insert(c.plane_of(sat));
      EXPECT_EQ(planes.size(), holders.size())
          << "plane collision on preset " << name << ", object " << id;
    }
  }
}

TEST(PlacementMapTest, PhaseDiversityAlsoSeparatesInPlaneSlots) {
  const orbit::WalkerConstellation& c = shell1();
  PlacementMapConfig cfg;
  cfg.diversity = ReplicaDiversity::kPhase;
  const PlacementMap map(c, cfg);
  for (cdn::ContentId id = 0; id < 500; ++id) {
    const auto holders = map.replicas(id);
    std::set<std::uint32_t> planes;
    std::set<std::uint32_t> slots;
    for (const std::uint32_t sat : holders) {
      planes.insert(c.plane_of(sat));
      slots.insert(c.index_of(sat).in_plane);
    }
    EXPECT_EQ(planes.size(), holders.size());
    EXPECT_EQ(slots.size(), holders.size());
  }
}

TEST(PlacementMapTest, ErasureAccounting) {
  PlacementMapConfig cfg;
  cfg.policy = PlacementPolicy::kJumpEc;
  const PlacementMap map(shell1(), cfg);
  EXPECT_EQ(map.placements_per_object(), 6u);  // 4 data + 2 parity fragments
  EXPECT_EQ(map.min_live_for_read(), 4u);
  EXPECT_EQ(map.replicas(1).size(), 6u);
  EXPECT_NEAR(map.stored_bytes(item(1, 100.0)).value(), 25.0, 1e-9);
  EXPECT_NEAR(cfg.ec.overhead(), 1.5, 1e-9);
}

TEST(PlacementMapTest, PlaceInsertsIntoEveryHolder) {
  const orbit::WalkerConstellation& c = shell1();
  FleetConfig fleet_cfg;
  fleet_cfg.capacity_per_satellite = Megabytes{1000.0};
  SatelliteFleet fleet(c.size(), fleet_cfg);
  const PlacementMap map(c, {});
  map.place(fleet, item(42), kNow);
  for (const std::uint32_t sat : map.replicas(42)) {
    EXPECT_TRUE(fleet.cache(sat).contains(42));
  }
}

TEST(PlacementMapTest, LoadSkewAndHopStats) {
  const PlacementMap map(shell1(), {});
  const auto skew = map.load_skew(kCatalog);
  const double expected_mean =
      static_cast<double>(kCatalog) * 4.0 / static_cast<double>(shell1().size());
  EXPECT_NEAR(skew.mean, expected_mean, 1e-9);
  EXPECT_GE(skew.max, skew.p99);
  EXPECT_GE(skew.p99_over_mean(), 1.0);
  des::Rng rng(42);
  const auto hops = map.analyze(200, kCatalog, rng);
  EXPECT_GT(hops.mean_hops, 0.0);
  EXPECT_GE(hops.p99_hops, hops.mean_hops);
  EXPECT_GE(static_cast<double>(hops.max_hops), hops.p99_hops);
}

TEST(RepairDaemonMapMode, DeltaRepairMovesOnlyTheDelta) {
  const orbit::WalkerConstellation& c = shell1();
  FleetConfig fleet_cfg;
  fleet_cfg.capacity_per_satellite = Megabytes{100'000.0};
  SatelliteFleet fleet(c.size(), fleet_cfg);
  PlacementMap map(c, {});
  std::vector<cdn::ContentItem> catalog;
  for (cdn::ContentId id = 0; id < 300; ++id) catalog.push_back(item(id));
  for (const cdn::ContentItem& it : catalog) map.place(fleet, it, kNow);

  RepairDaemon daemon(fleet, map, catalog);
  const RepairReport clean = daemon.run_once(kNow);
  EXPECT_EQ(clean.under_replicated, 0u);
  EXPECT_EQ(clean.moved, 0u);
  EXPECT_EQ(clean.bytes_moved_mb, 0.0);

  const std::vector<bool> before = map.membership().bitmap();
  const std::uint32_t failed = map.replicas(0)[0];  // holds at least object 0
  ASSERT_TRUE(map.membership().set_live(failed, false));
  std::uint64_t displaced = 0;
  for (const cdn::ContentItem& it : catalog) {
    displaced += holds_sat(map.replicas_under(it.id, before), failed) ? 1 : 0;
  }
  ASSERT_GE(displaced, 1u);

  const RepairReport delta = daemon.run_once(kNow);
  EXPECT_EQ(delta.moved, displaced);          // one new home per displaced copy
  EXPECT_EQ(delta.evicted_stale, displaced);  // the failed holder is dropped
  EXPECT_NEAR(delta.bytes_moved_mb, 10.0 * static_cast<double>(displaced), 1e-9);

  // A follow-up scan with no membership change moves nothing.
  const RepairReport quiet = daemon.run_once(kNow);
  EXPECT_EQ(quiet.moved, 0u);
  EXPECT_EQ(quiet.under_replicated, 0u);
  EXPECT_EQ(quiet.bytes_moved_mb, 0.0);
}

}  // namespace
}  // namespace spacecdn::space
