// Tests for the sharded, conservatively-synchronised parallel DES
// (des::ShardedSimulator) and the serial engine's ordering invariants it
// relies on, plus the ThreadPool edges the window barrier exercises.
#include <atomic>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "des/random.hpp"
#include "des/sharded.hpp"
#include "des/simulator.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace spacecdn;

// ------------------------------------------- serial ordering invariants

TEST(SimulatorOrdering, ScheduleAtNowFromActionRunsAfterQueuedPeers) {
  des::Simulator sim;
  std::vector<int> order;
  sim.schedule_at(Milliseconds{5.0}, [&] {
    order.push_back(0);
    // Scheduled *at the current instant* from inside an action: it must run
    // after every event already queued for t=5 (stable FIFO by sequence).
    sim.schedule_at(sim.now(), [&] { order.push_back(3); });
  });
  sim.schedule_at(Milliseconds{5.0}, [&] { order.push_back(1); });
  sim.schedule_at(Milliseconds{5.0}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimulatorOrdering, CancelInsideActionSuppressesSameInstantPeer) {
  des::Simulator sim;
  std::vector<int> order;
  des::EventId victim = 0;
  sim.schedule_at(Milliseconds{2.0}, [&] {
    order.push_back(0);
    EXPECT_TRUE(sim.cancel(victim));   // not yet fired: cancellable
    EXPECT_FALSE(sim.cancel(victim));  // second cancel is a stale no-op
  });
  victim = sim.schedule_at(Milliseconds{2.0}, [&] { order.push_back(99); });
  sim.schedule_at(Milliseconds{2.0}, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

// --------------------------------------------------- sharded simulator

TEST(ShardedSimulator, RejectsDegenerateConfigs) {
  EXPECT_THROW(des::ShardedSimulator(0, Milliseconds{1.0}), ConfigError);
  EXPECT_THROW(des::ShardedSimulator(2, Milliseconds{0.0}), ConfigError);
  EXPECT_THROW(des::ShardedSimulator(2, Milliseconds{-1.0}), ConfigError);
}

TEST(ShardedSimulator, SingleShardMatchesSerialSimulator) {
  // The same three-event chain on the oracle and on a 1-shard sharded
  // engine: identical execution order and timestamps.
  auto drive = [](des::Simulator& sim, std::vector<double>& log) {
    sim.schedule_at(Milliseconds{3.0}, [&sim, &log] {
      log.push_back(sim.now().value());
      sim.schedule(Milliseconds{4.0}, [&sim, &log] { log.push_back(sim.now().value()); });
    });
    sim.schedule_at(Milliseconds{3.0}, [&sim, &log] { log.push_back(-sim.now().value()); });
  };
  des::Simulator oracle;
  std::vector<double> oracle_log;
  drive(oracle, oracle_log);
  oracle.run();

  des::ShardedSimulator sharded(1, Milliseconds{2.0});
  std::vector<double> sharded_log;
  drive(sharded.shard(0), sharded_log);
  sharded.run();

  EXPECT_EQ(oracle_log, sharded_log);
  EXPECT_EQ(sharded.processed_events(), oracle.processed_events());
  EXPECT_EQ(sharded.cross_shard_posts(), 0u);
}

TEST(ShardedSimulator, MailboxDeliversInSourceThenSequenceOrder) {
  des::ShardedSimulator sharded(3, Milliseconds{10.0});
  std::vector<std::string> order;
  // A local event queued first at t=5, then posts from shards 2 and 1 for
  // the same instant.  The barrier drains outboxes in source-shard order
  // (1 before 2) and each outbox in post order, and locally queued events
  // keep their earlier sequence numbers, so the tie resolves local,
  // s1-first-post, s1-second-post, s2.
  sharded.shard(0).schedule_at(Milliseconds{5.0}, [&] { order.push_back("local"); });
  sharded.post(2, 0, Milliseconds{5.0}, [&] { order.push_back("from-s2"); });
  sharded.post(1, 0, Milliseconds{5.0}, [&] { order.push_back("from-s1-a"); });
  sharded.post(1, 0, Milliseconds{5.0}, [&] { order.push_back("from-s1-b"); });
  sharded.run();
  EXPECT_EQ(order, (std::vector<std::string>{"local", "from-s1-a", "from-s1-b", "from-s2"}));
  EXPECT_EQ(sharded.cross_shard_posts(), 3u);
}

TEST(ShardedSimulator, PostInsideExecutingWindowThrows) {
  des::ShardedSimulator sharded(2, Milliseconds{10.0});
  sharded.shard(0).schedule_at(Milliseconds{4.0}, [&] {
    // t=4 lies inside window (0, 10]; a post landing at t=6 would arrive
    // after shard 1 may already have advanced past it.
    sharded.post(0, 1, Milliseconds{6.0}, [] {});
  });
  EXPECT_THROW(sharded.run(), ConfigError);
}

TEST(ShardedSimulator, BoundaryEventBelongsToTheWindowThatEndsThere) {
  // An event exactly at t=W runs in window 1 ((0, W]); a post made from it
  // at t=W+lookahead is legal and lands in a later window.
  des::ShardedSimulator sharded(2, Milliseconds{10.0});
  std::vector<double> log;
  sharded.shard(0).schedule_at(Milliseconds{10.0}, [&] {
    sharded.post(0, 1, Milliseconds{20.0},
                 [&] { log.push_back(sharded.shard(1).now().value()); });
  });
  sharded.run();
  EXPECT_EQ(log, (std::vector<double>{20.0}));
  EXPECT_EQ(sharded.windows_executed(), 2u);
}

// ------------------------- randomized serial-vs-parallel equivalence

/// Shard-confined trace: every event folds (shard-local sequence, now, tag)
/// into an FNV-1a accumulator, so two runs agree iff every shard executed
/// the same events, in the same order, at the same times.
struct GraphState {
  des::ShardedSimulator* engine = nullptr;
  std::vector<std::uint64_t> hash;
  std::vector<std::uint64_t> count;
  std::vector<des::Rng> rng;
};

void note(GraphState& st, std::size_t shard, double now, std::uint64_t tag) {
  std::uint64_t h = st.hash[shard];
  std::uint64_t bits = 0;
  std::memcpy(&bits, &now, sizeof(bits));
  for (const std::uint64_t v : {st.count[shard], bits, tag}) {
    h = (h ^ v) * 0x100000001b3ULL;
  }
  st.hash[shard] = h;
  ++st.count[shard];
}

constexpr double kGraphLookaheadMs = 8.0;

/// One event of the random graph: traces itself, then (seeded, per-shard
/// stream) fans out into local follow-ups and/or a cross-shard post with at
/// least one full lookahead of delay.
void run_graph_event(const std::shared_ptr<GraphState>& st, std::size_t shard,
                     std::uint64_t tag, int depth) {
  des::Simulator& eng = st->engine->shard(shard);
  note(*st, shard, eng.now().value(), tag);
  if (depth <= 0) return;
  des::Rng& rng = st->rng[shard];
  const std::uint64_t children = rng.uniform_int(0, 2);
  for (std::uint64_t c = 0; c < children; ++c) {
    const double delay = rng.uniform(0.0, 2.5 * kGraphLookaheadMs);
    eng.schedule(Milliseconds{delay}, [st, shard, tag, depth, c] {
      run_graph_event(st, shard, tag * 7 + c + 1, depth - 1);
    });
  }
  if (rng.chance(0.4)) {
    const std::size_t dst = rng.uniform_int(0, st->engine->shard_count() - 1);
    // now > (k-1)W inside window k, so now + W > kW == window_end: always a
    // legal post.
    const Milliseconds when = eng.now() + Milliseconds{kGraphLookaheadMs} +
                              Milliseconds{rng.uniform(0.0, kGraphLookaheadMs)};
    st->engine->post(shard, dst, when, [st, dst, tag, depth] {
      run_graph_event(st, dst, tag * 13 + 5, depth - 1);
    });
  }
}

GraphState run_random_graph(std::size_t shards, std::uint64_t seed, ThreadPool* pool) {
  des::ShardedSimulator sharded(shards, Milliseconds{kGraphLookaheadMs});
  auto st = std::make_shared<GraphState>();
  st->engine = &sharded;
  st->hash.assign(shards, 0xcbf29ce484222325ULL);
  st->count.assign(shards, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    st->rng.emplace_back(des::mix_seed(seed, s));
  }
  for (std::size_t s = 0; s < shards; ++s) {
    const std::uint64_t roots = 2 + s % 3;
    for (std::uint64_t r = 0; r < roots; ++r) {
      sharded.shard(s).schedule_at(Milliseconds{static_cast<double>(r)},
                                   [st, s, r] { run_graph_event(st, s, r + 1, 6); });
    }
  }
  sharded.run(pool);
  GraphState out = *st;
  out.engine = nullptr;  // the engine dies with this scope
  return out;
}

TEST(ShardedSimulator, RandomEventGraphBitIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 977ULL}) {
    const GraphState serial = run_random_graph(4, seed, nullptr);
    std::uint64_t total = 0;
    for (const std::uint64_t c : serial.count) total += c;
    ASSERT_GT(total, 50u) << "seed " << seed << " produced a trivial graph";
    for (const std::size_t threads : {1u, 2u, 4u}) {
      ThreadPool pool(threads);
      const GraphState parallel = run_random_graph(4, seed, &pool);
      EXPECT_EQ(serial.hash, parallel.hash) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(serial.count, parallel.count) << "seed " << seed << " threads " << threads;
    }
  }
}

// ------------------------------------------------- thread-pool edges

TEST(ThreadPoolEdges, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;  // no atomics needed: inline execution is serial
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolEdges, FirstExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(256,
                        [&](std::size_t i) {
                          ran.fetch_add(1, std::memory_order_relaxed);
                          if (i == 17) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Lanes stop at the failure flag; not every index needs to have run.
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 256);
  // The pool survives a failed sweep.
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolEdges, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    // From a worker thread, a nested sweep must not re-enter the queue and
    // block on its own completion.
    pool.parallel_for(8, [&](std::size_t j) {
      inner_total.fetch_add(static_cast<int>(j) + 1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 4 * 36);
}

}  // namespace
