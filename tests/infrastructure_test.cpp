// Tests for the deeper infrastructure modules: processor-sharing flows,
// hierarchical CDN, consistent hashing, cell capacity, synthetic
// traceroutes, and the CLI parser.
#include <gtest/gtest.h>

#include <cmath>

#include "cdn/consistent_hash.hpp"
#include "cdn/hierarchy.hpp"
#include "data/datasets.hpp"
#include "geo/distance.hpp"
#include "lsn/cell_capacity.hpp"
#include "measurement/traceroute.hpp"
#include "net/flow.hpp"
#include "sim/world.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace spacecdn {
namespace {

// -------------------------------------------------------------------- flows

TEST(SharedLink, SingleFlowRunsAtLineRate) {
  des::Simulator sim;
  net::SharedLink link(sim, Mbps{80.0});  // 10 MB/s
  std::vector<net::FlowRecord> done;
  (void)link.start_flow(Megabytes{10.0},
                        [&](const net::FlowRecord& r) { done.push_back(r); });
  sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0].duration().value(), 1000.0, 1e-6);
  EXPECT_NEAR(done[0].goodput().value(), 80.0, 1e-6);
}

TEST(SharedLink, TwoEqualFlowsShareFairly) {
  des::Simulator sim;
  net::SharedLink link(sim, Mbps{80.0});
  std::vector<net::FlowRecord> done;
  const auto record = [&](const net::FlowRecord& r) { done.push_back(r); };
  (void)link.start_flow(Megabytes{10.0}, record);
  (void)link.start_flow(Megabytes{10.0}, record);
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Both halve the rate: 2 s each instead of 1 s.
  EXPECT_NEAR(done[0].duration().value(), 2000.0, 1.0);
  EXPECT_NEAR(done[1].duration().value(), 2000.0, 1.0);
}

TEST(SharedLink, ShortFlowDelaysLongFlowExactly) {
  des::Simulator sim;
  net::SharedLink link(sim, Mbps{80.0});  // 10 MB/s
  std::vector<net::FlowRecord> done;
  const auto record = [&](const net::FlowRecord& r) { done.push_back(r); };
  // Long flow: 20 MB. Short flow of 5 MB arrives at t=0 too.
  (void)link.start_flow(Megabytes{20.0}, record);
  (void)link.start_flow(Megabytes{5.0}, record);
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Short flow: shares 5 MB/s until done at t=1s.  Long flow: 5 MB by t=1s,
  // then 15 MB at full 10 MB/s -> finishes at 2.5 s.
  EXPECT_NEAR(done[0].duration().value(), 1000.0, 1.0);
  EXPECT_NEAR(done[1].duration().value(), 2500.0, 1.0);
}

TEST(SharedLink, LateArrivalSharesRemainder) {
  des::Simulator sim;
  net::SharedLink link(sim, Mbps{80.0});
  std::vector<std::pair<net::FlowId, double>> finished;
  (void)link.start_flow(Megabytes{10.0}, [&](const net::FlowRecord& r) {
    finished.emplace_back(r.id, r.finished.value());
  });
  sim.schedule(Milliseconds{500.0}, [&] {
    (void)link.start_flow(Megabytes{10.0}, [&](const net::FlowRecord& r) {
      finished.emplace_back(r.id, r.finished.value());
    });
  });
  sim.run();
  ASSERT_EQ(finished.size(), 2u);
  // Flow 1 alone for 0.5 s (5 MB), then shares: remaining 5 MB at 5 MB/s ->
  // finishes at 1.5 s.  Flow 2: 5 MB by 1.5 s, then full rate -> 2.0 s.
  EXPECT_NEAR(finished[0].second, 1500.0, 1.0);
  EXPECT_NEAR(finished[1].second, 2000.0, 1.0);
}

TEST(SharedLink, CancelStopsCallbackAndFreesShare) {
  des::Simulator sim;
  net::SharedLink link(sim, Mbps{80.0});
  int callbacks = 0;
  const auto id = link.start_flow(Megabytes{50.0},
                                  [&](const net::FlowRecord&) { ++callbacks; });
  std::vector<double> finish;
  (void)link.start_flow(Megabytes{10.0}, [&](const net::FlowRecord& r) {
    finish.push_back(r.finished.value());
  });
  sim.schedule(Milliseconds{100.0}, [&] { EXPECT_TRUE(link.cancel_flow(id)); });
  sim.run();
  EXPECT_EQ(callbacks, 0);
  ASSERT_EQ(finish.size(), 1u);
  // 0.1 s shared (0.5 MB) + 9.5 MB at full rate = 0.1 + 0.95 s.
  EXPECT_NEAR(finish[0], 1050.0, 1.0);
  EXPECT_FALSE(link.cancel_flow(id));
}

TEST(SharedLink, ZeroByteFlowCompletesImmediately) {
  des::Simulator sim;
  net::SharedLink link(sim, Mbps{10.0});
  bool fired = false;
  (void)link.start_flow(Megabytes{0.0}, [&](const net::FlowRecord& r) {
    fired = true;
    EXPECT_DOUBLE_EQ(r.duration().value(), 0.0);
  });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(SharedLink, ManyFlowsConserveWork) {
  des::Simulator sim;
  net::SharedLink link(sim, Mbps{80.0});  // 10 MB/s
  double total_mb = 0.0;
  double last_finish = 0.0;
  des::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const double mb = rng.uniform(0.5, 5.0);
    total_mb += mb;
    (void)link.start_flow(Megabytes{mb}, [&](const net::FlowRecord& r) {
      last_finish = std::max(last_finish, r.finished.value());
    });
  }
  sim.run();
  EXPECT_EQ(link.completed_flows(), 50u);
  // Work conservation: the busy period ends exactly at total/capacity.
  EXPECT_NEAR(last_finish, total_mb / 10.0 * 1000.0, 1.0);
}

// ---------------------------------------------------------------- hierarchy

TEST(Hierarchy, ServesThroughTiersInOrder) {
  cdn::CdnHierarchy tree(data::cdn_sites(), {});
  const cdn::ContentItem obj{1, Megabytes{5.0}, data::Region::kEurope};
  const std::size_t edge = tree.nearest_edge(data::location(data::city("Berlin")));

  const auto first = tree.serve(edge, obj, Milliseconds{5.0}, Milliseconds{0.0});
  EXPECT_EQ(first.served_by, cdn::ServedBy::kOrigin);
  const auto second = tree.serve(edge, obj, Milliseconds{5.0}, Milliseconds{0.0});
  EXPECT_EQ(second.served_by, cdn::ServedBy::kEdge);
  EXPECT_LT(second.first_byte.value(), first.first_byte.value());
}

TEST(Hierarchy, SiblingEdgeHitsRegionalParent) {
  cdn::CdnHierarchy tree(data::cdn_sites(), {});
  const cdn::ContentItem obj{2, Megabytes{5.0}, data::Region::kEurope};
  const std::size_t berlin = tree.nearest_edge(data::location(data::city("Berlin")));
  const std::size_t madrid = tree.nearest_edge(data::location(data::city("Madrid")));
  ASSERT_NE(berlin, madrid);

  (void)tree.serve(berlin, obj, Milliseconds{5.0}, Milliseconds{0.0});
  const auto sibling = tree.serve(madrid, obj, Milliseconds{5.0}, Milliseconds{0.0});
  EXPECT_EQ(sibling.served_by, cdn::ServedBy::kRegional);
  EXPECT_EQ(tree.stats().regional_hits, 1u);
  EXPECT_EQ(tree.stats().origin_fetches, 1u);
}

TEST(Hierarchy, ParentsAreInTheSameRegion) {
  cdn::CdnHierarchy tree(data::cdn_sites(), {});
  for (const char* city : {"Nairobi", "Tokyo", "Denver", "Sao Paulo"}) {
    const std::size_t edge = tree.nearest_edge(data::location(data::city(city)));
    const auto& parent = tree.parent_of(edge);
    EXPECT_EQ(data::country(parent.country_code).region,
              data::country(tree.edge_site(edge).country_code).region)
        << city;
  }
}

TEST(Hierarchy, LatencyAccumulatesPerTier) {
  cdn::CdnHierarchy tree(data::cdn_sites(), {});
  const cdn::ContentItem obj{3, Megabytes{1.0}, data::Region::kAfrica};
  const std::size_t edge = tree.nearest_edge(data::location(data::city("Nairobi")));
  const auto miss = tree.serve(edge, obj, Milliseconds{10.0}, Milliseconds{0.0});
  // Origin in Ashburn: the miss pays two extra wide-area round trips.
  EXPECT_GT(miss.first_byte.value(), 100.0);
  const auto hit = tree.serve(edge, obj, Milliseconds{10.0}, Milliseconds{0.0});
  EXPECT_DOUBLE_EQ(hit.first_byte.value(), 10.0);
}

// --------------------------------------------------------- consistent hash

TEST(ConsistentHash, DeterministicAssignment) {
  cdn::ConsistentHashRing ring;
  ring.add_server("a");
  ring.add_server("b");
  ring.add_server("c");
  for (cdn::ContentId id = 0; id < 100; ++id) {
    EXPECT_EQ(ring.server_for(id), ring.server_for(id));
  }
}

TEST(ConsistentHash, BalanceWithinTolerance) {
  cdn::ConsistentHashRing ring(200);
  for (const char* name : {"s1", "s2", "s3", "s4", "s5"}) ring.add_server(name);
  const auto fractions = ring.ownership_fractions();
  ASSERT_EQ(fractions.size(), 5u);
  for (const auto& [name, fraction] : fractions) {
    EXPECT_NEAR(fraction, 0.2, 0.06) << name;
  }
}

TEST(ConsistentHash, RemovalOnlyRemapsVictimsKeys) {
  cdn::ConsistentHashRing ring;
  for (const char* name : {"s1", "s2", "s3", "s4"}) ring.add_server(name);
  std::map<cdn::ContentId, std::string> before;
  for (cdn::ContentId id = 0; id < 5000; ++id) before[id] = ring.server_for(id);
  ASSERT_TRUE(ring.remove_server("s2"));
  std::uint64_t moved = 0;
  for (cdn::ContentId id = 0; id < 5000; ++id) {
    const std::string& now = ring.server_for(id);
    EXPECT_NE(now, "s2");
    if (before[id] != "s2") {
      EXPECT_EQ(now, before[id]);  // untouched keys stay put
    } else {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);
}

TEST(ConsistentHash, ReplicaSetsAreDistinct) {
  cdn::ConsistentHashRing ring;
  for (const char* name : {"s1", "s2", "s3"}) ring.add_server(name);
  const auto replicas = ring.servers_for(42, 3);
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_NE(replicas[0], replicas[1]);
  EXPECT_NE(replicas[1], replicas[2]);
  // Asking for more replicas than servers returns all servers.
  EXPECT_EQ(ring.servers_for(42, 10).size(), 3u);
}

TEST(ConsistentHash, EmptyRingThrows) {
  cdn::ConsistentHashRing ring;
  EXPECT_THROW((void)ring.server_for(1), ConfigError);
  ring.add_server("only");
  EXPECT_EQ(ring.server_for(1), "only");
  EXPECT_FALSE(ring.remove_server("ghost"));
}

// ------------------------------------------------------------ cell capacity

TEST(CellCapacity, DiurnalCurvePeaksAtPeakHour) {
  const lsn::CellLoadModel model({});
  const double peak = model.active_fraction(20.5);
  EXPECT_NEAR(peak, model.config().peak_active_fraction, 1e-9);
  EXPECT_NEAR(model.active_fraction(8.5), model.config().trough_active_fraction, 1e-9);
  EXPECT_GT(model.active_fraction(18.0), model.active_fraction(10.0));
}

TEST(CellCapacity, EveningThroughputDips) {
  const lsn::CellLoadModel model({});
  const Mbps morning = model.expected_throughput(6.0);
  const Mbps evening = model.expected_throughput(20.5);
  EXPECT_LT(evening.value(), morning.value());
  EXPECT_GT(evening.value(), 1.0);
}

TEST(CellCapacity, LightCellIsTerminalCapped) {
  lsn::CellConfig cfg;
  cfg.subscribers = 5.0;
  const lsn::CellLoadModel model(cfg);
  EXPECT_DOUBLE_EQ(model.expected_throughput(20.5).value(),
                   cfg.terminal_cap.value());
  EXPECT_LT(model.utilization(20.5), 0.1);
}

TEST(CellCapacity, SamplesRespectTerminalCap) {
  const lsn::CellLoadModel model({});
  des::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const Mbps sample = model.sample_throughput(20.0, rng);
    EXPECT_LE(sample.value(), model.config().terminal_cap.value() + 1e-9);
    EXPECT_GE(sample.value(), 1.0);
  }
}

TEST(CellCapacity, RejectsBadConfig) {
  lsn::CellConfig cfg;
  cfg.peak_active_fraction = 0.1;
  cfg.trough_active_fraction = 0.2;  // trough > peak
  EXPECT_THROW(lsn::CellLoadModel{cfg}, ConfigError);
}

// --------------------------------------------------------------- traceroute

class TracerouteTest : public ::testing::Test {
 protected:
  static const lsn::StarlinkNetwork& network() {
    return sim::shared_world().network();
  }
};

TEST_F(TracerouteTest, StarlinkPathShowsCgnatThenPop) {
  const measurement::TracerouteSynthesizer synth(network());
  des::Rng rng(3);
  const auto trace = synth.starlink(data::city("Maputo"),
                                    data::location(data::city("Frankfurt")), rng);
  ASSERT_GE(trace.hops.size(), 4u);
  EXPECT_EQ(trace.hops[0].kind, measurement::HopKind::kCpe);
  EXPECT_EQ(trace.hops[1].kind, measurement::HopKind::kCgnat);
  EXPECT_EQ(trace.hops[2].kind, measurement::HopKind::kPopGateway);
  // The CGNAT hop already carries the full space-segment RTT (~130 ms).
  EXPECT_GT(trace.hops[1].rtt.value(), 90.0);
  // The PoP is labelled Frankfurt: the paper's "first public hop a continent
  // away".
  EXPECT_NE(trace.hops[2].label.find("Frankfurt"), std::string::npos);
  EXPECT_EQ(trace.hops.back().kind, measurement::HopKind::kDestination);
}

TEST_F(TracerouteTest, CumulativeRttsAreMonotoneAtKindBoundaries) {
  const measurement::TracerouteSynthesizer synth(network());
  des::Rng rng(4);
  const auto trace = synth.starlink(data::city("London"),
                                    data::location(data::city("Madrid")), rng);
  ASSERT_GE(trace.hops.size(), 3u);
  EXPECT_LT(trace.hops[0].rtt.value(), trace.hops[1].rtt.value());
  EXPECT_LE(trace.hops[1].rtt.value(), trace.hops.back().rtt.value());
}

TEST_F(TracerouteTest, TerrestrialPathHasNoCgnat) {
  const measurement::TracerouteSynthesizer synth(network());
  des::Rng rng(5);
  const auto trace = synth.terrestrial(data::city("Maputo"),
                                       data::location(data::city("Johannesburg")), rng);
  for (const auto& hop : trace.hops) {
    EXPECT_NE(hop.kind, measurement::HopKind::kCgnat);
    EXPECT_NE(hop.kind, measurement::HopKind::kPopGateway);
  }
  EXPECT_LT(trace.total_rtt().value(), 60.0);
}

TEST_F(TracerouteTest, PopInferenceUsesBorderRouterLabel) {
  const measurement::TracerouteSynthesizer synth(network());
  des::Rng rng(6);
  const auto trace = synth.starlink(data::city("Maputo"),
                                    data::location(data::city("Frankfurt")), rng);
  EXPECT_EQ(synth.infer_pop(trace, data::city("Maputo")), "frankfurt");
}

TEST_F(TracerouteTest, PopInferenceRttFallbackIsPlausible) {
  const measurement::TracerouteSynthesizer synth(network());
  des::Rng rng(7);
  auto trace = synth.starlink(data::city("Maputo"),
                              data::location(data::city("Frankfurt")), rng);
  // Strip the rDNS label (many border routers do not resolve); the RTT
  // fallback must still return a PoP whose distance is consistent with the
  // observed first-public-hop RTT, even if not the exact one.
  for (auto& hop : trace.hops) {
    if (hop.kind == measurement::HopKind::kPopGateway) hop.label = "10.20.30.40";
  }
  const std::string inferred = synth.infer_pop(trace, data::city("Maputo"));
  ASSERT_FALSE(inferred.empty());
  const auto& pop = data::pop(inferred);
  const double km = geo::great_circle_distance(data::location(data::city("Maputo")),
                                               data::location(pop))
                        .value();
  EXPECT_GT(km, 4000.0);  // an RTT of ~135 ms cannot come from a nearby PoP
}

// ---------------------------------------------------------------------- cli

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--count=5", "--name=alice", "--verbose", "input.txt"};
  const CliArgs args(5, argv);
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.get("count", 0L), 5L);
  EXPECT_EQ(args.get("name", std::string("none")), "alice");
  EXPECT_TRUE(args.get("verbose", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.txt");
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const CliArgs args(1, argv);
  EXPECT_EQ(args.get("missing", 7L), 7L);
  EXPECT_DOUBLE_EQ(args.get("ratio", 0.5), 0.5);
  EXPECT_FALSE(args.get("flag", false));
  EXPECT_FALSE(args.has("anything"));
}

TEST(Cli, RejectsMalformedValues) {
  const char* argv[] = {"prog", "--n=abc", "--b=maybe"};
  const CliArgs args(3, argv);
  EXPECT_THROW((void)args.get("n", 1L), ConfigError);
  EXPECT_THROW((void)args.get("b", false), ConfigError);
}

TEST(Cli, TracksUnusedFlags) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  const CliArgs args(3, argv);
  (void)args.get("used", 0L);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, IntegerFlagsParseExactlyAndRejectFractions) {
  // Regression: get(long) used to route through strtod, silently truncating
  // "--seed=3.7" to 3 and rounding integers above 2^53.
  const char* argv[] = {"prog", "--seed=3.7", "--big=9007199254740993",
                        "--neg=-42", "--sci=1e3", "--empty="};
  const CliArgs args(6, argv);
  EXPECT_THROW((void)args.get("seed", 0L), ConfigError);
  EXPECT_EQ(args.get("big", 0L), 9007199254740993L);  // 2^53 + 1, exact
  EXPECT_EQ(args.get("neg", 0L), -42L);
  EXPECT_THROW((void)args.get("sci", 0L), ConfigError);
  EXPECT_THROW((void)args.get("empty", 0L), ConfigError);
  // The same values stay legal for the double overload.
  EXPECT_DOUBLE_EQ(args.get("seed", 0.0), 3.7);
  EXPECT_DOUBLE_EQ(args.get("sci", 0.0), 1000.0);
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=off", "--c"};
  const CliArgs args(4, argv);
  EXPECT_TRUE(args.get("a", false));
  EXPECT_FALSE(args.get("b", true));
  EXPECT_TRUE(args.get("c", false));
}

}  // namespace
}  // namespace spacecdn
