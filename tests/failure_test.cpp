// Failure-injection tests: the ISL fabric and the SpaceCDN layers under
// laser-terminal outages.
#include <gtest/gtest.h>

#include <cmath>

#include "cdn/deployment.hpp"
#include "data/datasets.hpp"
#include "lsn/starlink.hpp"
#include "spacecdn/fleet.hpp"
#include "spacecdn/lookup.hpp"
#include "spacecdn/placement.hpp"
#include "spacecdn/router.hpp"
#include "util/error.hpp"

namespace spacecdn {
namespace {

const orbit::WalkerConstellation& shell1() {
  static const orbit::WalkerConstellation shell(orbit::starlink_shell1());
  return shell;
}

std::vector<std::uint32_t> random_failures(double fraction, des::Rng& rng) {
  const auto count = static_cast<std::uint32_t>(fraction * shell1().size());
  return rng.sample_without_replacement(shell1().size(), count);
}

TEST(Failures, FailedSatellitesCarryNoEdges) {
  const orbit::EphemerisSnapshot snapshot(shell1(), Milliseconds{0.0});
  const std::vector<std::uint32_t> failed{10, 20, 20, 30};  // duplicate tolerated
  const lsn::IslNetwork isl(shell1(), snapshot, {}, failed);
  EXPECT_EQ(isl.failed_count(), 3u);
  EXPECT_TRUE(isl.is_failed(10));
  EXPECT_FALSE(isl.is_failed(11));
  for (const std::uint32_t sat : {10u, 20u, 30u}) {
    EXPECT_TRUE(isl.graph().neighbors(sat).empty());
  }
  // Neighbours of a failed satellite lost exactly the links towards it.
  for (const auto& edge : isl.graph().neighbors(9)) EXPECT_NE(edge.to, 10u);
}

TEST(Failures, FabricSurvivesFivePercentLoss) {
  const orbit::EphemerisSnapshot snapshot(shell1(), Milliseconds{0.0});
  des::Rng rng(31);
  const auto failed = random_failures(0.05, rng);
  const lsn::IslNetwork isl(shell1(), snapshot, {}, failed);

  // Pick a healthy source and count reachable healthy satellites.
  std::uint32_t source = 0;
  while (isl.is_failed(source)) ++source;
  const auto dist = isl.latencies_from(source);
  std::uint32_t reachable = 0, healthy = 0;
  for (std::uint32_t s = 0; s < shell1().size(); ++s) {
    if (isl.is_failed(s)) continue;
    ++healthy;
    if (!std::isinf(dist[s].value())) ++reachable;
  }
  // The +grid is 4-connected: sparse random loss must not shatter it.
  EXPECT_GT(static_cast<double>(reachable) / healthy, 0.99);
}

TEST(Failures, PathsDetourAndGetLonger) {
  const orbit::EphemerisSnapshot snapshot(shell1(), Milliseconds{0.0});
  const lsn::IslNetwork healthy(shell1(), snapshot, {});
  // Fail a wall of satellites across the direct corridor between 0 and 110.
  const auto direct = net::shortest_path(healthy.graph(), 0, 110);
  ASSERT_TRUE(direct.has_value());
  ASSERT_GT(direct->nodes.size(), 2u);
  std::vector<std::uint32_t> wall(direct->nodes.begin() + 1, direct->nodes.end() - 1);
  const lsn::IslNetwork broken(shell1(), snapshot, {}, wall);
  const auto detour = net::shortest_path(broken.graph(), 0, 110);
  ASSERT_TRUE(detour.has_value());
  EXPECT_GT(detour->total.value(), direct->total.value());
}

TEST(Failures, LookupSkipsUnreachableReplicaHolders) {
  const orbit::EphemerisSnapshot snapshot(shell1(), Milliseconds{0.0});
  space::SatelliteFleet fleet(shell1().size(),
                              space::FleetConfig{Megabytes{1000.0},
                                                 cdn::CachePolicy::kLru});
  const cdn::ContentItem obj{1, Megabytes{5.0}, data::Region::kEurope};
  // Two replicas: a close one that we fail, and a farther healthy one.
  const auto n1 = shell1().grid_neighbors(0)[0];
  const auto n2 = shell1().grid_neighbors(shell1().grid_neighbors(0)[2])[2];
  (void)fleet.cache(n1).insert(obj, Milliseconds{0.0});
  (void)fleet.cache(n2).insert(obj, Milliseconds{0.0});

  const std::vector<std::uint32_t> failed{n1};
  const lsn::IslNetwork isl(shell1(), snapshot, {}, failed);
  const auto found = space::find_replica(isl, fleet, 0, obj.id, 10);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->satellite, n2);  // the failed holder is invisible
}

TEST(Failures, BentPipeRoutesAroundFailures) {
  lsn::StarlinkConfig cfg;
  des::Rng rng(32);
  cfg.failed_satellites = random_failures(0.05, rng);
  const lsn::StarlinkNetwork degraded(cfg);
  const lsn::StarlinkNetwork healthy{};

  const geo::GeoPoint maputo = data::location(data::city("Maputo"));
  const auto broken_route =
      degraded.router().route_to_pop(maputo, data::country("MZ"));
  const auto clean_route = healthy.router().route_to_pop(maputo, data::country("MZ"));
  ASSERT_TRUE(broken_route && clean_route);
  // Still lands at Frankfurt; latency may only degrade.
  EXPECT_EQ(degraded.ground().pop(broken_route->pop).key, "frankfurt");
  EXPECT_GE(broken_route->propagation_rtt().value() + 1e-9,
            clean_route->propagation_rtt().value() * 0.95);
}

TEST(Failures, PlacementRedundancyCoversLostReplicas) {
  // With 4 copies per plane, failing any single holder leaves the object
  // within a slightly larger but still small hop budget.
  const orbit::EphemerisSnapshot snapshot(shell1(), Milliseconds{0.0});
  space::PlacementConfig pcfg;
  pcfg.copies_per_plane = 4;
  const space::ContentPlacement placement(shell1(), pcfg);
  space::SatelliteFleet fleet(shell1().size(),
                              space::FleetConfig{Megabytes{1000.0},
                                                 cdn::CachePolicy::kLru});
  const cdn::ContentItem obj{5, Megabytes{5.0}, data::Region::kAsia};
  placement.place(fleet, obj, Milliseconds{0.0});

  const auto replicas = placement.replicas(obj.id);
  const std::vector<std::uint32_t> failed{replicas.front()};
  const lsn::IslNetwork isl(shell1(), snapshot, {}, failed);

  des::Rng rng(33);
  for (int probe = 0; probe < 50; ++probe) {
    std::uint32_t origin = 0;
    do {
      origin = static_cast<std::uint32_t>(rng.uniform_int(0, shell1().size() - 1));
    } while (isl.is_failed(origin));
    const auto found = space::find_replica(isl, fleet, origin, obj.id, 8);
    ASSERT_TRUE(found.has_value()) << "origin " << origin;
    EXPECT_LE(found->hops, 8u);
  }
}

TEST(Failures, FailRecoverRestoresRoutesBitIdentically) {
  // Incremental surgery must be exact: recover() re-adds every edge with the
  // same weight formula over the same snapshot geometry, so shortest-path
  // latencies return to the pristine values bit-for-bit (not just within a
  // tolerance).  The asymmetric phase-nearest pairing is the trap here --
  // restoring only a satellite's *own* chosen partners would leave dangling
  // one-way edges.
  const orbit::WalkerConstellation shell(orbit::test_shell());
  const orbit::EphemerisSnapshot snapshot(shell, Milliseconds{0.0});
  lsn::IslNetwork isl(shell, snapshot, {});

  std::vector<std::vector<Milliseconds>> pristine;
  for (std::uint32_t s = 0; s < shell.size(); ++s) {
    pristine.push_back(isl.latencies_from(s));
  }

  for (const std::uint32_t sat : {0u, 13u, 42u}) isl.fail(sat);
  EXPECT_EQ(isl.failed_count(), 3u);
  EXPECT_TRUE(isl.graph().neighbors(13).empty());
  for (const std::uint32_t sat : {42u, 0u, 13u}) isl.recover(sat);
  EXPECT_EQ(isl.failed_count(), 0u);

  for (std::uint32_t s = 0; s < shell.size(); ++s) {
    const auto restored = isl.latencies_from(s);
    for (std::uint32_t d = 0; d < shell.size(); ++d) {
      ASSERT_EQ(restored[d].value(), pristine[s][d].value())
          << "path " << s << " -> " << d << " not bit-identical after recovery";
    }
  }
}

TEST(Failures, FailRecoverAreIdempotent) {
  const orbit::WalkerConstellation shell(orbit::test_shell());
  const orbit::EphemerisSnapshot snapshot(shell, Milliseconds{0.0});
  lsn::IslNetwork isl(shell, snapshot, {});
  const std::size_t edges = isl.graph().edge_count();

  isl.fail(7);
  isl.fail(7);  // double-fail must not corrupt counters or adjacency
  EXPECT_EQ(isl.failed_count(), 1u);
  isl.recover(7);
  isl.recover(7);
  EXPECT_EQ(isl.failed_count(), 0u);
  EXPECT_EQ(isl.graph().edge_count(), edges);
}

TEST(Failures, ResilientFetchAccountingConsistentUnderFaults) {
  // Regression: FetchResult bookkeeping (isl_hops / source_satellite /
  // ground_cache_hit) must stay consistent with the served tier when faults
  // force the router off its preferred path.
  const lsn::StarlinkNetwork network{};
  space::SatelliteFleet fleet(
      network.constellation().size(),
      space::FleetConfig{Megabytes{1000.0}, cdn::CachePolicy::kLru});
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  space::RouterConfig rcfg;
  rcfg.admit_on_fetch = false;
  space::SpaceCdnRouter router(network, fleet, ground, rcfg);

  constexpr Milliseconds t0{0.0};
  const double min_elev = network.config().user_min_elevation_deg;
  const geo::GeoPoint client = data::location(data::city("Maputo"));
  const auto preferred = network.snapshot().serving_satellite(client, min_elev);
  ASSERT_TRUE(preferred.has_value());
  fleet.set_online(*preferred, false);

  // The fault-aware serving choice: the nearest *online* visible satellite.
  std::optional<std::uint32_t> fallback;
  double best_range = 0.0;
  for (const std::uint32_t sat :
       network.snapshot().visible_satellites(client, min_elev)) {
    if (!fleet.online(sat)) continue;
    const double range = network.snapshot().slant_range(client, sat).value();
    if (!fallback || range < best_range) {
      fallback = sat;
      best_range = range;
    }
  }
  ASSERT_TRUE(fallback.has_value());
  ASSERT_NE(*fallback, *preferred);

  // Tier (i) from the fallback satellite: zero hops, source == server.
  const cdn::ContentItem obj{61, Megabytes{5.0}, data::Region::kEurope};
  ASSERT_TRUE(fleet.cache(*fallback).insert(obj, t0));
  des::Rng rng(34);
  const auto r1 = router.fetch_resilient(client, data::country("MZ"), obj, rng, t0);
  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r1.served.has_value());
  EXPECT_EQ(r1.served->tier, space::FetchTier::kServingSatellite);
  EXPECT_EQ(r1.served->source_satellite, *fallback);
  EXPECT_EQ(r1.served->isl_hops, 0u);
  EXPECT_FALSE(r1.served->ground_cache_hit);
  EXPECT_EQ(r1.attempts, 1u);
  EXPECT_DOUBLE_EQ(r1.total_latency.value(), r1.served->rtt.value());

  // Crash the only space holder of a second object: tier (ii) must skip the
  // dead cache and the ground tier's accounting takes over (source 0, cold
  // edge miss).
  const cdn::ContentItem obj2{62, Megabytes{5.0}, data::Region::kEurope};
  const auto holder = network.constellation().grid_neighbors(*fallback)[0];
  ASSERT_TRUE(fleet.cache(holder).insert(obj2, t0));
  fleet.crash_cache(holder);
  const auto r2 = router.fetch_resilient(client, data::country("MZ"), obj2, rng, t0);
  ASSERT_TRUE(r2.success);
  ASSERT_TRUE(r2.served.has_value());
  EXPECT_EQ(r2.served->tier, space::FetchTier::kGround);
  EXPECT_EQ(r2.served->source_satellite, 0u);
  EXPECT_FALSE(r2.served->ground_cache_hit);
}

TEST(Failures, CacheCrashLosesContentsUntilRestore) {
  space::SatelliteFleet fleet(16, space::FleetConfig{Megabytes{1000.0},
                                                     cdn::CachePolicy::kLru});
  const cdn::ContentItem obj{9, Megabytes{5.0}, data::Region::kEurope};
  ASSERT_TRUE(fleet.cache(3).insert(obj, Milliseconds{0.0}));
  ASSERT_TRUE(fleet.holds(3, obj.id));

  fleet.crash_cache(3);
  EXPECT_FALSE(fleet.cache_up(3));
  EXPECT_FALSE(fleet.cache_enabled(3));  // no service while crashed
  EXPECT_FALSE(fleet.holds(3, obj.id));  // contents are gone, not hidden
  EXPECT_FALSE(fleet.cache(3).contains(obj.id));

  fleet.restore_cache(3);
  EXPECT_TRUE(fleet.cache_up(3));
  EXPECT_TRUE(fleet.cache_enabled(3));
  // Back up but empty: a restore is not a recovery of the lost bytes.
  EXPECT_FALSE(fleet.holds(3, obj.id));
  ASSERT_TRUE(fleet.cache(3).insert(obj, Milliseconds{1.0}));
  EXPECT_TRUE(fleet.holds(3, obj.id));
}

TEST(Failures, OfflineSatelliteKeepsContentsButServesNothing) {
  space::SatelliteFleet fleet(16, space::FleetConfig{Megabytes{1000.0},
                                                     cdn::CachePolicy::kLru});
  const cdn::ContentItem obj{4, Megabytes{5.0}, data::Region::kAsia};
  ASSERT_TRUE(fleet.cache(5).insert(obj, Milliseconds{0.0}));

  fleet.set_online(5, false);
  EXPECT_FALSE(fleet.cache_enabled(5));
  EXPECT_FALSE(fleet.holds(5, obj.id));  // dark satellites serve nothing
  fleet.set_online(5, true);
  EXPECT_TRUE(fleet.holds(5, obj.id));  // the bus rebooted; the disks survived
}

TEST(Failures, AddingFailuresNeverShortensAnyPath) {
  // Monotonicity: removing edges can only keep shortest paths equal or make
  // them longer (or unreachable).  Checked over all pairs of the test shell
  // as satellites fail one by one.
  const orbit::WalkerConstellation shell(orbit::test_shell());
  const orbit::EphemerisSnapshot snapshot(shell, Milliseconds{0.0});
  lsn::IslNetwork isl(shell, snapshot, {});

  std::vector<std::vector<Milliseconds>> before;
  for (std::uint32_t s = 0; s < shell.size(); ++s) {
    before.push_back(isl.latencies_from(s));
  }

  for (const std::uint32_t failed : {9u, 27u, 50u}) {
    isl.fail(failed);
    for (std::uint32_t s = 0; s < shell.size(); ++s) {
      if (isl.is_failed(s)) continue;
      const auto after = isl.latencies_from(s);
      for (std::uint32_t d = 0; d < shell.size(); ++d) {
        if (isl.is_failed(d)) continue;
        ASSERT_GE(after[d].value(), before[s][d].value())
            << "failing " << failed << " shortened " << s << " -> " << d;
      }
      before[s] = after;
    }
  }
}

}  // namespace
}  // namespace spacecdn
