// Unit tests for the LEO satellite network substrate: ISL fabric, ground
// segment, access model, bent-pipe routing, Starlink facade.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "data/datasets.hpp"
#include "des/stats.hpp"
#include "geo/distance.hpp"
#include "lsn/starlink.hpp"
#include "util/error.hpp"

namespace spacecdn::lsn {
namespace {

/// Shared Shell-1 network; built once for the whole binary (propagating
/// 1,584 satellites and building the ISL fabric per test would dominate
/// runtime).
const StarlinkNetwork& shell1() {
  static const StarlinkNetwork network{};
  return network;
}

TEST(IslNetwork, GraphMatchesConstellation) {
  const auto& net = shell1();
  EXPECT_EQ(net.isl().graph().node_count(), 1584u);
  // +grid: ~2 undirected links per satellite (4 terminals / 2), as directed
  // edges: ~4 per satellite.  Phase-nearest selection can add a few extra.
  EXPECT_GE(net.isl().graph().edge_count(), 2u * 1584u);
  EXPECT_LE(net.isl().graph().edge_count(), 6u * 1584u);
}

TEST(IslNetwork, LinkLatencyMatchesDistance) {
  const auto& net = shell1();
  const auto neighbors = net.constellation().grid_neighbors(0);
  for (std::uint32_t n : neighbors) {
    const double d = net.snapshot().isl_distance(0, n).value();
    const double expected =
        d / geo::kSpeedOfLightKmPerSec * 1000.0 + net.config().isl.per_hop_overhead.value();
    EXPECT_NEAR(net.isl().link_latency(0, n).value(), expected, 1e-9);
  }
  EXPECT_THROW((void)net.isl().link_latency(0, 800), ConfigError);
}

TEST(IslNetwork, FabricIsConnected) {
  const auto& net = shell1();
  const auto dist = net.isl().latencies_from(0);
  for (std::uint32_t s = 0; s < 1584; s += 97) {
    EXPECT_FALSE(std::isinf(dist[s].value())) << "satellite " << s << " unreachable";
  }
}

TEST(IslNetwork, PathLatencyTriangleInequality) {
  const auto& net = shell1();
  const Milliseconds direct = net.isl().path_latency(0, 100);
  const Milliseconds via =
      net.isl().path_latency(0, 50) + net.isl().path_latency(50, 100);
  EXPECT_LE(direct.value(), via.value() + 1e-9);
}

TEST(IslNetwork, WithinHopsGrowsMonotonically) {
  const auto& net = shell1();
  std::size_t prev = 0;
  for (std::uint32_t h = 0; h <= 5; ++h) {
    const auto nodes = net.isl().within_hops(42, h);
    EXPECT_GT(nodes.size(), prev);
    prev = nodes.size();
  }
  // 4 neighbours per satellite: 1 + 4 = 5 within one hop.
  EXPECT_EQ(net.isl().within_hops(42, 1).size(), 5u);
}

TEST(IslNetwork, InterPlaneLinksStayWithinLaserReach) {
  // Regression for the +grid seam: naive same-slot pairing across the
  // plane 71 -> plane 0 wrap ignores the accumulated Walker phase offset
  // (F * 360 / T per plane) and produces "links" thousands of kilometres
  // beyond optical LoS.  Phase-nearest partner selection must keep every
  // inter-plane ISL within laser-terminal reach everywhere, seam included.
  constexpr double kMaxIslRangeKm = 5'400.0;  // optical LoS budget at 550 km
  const auto& net = shell1();
  const auto& shell = net.constellation();
  const std::uint32_t last_plane = shell.design().planes - 1;
  std::size_t inter_plane = 0, seam = 0;
  for (std::uint32_t sat = 0; sat < shell.size(); ++sat) {
    const auto a = shell.index_of(sat);
    for (const net::Edge& edge : net.isl().graph().neighbors(sat)) {
      const auto b = shell.index_of(edge.to);
      if (a.plane == b.plane) continue;
      ++inter_plane;
      const double km = net.snapshot().isl_distance(sat, edge.to).value();
      ASSERT_LE(km, kMaxIslRangeKm)
          << "ISL " << sat << " (plane " << a.plane << ") <-> " << edge.to
          << " (plane " << b.plane << ") spans " << km << " km";
      const auto lo = std::min(a.plane, b.plane);
      const auto hi = std::max(a.plane, b.plane);
      if (lo == 0 && hi == last_plane) ++seam;
    }
  }
  // Every satellite keeps both east and west terminals busy somewhere.
  EXPECT_GE(inter_plane, static_cast<std::size_t>(shell.size()));
  // The wrap-around seam itself carries links (and passed the bound above).
  EXPECT_GT(seam, 0u);
}

TEST(GroundSegment, DefaultsFromDataset) {
  const GroundSegment ground;
  EXPECT_EQ(ground.pop_count(), 22u);
  EXPECT_GE(ground.gateway_count(), 30u);
  EXPECT_EQ(ground.pop(ground.pop_index("tokyo")).country_code, "JP");
  EXPECT_THROW((void)ground.pop_index("missing"), NotFoundError);
}

TEST(GroundSegment, NearestPop) {
  const GroundSegment ground;
  const std::size_t pop = ground.nearest_pop(data::location(data::city("Munich")));
  EXPECT_EQ(ground.pop(pop).key, "frankfurt");
}

TEST(GroundSegment, AssignedPopFollowsCountryTable) {
  const GroundSegment ground;
  const auto& mz = data::country("MZ");
  const std::size_t pop =
      ground.assigned_pop(mz, data::location(data::city("Maputo")));
  EXPECT_EQ(ground.pop(pop).key, "frankfurt");
  // US has no fixed assignment: nearest PoP wins.
  const auto& us = data::country("US");
  const std::size_t seattle_pop =
      ground.assigned_pop(us, data::location(data::city("Seattle")));
  EXPECT_EQ(ground.pop(seattle_pop).key, "seattle");
}

TEST(GroundSegment, GatewayToPopHaul) {
  const GroundSegment ground;
  // Usingen DE gateway to Frankfurt PoP: tens of km, well under 1 ms.
  std::size_t usingen = 0;
  for (std::size_t g = 0; g < ground.gateway_count(); ++g) {
    if (ground.gateway(g).name == "Usingen DE") usingen = g;
  }
  EXPECT_LT(ground.gateway_to_pop(usingen, ground.pop_index("frankfurt")).value(), 1.0);
}

TEST(GroundSegment, VisibleSatelliteListsAreConsistent) {
  const auto& net = shell1();
  const GroundSegment ground;
  const auto best = ground.gateway_satellites(net.snapshot(), 10.0);
  const auto all = ground.gateway_visible_satellites(net.snapshot(), 10.0);
  ASSERT_EQ(best.size(), all.size());
  for (std::size_t g = 0; g < best.size(); ++g) {
    if (best[g]) {
      EXPECT_NE(std::find(all[g].begin(), all[g].end(), *best[g]), all[g].end());
    } else {
      EXPECT_TRUE(all[g].empty());
    }
  }
}

TEST(Access, IdleOverheadMedianCalibrated) {
  const StarlinkAccess access;
  des::Rng rng(1);
  des::SampleSet s;
  for (int i = 0; i < 20000; ++i) s.add(access.sample_idle_overhead(rng).value());
  EXPECT_NEAR(s.median(), access.config().median_overhead_rtt.value(), 1.0);
}

TEST(Access, LoadedOverheadShowsBufferbloat) {
  // Paper section 3.2: >200 ms during active downloads.
  const StarlinkAccess access;
  des::Rng rng(2);
  des::SampleSet s;
  for (int i = 0; i < 5000; ++i) s.add(access.sample_loaded_overhead(0.95, rng).value());
  EXPECT_GT(s.median(), 180.0);
}

TEST(BentPipe, LocalPopIsFast) {
  // Frankfurt client, Frankfurt PoP: the best case (~30 ms median RTT).
  const auto& net = shell1();
  const auto route = net.router().route_to_pop(
      data::location(data::city("Frankfurt")), data::country("DE"));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(net.ground().pop(route->pop).key, "frankfurt");
  EXPECT_LT(net.baseline_rtt(*route).value(), 45.0);
  EXPECT_EQ(route->isl_hops, 0u);
}

TEST(BentPipe, MozambiqueRidesIslsToFrankfurt) {
  // The paper's flagship case: Maputo -> Frankfurt PoP, ~9,000 km away,
  // median minRTT ~139 ms (Table 1).
  const auto& net = shell1();
  const auto route = net.router().route_to_pop(
      data::location(data::city("Maputo")), data::country("MZ"));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(net.ground().pop(route->pop).key, "frankfurt");
  EXPECT_GT(route->isl_hops, 3u);
  const double rtt = net.baseline_rtt(*route).value();
  EXPECT_GT(rtt, 100.0);
  EXPECT_LT(rtt, 190.0);
}

TEST(BentPipe, NoCoverageAtHighLatitude) {
  const auto& net = shell1();
  const auto route =
      net.router().route_to_pop({89.0, 0.0, 0.0}, data::country("US"));
  EXPECT_FALSE(route.has_value());
}

TEST(BentPipe, BreakdownComponentsSumUp) {
  const auto& net = shell1();
  const auto route = net.router().route(data::location(data::city("Madrid")),
                                        data::country("ES"),
                                        data::location(data::city("Lisbon")));
  ASSERT_TRUE(route.has_value());
  const double one_way = route->uplink.value() + route->isl.value() +
                         route->downlink.value() + route->gateway_haul.value() +
                         route->pop_to_destination.value();
  EXPECT_NEAR(route->one_way().value(), one_way, 1e-9);
  EXPECT_NEAR(route->propagation_rtt().value(), 2.0 * one_way, 1e-9);
}

TEST(BentPipe, DestinationLegUsesPopNotClient) {
  // Two destinations equidistant from the client but not from the PoP must
  // differ: the PoP is the egress point.
  const auto& net = shell1();
  const geo::GeoPoint maputo = data::location(data::city("Maputo"));
  const auto to_jnb = net.router().route(maputo, data::country("MZ"),
                                         data::location(data::city("Johannesburg")));
  const auto to_fra = net.router().route(maputo, data::country("MZ"),
                                         data::location(data::city("Frankfurt")));
  ASSERT_TRUE(to_jnb && to_fra);
  // Johannesburg is 450 km from Maputo but ~8,700 km from the Frankfurt PoP.
  EXPECT_GT(to_jnb->pop_to_destination.value(), to_fra->pop_to_destination.value());
}

TEST(Starlink, SetTimeRebuildsTopology) {
  StarlinkNetwork net;
  const auto before = net.route(data::location(data::city("London")),
                                data::country("GB"),
                                data::location(data::city("London")));
  net.set_time(Milliseconds::from_minutes(5.0));
  EXPECT_DOUBLE_EQ(net.time().value(), 300000.0);
  const auto after = net.route(data::location(data::city("London")),
                               data::country("GB"),
                               data::location(data::city("London")));
  ASSERT_TRUE(before && after);
  // Satellites moved ~1,500 km; the serving satellite almost surely changed.
  EXPECT_NE(before->serving_satellite, after->serving_satellite);
}

TEST(Starlink, SampledRttsCenterOnBaseline) {
  const auto& net = shell1();
  const auto route = net.router().route_to_pop(
      data::location(data::city("Tokyo")), data::country("JP"));
  ASSERT_TRUE(route.has_value());
  des::Rng rng(3);
  des::SampleSet s;
  for (int i = 0; i < 10000; ++i) s.add(net.sample_idle_rtt(*route, rng).value());
  EXPECT_NEAR(s.median(), net.baseline_rtt(*route).value(), 3.0);
}

TEST(Starlink, LoadedRttShowsBloat) {
  const auto& net = shell1();
  const auto route = net.router().route_to_pop(
      data::location(data::city("Sydney")), data::country("AU"));
  ASSERT_TRUE(route.has_value());
  des::Rng rng(4);
  des::SampleSet s;
  for (int i = 0; i < 3000; ++i) s.add(net.sample_loaded_rtt(*route, 0.95, rng).value());
  EXPECT_GT(s.median(), 200.0);
}

TEST(Starlink, TestShellWorksEndToEnd) {
  // A reduced shell still routes (coverage is sparse, so pick mid-latitude).
  StarlinkConfig cfg;
  cfg.shell = orbit::test_shell();
  StarlinkNetwork net(cfg);
  EXPECT_EQ(net.constellation().size(), 64u);
}

}  // namespace
}  // namespace spacecdn::lsn
