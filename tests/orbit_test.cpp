// Unit tests for the orbit module: Kepler propagation, Walker constellation
// structure, ephemeris queries.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geo/earth.hpp"
#include "orbit/ephemeris.hpp"
#include "orbit/kepler.hpp"
#include "orbit/walker.hpp"
#include "util/error.hpp"

namespace spacecdn::orbit {
namespace {

TEST(Kepler, PeriodMatchesKeplersThirdLaw) {
  // 550 km circular orbit: ~95.7 minutes ("satellites revisit roughly every
  // 90 minutes", paper section 4).
  const CircularOrbit orbit(Kilometers{550.0}, 53.0, 0.0, 0.0);
  EXPECT_NEAR(orbit.period().value() / 60000.0, 95.7, 0.5);
}

TEST(Kepler, SpeedIsAbout27000Kmh) {
  // Paper section 2: satellites move at speeds reaching ~27,000 km/h.
  const CircularOrbit orbit(Kilometers{550.0}, 53.0, 0.0, 0.0);
  EXPECT_NEAR(orbit.speed_km_per_sec() * 3600.0, 27000.0, 800.0);
}

TEST(Kepler, RadiusIsConstant) {
  const CircularOrbit orbit(Kilometers{550.0}, 53.0, 30.0, 60.0);
  for (double t_min : {0.0, 10.0, 47.0, 95.0}) {
    const geo::Ecef p = orbit.position_eci(Milliseconds::from_minutes(t_min));
    EXPECT_NEAR(geo::norm(p).value(), geo::kEarthRadiusKm + 550.0, 1e-6);
  }
}

TEST(Kepler, PeriodReturnsToStartInEci) {
  const CircularOrbit orbit(Kilometers{550.0}, 53.0, 10.0, 20.0);
  const geo::Ecef start = orbit.position_eci(Milliseconds{0.0});
  const geo::Ecef after = orbit.position_eci(orbit.period());
  EXPECT_NEAR(start.x, after.x, 1e-3);
  EXPECT_NEAR(start.y, after.y, 1e-3);
  EXPECT_NEAR(start.z, after.z, 1e-3);
}

TEST(Kepler, LatitudeBoundedByInclination) {
  const CircularOrbit orbit(Kilometers{550.0}, 53.0, 0.0, 0.0);
  for (double t_min = 0.0; t_min < 96.0; t_min += 1.0) {
    const geo::GeoPoint sub = orbit.subsatellite_point(Milliseconds::from_minutes(t_min));
    EXPECT_LE(std::fabs(sub.lat_deg), 53.0 + 1e-6) << "t = " << t_min;
  }
}

TEST(Kepler, EquatorialOrbitStaysOnEquator) {
  const CircularOrbit orbit(Kilometers{550.0}, 0.0, 0.0, 0.0);
  for (double t_min : {0.0, 20.0, 50.0}) {
    EXPECT_NEAR(orbit.subsatellite_point(Milliseconds::from_minutes(t_min)).lat_deg, 0.0,
                1e-9);
  }
}

TEST(Kepler, EcefAccountsForEarthRotation) {
  const CircularOrbit orbit(Kilometers{550.0}, 53.0, 0.0, 0.0);
  const Milliseconds t = Milliseconds::from_minutes(30.0);
  const geo::Ecef eci = orbit.position_eci(t);
  const geo::Ecef ecef = orbit.position_ecef(t);
  // Same radius, different longitude (Earth rotated ~7.5 degrees in 30 min).
  EXPECT_NEAR(geo::norm(eci).value(), geo::norm(ecef).value(), 1e-9);
  EXPECT_GT(std::hypot(eci.x - ecef.x, eci.y - ecef.y), 10.0);
  EXPECT_NEAR(eci.z, ecef.z, 1e-9);
}

TEST(Kepler, RejectsBadParameters) {
  EXPECT_THROW(CircularOrbit(Kilometers{0.0}, 53.0, 0.0, 0.0), ConfigError);
  EXPECT_THROW(CircularOrbit(Kilometers{550.0}, 181.0, 0.0, 0.0), ConfigError);
}

TEST(Walker, Shell1Dimensions) {
  const WalkerDesign shell = starlink_shell1();
  EXPECT_EQ(shell.planes, 72u);
  EXPECT_EQ(shell.sats_per_plane, 22u);
  EXPECT_EQ(shell.total_satellites(), 1584u);
  EXPECT_DOUBLE_EQ(shell.inclination_deg, 53.0);
  EXPECT_DOUBLE_EQ(shell.altitude.value(), 550.0);
}

TEST(Walker, IdIndexRoundTrip) {
  const WalkerConstellation c(test_shell());
  for (std::uint32_t id = 0; id < c.size(); ++id) {
    EXPECT_EQ(c.id_of(c.index_of(id)), id);
  }
  EXPECT_THROW((void)c.index_of(c.size()), ConfigError);
  EXPECT_THROW((void)c.id_of({99, 0}), ConfigError);
}

TEST(Walker, RaanEvenlySpaced) {
  const WalkerConstellation c(test_shell());
  const double step = 360.0 / test_shell().planes;
  for (std::uint32_t p = 0; p < test_shell().planes; ++p) {
    EXPECT_DOUBLE_EQ(c.orbit(c.id_of({p, 0})).raan_deg(), p * step);
  }
}

TEST(Walker, PhaseOffsetBetweenPlanes) {
  const WalkerDesign d = test_shell();
  const WalkerConstellation c(d);
  const double expected =
      d.phasing * 360.0 / static_cast<double>(d.total_satellites());
  const double p0 = c.orbit(c.id_of({0, 0})).initial_phase_deg();
  const double p1 = c.orbit(c.id_of({1, 0})).initial_phase_deg();
  EXPECT_NEAR(p1 - p0, expected, 1e-9);
}

TEST(Walker, RejectsInvalidDesigns) {
  WalkerDesign d = test_shell();
  d.planes = 0;
  EXPECT_THROW(WalkerConstellation{d}, ConfigError);
  d = test_shell();
  d.phasing = d.planes;  // phasing must be < planes
  EXPECT_THROW(WalkerConstellation{d}, ConfigError);
}

TEST(Walker, GridNeighborsCountAndSymmetryOfIntraPlane) {
  const WalkerConstellation c(test_shell());
  for (std::uint32_t id = 0; id < c.size(); ++id) {
    const auto neighbors = c.grid_neighbors(id);
    EXPECT_EQ(neighbors.size(), 4u);
    // No self-links, no out-of-range ids.
    for (std::uint32_t n : neighbors) {
      EXPECT_NE(n, id);
      EXPECT_LT(n, c.size());
    }
  }
}

TEST(Walker, GridNeighborsArePhysicallyClose) {
  // The motivating bug: naive same-slot seam links span ~10,000 km, beyond
  // optical line of sight.  Phase-nearest selection keeps every link short.
  const WalkerConstellation c(starlink_shell1());
  const EphemerisSnapshot snap(c, Milliseconds{0.0});
  const double horizon_limited =
      2.0 * std::sqrt(std::pow(geo::kEarthRadiusKm + 550.0, 2) -
                      std::pow(geo::kEarthRadiusKm, 2));
  for (std::uint32_t id = 0; id < c.size(); id += 7) {
    for (std::uint32_t n : c.grid_neighbors(id)) {
      EXPECT_LT(snap.isl_distance(id, n).value(), horizon_limited)
          << "link " << id << " -> " << n;
    }
  }
}

TEST(Ephemeris, PositionsMatchOrbits) {
  const WalkerConstellation c(test_shell());
  const Milliseconds t = Milliseconds::from_minutes(12.0);
  const EphemerisSnapshot snap(c, t);
  EXPECT_EQ(snap.size(), c.size());
  for (std::uint32_t id = 0; id < c.size(); id += 5) {
    const geo::Ecef expected = c.orbit(id).position_ecef(t);
    EXPECT_NEAR(snap.position(id).x, expected.x, 1e-9);
  }
}

TEST(Ephemeris, ServingSatelliteIsBestVisible) {
  const WalkerConstellation c(starlink_shell1());
  const EphemerisSnapshot snap(c, Milliseconds{0.0});
  const geo::GeoPoint berlin{52.52, 13.40, 0.0};
  const auto serving = snap.serving_satellite(berlin, 25.0);
  ASSERT_TRUE(serving.has_value());
  const double serving_elev = geo::elevation_angle_deg(berlin, snap.position(*serving));
  EXPECT_GE(serving_elev, 25.0);
  for (std::uint32_t id : snap.visible_satellites(berlin, 25.0)) {
    EXPECT_LE(geo::elevation_angle_deg(berlin, snap.position(id)), serving_elev + 1e-9);
  }
}

TEST(Ephemeris, NoServingSatelliteAtPole) {
  // 53 degree inclination leaves the poles uncovered.
  const WalkerConstellation c(starlink_shell1());
  const EphemerisSnapshot snap(c, Milliseconds{0.0});
  EXPECT_FALSE(snap.serving_satellite({89.5, 0.0, 0.0}, 25.0).has_value());
}

TEST(Ephemeris, Shell1CoversMidLatitudes) {
  const WalkerConstellation c(starlink_shell1());
  const EphemerisSnapshot snap(c, Milliseconds{0.0});
  for (double lat : {-50.0, -30.0, 0.0, 30.0, 50.0}) {
    for (double lon = -180.0; lon < 180.0; lon += 45.0) {
      EXPECT_TRUE(snap.serving_satellite({lat, lon, 0.0}, 25.0).has_value())
          << "uncovered at " << lat << "," << lon;
    }
  }
}

TEST(Ephemeris, IslDistanceSymmetric) {
  const WalkerConstellation c(test_shell());
  const EphemerisSnapshot snap(c, Milliseconds{0.0});
  EXPECT_DOUBLE_EQ(snap.isl_distance(0, 5).value(), snap.isl_distance(5, 0).value());
  EXPECT_THROW((void)snap.isl_distance(0, c.size()), ConfigError);
}

}  // namespace
}  // namespace spacecdn::orbit
