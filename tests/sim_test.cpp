// Scenario-engine tests: spec parsing, World memoization, and -- the
// refactor's acceptance gate -- Runner-path checksums bit-identical to the
// pre-refactor direct-construction path at --threads=1 and --threads=4.
#include <array>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "des/random.hpp"
#include "des/stats.hpp"
#include "faults/schedule.hpp"
#include "geo/propagation.hpp"
#include "lsn/starlink.hpp"
#include "measurement/aim.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"
#include "util/error.hpp"

namespace {

using namespace spacecdn;

// ---------------------------------------------------------------------------
// Layer 1: ScenarioSpec, scenario files, ScenarioValues
// ---------------------------------------------------------------------------

TEST(Shell1ClientsTest, MatchesManualCoverageFilter) {
  const auto clients = sim::shell1_clients();
  const auto cities = data::cities();
  std::size_t expected = 0;
  for (const auto& city : cities) {
    if (std::abs(city.lat_deg) <= sim::kShell1CoverageLatDeg) ++expected;
  }
  ASSERT_EQ(clients.size(), expected);
  ASSERT_LT(clients.size(), cities.size());  // the band excludes someone
  for (const auto& client : clients) {
    EXPECT_LE(std::abs(client.city->lat_deg), sim::kShell1CoverageLatDeg);
  }
}

TEST(Shell1ClientsTest, DatasetIndexIsStableUnderFiltering) {
  const auto cities = data::cities();
  std::size_t previous = 0;
  bool first = true;
  for (const auto& client : sim::shell1_clients()) {
    // dataset_index addresses the *unfiltered* table (RNG-stream stability).
    ASSERT_LT(client.dataset_index, cities.size());
    EXPECT_EQ(client.city, &cities[client.dataset_index]);
    if (!first) {
      EXPECT_GT(client.dataset_index, previous);  // dataset order
    }
    previous = client.dataset_index;
    first = false;
  }
}

TEST(Shell1ClientsTest, ClientPointsMirrorClients) {
  const auto clients = sim::shell1_clients();
  const auto points = sim::shell1_client_points();
  ASSERT_EQ(points.size(), clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const geo::GeoPoint expected = data::location(*clients[i].city);
    EXPECT_DOUBLE_EQ(points[i].lat_deg, expected.lat_deg);
    EXPECT_DOUBLE_EQ(points[i].lon_deg, expected.lon_deg);
  }
}

TEST(Shell1ClientsTest, NarrowBandIsStrictSubset) {
  const auto wide = sim::shell1_clients();
  const auto narrow = sim::shell1_clients(30.0);
  EXPECT_LT(narrow.size(), wide.size());
  for (const auto& client : narrow) {
    EXPECT_LE(std::abs(client.city->lat_deg), 30.0);
  }
}

std::string write_temp_scenario(const std::string& name, const std::string& body) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << body;
  return path;
}

TEST(ScenarioFileTest, ParsesPairsCommentsAndWhitespace) {
  const std::string path = write_temp_scenario("sim_test_ok.scenario",
                                               "# smoke scenario\n"
                                               "\n"
                                               "  tests-per-city = 1 \n"
                                               "threads=2\n"
                                               "constellation=test-shell  # inline\n");
  const auto values = sim::load_scenario_file(path);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values.at("tests-per-city"), "1");
  EXPECT_EQ(values.at("threads"), "2");
  EXPECT_EQ(values.at("constellation"), "test-shell");
}

TEST(ScenarioFileTest, MalformedLineThrows) {
  const std::string path =
      write_temp_scenario("sim_test_bad.scenario", "tests-per-city\n");
  EXPECT_THROW((void)sim::load_scenario_file(path), ConfigError);
}

TEST(ScenarioFileTest, MissingFileThrows) {
  EXPECT_THROW((void)sim::load_scenario_file(testing::TempDir() + "no_such.scenario"),
               ConfigError);
}

TEST(ScenarioValuesTest, CliOverridesFile) {
  const sim::ScenarioValues values({{"seed", "1"}, {"threads", "2"}},
                                   {{"seed", "9"}});
  EXPECT_EQ(values.get("seed", 0L), 9L);
  EXPECT_EQ(values.get("threads", 0L), 2L);
  EXPECT_EQ(values.get("absent", 42L), 42L);
}

TEST(ScenarioValuesTest, ApplySetsTypedFields) {
  sim::ScenarioSpec spec;
  const sim::ScenarioValues values({{"constellation", "test-shell"},
                                    {"tests-per-city", "3"},
                                    {"anycast-noise-ms", "1.5"},
                                    {"cache-policy", "lfu"},
                                    {"threads", "4"},
                                    {"profile", "true"}},
                                   {});
  values.apply(spec);
  EXPECT_EQ(spec.constellation, "test-shell");
  EXPECT_EQ(spec.tests_per_city, 3u);
  EXPECT_DOUBLE_EQ(spec.anycast_noise_ms, 1.5);
  EXPECT_EQ(spec.cache_policy, cdn::CachePolicy::kLfu);
  EXPECT_EQ(spec.threads, 4u);
  EXPECT_TRUE(spec.profile);
}

TEST(ScenarioValuesTest, SeedReseedsAimUnlessPinned) {
  {
    sim::ScenarioSpec spec;
    sim::ScenarioValues({{"seed", "123"}}, {}).apply(spec);
    EXPECT_EQ(spec.seed, 123u);
    EXPECT_EQ(spec.aim_seed, 123u);  // one flag re-seeds the whole scenario
  }
  {
    sim::ScenarioSpec spec;
    sim::ScenarioValues({{"seed", "123"}, {"aim-seed", "7"}}, {}).apply(spec);
    EXPECT_EQ(spec.seed, 123u);
    EXPECT_EQ(spec.aim_seed, 7u);  // --aim-seed pins the campaign
  }
  {
    sim::ScenarioSpec spec;
    sim::ScenarioValues({}, {}).apply(spec);
    EXPECT_EQ(spec.aim_seed, 20240318u);  // untouched without --seed
  }
}

TEST(ScenarioValuesTest, UnusedReportsTypos) {
  sim::ScenarioSpec spec;
  const sim::ScenarioValues values({{"tets-per-city", "1"}, {"threads", "2"}}, {});
  values.apply(spec);
  const auto unused = values.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused.front(), "tets-per-city");
}

TEST(ScenarioValuesTest, ApplySetsResilienceAndChaosFields) {
  sim::ScenarioSpec spec;
  const sim::ScenarioValues values({{"resilient-fetch", "true"},
                                    {"request-deadline-ms", "350"},
                                    {"attempt-timeout-ms", "90"},
                                    {"hedge-delay-ms", "-1"},
                                    {"backoff-jitter", "0.2"},
                                    {"breaker-threshold", "7"},
                                    {"breaker-cooldown-s", "2.5"},
                                    {"shed-to-ground", "yes"},
                                    {"chaos", "solar-storm"},
                                    {"chaos-fraction", "0.4"},
                                    {"chaos-plane", "12"}},
                                   {});
  values.apply(spec);
  EXPECT_TRUE(spec.resilient_fetch);
  EXPECT_DOUBLE_EQ(spec.request_deadline_ms, 350.0);
  EXPECT_DOUBLE_EQ(spec.attempt_timeout_ms, 90.0);
  EXPECT_DOUBLE_EQ(spec.hedge_delay_ms, -1.0);
  EXPECT_DOUBLE_EQ(spec.backoff_jitter, 0.2);
  EXPECT_EQ(spec.breaker_threshold, 7L);
  EXPECT_DOUBLE_EQ(spec.breaker_cooldown_s, 2.5);
  EXPECT_TRUE(spec.shed_to_ground);
  EXPECT_EQ(spec.chaos, "solar-storm");
  EXPECT_DOUBLE_EQ(spec.chaos_fraction, 0.4);
  EXPECT_EQ(spec.chaos_plane, 12L);
}

TEST(ScenarioValuesTest, ApplySetsObservabilityFields) {
  sim::ScenarioSpec spec;
  const sim::ScenarioValues values({{"series-out", "series.jsonl"},
                                    {"timeline-out", "timeline.jsonl"},
                                    {"series-interval-s", "0.25"},
                                    {"slo-objective", "0.995"},
                                    {"slo-window-short-s", "2"},
                                    {"slo-window-long-s", "15"},
                                    {"slo-burn-threshold", "4"}},
                                   {});
  values.apply(spec);
  EXPECT_EQ(spec.series_out, "series.jsonl");
  EXPECT_EQ(spec.timeline_out, "timeline.jsonl");
  EXPECT_DOUBLE_EQ(spec.series_interval_s, 0.25);
  EXPECT_DOUBLE_EQ(spec.slo_objective, 0.995);
  EXPECT_DOUBLE_EQ(spec.slo_window_short_s, 2.0);
  EXPECT_DOUBLE_EQ(spec.slo_window_long_s, 15.0);
  EXPECT_DOUBLE_EQ(spec.slo_burn_threshold, 4.0);

  // Defaults: both sinks off, paper-era SRE alerting parameters.
  const sim::ScenarioSpec defaults;
  EXPECT_TRUE(defaults.series_out.empty());
  EXPECT_TRUE(defaults.timeline_out.empty());
  EXPECT_DOUBLE_EQ(defaults.series_interval_s, 1.0);
  EXPECT_DOUBLE_EQ(defaults.slo_objective, 0.999);
  EXPECT_DOUBLE_EQ(defaults.slo_burn_threshold, 10.0);
}

TEST(ScenarioValuesTest, InvalidEnumValuesFailLoudlyAtApply) {
  // A typo'd enum must throw at parse time, not deep inside a sweep; the
  // unused-key typo warning (above) still covers misspelled *keys*.
  {
    sim::ScenarioSpec spec;
    const sim::ScenarioValues values({{"queue-discipline", "lifo"}}, {});
    EXPECT_THROW(values.apply(spec), ConfigError);
  }
  {
    sim::ScenarioSpec spec;
    const sim::ScenarioValues values({{"object-size-dist", "webb"}}, {});
    EXPECT_THROW(values.apply(spec), ConfigError);
  }
  {
    sim::ScenarioSpec spec;
    const sim::ScenarioValues values({{"chaos", "sharknado"}}, {});
    EXPECT_THROW(values.apply(spec), ConfigError);
  }
  {
    // The valid spellings all pass.
    sim::ScenarioSpec spec;
    const sim::ScenarioValues values({{"queue-discipline", "drr"},
                                      {"object-size-dist", "video"},
                                      {"chaos", "flash-crowd-failover"}},
                                     {});
    EXPECT_NO_THROW(values.apply(spec));
  }
}

TEST(ParseCachePolicyTest, IsCaseInsensitive) {
  EXPECT_EQ(sim::parse_cache_policy("lru"), cdn::CachePolicy::kLru);
  EXPECT_EQ(sim::parse_cache_policy("LRU"), cdn::CachePolicy::kLru);
  EXPECT_EQ(sim::parse_cache_policy("Lfu"), cdn::CachePolicy::kLfu);
  EXPECT_THROW((void)sim::parse_cache_policy("mru"), ConfigError);
}

// ---------------------------------------------------------------------------
// Layer 2: World
// ---------------------------------------------------------------------------

sim::ScenarioSpec test_shell_spec() {
  sim::ScenarioSpec spec;
  spec.constellation = "test-shell";  // 8x8, cheap enough for unit tests
  return spec;
}

TEST(WorldTest, MemoizesSubstrate) {
  sim::World world(test_shell_spec());
  lsn::StarlinkNetwork& network = world.network();
  EXPECT_EQ(&network, &world.network());
  EXPECT_EQ(&world.constellation(), &network.constellation());
  EXPECT_EQ(&world.fleet(), &world.fleet());
  EXPECT_EQ(&world.ground_cdn(), &world.ground_cdn());
  EXPECT_EQ(&world.clients(), &world.clients());
}

TEST(WorldTest, FleetMatchesSpecAndConstellation) {
  sim::World world(test_shell_spec());
  const space::FleetConfig config = world.fleet_config();
  EXPECT_DOUBLE_EQ(config.capacity_per_satellite.value(),
                   world.spec().fleet_capacity_mb);
  EXPECT_EQ(config.policy, world.spec().cache_policy);
  space::SatelliteFleet fresh = world.make_fleet();
  EXPECT_EQ(fresh.size(), world.constellation().size());
  EXPECT_EQ(fresh.config().policy, config.policy);
}

TEST(WorldTest, MakeNetworkIsUnshared) {
  sim::World world(test_shell_spec());
  const auto fresh =
      world.make_network(lsn::starlink_preset(world.spec().constellation));
  EXPECT_NE(fresh.get(), &world.network());
  EXPECT_EQ(fresh->constellation().size(), world.constellation().size());
}

TEST(WorldTest, AimConfigMirrorsSpec) {
  sim::ScenarioSpec spec = test_shell_spec();
  spec.tests_per_city = 5;
  spec.anycast_noise_ms = 2.25;
  spec.aim_seed = 99;
  sim::World world(spec);
  const measurement::AimConfig config = world.aim_config();
  EXPECT_EQ(config.tests_per_city, 5u);
  EXPECT_DOUBLE_EQ(config.anycast_noise_ms, 2.25);
  EXPECT_EQ(config.seed, 99u);
}

TEST(WorldTest, ChurnConfigMirrorsSpec) {
  sim::ScenarioSpec spec = test_shell_spec();
  spec.fault_horizon_hours = 12.0;
  spec.satellite_mtbf_hours = 6.0;
  spec.satellite_mttr_minutes = 20.0;
  spec.cache_mtbf_hours = 3.0;
  spec.cache_mttr_minutes = 15.0;
  const faults::ChurnConfig churn = sim::World(spec).churn_config();
  EXPECT_DOUBLE_EQ(churn.horizon.value(),
                   Milliseconds::from_minutes(12.0 * 60.0).value());
  EXPECT_TRUE(churn.satellite.enabled());
  EXPECT_DOUBLE_EQ(churn.satellite.mtbf.value(),
                   Milliseconds::from_minutes(6.0 * 60.0).value());
  EXPECT_DOUBLE_EQ(churn.satellite.mttr.value(),
                   Milliseconds::from_minutes(20.0).value());
  EXPECT_TRUE(churn.cache_node.enabled());
  EXPECT_FALSE(churn.ground_station.enabled());  // default spec disables it
  EXPECT_FALSE(churn.laser_terminal.enabled());
}

TEST(WorldTest, SharedWorldIsProcessWideDefaultScenario) {
  sim::World& shared = sim::shared_world();
  EXPECT_EQ(&shared, &sim::shared_world());
  EXPECT_EQ(shared.spec().constellation, "shell1");
  EXPECT_EQ(shared.spec().tests_per_city, 40u);
}

// ---------------------------------------------------------------------------
// Layer 3: Runner parity with the pre-refactor direct-call path
// ---------------------------------------------------------------------------

// One Shell-1 network constructed the pre-refactor way: a plain
// lsn::StarlinkNetwork with no sim:: layer in sight.  Shared across the
// parity tests so this binary pays the direct-construction cost once.
lsn::StarlinkNetwork& direct_network() {
  static lsn::StarlinkNetwork network;
  return network;
}

constexpr std::uint64_t kParitySeed = 7;            // fig7's historical literal
constexpr std::uint64_t kParityAimSeed = 20240318;  // fig2's campaign epoch
constexpr double kParityCoverageLatDeg = 56.0;      // pre-refactor literal
const std::array<std::uint32_t, 2> kParityBudgets{1, 3};

/// Scaled-down fig7 sampler (2 draws, 2 hop budgets) shared by the direct
/// and Runner paths; sample order matches fig7's merge order exactly.
std::vector<double> sample_parity(const lsn::StarlinkNetwork& network,
                                  const data::CityInfo& city, des::Rng rng) {
  std::vector<double> samples;
  const auto& snapshot = network.snapshot();
  const geo::GeoPoint location = data::location(city);
  const auto serving = snapshot.serving_satellite(location, 25.0);
  if (!serving) return samples;
  const Milliseconds uplink = geo::propagation_delay(
      snapshot.slant_range(location, *serving), geo::Medium::kVacuum);
  const auto service = [&rng] {
    return Milliseconds{rng.lognormal_median(2.0, 0.3)};
  };
  for (int k = 0; k < 2; ++k) {
    samples.push_back((uplink * 2.0 + service()).value());
  }
  const auto ring = network.isl().within_hops(*serving, kParityBudgets.back());
  const auto isl_latency = network.isl().latencies_from(*serving);
  for (const std::uint32_t budget : kParityBudgets) {
    double best = net::kUnreachable;
    for (const auto& hd : ring) {
      if (hd.hops == budget) best = std::min(best, isl_latency[hd.node].value());
    }
    if (best == net::kUnreachable) continue;
    for (int k = 0; k < 2; ++k) {
      samples.push_back(((uplink + Milliseconds{best}) * 2.0 + service()).value());
    }
  }
  return samples;
}

const std::array<Milliseconds, 2> parity_epochs() {
  return {Milliseconds{0.0}, Milliseconds::from_minutes(8.0)};
}

/// The pre-refactor fig7 path: direct network, hand-rolled coverage filter,
/// serial city loop, explicit des::mix_seed streams.
std::uint64_t fig7_direct_checksum() {
  lsn::StarlinkNetwork& network = direct_network();
  des::Fnv1aChecksum checksum;
  const auto cities = data::cities();
  std::uint64_t epoch_index = 0;
  for (const Milliseconds epoch : parity_epochs()) {
    network.set_time(epoch);
    for (std::size_t i = 0; i < cities.size(); ++i) {
      if (std::abs(cities[i].lat_deg) > kParityCoverageLatDeg) continue;
      const auto samples = sample_parity(
          network, cities[i],
          des::Rng(des::mix_seed(kParitySeed, epoch_index * cities.size() + i)));
      for (const double v : samples) checksum.add(v);
    }
    ++epoch_index;
  }
  network.set_time(Milliseconds{0.0});
  return checksum.digest();
}

/// The pre-refactor fig2 path: direct network + AimCampaign run serially.
std::uint64_t fig2_direct_checksum() {
  lsn::StarlinkNetwork& network = direct_network();
  network.set_time(Milliseconds{0.0});
  measurement::AimConfig config;
  config.tests_per_city = 1;
  config.seed = kParityAimSeed;
  measurement::AimCampaign campaign(network, config);
  des::Fnv1aChecksum checksum;
  for (const auto& r : campaign.run()) {
    checksum.add(r.idle_rtt.value());
    checksum.add(r.loaded_rtt.value());
  }
  return checksum.digest();
}

struct RunnerParityResult {
  std::uint64_t fig7 = 0;
  std::uint64_t fig2 = 0;
};

/// The refactored path: the same sweeps through Runner/World -- pool-sharded
/// clients, stream_rng, dataset_index streams, world-built AIM campaign.
RunnerParityResult runner_parity_checksums(const char* threads_flag) {
  const std::array<const char*, 2> argv{"sim_test", threads_flag};
  sim::RunnerOptions options;
  options.name = "sim_test_parity";
  options.default_seed = kParitySeed;
  options.defaults.tests_per_city = 1;
  sim::Runner runner(static_cast<int>(argv.size()), argv.data(), options);

  lsn::StarlinkNetwork& network = runner.world().network();
  const auto& clients = runner.world().clients();
  const std::size_t dataset_size = data::cities().size();
  std::uint64_t epoch_index = 0;
  for (const Milliseconds epoch : parity_epochs()) {
    network.set_time(epoch);
    std::vector<std::vector<double>> shards(clients.size());
    runner.pool().parallel_for(clients.size(), [&](std::size_t i) {
      shards[i] = sample_parity(
          network, *clients[i].city,
          runner.stream_rng(epoch_index * dataset_size + clients[i].dataset_index));
    });
    for (const auto& shard : shards) {
      for (const double v : shard) runner.checksum().add(v);
    }
    ++epoch_index;
  }
  RunnerParityResult result;
  result.fig7 = runner.checksum().digest();

  network.set_time(Milliseconds{0.0});
  des::Fnv1aChecksum aim_checksum;
  for (const auto& r : runner.world().aim().run(runner.pool())) {
    aim_checksum.add(r.idle_rtt.value());
    aim_checksum.add(r.loaded_rtt.value());
  }
  result.fig2 = aim_checksum.digest();
  return result;
}

TEST(RunnerParityTest, Fig7AndFig2ChecksumsMatchDirectPathAtOneAndFourThreads) {
  const std::uint64_t fig7_direct = fig7_direct_checksum();
  const std::uint64_t fig2_direct = fig2_direct_checksum();

  const RunnerParityResult serial = runner_parity_checksums("--threads=1");
  EXPECT_EQ(serial.fig7, fig7_direct);
  EXPECT_EQ(serial.fig2, fig2_direct);

  const RunnerParityResult sharded = runner_parity_checksums("--threads=4");
  EXPECT_EQ(sharded.fig7, fig7_direct);
  EXPECT_EQ(sharded.fig2, fig2_direct);
}

TEST(RunnerParityTest, ChurnSchedulesMatchDirectPathAtFourThreads) {
  // Pre-refactor path: hand-built churn config, literal seed, serial sweep.
  faults::ChurnConfig direct;
  direct.horizon = Milliseconds::from_minutes(24.0 * 60.0);
  direct.satellite = {Milliseconds::from_minutes(6.0 * 60.0),
                      Milliseconds::from_minutes(20.0)};
  direct.cache_node = {Milliseconds::from_minutes(12.0 * 60.0),
                       Milliseconds::from_minutes(30.0)};
  const faults::ComponentCounts counts{
      static_cast<std::uint32_t>(direct_network().constellation().size()), 0};
  constexpr std::uint64_t kChurnSeed = 400;  // ablation_churn's literal
  constexpr std::size_t kSweepPoints = 4;
  std::vector<std::vector<faults::FaultEvent>> direct_events(kSweepPoints);
  for (std::size_t i = 0; i < kSweepPoints; ++i) {
    des::Rng rng(des::mix_seed(kChurnSeed, i));
    direct_events[i] = faults::FaultSchedule::generate(direct, counts, rng).events();
  }
  ASSERT_FALSE(direct_events[0].empty());

  // Runner path: the same sweep from CLI churn flags, sharded across the pool.
  const std::array<const char*, 6> argv{
      "sim_test",           "--threads=4",
      "--satellite-mtbf-hours=6", "--satellite-mttr-minutes=20",
      "--cache-mtbf-hours=12",    "--cache-mttr-minutes=30"};
  sim::RunnerOptions options;
  options.name = "sim_test_churn";
  options.default_seed = kChurnSeed;
  sim::Runner runner(static_cast<int>(argv.size()), argv.data(), options);
  const faults::ChurnConfig churn = runner.world().churn_config();
  std::vector<std::vector<faults::FaultEvent>> sharded_events(kSweepPoints);
  runner.pool().parallel_for(kSweepPoints, [&](std::size_t i) {
    des::Rng rng = runner.stream_rng(i);
    sharded_events[i] = faults::FaultSchedule::generate(churn, counts, rng).events();
  });

  for (std::size_t i = 0; i < kSweepPoints; ++i) {
    EXPECT_EQ(sharded_events[i].size(), direct_events[i].size());
    EXPECT_TRUE(sharded_events[i] == direct_events[i]) << "sweep point " << i;
  }
}

}  // namespace
