// Property-based tests: parameterized sweeps over randomized inputs and
// configuration grids, checking invariants rather than point values.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "cdn/cache.hpp"
#include "cdn/popularity.hpp"
#include "des/random.hpp"
#include "geo/distance.hpp"
#include "geo/visibility.hpp"
#include "net/graph.hpp"
#include "orbit/walker.hpp"
#include "spacecdn/placement.hpp"

namespace spacecdn {
namespace {

// ---------------------------------------------------------------- geometry

class GreatCircleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreatCircleProperty, MetricAxioms) {
  des::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const geo::GeoPoint a{rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0), 0.0};
    const geo::GeoPoint b{rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0), 0.0};
    const geo::GeoPoint c{rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0), 0.0};
    const double ab = geo::great_circle_distance(a, b).value();
    const double ba = geo::great_circle_distance(b, a).value();
    const double ac = geo::great_circle_distance(a, c).value();
    const double cb = geo::great_circle_distance(c, b).value();
    EXPECT_NEAR(ab, ba, 1e-6);                      // symmetry
    EXPECT_GE(ab, 0.0);                             // non-negativity
    EXPECT_LE(ab, geo::kPi * geo::kEarthRadiusKm + 1e-6);  // bounded
    EXPECT_LE(ab, ac + cb + 1e-6);                  // triangle inequality
  }
}

TEST_P(GreatCircleProperty, DestinationRoundTrip) {
  des::Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    // Stay away from the poles where bearings degenerate.
    const geo::GeoPoint origin{rng.uniform(-70.0, 70.0), rng.uniform(-180.0, 180.0), 0.0};
    const double bearing = rng.uniform(0.0, 360.0);
    const Kilometers d{rng.uniform(1.0, 5000.0)};
    const geo::GeoPoint dest = geo::destination(origin, bearing, d);
    EXPECT_NEAR(geo::great_circle_distance(origin, dest).value(), d.value(),
                d.value() * 1e-6 + 1e-6);
  }
}

TEST_P(GreatCircleProperty, SphericalEcefRoundTrip) {
  des::Rng rng(GetParam() + 1);
  for (int i = 0; i < 200; ++i) {
    const geo::GeoPoint p{rng.uniform(-89.9, 89.9), rng.uniform(-179.9, 179.9),
                          rng.uniform(0.0, 2000.0)};
    const geo::GeoPoint q = geo::to_geodetic_spherical(geo::to_ecef_spherical(p));
    EXPECT_NEAR(q.lat_deg, p.lat_deg, 1e-9);
    EXPECT_NEAR(q.lon_deg, p.lon_deg, 1e-9);
    EXPECT_NEAR(q.alt_km, p.alt_km, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreatCircleProperty, ::testing::Values(1, 2, 3, 4, 5));

// ----------------------------------------------------------------- Dijkstra

class DijkstraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraProperty, MatchesBruteForceOnRandomGraphs) {
  des::Rng rng(GetParam());
  constexpr std::size_t n = 9;
  net::Graph g(n);
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 1e18));
  for (std::size_t i = 0; i < n; ++i) w[i][i] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.chance(0.45)) {
        const double weight = rng.uniform(1.0, 20.0);
        g.add_undirected_edge(static_cast<net::NodeId>(i), static_cast<net::NodeId>(j),
                              Milliseconds{weight});
        w[i][j] = w[j][i] = weight;
      }
    }
  }
  // Floyd-Warshall reference.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        w[i][j] = std::min(w[i][j], w[i][k] + w[k][j]);
      }
    }
  }
  for (net::NodeId src = 0; src < n; ++src) {
    const auto dist = net::shortest_distances(g, src);
    for (std::size_t j = 0; j < n; ++j) {
      if (w[src][j] >= 1e17) {
        EXPECT_TRUE(std::isinf(dist[j].value()));
      } else {
        EXPECT_NEAR(dist[j].value(), w[src][j], 1e-9);
      }
    }
  }
}

TEST_P(DijkstraProperty, PathTotalEqualsEdgeSum) {
  des::Rng rng(GetParam() + 100);
  net::Graph g(12);
  for (int e = 0; e < 30; ++e) {
    const auto a = static_cast<net::NodeId>(rng.uniform_int(0, 11));
    const auto b = static_cast<net::NodeId>(rng.uniform_int(0, 11));
    if (a != b) g.add_undirected_edge(a, b, Milliseconds{rng.uniform(0.5, 10.0)});
  }
  for (int q = 0; q < 20; ++q) {
    const auto s = static_cast<net::NodeId>(rng.uniform_int(0, 11));
    const auto t = static_cast<net::NodeId>(rng.uniform_int(0, 11));
    const auto path = net::shortest_path(g, s, t);
    if (!path) continue;
    double sum = 0.0;
    for (std::size_t i = 1; i < path->nodes.size(); ++i) {
      double best = 1e18;
      for (const auto& edge : g.neighbors(path->nodes[i - 1])) {
        if (edge.to == path->nodes[i]) best = std::min(best, edge.weight.value());
      }
      sum += best;
    }
    EXPECT_NEAR(path->total.value(), sum, 1e-9);
    EXPECT_EQ(path->nodes.front(), s);
    EXPECT_EQ(path->nodes.back(), t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraProperty, ::testing::Values(11, 22, 33, 44));

// ------------------------------------------------------------------- caches

class CacheProperty
    : public ::testing::TestWithParam<std::tuple<cdn::CachePolicy, std::uint64_t>> {};

TEST_P(CacheProperty, InvariantsUnderRandomWorkload) {
  const auto [policy, seed] = GetParam();
  des::Rng rng(seed);
  const auto cache = cdn::make_cache(policy, Megabytes{50.0});

  std::uint64_t inserted = 0;
  for (int op = 0; op < 5000; ++op) {
    const cdn::ContentId id = rng.uniform_int(0, 60);
    const Milliseconds now{static_cast<double>(op)};
    if (rng.chance(0.5)) {
      const cdn::ContentItem item{id, Megabytes{rng.uniform(0.5, 8.0)},
                                  data::Region::kEurope};
      if (cache->insert(item, now)) ++inserted;
    } else if (rng.chance(0.1)) {
      (void)cache->erase(id);
    } else {
      const bool hit = cache->access(id, now);
      EXPECT_EQ(hit, cache->contains(id));
    }
    // Invariant: never exceed capacity; used is non-negative.
    EXPECT_LE(cache->used().value(), 50.0 + 1e-9);
    EXPECT_GE(cache->used().value(), -1e-9);
  }
  const auto& stats = cache->stats();
  EXPECT_EQ(stats.hits + stats.misses > 0, true);
  EXPECT_LE(stats.evictions, stats.insertions);
  EXPECT_GT(inserted, 0u);
}

TEST_P(CacheProperty, AccessAfterInsertAlwaysHits) {
  const auto [policy, seed] = GetParam();
  des::Rng rng(seed + 7);
  const auto cache = cdn::make_cache(policy, Megabytes{100.0});
  for (int i = 0; i < 300; ++i) {
    const cdn::ContentId id = rng.uniform_int(0, 1000000);
    const cdn::ContentItem item{id, Megabytes{1.0}, data::Region::kAsia};
    ASSERT_TRUE(cache->insert(item, Milliseconds{0.0}));
    EXPECT_TRUE(cache->access(id, Milliseconds{0.0}));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CacheProperty,
    ::testing::Combine(::testing::Values(cdn::CachePolicy::kLru, cdn::CachePolicy::kLfu,
                                         cdn::CachePolicy::kFifo),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return std::string(cdn::to_string(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------------------ walker

struct WalkerCase {
  std::uint32_t planes;
  std::uint32_t sats;
  std::uint32_t phasing;
};

class WalkerProperty : public ::testing::TestWithParam<WalkerCase> {};

TEST_P(WalkerProperty, StructureInvariants) {
  const auto [planes, sats, phasing] = GetParam();
  const orbit::WalkerDesign design{planes, sats, 53.0, Kilometers{550.0}, phasing};
  const orbit::WalkerConstellation c(design);
  EXPECT_EQ(c.size(), planes * sats);

  // Every satellite's orbit has the inclination and altitude of the shell.
  for (std::uint32_t id = 0; id < c.size(); ++id) {
    EXPECT_DOUBLE_EQ(c.orbit(id).inclination_deg(), 53.0);
    EXPECT_DOUBLE_EQ(c.orbit(id).altitude().value(), 550.0);
  }

  // Neighbour lists are valid and self-free; intra-plane links symmetric.
  for (std::uint32_t id = 0; id < c.size(); ++id) {
    for (std::uint32_t n : c.grid_neighbors(id)) {
      EXPECT_LT(n, c.size());
      EXPECT_NE(n, id);
    }
  }
}

TEST_P(WalkerProperty, AllSatellitesAtOrbitRadius) {
  const auto [planes, sats, phasing] = GetParam();
  const orbit::WalkerDesign design{planes, sats, 53.0, Kilometers{550.0}, phasing};
  const orbit::WalkerConstellation c(design);
  const auto positions = c.positions_ecef(Milliseconds::from_minutes(17.0));
  for (const auto& p : positions) {
    EXPECT_NEAR(geo::norm(p).value(), geo::kEarthRadiusKm + 550.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Designs, WalkerProperty,
                         ::testing::Values(WalkerCase{4, 4, 0}, WalkerCase{8, 8, 3},
                                           WalkerCase{12, 6, 5}, WalkerCase{72, 22, 39}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.planes) + "s" +
                                  std::to_string(info.param.sats) + "f" +
                                  std::to_string(info.param.phasing);
                         });

// ----------------------------------------------------------------- placement

class PlacementProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PlacementProperty, HopBoundShrinksWithCopies) {
  const std::uint32_t copies = GetParam();
  const orbit::WalkerConstellation c(orbit::starlink_shell1());
  space::PlacementConfig cfg;
  cfg.copies_per_plane = copies;
  const space::ContentPlacement placement(c, cfg);
  des::Rng rng(copies);
  const auto stats = placement.analyze(1000, 200, rng);
  // Within a plane of 22 satellites and k evenly spaced copies, the
  // intra-plane distance alone is bounded by ceil(22 / (2k)); cross-plane
  // search can only shrink it.
  const std::uint32_t bound = (22u + 2 * copies - 1) / (2 * copies);
  EXPECT_LE(stats.max_hops, bound);
}

INSTANTIATE_TEST_SUITE_P(Copies, PlacementProperty, ::testing::Values(1, 2, 4, 8, 11));

// ---------------------------------------------------------------- popularity

class PopularityProperty : public ::testing::TestWithParam<double> {};

TEST_P(PopularityProperty, PermutationBijective) {
  const double share = GetParam();
  cdn::PopularityConfig cfg;
  cfg.global_share = share;
  const cdn::RegionalPopularity pop(500, cfg);
  for (const auto region : {data::Region::kEurope, data::Region::kAfrica,
                            data::Region::kLatinAmerica}) {
    std::vector<bool> seen(500, false);
    for (std::uint64_t rank = 1; rank <= 500; ++rank) {
      const auto id = pop.object_at_rank(region, rank);
      ASSERT_LT(id, 500u);
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
      EXPECT_EQ(pop.rank_of(region, id), rank);
    }
  }
}

TEST_P(PopularityProperty, OverlapGrowsWithGlobalShare) {
  const double share = GetParam();
  cdn::PopularityConfig low;
  low.global_share = 0.0;
  cdn::PopularityConfig cfg;
  cfg.global_share = share;
  const cdn::RegionalPopularity base(2000, low);
  const cdn::RegionalPopularity mixed(2000, cfg);
  const double o_base =
      base.top_k_overlap(data::Region::kEurope, data::Region::kAsia, 200);
  const double o_mixed =
      mixed.top_k_overlap(data::Region::kEurope, data::Region::kAsia, 200);
  EXPECT_GE(o_mixed + 1e-9, o_base);
}

INSTANTIATE_TEST_SUITE_P(Shares, PopularityProperty,
                         ::testing::Values(0.1, 0.3, 0.5, 0.9));

// --------------------------------------------------------------- elevation

class VisibilityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VisibilityProperty, CoverageMatchesElevationComputation) {
  // For random ground points and satellites: is_visible(e_min) agrees with
  // comparing the computed elevation against e_min.
  des::Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const geo::GeoPoint ground{rng.uniform(-80.0, 80.0), rng.uniform(-180.0, 180.0), 0.0};
    const geo::GeoPoint satpt{rng.uniform(-60.0, 60.0), rng.uniform(-180.0, 180.0),
                              550.0};
    const geo::Ecef sat = geo::to_ecef_spherical(satpt);
    const double elev = geo::elevation_angle_deg(ground, sat);
    for (double mask : {5.0, 25.0, 40.0}) {
      EXPECT_EQ(geo::is_visible(ground, sat, mask), elev >= mask);
    }
    // Slant range is at least the altitude and at most the horizon bound.
    const double range = geo::slant_range(ground, sat).value();
    EXPECT_GE(range, 550.0 - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VisibilityProperty, ::testing::Values(7, 8, 9));

}  // namespace
}  // namespace spacecdn
