// Tests for the observability subsystem (obs/): metrics registry +
// exporters, trace spans, flight recorder, telemetry hub, profiler -- plus
// integration through the instrumented SpaceCDN router.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "data/datasets.hpp"
#include "des/simulator.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeline.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/world.hpp"
#include "spacecdn/fleet.hpp"
#include "spacecdn/router.hpp"

namespace spacecdn::obs {
namespace {

std::size_t count_lines(const std::string& s) {
  return static_cast<std::size_t>(std::count(s.begin(), s.end(), '\n'));
}

// ------------------------------------------------------------------ metrics

TEST(Metrics, CounterCountsPerLabelSet) {
  MetricsRegistry reg;
  reg.counter("requests").inc();
  reg.counter("requests").inc(2);
  reg.counter("requests", {{"tier", "ground"}}).inc(5);
  EXPECT_EQ(reg.counter_value("requests"), 3u);
  EXPECT_EQ(reg.counter_value("requests", {{"tier", "ground"}}), 5u);
  EXPECT_EQ(reg.counter_value("requests", {{"tier", "space"}}), 0u);
  EXPECT_EQ(reg.counter_value("absent"), 0u);
}

TEST(Metrics, LabelSetOrderInsensitive) {
  const LabelSet a{{"b", "1"}, {"a", "2"}};
  const LabelSet b{{"a", "2"}, {"b", "1"}};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.prometheus(), "{a=\"2\",b=\"1\"}");
  MetricsRegistry reg;
  reg.counter("x", a).inc();
  reg.counter("x", b).inc();
  EXPECT_EQ(reg.counter_value("x", a), 2u);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricsRegistry reg;
  reg.gauge("depth").set(4.0);
  reg.gauge("depth").add(-1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 2.5);
}

TEST(Metrics, ShardedCounterTotalsAcrossSlots) {
  ShardedCounter c(4);
  for (std::size_t shard = 0; shard < 8; ++shard) c.add(shard);  // wraps mod 4
  EXPECT_EQ(c.total(), 8u);
  EXPECT_EQ(c.shard_value(0), 2u);

  ShardedCounter other(8);
  other.add(7, 10);
  c.merge(other);
  EXPECT_EQ(c.shards(), 8u);
  EXPECT_EQ(c.total(), 18u);
  EXPECT_EQ(c.shard_value(7), 10u);
}

TEST(Metrics, HistogramTracksMomentsAndBins) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("lat", {}, {0.0, 10.0, 10});
  for (const double x : {0.5, 1.5, 1.5, 9.5}) h.observe(x);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.0);
  EXPECT_EQ(h.bins().count(0), 1u);
  EXPECT_EQ(h.bins().count(1), 2u);
  EXPECT_EQ(h.bins().count(9), 1u);
  // Options only apply at family creation; later lookups reuse them.
  EXPECT_EQ(reg.histogram("lat", {}, {0.0, 1.0, 2}).bins().bins(), 10u);
}

TEST(Metrics, PrometheusExportFormat) {
  MetricsRegistry reg;
  reg.counter("spacecdn_fetch_total", {{"tier", "ground"}}).inc(7);
  reg.gauge("spacecdn_sats_down").set(3.0);
  HistogramMetric& h = reg.histogram("rtt_ms", {}, {0.0, 4.0, 2});
  h.observe(1.0);
  h.observe(1.0);
  h.observe(3.0);

  std::ostringstream os;
  reg.export_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE spacecdn_fetch_total counter"), std::string::npos);
  EXPECT_NE(text.find("spacecdn_fetch_total{tier=\"ground\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE spacecdn_sats_down gauge"), std::string::npos);
  EXPECT_NE(text.find("spacecdn_sats_down 3"), std::string::npos);
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("rtt_ms_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("rtt_ms_bucket{le=\"4\"} 3"), std::string::npos);
  EXPECT_NE(text.find("rtt_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("rtt_ms_sum 5"), std::string::npos);
  EXPECT_NE(text.find("rtt_ms_count 3"), std::string::npos);
}

TEST(Metrics, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("c", {{"k", "a\"b\\c\nd"}}).inc();
  std::ostringstream os;
  reg.export_prometheus(os);
  EXPECT_NE(os.str().find("c{k=\"a\\\"b\\\\c\\nd\"} 1"), std::string::npos);
}

TEST(Metrics, PrometheusHelpConformance) {
  // Exposition-format conformance: # HELP precedes # TYPE for every family
  // that has help text, histograms always carry HELP (fallback text when
  // none was registered), and HELP escapes backslash and newline only
  // (quotes are legal in help text, unlike in label values).
  MetricsRegistry reg;
  reg.counter("spacecdn_req_total").inc(3);
  reg.set_help("spacecdn_req_total", "Requests \"offered\" \\ per\nrun.");
  reg.counter("spacecdn_unhelped_total").inc();
  reg.histogram("spacecdn_rtt_ms", {}, {0.0, 4.0, 2}).observe(1.0);

  std::ostringstream os;
  reg.export_prometheus(os);
  const std::string text = os.str();

  const auto help = text.find(
      "# HELP spacecdn_req_total Requests \"offered\" \\\\ per\\nrun.\n");
  const auto type = text.find("# TYPE spacecdn_req_total counter");
  ASSERT_NE(help, std::string::npos);
  ASSERT_NE(type, std::string::npos);
  EXPECT_LT(help, type);

  // No registered help: counters stay HELP-less, histograms get a fallback.
  EXPECT_EQ(text.find("# HELP spacecdn_unhelped_total"), std::string::npos);
  const auto hist_help = text.find("# HELP spacecdn_rtt_ms ");
  const auto hist_type = text.find("# TYPE spacecdn_rtt_ms histogram");
  ASSERT_NE(hist_help, std::string::npos);
  ASSERT_NE(hist_type, std::string::npos);
  EXPECT_LT(hist_help, hist_type);
}

TEST(Metrics, HelpMergeKeepsFirstRegistration) {
  MetricsRegistry a;
  a.counter("m").inc();
  a.set_help("m", "first");
  MetricsRegistry b;
  b.counter("m").inc();
  b.set_help("m", "second");
  b.set_help("other", "only in b");
  a.merge(b);
  EXPECT_EQ(a.help("m"), "first");
  EXPECT_EQ(a.help("other"), "only in b");
  EXPECT_EQ(a.help("absent"), "");
}

TEST(Metrics, JsonExportParsesAsExpectedShape) {
  MetricsRegistry reg;
  reg.counter("hits", {{"tier", "space"}}).inc(2);
  reg.gauge("load").set(0.5);
  reg.histogram("ms", {}, {0.0, 10.0, 10}).observe(4.0);
  reg.sharded_counter("parallel", 2).add(0, 9);

  std::ostringstream os;
  reg.export_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_NE(json.find("\"counters\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"hits\",\"labels\":{\"tier\":\"space\"},\"value\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parallel\",\"labels\":{},\"value\":9,\"shards\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"gauges\":["), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":["), std::string::npos);
  EXPECT_NE(json.find("\"count\":1,\"sum\":4"), std::string::npos);
}

TEST(Metrics, MergeFoldsEveryKind) {
  MetricsRegistry a, b;
  a.counter("c").inc(1);
  b.counter("c").inc(2);
  b.counter("only_b", {{"l", "x"}}).inc(4);
  a.gauge("g").set(1.0);
  b.gauge("g").set(9.0);
  a.histogram("h", {}, {0.0, 10.0, 10}).observe(2.5);
  b.histogram("h", {}, {0.0, 10.0, 10}).observe(7.5);
  a.sharded_counter("s", 2).add(0, 3);
  b.sharded_counter("s", 2).add(1, 4);

  a.merge(b);
  EXPECT_EQ(a.counter_value("c"), 3u);
  EXPECT_EQ(a.counter_value("only_b", {{"l", "x"}}), 4u);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 9.0);
  EXPECT_EQ(a.histogram("h", {}, {0.0, 10.0, 10}).count(), 2u);
  EXPECT_EQ(a.sharded_counter("s", 2).total(), 7u);
}

// Everything from here to the end of the file exercises *installed* sinks,
// which SPACECDN_NO_TELEMETRY compiles away by design (the accessors become
// constexpr nullptr).  The pure-data types above stay testable either way.
#ifndef SPACECDN_NO_TELEMETRY

TEST(Metrics, ClearBumpsEpochAndHandlesRebind) {
  MetricsRegistry reg;
  const TelemetryScope scope({.metrics = &reg});
  CounterHandle handle("rebind_test");
  handle.inc();
  EXPECT_EQ(reg.counter_value("rebind_test"), 1u);
  const std::uint64_t before = reg.epoch();
  reg.clear();
  EXPECT_NE(reg.epoch(), before);
  handle.inc();  // must not touch the counter freed by clear()
  EXPECT_EQ(reg.counter_value("rebind_test"), 1u);
  EXPECT_EQ(reg.family_count(), 1u);
}

TEST(Metrics, HandlesFollowInstalledRegistry) {
  MetricsRegistry a, b;
  CounterHandle counter("follow");
  HistogramHandle histogram("follow_ms", {}, {0.0, 10.0, 10});
  {
    const TelemetryScope scope({.metrics = &a});
    counter.inc();
    histogram.observe(1.0);
  }
  counter.inc();  // nothing installed: dropped
  {
    const TelemetryScope scope({.metrics = &b});
    counter.inc(2);
    histogram.observe(2.0);
  }
  EXPECT_EQ(a.counter_value("follow"), 1u);
  EXPECT_EQ(b.counter_value("follow"), 2u);
  EXPECT_EQ(a.histogram("follow_ms", {}, {0.0, 10.0, 10}).count(), 1u);
  EXPECT_EQ(b.histogram("follow_ms", {}, {0.0, 10.0, 10}).count(), 1u);
}

#endif  // SPACECDN_NO_TELEMETRY

// ------------------------------------------------------------------- traces

Trace sample_trace() {
  TraceBuilder builder("fetch", Milliseconds{100.0});
  builder.attr(builder.root(), "item", "42");
  const std::uint32_t attempt = builder.open("attempt");
  builder.set_duration(attempt, Milliseconds{30.0});
  const std::uint32_t tier = builder.open("tier:ground", attempt);
  builder.set_start(tier, Milliseconds{5.0});
  builder.set_duration(tier, Milliseconds{25.0});
  builder.metric(tier, "hops", 3.0);
  const std::uint32_t backoff = builder.open("backoff");
  builder.set_start(backoff, Milliseconds{30.0});
  builder.set_duration(backoff, Milliseconds{10.0});
  builder.set_duration(builder.root(), Milliseconds{40.0});
  return builder.finish(false);
}

TEST(Trace, BuilderNestsSpans) {
  const Trace trace = sample_trace();
  ASSERT_EQ(trace.spans.size(), 4u);
  EXPECT_EQ(trace.spans[0].name, "fetch");
  EXPECT_EQ(trace.spans[1].parent, 0u);
  EXPECT_EQ(trace.spans[2].parent, 1u);
  EXPECT_EQ(trace.depth(0), 0u);
  EXPECT_EQ(trace.depth(1), 1u);
  EXPECT_EQ(trace.depth(2), 2u);
  EXPECT_DOUBLE_EQ(trace.total().value(), 40.0);
  // Direct children of the root (attempt + backoff) account for the total.
  EXPECT_DOUBLE_EQ(trace.children_total().value(), 40.0);
  EXPECT_FALSE(trace.failed);
}

TEST(Trace, JsonlLineCarriesSpansAndAttrs) {
  std::ostringstream os;
  write_jsonl(os, sample_trace());
  const std::string line = os.str();
  EXPECT_EQ(line.find("{\"trace_id\":"), 0u);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"fetch\""), std::string::npos);
  EXPECT_NE(line.find("\"at_ms\":100"), std::string::npos);
  EXPECT_NE(line.find("\"total_ms\":40"), std::string::npos);
  EXPECT_NE(line.find("\"spans\":["), std::string::npos);
  EXPECT_NE(line.find("\"item\":\"42\""), std::string::npos);
  EXPECT_NE(line.find("\"hops\":3"), std::string::npos);
  EXPECT_EQ(std::count(line.begin(), line.end(), '{'),
            std::count(line.begin(), line.end(), '}'));
}

TEST(Trace, TracerStreamsJsonlAndRetains) {
  std::ostringstream os;
  Tracer tracer;
  tracer.set_jsonl_sink(&os);
  tracer.set_retain(2);
  for (int i = 0; i < 3; ++i) tracer.record(sample_trace());
  EXPECT_EQ(tracer.recorded(), 3u);
  EXPECT_EQ(count_lines(os.str()), 3u);
  EXPECT_EQ(tracer.retained().size(), 2u);
  // Ids are assigned in record order; last() is the most recent.
  EXPECT_EQ(tracer.last().id, 3u);
}

TEST(Trace, WaterfallRendersEverySpan) {
  std::ostringstream os;
  render_waterfall(os, sample_trace(), 20);
  const std::string out = os.str();
  EXPECT_NE(out.find("fetch"), std::string::npos);
  EXPECT_NE(out.find("tier:ground"), std::string::npos);
  EXPECT_NE(out.find("backoff"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_GE(count_lines(out), 4u);
}

// ---------------------------------------------------------- flight recorder

TEST(FlightRecorder, RingKeepsMostRecent) {
  FlightRecorder recorder({.capacity = 3});
  for (int i = 1; i <= 5; ++i) {
    Trace t = sample_trace();
    t.id = static_cast<std::uint64_t>(i);
    recorder.push(std::move(t));
  }
  EXPECT_EQ(recorder.pushed(), 5u);
  EXPECT_EQ(recorder.size(), 3u);
  const auto kept = recorder.snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].id, 3u);  // oldest first
  EXPECT_EQ(kept[2].id, 5u);
}

TEST(FlightRecorder, TripDumpsRetainedTraces) {
  FlightRecorder recorder({.capacity = 4});
  std::ostringstream dump;
  recorder.set_dump_sink(&dump);
  recorder.push(sample_trace());
  recorder.push(sample_trace());
  recorder.trip("repair-audit-unrepairable", Milliseconds{1234.0});
  EXPECT_EQ(recorder.trips(), 1u);
  EXPECT_EQ(recorder.last_trip_reason(), "repair-audit-unrepairable");
  const std::string out = dump.str();
  EXPECT_EQ(out.find("# flight-recorder trip: repair-audit-unrepairable"), 0u);
  // Header line plus one JSONL line per retained trace.
  EXPECT_EQ(count_lines(out), 3u);
}

TEST(FlightRecorder, TracerFeedsRecorder) {
  FlightRecorder recorder({.capacity = 2});
  Tracer tracer;
  tracer.set_recorder(&recorder);
  tracer.record(sample_trace());
  EXPECT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.snapshot()[0].id, 1u);
}

TEST(FlightRecorder, EntriesStampSeqAndSimTime) {
  FlightRecorder recorder({.capacity = 4});
  for (int i = 0; i < 3; ++i) {
    Trace t = sample_trace();
    t.at = Milliseconds{100.0 * (i + 1)};
    recorder.push(std::move(t));
  }
  const auto entries = recorder.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].seq, 0u);
  EXPECT_EQ(entries[2].seq, 2u);
  EXPECT_DOUBLE_EQ(entries[0].at.value(), 100.0);
  EXPECT_DOUBLE_EQ(entries[2].at.value(), 300.0);
}

TEST(FlightRecorder, WrapAroundKeepsOldestFirstAndDumpOrdering) {
  FlightRecorder recorder({.capacity = 4});
  for (int i = 0; i < 10; ++i) {
    Trace t = sample_trace();
    t.id = static_cast<std::uint64_t>(i);
    t.at = Milliseconds{10.0 * i};
    recorder.push(std::move(t));
  }
  // Ring wrapped twice; the four retained entries are pushes 6..9, oldest
  // first even though the ring's head is mid-array.
  const auto entries = recorder.entries();
  ASSERT_EQ(entries.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(entries[i].seq, 6u + i);
    EXPECT_EQ(entries[i].trace.id, 6u + i);
    EXPECT_DOUBLE_EQ(entries[i].at.value(), 10.0 * (6.0 + static_cast<double>(i)));
  }

  // A trip after the wrap dumps the same order and names the seq range.
  std::ostringstream dump;
  recorder.set_dump_sink(&dump);
  recorder.trip("wrap-audit", Milliseconds{999.0});
  const std::string out = dump.str();
  EXPECT_NE(out.find("seq 6..9"), std::string::npos);
  EXPECT_EQ(count_lines(out), 5u);  // header + 4 retained traces
  // JSONL body lines appear oldest first: trace id 6 before id 9.
  EXPECT_LT(out.find("{\"trace_id\":6,"), out.find("{\"trace_id\":9,"));
}

// ------------------------------------------------------- time-series recorder

TEST(TimeSeries, GaugeAndCounterColumns) {
  TimeSeriesRecorder rec({.interval = Milliseconds{1'000.0}});
  double depth = 0.0;
  double cumulative = 0.0;
  rec.add_gauge("depth", [&] { return depth; });
  rec.add_counter("completed", [&] { return cumulative; });

  depth = 3.0;
  cumulative = 10.0;
  rec.tick(Milliseconds{1'000.0});
  depth = 1.0;
  cumulative = 25.0;
  rec.tick(Milliseconds{2'000.0});

  const TimeSeries& s = rec.series();
  ASSERT_EQ(s.columns.size(), 2u);
  ASSERT_EQ(s.windows.size(), 2u);
  EXPECT_DOUBLE_EQ(s.windows[0].values[0], 3.0);   // gauge: sampled as-is
  EXPECT_DOUBLE_EQ(s.windows[0].values[1], 10.0);  // counter: first delta
  EXPECT_DOUBLE_EQ(s.windows[1].values[0], 1.0);
  EXPECT_DOUBLE_EQ(s.windows[1].values[1], 15.0);  // 25 - 10
  EXPECT_DOUBLE_EQ(s.windows[1].start.value(), 1'000.0);
  EXPECT_DOUBLE_EQ(s.windows[1].end.value(), 2'000.0);
}

TEST(TimeSeries, TracksRegistryCounterByDelta) {
  MetricsRegistry reg;
  TimeSeriesRecorder rec;
  rec.track_counter(reg, "spacecdn_req_total", {{"tier", "ground"}}, "reqs");
  reg.counter("spacecdn_req_total", {{"tier", "ground"}}).inc(4);
  rec.tick(Milliseconds{1'000.0});
  reg.counter("spacecdn_req_total", {{"tier", "ground"}}).inc(6);
  rec.tick(Milliseconds{2'000.0});
  ASSERT_EQ(rec.series().columns.size(), 1u);
  EXPECT_EQ(rec.series().columns[0], "reqs");
  EXPECT_DOUBLE_EQ(rec.series().windows[0].values[0], 4.0);
  EXPECT_DOUBLE_EQ(rec.series().windows[1].values[0], 6.0);
}

TEST(TimeSeries, InstallAlignsToGridWithPartialLastWindow) {
  // Horizon off the grid: interval 3 s over a 10.5 s run closes [0,3],
  // [3,6], [6,9], and a final partial [9,10.5] exactly at the horizon.
  des::Simulator sim;
  TimeSeriesRecorder rec({.interval = Milliseconds{3'000.0}});
  rec.add_gauge("t", [&] { return sim.now().value(); });
  rec.install(sim, Milliseconds{10'500.0});
  sim.run();

  const auto& w = rec.series().windows;
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0].start.value(), 0.0);
  EXPECT_DOUBLE_EQ(w[0].end.value(), 3'000.0);
  EXPECT_DOUBLE_EQ(w[2].end.value(), 9'000.0);
  EXPECT_DOUBLE_EQ(w[3].start.value(), 9'000.0);
  EXPECT_DOUBLE_EQ(w[3].end.value(), 10'500.0);
  EXPECT_EQ(w[3].index, 3u);
}

TEST(TimeSeries, MidRunInstallProducesPartialFirstWindow) {
  // Installed at t=4.5 s on a 3 s grid: the first close is the next grid
  // boundary (6 s), so the first window is the partial [4.5, 6].
  des::Simulator sim;
  TimeSeriesRecorder rec({.interval = Milliseconds{3'000.0}});
  rec.add_gauge("one", [] { return 1.0; });
  sim.schedule(Milliseconds{4'500.0},
               [&] { rec.install(sim, Milliseconds{9'000.0}); });
  sim.run();

  const auto& w = rec.series().windows;
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0].start.value(), 4'500.0);
  EXPECT_DOUBLE_EQ(w[0].end.value(), 6'000.0);
  EXPECT_DOUBLE_EQ(w[1].start.value(), 6'000.0);
  EXPECT_DOUBLE_EQ(w[1].end.value(), 9'000.0);
}

TEST(TimeSeries, WindowCloseHookResetsAccumulators) {
  TimeSeriesRecorder rec;
  double in_window = 7.0;
  rec.add_gauge("x", [&] { return in_window; });
  rec.on_window_close([&] { in_window = 0.0; });
  rec.tick(Milliseconds{1'000.0});
  rec.tick(Milliseconds{2'000.0});
  // Probes sample before the close hook runs: window 0 sees the value,
  // window 1 sees the reset.
  EXPECT_DOUBLE_EQ(rec.series().windows[0].values[0], 7.0);
  EXPECT_DOUBLE_EQ(rec.series().windows[1].values[0], 0.0);
}

TEST(TimeSeries, ChecksumIsDeterministicAndShapeSensitive) {
  const auto record = [](double scale) {
    TimeSeriesRecorder rec;
    double v = 0.0;
    rec.add_gauge("v", [&] { return v; });
    v = 1.0 * scale;
    rec.tick(Milliseconds{1'000.0});
    v = 2.0 * scale;
    rec.tick(Milliseconds{2'000.0});
    return rec.checksum();
  };
  EXPECT_EQ(record(1.0), record(1.0));
  EXPECT_NE(record(1.0), record(2.0));
}

TEST(TimeSeries, CsvAndJsonlExportShape) {
  TimeSeriesRecorder rec;
  rec.add_gauge("depth", [] { return 2.5; });
  rec.tick(Milliseconds{1'000.0});

  std::ostringstream csv;
  rec.series().write_csv(csv, "on");
  EXPECT_EQ(csv.str(),
            "run,window,start_ms,end_ms,depth\non,0,0,1000,2.5\n");

  std::ostringstream bare;
  rec.series().write_csv(bare, /*run=*/{}, /*header=*/false);
  EXPECT_EQ(bare.str(), "0,0,1000,2.5\n");

  std::ostringstream jsonl;
  rec.series().write_jsonl(jsonl, "on");
  EXPECT_EQ(jsonl.str(),
            "{\"run\":\"on\",\"window\":0,\"start_ms\":0,\"end_ms\":1000,"
            "\"depth\":2.5}\n");
}

// --------------------------------------------------------- incident timeline

TEST(Timeline, ExportsInSimTimeOrderWithStableTies) {
  IncidentTimeline tl;
  tl.record(Milliseconds{200.0}, "fault.recover", "gateway:1");
  tl.record(Milliseconds{100.0}, "fault.fail", "gateway:1");
  tl.record(Milliseconds{100.0}, "breaker.open", "gateway:1");

  std::ostringstream os;
  tl.write_jsonl(os);
  const std::string out = os.str();
  const auto fail = out.find("fault.fail");
  const auto open = out.find("breaker.open");
  const auto recover = out.find("fault.recover");
  // Sorted by sim-time; the two t=100 events keep insertion order.
  EXPECT_LT(fail, open);
  EXPECT_LT(open, recover);
}

TEST(Timeline, JsonlShapeOmitsEmptyDetailAndZeroValue) {
  IncidentTimeline tl;
  tl.record(Milliseconds{5'000.0}, "slo.alert-fire", "slo:deadline",
            "burn \"hot\"", 23.5);
  tl.record(Milliseconds{6'000.0}, "breaker.closed", "gateway:2");

  std::ostringstream os;
  tl.write_jsonl(os, "off");
  const std::string out = os.str();
  EXPECT_NE(out.find("{\"run\":\"off\",\"at_ms\":5000,\"kind\":\"slo.alert-fire\","
                     "\"subject\":\"slo:deadline\",\"detail\":\"burn \\\"hot\\\"\","
                     "\"value\":23.5}"),
            std::string::npos);
  EXPECT_NE(out.find("{\"run\":\"off\",\"at_ms\":6000,\"kind\":\"breaker.closed\","
                     "\"subject\":\"gateway:2\"}"),
            std::string::npos);
}

TEST(Timeline, CountsByDottedPrefix) {
  IncidentTimeline tl;
  tl.record(Milliseconds{1.0}, "breaker.open", "gateway:0");
  tl.record(Milliseconds{2.0}, "breaker.half-open", "gateway:0");
  tl.record(Milliseconds{3.0}, "breaker.closed", "gateway:0");
  tl.record(Milliseconds{4.0}, "fault.fail", "satellite:7");
  EXPECT_EQ(tl.count("breaker."), 3u);
  EXPECT_EQ(tl.count("breaker.open"), 1u);
  EXPECT_EQ(tl.count("fault."), 1u);
  EXPECT_EQ(tl.count("slo."), 0u);
  EXPECT_EQ(tl.size(), 4u);
}

TEST(Timeline, ChecksumIgnoresRunLabelButNotContent) {
  IncidentTimeline a;
  a.record(Milliseconds{1.0}, "fault.fail", "gateway:3");
  IncidentTimeline b;
  b.record(Milliseconds{1.0}, "fault.fail", "gateway:3");
  EXPECT_EQ(a.checksum(), b.checksum());
  b.record(Milliseconds{2.0}, "fault.recover", "gateway:3");
  EXPECT_NE(a.checksum(), b.checksum());
}

// ----------------------------------------------------------------- SLO engine

TEST(Slo, BurnRateMeasuresBudgetConsumption) {
  // objective 0.9 -> 10% error budget; a window that is 50% bad burns at
  // 5x the sustainable rate.
  SloTracker slo({.objective = 0.9,
                  .short_window = Milliseconds{2'000.0},
                  .long_window = Milliseconds{4'000.0},
                  .burn_threshold = 3.0,
                  .bucket = Milliseconds{1'000.0}});
  for (int i = 0; i < 5; ++i) slo.record(Milliseconds{500.0}, true);
  for (int i = 0; i < 5; ++i) slo.record(Milliseconds{500.0}, false);
  EXPECT_DOUBLE_EQ(slo.burn_rate(Milliseconds{1'000.0}, Milliseconds{1'000.0}),
                   5.0);
  EXPECT_DOUBLE_EQ(slo.burn_rate(Milliseconds{1'000.0}, Milliseconds{4'000.0}),
                   5.0);  // trailing window clamps to recorded history
  EXPECT_DOUBLE_EQ(slo.budget_consumed(), 5.0);
}

TEST(Slo, FiresWhenBothWindowsBurnAndResolvesAfter) {
  SloTracker slo({.objective = 0.9,
                  .short_window = Milliseconds{1'000.0},
                  .long_window = Milliseconds{3'000.0},
                  .burn_threshold = 3.0,
                  .bucket = Milliseconds{1'000.0}});
  std::vector<SloAlert> seen;
  slo.set_alert_hook([&](const SloAlert& a) { seen.push_back(a); });

  // Bucket 0: healthy.  Buckets 1-2: 50% bad (burn 5x > 3x threshold).
  for (int i = 0; i < 10; ++i) slo.record(Milliseconds{100.0}, true);
  slo.evaluate(Milliseconds{1'000.0});
  EXPECT_FALSE(slo.firing());

  for (int i = 0; i < 5; ++i) slo.record(Milliseconds{1'100.0}, true);
  for (int i = 0; i < 5; ++i) slo.record(Milliseconds{1'100.0}, false);
  // Short window (bucket 1) burns 5x, but the long window still includes
  // the healthy bucket 0: 5/20 bad = 2.5x < 3x -- no page yet.
  slo.evaluate(Milliseconds{2'000.0});
  EXPECT_FALSE(slo.firing());

  for (int i = 0; i < 5; ++i) slo.record(Milliseconds{2'100.0}, true);
  for (int i = 0; i < 5; ++i) slo.record(Milliseconds{2'100.0}, false);
  // Long window now 10/30 bad = 3.33x >= 3x and short 5x >= 3x: fire.
  slo.evaluate(Milliseconds{3'000.0});
  EXPECT_TRUE(slo.firing());
  EXPECT_EQ(slo.alerts_fired(), 1u);

  // Two healthy buckets: the short window (bucket 3) drops to 0 -- resolve.
  for (int i = 0; i < 10; ++i) slo.record(Milliseconds{3'100.0}, true);
  slo.evaluate(Milliseconds{4'000.0});
  EXPECT_FALSE(slo.firing());

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen[0].firing);
  EXPECT_DOUBLE_EQ(seen[0].at.value(), 3'000.0);
  EXPECT_GE(seen[0].short_burn, 3.0);
  EXPECT_GE(seen[0].long_burn, 3.0);
  EXPECT_FALSE(seen[1].firing);
  EXPECT_DOUBLE_EQ(seen[1].at.value(), 4'000.0);
  // The transition log mirrors the hook calls.
  ASSERT_EQ(slo.alerts().size(), 2u);
  EXPECT_TRUE(slo.alerts()[0].firing);
}

TEST(Slo, InstallEvaluatesOnBucketBoundaries) {
  des::Simulator sim;
  SloTracker slo({.objective = 0.9,
                  .short_window = Milliseconds{1'000.0},
                  .long_window = Milliseconds{1'000.0},
                  .burn_threshold = 2.0,
                  .bucket = Milliseconds{1'000.0}});
  slo.install(sim, Milliseconds{3'000.0});
  // All-bad traffic in bucket 1 fires at the 2 s boundary evaluation.
  sim.schedule(Milliseconds{1'500.0}, [&] {
    for (int i = 0; i < 4; ++i) slo.record(sim.now(), false);
  });
  sim.run();
  EXPECT_EQ(slo.alerts_fired(), 1u);
  ASSERT_FALSE(slo.alerts().empty());
  EXPECT_DOUBLE_EQ(slo.alerts()[0].at.value(), 2'000.0);
}

// ------------------------------------------------------------ telemetry hub

#ifndef SPACECDN_NO_TELEMETRY

TEST(Telemetry, ScopeInstallsAndRestores) {
  EXPECT_EQ(metrics(), nullptr);
  MetricsRegistry reg;
  Tracer tracer;
  {
    const TelemetryScope scope({.metrics = &reg, .tracer = &tracer});
    EXPECT_EQ(metrics(), &reg);
    EXPECT_EQ(obs::tracer(), &tracer);
    EXPECT_EQ(recorder(), nullptr);
  }
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_EQ(obs::tracer(), nullptr);
}

TEST(Telemetry, SessionWiresEverything) {
  TelemetrySession session;
  EXPECT_EQ(metrics(), &session.metrics());
  EXPECT_EQ(tracer(), &session.tracer());
  EXPECT_EQ(recorder(), &session.recorder());
  EXPECT_EQ(profiler(), &session.profiler());
  // The session's tracer feeds its flight recorder.
  session.tracer().record(sample_trace());
  EXPECT_EQ(session.recorder().size(), 1u);
}

TEST(Telemetry, ProfileMacroRecordsSections) {
  Profiler profiler;
  {
    const TelemetryScope scope({.profiler = &profiler});
    for (int i = 0; i < 3; ++i) {
      SPACECDN_PROFILE("obs-test-section");
    }
  }
  {
    SPACECDN_PROFILE("not-installed");  // no profiler: must not record
  }
  EXPECT_EQ(profiler.calls("obs-test-section"), 3u);
  EXPECT_EQ(profiler.calls("not-installed"), 0u);
  std::ostringstream os;
  profiler.report(os);
  EXPECT_NE(os.str().find("obs-test-section"), std::string::npos);
}

// ----------------------------------------------- instrumented router (e2e)

const lsn::StarlinkNetwork& shell1() { return sim::shared_world().network(); }

cdn::ContentItem item(cdn::ContentId id) {
  return cdn::ContentItem{id, Megabytes{10.0}, data::Region::kEurope};
}

TEST(RouterTelemetry, FetchCountsTierAndEmitsTrace) {
  const auto& net = shell1();
  space::SatelliteFleet fleet(net.constellation().size(),
                              space::FleetConfig{Megabytes{1000.0}});
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  space::SpaceCdnRouter router(net, fleet, ground);

  TelemetrySession session;
  session.tracer().set_retain(1);

  const geo::GeoPoint client = data::location(data::city("Maputo"));
  const auto serving = net.snapshot().serving_satellite(client, 25.0);
  ASSERT_TRUE(serving.has_value());
  (void)fleet.cache(*serving).insert(item(1), Milliseconds{0.0});

  des::Rng rng(3);
  const auto result =
      router.fetch(client, data::country("MZ"), item(1), rng, Milliseconds{0.0});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->tier, space::FetchTier::kServingSatellite);
  EXPECT_EQ(session.metrics().counter_value("spacecdn_fetch_served_total",
                                            {{"tier", "serving-satellite"}}),
            1u);

  const Trace& trace = session.tracer().last();
  EXPECT_EQ(trace.name, "fetch");
  EXPECT_FALSE(trace.failed);
  EXPECT_DOUBLE_EQ(trace.total().value(), result->rtt.value());
  const auto tier_span =
      std::find_if(trace.spans.begin(), trace.spans.end(), [](const TraceSpan& s) {
        return s.name == "tier:serving-satellite";
      });
  ASSERT_NE(tier_span, trace.spans.end());
  EXPECT_DOUBLE_EQ(tier_span->duration.value(), result->rtt.value());
}

TEST(RouterTelemetry, ResilientTraceChildrenSumToTotal) {
  const auto& net = shell1();
  space::SatelliteFleet fleet(net.constellation().size(),
                              space::FleetConfig{Megabytes{1000.0}});
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  space::SpaceCdnRouter router(net, fleet, ground);

  TelemetrySession session;
  session.tracer().set_retain(1);

  des::Rng rng(4);
  const geo::GeoPoint client = data::location(data::city("Tokyo"));
  const auto result = router.fetch_resilient(client, data::country("JP"), item(2), rng,
                                             Milliseconds{0.0});
  ASSERT_TRUE(result.success);

  const Trace& trace = session.tracer().last();
  EXPECT_EQ(trace.name, "fetch_resilient");
  // The accounting invariant behind `ablation_churn --trace-out`: attempt
  // and backoff spans (the root's direct children) sum to total_latency.
  EXPECT_NEAR(trace.children_total().value(), result.total_latency.value(), 1e-9);
  EXPECT_NEAR(trace.total().value(), result.total_latency.value(), 1e-9);
}

TEST(RouterTelemetry, ExhaustedFetchTripsFlightRecorder) {
  const auto& net = shell1();
  space::SatelliteFleet fleet(net.constellation().size(),
                              space::FleetConfig{Megabytes{1000.0}});
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  space::SpaceCdnRouter router(net, fleet, ground);

  TelemetrySession session;
  std::ostringstream dump;
  session.recorder().set_dump_sink(&dump);

  des::Rng rng(5);
  // A polar client has no shell-1 coverage: every attempt fails.
  const auto result = router.fetch_resilient({89.0, 0.0, 0.0}, data::country("US"),
                                             item(3), rng, Milliseconds{0.0});
  EXPECT_FALSE(result.success);
  EXPECT_EQ(session.recorder().trips(), 1u);
  EXPECT_EQ(session.recorder().last_trip_reason(), "fetch_resilient-exhausted");
  // The dump holds the failed fetch's own trace (recorded before the trip).
  EXPECT_EQ(dump.str().find("# flight-recorder trip: fetch_resilient-exhausted"), 0u);
  EXPECT_NE(dump.str().find("\"failed\":true"), std::string::npos);
  EXPECT_EQ(session.metrics().counter_value("spacecdn_resilient_failure_total"), 1u);
}

TEST(RouterTelemetry, CacheEventsCarryTierLabel) {
  const auto& net = shell1();
  space::SatelliteFleet fleet(net.constellation().size(),
                              space::FleetConfig{Megabytes{1000.0}});
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  space::SpaceCdnRouter router(net, fleet, ground);

  TelemetrySession session;
  const geo::GeoPoint client = data::location(data::city("Maputo"));
  des::Rng rng(6);
  // Cold fetch goes to ground; the object is admitted into the serving
  // satellite, so the satellite tier records a miss and an insert.
  const auto first =
      router.fetch(client, data::country("MZ"), item(4), rng, Milliseconds{0.0});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tier, space::FetchTier::kGround);
  EXPECT_GE(session.metrics().counter_value("spacecdn_cache_miss_total",
                                            {{"tier", "satellite"}}),
            1u);
  EXPECT_GE(session.metrics().counter_value("spacecdn_cache_insert_total",
                                            {{"tier", "satellite"}}),
            1u);
  EXPECT_GE(session.metrics().counter_value("spacecdn_cache_miss_total",
                                            {{"tier", "ground"}}),
            1u);

  const auto second =
      router.fetch(client, data::country("MZ"), item(4), rng, Milliseconds{0.0});
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tier, space::FetchTier::kServingSatellite);
  EXPECT_GE(session.metrics().counter_value("spacecdn_cache_hit_total",
                                            {{"tier", "satellite"}}),
            1u);
}

#endif  // SPACECDN_NO_TELEMETRY

}  // namespace
}  // namespace spacecdn::obs
