// Tests for the observability subsystem (obs/): metrics registry +
// exporters, trace spans, flight recorder, telemetry hub, profiler -- plus
// integration through the instrumented SpaceCDN router.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "data/datasets.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/world.hpp"
#include "spacecdn/fleet.hpp"
#include "spacecdn/router.hpp"

namespace spacecdn::obs {
namespace {

std::size_t count_lines(const std::string& s) {
  return static_cast<std::size_t>(std::count(s.begin(), s.end(), '\n'));
}

// ------------------------------------------------------------------ metrics

TEST(Metrics, CounterCountsPerLabelSet) {
  MetricsRegistry reg;
  reg.counter("requests").inc();
  reg.counter("requests").inc(2);
  reg.counter("requests", {{"tier", "ground"}}).inc(5);
  EXPECT_EQ(reg.counter_value("requests"), 3u);
  EXPECT_EQ(reg.counter_value("requests", {{"tier", "ground"}}), 5u);
  EXPECT_EQ(reg.counter_value("requests", {{"tier", "space"}}), 0u);
  EXPECT_EQ(reg.counter_value("absent"), 0u);
}

TEST(Metrics, LabelSetOrderInsensitive) {
  const LabelSet a{{"b", "1"}, {"a", "2"}};
  const LabelSet b{{"a", "2"}, {"b", "1"}};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.prometheus(), "{a=\"2\",b=\"1\"}");
  MetricsRegistry reg;
  reg.counter("x", a).inc();
  reg.counter("x", b).inc();
  EXPECT_EQ(reg.counter_value("x", a), 2u);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricsRegistry reg;
  reg.gauge("depth").set(4.0);
  reg.gauge("depth").add(-1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 2.5);
}

TEST(Metrics, ShardedCounterTotalsAcrossSlots) {
  ShardedCounter c(4);
  for (std::size_t shard = 0; shard < 8; ++shard) c.add(shard);  // wraps mod 4
  EXPECT_EQ(c.total(), 8u);
  EXPECT_EQ(c.shard_value(0), 2u);

  ShardedCounter other(8);
  other.add(7, 10);
  c.merge(other);
  EXPECT_EQ(c.shards(), 8u);
  EXPECT_EQ(c.total(), 18u);
  EXPECT_EQ(c.shard_value(7), 10u);
}

TEST(Metrics, HistogramTracksMomentsAndBins) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("lat", {}, {0.0, 10.0, 10});
  for (const double x : {0.5, 1.5, 1.5, 9.5}) h.observe(x);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.0);
  EXPECT_EQ(h.bins().count(0), 1u);
  EXPECT_EQ(h.bins().count(1), 2u);
  EXPECT_EQ(h.bins().count(9), 1u);
  // Options only apply at family creation; later lookups reuse them.
  EXPECT_EQ(reg.histogram("lat", {}, {0.0, 1.0, 2}).bins().bins(), 10u);
}

TEST(Metrics, PrometheusExportFormat) {
  MetricsRegistry reg;
  reg.counter("spacecdn_fetch_total", {{"tier", "ground"}}).inc(7);
  reg.gauge("spacecdn_sats_down").set(3.0);
  HistogramMetric& h = reg.histogram("rtt_ms", {}, {0.0, 4.0, 2});
  h.observe(1.0);
  h.observe(1.0);
  h.observe(3.0);

  std::ostringstream os;
  reg.export_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE spacecdn_fetch_total counter"), std::string::npos);
  EXPECT_NE(text.find("spacecdn_fetch_total{tier=\"ground\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE spacecdn_sats_down gauge"), std::string::npos);
  EXPECT_NE(text.find("spacecdn_sats_down 3"), std::string::npos);
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("rtt_ms_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("rtt_ms_bucket{le=\"4\"} 3"), std::string::npos);
  EXPECT_NE(text.find("rtt_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("rtt_ms_sum 5"), std::string::npos);
  EXPECT_NE(text.find("rtt_ms_count 3"), std::string::npos);
}

TEST(Metrics, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("c", {{"k", "a\"b\\c\nd"}}).inc();
  std::ostringstream os;
  reg.export_prometheus(os);
  EXPECT_NE(os.str().find("c{k=\"a\\\"b\\\\c\\nd\"} 1"), std::string::npos);
}

TEST(Metrics, JsonExportParsesAsExpectedShape) {
  MetricsRegistry reg;
  reg.counter("hits", {{"tier", "space"}}).inc(2);
  reg.gauge("load").set(0.5);
  reg.histogram("ms", {}, {0.0, 10.0, 10}).observe(4.0);
  reg.sharded_counter("parallel", 2).add(0, 9);

  std::ostringstream os;
  reg.export_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_NE(json.find("\"counters\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"hits\",\"labels\":{\"tier\":\"space\"},\"value\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parallel\",\"labels\":{},\"value\":9,\"shards\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"gauges\":["), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":["), std::string::npos);
  EXPECT_NE(json.find("\"count\":1,\"sum\":4"), std::string::npos);
}

TEST(Metrics, MergeFoldsEveryKind) {
  MetricsRegistry a, b;
  a.counter("c").inc(1);
  b.counter("c").inc(2);
  b.counter("only_b", {{"l", "x"}}).inc(4);
  a.gauge("g").set(1.0);
  b.gauge("g").set(9.0);
  a.histogram("h", {}, {0.0, 10.0, 10}).observe(2.5);
  b.histogram("h", {}, {0.0, 10.0, 10}).observe(7.5);
  a.sharded_counter("s", 2).add(0, 3);
  b.sharded_counter("s", 2).add(1, 4);

  a.merge(b);
  EXPECT_EQ(a.counter_value("c"), 3u);
  EXPECT_EQ(a.counter_value("only_b", {{"l", "x"}}), 4u);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 9.0);
  EXPECT_EQ(a.histogram("h", {}, {0.0, 10.0, 10}).count(), 2u);
  EXPECT_EQ(a.sharded_counter("s", 2).total(), 7u);
}

// Everything from here to the end of the file exercises *installed* sinks,
// which SPACECDN_NO_TELEMETRY compiles away by design (the accessors become
// constexpr nullptr).  The pure-data types above stay testable either way.
#ifndef SPACECDN_NO_TELEMETRY

TEST(Metrics, ClearBumpsEpochAndHandlesRebind) {
  MetricsRegistry reg;
  const TelemetryScope scope({.metrics = &reg});
  CounterHandle handle("rebind_test");
  handle.inc();
  EXPECT_EQ(reg.counter_value("rebind_test"), 1u);
  const std::uint64_t before = reg.epoch();
  reg.clear();
  EXPECT_NE(reg.epoch(), before);
  handle.inc();  // must not touch the counter freed by clear()
  EXPECT_EQ(reg.counter_value("rebind_test"), 1u);
  EXPECT_EQ(reg.family_count(), 1u);
}

TEST(Metrics, HandlesFollowInstalledRegistry) {
  MetricsRegistry a, b;
  CounterHandle counter("follow");
  HistogramHandle histogram("follow_ms", {}, {0.0, 10.0, 10});
  {
    const TelemetryScope scope({.metrics = &a});
    counter.inc();
    histogram.observe(1.0);
  }
  counter.inc();  // nothing installed: dropped
  {
    const TelemetryScope scope({.metrics = &b});
    counter.inc(2);
    histogram.observe(2.0);
  }
  EXPECT_EQ(a.counter_value("follow"), 1u);
  EXPECT_EQ(b.counter_value("follow"), 2u);
  EXPECT_EQ(a.histogram("follow_ms", {}, {0.0, 10.0, 10}).count(), 1u);
  EXPECT_EQ(b.histogram("follow_ms", {}, {0.0, 10.0, 10}).count(), 1u);
}

#endif  // SPACECDN_NO_TELEMETRY

// ------------------------------------------------------------------- traces

Trace sample_trace() {
  TraceBuilder builder("fetch", Milliseconds{100.0});
  builder.attr(builder.root(), "item", "42");
  const std::uint32_t attempt = builder.open("attempt");
  builder.set_duration(attempt, Milliseconds{30.0});
  const std::uint32_t tier = builder.open("tier:ground", attempt);
  builder.set_start(tier, Milliseconds{5.0});
  builder.set_duration(tier, Milliseconds{25.0});
  builder.metric(tier, "hops", 3.0);
  const std::uint32_t backoff = builder.open("backoff");
  builder.set_start(backoff, Milliseconds{30.0});
  builder.set_duration(backoff, Milliseconds{10.0});
  builder.set_duration(builder.root(), Milliseconds{40.0});
  return builder.finish(false);
}

TEST(Trace, BuilderNestsSpans) {
  const Trace trace = sample_trace();
  ASSERT_EQ(trace.spans.size(), 4u);
  EXPECT_EQ(trace.spans[0].name, "fetch");
  EXPECT_EQ(trace.spans[1].parent, 0u);
  EXPECT_EQ(trace.spans[2].parent, 1u);
  EXPECT_EQ(trace.depth(0), 0u);
  EXPECT_EQ(trace.depth(1), 1u);
  EXPECT_EQ(trace.depth(2), 2u);
  EXPECT_DOUBLE_EQ(trace.total().value(), 40.0);
  // Direct children of the root (attempt + backoff) account for the total.
  EXPECT_DOUBLE_EQ(trace.children_total().value(), 40.0);
  EXPECT_FALSE(trace.failed);
}

TEST(Trace, JsonlLineCarriesSpansAndAttrs) {
  std::ostringstream os;
  write_jsonl(os, sample_trace());
  const std::string line = os.str();
  EXPECT_EQ(line.find("{\"trace_id\":"), 0u);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"fetch\""), std::string::npos);
  EXPECT_NE(line.find("\"at_ms\":100"), std::string::npos);
  EXPECT_NE(line.find("\"total_ms\":40"), std::string::npos);
  EXPECT_NE(line.find("\"spans\":["), std::string::npos);
  EXPECT_NE(line.find("\"item\":\"42\""), std::string::npos);
  EXPECT_NE(line.find("\"hops\":3"), std::string::npos);
  EXPECT_EQ(std::count(line.begin(), line.end(), '{'),
            std::count(line.begin(), line.end(), '}'));
}

TEST(Trace, TracerStreamsJsonlAndRetains) {
  std::ostringstream os;
  Tracer tracer;
  tracer.set_jsonl_sink(&os);
  tracer.set_retain(2);
  for (int i = 0; i < 3; ++i) tracer.record(sample_trace());
  EXPECT_EQ(tracer.recorded(), 3u);
  EXPECT_EQ(count_lines(os.str()), 3u);
  EXPECT_EQ(tracer.retained().size(), 2u);
  // Ids are assigned in record order; last() is the most recent.
  EXPECT_EQ(tracer.last().id, 3u);
}

TEST(Trace, WaterfallRendersEverySpan) {
  std::ostringstream os;
  render_waterfall(os, sample_trace(), 20);
  const std::string out = os.str();
  EXPECT_NE(out.find("fetch"), std::string::npos);
  EXPECT_NE(out.find("tier:ground"), std::string::npos);
  EXPECT_NE(out.find("backoff"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_GE(count_lines(out), 4u);
}

// ---------------------------------------------------------- flight recorder

TEST(FlightRecorder, RingKeepsMostRecent) {
  FlightRecorder recorder({.capacity = 3});
  for (int i = 1; i <= 5; ++i) {
    Trace t = sample_trace();
    t.id = static_cast<std::uint64_t>(i);
    recorder.push(std::move(t));
  }
  EXPECT_EQ(recorder.pushed(), 5u);
  EXPECT_EQ(recorder.size(), 3u);
  const auto kept = recorder.snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].id, 3u);  // oldest first
  EXPECT_EQ(kept[2].id, 5u);
}

TEST(FlightRecorder, TripDumpsRetainedTraces) {
  FlightRecorder recorder({.capacity = 4});
  std::ostringstream dump;
  recorder.set_dump_sink(&dump);
  recorder.push(sample_trace());
  recorder.push(sample_trace());
  recorder.trip("repair-audit-unrepairable", Milliseconds{1234.0});
  EXPECT_EQ(recorder.trips(), 1u);
  EXPECT_EQ(recorder.last_trip_reason(), "repair-audit-unrepairable");
  const std::string out = dump.str();
  EXPECT_EQ(out.find("# flight-recorder trip: repair-audit-unrepairable"), 0u);
  // Header line plus one JSONL line per retained trace.
  EXPECT_EQ(count_lines(out), 3u);
}

TEST(FlightRecorder, TracerFeedsRecorder) {
  FlightRecorder recorder({.capacity = 2});
  Tracer tracer;
  tracer.set_recorder(&recorder);
  tracer.record(sample_trace());
  EXPECT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.snapshot()[0].id, 1u);
}

// ------------------------------------------------------------ telemetry hub

#ifndef SPACECDN_NO_TELEMETRY

TEST(Telemetry, ScopeInstallsAndRestores) {
  EXPECT_EQ(metrics(), nullptr);
  MetricsRegistry reg;
  Tracer tracer;
  {
    const TelemetryScope scope({.metrics = &reg, .tracer = &tracer});
    EXPECT_EQ(metrics(), &reg);
    EXPECT_EQ(obs::tracer(), &tracer);
    EXPECT_EQ(recorder(), nullptr);
  }
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_EQ(obs::tracer(), nullptr);
}

TEST(Telemetry, SessionWiresEverything) {
  TelemetrySession session;
  EXPECT_EQ(metrics(), &session.metrics());
  EXPECT_EQ(tracer(), &session.tracer());
  EXPECT_EQ(recorder(), &session.recorder());
  EXPECT_EQ(profiler(), &session.profiler());
  // The session's tracer feeds its flight recorder.
  session.tracer().record(sample_trace());
  EXPECT_EQ(session.recorder().size(), 1u);
}

TEST(Telemetry, ProfileMacroRecordsSections) {
  Profiler profiler;
  {
    const TelemetryScope scope({.profiler = &profiler});
    for (int i = 0; i < 3; ++i) {
      SPACECDN_PROFILE("obs-test-section");
    }
  }
  {
    SPACECDN_PROFILE("not-installed");  // no profiler: must not record
  }
  EXPECT_EQ(profiler.calls("obs-test-section"), 3u);
  EXPECT_EQ(profiler.calls("not-installed"), 0u);
  std::ostringstream os;
  profiler.report(os);
  EXPECT_NE(os.str().find("obs-test-section"), std::string::npos);
}

// ----------------------------------------------- instrumented router (e2e)

const lsn::StarlinkNetwork& shell1() { return sim::shared_world().network(); }

cdn::ContentItem item(cdn::ContentId id) {
  return cdn::ContentItem{id, Megabytes{10.0}, data::Region::kEurope};
}

TEST(RouterTelemetry, FetchCountsTierAndEmitsTrace) {
  const auto& net = shell1();
  space::SatelliteFleet fleet(net.constellation().size(),
                              space::FleetConfig{Megabytes{1000.0}});
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  space::SpaceCdnRouter router(net, fleet, ground);

  TelemetrySession session;
  session.tracer().set_retain(1);

  const geo::GeoPoint client = data::location(data::city("Maputo"));
  const auto serving = net.snapshot().serving_satellite(client, 25.0);
  ASSERT_TRUE(serving.has_value());
  (void)fleet.cache(*serving).insert(item(1), Milliseconds{0.0});

  des::Rng rng(3);
  const auto result =
      router.fetch(client, data::country("MZ"), item(1), rng, Milliseconds{0.0});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->tier, space::FetchTier::kServingSatellite);
  EXPECT_EQ(session.metrics().counter_value("spacecdn_fetch_served_total",
                                            {{"tier", "serving-satellite"}}),
            1u);

  const Trace& trace = session.tracer().last();
  EXPECT_EQ(trace.name, "fetch");
  EXPECT_FALSE(trace.failed);
  EXPECT_DOUBLE_EQ(trace.total().value(), result->rtt.value());
  const auto tier_span =
      std::find_if(trace.spans.begin(), trace.spans.end(), [](const TraceSpan& s) {
        return s.name == "tier:serving-satellite";
      });
  ASSERT_NE(tier_span, trace.spans.end());
  EXPECT_DOUBLE_EQ(tier_span->duration.value(), result->rtt.value());
}

TEST(RouterTelemetry, ResilientTraceChildrenSumToTotal) {
  const auto& net = shell1();
  space::SatelliteFleet fleet(net.constellation().size(),
                              space::FleetConfig{Megabytes{1000.0}});
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  space::SpaceCdnRouter router(net, fleet, ground);

  TelemetrySession session;
  session.tracer().set_retain(1);

  des::Rng rng(4);
  const geo::GeoPoint client = data::location(data::city("Tokyo"));
  const auto result = router.fetch_resilient(client, data::country("JP"), item(2), rng,
                                             Milliseconds{0.0});
  ASSERT_TRUE(result.success);

  const Trace& trace = session.tracer().last();
  EXPECT_EQ(trace.name, "fetch_resilient");
  // The accounting invariant behind `ablation_churn --trace-out`: attempt
  // and backoff spans (the root's direct children) sum to total_latency.
  EXPECT_NEAR(trace.children_total().value(), result.total_latency.value(), 1e-9);
  EXPECT_NEAR(trace.total().value(), result.total_latency.value(), 1e-9);
}

TEST(RouterTelemetry, ExhaustedFetchTripsFlightRecorder) {
  const auto& net = shell1();
  space::SatelliteFleet fleet(net.constellation().size(),
                              space::FleetConfig{Megabytes{1000.0}});
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  space::SpaceCdnRouter router(net, fleet, ground);

  TelemetrySession session;
  std::ostringstream dump;
  session.recorder().set_dump_sink(&dump);

  des::Rng rng(5);
  // A polar client has no shell-1 coverage: every attempt fails.
  const auto result = router.fetch_resilient({89.0, 0.0, 0.0}, data::country("US"),
                                             item(3), rng, Milliseconds{0.0});
  EXPECT_FALSE(result.success);
  EXPECT_EQ(session.recorder().trips(), 1u);
  EXPECT_EQ(session.recorder().last_trip_reason(), "fetch_resilient-exhausted");
  // The dump holds the failed fetch's own trace (recorded before the trip).
  EXPECT_EQ(dump.str().find("# flight-recorder trip: fetch_resilient-exhausted"), 0u);
  EXPECT_NE(dump.str().find("\"failed\":true"), std::string::npos);
  EXPECT_EQ(session.metrics().counter_value("spacecdn_resilient_failure_total"), 1u);
}

TEST(RouterTelemetry, CacheEventsCarryTierLabel) {
  const auto& net = shell1();
  space::SatelliteFleet fleet(net.constellation().size(),
                              space::FleetConfig{Megabytes{1000.0}});
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  space::SpaceCdnRouter router(net, fleet, ground);

  TelemetrySession session;
  const geo::GeoPoint client = data::location(data::city("Maputo"));
  des::Rng rng(6);
  // Cold fetch goes to ground; the object is admitted into the serving
  // satellite, so the satellite tier records a miss and an insert.
  const auto first =
      router.fetch(client, data::country("MZ"), item(4), rng, Milliseconds{0.0});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tier, space::FetchTier::kGround);
  EXPECT_GE(session.metrics().counter_value("spacecdn_cache_miss_total",
                                            {{"tier", "satellite"}}),
            1u);
  EXPECT_GE(session.metrics().counter_value("spacecdn_cache_insert_total",
                                            {{"tier", "satellite"}}),
            1u);
  EXPECT_GE(session.metrics().counter_value("spacecdn_cache_miss_total",
                                            {{"tier", "ground"}}),
            1u);

  const auto second =
      router.fetch(client, data::country("MZ"), item(4), rng, Milliseconds{0.0});
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tier, space::FetchTier::kServingSatellite);
  EXPECT_GE(session.metrics().counter_value("spacecdn_cache_hit_total",
                                            {{"tier", "satellite"}}),
            1u);
}

#endif  // SPACECDN_NO_TELEMETRY

}  // namespace
}  // namespace spacecdn::obs
