// Tests for the epoch-cached routing engine (net::RoutingCache /
// net::SsspTree), the util::ThreadPool, and the deterministic parallel
// sweeps built on them.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "data/datasets.hpp"
#include "des/random.hpp"
#include "lsn/starlink.hpp"
#include "measurement/aim.hpp"
#include "net/graph.hpp"
#include "net/routing_cache.hpp"
#include "sim/world.hpp"
#include "spacecdn/fleet.hpp"
#include "spacecdn/lookup.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace spacecdn {
namespace {

constexpr Milliseconds kNow{0.0};

const lsn::StarlinkNetwork& shell1() { return sim::shared_world().network(); }

/// Random connected graph: a spanning chain plus extra random edges.
net::Graph random_graph(des::Rng& rng, std::uint32_t nodes, std::uint32_t extra_edges) {
  net::Graph g(nodes);
  for (std::uint32_t v = 1; v < nodes; ++v) {
    g.add_undirected_edge(v - 1, v, Milliseconds{rng.uniform(1.0, 10.0)});
  }
  for (std::uint32_t e = 0; e < extra_edges; ++e) {
    const auto a = static_cast<net::NodeId>(rng.uniform_int(0, nodes - 1));
    const auto b = static_cast<net::NodeId>(rng.uniform_int(0, nodes - 1));
    if (a == b) continue;
    g.add_undirected_edge(a, b, Milliseconds{rng.uniform(1.0, 10.0)});
  }
  return g;
}

// ------------------------------------------------------------- SsspTree

TEST(SsspTree, MatchesDirectDijkstraOnRandomGraphs) {
  des::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const net::Graph g = random_graph(rng, 40, 60);
    const auto src = static_cast<net::NodeId>(rng.uniform_int(0, 39));
    const net::SsspTree tree(g, src);
    const auto direct = net::shortest_distances(g, src);
    ASSERT_EQ(tree.distances().size(), direct.size());
    for (net::NodeId v = 0; v < direct.size(); ++v) {
      // Bit-identical, not approximately equal: the tree runs the exact
      // relaxation sequence shortest_distances runs.
      EXPECT_EQ(tree.distance(v).value(), direct[v].value()) << "trial " << trial;
    }
  }
}

TEST(SsspTree, PathReconstructionMatchesShortestPath) {
  des::Rng rng(12);
  const net::Graph g = random_graph(rng, 30, 40);
  const net::SsspTree tree(g, 0);
  for (net::NodeId v = 0; v < 30; ++v) {
    const auto direct = net::shortest_path(g, 0, v);
    ASSERT_TRUE(direct.has_value());
    const net::Path from_tree = tree.path_to(v);
    EXPECT_EQ(from_tree.nodes, direct->nodes);
    EXPECT_EQ(from_tree.total.value(), direct->total.value());
    EXPECT_EQ(tree.hops_to(v), direct->hop_count());
  }
}

TEST(SsspTree, UnreachableNodesThrowOnReconstruction) {
  net::Graph g(3);
  g.add_undirected_edge(0, 1, Milliseconds{1.0});  // node 2 isolated
  const net::SsspTree tree(g, 0);
  EXPECT_FALSE(tree.reachable(2));
  EXPECT_TRUE(tree.reachable(1));
  EXPECT_THROW((void)tree.hops_to(2), ConfigError);
  EXPECT_THROW((void)tree.path_to(2), ConfigError);
}

// --------------------------------------------------------- RoutingCache

TEST(RoutingCache, HitsAfterFirstQueryAndSharesTree) {
  des::Rng rng(13);
  const net::Graph g = random_graph(rng, 20, 20);
  const net::RoutingCache cache(g, 8);
  const auto first = cache.tree(3);
  const auto second = cache.tree(3);
  EXPECT_EQ(first.get(), second.get());  // same memoised tree object
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(cache.cached_sources(), 1u);
}

TEST(RoutingCache, LruBoundEvictsColdestSource) {
  des::Rng rng(14);
  const net::Graph g = random_graph(rng, 20, 20);
  const net::RoutingCache cache(g, 4);
  const auto pinned = cache.tree(0);  // reader keeps its tree alive
  for (net::NodeId src = 1; src < 10; ++src) (void)cache.tree(src);
  EXPECT_LE(cache.cached_sources(), 4u);
  EXPECT_GT(cache.stats().evictions, 0u);
  // The handed-out shared_ptr survives eviction and still answers queries.
  EXPECT_EQ(pinned->distance(0).value(), 0.0);
  // Re-querying an evicted source recomputes the identical tree.
  const auto again = cache.tree(0);
  for (net::NodeId v = 0; v < 20; ++v) {
    EXPECT_EQ(again->distance(v).value(), pinned->distance(v).value());
  }
}

TEST(RoutingCache, InvalidateBumpsEpochAndDropsEntries) {
  des::Rng rng(15);
  const net::Graph g = random_graph(rng, 10, 10);
  net::RoutingCache cache(g, 8);
  (void)cache.tree(1);
  (void)cache.tree(2);
  EXPECT_EQ(cache.cached_sources(), 2u);
  const auto epoch_before = cache.epoch();
  cache.invalidate();
  EXPECT_EQ(cache.epoch(), epoch_before + 1);
  EXPECT_EQ(cache.cached_sources(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  (void)cache.tree(1);
  EXPECT_EQ(cache.stats().misses, 3u);  // recomputed after invalidation
}

TEST(RoutingCache, ConcurrentReadersGetIdenticalDistances) {
  des::Rng rng(16);
  const net::Graph g = random_graph(rng, 60, 90);
  const net::RoutingCache cache(g, 16);  // smaller than the source set: eviction races too
  std::vector<std::vector<Milliseconds>> expected(60);
  for (net::NodeId src = 0; src < 60; ++src) {
    expected[src] = net::shortest_distances(g, src);
  }
  ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  pool.parallel_for(600, [&](std::size_t i) {
    const auto src = static_cast<net::NodeId>((i * 7) % 60);
    const auto tree = cache.tree(src);
    for (net::NodeId v = 0; v < 60; ++v) {
      if (tree->distance(v).value() != expected[src][v].value()) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

// ------------------------------------------- IslNetwork routing engine

TEST(IslRoutingEngine, CachedLatenciesMatchDirectDijkstra) {
  const auto& isl = shell1().isl();
  for (const std::uint32_t src : {0u, 97u, 800u, 1583u}) {
    const auto cached = isl.latencies_from(src);
    const auto direct = net::shortest_distances(isl.graph(), src);
    ASSERT_EQ(cached.size(), direct.size());
    for (std::size_t v = 0; v < direct.size(); ++v) {
      EXPECT_EQ(cached[v].value(), direct[v].value());
    }
  }
}

TEST(IslRoutingEngine, FailRecoverCycleRestoresLatenciesBitIdentically) {
  const lsn::StarlinkNetwork network;
  lsn::IslNetwork isl(network.constellation(), network.snapshot());
  const auto before = isl.latencies_from(10);
  const auto epoch0 = isl.topology_epoch();

  isl.fail(11);
  EXPECT_EQ(isl.topology_epoch(), epoch0 + 1);
  const auto degraded = isl.latencies_from(10);
  const auto degraded_direct = net::shortest_distances(isl.graph(), 10);
  for (std::size_t v = 0; v < degraded.size(); ++v) {
    EXPECT_EQ(degraded[v].value(), degraded_direct[v].value());
  }
  EXPECT_FALSE(std::equal(before.begin(), before.end(), degraded.begin(),
                          [](Milliseconds a, Milliseconds b) {
                            return a.value() == b.value();
                          }));

  isl.recover(11);
  EXPECT_EQ(isl.topology_epoch(), epoch0 + 2);
  const auto after = isl.latencies_from(10);
  for (std::size_t v = 0; v < after.size(); ++v) {
    EXPECT_EQ(after[v].value(), before[v].value());
  }
}

TEST(IslRoutingEngine, AdvanceMatchesFreshlyConstructedNetwork) {
  // advance() rebinds the snapshot in place; a network that lived through
  // set_time must route identically to one built directly at that epoch.
  lsn::StarlinkNetwork survivor;
  survivor.set_time(Milliseconds::from_minutes(8.0));
  survivor.set_time(Milliseconds::from_minutes(16.0));

  lsn::StarlinkNetwork fresh;
  fresh.set_time(Milliseconds::from_minutes(16.0));

  for (const std::uint32_t src : {0u, 500u, 1200u}) {
    const auto a = survivor.isl().latencies_from(src);
    const auto b = fresh.isl().latencies_from(src);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t v = 0; v < a.size(); ++v) {
      EXPECT_EQ(a[v].value(), b[v].value());
    }
  }
}

TEST(IslRoutingEngine, RepeatedQueriesHitTheCache) {
  lsn::StarlinkNetwork network;
  const auto& isl = network.isl();
  (void)isl.latencies_from(42);
  const auto before = isl.routing_cache_stats();
  (void)isl.path_latency(42, 100);
  (void)isl.path_latency(42, 1000);
  (void)isl.latencies_from(42);
  const auto after = isl.routing_cache_stats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.hits, before.hits + 3);
}

// ------------------------------------------- Bent-pipe gateway staleness

TEST(BentPipeRouter, SurvivingRouterMatchesFreshAfterAdvance) {
  // Regression: the router's gateway-visibility lists were computed once at
  // construction; after set_time they referred to the previous epoch's
  // geometry.  A surviving router must route exactly like a fresh one.
  lsn::StarlinkNetwork survivor;
  (void)survivor.router().route_to_pop(data::location(data::city("Maputo")),
                                       data::country("MZ"));
  survivor.set_time(Milliseconds::from_minutes(16.0));

  lsn::StarlinkNetwork fresh;
  fresh.set_time(Milliseconds::from_minutes(16.0));

  for (const char* name : {"Maputo", "London", "Denver", "Tokyo"}) {
    const auto& city = data::city(name);
    const auto& country = data::country(city.country_code);
    const auto a = survivor.router().route_to_pop(data::location(city), country);
    const auto b = fresh.router().route_to_pop(data::location(city), country);
    ASSERT_EQ(a.has_value(), b.has_value()) << name;
    if (!a) continue;
    EXPECT_EQ(a->pop, b->pop) << name;
    EXPECT_EQ(a->isl_hops, b->isl_hops) << name;
    EXPECT_EQ(a->one_way_to_pop().value(), b->one_way_to_pop().value()) << name;
  }
}

// ------------------------------------------------- Lookup tie-breaking

TEST(Lookup, PicksLowestLatencyReplicaWithinMinimalHopRing) {
  const auto& net = shell1();
  space::SatelliteFleet fleet(net.constellation().size(),
                              space::FleetConfig{Megabytes{1000.0}});
  const std::uint32_t origin = 0;

  // Place the object on EVERY satellite exactly 2 hops out; the lookup must
  // return the cheapest of them, not the first one BFS emits.
  const auto ring = net.isl().within_hops(origin, 2);
  const auto tree = net.isl().sssp_from(origin);
  double best_latency = net::kUnreachable;
  std::uint32_t holders = 0;
  for (const auto& hd : ring) {
    if (hd.hops != 2) continue;
    (void)fleet.cache(hd.node).insert(
        cdn::ContentItem{9, Megabytes{1.0}, data::Region::kEurope}, kNow);
    best_latency = std::min(best_latency, tree->distance(hd.node).value());
    ++holders;
  }
  ASSERT_GE(holders, 2u) << "need competing candidates for a tie-break test";

  const auto found = space::find_replica(net.isl(), fleet, origin, 9, 10);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->hops, 2u);
  EXPECT_EQ(found->isl_latency.value(), best_latency);
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(visits.size(), [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForHandlesFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for(3, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i) + 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 6);
  pool.parallel_for(0, [&](std::size_t) { sum.fetch_add(1000); });
  EXPECT_EQ(sum.load(), 6);  // zero-count sweep is a no-op
}

TEST(ThreadPool, SubmitAndWaitIdleDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
  EXPECT_EQ(pool.thread_count(), 2u);
}

TEST(ThreadPool, ResolveThreadsHonoursExplicitRequest) {
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);  // hardware concurrency
  EXPECT_THROW((void)ThreadPool::resolve_threads(-1), ConfigError);
}

TEST(MixSeed, DecorrelatesStreams) {
  EXPECT_NE(des::mix_seed(7, 0), des::mix_seed(7, 1));
  EXPECT_NE(des::mix_seed(7, 0), des::mix_seed(8, 0));
  EXPECT_EQ(des::mix_seed(7, 3), des::mix_seed(7, 3));  // pure function
}

// --------------------------------------- Deterministic parallel sweeps

TEST(ParallelSweep, AimCampaignSerialAndParallelAreBitIdentical) {
  measurement::AimConfig cfg;
  cfg.tests_per_city = 3;
  measurement::AimCampaign campaign(shell1(), cfg);
  const auto serial = campaign.run();

  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const auto parallel = campaign.run(pool);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].country_code, serial[i].country_code);
      EXPECT_EQ(parallel[i].city, serial[i].city);
      EXPECT_EQ(parallel[i].cdn_site, serial[i].cdn_site);
      EXPECT_EQ(parallel[i].idle_rtt.value(), serial[i].idle_rtt.value());
      EXPECT_EQ(parallel[i].loaded_rtt.value(), serial[i].loaded_rtt.value());
      EXPECT_EQ(parallel[i].download.value(), serial[i].download.value());
    }
  }
}

TEST(ParallelSweep, RepeatedRunsAreReproducible) {
  // The campaign is a pure function of its config: no hidden sequential RNG
  // state leaks between runs.
  measurement::AimConfig cfg;
  cfg.tests_per_city = 2;
  measurement::AimCampaign campaign(shell1(), cfg);
  const auto first = campaign.run_country(data::country("DE"));
  const auto second = campaign.run_country(data::country("DE"));
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].idle_rtt.value(), second[i].idle_rtt.value());
  }
}

}  // namespace
}  // namespace spacecdn
