// Tests for the section-5 extension systems: ground-track prediction,
// handover tracking, thermal duty-cycle scheduling, Space VMs, geo-blocking
// exposure, and multi-tenant (MetaCDN) caches.
#include <gtest/gtest.h>

#include <set>

#include "cdn/multitenant.hpp"
#include "cdn/popularity.hpp"
#include "data/datasets.hpp"
#include "lsn/handover.hpp"
#include "measurement/geoblocking.hpp"
#include "orbit/ground_track.hpp"
#include "spacecdn/space_vm.hpp"
#include "spacecdn/thermal.hpp"
#include "util/error.hpp"

namespace spacecdn {
namespace {

const orbit::WalkerConstellation& shell1() {
  static const orbit::WalkerConstellation shell(orbit::starlink_shell1());
  return shell;
}

// ------------------------------------------------------------- ground track

TEST(GroundTrack, PassesAreOrderedAndWithinWindow) {
  const orbit::GroundTrackPredictor predictor(shell1());
  const geo::GeoPoint berlin{52.52, 13.40, 0.0};
  const Milliseconds end = Milliseconds::from_minutes(120.0);
  const auto passes = predictor.passes(7, berlin, 25.0, Milliseconds{0.0}, end);
  for (std::size_t i = 0; i < passes.size(); ++i) {
    EXPECT_LT(passes[i].rise.value(), passes[i].set.value());
    EXPECT_GE(passes[i].rise.value(), 0.0);
    EXPECT_LE(passes[i].set.value(), end.value());
    EXPECT_GE(passes[i].max_elevation_deg, 25.0);
    if (i > 0) EXPECT_GT(passes[i].rise.value(), passes[i - 1].set.value());
  }
}

TEST(GroundTrack, DwellIsMinutesNotHours) {
  // Paper section 2: satellites leave the line of sight within 5-10 minutes.
  const orbit::GroundTrackPredictor predictor(shell1());
  const geo::GeoPoint madrid{40.42, -3.70, 0.0};
  const auto stats = predictor.statistics(11, madrid, 25.0, Milliseconds{0.0},
                                          Milliseconds::from_minutes(200.0));
  if (stats.pass_count > 0) {
    EXPECT_LT(stats.mean_duration.value(), Milliseconds::from_minutes(10.0).value());
    EXPECT_GT(stats.mean_duration.value(), Milliseconds::from_seconds(20.0).value());
  }
}

TEST(GroundTrack, RevisitRoughlyOrbitalPeriod) {
  // "Satellites in LSN orbits revisit a location roughly every 90 minutes"
  // (section 4); Earth rotation shifts the track, so allow slack and only
  // require that *some* satellite shows a revisit near one period.
  // At mid latitudes the ~24-degree westward track shift per orbit stays
  // within the 10-degree-mask footprint, so the same satellite returns one
  // period later (95-102 minutes empirically for Shell 1).
  const orbit::GroundTrackPredictor predictor(shell1());
  const geo::GeoPoint madrid{40.42, -3.70, 0.0};
  const double period_min = shell1().orbit(0).period().value() / 60000.0;
  bool found_revisit = false;
  for (std::uint32_t sat = 0; sat < 160 && !found_revisit; sat += 13) {
    const auto passes = predictor.passes(sat, madrid, 10.0, Milliseconds{0.0},
                                         Milliseconds::from_minutes(3.0 * period_min));
    for (std::size_t i = 1; i < passes.size(); ++i) {
      const double gap_min = (passes[i].rise - passes[i - 1].rise).value() / 60000.0;
      if (gap_min > 0.9 * period_min && gap_min < 1.2 * period_min) {
        found_revisit = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_revisit);
}

TEST(GroundTrack, NextRiseAfterCurrentPass) {
  const orbit::GroundTrackPredictor predictor(shell1());
  const geo::GeoPoint tokyo{35.68, 139.69, 0.0};
  const auto next = predictor.next_rise(3, tokyo, 10.0, Milliseconds{0.0},
                                        Milliseconds::from_minutes(300.0));
  if (next) {
    EXPECT_GT(next->value(), 0.0);
    // At the reported rise time (within tolerance) the satellite is near the
    // mask.
    const auto pos = shell1().orbit(3).position_ecef(*next + Milliseconds{200.0});
    EXPECT_GT(geo::elevation_angle_deg(tokyo, pos), 8.0);
  }
}

TEST(GroundTrack, RejectsBadConfig) {
  EXPECT_THROW(orbit::GroundTrackPredictor(shell1(), Milliseconds{0.0}), ConfigError);
}

// ---------------------------------------------------------------- handover

TEST(Handover, TimelineCoversWindowContiguously) {
  const lsn::HandoverTracker tracker(shell1());
  const geo::GeoPoint london{51.51, -0.13, 0.0};
  const Milliseconds end = Milliseconds::from_minutes(10.0);
  const auto timeline = tracker.timeline(london, Milliseconds{0.0}, end);
  ASSERT_FALSE(timeline.empty());
  EXPECT_DOUBLE_EQ(timeline.front().start.value(), 0.0);
  EXPECT_DOUBLE_EQ(timeline.back().end.value(), end.value());
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_DOUBLE_EQ(timeline[i].start.value(), timeline[i - 1].end.value());
    EXPECT_NE(timeline[i].satellite, timeline[i - 1].satellite);  // coalesced
  }
}

TEST(Handover, HandoversWithinMinutes) {
  // Over 20 minutes a terminal must change satellites at least once.
  const lsn::HandoverTracker tracker(shell1());
  const geo::GeoPoint sydney{-33.87, 151.21, 0.0};
  const auto stats =
      tracker.analyze(sydney, Milliseconds{0.0}, Milliseconds::from_minutes(20.0));
  EXPECT_GE(stats.handovers, 1u);
  EXPECT_GT(stats.coverage_fraction, 0.95);
  EXPECT_LT(stats.mean_dwell.value(), Milliseconds::from_minutes(12.0).value());
}

TEST(Handover, PolarTerminalSeesOutage) {
  const lsn::HandoverTracker tracker(shell1());
  const auto stats = tracker.analyze({89.0, 0.0, 0.0}, Milliseconds{0.0},
                                     Milliseconds::from_minutes(5.0));
  EXPECT_DOUBLE_EQ(stats.coverage_fraction, 0.0);
  EXPECT_GT(stats.outage_intervals, 0u);
}

// ------------------------------------------------------------------ thermal

TEST(Thermal, IdleFleetStaysAtAmbient) {
  space::ThermalModel model(10, {});
  model.advance(Milliseconds::from_minutes(60.0), std::vector<bool>(10, false));
  for (std::uint32_t s = 0; s < 10; ++s) {
    EXPECT_NEAR(model.temperature(s), model.config().ambient_c, 1e-6);
  }
  EXPECT_EQ(model.violations(), 0u);
}

TEST(Thermal, ContinuousServingApproachesEquilibriumAndViolates) {
  // Paper: "the overall temperature only exceeds the threshold after hours
  // of continuous computation".
  space::ThermalModel model(4, {});
  const std::vector<bool> all_serving(4, true);
  double minutes = 0.0;
  while (model.violations() == 0 && minutes < 600.0) {
    model.advance(Milliseconds::from_minutes(5.0), all_serving);
    minutes += 5.0;
  }
  EXPECT_GT(minutes, 30.0);   // does not violate immediately
  EXPECT_LT(minutes, 600.0);  // but does violate eventually
}

TEST(Thermal, CoolingAfterServingRecovers) {
  space::ThermalModel model(1, {});
  model.advance(Milliseconds::from_minutes(120.0), {true});
  const double hot = model.temperature(0);
  model.advance(Milliseconds::from_minutes(120.0), {false});
  EXPECT_LT(model.temperature(0), hot);
}

TEST(Thermal, CoolestFirstAvoidsViolations) {
  des::Rng rng_a(1), rng_b(1);
  space::ThermalModel random_model(200, {});
  space::ThermalModel cool_model(200, {});
  const space::ThermalScheduler random_sched(space::ThermalScheduler::Policy::kRandom);
  const space::ThermalScheduler cool_sched(
      space::ThermalScheduler::Policy::kCoolestFirst);

  // High duty fraction for many long slots: random scheduling overheats some
  // satellites by re-picking them; coolest-first rotates them.
  const auto random_report = run_thermal_schedule(
      random_model, random_sched, 0.6, 48, Milliseconds::from_minutes(15.0), rng_a);
  const auto cool_report = run_thermal_schedule(
      cool_model, cool_sched, 0.6, 48, Milliseconds::from_minutes(15.0), rng_b);

  EXPECT_LE(cool_report.violation_slot_count, random_report.violation_slot_count);
  EXPECT_LE(cool_report.peak_temperature_c,
            cool_model.config().max_safe_c + 1.0);
  EXPECT_NEAR(cool_report.mean_served_fraction, 0.6, 0.15);
}

TEST(Thermal, SchedulerReportsShortfallWhenAllHot) {
  space::ThermalModel model(10, {});
  // Heat everyone far past the eligibility margin.
  for (int i = 0; i < 40; ++i) {
    model.advance(Milliseconds::from_minutes(30.0), std::vector<bool>(10, true));
  }
  des::Rng rng(2);
  const space::ThermalScheduler sched(space::ThermalScheduler::Policy::kCoolestFirst);
  const auto result = sched.select(model, 0.5, rng);
  EXPECT_TRUE(result.serving.empty());
  EXPECT_EQ(result.shortfall, 5u);
}

// ----------------------------------------------------------------- space VM

TEST(SpaceVm, MigrationsFollowHandovers) {
  const space::SpaceVmOrchestrator orchestrator(shell1(), {});
  des::Rng rng(3);
  const geo::GeoPoint area = data::location(data::city("Sao Paulo"));
  const auto events = orchestrator.plan_migrations(area, Milliseconds{0.0},
                                                   Milliseconds::from_minutes(30.0), rng);
  const lsn::HandoverTracker tracker(shell1());
  const auto stats =
      tracker.analyze(area, Milliseconds{0.0}, Milliseconds::from_minutes(30.0));
  EXPECT_EQ(events.size(), stats.handovers);
  for (const auto& e : events) {
    EXPECT_NE(e.from_satellite, e.to_satellite);
    EXPECT_GT(e.switchover.value(), 0.0);
  }
}

TEST(SpaceVm, TransferTimeComposesPropagationAndTransmission) {
  space::VmConfig cfg;
  cfg.isl_bandwidth = Mbps{800.0};
  const space::SpaceVmOrchestrator orchestrator(shell1(), cfg);
  // 100 MB at 800 Mbps = 1 s transmission; 1500 km at c ~ 5 ms propagation.
  const Milliseconds t =
      orchestrator.transfer_time(Megabytes{100.0}, Kilometers{1500.0});
  EXPECT_NEAR(t.value(), 1005.0, 1.0);
}

TEST(SpaceVm, SeamlessOperationContinuity) {
  // The design goal: "providing seamless operations" -- switchovers of a
  // ~12 MB residual over multi-Gbps ISLs cost well under a second each, so
  // continuity stays high over an hour.
  const space::SpaceVmOrchestrator orchestrator(shell1(), {});
  des::Rng rng(4);
  const geo::GeoPoint area = data::location(data::city("London"));
  const auto report = orchestrator.run(area, Milliseconds{0.0},
                                       Milliseconds::from_minutes(60.0), rng);
  EXPECT_GT(report.migrations, 2u);
  EXPECT_GT(report.continuity, 0.99);
  EXPECT_LT(report.mean_switchover.value(), 500.0);
  EXPECT_GT(report.sync_traffic.value(), 0.0);
}

TEST(SpaceVm, RejectsBadConfig) {
  space::VmConfig cfg;
  cfg.residual_dirty_fraction = 1.5;
  EXPECT_THROW(space::SpaceVmOrchestrator(shell1(), cfg), ConfigError);
}

// -------------------------------------------------------------- geoblocking

TEST(GeoBlocking, MozambiqueAppearsGerman) {
  const lsn::GroundSegment ground;
  const measurement::GeoBlockingStudy study(ground);
  for (const auto& row : study.analyze()) {
    if (row.country_code == "MZ") {
      EXPECT_EQ(row.apparent_country_code, "DE");
      EXPECT_TRUE(row.country_mismatch);
      EXPECT_TRUE(row.region_mismatch);
      EXPECT_GT(row.displacement.value(), 6000.0);
      return;
    }
  }
  FAIL() << "Mozambique missing from the study";
}

TEST(GeoBlocking, LocalPopCountriesAreNotExposed) {
  const lsn::GroundSegment ground;
  const measurement::GeoBlockingStudy study(ground);
  for (const auto& row : study.analyze()) {
    if (row.country_code == "DE" || row.country_code == "JP" ||
        row.country_code == "US") {
      EXPECT_FALSE(row.country_mismatch) << row.country_code;
    }
  }
}

TEST(GeoBlocking, SummaryCountsMismatches) {
  const lsn::GroundSegment ground;
  const measurement::GeoBlockingStudy study(ground);
  const auto summary = study.summarize();
  EXPECT_GE(summary.countries, 55u);
  // Only 12-ish countries host PoPs, so most are geolocated elsewhere.
  EXPECT_GT(summary.with_country_mismatch, summary.countries / 2);
  // Cross-continent exposure is the severe case (licensing regions).
  EXPECT_GE(summary.with_region_mismatch, 8u);
  EXPECT_GT(summary.mean_displacement.value(), 500.0);
}

// -------------------------------------------------------------- multitenant

TEST(MultiTenant, SharesMustBeValid) {
  using cdn::Tenant;
  EXPECT_THROW(cdn::MultiTenantCache(Megabytes{100.0}, {}, cdn::TenancyMode::kShared),
               ConfigError);
  EXPECT_THROW(cdn::MultiTenantCache(Megabytes{100.0},
                                     {Tenant{"a", 0.7}, Tenant{"b", 0.5}},
                                     cdn::TenancyMode::kShared),
               ConfigError);
}

TEST(MultiTenant, TenantsAreIsolatedInBothModes) {
  using cdn::Tenant;
  for (const auto mode : {cdn::TenancyMode::kPartitioned, cdn::TenancyMode::kShared}) {
    cdn::MultiTenantCache cache(Megabytes{100.0}, {Tenant{"a", 0.5}, Tenant{"b", 0.5}},
                                mode);
    const cdn::ContentItem obj{42, Megabytes{1.0}, data::Region::kEurope};
    EXPECT_FALSE(cache.serve(0, obj, Milliseconds{0.0}));  // miss, admitted
    EXPECT_TRUE(cache.serve(0, obj, Milliseconds{0.0}));   // hit
    // Tenant b requesting the same id must NOT hit tenant a's copy.
    EXPECT_FALSE(cache.serve(1, obj, Milliseconds{0.0})) << to_string(mode);
  }
}

TEST(MultiTenant, PerTenantStatsAccumulate) {
  using cdn::Tenant;
  cdn::MultiTenantCache cache(Megabytes{100.0}, {Tenant{"a", 0.6}, Tenant{"b", 0.4}},
                              cdn::TenancyMode::kPartitioned);
  const cdn::ContentItem obj{1, Megabytes{1.0}, data::Region::kAsia};
  (void)cache.serve(0, obj, Milliseconds{0.0});
  (void)cache.serve(0, obj, Milliseconds{0.0});
  EXPECT_EQ(cache.tenant_stats(0).hits, 1u);
  EXPECT_EQ(cache.tenant_stats(0).misses, 1u);
  EXPECT_EQ(cache.tenant_stats(1).hits, 0u);
}

TEST(MultiTenant, SharingBeatsPartitioningForBurstyTenants) {
  // Statistical multiplexing: a tenant whose demand exceeds its purchased
  // share benefits from the shared pool while the other tenant is quiet.
  using cdn::Tenant;
  des::Rng rng(5);
  const cdn::ContentCatalog catalog({.object_count = 4000}, rng);
  const cdn::RegionalPopularity pop(catalog.size(), {});

  const std::vector<Tenant> tenants{Tenant{"busy", 0.5}, Tenant{"quiet", 0.5}};
  cdn::MultiTenantCache partitioned(Megabytes{2000.0}, tenants,
                                    cdn::TenancyMode::kPartitioned);
  cdn::MultiTenantCache shared(Megabytes{2000.0}, tenants, cdn::TenancyMode::kShared);

  des::Rng workload(6);
  for (int i = 0; i < 30000; ++i) {
    const auto id = pop.sample(data::Region::kEurope, workload);
    const auto& item = catalog.item(id);
    // 95% of requests come from the busy tenant.
    const std::size_t tenant = workload.chance(0.95) ? 0 : 1;
    (void)partitioned.serve(tenant, item, Milliseconds{static_cast<double>(i)});
    (void)shared.serve(tenant, item, Milliseconds{static_cast<double>(i)});
  }
  EXPECT_GT(shared.tenant_stats(0).hit_rate(),
            partitioned.tenant_stats(0).hit_rate());
}

}  // namespace
}  // namespace spacecdn
