// Unit tests for the SpaceCDN core: fleet, placement, lookup, 3-tier
// routing, duty cycling, striping, content bubbles.
#include <gtest/gtest.h>

#include <algorithm>

#include "data/datasets.hpp"
#include "sim/world.hpp"
#include "spacecdn/bubbles.hpp"
#include "spacecdn/duty_cycle.hpp"
#include "spacecdn/fleet.hpp"
#include "spacecdn/lookup.hpp"
#include "spacecdn/placement.hpp"
#include "spacecdn/router.hpp"
#include "spacecdn/spacecdn.hpp"
#include "spacecdn/striping.hpp"
#include "util/error.hpp"

namespace spacecdn::space {
namespace {

constexpr Milliseconds kNow{0.0};

const lsn::StarlinkNetwork& shell1() { return sim::shared_world().network(); }

cdn::ContentItem item(cdn::ContentId id, double mb = 10.0) {
  return cdn::ContentItem{id, Megabytes{mb}, data::Region::kEurope};
}

FleetConfig small_fleet_config() {
  FleetConfig cfg;
  cfg.capacity_per_satellite = Megabytes{1000.0};
  return cfg;
}

TEST(Fleet, SizingMatchesPaperStorageClaim) {
  // Paper section 5: ~150 TB per satellite; 6,000 satellites -> >900 PB.
  const FleetConfig cfg;
  EXPECT_NEAR(cfg.capacity_per_satellite.value(), 150e6 / 1000.0, 1.0);  // 150 TB in MB
  SatelliteFleet fleet(1584, cfg);
  EXPECT_GT(fleet.total_capacity().value(), 2.3e8);  // > 237 PB for Shell 1 alone
}

TEST(Fleet, EnableMaskControlsService) {
  SatelliteFleet fleet(10, small_fleet_config());
  EXPECT_EQ(fleet.enabled_count(), 10u);
  fleet.set_enabled({1, 3, 5});
  EXPECT_EQ(fleet.enabled_count(), 3u);
  EXPECT_TRUE(fleet.cache_enabled(3));
  EXPECT_FALSE(fleet.cache_enabled(0));
  fleet.enable_all();
  EXPECT_EQ(fleet.enabled_count(), 10u);
}

TEST(Fleet, HoldsRequiresEnabledAndPresent) {
  SatelliteFleet fleet(4, small_fleet_config());
  (void)fleet.cache(2).insert(item(7), kNow);
  EXPECT_TRUE(fleet.holds(2, 7));
  fleet.set_enabled({0, 1});
  EXPECT_FALSE(fleet.holds(2, 7));  // disabled satellites do not serve
  EXPECT_FALSE(fleet.holds(0, 7));  // enabled but empty
}

TEST(Fleet, AggregateStats) {
  SatelliteFleet fleet(3, small_fleet_config());
  (void)fleet.cache(0).insert(item(1), kNow);
  (void)fleet.cache(0).access(1, kNow);
  (void)fleet.cache(1).access(99, kNow);
  const auto stats = fleet.aggregate_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(Placement, CopiesPerPlaneSpacing) {
  const orbit::WalkerConstellation c(orbit::starlink_shell1());
  PlacementConfig cfg;
  cfg.copies_per_plane = 4;
  const ContentPlacement placement(c, cfg);
  const auto replicas = placement.replicas(123);
  EXPECT_EQ(replicas.size(), 72u * 4u);
  // Within each plane, replicas are evenly spaced (22/4 -> gaps of 5-6).
  std::vector<std::uint32_t> plane0;
  for (std::uint32_t sat : replicas) {
    if (c.index_of(sat).plane == 0) plane0.push_back(c.index_of(sat).in_plane);
  }
  ASSERT_EQ(plane0.size(), 4u);
  std::sort(plane0.begin(), plane0.end());
  for (std::size_t i = 1; i < plane0.size(); ++i) {
    const std::uint32_t gap = plane0[i] - plane0[i - 1];
    EXPECT_GE(gap, 5u);
    EXPECT_LE(gap, 6u);
  }
}

TEST(Placement, DifferentObjectsDifferentSatellites) {
  const orbit::WalkerConstellation c(orbit::starlink_shell1());
  const ContentPlacement placement(c, {});
  EXPECT_NE(placement.replicas(1), placement.replicas(2));
}

TEST(Placement, GridHopDistanceIsMetric) {
  const orbit::WalkerConstellation c(orbit::starlink_shell1());
  const ContentPlacement placement(c, {});
  EXPECT_EQ(placement.grid_hop_distance(5, 5), 0u);
  EXPECT_EQ(placement.grid_hop_distance(5, 6), 1u);
  // Symmetry and wrap-around: slot 0 and slot 21 in a plane are adjacent.
  EXPECT_EQ(placement.grid_hop_distance(0, 21), 1u);
  EXPECT_EQ(placement.grid_hop_distance(3, 100), placement.grid_hop_distance(100, 3));
}

TEST(Placement, PaperClaimFourCopiesWithinFiveHops) {
  // Section 4: "with around 4 copies distributed within each plane, an
  // object can be reachable within 5 hops, even within a single orbital
  // plane".
  const orbit::WalkerConstellation c(orbit::starlink_shell1());
  PlacementConfig cfg;
  cfg.copies_per_plane = 4;
  const ContentPlacement placement(c, cfg);
  des::Rng rng(1);
  const auto stats = placement.analyze(2000, 1000, rng);
  EXPECT_LE(stats.max_hops, 5u);
  EXPECT_LT(stats.mean_hops, 3.0);
}

TEST(Placement, MoreCopiesFewerHops) {
  const orbit::WalkerConstellation c(orbit::starlink_shell1());
  des::Rng rng(2);
  double prev_mean = 1e9;
  for (std::uint32_t k : {1u, 2u, 4u, 8u}) {
    PlacementConfig cfg;
    cfg.copies_per_plane = k;
    const auto stats = ContentPlacement(c, cfg).analyze(1000, 500, rng);
    EXPECT_LT(stats.mean_hops, prev_mean);
    prev_mean = stats.mean_hops;
  }
}

TEST(Placement, PlaceInsertsIntoFleet) {
  const orbit::WalkerConstellation c(orbit::starlink_shell1());
  SatelliteFleet fleet(c.size(), small_fleet_config());
  const ContentPlacement placement(c, {});
  placement.place(fleet, item(42), kNow);
  for (std::uint32_t sat : placement.replicas(42)) {
    EXPECT_TRUE(fleet.cache(sat).contains(42));
  }
}

TEST(Placement, RejectsBadConfig) {
  const orbit::WalkerConstellation c(orbit::starlink_shell1());
  PlacementConfig cfg;
  cfg.copies_per_plane = 0;
  EXPECT_THROW(ContentPlacement(c, cfg), ConfigError);
  cfg.copies_per_plane = 23;  // more than satellites per plane
  EXPECT_THROW(ContentPlacement(c, cfg), ConfigError);
  cfg = PlacementConfig{};
  // Regression: a stride past the plane count used to be accepted silently
  // and collapsed every replica onto plane 0 (stride % planes wraps).
  cfg.plane_stride = c.plane_count() + 1;
  EXPECT_THROW(ContentPlacement(c, cfg), ConfigError);
}

TEST(Lookup, FindsReplicaAtMinimalHops) {
  const auto& net = shell1();
  SatelliteFleet fleet(net.constellation().size(), small_fleet_config());
  // Place the object 2 hops away from satellite 0 (neighbor of neighbor).
  const auto n1 = net.constellation().grid_neighbors(0)[0];
  const auto n2 = net.constellation().grid_neighbors(n1)[0];
  ASSERT_NE(n2, 0u);
  (void)fleet.cache(n2).insert(item(5), kNow);
  const auto found = find_replica(net.isl(), fleet, 0, 5, 10);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->satellite, n2);
  EXPECT_EQ(found->hops, 2u);
  EXPECT_GT(found->isl_latency.value(), 0.0);
}

TEST(Lookup, RespectsHopBudget) {
  const auto& net = shell1();
  SatelliteFleet fleet(net.constellation().size(), small_fleet_config());
  // Object on the far side of the constellation.
  (void)fleet.cache(792).insert(item(6), kNow);
  EXPECT_FALSE(find_replica(net.isl(), fleet, 0, 6, 2).has_value());
  EXPECT_TRUE(find_replica(net.isl(), fleet, 0, 6, 64).has_value());
}

TEST(Lookup, OriginHoldingIsZeroHops) {
  const auto& net = shell1();
  SatelliteFleet fleet(net.constellation().size(), small_fleet_config());
  (void)fleet.cache(17).insert(item(7), kNow);
  const auto found = find_replica(net.isl(), fleet, 17, 7, 5);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->hops, 0u);
  EXPECT_DOUBLE_EQ(found->isl_latency.value(), 0.0);
}

TEST(Lookup, SkipsDisabledCaches) {
  const auto& net = shell1();
  SatelliteFleet fleet(net.constellation().size(), small_fleet_config());
  const auto n1 = net.constellation().grid_neighbors(0)[0];
  (void)fleet.cache(n1).insert(item(8), kNow);
  fleet.set_enabled({0});  // n1 is now a relay
  EXPECT_FALSE(find_replica(net.isl(), fleet, 0, 8, 5).has_value());
}

TEST(Lookup, FindEnabledCacheIgnoresContent) {
  const auto& net = shell1();
  SatelliteFleet fleet(net.constellation().size(), small_fleet_config());
  fleet.set_enabled({500});
  const auto found = find_enabled_cache(net.isl(), fleet, 500, 0);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->satellite, 500u);
}

TEST(Router, TierOneWhenOverheadSatelliteHolds) {
  const auto& net = shell1();
  SatelliteFleet fleet(net.constellation().size(), small_fleet_config());
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  SpaceCdnRouter router(net, fleet, ground);

  const geo::GeoPoint client = data::location(data::city("Maputo"));
  const auto serving = net.snapshot().serving_satellite(client, 25.0);
  ASSERT_TRUE(serving.has_value());
  (void)fleet.cache(*serving).insert(item(1), kNow);

  des::Rng rng(3);
  const auto result = router.fetch(client, data::country("MZ"), item(1), rng, kNow);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->tier, FetchTier::kServingSatellite);
  EXPECT_EQ(result->isl_hops, 0u);
  // One space hop: a few ms propagation + access overhead.
  EXPECT_LT(result->rtt.value(), 80.0);
}

TEST(Router, TierTwoOverIsls) {
  const auto& net = shell1();
  SatelliteFleet fleet(net.constellation().size(), small_fleet_config());
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  RouterConfig cfg;
  cfg.admit_on_fetch = false;
  SpaceCdnRouter router(net, fleet, ground, cfg);

  const geo::GeoPoint client = data::location(data::city("Maputo"));
  const auto serving = net.snapshot().serving_satellite(client, 25.0);
  ASSERT_TRUE(serving.has_value());
  const auto neighbor = net.constellation().grid_neighbors(*serving)[2];
  (void)fleet.cache(neighbor).insert(item(2), kNow);

  des::Rng rng(4);
  const auto result = router.fetch(client, data::country("MZ"), item(2), rng, kNow);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->tier, FetchTier::kIslNeighbor);
  EXPECT_EQ(result->isl_hops, 1u);
  EXPECT_EQ(result->source_satellite, neighbor);
}

TEST(Router, TierThreeFallsBackToGround) {
  const auto& net = shell1();
  SatelliteFleet fleet(net.constellation().size(), small_fleet_config());
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  SpaceCdnRouter router(net, fleet, ground);

  des::Rng rng(5);
  const geo::GeoPoint client = data::location(data::city("Maputo"));
  const auto result = router.fetch(client, data::country("MZ"), item(3), rng, kNow);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->tier, FetchTier::kGround);
  EXPECT_FALSE(result->ground_cache_hit);  // cold edge: origin fetch
  // Bent pipe to Frankfurt: >100 ms.
  EXPECT_GT(result->rtt.value(), 100.0);
}

TEST(Router, AdmitOnFetchWarmsServingSatellite) {
  const auto& net = shell1();
  SatelliteFleet fleet(net.constellation().size(), small_fleet_config());
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  SpaceCdnRouter router(net, fleet, ground);

  des::Rng rng(6);
  const geo::GeoPoint client = data::location(data::city("Tokyo"));
  const auto first = router.fetch(client, data::country("JP"), item(4), rng, kNow);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tier, FetchTier::kGround);
  const auto second = router.fetch(client, data::country("JP"), item(4), rng, kNow);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tier, FetchTier::kServingSatellite);
  EXPECT_LT(second->rtt.value(), first->rtt.value());
}

TEST(Router, FetchResultAccountingConsistentPerTier) {
  // Regression: the FetchResult bookkeeping fields must match the served
  // tier for every tier.
  const auto& net = shell1();
  SatelliteFleet fleet(net.constellation().size(), small_fleet_config());
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  RouterConfig cfg;
  cfg.admit_on_fetch = false;  // keep each fetch on its intended tier
  SpaceCdnRouter router(net, fleet, ground, cfg);

  const geo::GeoPoint client = data::location(data::city("Maputo"));
  const auto serving = net.snapshot().serving_satellite(client, 25.0);
  ASSERT_TRUE(serving.has_value());
  des::Rng rng(11);

  // Tier (i): the overhead satellite serves, so no ISL hops, the source is
  // the serving satellite itself, and the ground edge never saw the request.
  (void)fleet.cache(*serving).insert(item(41), kNow);
  const auto tier1 = router.fetch(client, data::country("MZ"), item(41), rng, kNow);
  ASSERT_TRUE(tier1.has_value());
  ASSERT_EQ(tier1->tier, FetchTier::kServingSatellite);
  EXPECT_EQ(tier1->isl_hops, 0u);
  EXPECT_EQ(tier1->source_satellite, *serving);
  EXPECT_FALSE(tier1->ground_cache_hit);

  // Tier (ii): the replica sits on a grid neighbour -- one hop, source is
  // the holder, still no ground involvement.
  const auto neighbor = net.constellation().grid_neighbors(*serving)[1];
  (void)fleet.cache(neighbor).insert(item(42), kNow);
  const auto tier2 = router.fetch(client, data::country("MZ"), item(42), rng, kNow);
  ASSERT_TRUE(tier2.has_value());
  ASSERT_EQ(tier2->tier, FetchTier::kIslNeighbor);
  EXPECT_GE(tier2->isl_hops, 1u);
  EXPECT_EQ(tier2->source_satellite, neighbor);
  EXPECT_FALSE(tier2->ground_cache_hit);

  // Tier (iii): space holds nothing, so the bent pipe serves.  The source
  // satellite is not meaningful (0) and the first fetch misses the edge;
  // repeating it hits the now-warm edge cache.
  const auto cold = router.fetch(client, data::country("MZ"), item(43), rng, kNow);
  ASSERT_TRUE(cold.has_value());
  ASSERT_EQ(cold->tier, FetchTier::kGround);
  EXPECT_EQ(cold->source_satellite, 0u);
  EXPECT_FALSE(cold->ground_cache_hit);
  const auto warm = router.fetch(client, data::country("MZ"), item(43), rng, kNow);
  ASSERT_TRUE(warm.has_value());
  ASSERT_EQ(warm->tier, FetchTier::kGround);
  EXPECT_TRUE(warm->ground_cache_hit);
  EXPECT_LT(warm->rtt.value(), cold->rtt.value());
}

TEST(Router, NoCoverageReturnsNullopt) {
  const auto& net = shell1();
  SatelliteFleet fleet(net.constellation().size(), small_fleet_config());
  cdn::CdnDeployment ground(data::cdn_sites(), {});
  SpaceCdnRouter router(net, fleet, ground);
  des::Rng rng(7);
  EXPECT_FALSE(
      router.fetch({89.0, 0.0, 0.0}, data::country("US"), item(5), rng, kNow).has_value());
}

TEST(DutyCycle, NewSlotEnablesRequestedFraction) {
  const auto& net = shell1();
  SatelliteFleet fleet(net.constellation().size(), small_fleet_config());
  DutyCycleConfig cfg;
  cfg.cache_fraction = 0.5;
  DutyCycleSimulation sim(net, fleet, cfg);
  des::Rng rng(8);
  sim.new_slot(rng);
  EXPECT_EQ(fleet.enabled_count(), 792u);
}

TEST(DutyCycle, FullFractionMatchesDirectOverhead) {
  const auto& net = shell1();
  SatelliteFleet fleet(net.constellation().size(), small_fleet_config());
  DutyCycleConfig cfg;
  cfg.cache_fraction = 1.0;
  DutyCycleSimulation sim(net, fleet, cfg);
  des::Rng rng(9);
  sim.new_slot(rng);
  const auto rtt = sim.sample_fetch_rtt(data::location(data::city("London")), rng);
  ASSERT_TRUE(rtt.has_value());
  // Every satellite caches: zero ISL relays, so uplink + access only.
  EXPECT_LT(rtt->value(), 60.0);
}

TEST(DutyCycle, LowerFractionHigherLatency) {
  const auto& net = shell1();
  SatelliteFleet fleet(net.constellation().size(), small_fleet_config());
  des::Rng rng(10);
  const std::vector<geo::GeoPoint> clients{data::location(data::city("London")),
                                           data::location(data::city("Sao Paulo")),
                                           data::location(data::city("Tokyo"))};
  double prev_median = 0.0;
  for (const double fraction : {0.8, 0.3, 0.05}) {
    DutyCycleConfig cfg;
    cfg.cache_fraction = fraction;
    DutyCycleSimulation sim(net, fleet, cfg);
    const auto samples = sim.run(clients, 10, 5, rng);
    EXPECT_GT(samples.median(), prev_median);
    prev_median = samples.median();
  }
}

TEST(DutyCycle, RejectsBadFraction) {
  const auto& net = shell1();
  SatelliteFleet fleet(net.constellation().size(), small_fleet_config());
  DutyCycleConfig cfg;
  cfg.cache_fraction = 0.0;
  EXPECT_THROW(DutyCycleSimulation(net, fleet, cfg), ConfigError);
}

TEST(Striping, PlanCoversWholeVideo) {
  const StripingPlanner planner(shell1().constellation());
  const auto plan = planner.plan(data::location(data::city("London")), kNow,
                                 Milliseconds::from_minutes(30.0),
                                 Milliseconds::from_minutes(4.0));
  ASSERT_EQ(plan.size(), 8u);  // ceil(30 / 4)
  EXPECT_DOUBLE_EQ(plan.front().start.value(), 0.0);
  EXPECT_DOUBLE_EQ(plan.back().end.value(), Milliseconds::from_minutes(30.0).value());
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_DOUBLE_EQ(plan[i].start.value(), plan[i - 1].end.value());
  }
}

TEST(Striping, SuccessiveStripesUseDifferentSatellites) {
  // Satellites leave view within 5-10 minutes (paper section 2), so stripes
  // minutes apart are served by different satellites.
  const StripingPlanner planner(shell1().constellation());
  const auto plan = planner.plan(data::location(data::city("Tokyo")), kNow,
                                 Milliseconds::from_minutes(20.0),
                                 Milliseconds::from_minutes(5.0));
  ASSERT_GE(plan.size(), 3u);
  ASSERT_TRUE(plan[0].satellite && plan[2].satellite);
  EXPECT_NE(*plan[0].satellite, *plan[2].satellite);
}

TEST(Striping, StripedBeatsGroundForRemoteUsers) {
  const auto& net = shell1();
  const StripingPlanner planner(net.constellation());
  const StripedPlaybackSimulator sim(net, planner);
  des::Rng rng(11);
  const geo::GeoPoint user = data::location(data::city("Maputo"));
  const auto striped =
      sim.simulate_striped(user, data::country("MZ"), Milliseconds::from_minutes(20.0),
                           Milliseconds::from_minutes(4.0), Megabytes{180.0}, rng);
  const auto ground =
      sim.simulate_ground(user, data::country("MZ"), Milliseconds::from_minutes(20.0),
                          Milliseconds::from_minutes(4.0), Megabytes{180.0}, rng);
  EXPECT_EQ(striped.stripes_total, 5u);
  EXPECT_GT(striped.stripes_from_space, 0u);
  EXPECT_LT(striped.mean_stripe_rtt.value(), ground.mean_stripe_rtt.value());
  EXPECT_GT(striped.prefetch_upload.value(), 0.0);
}

TEST(Striping, RejectsBadDurations) {
  const StripingPlanner planner(shell1().constellation());
  EXPECT_THROW((void)planner.plan({0, 0, 0}, kNow, Milliseconds{0.0}, Milliseconds{1.0}),
               ConfigError);
}

TEST(Bubbles, RegionUnderSubpoint) {
  des::Rng rng(12);
  const cdn::ContentCatalog catalog({.object_count = 100}, rng);
  const cdn::RegionalPopularity pop(100, {});
  const ContentBubbleManager bubbles(catalog, pop, {});
  EXPECT_EQ(bubbles.region_under(data::location(data::city("Nairobi"))),
            data::Region::kAfrica);
  EXPECT_EQ(bubbles.region_under(data::location(data::city("Paris"))),
            data::Region::kEurope);
}

TEST(Bubbles, RefreshPrefetchesRegionalHead) {
  des::Rng rng(13);
  const cdn::ContentCatalog catalog({.object_count = 1000}, rng);
  const cdn::RegionalPopularity pop(1000, {});
  BubbleConfig cfg;
  cfg.prefetch_top_k = 50;
  const ContentBubbleManager bubbles(catalog, pop, cfg);

  SatelliteFleet fleet(4, FleetConfig{Megabytes{1e6}, cdn::CachePolicy::kLru});
  const geo::GeoPoint over_africa = data::location(data::city("Kigali"));
  const auto inserted = bubbles.refresh(fleet, 0, over_africa, kNow);
  EXPECT_EQ(inserted, 50u);
  for (cdn::ContentId id : pop.top_k(data::Region::kAfrica, 50)) {
    EXPECT_TRUE(fleet.cache(0).contains(id));
  }
}

TEST(Bubbles, CrossingRegionsSwapsContent) {
  des::Rng rng(14);
  const cdn::ContentCatalog catalog({.object_count = 2000}, rng);
  cdn::PopularityConfig pop_cfg;
  pop_cfg.global_share = 0.0;  // fully regional content
  const cdn::RegionalPopularity pop(2000, pop_cfg);
  BubbleConfig cfg;
  cfg.prefetch_top_k = 100;
  const ContentBubbleManager bubbles(catalog, pop, cfg);

  SatelliteFleet fleet(1, FleetConfig{Megabytes{1e6}, cdn::CachePolicy::kLru});
  (void)bubbles.refresh(fleet, 0, data::location(data::city("New York")), kNow);
  const auto na_stats = fleet.cache(0).object_count();
  (void)bubbles.refresh(fleet, 0, data::location(data::city("Berlin")), kNow);
  // The European head is now resident...
  std::uint64_t resident_eu = 0;
  for (cdn::ContentId id : pop.top_k(data::Region::kEurope, 100)) {
    resident_eu += fleet.cache(0).contains(id) ? 1 : 0;
  }
  EXPECT_EQ(resident_eu, 100u);
  // ...and foreign unpopular objects were evicted rather than accumulated.
  EXPECT_LE(fleet.cache(0).object_count(), na_stats + 100);
}

TEST(Facade, PublishFetchRoundTrip) {
  SpaceCdnConfig cfg;
  cfg.fleet.capacity_per_satellite = Megabytes{1000.0};
  SpaceCdn spacecdn(cfg);
  des::Rng rng(15);
  const cdn::ContentItem obj = item(99, 25.0);
  spacecdn.publish(obj);
  const auto result = spacecdn.fetch("Maputo", obj, rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->tier, FetchTier::kGround);  // replicas are in orbit
  const auto baseline = spacecdn.bent_pipe_baseline("Maputo");
  ASSERT_TRUE(baseline.has_value());
  EXPECT_LT(result->rtt.value(), baseline->value() / 2.0);
}

TEST(Facade, UnpublishedContentFallsToGround) {
  SpaceCdnConfig cfg;
  cfg.fleet.capacity_per_satellite = Megabytes{1000.0};
  cfg.router.admit_on_fetch = false;
  SpaceCdn spacecdn(cfg);
  des::Rng rng(16);
  const auto result = spacecdn.fetch("Tokyo", item(123, 5.0), rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->tier, FetchTier::kGround);
}

TEST(Facade, SetTimeAdvancesNetwork) {
  SpaceCdnConfig cfg;
  cfg.fleet.capacity_per_satellite = Megabytes{1000.0};
  SpaceCdn spacecdn(cfg);
  spacecdn.set_time(Milliseconds::from_minutes(3.0));
  EXPECT_DOUBLE_EQ(spacecdn.time().value(), 180000.0);
  // Fetch still works against the new topology.
  des::Rng rng(17);
  const cdn::ContentItem obj = item(7, 5.0);
  spacecdn.publish(obj);
  EXPECT_TRUE(spacecdn.fetch("London", obj, rng).has_value());
}

TEST(Facade, UnknownCityThrows) {
  SpaceCdnConfig cfg;
  cfg.fleet.capacity_per_satellite = Megabytes{1000.0};
  SpaceCdn spacecdn(cfg);
  des::Rng rng(18);
  EXPECT_THROW((void)spacecdn.fetch("Atlantis", item(1, 1.0), rng), NotFoundError);
}

}  // namespace
}  // namespace spacecdn::space
