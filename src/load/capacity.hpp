// Finite link capacities for the load engine: event-driven queues and
// admission control.
//
// The latency-only experiments treat links as infinitely fast; under
// request-level load that hides the very effect the paper worries about
// (section 3.2: loaded Starlink paths exceed 200 ms).  Here every
// bottleneck link is a single-server queue driven by des::Simulator, so a
// transfer's completion time is propagation + serialization + the queueing
// its bytes actually experience.  Cut-through links of a multi-hop ISL path
// are charged analytically via net::LinkLoad; the bottleneck hop (satellite
// downlink, gateway feeder) gets an explicit queue.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "des/simulator.hpp"
#include "util/units.hpp"

namespace spacecdn::load {

/// Service order of a LinkQueue.
enum class QueueDiscipline {
  kFifo,  ///< strict arrival order
  kDrr,   ///< deficit round robin across flow classes (per-city fairness)
};

[[nodiscard]] QueueDiscipline parse_queue_discipline(const std::string& name);

/// Capacity annotations of every contended resource, in one place so a
/// single `link-capacity` scale knob can tighten or relax the whole system.
struct CapacityConfig {
  /// Aggregate Ku-band downlink of one satellite across its beams.
  Mbps satellite_downlink{16'000.0};
  /// Aggregate uplink (request path; requests are small, so this only
  /// matters under extreme asymmetry).
  Mbps satellite_uplink{4'000.0};
  /// Gateway (ground-station) feeder-link capacity.
  Mbps gateway{10'000.0};
  /// Optical ISL line rate.
  Mbps isl{100'000.0};
  QueueDiscipline discipline = QueueDiscipline::kFifo;
  /// DRR quantum added to a flow class's deficit per round.
  Megabytes drr_quantum{8.0};
  /// Concurrent transfers one satellite serves before admission rejects
  /// (onboard radio scheduler slots); 0 disables admission control.
  std::size_t max_transfers_per_satellite = 64;
  /// Rejections within one rolling second that trip the flight recorder
  /// ("admission-reject-storm"); 0 disables storm detection.
  std::size_t reject_storm_threshold = 256;

  /// Scales every rate by `k` (the `link-capacity` scenario knob).
  [[nodiscard]] CapacityConfig scaled(double k) const noexcept;
};

/// One single-server queue over a finite-rate link, driven by the simulator.
///
/// submit() enqueues a transfer; its completion callback fires when the last
/// byte has been serialized, carrying the queueing delay the transfer saw.
/// FIFO serves in arrival order; DRR round-robins across flow classes with a
/// per-round byte quantum, so one city's elephant cannot starve the others.
class LinkQueue {
 public:
  using Completion = std::function<void(Milliseconds queue_wait)>;

  /// @throws spacecdn::ConfigError on non-positive capacity or quantum.
  LinkQueue(des::Simulator& sim, Mbps capacity,
            QueueDiscipline discipline = QueueDiscipline::kFifo,
            Megabytes drr_quantum = Megabytes{8.0});

  /// Enqueues `volume` for transmission; `done(queue_wait)` runs at service
  /// completion.  `flow_class` selects the DRR class (ignored under FIFO).
  void submit(Megabytes volume, std::uint64_t flow_class, Completion done);

  [[nodiscard]] Mbps capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t peak_depth() const noexcept { return peak_depth_; }
  [[nodiscard]] std::uint64_t served() const noexcept { return served_; }
  [[nodiscard]] Megabytes carried() const noexcept { return carried_; }
  /// Total time the server spent transmitting.
  [[nodiscard]] Milliseconds busy_time() const noexcept { return busy_time_; }
  /// Busy fraction over [0, horizon].
  [[nodiscard]] double utilization(Milliseconds horizon) const noexcept;

 private:
  struct Pending {
    Megabytes volume;
    std::uint64_t flow_class = 0;
    Completion done;
    Milliseconds enqueued_at{0.0};
  };

  /// Starts the next transfer if the server is idle and work is pending.
  void start_next();
  /// Removes and returns the next transfer per the discipline.
  [[nodiscard]] Pending pop_next();

  des::Simulator* sim_;
  Mbps capacity_;
  QueueDiscipline discipline_;
  Megabytes quantum_;
  bool busy_ = false;

  std::deque<Pending> fifo_;
  // DRR state: classes in activation order, each with its backlog + deficit.
  struct DrrClass {
    std::deque<Pending> backlog;
    double deficit_mb = 0.0;
  };
  std::map<std::uint64_t, DrrClass> classes_;
  std::vector<std::uint64_t> active_classes_;
  std::size_t rr_cursor_ = 0;

  std::size_t depth_ = 0;
  std::size_t peak_depth_ = 0;
  std::uint64_t served_ = 0;
  Megabytes carried_{0.0};
  Milliseconds busy_time_{0.0};
};

/// Per-satellite concurrent-transfer cap with a backpressure hook.
///
/// A satellite's radio scheduler serves a bounded number of simultaneous
/// flows; beyond it the load engine *rejects* rather than queues, which is
/// what keeps tail latency bounded past saturation (the ablation_overload
/// bench's graceful-degradation claim).  The reject hook feeds rejections
/// into the degradation policy (load/degradation.hpp: hot-satellite marks,
/// shed-to-ground); independent of any hook, every rejection lands in
/// obs::metrics() and a rejection storm (reject_storm_threshold drops
/// inside one rolling second) trips the flight recorder.
class AdmissionController {
 public:
  using RejectHook = std::function<void(std::uint32_t satellite, std::size_t active)>;

  /// `max_concurrent` == 0 disables the cap (everything admits);
  /// `reject_storm_threshold` == 0 disables storm detection.
  AdmissionController(std::uint32_t satellite_count, std::size_t max_concurrent,
                      std::size_t reject_storm_threshold = 0);

  /// Admits a transfer on `satellite`, or counts a rejection and fires the
  /// hook.  `now` timestamps storm detection and the flight-recorder trip
  /// (callers outside a simulation may leave it at zero).  Every successful
  /// try_admit must be paired with release().
  [[nodiscard]] bool try_admit(std::uint32_t satellite,
                               Milliseconds now = Milliseconds{0.0});
  void release(std::uint32_t satellite);

  void set_reject_hook(RejectHook hook) { reject_hook_ = std::move(hook); }

  [[nodiscard]] std::size_t active(std::uint32_t satellite) const;
  [[nodiscard]] std::size_t peak_active() const noexcept { return peak_active_; }
  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  /// Reject storms detected (threshold crossings, at most one per window).
  [[nodiscard]] std::uint64_t storms() const noexcept { return storms_; }
  [[nodiscard]] std::size_t max_concurrent() const noexcept { return max_concurrent_; }

 private:
  std::size_t max_concurrent_;
  std::vector<std::size_t> active_;
  std::size_t peak_active_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  RejectHook reject_hook_;
  /// Rolling one-second reject window for storm detection.
  std::size_t reject_storm_threshold_;
  Milliseconds storm_window_start_{0.0};
  std::size_t storm_window_rejects_ = 0;
  std::uint64_t storms_ = 0;
};

}  // namespace spacecdn::load
