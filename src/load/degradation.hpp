// Degradation policy: what the load engine does when admission says no.
//
// AdmissionController bounds the concurrent transfers one satellite serves;
// without a policy every rejection is simply a lost request.  The policy
// turns the reject hook into load shedding: a rejecting satellite is marked
// *hot* for a window, the router's serving filter steers new arrivals to
// other visible satellites, and (optionally) the rejected request itself is
// retried once in bent-pipe-only mode -- shed to the ground tier, today's
// CDN path -- through an alternate serving satellite.  Both mechanisms trade
// a little latency for availability, which is exactly the graceful-
// degradation story the chaos scenarios measure.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace spacecdn::load {

/// Degradation knobs; disabled by default so existing load runs (and their
/// checksums) are untouched.
struct DegradationConfig {
  /// Master switch: mark hot satellites and install the serving filter.
  bool enabled = false;
  /// Retry a rejected request once over the ground tier via an alternate
  /// serving satellite.
  bool shed_to_ground = true;
  /// How long one rejection keeps a satellite marked hot.
  Milliseconds hot_window{2'000.0};
};

/// Tracks per-satellite hot marks fed by admission rejections.
class DegradationPolicy {
 public:
  DegradationPolicy(std::uint32_t satellite_count, DegradationConfig config);

  /// Marks `satellite` hot until now + hot_window (the admission reject
  /// hook calls this).
  void on_reject(std::uint32_t satellite, Milliseconds now);

  /// Whether `satellite` is inside a hot window at `now`.
  [[nodiscard]] bool hot(std::uint32_t satellite, Milliseconds now) const;

  /// Distinct times a satellite entered a hot window (re-marks inside an
  /// active window only extend it).
  [[nodiscard]] std::uint64_t hot_marks() const noexcept { return hot_marks_; }

  /// Satellites currently inside a hot window (a series-recorder gauge).
  [[nodiscard]] std::size_t hot_count(Milliseconds now) const noexcept;

  [[nodiscard]] const DegradationConfig& config() const noexcept { return config_; }

 private:
  DegradationConfig config_;
  /// Per-satellite hot-until timestamp; <= now means not hot.
  std::vector<Milliseconds> hot_until_;
  std::uint64_t hot_marks_ = 0;
};

}  // namespace spacecdn::load
