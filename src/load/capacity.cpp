#include "load/capacity.hpp"

#include <algorithm>
#include <cctype>
#include <utility>

#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace spacecdn::load {

QueueDiscipline parse_queue_discipline(const std::string& name) {
  std::string lower;
  for (const char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "fifo") return QueueDiscipline::kFifo;
  if (lower == "drr") return QueueDiscipline::kDrr;
  throw ConfigError("unknown queue discipline '" + name + "' (fifo/drr)");
}

CapacityConfig CapacityConfig::scaled(double k) const noexcept {
  CapacityConfig out = *this;
  out.satellite_downlink = satellite_downlink * k;
  out.satellite_uplink = satellite_uplink * k;
  out.gateway = gateway * k;
  out.isl = isl * k;
  return out;
}

LinkQueue::LinkQueue(des::Simulator& sim, Mbps capacity, QueueDiscipline discipline,
                     Megabytes drr_quantum)
    : sim_(&sim), capacity_(capacity), discipline_(discipline), quantum_(drr_quantum) {
  SPACECDN_EXPECT(capacity.value() > 0.0, "link queue needs positive capacity");
  SPACECDN_EXPECT(discipline != QueueDiscipline::kDrr || drr_quantum.value() > 0.0,
                  "DRR needs a positive quantum");
}

void LinkQueue::submit(Megabytes volume, std::uint64_t flow_class, Completion done) {
  Pending pending{volume, flow_class, std::move(done), sim_->now()};
  if (discipline_ == QueueDiscipline::kFifo) {
    fifo_.push_back(std::move(pending));
  } else {
    DrrClass& cls = classes_[flow_class];
    if (cls.backlog.empty()) active_classes_.push_back(flow_class);
    cls.backlog.push_back(std::move(pending));
  }
  ++depth_;
  peak_depth_ = std::max(peak_depth_, depth_);
  start_next();
}

LinkQueue::Pending LinkQueue::pop_next() {
  if (discipline_ == QueueDiscipline::kFifo) {
    Pending next = std::move(fifo_.front());
    fifo_.pop_front();
    return next;
  }
  // DRR: visit active classes round-robin, topping up each deficit by one
  // quantum per visit, until some head-of-class transfer fits.  Deficits
  // grow every round, so the loop terminates for any transfer size.
  for (;;) {
    if (rr_cursor_ >= active_classes_.size()) rr_cursor_ = 0;
    DrrClass& cls = classes_[active_classes_[rr_cursor_]];
    cls.deficit_mb += quantum_.value();
    if (cls.backlog.front().volume.value() <= cls.deficit_mb) {
      Pending next = std::move(cls.backlog.front());
      cls.backlog.pop_front();
      cls.deficit_mb -= next.volume.value();
      if (cls.backlog.empty()) {
        // An emptied class leaves the round and forfeits its deficit.
        cls.deficit_mb = 0.0;
        active_classes_.erase(active_classes_.begin() +
                              static_cast<std::ptrdiff_t>(rr_cursor_));
      } else {
        ++rr_cursor_;
      }
      return next;
    }
    ++rr_cursor_;
  }
}

void LinkQueue::start_next() {
  if (busy_ || depth_ == 0) return;
  busy_ = true;
  Pending next = pop_next();
  const Milliseconds serialization = transmission_delay(next.volume, capacity_);
  const Milliseconds wait = sim_->now() - next.enqueued_at;
  busy_time_ += serialization;
  carried_ += next.volume;
  --depth_;
  sim_->schedule(serialization, [this, wait, done = std::move(next.done)]() {
    busy_ = false;
    ++served_;
    if (done) done(wait);
    start_next();
  });
}

double LinkQueue::utilization(Milliseconds horizon) const noexcept {
  if (horizon.value() <= 0.0) return 0.0;
  return busy_time_ / horizon;
}

AdmissionController::AdmissionController(std::uint32_t satellite_count,
                                         std::size_t max_concurrent,
                                         std::size_t reject_storm_threshold)
    : max_concurrent_(max_concurrent),
      active_(satellite_count, 0),
      reject_storm_threshold_(reject_storm_threshold) {}

bool AdmissionController::try_admit(std::uint32_t satellite, Milliseconds now) {
  SPACECDN_EXPECT(satellite < active_.size(), "admission: satellite out of range");
  if (max_concurrent_ != 0 && active_[satellite] >= max_concurrent_) {
    ++rejected_;
    static obs::CounterHandle rejected_total{"spacecdn_admission_rejected_total"};
    rejected_total.inc();
    if (reject_storm_threshold_ != 0) {
      if (now - storm_window_start_ >= Milliseconds{1'000.0}) {
        storm_window_start_ = now;
        storm_window_rejects_ = 0;
      }
      // Trip exactly once per window, at the crossing.
      if (++storm_window_rejects_ == reject_storm_threshold_) {
        ++storms_;
        if (auto* recorder = obs::recorder()) {
          recorder->trip("admission-reject-storm", now);
        }
      }
    }
    if (reject_hook_) reject_hook_(satellite, active_[satellite]);
    return false;
  }
  ++active_[satellite];
  ++admitted_;
  peak_active_ = std::max(peak_active_, active_[satellite]);
  return true;
}

void AdmissionController::release(std::uint32_t satellite) {
  SPACECDN_EXPECT(satellite < active_.size() && active_[satellite] > 0,
                  "admission: release without matching admit");
  --active_[satellite];
}

std::size_t AdmissionController::active(std::uint32_t satellite) const {
  SPACECDN_EXPECT(satellite < active_.size(), "admission: satellite out of range");
  return active_[satellite];
}

}  // namespace spacecdn::load
