#include "load/traffic.hpp"

#include <cstdlib>
#include <utility>

#include "geo/distance.hpp"
#include "util/error.hpp"

namespace spacecdn::load {

std::vector<BurstStep> parse_burst_trace(const std::string& text) {
  std::vector<BurstStep> steps;
  if (text.empty()) return steps;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string pair =
        text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const std::size_t colon = pair.find(':');
    SPACECDN_EXPECT(colon != std::string::npos && colon > 0 && colon + 1 < pair.size(),
                    "burst trace expects seconds:multiplier pairs, got '" + pair + "'");
    char* end = nullptr;
    const double seconds = std::strtod(pair.c_str(), &end);
    SPACECDN_EXPECT(end == pair.c_str() + colon,
                    "burst trace: bad time in '" + pair + "'");
    const double multiplier = std::strtod(pair.c_str() + colon + 1, &end);
    SPACECDN_EXPECT(end == pair.c_str() + pair.size(),
                    "burst trace: bad multiplier in '" + pair + "'");
    SPACECDN_EXPECT(seconds >= 0.0 && multiplier >= 0.0,
                    "burst trace: negative values in '" + pair + "'");
    const Milliseconds start = Milliseconds::from_seconds(seconds);
    SPACECDN_EXPECT(steps.empty() || start > steps.back().start,
                    "burst trace: times must be strictly increasing");
    steps.push_back({start, multiplier});
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return steps;
}

TrafficModel::TrafficModel(std::vector<sim::Shell1Client> clients, TrafficConfig config)
    : clients_(std::move(clients)),
      config_(std::move(config)),
      catalog_rng_(config_.catalog_seed),
      catalog_(config_.catalog, catalog_rng_),
      popularity_(config_.catalog.object_count, config_.popularity) {
  SPACECDN_EXPECT(config_.requests_per_second > 0.0,
                  "traffic requests_per_second must be positive");
  SPACECDN_EXPECT(!clients_.empty(), "traffic model needs at least one client city");
  double total_population_k = 0.0;
  for (const auto& client : clients_) total_population_k += client.city->population_k;
  SPACECDN_EXPECT(total_population_k > 0.0, "client cities carry zero population");
  city_rate_rps_.reserve(clients_.size());
  for (const auto& client : clients_) {
    city_rate_rps_.push_back(config_.requests_per_second * client.city->population_k /
                             total_population_k);
  }
  if (config_.surge.enabled()) {
    city_in_surge_region_.reserve(clients_.size());
    for (const auto& client : clients_) {
      city_in_surge_region_.push_back(
          geo::great_circle_distance(config_.surge.center,
                                     data::location(*client.city)) <=
          config_.surge.radius);
    }
  }
}

double TrafficModel::city_rate_rps(std::size_t client_index) const {
  SPACECDN_EXPECT(client_index < city_rate_rps_.size(), "client index out of range");
  return city_rate_rps_[client_index];
}

double TrafficModel::rate_multiplier(Milliseconds now) const noexcept {
  double multiplier = 1.0;
  for (const BurstStep& step : config_.burst) {
    if (step.start > now) break;
    multiplier = step.multiplier;
  }
  return multiplier;
}

double TrafficModel::surge_multiplier(std::size_t client_index, Milliseconds now) const {
  SPACECDN_EXPECT(client_index < clients_.size(), "client index out of range");
  if (city_in_surge_region_.empty() || !config_.surge.active(now)) return 1.0;
  return city_in_surge_region_[client_index] ? config_.surge.multiplier : 1.0;
}

Milliseconds TrafficModel::next_interarrival(std::size_t client_index, Milliseconds now,
                                             des::Rng& rng) const {
  const double rate_rps = city_rate_rps(client_index) * rate_multiplier(now) *
                          surge_multiplier(client_index, now);
  if (rate_rps <= 0.0) return Milliseconds::from_seconds(1e9);  // effectively never
  return Milliseconds::from_seconds(rng.exponential(1.0 / rate_rps));
}

const cdn::ContentItem& TrafficModel::sample_object(const data::CountryInfo& country,
                                                    des::Rng& rng) const {
  return catalog_.item(popularity_.sample(country.region, rng));
}

}  // namespace spacecdn::load
