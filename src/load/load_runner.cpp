#include "load/load_runner.hpp"

#include <algorithm>
#include <utility>

#include "data/datasets.hpp"
#include "obs/telemetry.hpp"
#include "spacecdn/placement.hpp"
#include "util/error.hpp"

namespace spacecdn::load {

namespace {

space::RouterConfig router_config(const LoadConfig& config) {
  space::RouterConfig rc;
  rc.max_isl_hops = config.max_isl_hops;
  rc.record_paths = true;  // the engine charges transfers against the links
  return rc;
}

/// Directed ISL link key: content flows from -> to.
constexpr std::uint64_t link_key(std::uint32_t from, std::uint32_t to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

LoadRunner::LoadRunner(const lsn::StarlinkNetwork& network, space::SatelliteFleet& fleet,
                       cdn::CdnDeployment& ground_cdn,
                       std::vector<sim::Shell1Client> clients, LoadConfig config)
    : network_(&network),
      fleet_(&fleet),
      config_(std::move(config)),
      traffic_(std::move(clients), config_.traffic),
      router_(network, fleet, ground_cdn, router_config(config_)),
      admission_(fleet.size(), config_.capacity.max_transfers_per_satellite),
      downlink_queues_(fleet.size()) {
  const auto& cities = traffic_.clients();
  city_rng_.reserve(cities.size());
  city_country_.reserve(cities.size());
  city_location_.reserve(cities.size());
  for (const sim::Shell1Client& client : cities) {
    // Streams key on the *dataset* index, so a coverage-filtered client set
    // draws the same numbers as the unfiltered one (fig7's convention).
    city_rng_.emplace_back(des::mix_seed(config_.seed, client.dataset_index));
    city_country_.push_back(&data::country(client.city->country_code));
    city_location_.push_back(data::location(*client.city));
  }
}

void LoadRunner::set_reject_hook(AdmissionController::RejectHook hook) {
  admission_.set_reject_hook(std::move(hook));
}

LoadReport LoadRunner::run() {
  // Prewarm replicas across the constellation so tier (ii) has content to
  // find (the paper's in-plane placement argument, section 4).
  if (config_.copies_per_plane > 0) {
    const space::ContentPlacement placement(
        network_->constellation(),
        {config_.copies_per_plane, config_.placement_plane_stride});
    for (const cdn::ContentItem& item : traffic_.catalog().items()) {
      placement.place(*fleet_, item, Milliseconds{0.0});
    }
  }

  for (std::size_t i = 0; i < traffic_.clients().size(); ++i) {
    schedule_next_arrival(i);
  }
  sim_.run();

  report_.rejected = admission_.rejected();
  report_.peak_active_transfers = admission_.peak_active();
  report_.satellite_utilization.assign(fleet_->size(), 0.0);
  for (std::uint32_t sat = 0; sat < downlink_queues_.size(); ++sat) {
    if (!downlink_queues_[sat]) continue;
    const double util = downlink_queues_[sat]->utilization(config_.horizon);
    report_.satellite_utilization[sat] = util;
    report_.max_utilization = std::max(report_.max_utilization, util);
    report_.peak_queue_depth =
        std::max(report_.peak_queue_depth, downlink_queues_[sat]->peak_depth());
  }
  for (const auto& queue : gateway_queues_) {
    if (queue) report_.peak_queue_depth = std::max(report_.peak_queue_depth, queue->peak_depth());
  }
  report_.goodput_mbps = report_.delivered.megabits() / config_.horizon.seconds();

  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("spacecdn_load_requests_total", {{"result", "completed"}})
        .inc(report_.completed);
    m->counter("spacecdn_load_requests_total", {{"result", "rejected"}})
        .inc(report_.rejected);
    m->counter("spacecdn_load_requests_total", {{"result", "no_coverage"}})
        .inc(report_.no_coverage);
    for (std::size_t t = 0; t < report_.tier.size(); ++t) {
      m->counter("spacecdn_load_served_total",
                 {{"tier", std::string(space::to_string(
                               static_cast<space::FetchTier>(t)))}})
          .inc(report_.tier[t]);
    }
    auto& latency = m->histogram("spacecdn_load_latency_ms");
    for (const double v : report_.latency_ms.raw()) latency.observe(v);
    auto& util = m->histogram("spacecdn_load_satellite_utilization", {},
                              {0.0, 1.0, 20});
    for (const double u : report_.satellite_utilization) {
      if (u > 0.0) util.observe(u);
    }
    m->gauge("spacecdn_load_goodput_mbps").set(report_.goodput_mbps);
    m->gauge("spacecdn_load_peak_queue_depth")
        .set(static_cast<double>(report_.peak_queue_depth));
    m->gauge("spacecdn_load_peak_active_transfers")
        .set(static_cast<double>(report_.peak_active_transfers));
  }
  return report_;
}

void LoadRunner::schedule_next_arrival(std::size_t client_index) {
  const Milliseconds gap =
      traffic_.next_interarrival(client_index, sim_.now(), city_rng_[client_index]);
  if (sim_.now() + gap >= config_.horizon) return;  // open loop ends at horizon
  sim_.schedule(gap, [this, client_index] { handle_arrival(client_index); });
}

void LoadRunner::handle_arrival(std::size_t client_index) {
  // Open loop: the next arrival is scheduled before this one is served, so
  // a congested system keeps receiving offered load (no coordinated
  // omission).
  schedule_next_arrival(client_index);
  ++report_.offered;

  des::Rng& rng = city_rng_[client_index];
  const data::CountryInfo& country = *city_country_[client_index];
  const cdn::ContentItem& item = traffic_.sample_object(country, rng);
  const Milliseconds arrival = sim_.now();
  const auto fetch =
      router_.fetch(city_location_[client_index], country, item, rng, arrival);
  if (!fetch) {
    ++report_.no_coverage;
    return;
  }
  const std::uint32_t serving = fetch->serving_satellite;
  if (!admission_.try_admit(serving)) return;  // counted by the controller

  const space::FetchTier tier = fetch->tier;
  const Milliseconds first_byte = fetch->rtt;
  const Megabytes volume = item.size;
  const std::uint64_t flow = traffic_.clients()[client_index].dataset_index;
  const Milliseconds isl_wait = charge_isl_path(fetch->isl_path, volume);

  // The downlink is the final (and usually bottleneck) hop of every tier.
  auto to_downlink = [this, client_index, tier, first_byte, isl_wait, arrival, serving,
                      volume, flow](Milliseconds upstream_wait) {
    downlink_queue(serving).submit(
        volume, flow,
        [this, client_index, tier, first_byte, isl_wait, arrival, serving, volume,
         upstream_wait](Milliseconds wait) {
          finish_transfer(client_index, tier, first_byte, isl_wait, arrival, serving,
                          volume, upstream_wait + wait);
        });
  };

  if (tier == space::FetchTier::kGround && fetch->gateway) {
    // Tier (iii) rides the gateway feeder up, then the ISL path to the
    // serving satellite, then the downlink -- three stages in series.
    gateway_queue(*fetch->gateway)
        .submit(volume, flow, [this, to_downlink, isl_wait](Milliseconds gw_wait) {
          if (isl_wait.value() > 0.0) {
            sim_.schedule(isl_wait,
                          [to_downlink, gw_wait] { to_downlink(gw_wait); });
          } else {
            to_downlink(gw_wait);
          }
        });
  } else if (isl_wait.value() > 0.0) {
    sim_.schedule(isl_wait, [to_downlink] { to_downlink(Milliseconds{0.0}); });
  } else {
    to_downlink(Milliseconds{0.0});
  }
}

Milliseconds LoadRunner::charge_isl_path(const std::vector<std::uint32_t>& path,
                                         Megabytes volume) {
  Milliseconds wait{0.0};
  if (path.size() < 2) return wait;
  const Milliseconds serialization = transmission_delay(volume, config_.capacity.isl);
  // The recorded path runs serving -> holder; content flows the other way.
  // Cut-through forwarding pipelines serialization across hops, so only the
  // per-link backlog waits accumulate (serialization itself is charged at
  // the slower downlink hop).
  for (std::size_t k = path.size() - 1; k > 0; --k) {
    net::LinkLoad& load = isl_load_[link_key(path[k], path[k - 1])];
    wait += load.charge(sim_.now() + wait, serialization, volume);
  }
  return wait;
}

LinkQueue& LoadRunner::downlink_queue(std::uint32_t satellite) {
  auto& slot = downlink_queues_[satellite];
  if (!slot) {
    slot = std::make_unique<LinkQueue>(sim_, config_.capacity.satellite_downlink,
                                       config_.capacity.discipline,
                                       config_.capacity.drr_quantum);
  }
  return *slot;
}

LinkQueue& LoadRunner::gateway_queue(std::size_t gateway) {
  if (gateway >= gateway_queues_.size()) gateway_queues_.resize(gateway + 1);
  auto& slot = gateway_queues_[gateway];
  if (!slot) {
    slot = std::make_unique<LinkQueue>(sim_, config_.capacity.gateway,
                                       config_.capacity.discipline,
                                       config_.capacity.drr_quantum);
  }
  return *slot;
}

void LoadRunner::finish_transfer(std::size_t client_index, space::FetchTier tier,
                                 Milliseconds first_byte, Milliseconds isl_wait,
                                 Milliseconds arrival, std::uint32_t serving,
                                 Megabytes volume, Milliseconds queue_wait) {
  (void)client_index;
  admission_.release(serving);
  ++report_.completed;
  ++report_.tier[static_cast<std::size_t>(tier)];
  // sim time since arrival already contains every queueing + serialization
  // stage (the ISL wait was materialised as a schedule delay); the first
  // byte's RTT rides on top.
  const Milliseconds transfer = sim_.now() - arrival;
  report_.latency_ms.add((first_byte + transfer).value());
  report_.queue_wait_ms.add((queue_wait + isl_wait).value());
  report_.delivered += volume;
}

LoadConfig load_config_from_spec(const sim::ScenarioSpec& spec) {
  LoadConfig config;
  config.traffic.requests_per_second = spec.arrival_rate_rps;
  config.traffic.catalog = object_size_preset(spec.object_size_dist);
  config.traffic.burst = parse_burst_trace(spec.burst_trace);
  config.horizon = Milliseconds::from_seconds(spec.load_horizon_s);
  config.seed = spec.seed;

  const lsn::StarlinkConfig preset = lsn::starlink_preset(spec.constellation);
  CapacityConfig capacity;
  capacity.satellite_downlink = preset.access.satellite_downlink_aggregate;
  capacity.satellite_uplink = preset.access.satellite_uplink_aggregate;
  capacity.gateway = preset.access.gateway_aggregate;
  capacity.isl = preset.isl.capacity;
  capacity.discipline = parse_queue_discipline(spec.queue_discipline);
  config.capacity = capacity.scaled(spec.link_capacity_scale);
  return config;
}

cdn::CatalogConfig object_size_preset(const std::string& name) {
  cdn::CatalogConfig config;
  if (name == "web") {
    // Page assets: many small objects, a deep catalog.
    config.object_count = 20'000;
    config.median_size = Megabytes{0.5};
    config.size_sigma = 1.0;
    config.max_size = Megabytes{100.0};
  } else if (name == "video") {
    // Streaming segments/blobs: few large objects.
    config.object_count = 2'000;
    config.median_size = Megabytes{50.0};
    config.size_sigma = 0.8;
  } else if (name == "mixed") {
    config.object_count = 10'000;  // the cache experiments' lognormal
  } else {
    throw ConfigError("unknown object-size-dist '" + name + "' (web/video/mixed)");
  }
  return config;
}

}  // namespace spacecdn::load
