#include "load/load_runner.hpp"

#include <algorithm>
#include <utility>

#include "data/datasets.hpp"
#include "obs/telemetry.hpp"
#include "spacecdn/placement.hpp"
#include "util/error.hpp"

namespace spacecdn::load {

namespace {

space::RouterConfig router_config(const LoadConfig& config) {
  space::RouterConfig rc;
  rc.max_isl_hops = config.max_isl_hops;
  rc.record_paths = true;  // the engine charges transfers against the links
  rc.resilience = config.resilience;
  return rc;
}

/// Deadline misses inside one rolling second that trip the flight recorder.
constexpr std::size_t kMissSpikeThreshold = 64;

/// Directed ISL link key: content flows from -> to.
constexpr std::uint64_t link_key(std::uint32_t from, std::uint32_t to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

LoadRunner::LoadRunner(lsn::StarlinkNetwork& network, space::SatelliteFleet& fleet,
                       cdn::CdnDeployment& ground_cdn,
                       std::vector<sim::Shell1Client> clients, LoadConfig config)
    : network_(&network),
      fleet_(&fleet),
      config_(std::move(config)),
      traffic_(std::move(clients), config_.traffic),
      owned_sim_(std::make_unique<des::Simulator>()),
      sim_(owned_sim_.get()),
      router_(network, fleet, ground_cdn, router_config(config_)),
      admission_(fleet.size(), config_.capacity.max_transfers_per_satellite,
                 config_.capacity.reject_storm_threshold),
      downlink_queues_(fleet.size()) {
  init(network, fleet);
}

LoadRunner::LoadRunner(des::Simulator& engine, lsn::StarlinkNetwork& network,
                       space::SatelliteFleet& fleet, cdn::CdnDeployment& ground_cdn,
                       std::vector<sim::Shell1Client> clients, LoadConfig config)
    : network_(&network),
      fleet_(&fleet),
      config_(std::move(config)),
      traffic_(std::move(clients), config_.traffic),
      sim_(&engine),
      router_(network, fleet, ground_cdn, router_config(config_)),
      admission_(fleet.size(), config_.capacity.max_transfers_per_satellite,
                 config_.capacity.reject_storm_threshold),
      downlink_queues_(fleet.size()) {
  init(network, fleet);
}

void LoadRunner::init(lsn::StarlinkNetwork& network, space::SatelliteFleet& fleet) {
  if (!config_.fault_schedule.empty()) churn_.emplace(network, fleet);
  if (config_.degradation.enabled) {
    degradation_.emplace(fleet.size(), config_.degradation);
    // New arrivals steer away from satellites inside a hot window.
    router_.set_serving_filter(
        [this](std::uint32_t sat) { return !degradation_->hot(sat, sim_->now()); });
  }
  admission_.set_reject_hook([this](std::uint32_t sat, std::size_t active) {
    if (degradation_) {
      const std::uint64_t marks_before = degradation_->hot_marks();
      degradation_->on_reject(sat, sim_->now());
      // Only window *entries* land on the timeline; re-marks extend silently.
      if (timeline_enabled_ && degradation_->hot_marks() != marks_before) {
        timeline_.record(sim_->now(), "degradation.hot-mark",
                         "satellite:" + std::to_string(sat));
      }
    }
    if (user_reject_hook_) user_reject_hook_(sat, active);
  });
  const auto& cities = traffic_.clients();
  city_rng_.reserve(cities.size());
  city_country_.reserve(cities.size());
  city_location_.reserve(cities.size());
  for (const sim::Shell1Client& client : cities) {
    // Streams key on the *dataset* index, so a coverage-filtered client set
    // draws the same numbers as the unfiltered one (fig7's convention).
    city_rng_.emplace_back(des::mix_seed(config_.seed, client.dataset_index));
    city_country_.push_back(&data::country(client.city->country_code));
    city_location_.push_back(sim::client_location(client));
  }
  setup_observability();
}

void LoadRunner::setup_observability() {
  timeline_enabled_ = config_.timeline;
  const bool series_on = config_.series_interval.value() > 0.0;
  if (timeline_enabled_ || series_on) {
    // The SLO tracker rides along with either artifact: burn rates feed the
    // series, alert transitions feed the timeline.
    slo_.emplace(config_.slo);
    if (timeline_enabled_) {
      const char* subject = config_.request_deadline.value() > 0.0
                                ? "slo:deadline"
                                : "slo:availability";
      slo_->set_alert_hook([this, subject](const obs::SloAlert& alert) {
        timeline_.record(alert.at,
                         alert.firing ? "slo.alert-fire" : "slo.alert-resolve",
                         subject, "short-window burn rate", alert.short_burn);
      });
    }
  }
  if (timeline_enabled_) {
    router_.set_breaker_listener(
        [this](std::size_t gateway, space::CircuitBreaker::State from,
               space::CircuitBreaker::State to, Milliseconds at) {
          timeline_.record(at,
                           "breaker." + std::string(space::to_string(to)),
                           "gateway:" + std::to_string(gateway),
                           "from " + std::string(space::to_string(from)));
        });
  }
  if (!series_on) return;
  series_.emplace(obs::TimeSeriesConfig{config_.series_interval});
  series_->add_gauge("offered",
                     [this] { return static_cast<double>(window_.offered); });
  series_->add_gauge("completed",
                     [this] { return static_cast<double>(window_.completed); });
  series_->add_gauge("failed",
                     [this] { return static_cast<double>(window_.failed); });
  series_->add_gauge("rejected",
                     [this] { return static_cast<double>(window_.rejected); });
  series_->add_gauge("no_coverage", [this] {
    return static_cast<double>(window_.no_coverage);
  });
  series_->add_gauge("deadline_missed", [this] {
    return static_cast<double>(window_.deadline_missed);
  });
  series_->add_gauge("shed_to_ground",
                     [this] { return static_cast<double>(window_.shed); });
  series_->add_gauge("availability", [this] {
    return window_.offered == 0
               ? 1.0
               : static_cast<double>(window_.completed) /
                     static_cast<double>(window_.offered);
  });
  series_->add_gauge("p50_ms", [this] {
    return window_.latency_ms.size() == 0 ? 0.0
                                          : window_.latency_ms.quantile(0.5);
  });
  series_->add_gauge("p99_ms", [this] {
    return window_.latency_ms.size() == 0 ? 0.0
                                          : window_.latency_ms.quantile(0.99);
  });
  series_->add_gauge(
      "goodput_mbps",
      obs::TimeSeriesRecorder::WindowProbe(
          [this](Milliseconds start, Milliseconds end) {
            const double seconds = (end - start).seconds();
            return seconds <= 0.0 ? 0.0 : window_.delivered_mb * 8.0 / seconds;
          }));
  series_->add_gauge("queue_depth", [this] {
    return static_cast<double>(queue_depth_total());
  });
  series_->add_gauge("active_transfers",
                     [this] { return static_cast<double>(inflight_); });
  series_->add_gauge("breaker_open", [this] {
    return static_cast<double>(router_.breaker_open_count());
  });
  series_->add_gauge("hot_satellites", [this] {
    return degradation_
               ? static_cast<double>(degradation_->hot_count(sim_->now()))
               : 0.0;
  });
  series_->add_gauge("slo_fast_burn", [this] {
    return slo_ ? slo_->burn_rate(sim_->now(), slo_->config().short_window)
                : 0.0;
  });
  series_->on_window_close([this] { window_ = WindowCounts{}; });
}

void LoadRunner::note_outcome(Milliseconds now, bool good) {
  if (slo_) slo_->record(now, good);
}

std::size_t LoadRunner::queue_depth_total() const noexcept {
  std::size_t total = 0;
  for (const auto& queue : downlink_queues_) {
    if (queue) total += queue->depth();
  }
  for (const auto& queue : gateway_queues_) {
    if (queue) total += queue->depth();
  }
  return total;
}

void LoadRunner::set_reject_hook(AdmissionController::RejectHook hook) {
  // The degradation policy's hook stays first in the chain.
  user_reject_hook_ = std::move(hook);
}

space::ChurnController::Counters LoadRunner::churn_counters() const {
  return churn_ ? churn_->counters() : space::ChurnController::Counters{};
}

LoadReport LoadRunner::run() {
  prepare();
  sim_->run();
  return collect();
}

void LoadRunner::prepare() {
  // Prewarm replicas across the constellation so tier (ii) has content to
  // find (the paper's in-plane placement argument, section 4).
  if (config_.copies_per_plane > 0) {
    const space::ContentPlacement placement(
        network_->constellation(),
        {config_.copies_per_plane, config_.placement_plane_stride});
    for (const cdn::ContentItem& item : traffic_.catalog().items()) {
      placement.place(*fleet_, item, Milliseconds{0.0});
    }
  }

  // The fault timeline runs *inside* the event loop: outages land between
  // arrivals with transfers in flight, exactly like a real incident.
  if (churn_) {
    config_.fault_schedule.install(
        *sim_, [this](const faults::FaultEvent& event) {
          if (timeline_enabled_) {
            timeline_.record(sim_->now(),
                             event.transition == faults::Transition::kFail
                                 ? "fault.fail"
                                 : "fault.recover",
                             std::string(faults::to_string(event.component)) +
                                 ":" + std::to_string(event.target));
          }
          churn_->apply(event);
        });
  }
  if (timeline_enabled_ && config_.traffic.surge.enabled()) {
    const RegionalSurge& surge = config_.traffic.surge;
    timeline_.record(surge.start, "surge.begin", "traffic", "regional surge",
                     surge.multiplier);
    timeline_.record(surge.start + surge.duration, "surge.end", "traffic", {},
                     surge.multiplier);
  }
  // Observability ticks are DES events too: the SLO evaluator first so the
  // series recorder (installed after, same boundaries) samples the already
  // updated burn rate and alert state.
  if (slo_) slo_->install(*sim_, config_.horizon);
  if (series_) series_->install(*sim_, config_.horizon);

  for (std::size_t i = 0; i < traffic_.clients().size(); ++i) {
    schedule_next_arrival(i);
  }
}

LoadReport LoadRunner::collect() {
  report_.peak_active_transfers = admission_.peak_active();
  report_.breaker_short_circuits = router_.breaker_short_circuits();
  if (degradation_) report_.hot_marks = degradation_->hot_marks();
  report_.satellite_utilization.assign(fleet_->size(), 0.0);
  for (std::uint32_t sat = 0; sat < downlink_queues_.size(); ++sat) {
    if (!downlink_queues_[sat]) continue;
    const double util = downlink_queues_[sat]->utilization(config_.horizon);
    report_.satellite_utilization[sat] = util;
    report_.max_utilization = std::max(report_.max_utilization, util);
    report_.peak_queue_depth =
        std::max(report_.peak_queue_depth, downlink_queues_[sat]->peak_depth());
  }
  for (const auto& queue : gateway_queues_) {
    if (queue) report_.peak_queue_depth = std::max(report_.peak_queue_depth, queue->peak_depth());
  }
  report_.goodput_mbps = report_.delivered.megabits() / config_.horizon.seconds();

  if (slo_) {
    report_.slo_alerts = slo_->alerts_fired();
    report_.slo_budget_consumed = slo_->budget_consumed();
  }
  if (series_) report_.series = series_->take_series();
  if (timeline_enabled_) report_.timeline = std::move(timeline_);

  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->set_help("spacecdn_load_requests_total",
                "Load-engine request outcomes by result label.");
    m->set_help("spacecdn_load_latency_ms",
                "Completion latency: first byte + transfer incl. queueing (ms).");
    m->set_help("spacecdn_load_satellite_utilization",
                "Downlink busy fraction per serving satellite over the horizon.");
    m->counter("spacecdn_load_requests_total", {{"result", "completed"}})
        .inc(report_.completed);
    m->counter("spacecdn_load_requests_total", {{"result", "rejected"}})
        .inc(report_.rejected);
    m->counter("spacecdn_load_requests_total", {{"result", "no_coverage"}})
        .inc(report_.no_coverage);
    m->counter("spacecdn_load_requests_total", {{"result", "failed"}})
        .inc(report_.failed);
    m->counter("spacecdn_load_deadline_missed_total").inc(report_.deadline_missed);
    m->counter("spacecdn_load_abandoned_total").inc(report_.abandoned);
    m->counter("spacecdn_load_shed_to_ground_total").inc(report_.shed_to_ground);
    m->counter("spacecdn_load_hot_marks_total").inc(report_.hot_marks);
    for (std::size_t t = 0; t < report_.tier.size(); ++t) {
      m->counter("spacecdn_load_served_total",
                 {{"tier", std::string(space::to_string(
                               static_cast<space::FetchTier>(t)))}})
          .inc(report_.tier[t]);
    }
    auto& latency = m->histogram("spacecdn_load_latency_ms");
    for (const double v : report_.latency_ms.raw()) latency.observe(v);
    auto& util = m->histogram("spacecdn_load_satellite_utilization", {},
                              {0.0, 1.0, 20});
    for (const double u : report_.satellite_utilization) {
      if (u > 0.0) util.observe(u);
    }
    m->gauge("spacecdn_load_goodput_mbps").set(report_.goodput_mbps);
    m->gauge("spacecdn_load_peak_queue_depth")
        .set(static_cast<double>(report_.peak_queue_depth));
    m->gauge("spacecdn_load_peak_active_transfers")
        .set(static_cast<double>(report_.peak_active_transfers));
  }
  return report_;
}

void LoadRunner::schedule_next_arrival(std::size_t client_index) {
  const Milliseconds gap =
      traffic_.next_interarrival(client_index, sim_->now(), city_rng_[client_index]);
  if (sim_->now() + gap >= config_.horizon) return;  // open loop ends at horizon
  sim_->schedule(gap, [this, client_index] { handle_arrival(client_index); });
}

void LoadRunner::handle_arrival(std::size_t client_index) {
  // Open loop: the next arrival is scheduled before this one is served, so
  // a congested system keeps receiving offered load (no coordinated
  // omission).
  schedule_next_arrival(client_index);
  ++report_.offered;
  if (series_) ++window_.offered;

  des::Rng& rng = city_rng_[client_index];
  const data::CountryInfo& country = *city_country_[client_index];
  const cdn::ContentItem& item = traffic_.sample_object(country, rng);
  const Milliseconds arrival = sim_->now();

  std::optional<space::FetchResult> fetch;
  Milliseconds first_byte{0.0};
  if (config_.resilient_fetch) {
    const auto result = router_.fetch_resilient(city_location_[client_index], country,
                                                item, rng, arrival);
    report_.retries += result.retries;
    if (result.hedged) ++report_.hedged;
    if (result.hedge_won) ++report_.hedge_won;
    if (!result.success) {
      // Exhausted attempts or deadline budget (includes coverage gaps).
      ++report_.failed;
      if (series_) ++window_.failed;
      note_outcome(arrival, /*good=*/false);
      if (config_.request_deadline.value() > 0.0) note_deadline_miss(arrival);
      return;
    }
    fetch = result.served;
    // The client-observed first byte includes every retry/backoff wait.
    first_byte = result.total_latency;
  } else {
    fetch = router_.fetch(city_location_[client_index], country, item, rng, arrival);
    if (!fetch) {
      ++report_.no_coverage;
      if (series_) ++window_.no_coverage;
      note_outcome(arrival, /*good=*/false);
      return;
    }
    first_byte = fetch->rtt;
  }

  const std::uint32_t serving = fetch->serving_satellite;
  if (!admission_.try_admit(serving, arrival)) {
    // Shed to ground: one bent-pipe-only re-fetch.  The rejection above just
    // marked `serving` hot, so the serving filter steers the re-fetch to an
    // alternate satellite whose downlink still has slots.
    if (degradation_ && degradation_->config().shed_to_ground &&
        config_.resilient_fetch) {
      router_.set_ground_only(true);
      const auto shed = router_.fetch_resilient(city_location_[client_index], country,
                                                item, rng, arrival);
      router_.set_ground_only(false);
      if (shed.success && shed.served->serving_satellite != serving &&
          admission_.try_admit(shed.served->serving_satellite, arrival)) {
        ++report_.shed_to_ground;
        ++inflight_;
        if (series_) ++window_.shed;
        if (timeline_enabled_) {
          timeline_.record(
              arrival, "degradation.shed",
              "satellite:" + std::to_string(shed.served->serving_satellite),
              "rejected at satellite:" + std::to_string(serving));
        }
        dispatch_transfer(client_index, *shed.served, item.size, shed.total_latency,
                          arrival);
        return;
      }
    }
    ++report_.rejected;
    if (series_) ++window_.rejected;
    note_outcome(arrival, /*good=*/false);
    return;
  }
  ++inflight_;
  dispatch_transfer(client_index, *fetch, item.size, first_byte, arrival);
}

void LoadRunner::dispatch_transfer(std::size_t client_index,
                                   const space::FetchResult& fetch, Megabytes volume,
                                   Milliseconds first_byte, Milliseconds arrival) {
  const space::FetchTier tier = fetch.tier;
  const std::uint32_t serving = fetch.serving_satellite;
  const std::uint64_t flow = traffic_.clients()[client_index].dataset_index;
  const Milliseconds isl_wait = charge_isl_path(fetch.isl_path, volume);

  // The downlink is the final (and usually bottleneck) hop of every tier.
  auto to_downlink = [this, client_index, tier, first_byte, isl_wait, arrival, serving,
                      volume, flow](Milliseconds upstream_wait) {
    downlink_queue(serving).submit(
        volume, flow,
        [this, client_index, tier, first_byte, isl_wait, arrival, serving, volume,
         upstream_wait](Milliseconds wait) {
          finish_transfer(client_index, tier, first_byte, isl_wait, arrival, serving,
                          volume, upstream_wait + wait);
        });
  };

  if (tier == space::FetchTier::kGround && fetch.gateway) {
    // Tier (iii) rides the gateway feeder up, then the ISL path to the
    // serving satellite, then the downlink -- three stages in series.
    gateway_queue(*fetch.gateway)
        .submit(volume, flow, [this, to_downlink, isl_wait](Milliseconds gw_wait) {
          if (isl_wait.value() > 0.0) {
            sim_->schedule(isl_wait,
                          [to_downlink, gw_wait] { to_downlink(gw_wait); });
          } else {
            to_downlink(gw_wait);
          }
        });
  } else if (isl_wait.value() > 0.0) {
    sim_->schedule(isl_wait, [to_downlink] { to_downlink(Milliseconds{0.0}); });
  } else {
    to_downlink(Milliseconds{0.0});
  }
}

Milliseconds LoadRunner::charge_isl_path(const std::vector<std::uint32_t>& path,
                                         Megabytes volume) {
  Milliseconds wait{0.0};
  if (path.size() < 2) return wait;
  const Milliseconds serialization = transmission_delay(volume, config_.capacity.isl);
  // The recorded path runs serving -> holder; content flows the other way.
  // Cut-through forwarding pipelines serialization across hops, so only the
  // per-link backlog waits accumulate (serialization itself is charged at
  // the slower downlink hop).
  for (std::size_t k = path.size() - 1; k > 0; --k) {
    net::LinkLoad& load = isl_load_[link_key(path[k], path[k - 1])];
    wait += load.charge(sim_->now() + wait, serialization, volume);
  }
  return wait;
}

LinkQueue& LoadRunner::downlink_queue(std::uint32_t satellite) {
  auto& slot = downlink_queues_[satellite];
  if (!slot) {
    slot = std::make_unique<LinkQueue>(*sim_, config_.capacity.satellite_downlink,
                                       config_.capacity.discipline,
                                       config_.capacity.drr_quantum);
  }
  return *slot;
}

LinkQueue& LoadRunner::gateway_queue(std::size_t gateway) {
  if (gateway >= gateway_queues_.size()) gateway_queues_.resize(gateway + 1);
  auto& slot = gateway_queues_[gateway];
  if (!slot) {
    slot = std::make_unique<LinkQueue>(*sim_, config_.capacity.gateway,
                                       config_.capacity.discipline,
                                       config_.capacity.drr_quantum);
  }
  return *slot;
}

void LoadRunner::finish_transfer(std::size_t client_index, space::FetchTier tier,
                                 Milliseconds first_byte, Milliseconds isl_wait,
                                 Milliseconds arrival, std::uint32_t serving,
                                 Megabytes volume, Milliseconds queue_wait) {
  (void)client_index;
  admission_.release(serving);
  if (inflight_ > 0) --inflight_;
  ++report_.completed;
  ++report_.tier[static_cast<std::size_t>(tier)];
  // sim time since arrival already contains every queueing + serialization
  // stage (the ISL wait was materialised as a schedule delay); the first
  // byte's RTT rides on top.
  const Milliseconds transfer = sim_->now() - arrival;
  const Milliseconds latency = first_byte + transfer;
  report_.latency_ms.add(latency.value());
  report_.queue_wait_ms.add((queue_wait + isl_wait).value());

  const double deadline = config_.request_deadline.value();
  const bool met_deadline = deadline <= 0.0 || latency.value() <= deadline;
  note_outcome(sim_->now(), met_deadline);
  if (series_) {
    ++window_.completed;
    window_.latency_ms.add(latency.value());
  }
  if (!met_deadline) {
    ++report_.deadline_missed;
    if (series_) ++window_.deadline_missed;
    note_deadline_miss(sim_->now());
    if (latency.value() > 2.0 * deadline) {
      // The viewer moved on: delivered, but not goodput.
      ++report_.abandoned;
      return;
    }
  }
  report_.delivered += volume;
  if (series_) window_.delivered_mb += volume.value();

  // Tail-at-scale adaptive hedging: re-derive the hedge delay from the
  // trailing completion p99 every 256 completions.
  if (config_.hedge_auto && config_.resilient_fetch && report_.completed % 256 == 0 &&
      report_.latency_ms.size() >= 64) {
    router_.set_hedge_delay(Milliseconds{report_.latency_ms.quantile(0.99)});
  }
}

void LoadRunner::note_deadline_miss(Milliseconds now) {
  if (now - miss_window_start_ >= Milliseconds{1'000.0}) {
    miss_window_start_ = now;
    miss_window_count_ = 0;
  }
  // Trip once per window, at the crossing.
  if (++miss_window_count_ == kMissSpikeThreshold) {
    if (auto* recorder = obs::recorder()) recorder->trip("deadline-miss-spike", now);
    if (timeline_enabled_) {
      timeline_.record(now, "flight-recorder.trip", "deadline-miss-spike", {},
                       static_cast<double>(kMissSpikeThreshold));
    }
  }
}

LoadConfig load_config_from_spec(const sim::ScenarioSpec& spec) {
  LoadConfig config;
  config.traffic.requests_per_second = spec.arrival_rate_rps;
  config.traffic.catalog = object_size_preset(spec.object_size_dist);
  config.traffic.burst = parse_burst_trace(spec.burst_trace);
  config.horizon = Milliseconds::from_seconds(spec.load_horizon_s);
  config.seed = spec.seed;

  const lsn::StarlinkConfig preset = lsn::starlink_preset(spec.constellation);
  CapacityConfig capacity;
  capacity.satellite_downlink = preset.access.satellite_downlink_aggregate;
  capacity.satellite_uplink = preset.access.satellite_uplink_aggregate;
  capacity.gateway = preset.access.gateway_aggregate;
  capacity.isl = preset.isl.capacity;
  capacity.discipline = parse_queue_discipline(spec.queue_discipline);
  config.capacity = capacity.scaled(spec.link_capacity_scale);

  config.resilient_fetch = spec.resilient_fetch;
  config.request_deadline = Milliseconds{spec.request_deadline_ms};
  // The fetch-side deadline budget and the SLO share one knob: a resilient
  // fetch never keeps retrying past the point where the completion would be
  // a guaranteed miss.
  config.resilience.deadline = config.request_deadline;
  if (spec.attempt_timeout_ms > 0.0) {
    config.resilience.attempt_timeout = Milliseconds{spec.attempt_timeout_ms};
  }
  config.resilience.backoff_jitter = spec.backoff_jitter;
  if (spec.hedge_delay_ms < 0.0) {
    config.hedge_auto = true;  // re-derived from the trailing p99 at runtime
  } else {
    config.resilience.hedge_delay = Milliseconds{spec.hedge_delay_ms};
  }
  config.resilience.breaker.failure_threshold =
      static_cast<std::uint32_t>(spec.breaker_threshold);
  config.resilience.breaker.open_cooldown =
      Milliseconds::from_seconds(spec.breaker_cooldown_s);
  config.degradation.enabled = spec.shed_to_ground;
  config.degradation.shed_to_ground = spec.shed_to_ground;

  // Chaos surge: the in-region population hammers the network exactly while
  // the fault domain is down.  A solar storm is global, not regional -- no
  // surge there.
  if (!spec.chaos.empty() && spec.chaos_surge > 1.0 && spec.chaos != "solar-storm") {
    config.traffic.surge.center = {spec.chaos_lat, spec.chaos_lon, 0.0};
    config.traffic.surge.radius = Kilometers{spec.chaos_radius_km};
    config.traffic.surge.multiplier = spec.chaos_surge;
    config.traffic.surge.start = Milliseconds::from_seconds(spec.chaos_start_s);
    config.traffic.surge.duration = Milliseconds::from_seconds(spec.chaos_duration_s);
  }

  // Sim-time observability: the recorder runs whenever a series artifact was
  // requested, the timeline whenever a timeline artifact was.
  if (!spec.series_out.empty()) {
    config.series_interval = Milliseconds::from_seconds(spec.series_interval_s);
  }
  config.timeline = !spec.timeline_out.empty();
  config.slo.objective = spec.slo_objective;
  config.slo.short_window = Milliseconds::from_seconds(spec.slo_window_short_s);
  config.slo.long_window = Milliseconds::from_seconds(spec.slo_window_long_s);
  config.slo.burn_threshold = spec.slo_burn_threshold;
  return config;
}

cdn::CatalogConfig object_size_preset(const std::string& name) {
  cdn::CatalogConfig config;
  if (name == "web") {
    // Page assets: many small objects, a deep catalog.
    config.object_count = 20'000;
    config.median_size = Megabytes{0.5};
    config.size_sigma = 1.0;
    config.max_size = Megabytes{100.0};
  } else if (name == "video") {
    // Streaming segments/blobs: few large objects.
    config.object_count = 2'000;
    config.median_size = Megabytes{50.0};
    config.size_sigma = 0.8;
  } else if (name == "mixed") {
    config.object_count = 10'000;  // the cache experiments' lognormal
  } else {
    throw ConfigError("unknown object-size-dist '" + name + "' (web/video/mixed)");
  }
  return config;
}

}  // namespace spacecdn::load
