// Open-loop traffic generation for the request-level load engine.
//
// Closed-loop clients (fig4/fig5 page loads) wait for a response before
// issuing the next request, so a slow system sees *less* load -- the
// coordinated-omission trap.  The load engine instead drives an open-loop
// process: every covered city emits requests as an independent Poisson
// stream whose rate is proportional to its metro population, regardless of
// how fast earlier requests complete.  Popularity rides the same regional
// Zipf model as the cache experiments (cdn::RegionalPopularity), so the
// load engine stresses exactly the content bubbles the paper describes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cdn/content.hpp"
#include "cdn/popularity.hpp"
#include "data/types.hpp"
#include "des/random.hpp"
#include "geo/coordinates.hpp"
#include "sim/scenario.hpp"
#include "util/units.hpp"

namespace spacecdn::load {

/// One step of a piecewise-constant rate schedule: from `start` onwards the
/// offered rate is multiplied by `multiplier` (until the next step).
struct BurstStep {
  Milliseconds start{0.0};
  double multiplier = 1.0;
};

/// Parses a burst trace of the form "0:1,30:4,60:1" -- comma-separated
/// `seconds:multiplier` pairs, strictly increasing in time.  An empty string
/// yields an empty schedule (constant rate).
/// @throws spacecdn::ConfigError on malformed pairs, negative values, or
/// non-increasing times.
[[nodiscard]] std::vector<BurstStep> parse_burst_trace(const std::string& text);

/// A colocated traffic surge: cities within `radius` of `center` offer
/// `multiplier`x their base rate during [start, start + duration) -- the
/// chaos scenarios' "everyone near the disaster reloads the news" spike,
/// which composes with the global burst schedule.
struct RegionalSurge {
  geo::GeoPoint center = {};
  Kilometers radius{0.0};
  double multiplier = 1.0;
  Milliseconds start{0.0};
  Milliseconds duration{0.0};

  [[nodiscard]] bool enabled() const noexcept {
    return radius.value() > 0.0 && multiplier != 1.0 && duration.value() > 0.0;
  }
  [[nodiscard]] bool active(Milliseconds now) const noexcept {
    return enabled() && now >= start && now < start + duration;
  }
};

/// Traffic tunables of one load run.
struct TrafficConfig {
  /// Aggregate offered rate across every covered city (requests/second);
  /// each city receives a population-proportional share.
  double requests_per_second = 2000.0;
  /// The object universe requests are drawn from.  Smaller than the cache
  /// experiments' default: the load engine replays millions of requests and
  /// the interesting contention lives in the head of the Zipf curve.
  cdn::CatalogConfig catalog = {.object_count = 5'000};
  cdn::PopularityConfig popularity = {};
  /// Scripted rate multipliers (flash crowds); empty = constant rate.
  std::vector<BurstStep> burst = {};
  /// Regional surge window (disabled by default).
  RegionalSurge surge = {};
  /// Seed of the catalog's size/home-region draws (not the arrival streams;
  /// those come from the run seed via per-city des::mix_seed).
  std::uint64_t catalog_seed = 1234;
};

/// Per-city Poisson arrival processes over a shared regional-Zipf catalog.
class TrafficModel {
 public:
  /// @throws spacecdn::ConfigError on a non-positive rate, empty client set,
  /// or zero total population.
  TrafficModel(std::vector<sim::Shell1Client> clients, TrafficConfig config);

  [[nodiscard]] const TrafficConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<sim::Shell1Client>& clients() const noexcept {
    return clients_;
  }
  [[nodiscard]] const cdn::ContentCatalog& catalog() const noexcept { return catalog_; }
  [[nodiscard]] const cdn::RegionalPopularity& popularity() const noexcept {
    return popularity_;
  }

  /// Mean offered rate of one city at multiplier 1 (requests/second).
  [[nodiscard]] double city_rate_rps(std::size_t client_index) const;

  /// The burst schedule's rate multiplier in effect at `now` (1.0 before the
  /// first step and with an empty schedule).
  [[nodiscard]] double rate_multiplier(Milliseconds now) const noexcept;

  /// The regional-surge multiplier for one city at `now` (1.0 outside the
  /// window, outside the region, or with the surge disabled).
  [[nodiscard]] double surge_multiplier(std::size_t client_index,
                                        Milliseconds now) const;

  /// Draws the exponential gap to a city's next arrival given the rate in
  /// effect at `now`.  Piecewise-constant schedules are sampled at the
  /// current step's rate (a step mid-gap shifts the next arrival by at most
  /// one interarrival -- negligible against the steps' multi-second scale).
  [[nodiscard]] Milliseconds next_interarrival(std::size_t client_index,
                                               Milliseconds now, des::Rng& rng) const;

  /// One request drawn from the country's regional popularity curve.
  [[nodiscard]] const cdn::ContentItem& sample_object(const data::CountryInfo& country,
                                                      des::Rng& rng) const;

 private:
  std::vector<sim::Shell1Client> clients_;
  TrafficConfig config_;
  des::Rng catalog_rng_;
  cdn::ContentCatalog catalog_;
  cdn::RegionalPopularity popularity_;
  std::vector<double> city_rate_rps_;
  /// Per-city membership in the surge region (precomputed great circles).
  std::vector<bool> city_in_surge_region_;
};

}  // namespace spacecdn::load
