#include "load/degradation.hpp"

#include "util/error.hpp"

namespace spacecdn::load {

DegradationPolicy::DegradationPolicy(std::uint32_t satellite_count,
                                     DegradationConfig config)
    : config_(config), hot_until_(satellite_count, Milliseconds{0.0}) {}

void DegradationPolicy::on_reject(std::uint32_t satellite, Milliseconds now) {
  SPACECDN_EXPECT(satellite < hot_until_.size(), "degradation: satellite out of range");
  if (hot_until_[satellite] <= now) ++hot_marks_;
  hot_until_[satellite] = now + config_.hot_window;
}

std::size_t DegradationPolicy::hot_count(Milliseconds now) const noexcept {
  std::size_t hot = 0;
  for (const Milliseconds until : hot_until_) {
    if (until > now) ++hot;
  }
  return hot;
}

bool DegradationPolicy::hot(std::uint32_t satellite, Milliseconds now) const {
  SPACECDN_EXPECT(satellite < hot_until_.size(), "degradation: satellite out of range");
  return hot_until_[satellite] > now;
}

}  // namespace spacecdn::load
