// Sharded load mode: one open-loop load run partitioned across the
// conservatively-synchronised parallel DES.
//
// The serial load engine's capacity couplings (shared gateway feeders,
// shared ISL links, shared satellite caches) make one fully-coupled run
// impossible to parallelise bit-identically -- charges land synchronously at
// dispatch, so the cross-shard lookahead would be zero.  The sharded mode
// instead partitions *clients by their serving satellite* into S shard
// groups, each owning private fleet / ground-CDN / capacity / admission
// state, and advances the S shard-local simulations on a ShardedSimulator.
//
// What that buys and what it costs:
//  * S == 1 reproduces the serial engine bit for bit (same runner, same
//    engine semantics) -- the default, so committed checksums never move.
//  * At fixed S, results are bit-identical for any --threads value: shards
//    only touch shard-local state plus read-only world objects, and reports
//    merge in shard order after the final barrier.
//  * S > 1 is a documented approximation: couplings *between* shard groups
//    (a gateway feeder shared by two serving satellites, ISL links crossed
//    by both groups' tier-ii paths, cache hits on another group's replicas)
//    are dropped, because each group charges its own private copy.
//    Admission and the downlink bottleneck -- the dominant contention -- key
//    on the serving satellite, which the partition keeps exact.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cdn/deployment.hpp"
#include "load/load_runner.hpp"
#include "lsn/starlink.hpp"
#include "sim/scenario.hpp"
#include "spacecdn/fleet.hpp"
#include "util/thread_pool.hpp"

namespace spacecdn::load {

/// Options of one sharded load run.
struct ShardedLoadOptions {
  /// Shard-group count; 1 == the serial engine on the sharded scaffolding.
  std::size_t shards = 1;
  /// Conservative window width for the ShardedSimulator.  The shard groups
  /// are independent by construction, so any positive width is safe; 0
  /// derives horizon/8 (a handful of barriers for progress accounting).
  Milliseconds lookahead{0.0};
};

/// A merged run plus the per-shard accounting the barrier merge preserves.
struct ShardedLoadOutcome {
  /// Shard reports merged in shard order (counters summed, sample sets
  /// concatenated shard-by-shard, per-satellite utilization element-wise max
  /// over the disjoint serving sets).
  LoadReport report;
  /// Lookahead windows the sharded engine executed.
  std::uint64_t windows = 0;
  /// Per-shard completion counts, in shard order (merge-at-barrier
  /// accounting detail; sums to report.completed).
  std::vector<std::uint64_t> shard_completed;
};

/// Partitions clients into `shards` groups keyed by serving satellite
/// (serving % shards), so every client contending for one downlink and one
/// admission slot pool lands in the same group.  Uncovered clients key on
/// their dataset index instead (they produce no_coverage wherever they
/// land).  Order inside each group preserves the input order, which makes
/// the partition -- and everything downstream -- a pure function of the
/// client list for any shard count.
[[nodiscard]] std::vector<std::vector<sim::Shell1Client>> partition_clients_by_serving(
    const lsn::StarlinkNetwork& network, const std::vector<sim::Shell1Client>& clients,
    std::size_t shards);

/// Runs one sharded load run: partitions `clients`, prepares one LoadRunner
/// per non-empty shard group (each on its own ShardedSimulator shard, with
/// its own fleet and ground CDN from the factories), advances all shards on
/// `pool` (nullptr = serial), and merges the reports in shard order.
///
/// Restrictions (the per-run global producers do not split across shards):
/// no fault schedule, no series recorder, no timeline.
/// @throws spacecdn::ConfigError when those are configured, or shards == 0.
[[nodiscard]] ShardedLoadOutcome run_sharded_load(
    lsn::StarlinkNetwork& network, const std::vector<sim::Shell1Client>& clients,
    const LoadConfig& config, const ShardedLoadOptions& options,
    const std::function<space::SatelliteFleet()>& make_fleet,
    const std::function<cdn::CdnDeployment()>& make_ground, ThreadPool* pool);

}  // namespace spacecdn::load
