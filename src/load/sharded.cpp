#include "load/sharded.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "des/sharded.hpp"
#include "util/error.hpp"

namespace spacecdn::load {

namespace {

/// Folds shard `s`'s report into the merged one.  Counters sum; sample sets
/// concatenate (the caller walks shards in order, so the merged sequence is
/// deterministic); utilization merges element-wise max -- serving sets are
/// disjoint across groups, so at most one shard is non-zero per satellite.
void merge_report(LoadReport& merged, const LoadReport& shard) {
  merged.offered += shard.offered;
  merged.completed += shard.completed;
  merged.rejected += shard.rejected;
  merged.no_coverage += shard.no_coverage;
  merged.failed += shard.failed;
  merged.deadline_missed += shard.deadline_missed;
  merged.abandoned += shard.abandoned;
  merged.shed_to_ground += shard.shed_to_ground;
  merged.retries += shard.retries;
  merged.hedged += shard.hedged;
  merged.hedge_won += shard.hedge_won;
  merged.breaker_short_circuits += shard.breaker_short_circuits;
  merged.hot_marks += shard.hot_marks;
  for (std::size_t t = 0; t < merged.tier.size(); ++t) merged.tier[t] += shard.tier[t];
  merged.latency_ms.add_all(shard.latency_ms.raw());
  merged.queue_wait_ms.add_all(shard.queue_wait_ms.raw());
  merged.delivered += shard.delivered;
  // Peaks in different shard groups are concurrent contention on disjoint
  // resources; the merged "peak" is the max, not the sum.
  merged.peak_queue_depth = std::max(merged.peak_queue_depth, shard.peak_queue_depth);
  merged.peak_active_transfers =
      std::max(merged.peak_active_transfers, shard.peak_active_transfers);
  if (merged.satellite_utilization.size() < shard.satellite_utilization.size()) {
    merged.satellite_utilization.resize(shard.satellite_utilization.size(), 0.0);
  }
  for (std::size_t i = 0; i < shard.satellite_utilization.size(); ++i) {
    merged.satellite_utilization[i] =
        std::max(merged.satellite_utilization[i], shard.satellite_utilization[i]);
  }
  merged.max_utilization = std::max(merged.max_utilization, shard.max_utilization);
}

}  // namespace

std::vector<std::vector<sim::Shell1Client>> partition_clients_by_serving(
    const lsn::StarlinkNetwork& network, const std::vector<sim::Shell1Client>& clients,
    std::size_t shards) {
  SPACECDN_EXPECT(shards > 0, "client partition needs at least one shard");
  std::vector<std::vector<sim::Shell1Client>> groups(shards);
  if (shards == 1) {
    groups[0] = clients;
    return groups;
  }
  const double min_elev = network.config().user_min_elevation_deg;
  const orbit::EphemerisSnapshot& snapshot = network.snapshot();
  for (const sim::Shell1Client& client : clients) {
    const auto serving =
        snapshot.serving_satellite(sim::client_location(client), min_elev);
    const std::uint64_t key = serving ? *serving : client.dataset_index;
    groups[key % shards].push_back(client);
  }
  return groups;
}

ShardedLoadOutcome run_sharded_load(
    lsn::StarlinkNetwork& network, const std::vector<sim::Shell1Client>& clients,
    const LoadConfig& config, const ShardedLoadOptions& options,
    const std::function<space::SatelliteFleet()>& make_fleet,
    const std::function<cdn::CdnDeployment()>& make_ground, ThreadPool* pool) {
  SPACECDN_EXPECT(options.shards > 0, "sharded load needs at least one shard");
  // The fault timeline, series recorder, and incident timeline are per-run
  // global producers; their semantics (one fault hitting every client, one
  // merged series) do not decompose across independent shard groups.
  SPACECDN_EXPECT(config.fault_schedule.empty(),
                  "sharded load mode does not support fault schedules");
  SPACECDN_EXPECT(config.series_interval.value() <= 0.0 && !config.timeline,
                  "sharded load mode does not support series/timeline artifacts");

  const Milliseconds lookahead = options.lookahead.value() > 0.0
                                     ? options.lookahead
                                     : Milliseconds{config.horizon.value() / 8.0};
  des::ShardedSimulator sharded(options.shards, lookahead);

  const auto groups = partition_clients_by_serving(network, clients, options.shards);

  // Shard-local worlds: each group's runner owns a private fleet + ground
  // CDN and schedules exclusively on its own shard engine.  Empty groups
  // (more shards than serving satellites) simply contribute nothing.
  struct ShardState {
    space::SatelliteFleet fleet;
    cdn::CdnDeployment ground;
    std::optional<LoadRunner> runner;
  };
  std::vector<std::unique_ptr<ShardState>> states(options.shards);
  for (std::size_t s = 0; s < options.shards; ++s) {
    if (groups[s].empty()) continue;
    auto state = std::make_unique<ShardState>(ShardState{make_fleet(), make_ground(), {}});
    state->runner.emplace(sharded.shard(s), network, state->fleet, state->ground,
                          groups[s], config);
    state->runner->prepare();
    states[s] = std::move(state);
  }

  // Parallel advancement: shards only write shard-local state (runner,
  // fleet, ground CDN, engine) and read the shared network through its
  // thread-safe routing caches, so the window barrier is the only
  // synchronisation the run needs.
  sharded.run(pool);

  // Merge at the final barrier, in shard order: the merged report is a pure
  // function of (clients, config, shard count), never of the worker count.
  ShardedLoadOutcome outcome;
  outcome.shard_completed.assign(options.shards, 0);
  for (std::size_t s = 0; s < options.shards; ++s) {
    if (!states[s]) continue;
    const LoadReport shard_report = states[s]->runner->collect();
    outcome.shard_completed[s] = shard_report.completed;
    merge_report(outcome.report, shard_report);
  }
  outcome.report.goodput_mbps =
      outcome.report.delivered.megabits() / config.horizon.seconds();
  outcome.windows = sharded.windows_executed();
  return outcome;
}

}  // namespace spacecdn::load
