// The request-level load engine: open-loop traffic through SpaceCDN under
// finite link capacities.
//
// Wires the pieces together: TrafficModel emits per-city Poisson arrivals
// onto a des::Simulator; each request routes through the three-tier
// SpaceCdnRouter (with path recording on, so the engine knows which links
// its bytes cross); the transfer is then charged against real capacities --
// admission control at the serving satellite, net::LinkLoad cut-through
// charges on the ISL path, and explicit LinkQueues at the bottleneck hops
// (gateway feeder, satellite downlink).  A request's completion latency is
// therefore propagation + serialization + the queueing it actually saw.
//
// Determinism: every city draws from its own des::mix_seed stream keyed by
// dataset index, and the simulation itself is serial, so a run's sample
// sequence is a pure function of (world, config, seed).  Benches shard
// *runs* (offered-load points) across threads and merge in point order,
// keeping the fig9 checksum bit-identical for any --threads value.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cdn/deployment.hpp"
#include "des/simulator.hpp"
#include "des/stats.hpp"
#include "faults/schedule.hpp"
#include "load/capacity.hpp"
#include "load/degradation.hpp"
#include "load/traffic.hpp"
#include "lsn/starlink.hpp"
#include "net/link.hpp"
#include "obs/slo.hpp"
#include "obs/timeline.hpp"
#include "obs/timeseries.hpp"
#include "sim/scenario.hpp"
#include "spacecdn/fleet.hpp"
#include "spacecdn/resilience.hpp"
#include "spacecdn/router.hpp"

namespace spacecdn::load {

/// Everything one load run needs beyond the world objects.
struct LoadConfig {
  TrafficConfig traffic = {};
  CapacityConfig capacity = {};
  /// Arrivals stop at the horizon; in-flight transfers drain afterwards.
  Milliseconds horizon = Milliseconds::from_seconds(30.0);
  /// Router hop budget for tier (ii).
  std::uint32_t max_isl_hops = 10;
  /// Replica prewarm (spacecdn::ContentPlacement): copies per selected
  /// plane, every `placement_plane_stride`-th plane.  0 copies = cold start.
  std::uint32_t copies_per_plane = 4;
  std::uint32_t placement_plane_stride = 8;
  /// Primary seed; per-city streams derive from it via des::mix_seed.
  std::uint64_t seed = 42;

  // --- compound-failure resilience (all off by default, so historical runs
  // and their checksums are unchanged) ---
  /// Route through fetch_resilient (deadline / retry / hedge / breaker)
  /// instead of the plain three-tier fetch.
  bool resilient_fetch = false;
  /// Retry/deadline/hedge/breaker policy of the resilient path.
  space::ResilienceConfig resilience = {};
  /// Segment deadline for SLO accounting: a completion later than this is a
  /// deadline miss, later than twice this an abandonment (the live-video
  /// viewer has moved on; the bytes no longer count as goodput).  0 = no
  /// deadline SLO.
  Milliseconds request_deadline{0.0};
  /// Re-derive the hedge delay from the trailing completion-latency p99
  /// every few hundred completions (tail-at-scale's adaptive rule).
  bool hedge_auto = false;
  /// Admission-rejection degradation policy (hot marks + shed-to-ground).
  DegradationConfig degradation = {};
  /// Fault timeline applied *inside* the event loop via a ChurnController,
  /// so outages hit mid-run with transfers in flight.  Empty = no faults.
  faults::FaultSchedule fault_schedule = faults::FaultSchedule::from_trace({});

  // --- sim-time observability (all off by default; the recorder, timeline,
  // and SLO tracker are per-run state driven by this run's private
  // simulator, so parallel sweeps stay bit-identical) ---
  /// Sampling window of the windowed time series; 0 disables the recorder.
  Milliseconds series_interval{0.0};
  /// Record the unified incident timeline (fault events, breaker
  /// transitions, degradation hot-marks/sheds, recorder trips, SLO alerts).
  bool timeline = false;
  /// Burn-rate alerting policy.  The tracker is engaged whenever the series
  /// recorder or the timeline is on: with a request deadline, "good" means
  /// completed within it; without one, any completion is good.
  obs::SloConfig slo = {};
};

/// SLO-style outcome of one load run.
struct LoadReport {
  std::uint64_t offered = 0;      ///< arrivals generated
  std::uint64_t completed = 0;    ///< transfers fully delivered
  std::uint64_t rejected = 0;     ///< admission-control drops (net of sheds)
  std::uint64_t no_coverage = 0;  ///< client had no serving satellite
  /// Resilient fetches that exhausted every attempt or their deadline
  /// budget (plain-fetch runs keep this at 0); completed + rejected +
  /// no_coverage + failed == offered.
  std::uint64_t failed = 0;
  /// Completions later than the request deadline (subset of completed).
  std::uint64_t deadline_missed = 0;
  /// Completions later than twice the deadline: the viewer abandoned, the
  /// bytes are excluded from delivered/goodput (subset of deadline_missed).
  std::uint64_t abandoned = 0;
  /// Admission rejections salvaged by the shed-to-ground policy (these
  /// count as completed, not rejected).
  std::uint64_t shed_to_ground = 0;
  std::uint64_t retries = 0;    ///< resilient-fetch retries across all requests
  std::uint64_t hedged = 0;     ///< hedged second requests issued
  std::uint64_t hedge_won = 0;  ///< hedges that beat the primary
  std::uint64_t breaker_short_circuits = 0;  ///< open-breaker bent-pipe skips
  std::uint64_t hot_marks = 0;  ///< degradation hot-satellite markings
  /// Completions by FetchTier (kServingSatellite, kIslNeighbor, kGround).
  std::array<std::uint64_t, 3> tier{};
  /// Request completion latency (first byte + transfer incl. queueing), ms.
  des::SampleSet latency_ms;
  /// Queueing delay component per completed request, ms.
  des::SampleSet queue_wait_ms;
  Megabytes delivered{0.0};
  /// Delivered volume over the arrival horizon.
  double goodput_mbps = 0.0;
  std::size_t peak_queue_depth = 0;
  std::size_t peak_active_transfers = 0;
  /// Downlink busy fraction per satellite over the horizon (the utilization
  /// heatmap; satellites that never served stay at 0).
  std::vector<double> satellite_utilization;
  double max_utilization = 0.0;
  /// Windowed time series (empty unless LoadConfig::series_interval > 0).
  obs::TimeSeries series;
  /// Unified incident timeline (empty unless LoadConfig::timeline).
  obs::IncidentTimeline timeline;
  /// SLO burn-rate alerts fired / whole-run error budget consumed (0 while
  /// the tracker is off).
  std::uint64_t slo_alerts = 0;
  double slo_budget_consumed = 0.0;

  [[nodiscard]] double reject_fraction() const noexcept {
    return offered == 0 ? 0.0 : static_cast<double>(rejected) / static_cast<double>(offered);
  }
  /// Fraction of offered requests that completed.
  [[nodiscard]] double availability() const noexcept {
    return offered == 0 ? 0.0
                        : static_cast<double>(completed) / static_cast<double>(offered);
  }
  /// Fraction of offered requests that blew the deadline: late completions
  /// plus requests that never completed at all (with a deadline SLO, a
  /// failed or dropped request is a missed segment too).
  [[nodiscard]] double deadline_miss_fraction() const noexcept {
    if (offered == 0) return 0.0;
    return static_cast<double>(deadline_missed + failed + rejected + no_coverage) /
           static_cast<double>(offered);
  }
};

/// Drives one open-loop load run over a SpaceCDN world.
///
/// The caller owns the world objects (fleet and ground CDN mutated by cache
/// admissions; the network is mutated too when a fault schedule is
/// installed -- chaos runs must hand each run its own network, like
/// ablation_churn's World::make_network pattern); sweeps hand each run its
/// own fleet + ground CDN so points are independent.
class LoadRunner {
 public:
  /// @throws spacecdn::ConfigError on empty clients or bad traffic config.
  LoadRunner(lsn::StarlinkNetwork& network, space::SatelliteFleet& fleet,
             cdn::CdnDeployment& ground_cdn, std::vector<sim::Shell1Client> clients,
             LoadConfig config);

  /// External-engine variant: the run's events land on `engine` instead of a
  /// private simulator.  This is the sharded load mode's entry point -- each
  /// shard's runner targets one ShardedSimulator shard and the caller drives
  /// the engines (prepare() then the engine's run loop then collect());
  /// `engine` must outlive the runner.
  LoadRunner(des::Simulator& engine, lsn::StarlinkNetwork& network,
             space::SatelliteFleet& fleet, cdn::CdnDeployment& ground_cdn,
             std::vector<sim::Shell1Client> clients, LoadConfig config);

  /// The backpressure hook: fires on every admission rejection.  Install
  /// before run(); e.g. feed a faults-style degradation policy.
  void set_reject_hook(AdmissionController::RejectHook hook);

  /// Stage 1 of a run: prewarms placement, installs the fault schedule and
  /// observability producers, and schedules every client's first arrival.
  /// After this the engine is ready to run; call collect() once it drains.
  void prepare();

  /// Stage 2: aggregates the report after the engine has drained.  Also
  /// mirrors the headline numbers into obs::metrics() when a registry is
  /// installed (single-threaded sinks; call from one thread).
  [[nodiscard]] LoadReport collect();

  /// prepare() + run the engine to completion + collect(), the one-call
  /// serial path every bench default uses.
  [[nodiscard]] LoadReport run();

  /// The simulator this run schedules on (owned unless the external-engine
  /// constructor was used).
  [[nodiscard]] des::Simulator& engine() noexcept { return *sim_; }

  [[nodiscard]] const TrafficModel& traffic() const noexcept { return traffic_; }
  [[nodiscard]] const LoadConfig& config() const noexcept { return config_; }

  /// Churn counters of the installed fault schedule (zeroes without one).
  [[nodiscard]] space::ChurnController::Counters churn_counters() const;

 private:
  /// One request from client `i` at the current simulation time.
  void handle_arrival(std::size_t client_index);
  /// Schedules client `i`'s next arrival if it lands inside the horizon.
  void schedule_next_arrival(std::size_t client_index);
  /// Charges an admitted fetch against the capacity model (ISL path, the
  /// gateway feeder for tier iii, the serving satellite's downlink).
  void dispatch_transfer(std::size_t client_index, const space::FetchResult& fetch,
                         Megabytes volume, Milliseconds first_byte,
                         Milliseconds arrival);
  /// Charges `volume` along the recorded ISL path; returns the cut-through
  /// backlog wait (serialization pipelines, so only waits accumulate).
  [[nodiscard]] Milliseconds charge_isl_path(const std::vector<std::uint32_t>& path,
                                             Megabytes volume);
  [[nodiscard]] LinkQueue& downlink_queue(std::uint32_t satellite);
  [[nodiscard]] LinkQueue& gateway_queue(std::size_t gateway);
  void finish_transfer(std::size_t client_index, space::FetchTier tier,
                       Milliseconds first_byte, Milliseconds extra_wait,
                       Milliseconds arrival, std::uint32_t serving, Megabytes volume,
                       Milliseconds queue_wait);
  /// Rolling-window deadline-miss bookkeeping; a spike trips the flight
  /// recorder once per window.
  void note_deadline_miss(Milliseconds now);

  /// Shared tail of both constructors: churn/degradation/hook wiring, the
  /// per-city streams, and observability setup.
  void init(lsn::StarlinkNetwork& network, space::SatelliteFleet& fleet);
  /// Engages the recorder / SLO tracker / timeline producers per config
  /// (called from the constructor; no-op when everything is off).
  void setup_observability();
  /// Feeds one request outcome to the SLO tracker and window accumulators.
  void note_outcome(Milliseconds now, bool good);
  /// Sum of the current depths of every live bottleneck queue.
  [[nodiscard]] std::size_t queue_depth_total() const noexcept;

  lsn::StarlinkNetwork* network_;
  space::SatelliteFleet* fleet_;
  LoadConfig config_;
  TrafficModel traffic_;
  /// Engine storage for the owning constructor; null in external-engine mode.
  std::unique_ptr<des::Simulator> owned_sim_;
  /// The engine every event lands on (owned_sim_ or the caller's shard).
  des::Simulator* sim_;
  space::SpaceCdnRouter router_;
  AdmissionController admission_;
  /// Applies fault_schedule events mid-run (engaged only when non-empty).
  std::optional<space::ChurnController> churn_;
  /// Hot-satellite marking + shed-to-ground (engaged when degradation.enabled).
  std::optional<DegradationPolicy> degradation_;
  /// The caller's reject hook; chained after the degradation policy's.
  AdmissionController::RejectHook user_reject_hook_;
  /// Rolling one-second deadline-miss window (flight-recorder spike trips).
  Milliseconds miss_window_start_{0.0};
  std::size_t miss_window_count_ = 0;
  std::vector<des::Rng> city_rng_;
  std::vector<const data::CountryInfo*> city_country_;
  std::vector<geo::GeoPoint> city_location_;
  /// Lazily created bottleneck queues (most satellites never serve).
  std::vector<std::unique_ptr<LinkQueue>> downlink_queues_;
  std::vector<std::unique_ptr<LinkQueue>> gateway_queues_;
  /// Cut-through ISL loads, keyed by directed link (from << 32 | to).
  std::map<std::uint64_t, net::LinkLoad> isl_load_;
  LoadReport report_;

  // --- sim-time observability (engaged only when configured) ---
  std::optional<obs::TimeSeriesRecorder> series_;
  std::optional<obs::SloTracker> slo_;
  obs::IncidentTimeline timeline_;
  bool timeline_enabled_ = false;
  /// Concurrent admitted transfers (an active-transfers series gauge).
  std::size_t inflight_ = 0;
  /// Per-window accumulators behind the recorder's probes; reset at every
  /// window close.
  struct WindowCounts {
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t no_coverage = 0;
    std::uint64_t deadline_missed = 0;
    std::uint64_t shed = 0;
    double delivered_mb = 0.0;
    des::SampleSet latency_ms;
  };
  WindowCounts window_;
};

/// Maps the scenario keys (`arrival-rate`, `object-size-dist`,
/// `link-capacity`, `burst-trace`, `load-horizon-s`, `queue-discipline`,
/// plus the resilience keys `resilient-fetch`, `request-deadline-ms`,
/// `attempt-timeout-ms`, `hedge-delay-ms` (-1 = auto-p99), `backoff-jitter`,
/// `breaker-threshold`, `breaker-cooldown-s`, `shed-to-ground`, the
/// chaos-* surge window, and the observability keys `series-out` /
/// `series-interval-s` / `timeline-out` / `slo-*`) onto a LoadConfig.  Capacities start from the
/// network preset's annotations (AccessConfig/IslConfig) scaled by
/// `link_capacity_scale`.  The fault schedule is *not* derived here --
/// chaos benches build domain schedules themselves and assign
/// LoadConfig::fault_schedule.
[[nodiscard]] LoadConfig load_config_from_spec(const sim::ScenarioSpec& spec);

/// The named object-size presets behind `object-size-dist`: "web" (small
/// objects, big catalog), "video" (large objects, small catalog), "mixed"
/// (the cache experiments' default lognormal).
/// @throws spacecdn::ConfigError on an unknown preset.
[[nodiscard]] cdn::CatalogConfig object_size_preset(const std::string& name);

}  // namespace spacecdn::load
