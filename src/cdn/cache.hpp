// Cache policies: LRU, LFU, FIFO, and a TTL decorator.
//
// Both ground CDN edges and SpaceCDN satellite caches use these; the
// content-bubble work (paper section 5) additionally needs region-aware
// eviction, built on top in spacecdn/bubbles.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "cdn/content.hpp"
#include "util/units.hpp"

namespace spacecdn::cdn {

/// Hit/miss/eviction counters.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Inserts refused because the object exceeds the whole capacity.  A
  /// placement loop that keeps offering such an object would otherwise spin
  /// invisibly: the insert fails without a hit, miss, or eviction.
  std::uint64_t rejected_oversized = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Abstract capacity-bounded object cache.
///
/// Methods take the current simulation time so that time-aware policies
/// (TTL) share the interface; time-oblivious policies ignore it.
/// Per-instance cached counter handles (defined in cache.cpp); keeps the
/// per-event cost at a pointer bump instead of a registry name lookup.
struct CacheTelemetry;

class Cache {
 public:
  explicit Cache(Megabytes capacity);
  virtual ~Cache();
  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Looks up `id`, updating policy state and hit/miss stats.
  [[nodiscard]] virtual bool access(ContentId id, Milliseconds now) = 0;

  /// Pure query: no stats or recency update.
  [[nodiscard]] virtual bool contains(ContentId id) const = 0;

  /// Admits an object (no-op if present), evicting until it fits.
  /// Objects larger than the whole capacity are rejected (returns false).
  virtual bool insert(const ContentItem& item, Milliseconds now) = 0;

  /// Removes an object if present; returns whether it was present.
  virtual bool erase(ContentId id) = 0;

  /// Drops every object (a cache-node crash loses its contents).  Counters
  /// are preserved -- crashes are not evictions -- so hit-rate analyses stay
  /// meaningful across failures.
  virtual void clear() = 0;

  [[nodiscard]] virtual std::uint64_t object_count() const = 0;

  [[nodiscard]] Megabytes capacity() const noexcept { return capacity_; }
  [[nodiscard]] Megabytes used() const noexcept { return used_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = CacheStats{}; }

  /// Tier label under which this cache reports to the telemetry registry
  /// (`spacecdn_cache_*_total{tier="..."}`).  Empty (the default) keeps the
  /// cache out of the registry -- local per-instance stats_ always accrue.
  void set_telemetry_tier(std::string_view tier);
  [[nodiscard]] const std::string& telemetry_tier() const noexcept {
    return telemetry_tier_;
  }

 protected:
  // Policy implementations report through these so the registry sees every
  // hit/miss/insert/eviction with the owning tier's label.
  void note_hit();
  void note_miss();
  void note_insert();
  void note_evict();
  void note_reject_oversized();

  Megabytes capacity_;
  Megabytes used_{0.0};
  CacheStats stats_;

 private:
  std::string telemetry_tier_;
  std::unique_ptr<CacheTelemetry> telemetry_;
};

/// Least-recently-used eviction.  O(1) access and insert.
class LruCache final : public Cache {
 public:
  explicit LruCache(Megabytes capacity);

  [[nodiscard]] bool access(ContentId id, Milliseconds now) override;
  [[nodiscard]] bool contains(ContentId id) const override;
  bool insert(const ContentItem& item, Milliseconds now) override;
  bool erase(ContentId id) override;
  void clear() override;
  [[nodiscard]] std::uint64_t object_count() const override;

 private:
  struct Entry {
    ContentId id;
    Megabytes size;
  };
  void evict_one();

  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<ContentId, std::list<Entry>::iterator> index_;
};

/// Least-frequently-used eviction with LRU tie-breaking (frequency buckets;
/// O(1) amortised).
class LfuCache final : public Cache {
 public:
  explicit LfuCache(Megabytes capacity);

  [[nodiscard]] bool access(ContentId id, Milliseconds now) override;
  [[nodiscard]] bool contains(ContentId id) const override;
  bool insert(const ContentItem& item, Milliseconds now) override;
  bool erase(ContentId id) override;
  void clear() override;
  [[nodiscard]] std::uint64_t object_count() const override;

 private:
  struct Entry {
    ContentId id;
    Megabytes size;
    std::uint64_t frequency;
  };
  using Bucket = std::list<Entry>;  // within a frequency: front = most recent

  void bump(ContentId id);
  void evict_one();

  std::map<std::uint64_t, Bucket> buckets_;  // frequency -> entries
  std::unordered_map<ContentId, Bucket::iterator> index_;
};

/// First-in first-out eviction (insertion order, no recency update).
class FifoCache final : public Cache {
 public:
  explicit FifoCache(Megabytes capacity);

  [[nodiscard]] bool access(ContentId id, Milliseconds now) override;
  [[nodiscard]] bool contains(ContentId id) const override;
  bool insert(const ContentItem& item, Milliseconds now) override;
  bool erase(ContentId id) override;
  void clear() override;
  [[nodiscard]] std::uint64_t object_count() const override;

 private:
  struct Entry {
    ContentId id;
    Megabytes size;
  };
  void evict_one();

  std::list<Entry> fifo_;  // front = oldest
  std::unordered_map<ContentId, std::list<Entry>::iterator> index_;
};

/// Decorator adding a time-to-live to any inner cache: entries older than
/// `ttl` count as misses and are erased on access.
class TtlCache final : public Cache {
 public:
  TtlCache(std::unique_ptr<Cache> inner, Milliseconds ttl);

  [[nodiscard]] bool access(ContentId id, Milliseconds now) override;
  [[nodiscard]] bool contains(ContentId id) const override;
  bool insert(const ContentItem& item, Milliseconds now) override;
  bool erase(ContentId id) override;
  void clear() override;
  [[nodiscard]] std::uint64_t object_count() const override;

 private:
  std::unique_ptr<Cache> inner_;
  Milliseconds ttl_;
  std::unordered_map<ContentId, Milliseconds> inserted_at_;
};

/// Eviction policy selector for factories.
enum class CachePolicy { kLru, kLfu, kFifo };

[[nodiscard]] std::unique_ptr<Cache> make_cache(CachePolicy policy, Megabytes capacity);

[[nodiscard]] std::string_view to_string(CachePolicy policy) noexcept;

}  // namespace spacecdn::cdn
