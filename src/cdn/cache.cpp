#include "cdn/cache.hpp"

#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace spacecdn::cdn {

struct CacheTelemetry {
  explicit CacheTelemetry(const std::string& tier)
      : hit("spacecdn_cache_hit_total", {{"tier", tier}}),
        miss("spacecdn_cache_miss_total", {{"tier", tier}}),
        insert("spacecdn_cache_insert_total", {{"tier", tier}}),
        evict("spacecdn_cache_evict_total", {{"tier", tier}}),
        reject_oversized("spacecdn_cache_reject_oversized_total", {{"tier", tier}}) {}

  obs::CounterHandle hit;
  obs::CounterHandle miss;
  obs::CounterHandle insert;
  obs::CounterHandle evict;
  obs::CounterHandle reject_oversized;
};

Cache::Cache(Megabytes capacity) : capacity_(capacity) {
  SPACECDN_EXPECT(capacity.value() > 0.0, "cache capacity must be positive");
}

Cache::~Cache() = default;

void Cache::set_telemetry_tier(std::string_view tier) {
  telemetry_tier_ = tier;
  telemetry_ =
      telemetry_tier_.empty() ? nullptr : std::make_unique<CacheTelemetry>(telemetry_tier_);
}

void Cache::note_hit() {
  ++stats_.hits;
  if (telemetry_) telemetry_->hit.inc();
}

void Cache::note_miss() {
  ++stats_.misses;
  if (telemetry_) telemetry_->miss.inc();
}

void Cache::note_insert() {
  ++stats_.insertions;
  if (telemetry_) telemetry_->insert.inc();
}

void Cache::note_evict() {
  ++stats_.evictions;
  if (telemetry_) telemetry_->evict.inc();
}

void Cache::note_reject_oversized() {
  ++stats_.rejected_oversized;
  if (telemetry_) telemetry_->reject_oversized.inc();
}

// ---------------------------------------------------------------- LruCache

LruCache::LruCache(Megabytes capacity) : Cache(capacity) {}

bool LruCache::access(ContentId id, Milliseconds /*now*/) {
  SPACECDN_PROFILE("Cache::access");
  const auto it = index_.find(id);
  if (it == index_.end()) {
    note_miss();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  note_hit();
  return true;
}

bool LruCache::contains(ContentId id) const { return index_.count(id) != 0; }

bool LruCache::insert(const ContentItem& item, Milliseconds /*now*/) {
  if (const auto it = index_.find(item.id); it != index_.end()) {
    // Re-storing an object counts as a use: refresh its recency so a warm
    // re-insert (e.g. a bubble refresh) protects it from eviction.
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  if (item.size > capacity_) {
    note_reject_oversized();
    return false;
  }
  while (used_ + item.size > capacity_) evict_one();
  lru_.push_front(Entry{item.id, item.size});
  index_[item.id] = lru_.begin();
  used_ += item.size;
  note_insert();
  return true;
}

bool LruCache::erase(ContentId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  used_ -= it->second->size;
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

void LruCache::clear() {
  lru_.clear();
  index_.clear();
  used_ = Megabytes{0.0};
}

std::uint64_t LruCache::object_count() const { return index_.size(); }

void LruCache::evict_one() {
  SPACECDN_EXPECT(!lru_.empty(), "evicting from an empty cache");
  const Entry& victim = lru_.back();
  used_ -= victim.size;
  index_.erase(victim.id);
  lru_.pop_back();
  note_evict();
}

// ---------------------------------------------------------------- LfuCache

LfuCache::LfuCache(Megabytes capacity) : Cache(capacity) {}

bool LfuCache::access(ContentId id, Milliseconds /*now*/) {
  SPACECDN_PROFILE("Cache::access");
  if (index_.find(id) == index_.end()) {
    note_miss();
    return false;
  }
  bump(id);
  note_hit();
  return true;
}

bool LfuCache::contains(ContentId id) const { return index_.count(id) != 0; }

bool LfuCache::insert(const ContentItem& item, Milliseconds /*now*/) {
  if (index_.count(item.id) != 0) return true;
  if (item.size > capacity_) {
    note_reject_oversized();
    return false;
  }
  while (used_ + item.size > capacity_) evict_one();
  Bucket& bucket = buckets_[1];
  bucket.push_front(Entry{item.id, item.size, 1});
  index_[item.id] = bucket.begin();
  used_ += item.size;
  note_insert();
  return true;
}

bool LfuCache::erase(ContentId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  const auto bucket_it = buckets_.find(it->second->frequency);
  used_ -= it->second->size;
  bucket_it->second.erase(it->second);
  if (bucket_it->second.empty()) buckets_.erase(bucket_it);
  index_.erase(it);
  return true;
}

void LfuCache::clear() {
  buckets_.clear();
  index_.clear();
  used_ = Megabytes{0.0};
}

std::uint64_t LfuCache::object_count() const { return index_.size(); }

void LfuCache::bump(ContentId id) {
  const auto idx_it = index_.find(id);
  Entry entry = *idx_it->second;
  const auto old_bucket = buckets_.find(entry.frequency);
  old_bucket->second.erase(idx_it->second);
  if (old_bucket->second.empty()) buckets_.erase(old_bucket);
  ++entry.frequency;
  Bucket& bucket = buckets_[entry.frequency];
  bucket.push_front(entry);
  idx_it->second = bucket.begin();
}

void LfuCache::evict_one() {
  SPACECDN_EXPECT(!buckets_.empty(), "evicting from an empty cache");
  Bucket& lowest = buckets_.begin()->second;
  // Within the lowest frequency, the least recently touched sits at the back.
  const Entry& victim = lowest.back();
  used_ -= victim.size;
  index_.erase(victim.id);
  lowest.pop_back();
  if (lowest.empty()) buckets_.erase(buckets_.begin());
  note_evict();
}

// --------------------------------------------------------------- FifoCache

FifoCache::FifoCache(Megabytes capacity) : Cache(capacity) {}

bool FifoCache::access(ContentId id, Milliseconds /*now*/) {
  SPACECDN_PROFILE("Cache::access");
  if (index_.find(id) == index_.end()) {
    note_miss();
    return false;
  }
  note_hit();
  return true;
}

bool FifoCache::contains(ContentId id) const { return index_.count(id) != 0; }

bool FifoCache::insert(const ContentItem& item, Milliseconds /*now*/) {
  if (index_.count(item.id) != 0) return true;
  if (item.size > capacity_) {
    note_reject_oversized();
    return false;
  }
  while (used_ + item.size > capacity_) evict_one();
  fifo_.push_back(Entry{item.id, item.size});
  index_[item.id] = std::prev(fifo_.end());
  used_ += item.size;
  note_insert();
  return true;
}

bool FifoCache::erase(ContentId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  used_ -= it->second->size;
  fifo_.erase(it->second);
  index_.erase(it);
  return true;
}

void FifoCache::clear() {
  fifo_.clear();
  index_.clear();
  used_ = Megabytes{0.0};
}

std::uint64_t FifoCache::object_count() const { return index_.size(); }

void FifoCache::evict_one() {
  SPACECDN_EXPECT(!fifo_.empty(), "evicting from an empty cache");
  const Entry& victim = fifo_.front();
  used_ -= victim.size;
  index_.erase(victim.id);
  fifo_.pop_front();
  note_evict();
}

// ---------------------------------------------------------------- TtlCache

TtlCache::TtlCache(std::unique_ptr<Cache> inner, Milliseconds ttl)
    : Cache(inner->capacity()), inner_(std::move(inner)), ttl_(ttl) {
  SPACECDN_EXPECT(ttl.value() > 0.0, "TTL must be positive");
}

bool TtlCache::access(ContentId id, Milliseconds now) {
  const auto it = inserted_at_.find(id);
  if (it != inserted_at_.end() && now - it->second > ttl_) {
    inner_->erase(id);
    inserted_at_.erase(it);
    note_miss();
    return false;
  }
  const bool hit = inner_->access(id, now);
  hit ? note_hit() : note_miss();
  return hit;
}

bool TtlCache::contains(ContentId id) const { return inner_->contains(id); }

bool TtlCache::insert(const ContentItem& item, Milliseconds now) {
  // Check before delegating so the decorator's own stats record the
  // rejection; the inner cache never sees the doomed offer.
  if (item.size > capacity_) {
    note_reject_oversized();
    return false;
  }
  if (!inner_->insert(item, now)) return false;
  inserted_at_[item.id] = now;
  note_insert();
  // Entries the inner cache evicted are lazily dropped from inserted_at_ on
  // their next access; the map is advisory only.
  return true;
}

bool TtlCache::erase(ContentId id) {
  inserted_at_.erase(id);
  return inner_->erase(id);
}

void TtlCache::clear() {
  inner_->clear();
  inserted_at_.clear();
}

std::uint64_t TtlCache::object_count() const { return inner_->object_count(); }

// ----------------------------------------------------------------- factory

std::unique_ptr<Cache> make_cache(CachePolicy policy, Megabytes capacity) {
  switch (policy) {
    case CachePolicy::kLru:
      return std::make_unique<LruCache>(capacity);
    case CachePolicy::kLfu:
      return std::make_unique<LfuCache>(capacity);
    case CachePolicy::kFifo:
      return std::make_unique<FifoCache>(capacity);
  }
  throw ConfigError("unknown cache policy");
}

std::string_view to_string(CachePolicy policy) noexcept {
  switch (policy) {
    case CachePolicy::kLru: return "LRU";
    case CachePolicy::kLfu: return "LFU";
    case CachePolicy::kFifo: return "FIFO";
  }
  return "unknown";
}

}  // namespace spacecdn::cdn
