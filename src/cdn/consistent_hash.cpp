#include "cdn/consistent_hash.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spacecdn::cdn {

ConsistentHashRing::ConsistentHashRing(std::uint32_t vnodes_per_server)
    : vnodes_per_server_(vnodes_per_server) {
  SPACECDN_EXPECT(vnodes_per_server > 0, "need at least one virtual node per server");
}

std::uint64_t ConsistentHashRing::hash(std::uint64_t x) noexcept {
  // splitmix64 finaliser: fast, well-distributed, dependency-free.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t ConsistentHashRing::hash_name(const std::string& name,
                                            std::uint32_t vnode) noexcept {
  // FNV-1a over the name, then mix in the vnode index.
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return hash(h ^ (static_cast<std::uint64_t>(vnode) << 32));
}

void ConsistentHashRing::add_server(const std::string& name) {
  SPACECDN_EXPECT(!name.empty(), "server name must not be empty");
  if (std::find(servers_.begin(), servers_.end(), name) != servers_.end()) return;
  servers_.push_back(name);
  for (std::uint32_t v = 0; v < vnodes_per_server_; ++v) {
    ring_.emplace(hash_name(name, v), name);
  }
}

bool ConsistentHashRing::remove_server(const std::string& name) {
  const auto it = std::find(servers_.begin(), servers_.end(), name);
  if (it == servers_.end()) return false;
  servers_.erase(it);
  for (auto ring_it = ring_.begin(); ring_it != ring_.end();) {
    if (ring_it->second == name) {
      ring_it = ring_.erase(ring_it);
    } else {
      ++ring_it;
    }
  }
  return true;
}

const std::string& ConsistentHashRing::server_for(ContentId id) const {
  SPACECDN_EXPECT(!ring_.empty(), "hash ring has no servers");
  auto it = ring_.lower_bound(hash(id));
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<std::string> ConsistentHashRing::servers_for(ContentId id,
                                                         std::uint32_t replicas) const {
  SPACECDN_EXPECT(!ring_.empty(), "hash ring has no servers");
  std::vector<std::string> out;
  auto it = ring_.lower_bound(hash(id));
  // Walk clockwise collecting distinct servers.
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < replicas; ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

std::map<std::string, double> ConsistentHashRing::ownership_fractions(
    std::uint64_t sample_size) const {
  SPACECDN_EXPECT(sample_size > 0, "sample must be non-empty");
  std::map<std::string, double> counts;
  for (std::uint64_t id = 0; id < sample_size; ++id) {
    counts[server_for(id)] += 1.0;
  }
  for (auto& [name, count] : counts) count /= static_cast<double>(sample_size);
  return counts;
}

}  // namespace spacecdn::cdn
