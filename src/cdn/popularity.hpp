// Regional content popularity.
//
// Content popularity is Zipf-distributed, but *which* objects are popular
// differs by region -- the driver of the paper's content-bubble idea and of
// why a Mozambican user mapped to a Frankfurt cache sees misses.  Each
// region gets a deterministic permutation of the catalog, so rank 1 in
// Africa is a different object than rank 1 in Europe, with partial overlap
// controlled by `global_share` (some content is globally popular).
#pragma once

#include <cstdint>
#include <vector>

#include "cdn/content.hpp"
#include "data/types.hpp"
#include "des/random.hpp"

namespace spacecdn::cdn {

/// Tunables of the regional popularity model.
struct PopularityConfig {
  double zipf_exponent = 0.9;  ///< classic web/CDN value 0.6-1.0
  /// Fraction of top-rank slots occupied by the same global objects in every
  /// region (global hits: major software updates, viral videos).
  double global_share = 0.2;
  std::uint64_t permutation_seed = 4242;
};

/// Maps (region, rank) -> object and samples requests per region.
class RegionalPopularity {
 public:
  /// @throws spacecdn::ConfigError on invalid config.
  RegionalPopularity(std::uint64_t catalog_size, PopularityConfig config);

  [[nodiscard]] std::uint64_t catalog_size() const noexcept { return catalog_size_; }
  [[nodiscard]] const PopularityConfig& config() const noexcept { return config_; }

  /// The object at popularity rank `rank` (1-based) in `region`.
  [[nodiscard]] ContentId object_at_rank(data::Region region, std::uint64_t rank) const;

  /// Popularity rank of an object in a region (1-based).
  [[nodiscard]] std::uint64_t rank_of(data::Region region, ContentId id) const;

  /// Draws one request from the region's Zipf distribution.
  [[nodiscard]] ContentId sample(data::Region region, des::Rng& rng) const;

  /// The region's `k` most popular objects, in rank order.
  [[nodiscard]] std::vector<ContentId> top_k(data::Region region, std::uint64_t k) const;

  /// Jaccard overlap of the top-k sets of two regions (diagnostic used by
  /// the content-bubble benches).
  [[nodiscard]] double top_k_overlap(data::Region a, data::Region b,
                                     std::uint64_t k) const;

 private:
  [[nodiscard]] const std::vector<ContentId>& permutation(data::Region region) const;

  std::uint64_t catalog_size_;
  PopularityConfig config_;
  des::ZipfDistribution zipf_;
  // One rank->object permutation per region, plus inverse maps.
  std::vector<std::vector<ContentId>> rank_to_object_;
  std::vector<std::vector<std::uint64_t>> object_to_rank_;
};

}  // namespace spacecdn::cdn
