#include "cdn/deployment.hpp"

#include "geo/distance.hpp"
#include "util/error.hpp"

namespace spacecdn::cdn {

CdnDeployment::CdnDeployment(std::span<const data::CdnSiteInfo> sites,
                             const DeploymentConfig& config)
    : config_(config) {
  SPACECDN_EXPECT(!sites.empty(), "deployment needs at least one site");
  sites_.reserve(sites.size());
  caches_.reserve(sites.size());
  for (const auto& site : sites) {
    sites_.push_back(&site);
    caches_.push_back(make_cache(config.policy, config.edge_capacity));
    caches_.back()->set_telemetry_tier("ground");
  }
}

const data::CdnSiteInfo& CdnDeployment::site(std::size_t index) const {
  SPACECDN_EXPECT(index < sites_.size(), "site index out of range");
  return *sites_[index];
}

geo::GeoPoint CdnDeployment::site_location(std::size_t index) const {
  return data::location(site(index));
}

Cache& CdnDeployment::cache(std::size_t index) {
  SPACECDN_EXPECT(index < caches_.size(), "site index out of range");
  return *caches_[index];
}

const Cache& CdnDeployment::cache(std::size_t index) const {
  SPACECDN_EXPECT(index < caches_.size(), "site index out of range");
  return *caches_[index];
}

std::size_t CdnDeployment::nearest_site(const geo::GeoPoint& point) const {
  std::size_t best = 0;
  Kilometers best_distance = geo::great_circle_distance(point, site_location(0));
  for (std::size_t i = 1; i < sites_.size(); ++i) {
    const Kilometers d = geo::great_circle_distance(point, site_location(i));
    if (d < best_distance) {
      best_distance = d;
      best = i;
    }
  }
  return best;
}

ServeResult CdnDeployment::serve(std::size_t site_index, const ContentItem& item,
                                 Milliseconds client_site_rtt,
                                 Milliseconds site_origin_rtt, Milliseconds now) {
  Cache& edge = cache(site_index);
  const bool hit = edge.access(item.id, now);
  if (!hit) {
    // Origin fetch, then admit; admission failure (object larger than the
    // cache) still serves the client, just without caching.
    (void)edge.insert(item, now);
  }
  return ServeResult{hit, client_site_rtt + (hit ? Milliseconds{0.0} : site_origin_rtt)};
}

void CdnDeployment::warm(std::size_t site_index, std::span<const ContentItem> items,
                         Milliseconds now) {
  Cache& edge = cache(site_index);
  for (const auto& item : items) (void)edge.insert(item, now);
}

}  // namespace spacecdn::cdn
