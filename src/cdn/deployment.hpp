// A deployed CDN: edge caches at anycast sites plus an origin.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "cdn/cache.hpp"
#include "cdn/content.hpp"
#include "data/types.hpp"
#include "geo/coordinates.hpp"

namespace spacecdn::cdn {

/// Outcome of serving one request through an edge site.
struct ServeResult {
  bool hit = false;
  /// First-byte latency the client observes: RTT to the edge, plus the
  /// edge-to-origin fetch on a miss.
  Milliseconds first_byte{0.0};
};

/// Configuration of a ground CDN deployment.
struct DeploymentConfig {
  CachePolicy policy = CachePolicy::kLru;
  Megabytes edge_capacity{50'000.0};  ///< 50 TB per site
  geo::GeoPoint origin{39.04, -77.49, 0.0};  ///< origin datacenter (Ashburn)
};

/// Edge caches at every site of the embedded CDN dataset (or a custom span).
class CdnDeployment {
 public:
  CdnDeployment(std::span<const data::CdnSiteInfo> sites, const DeploymentConfig& config);

  [[nodiscard]] std::size_t site_count() const noexcept { return sites_.size(); }
  [[nodiscard]] const data::CdnSiteInfo& site(std::size_t index) const;
  [[nodiscard]] geo::GeoPoint site_location(std::size_t index) const;
  [[nodiscard]] geo::GeoPoint origin_location() const noexcept { return config_.origin; }

  [[nodiscard]] Cache& cache(std::size_t index);
  [[nodiscard]] const Cache& cache(std::size_t index) const;

  /// Index of the geographically nearest site to a point.
  [[nodiscard]] std::size_t nearest_site(const geo::GeoPoint& point) const;

  /// Serves `item` at `site_index`.  `client_site_rtt` and `site_origin_rtt`
  /// come from whichever network model (terrestrial or LSN) carries the
  /// request.  On a miss the object is fetched from the origin and admitted.
  [[nodiscard]] ServeResult serve(std::size_t site_index, const ContentItem& item,
                                  Milliseconds client_site_rtt,
                                  Milliseconds site_origin_rtt, Milliseconds now);

  /// Pre-warms one site with the given objects (e.g. a region's top-k).
  void warm(std::size_t site_index, std::span<const ContentItem> items, Milliseconds now);

  [[nodiscard]] const DeploymentConfig& config() const noexcept { return config_; }

 private:
  std::vector<const data::CdnSiteInfo*> sites_;
  std::vector<std::unique_ptr<Cache>> caches_;
  DeploymentConfig config_;
};

}  // namespace spacecdn::cdn
