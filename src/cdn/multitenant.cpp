#include "cdn/multitenant.hpp"

#include <numeric>

#include "util/error.hpp"

namespace spacecdn::cdn {

std::string_view to_string(TenancyMode mode) noexcept {
  return mode == TenancyMode::kPartitioned ? "partitioned" : "shared";
}

MultiTenantCache::MultiTenantCache(Megabytes capacity, std::vector<Tenant> tenants,
                                   TenancyMode mode, CachePolicy policy)
    : tenants_(std::move(tenants)), mode_(mode) {
  SPACECDN_EXPECT(!tenants_.empty(), "need at least one tenant");
  double total_share = 0.0;
  for (const auto& t : tenants_) {
    SPACECDN_EXPECT(t.share > 0.0, "tenant share must be positive");
    total_share += t.share;
  }
  SPACECDN_EXPECT(total_share <= 1.0 + 1e-9, "tenant shares must sum to <= 1");

  stats_.resize(tenants_.size());
  if (mode_ == TenancyMode::kPartitioned) {
    for (const auto& t : tenants_) {
      caches_.push_back(make_cache(policy, capacity * t.share));
    }
  } else {
    caches_.push_back(make_cache(policy, capacity * total_share));
  }
}

const Tenant& MultiTenantCache::tenant(std::size_t index) const {
  SPACECDN_EXPECT(index < tenants_.size(), "tenant index out of range");
  return tenants_[index];
}

ContentId MultiTenantCache::scoped_id(std::size_t tenant_index, ContentId id) noexcept {
  // Reserve the top byte for the tenant; catalogs are far below 2^56.
  return (static_cast<ContentId>(tenant_index + 1) << 56) | id;
}

bool MultiTenantCache::serve(std::size_t tenant_index, const ContentItem& item,
                             Milliseconds now) {
  SPACECDN_EXPECT(tenant_index < tenants_.size(), "tenant index out of range");
  Cache& cache =
      mode_ == TenancyMode::kPartitioned ? *caches_[tenant_index] : *caches_[0];

  ContentItem scoped = item;
  if (mode_ == TenancyMode::kShared) scoped.id = scoped_id(tenant_index, item.id);

  const bool hit = cache.access(scoped.id, now);
  if (hit) {
    ++stats_[tenant_index].hits;
  } else {
    ++stats_[tenant_index].misses;
    if (cache.insert(scoped, now)) ++stats_[tenant_index].insertions;
  }
  return hit;
}

const CacheStats& MultiTenantCache::tenant_stats(std::size_t index) const {
  SPACECDN_EXPECT(index < stats_.size(), "tenant index out of range");
  return stats_[index];
}

Megabytes MultiTenantCache::used() const {
  Megabytes total{0.0};
  for (const auto& c : caches_) total += c->used();
  return total;
}

}  // namespace spacecdn::cdn
