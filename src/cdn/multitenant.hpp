// Multi-tenant satellite caches (the paper's MetaCDN-style economics).
//
// Paper section 5: "We envision a MetaCDN-like model where the LSNs own and
// operate their satellite caches ... and allow multiple customers (e.g.
// streaming services) to cache their content on the satellites."  The
// operator must then split each satellite's storage between tenants.  This
// module implements the two canonical designs -- hard partitioning by
// purchased share vs a fully shared cache -- so the trade-off (isolation vs
// statistical multiplexing) can be measured.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cdn/cache.hpp"

namespace spacecdn::cdn {

/// A paying CDN customer.
struct Tenant {
  std::string name;
  /// Fraction of the cache purchased; shares across tenants must sum to <=1.
  double share = 0.0;
};

/// How tenant storage is organised.
enum class TenancyMode {
  kPartitioned,  ///< each tenant gets a dedicated share-sized cache
  kShared,       ///< one cache; tenants compete under a global policy
};

[[nodiscard]] std::string_view to_string(TenancyMode mode) noexcept;

/// A multi-tenant object cache with per-tenant accounting.
class MultiTenantCache {
 public:
  /// @throws spacecdn::ConfigError when shares exceed 1 or no tenants given.
  MultiTenantCache(Megabytes capacity, std::vector<Tenant> tenants, TenancyMode mode,
                   CachePolicy policy = CachePolicy::kLru);

  [[nodiscard]] std::size_t tenant_count() const noexcept { return tenants_.size(); }
  [[nodiscard]] const Tenant& tenant(std::size_t index) const;
  [[nodiscard]] TenancyMode mode() const noexcept { return mode_; }

  /// Serves one request of tenant `tenant_index` for `item`: returns whether
  /// it hit; on miss the object is admitted into the tenant's storage.
  bool serve(std::size_t tenant_index, const ContentItem& item, Milliseconds now);

  [[nodiscard]] const CacheStats& tenant_stats(std::size_t index) const;

  /// Total bytes resident across all tenants.
  [[nodiscard]] Megabytes used() const;

 private:
  /// Namespaces an object id per tenant so that tenants sharing a cache do
  /// not alias each other's objects.
  [[nodiscard]] static ContentId scoped_id(std::size_t tenant_index,
                                           ContentId id) noexcept;

  std::vector<Tenant> tenants_;
  TenancyMode mode_;
  // kPartitioned: one cache per tenant; kShared: caches_[0] only.
  std::vector<std::unique_ptr<Cache>> caches_;
  std::vector<CacheStats> stats_;
};

}  // namespace spacecdn::cdn
