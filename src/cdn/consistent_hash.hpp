// Consistent hashing for within-site server clusters.
//
// A CDN site is not one machine: content is sharded across a cluster so
// each object has one home server (maximising aggregate cache capacity).
// Consistent hashing with virtual nodes keeps the shard map balanced and
// minimally disturbed when servers join or fail -- the mechanism behind
// production CDN clusters since the original Akamai design (paper section 2
// cites the Akamai platform paper).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cdn/content.hpp"

namespace spacecdn::cdn {

/// A hash ring mapping object ids to named servers.
class ConsistentHashRing {
 public:
  /// @param vnodes_per_server  virtual nodes per server; more = better
  /// balance at the cost of a larger ring (128-256 is typical).
  explicit ConsistentHashRing(std::uint32_t vnodes_per_server = 160);

  /// Adds a server; idempotent.  @throws spacecdn::ConfigError on empty name.
  void add_server(const std::string& name);

  /// Removes a server; returns whether it was present.
  bool remove_server(const std::string& name);

  [[nodiscard]] std::size_t server_count() const noexcept { return servers_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ring_.empty(); }

  /// The server owning `id`.  @throws spacecdn::ConfigError when the ring is
  /// empty.
  [[nodiscard]] const std::string& server_for(ContentId id) const;

  /// The first `replicas` distinct servers clockwise of `id` (primary plus
  /// within-cluster replica targets).
  [[nodiscard]] std::vector<std::string> servers_for(ContentId id,
                                                     std::uint32_t replicas) const;

  /// Fraction of a sample of `sample_size` object ids owned by each server;
  /// diagnostic for balance tests.
  [[nodiscard]] std::map<std::string, double> ownership_fractions(
      std::uint64_t sample_size = 20'000) const;

 private:
  [[nodiscard]] static std::uint64_t hash(std::uint64_t x) noexcept;
  [[nodiscard]] static std::uint64_t hash_name(const std::string& name,
                                               std::uint32_t vnode) noexcept;

  std::uint32_t vnodes_per_server_;
  std::map<std::uint64_t, std::string> ring_;  // position -> server
  std::vector<std::string> servers_;
};

}  // namespace spacecdn::cdn
