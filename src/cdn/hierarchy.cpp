#include "cdn/hierarchy.hpp"

#include <map>

#include "data/datasets.hpp"
#include "geo/distance.hpp"
#include "util/error.hpp"

namespace spacecdn::cdn {

std::string_view to_string(ServedBy tier) noexcept {
  switch (tier) {
    case ServedBy::kEdge: return "edge";
    case ServedBy::kRegional: return "regional";
    case ServedBy::kOrigin: return "origin";
  }
  return "unknown";
}

CdnHierarchy::CdnHierarchy(std::span<const data::CdnSiteInfo> sites,
                           const HierarchyConfig& config)
    : config_(config), backbone_(config.backbone) {
  SPACECDN_EXPECT(!sites.empty(), "hierarchy needs at least one site");

  // Group sites by world region.
  std::map<data::Region, std::vector<const data::CdnSiteInfo*>> by_region;
  for (const auto& site : sites) {
    by_region[data::country(site.country_code).region].push_back(&site);
  }

  // The regional parent is the region's most central site (minimum total
  // great-circle distance to its siblings).
  std::map<data::Region, std::size_t> regional_index;
  for (const auto& [region, members] : by_region) {
    const data::CdnSiteInfo* best = members.front();
    double best_total = 1e300;
    for (const data::CdnSiteInfo* candidate : members) {
      double total = 0.0;
      for (const data::CdnSiteInfo* other : members) {
        total += geo::great_circle_distance(data::location(*candidate),
                                            data::location(*other))
                     .value();
      }
      if (total < best_total) {
        best_total = total;
        best = candidate;
      }
    }
    regional_index[region] = regionals_.size();
    regionals_.push_back(
        Regional{best, make_cache(config.policy, config.regional_capacity)});
  }

  for (const auto& site : sites) {
    const data::Region region = data::country(site.country_code).region;
    edges_.push_back(Edge{&site, make_cache(config.policy, config.edge_capacity),
                          regional_index[region]});
  }
}

const data::CdnSiteInfo& CdnHierarchy::edge_site(std::size_t index) const {
  SPACECDN_EXPECT(index < edges_.size(), "edge index out of range");
  return *edges_[index].site;
}

std::size_t CdnHierarchy::nearest_edge(const geo::GeoPoint& client) const {
  std::size_t best = 0;
  double best_d = 1e300;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const double d =
        geo::great_circle_distance(client, data::location(*edges_[i].site)).value();
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

const data::CdnSiteInfo& CdnHierarchy::parent_of(std::size_t edge_index) const {
  SPACECDN_EXPECT(edge_index < edges_.size(), "edge index out of range");
  return *regionals_[edges_[edge_index].regional_index].site;
}

HierarchyResult CdnHierarchy::serve(std::size_t edge_index, const ContentItem& item,
                                    Milliseconds client_rtt, Milliseconds now) {
  SPACECDN_EXPECT(edge_index < edges_.size(), "edge index out of range");
  Edge& edge = edges_[edge_index];
  Regional& regional = regionals_[edge.regional_index];

  HierarchyResult result;
  result.first_byte = client_rtt;

  if (edge.cache->access(item.id, now)) {
    ++stats_.edge_hits;
    result.served_by = ServedBy::kEdge;
    return result;
  }

  // Edge miss: ask the regional parent.
  const Milliseconds edge_regional_rtt = backbone_.rtt(
      data::location(*edge.site), data::location(*regional.site));
  result.first_byte += edge_regional_rtt;

  if (regional.cache->access(item.id, now)) {
    ++stats_.regional_hits;
    result.served_by = ServedBy::kRegional;
  } else {
    // Regional miss: origin fetch.
    const Milliseconds regional_origin_rtt =
        backbone_.rtt(data::location(*regional.site), config_.origin);
    result.first_byte += regional_origin_rtt;
    ++stats_.origin_fetches;
    result.served_by = ServedBy::kOrigin;
    (void)regional.cache->insert(item, now);  // pull-through at the parent
  }
  (void)edge.cache->insert(item, now);  // ...and at the edge
  return result;
}

}  // namespace spacecdn::cdn
