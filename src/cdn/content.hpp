// Content catalog: the object universe a CDN serves.
#pragma once

#include <cstdint>
#include <vector>

#include "data/types.hpp"
#include "des/random.hpp"
#include "util/units.hpp"

namespace spacecdn::cdn {

/// Dense object identifier; also the index into the catalog.
using ContentId = std::uint64_t;

/// One cacheable object.
struct ContentItem {
  ContentId id = 0;
  Megabytes size{1.0};
  /// Region whose audience this object primarily serves ("a Boca Juniors vs
  /// River Plate game is popular mostly over South America" -- paper
  /// section 5, Content Bubbles).
  data::Region home_region = data::Region::kNorthAmerica;
};

/// Size distribution of catalog objects (lognormal, clamped).
struct CatalogConfig {
  std::uint64_t object_count = 10'000;
  Megabytes median_size{4.0};
  double size_sigma = 1.2;
  Megabytes min_size{0.01};
  Megabytes max_size{4000.0};
};

/// Immutable object universe with randomly drawn sizes and home regions.
class ContentCatalog {
 public:
  /// @throws spacecdn::ConfigError on an empty catalog or bad size bounds.
  ContentCatalog(const CatalogConfig& config, des::Rng& rng);

  [[nodiscard]] std::uint64_t size() const noexcept { return items_.size(); }

  /// @throws spacecdn::NotFoundError when id is outside the catalog.
  [[nodiscard]] const ContentItem& item(ContentId id) const;

  [[nodiscard]] const std::vector<ContentItem>& items() const noexcept { return items_; }

  /// Sum of all object sizes.
  [[nodiscard]] Megabytes total_bytes() const noexcept { return total_; }

 private:
  std::vector<ContentItem> items_;
  Megabytes total_{0.0};
};

}  // namespace spacecdn::cdn
