#include "cdn/content.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spacecdn::cdn {

ContentCatalog::ContentCatalog(const CatalogConfig& config, des::Rng& rng) {
  SPACECDN_EXPECT(config.object_count > 0, "catalog must not be empty");
  SPACECDN_EXPECT(config.min_size.value() > 0.0 && config.max_size >= config.min_size,
                  "catalog size bounds must be positive and ordered");

  constexpr data::Region kRegions[] = {
      data::Region::kNorthAmerica, data::Region::kLatinAmerica, data::Region::kEurope,
      data::Region::kAfrica,       data::Region::kAsia,         data::Region::kOceania,
  };

  items_.reserve(config.object_count);
  double total = 0.0;
  for (ContentId id = 0; id < config.object_count; ++id) {
    const double raw = rng.lognormal_median(config.median_size.value(), config.size_sigma);
    const double mb = std::clamp(raw, config.min_size.value(), config.max_size.value());
    const auto region =
        kRegions[rng.uniform_int(0, std::size(kRegions) - 1)];
    items_.push_back(ContentItem{id, Megabytes{mb}, region});
    total += mb;
  }
  total_ = Megabytes{total};
}

const ContentItem& ContentCatalog::item(ContentId id) const {
  if (id >= items_.size()) {
    throw NotFoundError("content id outside catalog: " + std::to_string(id));
  }
  return items_[id];
}

}  // namespace spacecdn::cdn
