#include "cdn/popularity.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/error.hpp"

namespace spacecdn::cdn {

namespace {
constexpr std::size_t kRegionCount = 6;

std::size_t region_index(data::Region r) { return static_cast<std::size_t>(r); }
}  // namespace

RegionalPopularity::RegionalPopularity(std::uint64_t catalog_size, PopularityConfig config)
    : catalog_size_(catalog_size),
      config_(config),
      zipf_(catalog_size, config.zipf_exponent) {
  SPACECDN_EXPECT(catalog_size > 0, "catalog must not be empty");
  SPACECDN_EXPECT(config.global_share >= 0.0 && config.global_share <= 1.0,
                  "global share must be within [0, 1]");

  // Globally-popular objects occupy every region's top ranks in the same
  // order; the remainder of each region's ranking is an independent
  // deterministic shuffle.
  const auto global_top =
      static_cast<std::uint64_t>(config.global_share * static_cast<double>(catalog_size));
  des::Rng global_rng(config.permutation_seed);
  std::vector<ContentId> global_order(catalog_size);
  std::iota(global_order.begin(), global_order.end(), ContentId{0});
  global_rng.shuffle(global_order);

  rank_to_object_.resize(kRegionCount);
  object_to_rank_.resize(kRegionCount);
  for (std::size_t r = 0; r < kRegionCount; ++r) {
    std::vector<ContentId> order = global_order;
    // Re-shuffle everything past the shared global head, per region.
    des::Rng region_rng(config.permutation_seed * 1000003 + r + 1);
    for (std::uint64_t i = global_top; i + 1 < catalog_size; ++i) {
      const std::uint64_t j = region_rng.uniform_int(i, catalog_size - 1);
      std::swap(order[i], order[j]);
    }
    object_to_rank_[r].resize(catalog_size);
    for (std::uint64_t rank0 = 0; rank0 < catalog_size; ++rank0) {
      object_to_rank_[r][order[rank0]] = rank0 + 1;
    }
    rank_to_object_[r] = std::move(order);
  }
}

const std::vector<ContentId>& RegionalPopularity::permutation(data::Region region) const {
  return rank_to_object_[region_index(region)];
}

ContentId RegionalPopularity::object_at_rank(data::Region region,
                                             std::uint64_t rank) const {
  SPACECDN_EXPECT(rank >= 1 && rank <= catalog_size_, "rank out of catalog range");
  return permutation(region)[rank - 1];
}

std::uint64_t RegionalPopularity::rank_of(data::Region region, ContentId id) const {
  SPACECDN_EXPECT(id < catalog_size_, "content id outside catalog");
  return object_to_rank_[region_index(region)][id];
}

ContentId RegionalPopularity::sample(data::Region region, des::Rng& rng) const {
  return object_at_rank(region, zipf_.sample(rng));
}

std::vector<ContentId> RegionalPopularity::top_k(data::Region region,
                                                 std::uint64_t k) const {
  SPACECDN_EXPECT(k <= catalog_size_, "top-k exceeds catalog size");
  const auto& order = permutation(region);
  return {order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k)};
}

double RegionalPopularity::top_k_overlap(data::Region a, data::Region b,
                                         std::uint64_t k) const {
  if (k == 0) return 0.0;
  const auto top_a = top_k(a, k);
  const auto top_b = top_k(b, k);
  const std::unordered_set<ContentId> set_a(top_a.begin(), top_a.end());
  std::uint64_t shared = 0;
  for (ContentId id : top_b) shared += set_a.count(id);
  // Jaccard over the union of the two top-k sets.
  return static_cast<double>(shared) / static_cast<double>(2 * k - shared);
}

}  // namespace spacecdn::cdn
