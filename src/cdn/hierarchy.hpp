// Hierarchical CDN: edge -> regional parent -> origin.
//
// "A content delivery network (CDN) is a hierarchy of geo-distributed
// servers" and "Most internal CDN operations assume a static tree-like
// topology" (paper section 2).  This module implements that tree: misses at
// an edge site are fetched from the site's regional parent; regional misses
// go to the origin; objects are admitted along the whole return path
// (pull-through).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cdn/cache.hpp"
#include "data/types.hpp"
#include "geo/coordinates.hpp"
#include "terrestrial/backbone.hpp"

namespace spacecdn::cdn {

/// Which tier ultimately supplied the object.
enum class ServedBy { kEdge, kRegional, kOrigin };

[[nodiscard]] std::string_view to_string(ServedBy tier) noexcept;

/// Outcome of one hierarchical request.
struct HierarchyResult {
  ServedBy served_by = ServedBy::kOrigin;
  /// First-byte latency including the parent/origin fetch legs.
  Milliseconds first_byte{0.0};
};

/// Configuration of the tree.
struct HierarchyConfig {
  CachePolicy policy = CachePolicy::kLru;
  Megabytes edge_capacity{20'000.0};
  Megabytes regional_capacity{200'000.0};
  geo::GeoPoint origin{39.04, -77.49, 0.0};  ///< Ashburn
  terrestrial::BackboneConfig backbone = {};
};

/// A two-level cache tree over the embedded CDN sites: one regional parent
/// per world region (placed at the region's most central site), every other
/// site an edge child of its region's parent.
class CdnHierarchy {
 public:
  CdnHierarchy(std::span<const data::CdnSiteInfo> sites, const HierarchyConfig& config);

  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }
  [[nodiscard]] const data::CdnSiteInfo& edge_site(std::size_t index) const;

  /// Index of the geographically nearest edge to a client.
  [[nodiscard]] std::size_t nearest_edge(const geo::GeoPoint& client) const;

  /// The regional parent serving an edge.
  [[nodiscard]] const data::CdnSiteInfo& parent_of(std::size_t edge_index) const;

  /// Serves a request arriving at `edge_index` with the client a
  /// `client_rtt` round trip away.
  [[nodiscard]] HierarchyResult serve(std::size_t edge_index, const ContentItem& item,
                                      Milliseconds client_rtt, Milliseconds now);

  /// Per-tier hit counters.
  struct TierStats {
    std::uint64_t edge_hits = 0;
    std::uint64_t regional_hits = 0;
    std::uint64_t origin_fetches = 0;

    [[nodiscard]] std::uint64_t total() const noexcept {
      return edge_hits + regional_hits + origin_fetches;
    }
  };
  [[nodiscard]] const TierStats& stats() const noexcept { return stats_; }

 private:
  struct Edge {
    const data::CdnSiteInfo* site;
    std::unique_ptr<Cache> cache;
    std::size_t regional_index;
  };
  struct Regional {
    const data::CdnSiteInfo* site;
    std::unique_ptr<Cache> cache;
  };

  HierarchyConfig config_;
  terrestrial::Backbone backbone_;
  std::vector<Edge> edges_;
  std::vector<Regional> regionals_;
  TierStats stats_;
};

}  // namespace spacecdn::cdn
