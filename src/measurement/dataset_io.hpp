// Dataset import/export.
//
// The paper publishes its collected dataset and scripts "to foster
// reproducibility and enable future research"; this module does the same
// for the synthetic campaigns -- speed-test and web records round-trip
// through RFC-4180 CSV so external tooling (pandas, R) can consume them and
// saved campaigns can be re-analysed without re-simulation.
#pragma once

#include <iosfwd>
#include <vector>

#include "measurement/records.hpp"

namespace spacecdn::measurement {

/// Column schema of the speed-test CSV.
[[nodiscard]] std::vector<std::string> speedtest_csv_header();

/// Column schema of the web-record CSV.
[[nodiscard]] std::vector<std::string> web_csv_header();

/// Writes records as CSV (header + one line per record).
void write_speedtests(std::ostream& out, const std::vector<SpeedTestRecord>& records);
void write_web_records(std::ostream& out, const std::vector<WebRecord>& records);

/// Reads records back.  @throws spacecdn::ConfigError on schema mismatch or
/// malformed rows.
[[nodiscard]] std::vector<SpeedTestRecord> read_speedtests(std::istream& in);
[[nodiscard]] std::vector<WebRecord> read_web_records(std::istream& in);

}  // namespace spacecdn::measurement
