// Measurement record schemas, mirroring what the paper's two data sources
// capture: Cloudflare AIM speed tests and the NetMet browser plugin.
#pragma once

#include <string>

#include "util/units.hpp"

namespace spacecdn::measurement {

/// Which ISP carried a sample.
enum class IspType { kStarlink, kTerrestrial };

[[nodiscard]] std::string_view to_string(IspType isp) noexcept;

/// One speed-test result, as the AIM dataset records it.
struct SpeedTestRecord {
  std::string country_code;
  std::string city;
  IspType isp = IspType::kTerrestrial;
  std::string cdn_site;  ///< IATA code of the anycast site that answered
  Milliseconds idle_rtt{0.0};
  Milliseconds loaded_rtt{0.0};  ///< RTT during the bulk-download phase
  Milliseconds jitter{0.0};
  Mbps download{0.0};
  Mbps upload{0.0};
  /// Great-circle distance from the client city to the answering site.
  Kilometers distance{0.0};
};

/// One page-load measurement, as NetMet records it.
struct WebRecord {
  std::string country_code;
  std::string city;
  IspType isp = IspType::kTerrestrial;
  std::string site;  ///< fetched website (Tranco top-20 entry)
  Milliseconds dns_lookup{0.0};
  Milliseconds tcp_connect{0.0};
  Milliseconds tls_handshake{0.0};
  /// HTTP response time: request sent -> first response byte, excluding DNS
  /// and transport setup (paper's HRT definition).
  Milliseconds http_response{0.0};
  Milliseconds first_contentful_paint{0.0};
};

}  // namespace spacecdn::measurement
