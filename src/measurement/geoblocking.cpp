#include "measurement/geoblocking.hpp"

#include <algorithm>

#include "data/datasets.hpp"
#include "geo/distance.hpp"

namespace spacecdn::measurement {

GeoBlockingStudy::GeoBlockingStudy(const lsn::GroundSegment& ground) : ground_(&ground) {}

std::vector<GeoExposureRow> GeoBlockingStudy::analyze() const {
  std::vector<GeoExposureRow> out;
  for (const data::CountryInfo* country : data::starlink_countries()) {
    // Subscriber centroid: the country's most populous dataset city.
    const auto cities = data::cities_in(country->code);
    const data::CityInfo* biggest = cities.front();
    for (const data::CityInfo* c : cities) {
      if (c->population_k > biggest->population_k) biggest = c;
    }
    const geo::GeoPoint centroid = data::location(*biggest);

    const std::size_t pop_index = ground_->assigned_pop(*country, centroid);
    const data::PopInfo& pop = ground_->pop(pop_index);

    GeoExposureRow row;
    row.country_code = country->code;
    row.pop_key = pop.key;
    row.apparent_country_code = pop.country_code;
    row.country_mismatch = pop.country_code != country->code;
    row.region_mismatch =
        data::country(pop.country_code).region != country->region;
    row.displacement = geo::great_circle_distance(centroid, data::location(pop));
    out.push_back(std::move(row));
  }
  return out;
}

GeoExposureSummary GeoBlockingStudy::summarize() const {
  const auto rows = analyze();
  GeoExposureSummary summary;
  summary.countries = rows.size();
  double displacement_sum = 0.0;
  for (const auto& row : rows) {
    summary.with_country_mismatch += row.country_mismatch ? 1 : 0;
    summary.with_region_mismatch += row.region_mismatch ? 1 : 0;
    displacement_sum += row.displacement.value();
  }
  if (!rows.empty()) {
    summary.mean_displacement = Kilometers{displacement_sum / rows.size()};
  }
  return summary;
}

}  // namespace spacecdn::measurement
