#include "measurement/traceroute.hpp"

#include <cmath>

#include "data/datasets.hpp"
#include "geo/distance.hpp"

namespace spacecdn::measurement {

std::string_view to_string(HopKind kind) noexcept {
  switch (kind) {
    case HopKind::kCpe: return "cpe";
    case HopKind::kCgnat: return "cgnat";
    case HopKind::kPopGateway: return "pop-gateway";
    case HopKind::kBackbone: return "backbone";
    case HopKind::kDestination: return "destination";
  }
  return "unknown";
}

TracerouteSynthesizer::TracerouteSynthesizer(const lsn::StarlinkNetwork& network)
    : network_(&network) {}

Traceroute TracerouteSynthesizer::starlink(const data::CityInfo& client,
                                           const geo::GeoPoint& destination,
                                           des::Rng& rng) const {
  Traceroute trace;
  const auto& country = data::country(client.country_code);
  const geo::GeoPoint client_location = data::location(client);
  const auto route = network_->route(client_location, country, destination);
  if (!route) return trace;  // no coverage: empty traceroute

  int ttl = 1;
  trace.hops.push_back(
      TracerouteHop{ttl++, HopKind::kCpe, "dishy-router.lan", Milliseconds{1.0}, true});

  // The satellite segment is invisible to traceroute; the CGNAT hop is the
  // first Starlink-internal responder and already carries the full space
  // RTT plus scheduling overhead.
  const Milliseconds space_rtt = (route->one_way_to_pop()) * 2.0 +
                                 network_->access().sample_idle_overhead(rng);
  trace.hops.push_back(TracerouteHop{ttl++, HopKind::kCgnat, "100.64.0.1 (CGNAT)",
                                     space_rtt, true});

  const auto& pop = network_->ground().pop(route->pop);
  trace.hops.push_back(TracerouteHop{
      ttl++, HopKind::kPopGateway,
      std::string(pop.city) + " PoP border (" + std::string(pop.country_code) + ")",
      space_rtt + Milliseconds{rng.uniform(0.2, 1.0)}, true});

  // Terrestrial backbone hops from the PoP to the destination, roughly one
  // responder per hop_spacing of fiber.
  const auto& backbone = network_->ground().backbone();
  const geo::GeoPoint pop_location = data::location(pop);
  const Kilometers leg = backbone.route_length(pop_location, destination);
  const int backbone_hops = std::max(
      1, static_cast<int>(std::ceil(leg.value() /
                                    backbone.config().hop_spacing.value())));
  const Milliseconds leg_rtt = backbone.rtt(pop_location, destination);
  for (int h = 1; h <= backbone_hops; ++h) {
    const double fraction = static_cast<double>(h) / backbone_hops;
    const geo::GeoPoint waypoint =
        geo::intermediate_point(pop_location, destination, fraction);
    const auto& nearest = data::nearest_city(waypoint);
    const bool last = h == backbone_hops;
    trace.hops.push_back(TracerouteHop{
        ttl++, last ? HopKind::kDestination : HopKind::kBackbone,
        last ? "server" : "core." + std::string(nearest.name),
        space_rtt + leg_rtt * fraction + Milliseconds{rng.uniform(0.0, 0.8)},
        last || rng.chance(0.85)});
  }
  return trace;
}

Traceroute TracerouteSynthesizer::terrestrial(const data::CityInfo& client,
                                              const geo::GeoPoint& destination,
                                              des::Rng& rng) const {
  Traceroute trace;
  const auto& country = data::country(client.country_code);
  const terrestrial::TerrestrialIsp isp(country);
  const geo::GeoPoint client_location = data::location(client);

  int ttl = 1;
  trace.hops.push_back(
      TracerouteHop{ttl++, HopKind::kCpe, "home-router.lan", Milliseconds{1.0}, true});
  const Milliseconds access = isp.access().sample_idle_rtt(rng);
  trace.hops.push_back(TracerouteHop{ttl++, HopKind::kBackbone,
                                     "access." + std::string(client.name), access, true});

  const Kilometers leg = isp.backbone().route_length(client_location, destination);
  const int backbone_hops = std::max(
      1, static_cast<int>(std::ceil(
             leg.value() / isp.backbone().config().hop_spacing.value())));
  const Milliseconds leg_rtt = isp.backbone().rtt(client_location, destination);
  for (int h = 1; h <= backbone_hops; ++h) {
    const double fraction = static_cast<double>(h) / backbone_hops;
    const geo::GeoPoint waypoint =
        geo::intermediate_point(client_location, destination, fraction);
    const auto& nearest = data::nearest_city(waypoint);
    const bool last = h == backbone_hops;
    trace.hops.push_back(TracerouteHop{
        ttl++, last ? HopKind::kDestination : HopKind::kBackbone,
        last ? "server" : "core." + std::string(nearest.name),
        access + leg_rtt * fraction + Milliseconds{rng.uniform(0.0, 0.8)},
        last || rng.chance(0.9)});
  }
  return trace;
}

std::string TracerouteSynthesizer::infer_pop(const Traceroute& trace,
                                             const data::CityInfo& client) const {
  // Preferred signal: the PoP border router's reverse-DNS label names its
  // city (how published studies located most PoPs).  RTT matching is only
  // the fallback for unlabelled hops, and is inherently ambiguous: several
  // PoPs can sit on the same RTT ring around a client.
  for (const auto& hop : trace.hops) {
    if (hop.kind == HopKind::kPopGateway && hop.responds) {
      for (const auto& pop : data::starlink_pops()) {
        if (hop.label.find(pop.city) != std::string::npos) return std::string(pop.key);
      }
    }
  }

  // Find the first public responding hop's RTT...
  Milliseconds first_public{0.0};
  bool found = false;
  for (const auto& hop : trace.hops) {
    if (hop.kind != HopKind::kCpe && hop.kind != HopKind::kCgnat && hop.responds) {
      first_public = hop.rtt;
      found = true;
      break;
    }
  }
  if (!found) return "";

  // ...and match it against each candidate PoP's expected RTT from this
  // client (space segment approximated by the access overhead plus the
  // great-circle at c -- what a measurement study without internal topology
  // knowledge would assume).
  const geo::GeoPoint client_location = data::location(client);
  const double overhead = network_->access().config().median_overhead_rtt.value();
  // The bent pipe never flies the great circle: ISL grid routing plus the
  // gateway haul stretch the path (~1.5x is what published measurements
  // back out).  Without this the heuristic systematically picks PoPs that
  // are too far away.
  constexpr double kPathStretch = 1.5;
  std::string best;
  double best_error = 1e300;
  for (const auto& pop : data::starlink_pops()) {
    const double geometric_rtt =
        2.0 * kPathStretch *
        geo::great_circle_distance(client_location, data::location(pop)).value() /
        geo::kSpeedOfLightKmPerSec * 1000.0;
    const double expected = overhead + geometric_rtt + 6.0;  // ~bent-pipe slack
    const double error = std::fabs(expected - first_public.value());
    if (error < best_error) {
      best_error = error;
      best = pop.key;
    }
  }
  return best;
}

}  // namespace spacecdn::measurement
