#include "measurement/web.hpp"

#include "data/datasets.hpp"
#include "net/anycast.hpp"

namespace spacecdn::measurement {

std::vector<PageProfile> tranco_top_pages() {
  using namespace spacecdn::literals;
  // A Tranco-top-20-like mix: name, html, critical objects, critical bytes,
  // request rounds, server think, render delay.
  return {
      {"search-portal", 0.05_mb, 4, 0.25_mb, 2, Milliseconds{8.0}, Milliseconds{80.0}},
      {"video-platform", 0.35_mb, 12, 2.2_mb, 4, Milliseconds{20.0}, Milliseconds{180.0}},
      {"social-feed", 0.30_mb, 12, 1.8_mb, 4, Milliseconds{25.0}, Milliseconds{170.0}},
      {"encyclopedia", 0.08_mb, 5, 0.35_mb, 2, Milliseconds{10.0}, Milliseconds{90.0}},
      {"news-international", 0.25_mb, 10, 1.5_mb, 3, Milliseconds{18.0}, Milliseconds{150.0}},
      {"e-commerce", 0.28_mb, 11, 1.6_mb, 3, Milliseconds{22.0}, Milliseconds{160.0}},
      {"streaming-music", 0.22_mb, 9, 1.2_mb, 3, Milliseconds{15.0}, Milliseconds{140.0}},
      {"developer-hub", 0.12_mb, 6, 0.6_mb, 2, Milliseconds{12.0}, Milliseconds{100.0}},
      {"microblog", 0.20_mb, 9, 1.1_mb, 3, Milliseconds{18.0}, Milliseconds{140.0}},
      {"photo-sharing", 0.26_mb, 12, 2.0_mb, 3, Milliseconds{20.0}, Milliseconds{160.0}},
      {"webmail", 0.15_mb, 7, 0.8_mb, 3, Milliseconds{14.0}, Milliseconds{120.0}},
      {"cloud-dashboard", 0.18_mb, 8, 0.9_mb, 3, Milliseconds{16.0}, Milliseconds{130.0}},
      {"q-and-a", 0.10_mb, 5, 0.45_mb, 2, Milliseconds{12.0}, Milliseconds{95.0}},
      {"sports-live", 0.30_mb, 12, 1.9_mb, 4, Milliseconds{22.0}, Milliseconds{170.0}},
      {"weather", 0.09_mb, 5, 0.4_mb, 2, Milliseconds{10.0}, Milliseconds{85.0}},
      {"banking", 0.14_mb, 7, 0.7_mb, 3, Milliseconds{20.0}, Milliseconds{110.0}},
      {"travel-booking", 0.27_mb, 11, 1.7_mb, 4, Milliseconds{24.0}, Milliseconds{165.0}},
      {"gaming-store", 0.32_mb, 12, 2.1_mb, 4, Milliseconds{20.0}, Milliseconds{175.0}},
      {"recipe-blog", 0.16_mb, 8, 1.0_mb, 3, Milliseconds{14.0}, Milliseconds{125.0}},
      {"education-portal", 0.13_mb, 6, 0.65_mb, 2, Milliseconds{13.0}, Milliseconds{105.0}},
  };
}

PathModel terrestrial_path(const data::CountryInfo& country, const data::CityInfo& city) {
  const terrestrial::TerrestrialIsp isp(country);
  const geo::GeoPoint client = data::location(city);

  // The optimal anycast site: lowest baseline RTT (section 3.1 methodology).
  std::vector<Milliseconds> baselines;
  for (const auto& site : data::cdn_sites()) {
    baselines.push_back(isp.baseline_rtt(client, data::location(site)));
  }
  const auto choice = net::AnycastSelector::select_ideal(baselines);
  const geo::GeoPoint server = data::location(data::cdn_sites()[choice.site_index]);

  PathModel path;
  path.bandwidth = isp.download_bandwidth();
  path.sample_rtt = [isp, client, server](des::Rng& rng) {
    return isp.sample_idle_rtt(client, server, rng);
  };
  return path;
}

PathModel starlink_path(const lsn::StarlinkNetwork& network,
                        const data::CountryInfo& country, const data::CityInfo& city) {
  const geo::GeoPoint client = data::location(city);
  const auto breakdown = network.router().route_to_pop(client, country);
  PathModel path;
  if (!breakdown) return path;  // no coverage: empty sampler

  const geo::GeoPoint pop_location = data::location(network.ground().pop(breakdown->pop));
  const auto& backbone = network.ground().backbone();

  // The CDN site anycast picks for the PoP's address space.
  std::vector<Milliseconds> baselines;
  for (const auto& site : data::cdn_sites()) {
    baselines.push_back(backbone.one_way_latency(pop_location, data::location(site)));
  }
  const auto choice = net::AnycastSelector::select_ideal(baselines);
  const geo::GeoPoint server = data::location(data::cdn_sites()[choice.site_index]);

  const Milliseconds propagation =
      (breakdown->one_way_to_pop() + backbone.one_way_latency(pop_location, server)) * 2.0;
  const lsn::StarlinkAccess access = network.access();  // value copy for the lambda

  path.bandwidth = network.download_bandwidth();
  path.sample_rtt = [propagation, access](des::Rng& rng) {
    return propagation + access.sample_idle_overhead(rng);
  };
  return path;
}

NetMetProbe::NetMetProbe(net::TcpConfig tcp) : tcp_(tcp) {}

WebRecord NetMetProbe::fetch(const PageProfile& page, const PathModel& path,
                             des::Rng& rng) const {
  WebRecord rec;
  rec.site = page.name;

  // DNS: the recursive resolver sits behind the same access path.
  net::DnsConfig dns_cfg;
  dns_cfg.resolver_rtt = path.sample_rtt(rng);
  dns_cfg.authoritative_rtt = dns_cfg.resolver_rtt + Milliseconds{20.0};
  rec.dns_lookup = net::DnsModel(dns_cfg).sample_lookup_time(rng);

  rec.tcp_connect = tcp_.connect_time(path.sample_rtt(rng));
  rec.tls_handshake = tcp_.tls_time(path.sample_rtt(rng));
  rec.http_response = tcp_.http_response_time(path.sample_rtt(rng), page.server_think);

  const Milliseconds rtt = path.sample_rtt(rng);
  const Milliseconds html_transfer = tcp_.transfer_time(page.html, rtt, path.bandwidth);
  const Milliseconds discovery = rtt * static_cast<double>(page.request_rounds);
  const Milliseconds critical_transfer =
      tcp_.transfer_time(page.critical_total, rtt, path.bandwidth);
  const Milliseconds render{rng.lognormal_median(page.render_delay.value(), 0.3)};

  rec.first_contentful_paint = rec.dns_lookup + rec.tcp_connect + rec.tls_handshake +
                               rec.http_response + html_transfer + discovery +
                               critical_transfer + render;
  return rec;
}

NetMetCampaign::NetMetCampaign(const lsn::StarlinkNetwork& network, NetMetConfig config)
    : network_(&network), config_(config), rng_(config.seed) {}

std::vector<WebRecord> NetMetCampaign::run_country(const data::CountryInfo& country) {
  std::vector<WebRecord> out;
  const auto pages = tranco_top_pages();
  for (const data::CityInfo* city : data::cities_in(country.code)) {
    const PathModel terr = terrestrial_path(country, *city);
    const PathModel star = country.starlink_available
                               ? starlink_path(*network_, country, *city)
                               : PathModel{};
    for (const auto& page : pages) {
      for (std::uint32_t i = 0; i < config_.fetches_per_page; ++i) {
        WebRecord rec = probe_.fetch(page, terr, rng_);
        rec.country_code = country.code;
        rec.city = city->name;
        rec.isp = IspType::kTerrestrial;
        out.push_back(std::move(rec));
        if (star.sample_rtt) {
          WebRecord srec = probe_.fetch(page, star, rng_);
          srec.country_code = country.code;
          srec.city = city->name;
          srec.isp = IspType::kStarlink;
          out.push_back(std::move(srec));
        }
      }
    }
  }
  return out;
}

std::vector<WebRecord> NetMetCampaign::run(std::span<const std::string_view> countries) {
  std::vector<WebRecord> out;
  for (std::string_view code : countries) {
    auto records = run_country(data::country(code));
    out.insert(out.end(), std::make_move_iterator(records.begin()),
               std::make_move_iterator(records.end()));
  }
  return out;
}

}  // namespace spacecdn::measurement
