// NetMet: the web-browsing measurement model.
//
// Reproduces the browser-plugin pipeline the paper deploys: periodic fetches
// of the landing pages of the Tranco top-20 CDN-served sites, recording DNS
// lookup, TCP connect, TLS negotiation, HTTP response time, and (in the
// containerised LEOScope deployment) first contentful paint.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "lsn/starlink.hpp"
#include "measurement/records.hpp"
#include "net/dns.hpp"
#include "net/tcp_model.hpp"
#include "terrestrial/isp.hpp"

namespace spacecdn::measurement {

/// Static profile of a landing page.
struct PageProfile {
  std::string name;
  Megabytes html{0.1};
  /// Render-critical subresources (CSS/JS/fonts/hero images) that gate FCP.
  std::uint32_t critical_objects = 8;
  Megabytes critical_total{0.9};
  /// Sequential request rounds the critical path needs (discovery depth).
  std::uint32_t request_rounds = 3;
  Milliseconds server_think{15.0};
  /// Median browser parse/layout/paint time.
  Milliseconds render_delay{120.0};
};

/// A Tranco-top-20-like page mix served by Cloudflare/CloudFront.
[[nodiscard]] std::vector<PageProfile> tranco_top_pages();

/// Path abstraction a probe runs over: an RTT sampler plus a bandwidth.
struct PathModel {
  std::function<Milliseconds(des::Rng&)> sample_rtt;
  Mbps bandwidth{100.0};
};

/// Builds a PathModel for a terrestrial client towards its optimal CDN site.
[[nodiscard]] PathModel terrestrial_path(const data::CountryInfo& country,
                                         const data::CityInfo& city);

/// Builds a PathModel for a Starlink client towards the CDN site its PoP
/// maps it to; empty sampler when the client has no coverage.
[[nodiscard]] PathModel starlink_path(const lsn::StarlinkNetwork& network,
                                      const data::CountryInfo& country,
                                      const data::CityInfo& city);

/// Executes page fetches over a path.
class NetMetProbe {
 public:
  explicit NetMetProbe(net::TcpConfig tcp = {});

  /// One instrumented page load.
  [[nodiscard]] WebRecord fetch(const PageProfile& page, const PathModel& path,
                                des::Rng& rng) const;

 private:
  net::TcpModel tcp_;
};

/// Campaign configuration.
struct NetMetConfig {
  std::uint32_t fetches_per_page = 10;
  std::uint64_t seed = 20240318;
};

/// Runs NetMet from given countries over both ISPs (the paper's volunteer +
/// LEOScope deployment).
class NetMetCampaign {
 public:
  NetMetCampaign(const lsn::StarlinkNetwork& network, NetMetConfig config = {});

  /// Fetches all top pages from every city of `country` over both ISPs.
  [[nodiscard]] std::vector<WebRecord> run_country(const data::CountryInfo& country);

  /// Runs a list of countries (by ISO code).
  [[nodiscard]] std::vector<WebRecord> run(std::span<const std::string_view> countries);

 private:
  const lsn::StarlinkNetwork* network_;
  NetMetConfig config_;
  des::Rng rng_;
  NetMetProbe probe_;
};

}  // namespace spacecdn::measurement
