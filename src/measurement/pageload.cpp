#include "measurement/pageload.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "net/dns.hpp"
#include "net/tcp_model.hpp"
#include "util/error.hpp"

namespace spacecdn::measurement {

PageLoadSimulator::PageLoadSimulator(PageLoadConfig config) : config_(config) {
  SPACECDN_EXPECT(config.parallel_connections > 0,
                  "browser needs at least one connection");
}

PageLoadResult PageLoadSimulator::load(const PageProfile& page, const PathModel& path,
                                       des::Rng& rng) const {
  SPACECDN_EXPECT(static_cast<bool>(path.sample_rtt), "path needs an RTT sampler");

  des::Simulator sim;
  net::SharedLink link(sim, path.bandwidth);
  const net::TcpModel tcp(config_.tcp);

  // Shared mutable state across event callbacks.
  struct State {
    std::uint32_t queued = 0;       ///< discovered but not yet requested
    std::uint32_t in_flight = 0;    ///< request sent or body transferring
    std::uint32_t done = 0;
    std::uint32_t total = 0;
    double last_body_done_ms = 0.0;
  };
  const auto state = std::make_shared<State>();
  state->total = page.critical_objects;

  const Megabytes object_size{page.critical_total.value() /
                              std::max(1u, page.critical_objects)};

  // Issues queued objects while connections are free.  Each issue costs one
  // request round trip before its body occupies the shared link.  The pump
  // lives behind a shared_ptr so completion callbacks can re-invoke it
  // recursively without dangling.
  const auto pump = std::make_shared<std::function<void()>>();
  *pump = [&, state, pump]() {
    while (state->queued > 0 && state->in_flight < config_.parallel_connections) {
      --state->queued;
      ++state->in_flight;
      const Milliseconds request_rtt = path.sample_rtt(rng);
      sim.schedule(request_rtt, [&, state, pump] {
        (void)link.start_flow(object_size, [&, state, pump](const net::FlowRecord& r) {
          --state->in_flight;
          ++state->done;
          state->last_body_done_ms =
              std::max(state->last_body_done_ms, r.finished.value());
          (*pump)();  // a connection freed up: pull the next queued object
        });
      });
    }
  };

  // Connection setup: DNS, TCP handshake, TLS.
  net::DnsConfig dns_cfg;
  dns_cfg.resolver_rtt = path.sample_rtt(rng);
  dns_cfg.authoritative_rtt = dns_cfg.resolver_rtt + Milliseconds{20.0};
  const Milliseconds dns = net::DnsModel(dns_cfg).sample_lookup_time(rng);
  const Milliseconds setup = dns + tcp.connect_time(path.sample_rtt(rng)) +
                             tcp.tls_time(path.sample_rtt(rng));

  double html_done_ms = 0.0;
  // HTML: request round trip + server think, then the body over the link.
  sim.schedule(setup + tcp.http_response_time(path.sample_rtt(rng), page.server_think),
               [&, state] {
                 (void)link.start_flow(page.html, [&, state](const net::FlowRecord& r) {
                   html_done_ms = r.finished.value();
                   // Discovery: the critical set arrives in request_rounds
                   // waves, each one RTT after the previous.
                   const std::uint32_t rounds = std::max(1u, page.request_rounds);
                   const std::uint32_t per_wave =
                       (page.critical_objects + rounds - 1) / rounds;
                   std::uint32_t assigned = 0;
                   for (std::uint32_t w = 0; w < rounds && assigned < page.critical_objects;
                        ++w) {
                     const std::uint32_t wave =
                         std::min(per_wave, page.critical_objects - assigned);
                     assigned += wave;
                     const Milliseconds discovery_delay =
                         path.sample_rtt(rng) * static_cast<double>(w);
                     sim.schedule(discovery_delay, [&, state, pump, wave] {
                       state->queued += wave;
                       (*pump)();
                     });
                   }
                 });
               });

  sim.run();

  PageLoadResult result;
  result.objects_fetched = state->done;
  const double body_done = std::max(state->last_body_done_ms, html_done_ms);
  result.page_load_time = Milliseconds{body_done};
  const Milliseconds render{rng.lognormal_median(page.render_delay.value(), 0.3)};
  result.first_contentful_paint = result.page_load_time + render;
  return result;
}

}  // namespace spacecdn::measurement
