// Synthetic Cloudflare-AIM speed-test campaign.
//
// Substitutes for the paper's ~22 K Starlink + ~800 K terrestrial AIM
// samples (see DESIGN.md): simulated clients in each covered country run
// speed tests over both a Starlink path and a terrestrial path to the
// anycast CDN, producing records with the same schema and grouping keys the
// paper's analysis consumes.
#pragma once

#include <vector>

#include "cdn/deployment.hpp"
#include "lsn/starlink.hpp"
#include "measurement/records.hpp"
#include "net/anycast.hpp"
#include "terrestrial/isp.hpp"
#include "util/thread_pool.hpp"

namespace spacecdn::measurement {

/// Campaign parameters.
struct AimConfig {
  /// Speed tests per (city, ISP) pair.
  std::uint32_t tests_per_city = 40;
  /// BGP/anycast routing noise (ms of exponential perturbation per site and
  /// decision); produces the paper's observation that one city reaches
  /// several neighbouring sites.
  double anycast_noise_ms = 6.0;
  /// Downlink utilisation during the loaded phase of a speed test.
  double loaded_fraction = 0.95;
  std::uint64_t seed = 20240318;  // campaign start: March 2024
};

/// Runs the campaign and returns raw records.
class AimCampaign {
 public:
  /// @param network  the Starlink model (at its current simulation time).
  /// @param sites    anycast CDN sites (defaults to the embedded dataset
  ///                 when empty).
  AimCampaign(const lsn::StarlinkNetwork& network, AimConfig config = {});

  /// Runs speed tests for every Starlink-covered country in the dataset.
  /// Every country draws from its own RNG stream (des::mix_seed of the
  /// campaign seed and the country code), so the result is a pure function
  /// of the config -- identical whether countries run serially or sharded
  /// across a pool.
  [[nodiscard]] std::vector<SpeedTestRecord> run();

  /// Same records as run(), computed with countries sharded across `pool`
  /// and merged back in dataset order: bit-identical to the serial run for
  /// any thread count.
  [[nodiscard]] std::vector<SpeedTestRecord> run(ThreadPool& pool);

  /// Runs speed tests for a single country (both ISPs) on its own stream.
  [[nodiscard]] std::vector<SpeedTestRecord> run_country(const data::CountryInfo& country) const;

  [[nodiscard]] const AimConfig& config() const noexcept { return config_; }

 private:
  void run_city_terrestrial(const data::CountryInfo& country, const data::CityInfo& city,
                            des::Rng& rng, std::vector<SpeedTestRecord>& out) const;
  void run_city_starlink(const data::CountryInfo& country, const data::CityInfo& city,
                         des::Rng& rng, std::vector<SpeedTestRecord>& out) const;

  const lsn::StarlinkNetwork* network_;
  AimConfig config_;
  net::AnycastSelector selector_;
};

}  // namespace spacecdn::measurement
