// Synthetic Cloudflare-AIM speed-test campaign.
//
// Substitutes for the paper's ~22 K Starlink + ~800 K terrestrial AIM
// samples (see DESIGN.md): simulated clients in each covered country run
// speed tests over both a Starlink path and a terrestrial path to the
// anycast CDN, producing records with the same schema and grouping keys the
// paper's analysis consumes.
#pragma once

#include <vector>

#include "cdn/deployment.hpp"
#include "lsn/starlink.hpp"
#include "measurement/records.hpp"
#include "net/anycast.hpp"
#include "terrestrial/isp.hpp"

namespace spacecdn::measurement {

/// Campaign parameters.
struct AimConfig {
  /// Speed tests per (city, ISP) pair.
  std::uint32_t tests_per_city = 40;
  /// BGP/anycast routing noise (ms of exponential perturbation per site and
  /// decision); produces the paper's observation that one city reaches
  /// several neighbouring sites.
  double anycast_noise_ms = 6.0;
  /// Downlink utilisation during the loaded phase of a speed test.
  double loaded_fraction = 0.95;
  std::uint64_t seed = 20240318;  // campaign start: March 2024
};

/// Runs the campaign and returns raw records.
class AimCampaign {
 public:
  /// @param network  the Starlink model (at its current simulation time).
  /// @param sites    anycast CDN sites (defaults to the embedded dataset
  ///                 when empty).
  AimCampaign(const lsn::StarlinkNetwork& network, AimConfig config = {});

  /// Runs speed tests for every Starlink-covered country in the dataset.
  [[nodiscard]] std::vector<SpeedTestRecord> run();

  /// Runs speed tests for a single country (both ISPs).
  [[nodiscard]] std::vector<SpeedTestRecord> run_country(const data::CountryInfo& country);

  [[nodiscard]] const AimConfig& config() const noexcept { return config_; }

 private:
  void run_city_terrestrial(const data::CountryInfo& country, const data::CityInfo& city,
                            std::vector<SpeedTestRecord>& out);
  void run_city_starlink(const data::CountryInfo& country, const data::CityInfo& city,
                         std::vector<SpeedTestRecord>& out);

  const lsn::StarlinkNetwork* network_;
  AimConfig config_;
  des::Rng rng_;
  net::AnycastSelector selector_;
};

}  // namespace spacecdn::measurement
