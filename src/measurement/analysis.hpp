// Analysis over speed-test records: exactly the aggregations the paper's
// section 3 applies to the AIM dataset.
//
// "We use the median of the idle latencies over both Starlink and
// terrestrial from a city to determine the 'optimal' CDN server for the
// network at that location."
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "des/stats.hpp"
#include "measurement/records.hpp"
#include "util/units.hpp"

namespace spacecdn::measurement {

/// Per-site aggregate from one vantage.
struct SiteStats {
  std::string site;  ///< IATA code
  Milliseconds median_idle_rtt{0.0};
  Kilometers distance{0.0};
  std::uint64_t samples = 0;
};

/// The "optimal" CDN server for a (city, ISP): lowest median idle RTT.
struct OptimalSite {
  std::string site;
  Milliseconds median_idle_rtt{0.0};
  Kilometers distance{0.0};
};

/// One row of the paper's Table 1.
struct CountryRow {
  std::string country_code;
  double terrestrial_distance_km = 0.0;  ///< mean over cities, to optimal site
  double terrestrial_min_rtt_ms = 0.0;   ///< median of per-city optimal RTTs
  double starlink_distance_km = 0.0;
  double starlink_min_rtt_ms = 0.0;
};

/// Indexes records and answers the paper's aggregation queries.
class AimAnalysis {
 public:
  explicit AimAnalysis(std::vector<SpeedTestRecord> records);

  [[nodiscard]] const std::vector<SpeedTestRecord>& records() const noexcept {
    return records_;
  }

  /// Country codes present in the records, sorted.
  [[nodiscard]] std::vector<std::string> countries() const;

  /// Cities of a country present in the records.
  [[nodiscard]] std::vector<std::string> cities(const std::string& country) const;

  /// Per-site stats from one city over one ISP (Figure 3's content).
  [[nodiscard]] std::vector<SiteStats> site_stats(const std::string& city,
                                                  IspType isp) const;

  /// Optimal site for a city/ISP; nullopt when the city has no samples.
  [[nodiscard]] std::optional<OptimalSite> optimal_site(const std::string& city,
                                                        IspType isp) const;

  /// Table 1 row; nullopt when either ISP lacks samples for the country.
  [[nodiscard]] std::optional<CountryRow> country_row(const std::string& country) const;

  /// Figure 2 value: median optimal-site RTT over Starlink minus terrestrial
  /// for a country (positive = terrestrial faster).
  [[nodiscard]] std::optional<double> median_delta_ms(const std::string& country) const;

  /// All idle RTTs towards each client's *optimal* site over one ISP.
  [[nodiscard]] des::SampleSet optimal_idle_rtts(IspType isp) const;

  /// Every idle RTT sample over one ISP, regardless of which anycast site
  /// answered ("here we plot the whole CDF" -- the Figure 7 baselines).
  [[nodiscard]] des::SampleSet idle_rtts(IspType isp) const;

  /// All loaded RTTs over one ISP (bufferbloat evidence, section 3.2).
  [[nodiscard]] des::SampleSet loaded_rtts(IspType isp) const;

 private:
  std::vector<SpeedTestRecord> records_;
  // (city, isp) -> record indices.
  std::map<std::pair<std::string, IspType>, std::vector<std::size_t>> by_city_isp_;
  std::map<std::string, std::vector<std::string>> cities_by_country_;
};

}  // namespace spacecdn::measurement
