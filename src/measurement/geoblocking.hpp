// Geo-blocking exposure analysis.
//
// Paper sections 1-2: "Starlink subscribers experience unwarranted
// geo-blocking from CDNs when their connections are routed to PoPs deployed
// in countries where the requested content is geo-blocked".  Because the
// public IP lives at the PoP (carrier-grade NAT), IP-geolocation places the
// subscriber in the PoP's country, not their own.  This module quantifies
// that exposure from the PoP-assignment table.
#pragma once

#include <string>
#include <vector>

#include "lsn/ground_segment.hpp"

namespace spacecdn::measurement {

/// Geo-identity of one country's Starlink subscribers.
struct GeoExposureRow {
  std::string country_code;          ///< where the subscribers actually are
  std::string pop_key;               ///< assigned PoP
  std::string apparent_country_code; ///< where IP geolocation places them
  bool country_mismatch = false;     ///< apparent country differs
  bool region_mismatch = false;      ///< apparent *continent* differs
  Kilometers displacement{0.0};      ///< subscriber centroid to PoP distance
};

/// Aggregate exposure over the covered countries.
struct GeoExposureSummary {
  std::size_t countries = 0;
  std::size_t with_country_mismatch = 0;
  std::size_t with_region_mismatch = 0;
  /// Mean geolocation displacement across covered countries.
  Kilometers mean_displacement{0.0};
};

/// Computes geo-blocking exposure for every Starlink-covered country.
class GeoBlockingStudy {
 public:
  explicit GeoBlockingStudy(const lsn::GroundSegment& ground);

  /// One row per covered country, using the country's largest city as the
  /// subscriber centroid.
  [[nodiscard]] std::vector<GeoExposureRow> analyze() const;

  [[nodiscard]] GeoExposureSummary summarize() const;

 private:
  const lsn::GroundSegment* ground_;
};

}  // namespace spacecdn::measurement
