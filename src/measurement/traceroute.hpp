// Synthetic traceroute paths.
//
// The community identified Starlink's PoP architecture largely through
// traceroutes: the first public hop after the carrier-grade NAT sits at the
// PoP, often a continent away from the user (paper section 2, citing Mohan
// et al.).  This module synthesises hop-by-hop paths over both networks and
// implements the PoP-inference heuristic those studies use.
#pragma once

#include <string>
#include <vector>

#include "lsn/starlink.hpp"
#include "terrestrial/isp.hpp"

namespace spacecdn::measurement {

/// Role of a hop in the path.
enum class HopKind {
  kCpe,           ///< customer premises router (private)
  kCgnat,         ///< carrier-grade NAT hop (private, Starlink only)
  kPopGateway,    ///< first public hop: the PoP's border router
  kBackbone,      ///< transit/backbone router
  kDestination,   ///< the probed server
};

[[nodiscard]] std::string_view to_string(HopKind kind) noexcept;

/// One traceroute line.
struct TracerouteHop {
  int ttl = 0;
  HopKind kind = HopKind::kBackbone;
  std::string label;       ///< router identity (city / network)
  Milliseconds rtt{0.0};   ///< cumulative RTT at this hop
  bool responds = true;    ///< private hops often drop probes
};

/// A full path record.
struct Traceroute {
  std::vector<TracerouteHop> hops;

  [[nodiscard]] Milliseconds total_rtt() const noexcept {
    return hops.empty() ? Milliseconds{0.0} : hops.back().rtt;
  }
};

/// Builds synthetic traceroutes over the two access networks.
class TracerouteSynthesizer {
 public:
  explicit TracerouteSynthesizer(const lsn::StarlinkNetwork& network);

  /// Starlink path: CPE -> (satellite segment, silent) -> CGNAT -> PoP
  /// gateway -> backbone hops -> destination.
  [[nodiscard]] Traceroute starlink(const data::CityInfo& client,
                                    const geo::GeoPoint& destination,
                                    des::Rng& rng) const;

  /// Terrestrial path: CPE -> access router -> backbone hops -> destination.
  [[nodiscard]] Traceroute terrestrial(const data::CityInfo& client,
                                       const geo::GeoPoint& destination,
                                       des::Rng& rng) const;

  /// The PoP-inference heuristic: the first *public responding* hop's RTT,
  /// matched against the candidate PoPs' expected RTTs; returns the key of
  /// the best-matching PoP (how the measurement community located Starlink
  /// PoPs without operator cooperation).
  [[nodiscard]] std::string infer_pop(const Traceroute& trace,
                                      const data::CityInfo& client) const;

 private:
  const lsn::StarlinkNetwork* network_;
};

}  // namespace spacecdn::measurement
