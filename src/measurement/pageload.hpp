// DES-driven page loading.
//
// The analytic NetMet model (web.hpp) composes closed-form terms; this
// simulator actually plays the page load out on the discrete-event engine:
// parallel connections share the access link (processor sharing via
// net::SharedLink), objects are discovered in rounds, and the first
// contentful paint fires when the render-critical set has arrived.  The two
// models cross-validate each other in the test suite.
#pragma once

#include "des/simulator.hpp"
#include "measurement/web.hpp"
#include "net/flow.hpp"

namespace spacecdn::measurement {

/// Result of one simulated page load.
struct PageLoadResult {
  Milliseconds first_contentful_paint{0.0};
  Milliseconds page_load_time{0.0};  ///< last object fully received
  std::uint32_t objects_fetched = 0;
};

/// Simulator configuration.
struct PageLoadConfig {
  /// Concurrent connections the browser opens per origin (HTTP/1.1-era 6).
  std::uint32_t parallel_connections = 6;
  net::TcpConfig tcp = {};
};

/// Plays a PageProfile over a PathModel on a discrete-event simulator.
class PageLoadSimulator {
 public:
  explicit PageLoadSimulator(PageLoadConfig config = {});

  /// One page load; deterministic given the rng state.
  [[nodiscard]] PageLoadResult load(const PageProfile& page, const PathModel& path,
                                    des::Rng& rng) const;

  [[nodiscard]] const PageLoadConfig& config() const noexcept { return config_; }

 private:
  PageLoadConfig config_;
};

}  // namespace spacecdn::measurement
