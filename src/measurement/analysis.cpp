#include "measurement/analysis.hpp"

#include <algorithm>
#include <set>

namespace spacecdn::measurement {

AimAnalysis::AimAnalysis(std::vector<SpeedTestRecord> records)
    : records_(std::move(records)) {
  std::map<std::string, std::set<std::string>> city_sets;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const auto& r = records_[i];
    by_city_isp_[{r.city, r.isp}].push_back(i);
    city_sets[r.country_code].insert(r.city);
  }
  for (auto& [country, cities] : city_sets) {
    cities_by_country_[country] = {cities.begin(), cities.end()};
  }
}

std::vector<std::string> AimAnalysis::countries() const {
  std::vector<std::string> out;
  out.reserve(cities_by_country_.size());
  for (const auto& [country, cities] : cities_by_country_) out.push_back(country);
  return out;
}

std::vector<std::string> AimAnalysis::cities(const std::string& country) const {
  const auto it = cities_by_country_.find(country);
  return it == cities_by_country_.end() ? std::vector<std::string>{} : it->second;
}

std::vector<SiteStats> AimAnalysis::site_stats(const std::string& city,
                                               IspType isp) const {
  const auto it = by_city_isp_.find({city, isp});
  if (it == by_city_isp_.end()) return {};

  std::map<std::string, des::SampleSet> rtts;
  std::map<std::string, Kilometers> distances;
  for (std::size_t i : it->second) {
    const auto& r = records_[i];
    rtts[r.cdn_site].add(r.idle_rtt.value());
    distances[r.cdn_site] = r.distance;
  }

  std::vector<SiteStats> out;
  out.reserve(rtts.size());
  for (auto& [site, samples] : rtts) {
    out.push_back(SiteStats{site, Milliseconds{samples.median()}, distances[site],
                            samples.size()});
  }
  std::sort(out.begin(), out.end(), [](const SiteStats& a, const SiteStats& b) {
    return a.median_idle_rtt < b.median_idle_rtt;
  });
  return out;
}

std::optional<OptimalSite> AimAnalysis::optimal_site(const std::string& city,
                                                     IspType isp) const {
  const auto stats = site_stats(city, isp);
  if (stats.empty()) return std::nullopt;
  const auto& best = stats.front();  // sorted by median RTT
  return OptimalSite{best.site, best.median_idle_rtt, best.distance};
}

std::optional<CountryRow> AimAnalysis::country_row(const std::string& country) const {
  const auto city_list = cities(country);
  if (city_list.empty()) return std::nullopt;

  des::SampleSet terr_rtt, star_rtt;
  des::OnlineSummary terr_dist, star_dist;
  for (const auto& city : city_list) {
    if (const auto opt = optimal_site(city, IspType::kTerrestrial)) {
      terr_rtt.add(opt->median_idle_rtt.value());
      terr_dist.add(opt->distance.value());
    }
    if (const auto opt = optimal_site(city, IspType::kStarlink)) {
      star_rtt.add(opt->median_idle_rtt.value());
      star_dist.add(opt->distance.value());
    }
  }
  if (terr_rtt.empty() || star_rtt.empty()) return std::nullopt;

  CountryRow row;
  row.country_code = country;
  row.terrestrial_distance_km = terr_dist.mean();
  row.terrestrial_min_rtt_ms = terr_rtt.median();
  row.starlink_distance_km = star_dist.mean();
  row.starlink_min_rtt_ms = star_rtt.median();
  return row;
}

std::optional<double> AimAnalysis::median_delta_ms(const std::string& country) const {
  const auto row = country_row(country);
  if (!row) return std::nullopt;
  return row->starlink_min_rtt_ms - row->terrestrial_min_rtt_ms;
}

des::SampleSet AimAnalysis::optimal_idle_rtts(IspType isp) const {
  // Samples towards the per-city optimal site only, matching the paper's
  // "most optimal CDN server location" framing.
  des::SampleSet out;
  for (const auto& [key, indices] : by_city_isp_) {
    if (key.second != isp) continue;
    const auto opt = optimal_site(key.first, isp);
    if (!opt) continue;
    for (std::size_t i : indices) {
      if (records_[i].cdn_site == opt->site) out.add(records_[i].idle_rtt.value());
    }
  }
  return out;
}

des::SampleSet AimAnalysis::idle_rtts(IspType isp) const {
  des::SampleSet out;
  for (const auto& r : records_) {
    if (r.isp == isp) out.add(r.idle_rtt.value());
  }
  return out;
}

des::SampleSet AimAnalysis::loaded_rtts(IspType isp) const {
  des::SampleSet out;
  for (const auto& r : records_) {
    if (r.isp == isp) out.add(r.loaded_rtt.value());
  }
  return out;
}

}  // namespace spacecdn::measurement
