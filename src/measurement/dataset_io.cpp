#include "measurement/dataset_io.hpp"

#include <cstdlib>
#include <istream>
#include <ostream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace spacecdn::measurement {

namespace {

double to_double(const std::string& cell) {
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  SPACECDN_EXPECT(end != nullptr && *end == '\0' && !cell.empty(),
                  "malformed numeric CSV cell: '" + cell + "'");
  return v;
}

IspType to_isp(const std::string& cell) {
  if (cell == "starlink") return IspType::kStarlink;
  if (cell == "terrestrial") return IspType::kTerrestrial;
  throw ConfigError("unknown ISP type in CSV: '" + cell + "'");
}

}  // namespace

std::vector<std::string> speedtest_csv_header() {
  return {"country", "city",     "isp",      "cdn_site", "idle_rtt_ms",
          "loaded_rtt_ms", "jitter_ms", "download_mbps", "upload_mbps",
          "distance_km"};
}

std::vector<std::string> web_csv_header() {
  return {"country", "city", "isp", "site", "dns_ms", "connect_ms", "tls_ms",
          "http_response_ms", "fcp_ms"};
}

void write_speedtests(std::ostream& out, const std::vector<SpeedTestRecord>& records) {
  CsvWriter csv(out, speedtest_csv_header());
  for (const auto& r : records) {
    csv.row({r.country_code, r.city, std::string(to_string(r.isp)), r.cdn_site,
             CsvWriter::format_number(r.idle_rtt.value()),
             CsvWriter::format_number(r.loaded_rtt.value()),
             CsvWriter::format_number(r.jitter.value()),
             CsvWriter::format_number(r.download.value()),
             CsvWriter::format_number(r.upload.value()),
             CsvWriter::format_number(r.distance.value())});
  }
}

void write_web_records(std::ostream& out, const std::vector<WebRecord>& records) {
  CsvWriter csv(out, web_csv_header());
  for (const auto& r : records) {
    csv.row({r.country_code, r.city, std::string(to_string(r.isp)), r.site,
             CsvWriter::format_number(r.dns_lookup.value()),
             CsvWriter::format_number(r.tcp_connect.value()),
             CsvWriter::format_number(r.tls_handshake.value()),
             CsvWriter::format_number(r.http_response.value()),
             CsvWriter::format_number(r.first_contentful_paint.value())});
  }
}

std::vector<SpeedTestRecord> read_speedtests(std::istream& in) {
  CsvReader reader(in, speedtest_csv_header());
  std::vector<SpeedTestRecord> out;
  std::vector<std::string> cells;
  while (reader.next_row(cells)) {
    SpeedTestRecord r;
    r.country_code = cells[0];
    r.city = cells[1];
    r.isp = to_isp(cells[2]);
    r.cdn_site = cells[3];
    r.idle_rtt = Milliseconds{to_double(cells[4])};
    r.loaded_rtt = Milliseconds{to_double(cells[5])};
    r.jitter = Milliseconds{to_double(cells[6])};
    r.download = Mbps{to_double(cells[7])};
    r.upload = Mbps{to_double(cells[8])};
    r.distance = Kilometers{to_double(cells[9])};
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<WebRecord> read_web_records(std::istream& in) {
  CsvReader reader(in, web_csv_header());
  std::vector<WebRecord> out;
  std::vector<std::string> cells;
  while (reader.next_row(cells)) {
    WebRecord r;
    r.country_code = cells[0];
    r.city = cells[1];
    r.isp = to_isp(cells[2]);
    r.site = cells[3];
    r.dns_lookup = Milliseconds{to_double(cells[4])};
    r.tcp_connect = Milliseconds{to_double(cells[5])};
    r.tls_handshake = Milliseconds{to_double(cells[6])};
    r.http_response = Milliseconds{to_double(cells[7])};
    r.first_contentful_paint = Milliseconds{to_double(cells[8])};
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace spacecdn::measurement
