#include "measurement/aim.hpp"

#include <string_view>

#include "data/datasets.hpp"
#include "geo/distance.hpp"

namespace spacecdn::measurement {

std::string_view to_string(IspType isp) noexcept {
  return isp == IspType::kStarlink ? "starlink" : "terrestrial";
}

namespace {

// Stable per-country RNG stream id: FNV-1a of the ISO code, so the stream a
// country draws from does not depend on its position in the dataset.
std::uint64_t country_stream(std::string_view code) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : code) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

AimCampaign::AimCampaign(const lsn::StarlinkNetwork& network, AimConfig config)
    : network_(&network),
      config_(config),
      selector_(config.anycast_noise_ms) {}

std::vector<SpeedTestRecord> AimCampaign::run() {
  std::vector<SpeedTestRecord> out;
  for (const data::CountryInfo* country : data::starlink_countries()) {
    auto records = run_country(*country);
    out.insert(out.end(), std::make_move_iterator(records.begin()),
               std::make_move_iterator(records.end()));
  }
  return out;
}

std::vector<SpeedTestRecord> AimCampaign::run(ThreadPool& pool) {
  const auto countries = data::starlink_countries();
  std::vector<std::vector<SpeedTestRecord>> shards(countries.size());
  pool.parallel_for(countries.size(), [&](std::size_t i) {
    shards[i] = run_country(*countries[i]);
  });
  std::vector<SpeedTestRecord> out;
  for (auto& shard : shards) {
    out.insert(out.end(), std::make_move_iterator(shard.begin()),
               std::make_move_iterator(shard.end()));
  }
  return out;
}

std::vector<SpeedTestRecord> AimCampaign::run_country(
    const data::CountryInfo& country) const {
  des::Rng rng(des::mix_seed(config_.seed, country_stream(country.code)));
  std::vector<SpeedTestRecord> out;
  for (const data::CityInfo* city : data::cities_in(country.code)) {
    run_city_terrestrial(country, *city, rng, out);
    if (country.starlink_available) run_city_starlink(country, *city, rng, out);
  }
  return out;
}

void AimCampaign::run_city_terrestrial(const data::CountryInfo& country,
                                       const data::CityInfo& city, des::Rng& rng,
                                       std::vector<SpeedTestRecord>& out) const {
  const terrestrial::TerrestrialIsp isp(country);
  const geo::GeoPoint client = data::location(city);
  const auto sites = data::cdn_sites();

  std::vector<Milliseconds> baselines;
  baselines.reserve(sites.size());
  for (const auto& site : sites) {
    baselines.push_back(isp.baseline_rtt(client, data::location(site)));
  }

  for (std::uint32_t t = 0; t < config_.tests_per_city; ++t) {
    const net::AnycastChoice choice = selector_.select(baselines, rng);
    const auto& site = sites[choice.site_index];
    const geo::GeoPoint server = data::location(site);

    SpeedTestRecord rec;
    rec.country_code = country.code;
    rec.city = city.name;
    rec.isp = IspType::kTerrestrial;
    rec.cdn_site = site.iata;
    rec.idle_rtt = isp.sample_idle_rtt(client, server, rng);
    rec.loaded_rtt = isp.sample_loaded_rtt(client, server, config_.loaded_fraction, rng);
    rec.jitter = Milliseconds{rng.exponential(rec.idle_rtt.value() * 0.05)};
    rec.download = isp.download_bandwidth() * rng.uniform(0.55, 1.0);
    rec.upload = isp.download_bandwidth() * rng.uniform(0.08, 0.2);
    rec.distance = geo::great_circle_distance(client, server);
    out.push_back(std::move(rec));
  }
}

void AimCampaign::run_city_starlink(const data::CountryInfo& country,
                                    const data::CityInfo& city, des::Rng& rng,
                                    std::vector<SpeedTestRecord>& out) const {
  const geo::GeoPoint client = data::location(city);
  const auto breakdown = network_->router().route_to_pop(client, country);
  if (!breakdown) return;  // coverage gap at this epoch

  const geo::GeoPoint pop_location =
      data::location(network_->ground().pop(breakdown->pop));
  const auto& backbone = network_->ground().backbone();
  const auto sites = data::cdn_sites();

  // Anycast sees the client at its PoP: per-site baselines all share the
  // space segment and differ only in the PoP->site terrestrial leg.  This is
  // the mechanism behind the paper's headline mismatch.
  const Milliseconds space_one_way = breakdown->one_way_to_pop();
  std::vector<Milliseconds> baselines;
  baselines.reserve(sites.size());
  for (const auto& site : sites) {
    const Milliseconds pop_site = backbone.one_way_latency(pop_location,
                                                           data::location(site));
    baselines.push_back((space_one_way + pop_site) * 2.0 +
                        network_->access().config().median_overhead_rtt);
  }

  for (std::uint32_t t = 0; t < config_.tests_per_city; ++t) {
    const net::AnycastChoice choice = selector_.select(baselines, rng);
    const auto& site = sites[choice.site_index];
    const geo::GeoPoint server = data::location(site);
    const Milliseconds pop_site = backbone.one_way_latency(pop_location, server);
    const Milliseconds propagation = (space_one_way + pop_site) * 2.0;

    SpeedTestRecord rec;
    rec.country_code = country.code;
    rec.city = city.name;
    rec.isp = IspType::kStarlink;
    rec.cdn_site = site.iata;
    rec.idle_rtt = propagation + network_->access().sample_idle_overhead(rng);
    rec.loaded_rtt =
        propagation +
        network_->access().sample_loaded_overhead(config_.loaded_fraction, rng);
    rec.jitter = Milliseconds{rng.exponential(8.0)};
    rec.download = network_->download_bandwidth() * rng.uniform(0.5, 1.0);
    rec.upload = Mbps{rng.uniform(8.0, 20.0)};
    rec.distance = geo::great_circle_distance(client, server);
    out.push_back(std::move(rec));
  }
}

}  // namespace spacecdn::measurement
