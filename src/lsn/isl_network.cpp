#include "lsn/isl_network.hpp"

#include <set>

#include "geo/propagation.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace spacecdn::lsn {

IslNetwork::IslNetwork(const orbit::WalkerConstellation& constellation,
                       const orbit::EphemerisSnapshot& snapshot, IslConfig config,
                       std::span<const std::uint32_t> failed_satellites)
    : snapshot_(&snapshot),
      config_(config),
      graph_(snapshot.size()),
      route_cache_(graph_, snapshot.size()),
      failed_(snapshot.size(), false) {
  SPACECDN_PROFILE("IslNetwork::build");
  SPACECDN_EXPECT(constellation.size() == snapshot.size(),
                  "snapshot must match the constellation");
  for (const std::uint32_t sat : failed_satellites) {
    SPACECDN_EXPECT(sat < failed_.size(), "failed satellite id out of range");
    if (!failed_[sat]) {
      failed_[sat] = true;
      ++failed_count_;
    }
  }
  // Phase-nearest neighbour selection is not perfectly symmetric, so collect
  // normalised pairs first and add each undirected link exactly once.  The
  // pair set ignores failures: it defines the physical terminal wiring that
  // fail()/recover() toggle at runtime.
  std::set<std::pair<std::uint32_t, std::uint32_t>> links;
  for (std::uint32_t sat = 0; sat < constellation.size(); ++sat) {
    for (std::uint32_t neighbor : constellation.grid_neighbors(sat)) {
      links.emplace(std::min(sat, neighbor), std::max(sat, neighbor));
    }
  }
  partners_.resize(snapshot.size());
  for (const auto& [a, b] : links) {
    partners_[a].push_back(b);
    partners_[b].push_back(a);
  }
  rebuild_edges();
}

void IslNetwork::rebuild_edges() {
  graph_.clear_edges();
  for (std::uint32_t a = 0; a < partners_.size(); ++a) {
    if (failed_[a]) continue;
    for (const std::uint32_t b : partners_[a]) {
      if (b < a || failed_[b]) continue;  // each undirected pair once
      const Kilometers d = snapshot_->isl_distance(a, b);
      const Milliseconds latency =
          geo::propagation_delay(d, geo::Medium::kVacuum) + config_.per_hop_overhead;
      graph_.add_undirected_edge(a, b, latency);
    }
  }
}

void IslNetwork::advance(const orbit::EphemerisSnapshot& snapshot) {
  SPACECDN_PROFILE("IslNetwork::advance");
  SPACECDN_EXPECT(snapshot.size() == failed_.size(),
                  "snapshot must match the constellation");
  snapshot_ = &snapshot;
  rebuild_edges();
  ++topology_epoch_;
  route_cache_.invalidate();
}

bool IslNetwork::is_failed(std::uint32_t sat) const {
  SPACECDN_EXPECT(sat < failed_.size(), "satellite id out of range");
  return failed_[sat];
}

void IslNetwork::fail(std::uint32_t sat) {
  SPACECDN_EXPECT(sat < failed_.size(), "satellite id out of range");
  if (failed_[sat]) return;
  failed_[sat] = true;
  ++failed_count_;
  // Links towards already-failed partners are absent; removing them is a no-op.
  for (const std::uint32_t peer : partners_[sat]) graph_.remove_undirected_edge(sat, peer);
  ++topology_epoch_;
  route_cache_.invalidate();
  if (auto* m = obs::metrics()) {
    m->counter("spacecdn_isl_fail_total").inc();
    m->gauge("spacecdn_isl_failed_satellites").set(static_cast<double>(failed_count_));
  }
}

void IslNetwork::recover(std::uint32_t sat) {
  SPACECDN_EXPECT(sat < failed_.size(), "satellite id out of range");
  if (!failed_[sat]) return;
  failed_[sat] = false;
  --failed_count_;
  for (const std::uint32_t neighbor : partners_[sat]) {
    if (failed_[neighbor]) continue;
    // Same weight formula as construction, from the same snapshot geometry,
    // so restored links carry bit-identical latencies.
    const Kilometers d = snapshot_->isl_distance(sat, neighbor);
    const Milliseconds latency =
        geo::propagation_delay(d, geo::Medium::kVacuum) + config_.per_hop_overhead;
    graph_.add_undirected_edge(sat, neighbor, latency);
  }
  ++topology_epoch_;
  route_cache_.invalidate();
  if (auto* m = obs::metrics()) {
    m->counter("spacecdn_isl_recover_total").inc();
    m->gauge("spacecdn_isl_failed_satellites").set(static_cast<double>(failed_count_));
  }
}

Milliseconds IslNetwork::link_latency(std::uint32_t a, std::uint32_t b) const {
  for (const net::Edge& e : graph_.neighbors(a)) {
    if (e.to == b) return e.weight;
  }
  throw ConfigError("satellites are not ISL neighbours");
}

Milliseconds IslNetwork::path_latency(std::uint32_t from, std::uint32_t to) const {
  SPACECDN_PROFILE("IslNetwork::path_latency");
  const auto tree = route_cache_.tree(from);
  SPACECDN_EXPECT(tree->reachable(to), "ISL fabric must be connected");
  return tree->distance(to);
}

std::vector<Milliseconds> IslNetwork::latencies_from(std::uint32_t sat) const {
  SPACECDN_PROFILE("IslNetwork::latencies_from");
  return route_cache_.tree(sat)->distances();
}

std::shared_ptr<const net::SsspTree> IslNetwork::sssp_from(std::uint32_t sat) const {
  SPACECDN_PROFILE("IslNetwork::sssp_from");
  return route_cache_.tree(sat);
}

std::vector<net::HopDistance> IslNetwork::within_hops(std::uint32_t sat,
                                                      std::uint32_t max_hops) const {
  SPACECDN_PROFILE("IslNetwork::within_hops");
  return net::nodes_within_hops(graph_, sat, max_hops);
}

}  // namespace spacecdn::lsn
