// Serving-satellite handover dynamics.
//
// The paper (section 2): "the connectivity between the user terminal ... and
// the satellite is constantly changing, with the satellite moving out of the
// line-of-sight within 5-10 minutes".  Starlink additionally reshuffles
// terminal-satellite assignments on a fixed 15-second reconfiguration
// schedule.  This module materialises the serving-satellite timeline a
// terminal experiences and its summary statistics, which the striping and
// Space-VM layers build on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/coordinates.hpp"
#include "orbit/walker.hpp"

namespace spacecdn::lsn {

/// One reconfiguration interval with a stable serving satellite (or an
/// outage when `satellite` is nullopt).
struct ServingInterval {
  Milliseconds start{0.0};
  Milliseconds end{0.0};
  std::optional<std::uint32_t> satellite;

  [[nodiscard]] Milliseconds duration() const noexcept { return end - start; }
};

/// Summary of a terminal's connectivity over a window.
struct HandoverStats {
  std::uint32_t handovers = 0;       ///< serving-satellite changes
  std::uint32_t outage_intervals = 0;
  Milliseconds mean_dwell{0.0};      ///< mean time on one satellite
  double coverage_fraction = 1.0;    ///< time with any satellite in view
};

/// Computes serving timelines on the 15-second reconfiguration grid.
class HandoverTracker {
 public:
  explicit HandoverTracker(const orbit::WalkerConstellation& constellation,
                           double min_elevation_deg = 25.0,
                           Milliseconds epoch = Milliseconds::from_seconds(15.0));

  /// The terminal's serving timeline over [start, end), coalescing adjacent
  /// epochs with the same satellite.
  [[nodiscard]] std::vector<ServingInterval> timeline(const geo::GeoPoint& terminal,
                                                      Milliseconds start,
                                                      Milliseconds end) const;

  [[nodiscard]] HandoverStats analyze(const geo::GeoPoint& terminal, Milliseconds start,
                                      Milliseconds end) const;

  [[nodiscard]] Milliseconds epoch() const noexcept { return epoch_; }

 private:
  const orbit::WalkerConstellation* constellation_;
  double min_elevation_deg_;
  Milliseconds epoch_;
};

}  // namespace spacecdn::lsn
