// Per-cell capacity and diurnal load.
//
// A Starlink satellite beam serves a ground cell with a fixed downlink
// budget shared by the active subscribers under it; measured speeds
// therefore depend on subscriber density and time of day.  The model
// reproduces the familiar evening dip the paper's speed-test substrate
// needs: per-user throughput = min(terminal cap, cell capacity / active
// users), with a diurnal activity curve peaking in the evening.
#pragma once

#include "des/random.hpp"
#include "util/units.hpp"

namespace spacecdn::lsn {

/// Cell-level capacity parameters.
struct CellConfig {
  /// Usable downlink per beam/cell.
  Mbps cell_capacity{4000.0};
  /// Subscribers homed in the cell.
  double subscribers = 300.0;
  /// Per-terminal ceiling (scheduler cap).
  Mbps terminal_cap{250.0};
  /// Peak fraction of subscribers active simultaneously (evening).
  double peak_active_fraction = 0.25;
  /// Off-peak floor of the activity curve.
  double trough_active_fraction = 0.04;
  /// Local hour of peak demand.
  double peak_hour = 20.5;
};

/// Deterministic-plus-jitter diurnal load model for one cell.
class CellLoadModel {
 public:
  /// @throws spacecdn::ConfigError on non-positive capacity/subscribers or
  /// an activity range outside (0, 1].
  explicit CellLoadModel(CellConfig config);

  [[nodiscard]] const CellConfig& config() const noexcept { return config_; }

  /// Fraction of subscribers active at local `hour` in [0, 24): a raised
  /// cosine between trough and peak centred on peak_hour.
  [[nodiscard]] double active_fraction(double hour) const;

  /// Expected concurrently active users at `hour`.
  [[nodiscard]] double active_users(double hour) const;

  /// Cell utilisation at `hour` assuming each active user would consume the
  /// terminal cap if available; clamped to [0, 1].
  [[nodiscard]] double utilization(double hour) const;

  /// Expected per-user throughput at `hour`.
  [[nodiscard]] Mbps expected_throughput(double hour) const;

  /// One stochastic speed-test observation at `hour` (Poisson-ish jitter on
  /// the active-user count).
  [[nodiscard]] Mbps sample_throughput(double hour, des::Rng& rng) const;

 private:
  CellConfig config_;
};

}  // namespace spacecdn::lsn
