#include "lsn/cell_capacity.hpp"

#include <algorithm>
#include <cmath>

#include "geo/earth.hpp"
#include "util/error.hpp"

namespace spacecdn::lsn {

CellLoadModel::CellLoadModel(CellConfig config) : config_(config) {
  SPACECDN_EXPECT(config.cell_capacity.value() > 0.0, "cell capacity must be positive");
  SPACECDN_EXPECT(config.subscribers > 0.0, "cell must have subscribers");
  SPACECDN_EXPECT(config.terminal_cap.value() > 0.0, "terminal cap must be positive");
  SPACECDN_EXPECT(config.trough_active_fraction > 0.0 &&
                      config.peak_active_fraction <= 1.0 &&
                      config.trough_active_fraction <= config.peak_active_fraction,
                  "activity fractions must satisfy 0 < trough <= peak <= 1");
  SPACECDN_EXPECT(config.peak_hour >= 0.0 && config.peak_hour < 24.0,
                  "peak hour must be within [0, 24)");
}

double CellLoadModel::active_fraction(double hour) const {
  SPACECDN_EXPECT(hour >= 0.0 && hour < 24.0, "hour must be within [0, 24)");
  // Raised cosine: 1 at peak_hour, 0 twelve hours away.
  const double phase = (hour - config_.peak_hour) / 24.0 * 2.0 * geo::kPi;
  const double shape = 0.5 * (1.0 + std::cos(phase));
  return config_.trough_active_fraction +
         (config_.peak_active_fraction - config_.trough_active_fraction) * shape;
}

double CellLoadModel::active_users(double hour) const {
  return config_.subscribers * active_fraction(hour);
}

double CellLoadModel::utilization(double hour) const {
  const double demand = active_users(hour) * config_.terminal_cap.value();
  return std::clamp(demand / config_.cell_capacity.value(), 0.0, 1.0);
}

Mbps CellLoadModel::expected_throughput(double hour) const {
  const double users = std::max(1.0, active_users(hour));
  return Mbps{std::min(config_.terminal_cap.value(),
                       config_.cell_capacity.value() / users)};
}

Mbps CellLoadModel::sample_throughput(double hour, des::Rng& rng) const {
  // Jitter the instantaneous active-user count (exponential around the
  // expectation approximates the bursty arrival mix well enough here).
  const double expected_users = active_users(hour);
  const double users = std::max(1.0, rng.exponential(expected_users));
  const double share = config_.cell_capacity.value() / users;
  return Mbps{std::clamp(share, 1.0, config_.terminal_cap.value())};
}

}  // namespace spacecdn::lsn
