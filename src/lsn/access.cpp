#include "lsn/access.hpp"

#include "util/error.hpp"

namespace spacecdn::lsn {

StarlinkAccess::StarlinkAccess(AccessConfig config)
    : config_(config), bloat_(config.bloat_at_full_load) {
  SPACECDN_EXPECT(config_.median_overhead_rtt.value() > 0.0,
                  "access overhead must be positive");
  SPACECDN_EXPECT(config_.min_elevation_deg > 0.0 && config_.min_elevation_deg < 90.0,
                  "terminal elevation mask must be within (0, 90)");
}

Milliseconds StarlinkAccess::sample_idle_overhead(des::Rng& rng) const {
  return Milliseconds{
      rng.lognormal_median(config_.median_overhead_rtt.value(), config_.overhead_sigma)};
}

Milliseconds StarlinkAccess::sample_loaded_overhead(double load, des::Rng& rng) const {
  return sample_idle_overhead(rng) + bloat_.sample_bloat(load, rng);
}

}  // namespace spacecdn::lsn
