#include "lsn/ground_segment.hpp"

#include <algorithm>

#include "geo/distance.hpp"
#include "util/error.hpp"

namespace spacecdn::lsn {

GroundSegment::GroundSegment(terrestrial::BackboneConfig backbone)
    : GroundSegment(
          {data::ground_stations().begin(), data::ground_stations().end()},
          {data::starlink_pops().begin(), data::starlink_pops().end()}, backbone) {}

GroundSegment::GroundSegment(std::vector<data::GroundStationInfo> gateways,
                             std::vector<data::PopInfo> pops,
                             terrestrial::BackboneConfig backbone)
    : gateways_(std::move(gateways)),
      pops_(std::move(pops)),
      backbone_(backbone),
      gateway_failed_(gateways_.size(), false) {
  SPACECDN_EXPECT(!gateways_.empty(), "ground segment needs at least one gateway");
  SPACECDN_EXPECT(!pops_.empty(), "ground segment needs at least one PoP");
}

void GroundSegment::set_gateway_failed(std::size_t gateway_index, bool failed) {
  SPACECDN_EXPECT(gateway_index < gateway_failed_.size(), "gateway index out of range");
  gateway_failed_[gateway_index] = failed;
}

bool GroundSegment::gateway_failed(std::size_t gateway_index) const {
  SPACECDN_EXPECT(gateway_index < gateway_failed_.size(), "gateway index out of range");
  return gateway_failed_[gateway_index];
}

std::size_t GroundSegment::failed_gateway_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(gateway_failed_.begin(), gateway_failed_.end(), true));
}

const data::GroundStationInfo& GroundSegment::gateway(std::size_t i) const {
  SPACECDN_EXPECT(i < gateways_.size(), "gateway index out of range");
  return gateways_[i];
}

const data::PopInfo& GroundSegment::pop(std::size_t i) const {
  SPACECDN_EXPECT(i < pops_.size(), "PoP index out of range");
  return pops_[i];
}

std::size_t GroundSegment::pop_index(std::string_view key) const {
  for (std::size_t i = 0; i < pops_.size(); ++i) {
    if (pops_[i].key == key) return i;
  }
  throw NotFoundError("unknown PoP key: " + std::string(key));
}

std::size_t GroundSegment::nearest_pop(const geo::GeoPoint& point) const {
  std::size_t best = 0;
  Kilometers best_d = geo::great_circle_distance(point, data::location(pops_[0]));
  for (std::size_t i = 1; i < pops_.size(); ++i) {
    const Kilometers d = geo::great_circle_distance(point, data::location(pops_[i]));
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

std::size_t GroundSegment::assigned_pop(const data::CountryInfo& country,
                                        const geo::GeoPoint& client) const {
  if (country.assigned_pop.empty()) return nearest_pop(client);
  return pop_index(country.assigned_pop);
}

Milliseconds GroundSegment::gateway_to_pop(std::size_t gateway_index,
                                           std::size_t pop_index) const {
  return backbone_.one_way_latency(data::location(gateway(gateway_index)),
                                   data::location(pop(pop_index)));
}

std::vector<std::optional<std::uint32_t>> GroundSegment::gateway_satellites(
    const orbit::EphemerisSnapshot& snapshot, double min_elevation_deg) const {
  std::vector<std::optional<std::uint32_t>> out;
  out.reserve(gateways_.size());
  for (const auto& gw : gateways_) {
    out.push_back(snapshot.serving_satellite(data::location(gw), min_elevation_deg));
  }
  return out;
}

std::vector<std::vector<std::uint32_t>> GroundSegment::gateway_visible_satellites(
    const orbit::EphemerisSnapshot& snapshot, double min_elevation_deg) const {
  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(gateways_.size());
  for (const auto& gw : gateways_) {
    out.push_back(snapshot.visible_satellites(data::location(gw), min_elevation_deg));
  }
  return out;
}

}  // namespace spacecdn::lsn
