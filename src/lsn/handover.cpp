#include "lsn/handover.hpp"

#include "geo/visibility.hpp"
#include "orbit/ephemeris.hpp"
#include "util/error.hpp"

namespace spacecdn::lsn {

HandoverTracker::HandoverTracker(const orbit::WalkerConstellation& constellation,
                                 double min_elevation_deg, Milliseconds epoch)
    : constellation_(&constellation),
      min_elevation_deg_(min_elevation_deg),
      epoch_(epoch) {
  SPACECDN_EXPECT(epoch.value() > 0.0, "reconfiguration epoch must be positive");
}

std::vector<ServingInterval> HandoverTracker::timeline(const geo::GeoPoint& terminal,
                                                       Milliseconds start,
                                                       Milliseconds end) const {
  SPACECDN_EXPECT(end >= start, "window must be ordered");
  std::vector<ServingInterval> out;
  std::optional<std::uint32_t> current;
  for (Milliseconds t = start; t < end; t += epoch_) {
    const Milliseconds interval_end{std::min((t + epoch_).value(), end.value())};
    const orbit::EphemerisSnapshot snapshot(*constellation_, t);
    // Sticky selection with hysteresis: keep the current satellite while it
    // stays above the mask (real terminals track a satellite across its
    // whole pass -- the paper's 5-10 minute dwell); only re-select when it
    // leaves view.
    if (!current ||
        !geo::is_visible(terminal, snapshot.position(*current), min_elevation_deg_)) {
      current = snapshot.serving_satellite(terminal, min_elevation_deg_);
    }
    if (!out.empty() && out.back().satellite == current) {
      out.back().end = interval_end;  // coalesce
    } else {
      out.push_back(ServingInterval{t, interval_end, current});
    }
  }
  return out;
}

HandoverStats HandoverTracker::analyze(const geo::GeoPoint& terminal, Milliseconds start,
                                       Milliseconds end) const {
  const auto intervals = timeline(terminal, start, end);
  HandoverStats stats;
  double served_ms = 0.0;
  double dwell_total = 0.0;
  std::uint32_t dwell_count = 0;
  std::optional<std::uint32_t> previous;
  bool had_previous = false;

  for (const auto& interval : intervals) {
    if (!interval.satellite) {
      ++stats.outage_intervals;
    } else {
      served_ms += interval.duration().value();
      dwell_total += interval.duration().value();
      ++dwell_count;
      if (had_previous && previous != interval.satellite) ++stats.handovers;
      previous = interval.satellite;
      had_previous = true;
    }
  }
  if (dwell_count > 0) {
    stats.mean_dwell = Milliseconds{dwell_total / dwell_count};
  }
  const double window = (end - start).value();
  stats.coverage_fraction = window > 0 ? served_ms / window : 1.0;
  return stats;
}

}  // namespace spacecdn::lsn
