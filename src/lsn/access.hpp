// Starlink access-layer latency model.
//
// Beyond pure propagation, the Ku-band access link adds scheduling delay
// (the MAC scheduler assigns slots in 15 ms frames), processing, and -- under
// load -- severe bufferbloat.  Constants calibrated so that a subscriber
// with a local PoP sees ~33-40 ms median idle RTT (paper Table 1: Spain 33,
// Japan 34, and >200 ms loaded RTTs in ISL-dependent countries).
#pragma once

#include "des/random.hpp"
#include "net/link.hpp"
#include "util/units.hpp"

namespace spacecdn::lsn {

/// Tunables of the user-terminal access layer.
struct AccessConfig {
  /// Median round-trip scheduling + processing overhead added by the
  /// Dishy <-> satellite <-> gateway radio segments.
  Milliseconds median_overhead_rtt{21.0};
  /// Lognormal sigma of that overhead (handover and frame-timing jitter).
  double overhead_sigma = 0.28;
  /// Minimum elevation angle of the user terminal's phased array.
  double min_elevation_deg = 25.0;
  /// Added RTT at full downlink utilisation (bufferbloat).
  Milliseconds bloat_at_full_load{230.0};
  /// Typical downlink capacity per subscriber.
  Mbps downlink{120.0};
  Mbps uplink{15.0};
  /// Aggregate Ku-band capacity one satellite can put on the ground across
  /// all of its beams (quoted ~17-20 Gbps per Starlink v1.5 satellite; we
  /// default below that to reflect spectrum reuse limits over a hot cell).
  /// Like IslConfig::capacity this is an annotation consumed by the load
  /// engine's contention model, not by the latency-only paths.
  Mbps satellite_downlink_aggregate{16'000.0};
  Mbps satellite_uplink_aggregate{4'000.0};
  /// Aggregate gateway (ground-station) feeder-link capacity.
  Mbps gateway_aggregate{10'000.0};
};

/// Samples access-layer RTT contributions.
class StarlinkAccess {
 public:
  explicit StarlinkAccess(AccessConfig config = {});

  [[nodiscard]] const AccessConfig& config() const noexcept { return config_; }

  /// Idle-link overhead sample (round trip).
  [[nodiscard]] Milliseconds sample_idle_overhead(des::Rng& rng) const;

  /// Overhead under a bulk transfer at `load` of the downlink.
  [[nodiscard]] Milliseconds sample_loaded_overhead(double load, des::Rng& rng) const;

  [[nodiscard]] Mbps downlink() const noexcept { return config_.downlink; }

 private:
  AccessConfig config_;
  net::BufferbloatModel bloat_;
};

}  // namespace spacecdn::lsn
