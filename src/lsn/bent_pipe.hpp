// Bent-pipe route computation: user terminal -> serving satellite -> (ISLs)
// -> gateway satellite -> gateway -> terrestrial haul -> assigned PoP ->
// terrestrial Internet to the destination.
//
// This is the data path every Starlink packet takes today (paper section 2)
// and the baseline SpaceCDN is compared against.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>

#include "data/types.hpp"
#include "lsn/ground_segment.hpp"
#include "lsn/isl_network.hpp"

namespace spacecdn::lsn {

/// One-way component breakdown of a routed connection.
struct RouteBreakdown {
  std::uint32_t serving_satellite = 0;  ///< satellite above the user
  std::uint32_t landing_satellite = 0;  ///< satellite above the chosen gateway
  std::size_t gateway = 0;
  std::size_t pop = 0;
  std::uint32_t isl_hops = 0;

  Milliseconds uplink{0.0};        ///< user terminal -> serving satellite
  Milliseconds isl{0.0};           ///< serving -> landing satellite over ISLs
  Milliseconds downlink{0.0};      ///< landing satellite -> gateway
  Milliseconds gateway_haul{0.0};  ///< gateway -> PoP (terrestrial)
  Milliseconds pop_to_destination{0.0};

  /// One-way latency up to the PoP (the LSN-internal part).
  [[nodiscard]] Milliseconds one_way_to_pop() const noexcept {
    return uplink + isl + downlink + gateway_haul;
  }
  /// Full one-way latency to the destination.
  [[nodiscard]] Milliseconds one_way() const noexcept {
    return one_way_to_pop() + pop_to_destination;
  }
  /// Propagation round trip (excludes the access-layer overhead, which the
  /// StarlinkAccess model samples).
  [[nodiscard]] Milliseconds propagation_rtt() const noexcept { return one_way() * 2.0; }
};

/// Computes bent-pipe routes over one ephemeris snapshot.
class BentPipeRouter {
 public:
  /// @param gateway_min_elevation_deg  gateways use larger dishes and track
  /// lower elevations than user terminals.
  BentPipeRouter(const GroundSegment& ground, const IslNetwork& isl,
                 double user_min_elevation_deg = 25.0,
                 double gateway_min_elevation_deg = 10.0);

  /// Routes from a client towards its assigned PoP and on to `destination`.
  /// Returns nullopt when the client has no satellite in view or no gateway
  /// is reachable.
  [[nodiscard]] std::optional<RouteBreakdown> route(
      const geo::GeoPoint& client, const data::CountryInfo& country,
      const geo::GeoPoint& destination) const;

  /// Route terminating at the PoP itself (destination co-located with PoP);
  /// useful for PoP-assignment diagnostics.
  [[nodiscard]] std::optional<RouteBreakdown> route_to_pop(
      const geo::GeoPoint& client, const data::CountryInfo& country) const;

  /// Like route_to_pop, but starting from a caller-chosen serving satellite.
  /// The resilience layer uses this to route around an offline
  /// highest-elevation satellite that route_to_pop would have picked.
  [[nodiscard]] std::optional<RouteBreakdown> route_from_satellite(
      std::uint32_t serving, const geo::GeoPoint& client,
      const data::CountryInfo& country) const;

  [[nodiscard]] const GroundSegment& ground() const noexcept { return *ground_; }
  [[nodiscard]] const IslNetwork& isl() const noexcept { return *isl_; }

 private:
  /// Per-gateway landing-candidate lists, valid for exactly one ephemeris
  /// snapshot.  Computed at construction and refreshed whenever the ISL
  /// network has been advanced to a different snapshot -- the lists used to
  /// be frozen at construction, so a router kept across an ephemeris advance
  /// silently landed traffic on satellites that were no longer overhead.
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& landing_candidates() const;

  const GroundSegment* ground_;
  const IslNetwork* isl_;
  double user_min_elevation_deg_;
  double gateway_min_elevation_deg_;
  /// Epoch of the snapshot the cached lists were computed from.  Epochs are
  /// process-globally monotonic (EphemerisSnapshot::epoch), so this cannot
  /// suffer the ABA hazard of the earlier {address, time} key: a rebuilt
  /// snapshot reallocated at the old address with an equal time value would
  /// have matched and served stale lists.
  mutable std::mutex gateway_mutex_;
  mutable std::uint64_t gateway_epoch_ = 0;
  mutable std::vector<std::vector<std::uint32_t>> gateway_satellites_;
};

}  // namespace spacecdn::lsn
