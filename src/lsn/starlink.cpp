#include "lsn/starlink.hpp"

#include "util/error.hpp"

namespace spacecdn::lsn {

StarlinkConfig starlink_preset(std::string_view name) {
  StarlinkConfig config;
  config.shell = orbit::multi_shell_preset(name);
  return config;
}

StarlinkNetwork::StarlinkNetwork(StarlinkConfig config)
    : config_(config),
      constellation_(config.shell),
      ground_(config.gateway_backbone),
      access_(config.access),
      failed_now_(config.failed_satellites) {
  set_time(Milliseconds{0.0});
}

void StarlinkNetwork::set_time(Milliseconds t) {
  if (snapshot_ == nullptr) {
    snapshot_ = std::make_unique<orbit::EphemerisSnapshot>(constellation_, t);
    isl_ = std::make_unique<IslNetwork>(constellation_, *snapshot_, config_.isl,
                                        failed_now_);
    router_ = std::make_unique<BentPipeRouter>(
        ground_, *isl_, config_.user_min_elevation_deg,
        config_.gateway_min_elevation_deg);
    return;
  }
  // Re-propagation keeps every allocation alive: the snapshot advances in
  // place (position buffers and visibility index reused, epoch bumped), the
  // ISL fabric rebuilds edge weights in place (failure state carries over)
  // and invalidates cached SSSP trees, and the router refreshes its gateway
  // visibility lists lazily when it sees the new snapshot epoch.
  snapshot_->advance(t);
  isl_->advance(*snapshot_);
}

void StarlinkNetwork::fail_satellite(std::uint32_t sat) {
  if (isl_->is_failed(sat)) return;
  isl_->fail(sat);
  failed_now_.push_back(sat);
}

void StarlinkNetwork::recover_satellite(std::uint32_t sat) {
  if (!isl_->is_failed(sat)) return;
  isl_->recover(sat);
  std::erase(failed_now_, sat);
}

void StarlinkNetwork::set_gateway_failed(std::size_t gateway_index, bool failed) {
  ground_.set_gateway_failed(gateway_index, failed);
}

std::optional<RouteBreakdown> StarlinkNetwork::route(
    const geo::GeoPoint& client, const data::CountryInfo& country,
    const geo::GeoPoint& destination) const {
  return router_->route(client, country, destination);
}

Milliseconds StarlinkNetwork::baseline_rtt(const RouteBreakdown& route) const noexcept {
  return route.propagation_rtt() + access_.config().median_overhead_rtt;
}

Milliseconds StarlinkNetwork::sample_idle_rtt(const RouteBreakdown& route,
                                              des::Rng& rng) const {
  return route.propagation_rtt() + access_.sample_idle_overhead(rng);
}

Milliseconds StarlinkNetwork::sample_loaded_rtt(const RouteBreakdown& route, double load,
                                                des::Rng& rng) const {
  return route.propagation_rtt() + access_.sample_loaded_overhead(load, rng);
}

}  // namespace spacecdn::lsn
