// The inter-satellite-link network at one instant.
//
// Builds a +grid ISL topology (forward/backward in plane, east/west across
// planes) over an ephemeris snapshot, with per-link latencies derived from
// the actual inter-satellite distances.  ISLs are free-space optical, so
// propagation runs at c -- the reason the paper's Figure 7 finds multi-hop
// satellite fetches competitive with terrestrial fiber.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/graph.hpp"
#include "net/routing_cache.hpp"
#include "orbit/ephemeris.hpp"

namespace spacecdn::lsn {

/// Per-hop constants of the ISL fabric.
struct IslConfig {
  /// Switching/forwarding overhead per satellite hop (optical terminals
  /// plus onboard routing).
  Milliseconds per_hop_overhead{1.0};
  /// Line rate of one optical terminal (Starlink's space lasers are quoted
  /// at ~100 Gbps).  Pure annotation for the load engine's contention model:
  /// latency-only experiments ignore it, the request-level load engine
  /// (src/load) charges transfers against it.
  Mbps capacity{100'000.0};
};

/// Latency-weighted ISL graph; node ids equal satellite ids.
class IslNetwork {
 public:
  /// @param failed_satellites  satellites whose optical terminals are down
  /// (laser-terminal failures are routine at constellation scale); they
  /// keep their node ids but carry no ISL edges, so routing detours around
  /// them.
  IslNetwork(const orbit::WalkerConstellation& constellation,
             const orbit::EphemerisSnapshot& snapshot, IslConfig config = {},
             std::span<const std::uint32_t> failed_satellites = {});

  /// Whether a satellite's ISL terminals are marked failed.
  [[nodiscard]] bool is_failed(std::uint32_t sat) const;
  [[nodiscard]] std::uint32_t failed_count() const noexcept { return failed_count_; }

  /// Incrementally fails a satellite's ISL terminals: every incident link is
  /// removed, so routes detour around it from now on.  No-op if already
  /// failed.  O(degree) -- churn simulations flip satellites thousands of
  /// times without rebuilding the constellation graph.
  void fail(std::uint32_t sat);

  /// Reverses fail(): re-adds the links towards every currently-healthy
  /// +grid neighbour, with weights recomputed from the same snapshot
  /// geometry, so a fail/recover round-trip restores shortest-path
  /// latencies bit-identically.  No-op if not failed.
  void recover(std::uint32_t sat);

  /// Rebinds the network to a new ephemeris snapshot of the same
  /// constellation: every live link's weight is recomputed from the new
  /// geometry in place, failure state carries over, and cached routing
  /// state is invalidated.  Equivalent to (but much cheaper than)
  /// reconstructing the IslNetwork, because the +grid wiring is
  /// failure- and time-independent.
  void advance(const orbit::EphemerisSnapshot& snapshot);

  /// Monotonic counter bumped by every topology change (fail, recover,
  /// advance).  Layers that precompute per-snapshot state (BentPipeRouter's
  /// gateway visibility lists, the routing cache) key their validity on it.
  [[nodiscard]] std::uint64_t topology_epoch() const noexcept { return topology_epoch_; }

  [[nodiscard]] const net::Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const orbit::EphemerisSnapshot& snapshot() const noexcept {
    return *snapshot_;
  }
  [[nodiscard]] const IslConfig& config() const noexcept { return config_; }

  /// One-way latency of the direct ISL between two +grid neighbours.
  /// @throws spacecdn::ConfigError if they are not neighbours.
  [[nodiscard]] Milliseconds link_latency(std::uint32_t a, std::uint32_t b) const;

  /// Shortest one-way latency between two satellites over ISLs.  Served
  /// from the epoch-keyed SSSP cache: repeated queries from the same source
  /// within an epoch cost a hash lookup, not a Dijkstra.
  [[nodiscard]] Milliseconds path_latency(std::uint32_t from, std::uint32_t to) const;

  /// Shortest latency from one satellite to all others (cached; returns a
  /// copy -- hot paths should prefer sssp_from and read distances in place).
  [[nodiscard]] std::vector<Milliseconds> latencies_from(std::uint32_t sat) const;

  /// The cached SSSP tree rooted at `sat`: one Dijkstra answers distance,
  /// hop-count, and path-reconstruction queries to every other satellite.
  [[nodiscard]] std::shared_ptr<const net::SsspTree> sssp_from(std::uint32_t sat) const;

  /// Cache effectiveness counters (hits/misses/evictions/invalidations).
  [[nodiscard]] net::RoutingCacheStats routing_cache_stats() const {
    return route_cache_.stats();
  }

  /// Satellites within `max_hops` ISL hops of `sat` (BFS, includes `sat`).
  [[nodiscard]] std::vector<net::HopDistance> within_hops(std::uint32_t sat,
                                                          std::uint32_t max_hops) const;

 private:
  /// Repopulates graph_ edges from the bound snapshot's geometry for every
  /// pair of currently-healthy partners.
  void rebuild_edges();

  const orbit::EphemerisSnapshot* snapshot_;
  IslConfig config_;
  net::Graph graph_;
  net::RoutingCache route_cache_;
  std::vector<bool> failed_;
  std::uint32_t failed_count_ = 0;
  std::uint64_t topology_epoch_ = 0;
  /// Full +grid partner lists (failure-independent).  Phase-nearest pairing
  /// is not symmetric -- a satellite may be chosen by a neighbour it did not
  /// itself choose -- so recover() needs the materialised undirected
  /// adjacency, not grid_neighbors() alone.
  std::vector<std::vector<std::uint32_t>> partners_;
};

}  // namespace spacecdn::lsn
