// The inter-satellite-link network at one instant.
//
// Builds a +grid ISL topology (forward/backward in plane, east/west across
// planes) over an ephemeris snapshot, with per-link latencies derived from
// the actual inter-satellite distances.  ISLs are free-space optical, so
// propagation runs at c -- the reason the paper's Figure 7 finds multi-hop
// satellite fetches competitive with terrestrial fiber.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/graph.hpp"
#include "orbit/ephemeris.hpp"

namespace spacecdn::lsn {

/// Per-hop constants of the ISL fabric.
struct IslConfig {
  /// Switching/forwarding overhead per satellite hop (optical terminals
  /// plus onboard routing).
  Milliseconds per_hop_overhead{1.0};
};

/// Latency-weighted ISL graph; node ids equal satellite ids.
class IslNetwork {
 public:
  /// @param failed_satellites  satellites whose optical terminals are down
  /// (laser-terminal failures are routine at constellation scale); they
  /// keep their node ids but carry no ISL edges, so routing detours around
  /// them.
  IslNetwork(const orbit::WalkerConstellation& constellation,
             const orbit::EphemerisSnapshot& snapshot, IslConfig config = {},
             std::span<const std::uint32_t> failed_satellites = {});

  /// Whether a satellite's ISL terminals are marked failed.
  [[nodiscard]] bool is_failed(std::uint32_t sat) const;
  [[nodiscard]] std::uint32_t failed_count() const noexcept { return failed_count_; }

  /// Incrementally fails a satellite's ISL terminals: every incident link is
  /// removed, so routes detour around it from now on.  No-op if already
  /// failed.  O(degree) -- churn simulations flip satellites thousands of
  /// times without rebuilding the constellation graph.
  void fail(std::uint32_t sat);

  /// Reverses fail(): re-adds the links towards every currently-healthy
  /// +grid neighbour, with weights recomputed from the same snapshot
  /// geometry, so a fail/recover round-trip restores shortest-path
  /// latencies bit-identically.  No-op if not failed.
  void recover(std::uint32_t sat);

  [[nodiscard]] const net::Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const orbit::EphemerisSnapshot& snapshot() const noexcept {
    return *snapshot_;
  }
  [[nodiscard]] const IslConfig& config() const noexcept { return config_; }

  /// One-way latency of the direct ISL between two +grid neighbours.
  /// @throws spacecdn::ConfigError if they are not neighbours.
  [[nodiscard]] Milliseconds link_latency(std::uint32_t a, std::uint32_t b) const;

  /// Shortest one-way latency between two satellites over ISLs.
  [[nodiscard]] Milliseconds path_latency(std::uint32_t from, std::uint32_t to) const;

  /// Shortest latency from one satellite to all others.
  [[nodiscard]] std::vector<Milliseconds> latencies_from(std::uint32_t sat) const;

  /// Satellites within `max_hops` ISL hops of `sat` (BFS, includes `sat`).
  [[nodiscard]] std::vector<net::HopDistance> within_hops(std::uint32_t sat,
                                                          std::uint32_t max_hops) const;

 private:
  const orbit::EphemerisSnapshot* snapshot_;
  IslConfig config_;
  net::Graph graph_;
  std::vector<bool> failed_;
  std::uint32_t failed_count_ = 0;
  /// Full +grid partner lists (failure-independent).  Phase-nearest pairing
  /// is not symmetric -- a satellite may be chosen by a neighbour it did not
  /// itself choose -- so recover() needs the materialised undirected
  /// adjacency, not grid_neighbors() alone.
  std::vector<std::vector<std::uint32_t>> partners_;
};

}  // namespace spacecdn::lsn
