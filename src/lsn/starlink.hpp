// StarlinkNetwork: the assembled LEO ISP.
//
// Owns the constellation (one Walker shell or a multi-shell stack), the
// ground segment, the access-layer model, and a router bound to the current
// simulation time.  Advancing time re-propagates the ephemeris in place and
// rebuilds the ISL fabric, which is how satellite handovers and topology
// dynamics enter every experiment.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "data/datasets.hpp"
#include "lsn/access.hpp"
#include "lsn/bent_pipe.hpp"
#include "lsn/ground_segment.hpp"
#include "lsn/isl_network.hpp"
#include "orbit/walker.hpp"

namespace spacecdn::lsn {

/// Assembly configuration.
struct StarlinkConfig {
  /// The constellation to fly.  MultiShellDesign converts implicitly from a
  /// single WalkerDesign, so `config.shell = orbit::test_shell()` still works.
  orbit::MultiShellDesign shell = orbit::starlink_shell1();
  AccessConfig access = {};
  IslConfig isl = {};
  terrestrial::BackboneConfig gateway_backbone = {};
  double user_min_elevation_deg = 25.0;
  double gateway_min_elevation_deg = 10.0;
  /// Satellites whose ISL terminals are down (failure injection); they keep
  /// flying but carry no ISL traffic.
  std::vector<std::uint32_t> failed_satellites = {};
};

/// Named assembly presets for scenario configs; the constellation comes from
/// orbit::multi_shell_preset: "shell1" (the paper's Starlink Shell 1, the
/// default everywhere), "test-shell" (the reduced 8x8 unit-test shell),
/// "starlink-4shell" (the published Gen1 Shells 1-4, 4,236 satellites), or
/// "gen2-10k" (a ~10k-satellite Gen2-style stack).
/// @throws spacecdn::ConfigError on an unknown preset name.
[[nodiscard]] StarlinkConfig starlink_preset(std::string_view name);

/// The LEO ISP under study.
class StarlinkNetwork {
 public:
  explicit StarlinkNetwork(StarlinkConfig config = {});

  /// Re-propagates the constellation to simulation time `t` and rebuilds the
  /// ISL network and router.  Dynamic fail/recover state (fail_satellite,
  /// set_gateway_failed) carries over to the rebuilt topology.
  void set_time(Milliseconds t);

  /// Incrementally fails a satellite's ISL terminals (see IslNetwork::fail).
  /// The failure persists across set_time() re-propagations until recovered.
  void fail_satellite(std::uint32_t sat);

  /// Reverses fail_satellite(); also clears a construct-time failure for
  /// `sat` if one was configured.
  void recover_satellite(std::uint32_t sat);

  /// Marks a gateway down or back up; routing skips failed gateways.
  void set_gateway_failed(std::size_t gateway_index, bool failed);

  [[nodiscard]] Milliseconds time() const noexcept { return snapshot_->time(); }
  [[nodiscard]] const orbit::WalkerConstellation& constellation() const noexcept {
    return constellation_;
  }
  [[nodiscard]] const orbit::EphemerisSnapshot& snapshot() const noexcept {
    return *snapshot_;
  }
  [[nodiscard]] const IslNetwork& isl() const noexcept { return *isl_; }
  [[nodiscard]] const GroundSegment& ground() const noexcept { return ground_; }
  [[nodiscard]] const BentPipeRouter& router() const noexcept { return *router_; }
  [[nodiscard]] const StarlinkAccess& access() const noexcept { return access_; }
  [[nodiscard]] const StarlinkConfig& config() const noexcept { return config_; }

  /// Routes a client to a destination (see BentPipeRouter::route).
  [[nodiscard]] std::optional<RouteBreakdown> route(
      const geo::GeoPoint& client, const data::CountryInfo& country,
      const geo::GeoPoint& destination) const;

  /// Median RTT of a routed connection: propagation + median access overhead.
  [[nodiscard]] Milliseconds baseline_rtt(const RouteBreakdown& route) const noexcept;

  /// One stochastic idle-RTT sample.
  [[nodiscard]] Milliseconds sample_idle_rtt(const RouteBreakdown& route,
                                             des::Rng& rng) const;

  /// One stochastic RTT sample while the downlink carries `load` in [0, 1].
  [[nodiscard]] Milliseconds sample_loaded_rtt(const RouteBreakdown& route, double load,
                                               des::Rng& rng) const;

  [[nodiscard]] Mbps download_bandwidth() const noexcept { return access_.downlink(); }

 private:
  StarlinkConfig config_;
  orbit::WalkerConstellation constellation_;
  GroundSegment ground_;
  StarlinkAccess access_;
  /// Current ISL failure set (construct-time failures plus dynamic churn);
  /// reapplied whenever set_time rebuilds the ISL network.
  std::vector<std::uint32_t> failed_now_;
  // Rebuilt on set_time; unique_ptr because they bind by reference.
  std::unique_ptr<orbit::EphemerisSnapshot> snapshot_;
  std::unique_ptr<IslNetwork> isl_;
  std::unique_ptr<BentPipeRouter> router_;
};

}  // namespace spacecdn::lsn
