#include "lsn/bent_pipe.hpp"

#include "geo/propagation.hpp"
#include "util/error.hpp"

namespace spacecdn::lsn {

BentPipeRouter::BentPipeRouter(const GroundSegment& ground, const IslNetwork& isl,
                               double user_min_elevation_deg,
                               double gateway_min_elevation_deg)
    : ground_(&ground),
      isl_(&isl),
      user_min_elevation_deg_(user_min_elevation_deg),
      gateway_min_elevation_deg_(gateway_min_elevation_deg),
      gateway_epoch_(isl.snapshot().epoch()),
      gateway_satellites_(
          ground.gateway_visible_satellites(isl.snapshot(), gateway_min_elevation_deg)) {}

const std::vector<std::vector<std::uint32_t>>& BentPipeRouter::landing_candidates() const {
  // Cheap enough to take unconditionally: route computation dwarfs one
  // uncontended lock, and it makes concurrent parallel-sweep queries safe
  // against a refresh racing the first post-advance access.
  const std::lock_guard lock(gateway_mutex_);
  const orbit::EphemerisSnapshot& snapshot = isl_->snapshot();
  if (gateway_epoch_ != snapshot.epoch()) {
    gateway_satellites_ =
        ground_->gateway_visible_satellites(snapshot, gateway_min_elevation_deg_);
    gateway_epoch_ = snapshot.epoch();
  }
  return gateway_satellites_;
}

std::optional<RouteBreakdown> BentPipeRouter::route(const geo::GeoPoint& client,
                                                    const data::CountryInfo& country,
                                                    const geo::GeoPoint& destination) const {
  auto breakdown = route_to_pop(client, country);
  if (!breakdown) return std::nullopt;
  breakdown->pop_to_destination = ground_->backbone().one_way_latency(
      data::location(ground_->pop(breakdown->pop)), destination);
  return breakdown;
}

std::optional<RouteBreakdown> BentPipeRouter::route_to_pop(
    const geo::GeoPoint& client, const data::CountryInfo& country) const {
  const auto serving =
      isl_->snapshot().serving_satellite(client, user_min_elevation_deg_);
  if (!serving) return std::nullopt;  // coverage gap
  return route_from_satellite(*serving, client, country);
}

std::optional<RouteBreakdown> BentPipeRouter::route_from_satellite(
    std::uint32_t serving, const geo::GeoPoint& client,
    const data::CountryInfo& country) const {
  const auto& snapshot = isl_->snapshot();
  SPACECDN_EXPECT(serving < snapshot.size(), "serving satellite id out of range");
  const std::size_t pop = ground_->assigned_pop(country, client);

  // One cached SSSP from the serving satellite, then pick the gateway whose
  // (ISL + downlink + terrestrial haul to the PoP) total is minimal.  This
  // lets traffic land at a distant gateway near the PoP -- the ISL-detour
  // behaviour the paper observes for southern Africa.  The tree is memoised
  // per serving satellite and epoch, so the many clients sharing a serving
  // satellite in a sweep pay for one Dijkstra between them.
  const auto sssp = isl_->sssp_from(serving);
  const std::vector<Milliseconds>& isl_latency = sssp->distances();
  const auto& gateway_satellites = landing_candidates();

  std::optional<RouteBreakdown> best;
  double best_total = net::kUnreachable;
  for (std::size_t g = 0; g < ground_->gateway_count(); ++g) {
    if (ground_->gateway_failed(g)) continue;  // teleport outage: land elsewhere
    const Milliseconds haul = ground_->gateway_to_pop(g, pop);
    const geo::GeoPoint gw_location = data::location(ground_->gateway(g));
    // Any visible satellite can land the traffic; pick the one minimising
    // the full ISL + downlink + haul total.
    for (std::uint32_t landing : gateway_satellites[g]) {
      const Milliseconds isl_ms = isl_latency[landing];
      if (isl_ms.value() == net::kUnreachable) continue;
      if (isl_ms.value() + haul.value() >= best_total) continue;  // prune
      const Kilometers down_km = snapshot.slant_range(gw_location, landing);
      const Milliseconds down = geo::propagation_delay(down_km, geo::Medium::kVacuum);
      const double total = isl_ms.value() + down.value() + haul.value();
      if (total < best_total) {
        best_total = total;
        RouteBreakdown b;
        b.serving_satellite = serving;
        b.landing_satellite = landing;
        b.gateway = g;
        b.pop = pop;
        b.isl = isl_ms;
        b.downlink = down;
        b.gateway_haul = haul;
        best = b;
      }
    }
  }
  if (!best) return std::nullopt;

  best->uplink = geo::propagation_delay(snapshot.slant_range(client, serving),
                                        geo::Medium::kVacuum);
  // Recover the hop count of the chosen ISL path from the same SSSP tree's
  // parent array -- this used to cost a second full Dijkstra per client.
  best->isl_hops = sssp->hops_to(best->landing_satellite);
  return best;
}

}  // namespace spacecdn::lsn
