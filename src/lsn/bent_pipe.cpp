#include "lsn/bent_pipe.hpp"

#include "geo/propagation.hpp"
#include "util/error.hpp"

namespace spacecdn::lsn {

BentPipeRouter::BentPipeRouter(const GroundSegment& ground, const IslNetwork& isl,
                               double user_min_elevation_deg,
                               double gateway_min_elevation_deg)
    : ground_(&ground),
      isl_(&isl),
      user_min_elevation_deg_(user_min_elevation_deg),
      gateway_satellites_(
          ground.gateway_visible_satellites(isl.snapshot(), gateway_min_elevation_deg)) {}

std::optional<RouteBreakdown> BentPipeRouter::route(const geo::GeoPoint& client,
                                                    const data::CountryInfo& country,
                                                    const geo::GeoPoint& destination) const {
  auto breakdown = route_to_pop(client, country);
  if (!breakdown) return std::nullopt;
  breakdown->pop_to_destination = ground_->backbone().one_way_latency(
      data::location(ground_->pop(breakdown->pop)), destination);
  return breakdown;
}

std::optional<RouteBreakdown> BentPipeRouter::route_to_pop(
    const geo::GeoPoint& client, const data::CountryInfo& country) const {
  const auto serving =
      isl_->snapshot().serving_satellite(client, user_min_elevation_deg_);
  if (!serving) return std::nullopt;  // coverage gap
  return route_from_satellite(*serving, client, country);
}

std::optional<RouteBreakdown> BentPipeRouter::route_from_satellite(
    std::uint32_t serving, const geo::GeoPoint& client,
    const data::CountryInfo& country) const {
  const auto& snapshot = isl_->snapshot();
  SPACECDN_EXPECT(serving < snapshot.size(), "serving satellite id out of range");
  const std::size_t pop = ground_->assigned_pop(country, client);

  // One Dijkstra from the serving satellite, then pick the gateway whose
  // (ISL + downlink + terrestrial haul to the PoP) total is minimal.  This
  // lets traffic land at a distant gateway near the PoP -- the ISL-detour
  // behaviour the paper observes for southern Africa.
  const std::vector<Milliseconds> isl_latency = isl_->latencies_from(serving);

  std::optional<RouteBreakdown> best;
  double best_total = net::kUnreachable;
  for (std::size_t g = 0; g < ground_->gateway_count(); ++g) {
    if (ground_->gateway_failed(g)) continue;  // teleport outage: land elsewhere
    const Milliseconds haul = ground_->gateway_to_pop(g, pop);
    const geo::GeoPoint gw_location = data::location(ground_->gateway(g));
    // Any visible satellite can land the traffic; pick the one minimising
    // the full ISL + downlink + haul total.
    for (std::uint32_t landing : gateway_satellites_[g]) {
      const Milliseconds isl_ms = isl_latency[landing];
      if (isl_ms.value() == net::kUnreachable) continue;
      if (isl_ms.value() + haul.value() >= best_total) continue;  // prune
      const Kilometers down_km = snapshot.slant_range(gw_location, landing);
      const Milliseconds down = geo::propagation_delay(down_km, geo::Medium::kVacuum);
      const double total = isl_ms.value() + down.value() + haul.value();
      if (total < best_total) {
        best_total = total;
        RouteBreakdown b;
        b.serving_satellite = serving;
        b.landing_satellite = landing;
        b.gateway = g;
        b.pop = pop;
        b.isl = isl_ms;
        b.downlink = down;
        b.gateway_haul = haul;
        best = b;
      }
    }
  }
  if (!best) return std::nullopt;

  best->uplink = geo::propagation_delay(snapshot.slant_range(client, serving),
                                        geo::Medium::kVacuum);
  // Recover the hop count of the chosen ISL path.
  if (best->serving_satellite == best->landing_satellite) {
    best->isl_hops = 0;
  } else {
    const auto path = net::shortest_path(isl_->graph(), best->serving_satellite,
                                         best->landing_satellite);
    SPACECDN_EXPECT(path.has_value(), "chosen landing satellite must be reachable");
    best->isl_hops = static_cast<std::uint32_t>(path->hop_count());
  }
  return best;
}

}  // namespace spacecdn::lsn
