// The LSN ground segment: gateways (ground stations) and points of presence.
//
// Traffic leaves the constellation at a gateway, is hauled terrestrially to
// the subscriber's assigned PoP (where the public IP lives, behind carrier-
// grade NAT), and only there enters the Internet.  This indirection is the
// mechanism behind the paper's headline finding: CDNs localise LSN users at
// the PoP, not at their homes.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "data/datasets.hpp"
#include "orbit/ephemeris.hpp"
#include "terrestrial/backbone.hpp"

namespace spacecdn::lsn {

/// Gateways + PoPs with the queries routing needs.
class GroundSegment {
 public:
  /// Uses the embedded Starlink datasets and a backbone model for
  /// gateway-to-PoP hauling.
  explicit GroundSegment(terrestrial::BackboneConfig backbone = {});

  /// Custom infrastructure (tests, what-if studies).
  GroundSegment(std::vector<data::GroundStationInfo> gateways,
                std::vector<data::PopInfo> pops, terrestrial::BackboneConfig backbone);

  [[nodiscard]] std::size_t gateway_count() const noexcept { return gateways_.size(); }
  [[nodiscard]] std::size_t pop_count() const noexcept { return pops_.size(); }

  /// Marks a gateway down (fiber cut, teleport outage) or back up.  Routing
  /// skips failed gateways; the antennas and datasets stay in place so
  /// recovery is instant.
  void set_gateway_failed(std::size_t gateway_index, bool failed);
  [[nodiscard]] bool gateway_failed(std::size_t gateway_index) const;
  [[nodiscard]] std::size_t failed_gateway_count() const noexcept;

  [[nodiscard]] const data::GroundStationInfo& gateway(std::size_t i) const;
  [[nodiscard]] const data::PopInfo& pop(std::size_t i) const;
  [[nodiscard]] const terrestrial::Backbone& backbone() const noexcept { return backbone_; }

  /// Index of a PoP by key.  @throws spacecdn::NotFoundError.
  [[nodiscard]] std::size_t pop_index(std::string_view key) const;

  /// Index of the geographically nearest PoP to a point.
  [[nodiscard]] std::size_t nearest_pop(const geo::GeoPoint& point) const;

  /// The PoP a subscriber in `country` is assigned to (the CGNAT mapping):
  /// the country's configured PoP, or the nearest PoP when unset.
  [[nodiscard]] std::size_t assigned_pop(const data::CountryInfo& country,
                                         const geo::GeoPoint& client) const;

  /// Terrestrial haul latency (one-way) from a gateway to a PoP.
  [[nodiscard]] Milliseconds gateway_to_pop(std::size_t gateway_index,
                                            std::size_t pop_index) const;

  /// Best satellite above each gateway at `min_elevation_deg` (nullopt where
  /// none); recomputed per ephemeris snapshot.
  [[nodiscard]] std::vector<std::optional<std::uint32_t>> gateway_satellites(
      const orbit::EphemerisSnapshot& snapshot, double min_elevation_deg) const;

  /// All satellites visible from each gateway at `min_elevation_deg`.
  /// Gateways carry several tracking antennas and can land traffic on any
  /// visible satellite -- crucial for ISL routing, since the hop-nearest
  /// visible satellite may be on a very different orbital plane than the
  /// highest-elevation one.
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> gateway_visible_satellites(
      const orbit::EphemerisSnapshot& snapshot, double min_elevation_deg) const;

 private:
  std::vector<data::GroundStationInfo> gateways_;
  std::vector<data::PopInfo> pops_;
  terrestrial::Backbone backbone_;
  std::vector<bool> gateway_failed_;
};

}  // namespace spacecdn::lsn
