// The telemetry hub: process-wide sink installation and fast accessors.
//
// Instrumented code never owns telemetry state; it asks the hub for the
// currently-installed sinks and does nothing when they are absent:
//
//   if (auto* m = obs::metrics()) m->counter("spacecdn_fetch_total").inc();
//
// Disabled (the default) this is one pointer load and a branch; compiling
// with SPACECDN_NO_TELEMETRY makes the accessors constexpr nullptr so the
// whole block is dead code the optimiser removes.  Benches and tests
// install sinks with a TelemetryScope (RAII) or the all-in-one
// TelemetrySession.
#pragma once

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace spacecdn::obs {

/// The pluggable sinks; any subset may be null.
struct TelemetrySinks {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  FlightRecorder* recorder = nullptr;
  Profiler* profiler = nullptr;
};

namespace detail {
/// Single mutable global; no locking -- the simulator is single-threaded and
/// parallel workers are expected to install thread-local registries and
/// merge (MetricsRegistry::merge / ShardedCounter).
inline TelemetrySinks g_sinks{};
}  // namespace detail

/// Replaces the installed sinks, returning the previous set.
TelemetrySinks set_telemetry(const TelemetrySinks& sinks) noexcept;

#ifndef SPACECDN_NO_TELEMETRY
[[nodiscard]] inline MetricsRegistry* metrics() noexcept { return detail::g_sinks.metrics; }
[[nodiscard]] inline Tracer* tracer() noexcept { return detail::g_sinks.tracer; }
[[nodiscard]] inline FlightRecorder* recorder() noexcept { return detail::g_sinks.recorder; }
[[nodiscard]] inline Profiler* profiler() noexcept { return detail::g_sinks.profiler; }
#else
[[nodiscard]] constexpr MetricsRegistry* metrics() noexcept { return nullptr; }
[[nodiscard]] constexpr Tracer* tracer() noexcept { return nullptr; }
[[nodiscard]] constexpr FlightRecorder* recorder() noexcept { return nullptr; }
[[nodiscard]] constexpr Profiler* profiler() noexcept { return nullptr; }
#endif

/// Hot-path counter: remembers the resolved stream so steady-state
/// increments are a pointer bump instead of a name lookup.  Rebinds when a
/// different registry is installed or the bound one was cleared (epoch
/// check).  Typical use is a function-local static at the instrumented site.
class CounterHandle {
 public:
  explicit CounterHandle(std::string name, LabelSet labels = {})
      : name_(std::move(name)), labels_(std::move(labels)) {}

  void inc(std::uint64_t n = 1) {
#ifndef SPACECDN_NO_TELEMETRY
    if (MetricsRegistry* m = metrics()) resolve(*m).inc(n);
#else
    (void)n;
#endif
  }

 private:
  Counter& resolve(MetricsRegistry& m) {
    if (&m != bound_ || m.epoch() != epoch_) {
      counter_ = &m.counter(name_, labels_);
      bound_ = &m;
      epoch_ = m.epoch();
    }
    return *counter_;
  }

  std::string name_;
  LabelSet labels_;
  MetricsRegistry* bound_ = nullptr;
  std::uint64_t epoch_ = 0;
  Counter* counter_ = nullptr;
};

/// Hot-path histogram, same caching scheme as CounterHandle.
class HistogramHandle {
 public:
  HistogramHandle(std::string name, LabelSet labels, HistogramOptions options)
      : name_(std::move(name)), labels_(std::move(labels)), options_(options) {}

  void observe(double x) {
#ifndef SPACECDN_NO_TELEMETRY
    if (MetricsRegistry* m = metrics()) resolve(*m).observe(x);
#else
    (void)x;
#endif
  }

 private:
  HistogramMetric& resolve(MetricsRegistry& m) {
    if (&m != bound_ || m.epoch() != epoch_) {
      histogram_ = &m.histogram(name_, labels_, options_);
      bound_ = &m;
      epoch_ = m.epoch();
    }
    return *histogram_;
  }

  std::string name_;
  LabelSet labels_;
  HistogramOptions options_;
  MetricsRegistry* bound_ = nullptr;
  std::uint64_t epoch_ = 0;
  HistogramMetric* histogram_ = nullptr;
};

/// Installs sinks for the current scope; restores the previous ones on exit.
class TelemetryScope {
 public:
  explicit TelemetryScope(const TelemetrySinks& sinks) noexcept
      : previous_(set_telemetry(sinks)) {}
  ~TelemetryScope() { (void)set_telemetry(previous_); }

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  TelemetrySinks previous_;
};

/// Owns one of everything and installs it for its lifetime: the one-liner
/// benches and examples use to switch telemetry on.
class TelemetrySession {
 public:
  explicit TelemetrySession(FlightRecorderConfig recorder_config = {});
  ~TelemetrySession() = default;

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] FlightRecorder& recorder() noexcept { return recorder_; }
  [[nodiscard]] Profiler& profiler() noexcept { return profiler_; }

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
  FlightRecorder recorder_;
  Profiler profiler_;
  TelemetryScope scope_;
};

}  // namespace spacecdn::obs
