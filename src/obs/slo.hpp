// SLO engine: error-budget accounting and multi-window burn-rate alerts.
//
// Layered on the load engine's deadline ledger: every request outcome is
// classified good (met the SLO: completed within its deadline) or bad
// (failed, rejected, uncovered, or past-deadline) and bucketed by sim-time.
// The tracker then evaluates the standard SRE multi-window burn-rate rule
// at deterministic bucket boundaries: with an objective of `objective`
// (error budget = 1 - objective), the burn rate over a trailing window is
//
//   burn = (bad / total over the window) / (1 - objective)
//
// i.e. 1.0 means the run is consuming its budget exactly at the sustainable
// rate.  An alert fires while BOTH the short and the long window burn at or
// above `burn_threshold` -- the short window makes the alert fast, the long
// window keeps it from flapping on a single bad bucket.  Because buckets,
// evaluation times, and outcomes are all simulation-time driven, alerts
// fire at bit-identical sim-times across runs and thread counts.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "des/simulator.hpp"
#include "util/units.hpp"

namespace spacecdn::obs {

struct SloConfig {
  /// Target good fraction (0.999 -> a 0.1% error budget).
  double objective = 0.999;
  /// Fast burn window (catches cliffs quickly).
  Milliseconds short_window{5'000.0};
  /// Slow burn window (suppresses one-bucket blips).
  Milliseconds long_window{60'000.0};
  /// Both windows must burn at >= this multiple of the sustainable rate.
  double burn_threshold = 10.0;
  /// Bucket width; also the evaluation cadence.
  Milliseconds bucket{1'000.0};
};

/// One alert state transition (fire or resolve) with the burn rates that
/// caused it.
struct SloAlert {
  Milliseconds at{0.0};
  bool firing = false;
  double short_burn = 0.0;
  double long_burn = 0.0;
};

class SloTracker {
 public:
  using AlertHook = std::function<void(const SloAlert&)>;

  explicit SloTracker(SloConfig config = {});

  /// Records one request outcome at `now` (good = the request met the SLO).
  void record(Milliseconds now, bool good);

  /// Schedules one evaluate() per bucket boundary on `sim` from sim.now()
  /// up to and including `horizon`.
  void install(des::Simulator& sim, Milliseconds horizon);

  /// Evaluates the trailing windows ending at `now`; when the firing state
  /// flips, appends an SloAlert transition and invokes the alert hook.
  void evaluate(Milliseconds now);

  /// Called on every fire/resolve transition (timeline wiring).
  void set_alert_hook(AlertHook hook) { hook_ = std::move(hook); }

  /// Burn rate over the trailing `window` ending at `now`, at bucket
  /// granularity; 0 when the window saw no requests.
  [[nodiscard]] double burn_rate(Milliseconds now, Milliseconds window) const;

  [[nodiscard]] bool firing() const noexcept { return firing_; }
  [[nodiscard]] std::uint64_t alerts_fired() const noexcept { return fired_; }
  /// Every fire/resolve transition, in sim-time order.
  [[nodiscard]] const std::vector<SloAlert>& alerts() const noexcept {
    return alerts_;
  }
  [[nodiscard]] const SloConfig& config() const noexcept { return config_; }
  [[nodiscard]] double error_budget() const noexcept {
    return 1.0 - config_.objective;
  }
  /// Whole-run error rate as a fraction of the error budget (1.0 = the
  /// entire budget is gone); 0 when no requests were recorded.
  [[nodiscard]] double budget_consumed() const noexcept;

 private:
  struct Bucket {
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
  };

  /// Grows buckets_ so the bucket containing `now` exists.
  void roll_to(Milliseconds now);

  SloConfig config_;
  std::vector<Bucket> buckets_;  ///< bucket b covers [b*width, (b+1)*width)
  std::uint64_t total_good_ = 0;
  std::uint64_t total_bad_ = 0;
  bool firing_ = false;
  std::uint64_t fired_ = 0;
  std::vector<SloAlert> alerts_;
  AlertHook hook_;
};

}  // namespace spacecdn::obs
