// Unified incident timeline: one sim-time-ordered event log per run.
//
// Every subsystem that does something operationally interesting -- fault
// injection firing, a circuit breaker opening, degradation hot-marking a
// satellite, the flight recorder tripping, an SLO burn-rate alert paging --
// records a TimelineEvent here.  The result is a single JSONL stream that
// explains an incident after the fact: injection -> breaker-open -> shed ->
// recovery, all stamped in simulation time.  tools/render_timeline.py turns
// the stream into an ASCII or markdown narrative.
//
// The timeline is plain data owned by whoever drives the run (one per
// LoadRunner).  Events are kept in insertion order and stably sorted by
// sim-time at export, so producers never need to coordinate and the stream
// is deterministic: same run, same bytes.  checksum() digests the canonical
// serialization so CI can gate serial-vs-parallel bit-equality on timelines
// the same way it gates figure CSVs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace spacecdn::obs {

/// Folds one 64-bit word into an FNV-1a hash byte-wise (little-endian).
/// Used to combine per-run series/timeline checksums in a deterministic
/// merge order; seed the chain with kFnv1aBasis.
inline constexpr std::uint64_t kFnv1aBasis = 0xcbf29ce484222325ULL;
[[nodiscard]] std::uint64_t fnv1a_fold(std::uint64_t hash,
                                       std::uint64_t value) noexcept;

/// One timeline entry.  `kind` is a dotted category string -- the producers
/// use "fault.fail", "fault.recover", "breaker.open", "breaker.half-open",
/// "breaker.closed", "degradation.hot-mark", "degradation.shed",
/// "flight-recorder.trip", "slo.alert-fire", "slo.alert-resolve",
/// "surge.begin", "surge.end" -- so consumers can filter by prefix.
struct TimelineEvent {
  Milliseconds at{0.0};
  std::string kind;
  std::string subject;  ///< affected component, e.g. "gateway:12"
  std::string detail;   ///< free-form human context (may be empty)
  double value = 0.0;   ///< optional numeric payload (burn rate, count)
};

class IncidentTimeline {
 public:
  void record(Milliseconds at, std::string kind, std::string subject,
              std::string detail = {}, double value = 0.0);

  [[nodiscard]] const std::vector<TimelineEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  /// Events whose kind starts with `kind_prefix` ("breaker." counts every
  /// breaker transition; an exact kind counts just that kind).
  [[nodiscard]] std::size_t count(std::string_view kind_prefix) const;

  /// Writes the events in (sim-time, insertion) order, one JSON object per
  /// line.  A non-empty `run` label is added to every line so artifacts
  /// merging several runs (the chaos benches' on/ablated points) stay
  /// self-describing.
  void write_jsonl(std::ostream& os, std::string_view run = {}) const;

  /// FNV-1a digest over the canonical event serialization in export order
  /// (excluding the run label): the CI determinism witness.
  [[nodiscard]] std::uint64_t checksum() const;

 private:
  /// Event indices stably sorted by sim-time (export order).
  [[nodiscard]] std::vector<std::size_t> export_order() const;

  std::vector<TimelineEvent> events_;
};

}  // namespace spacecdn::obs
