#include "obs/telemetry.hpp"

namespace spacecdn::obs {

TelemetrySinks set_telemetry(const TelemetrySinks& sinks) noexcept {
  const TelemetrySinks previous = detail::g_sinks;
  detail::g_sinks = sinks;
  return previous;
}

TelemetrySession::TelemetrySession(FlightRecorderConfig recorder_config)
    : recorder_(recorder_config),
      scope_(TelemetrySinks{&metrics_, &tracer_, &recorder_, &profiler_}) {
  tracer_.set_recorder(&recorder_);
}

}  // namespace spacecdn::obs
