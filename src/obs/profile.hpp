// Scoped wall-clock profiling of known-hot paths.
//
//   void IslNetwork::rebuild() {
//     SPACECDN_PROFILE("IslNetwork::build");
//     ...
//   }
//
// The macro drops an RAII timer into the scope.  With no profiler installed
// (the default) the constructor is a single pointer load and the clock is
// never read; with SPACECDN_NO_TELEMETRY defined the macro compiles to
// nothing.  Durations land in a per-name des::OnlineSummary; report()
// renders the profile table.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "des/stats.hpp"

namespace spacecdn::obs {

class Profiler {
 public:
  void record(const char* name, std::uint64_t nanoseconds);

  [[nodiscard]] std::size_t section_count() const noexcept { return sections_.size(); }
  [[nodiscard]] std::uint64_t calls(const std::string& name) const;
  /// Per-name duration summary in nanoseconds (zero-count when unknown).
  [[nodiscard]] const des::OnlineSummary& section(const std::string& name) const;

  /// Profile table: section, calls, total ms, mean / min / max microseconds.
  void report(std::ostream& os) const;

  void clear() { sections_.clear(); }

 private:
  std::map<std::string, des::OnlineSummary> sections_;
  static const des::OnlineSummary kEmpty;
};

/// RAII timer feeding the installed profiler (see obs/telemetry.hpp).  Reads
/// the clock only when a profiler is installed at construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) noexcept;
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  Profiler* profiler_;  ///< resolved once at construction
  std::chrono::steady_clock::time_point start_;
};

}  // namespace spacecdn::obs

#define SPACECDN_PROFILE_CONCAT_INNER(a, b) a##b
#define SPACECDN_PROFILE_CONCAT(a, b) SPACECDN_PROFILE_CONCAT_INNER(a, b)

#ifndef SPACECDN_NO_TELEMETRY
#define SPACECDN_PROFILE(name)                                             \
  ::spacecdn::obs::ScopedTimer SPACECDN_PROFILE_CONCAT(spacecdn_profile_,  \
                                                       __COUNTER__)(name)
#else
#define SPACECDN_PROFILE(name) ((void)0)
#endif
