// Per-fetch trace spans: where one request's latency went.
//
// A Trace is a tree of spans built by the instrumented code (the SpaceCDN
// router is the main producer): the root is the whole fetch, children are
// serving-satellite selection, per-tier attempts, retry backoff charges, and
// cache admissions.  Spans carry a *charged* duration in simulated
// milliseconds -- the amount of client-visible latency that span accounts
// for -- so the direct children of the root always sum to the root's total
// (the acceptance check ablation_churn --trace-out verifies).
//
// Finished traces go to a Tracer, which streams them as JSONL (one trace
// per line) and feeds the flight-recorder ring; render_waterfall() draws a
// single trace as an ASCII waterfall for humans.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace spacecdn::obs {

class FlightRecorder;

inline constexpr std::uint32_t kNoParent = 0xffffffffu;

/// One node of a trace tree.  `start` is the offset from the trace begin at
/// which the span's charge starts accruing (simulated ms).
struct TraceSpan {
  std::string name;
  std::uint32_t parent = kNoParent;
  Milliseconds start{0.0};
  Milliseconds duration{0.0};
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<std::pair<std::string, double>> metrics;
};

/// One finished request trace.
struct Trace {
  std::uint64_t id = 0;
  std::string name;
  Milliseconds at{0.0};  ///< simulation time of the request
  bool failed = false;
  std::vector<TraceSpan> spans;  ///< spans[0] is the root (when non-empty)

  [[nodiscard]] Milliseconds total() const noexcept {
    return spans.empty() ? Milliseconds{0.0} : spans[0].duration;
  }
  /// Sum of the charged durations of the root's direct children.
  [[nodiscard]] Milliseconds children_total() const noexcept;
  /// Nesting depth of span `index` (root = 0).
  [[nodiscard]] std::uint32_t depth(std::uint32_t index) const noexcept;
};

/// Builds one Trace.  The builder hands out span indices; the caller sets
/// durations when the charge is known (a DES has no wall clock to stop).
class TraceBuilder {
 public:
  TraceBuilder(std::string name, Milliseconds at);

  /// Opens a span under `parent` (kNoParent = under the root).  The first
  /// open() with parent == kNoParent creates the root itself.
  std::uint32_t open(std::string name, std::uint32_t parent = kNoParent);

  void set_start(std::uint32_t span, Milliseconds start);
  void set_duration(std::uint32_t span, Milliseconds duration);
  void attr(std::uint32_t span, std::string key, std::string value);
  void metric(std::uint32_t span, std::string key, double value);

  [[nodiscard]] std::uint32_t root() const noexcept { return 0; }
  [[nodiscard]] std::size_t span_count() const noexcept { return trace_.spans.size(); }

  /// Seals the trace: sets failure state and returns it (builder is spent).
  [[nodiscard]] Trace finish(bool failed = false);

 private:
  Trace trace_;
};

/// Collects finished traces: optional JSONL stream, optional flight-recorder
/// feed, optional bounded in-memory retention (for tests and examples).
class Tracer {
 public:
  /// Traces are appended to `os` as JSON-Lines; pass nullptr to detach.
  void set_jsonl_sink(std::ostream* os) noexcept { jsonl_ = os; }
  /// Finished traces are also pushed into `recorder`'s ring.
  void set_recorder(FlightRecorder* recorder) noexcept { recorder_ = recorder; }
  /// Keeps the most recent `n` traces in memory (0 disables retention).
  void set_retain(std::size_t n);

  void record(Trace trace);

  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] const std::vector<Trace>& retained() const noexcept { return retained_; }
  /// Most recently recorded trace (requires retention >= 1).
  [[nodiscard]] const Trace& last() const;

 private:
  std::ostream* jsonl_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  std::size_t retain_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t next_id_ = 1;
  std::vector<Trace> retained_;
};

/// Writes one trace as a single JSON line (no trailing newline).
void write_jsonl(std::ostream& os, const Trace& trace);

/// Renders an indented ASCII waterfall: one row per span, bar offset/length
/// proportional to start/duration relative to the root.
void render_waterfall(std::ostream& os, const Trace& trace, int width = 40);

}  // namespace spacecdn::obs
