#include "obs/timeseries.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>

#include "obs/timeline.hpp"
#include "util/error.hpp"

namespace spacecdn::obs {
namespace {

std::uint64_t fold_double(std::uint64_t hash, double value) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return fnv1a_fold(hash, bits);
}

void write_number(std::ostream& os, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  os << buffer;
}

}  // namespace

void TimeSeries::write_csv(std::ostream& os, std::string_view run,
                           bool header) const {
  if (header) {
    if (!run.empty()) os << "run,";
    os << "window,start_ms,end_ms";
    for (const std::string& column : columns) os << ',' << column;
    os << '\n';
  }
  for (const SeriesWindow& window : windows) {
    if (!run.empty()) os << run << ',';
    os << window.index << ',';
    write_number(os, window.start.value());
    os << ',';
    write_number(os, window.end.value());
    for (const double value : window.values) {
      os << ',';
      write_number(os, value);
    }
    os << '\n';
  }
}

void TimeSeries::write_jsonl(std::ostream& os, std::string_view run) const {
  for (const SeriesWindow& window : windows) {
    os << '{';
    if (!run.empty()) os << "\"run\":\"" << run << "\",";
    os << "\"window\":" << window.index << ",\"start_ms\":";
    write_number(os, window.start.value());
    os << ",\"end_ms\":";
    write_number(os, window.end.value());
    for (std::size_t i = 0; i < window.values.size() && i < columns.size();
         ++i) {
      os << ",\"" << columns[i] << "\":";
      write_number(os, window.values[i]);
    }
    os << "}\n";
  }
}

std::uint64_t TimeSeries::checksum() const {
  std::uint64_t hash = kFnv1aBasis;
  for (const SeriesWindow& window : windows) {
    hash = fold_double(hash, window.start.value());
    hash = fold_double(hash, window.end.value());
    for (const double value : window.values) hash = fold_double(hash, value);
  }
  return hash;
}

TimeSeriesRecorder::TimeSeriesRecorder(TimeSeriesConfig config)
    : config_(config) {
  SPACECDN_EXPECT(config_.interval.value() > 0.0,
                  "time-series recorder: interval must be positive");
}

void TimeSeriesRecorder::add_column(std::string name, WindowProbe probe,
                                    bool delta) {
  SPACECDN_EXPECT(series_.windows.empty(),
                  "time-series recorder: register columns before the first tick");
  series_.columns.push_back(std::move(name));
  columns_.push_back(Column{std::move(probe), delta, 0.0});
}

void TimeSeriesRecorder::add_gauge(std::string column, Probe probe) {
  add_column(std::move(column),
             [probe = std::move(probe)](Milliseconds, Milliseconds) {
               return probe();
             },
             /*delta=*/false);
}

void TimeSeriesRecorder::add_gauge(std::string column, WindowProbe probe) {
  add_column(std::move(column), std::move(probe), /*delta=*/false);
}

void TimeSeriesRecorder::add_counter(std::string column, Probe probe) {
  add_column(std::move(column),
             [probe = std::move(probe)](Milliseconds, Milliseconds) {
               return probe();
             },
             /*delta=*/true);
}

void TimeSeriesRecorder::track_counter(MetricsRegistry& registry,
                                       const std::string& metric,
                                       const LabelSet& labels,
                                       std::string column) {
  // std::map nodes are stable, so the counter reference outlives rehashes.
  const Counter& counter = registry.counter(metric, labels);
  add_counter(column.empty() ? metric : std::move(column),
              [&counter] { return static_cast<double>(counter.value()); });
}

void TimeSeriesRecorder::on_window_close(std::function<void()> hook) {
  close_hooks_.push_back(std::move(hook));
}

void TimeSeriesRecorder::install(des::Simulator& sim, Milliseconds horizon) {
  last_close_ = sim.now();
  const double interval = config_.interval.value();
  // Grid boundaries strictly inside (now, horizon): computed as k*interval
  // (not accumulated) so long runs don't drift off the grid.
  auto k = static_cast<std::uint64_t>(std::floor(sim.now().value() / interval)) + 1;
  for (double t = static_cast<double>(k) * interval; t < horizon.value();
       t = static_cast<double>(++k) * interval) {
    if (t <= sim.now().value()) continue;  // now exactly on a boundary
    sim.schedule_at(Milliseconds{t},
                    [this, t] { tick(Milliseconds{t}); });
  }
  if (horizon > sim.now()) {
    sim.schedule_at(horizon, [this, horizon] { tick(horizon); });
  }
}

void TimeSeriesRecorder::tick(Milliseconds now) {
  SPACECDN_EXPECT(now >= last_close_,
                  "time-series recorder: tick moved backwards");
  SeriesWindow window;
  window.index = series_.windows.size();
  window.start = last_close_;
  window.end = now;
  window.values.reserve(columns_.size());
  for (Column& column : columns_) {
    const double sample = column.probe(window.start, window.end);
    if (column.delta) {
      window.values.push_back(sample - column.last);
      column.last = sample;
    } else {
      window.values.push_back(sample);
    }
  }
  last_close_ = now;
  series_.windows.push_back(std::move(window));
  for (const auto& hook : close_hooks_) hook();
}

}  // namespace spacecdn::obs
