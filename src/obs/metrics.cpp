#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace spacecdn::obs {

namespace {

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Escapes `# HELP` text: the exposition format escapes only backslash and
/// line feed there (quotes are legal verbatim, unlike in label values).
std::string escape_help(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Escapes a JSON string value.
std::string escape_json(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

/// Formats a double the shortest round-trippable way JSON accepts (no inf /
/// nan; those become 0 with a clamp, which the exporters never feed today).
std::string format_number(double v) {
  if (!std::isfinite(v)) v = 0.0;
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string labels_json(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels.pairs()) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += escape_json(k);
    out += "\":\"";
    out += escape_json(v);
    out += "\"";
  }
  out += "}";
  return out;
}

}  // namespace

// ---------------------------------------------------------------- LabelSet

LabelSet::LabelSet(std::initializer_list<std::pair<std::string, std::string>> labels)
    : labels_(labels) {
  std::sort(labels_.begin(), labels_.end());
}

LabelSet::LabelSet(std::vector<std::pair<std::string, std::string>> labels)
    : labels_(std::move(labels)) {
  std::sort(labels_.begin(), labels_.end());
}

std::string LabelSet::prometheus() const {
  if (labels_.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels_) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + escape_label(v) + "\"";
  }
  out += "}";
  return out;
}

// ---------------------------------------------------------- ShardedCounter

ShardedCounter::ShardedCounter(std::size_t shards) : slots_(std::max<std::size_t>(shards, 1)) {}

void ShardedCounter::add(std::size_t shard, std::uint64_t n) noexcept {
  slots_[shard % slots_.size()].value += n;
}

std::uint64_t ShardedCounter::total() const noexcept {
  std::uint64_t sum = 0;
  for (const Slot& slot : slots_) sum += slot.value;
  return sum;
}

std::uint64_t ShardedCounter::shard_value(std::size_t shard) const {
  SPACECDN_EXPECT(shard < slots_.size(), "shard index out of range");
  return slots_[shard].value;
}

void ShardedCounter::merge(const ShardedCounter& other) {
  if (other.slots_.size() > slots_.size()) slots_.resize(other.slots_.size());
  for (std::size_t i = 0; i < other.slots_.size(); ++i) {
    slots_[i].value += other.slots_[i].value;
  }
}

// --------------------------------------------------------- HistogramMetric

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : bins_(lo, hi, bins) {}

void HistogramMetric::observe(double x) noexcept {
  summary_.add(x);
  bins_.add(x);
}

// --------------------------------------------------------- MetricsRegistry

Counter& MetricsRegistry::counter(const std::string& name, const LabelSet& labels) {
  return counters_[name][labels];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const LabelSet& labels) {
  return gauges_[name][labels];
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            const LabelSet& labels,
                                            const HistogramOptions& options) {
  auto family = histograms_.find(name);
  if (family == histograms_.end()) {
    family = histograms_.emplace(name, Family<HistogramMetric>{}).first;
    histogram_options_.emplace(name, options);
  }
  const HistogramOptions& opts = histogram_options_.at(name);
  auto stream = family->second.find(labels);
  if (stream == family->second.end()) {
    stream = family->second
                 .emplace(labels, HistogramMetric(opts.lo, opts.hi, opts.bins))
                 .first;
  }
  return stream->second;
}

ShardedCounter& MetricsRegistry::sharded_counter(const std::string& name,
                                                 std::size_t shards) {
  const auto it = sharded_.find(name);
  if (it != sharded_.end()) return it->second;
  return sharded_.emplace(name, ShardedCounter(shards)).first->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             const LabelSet& labels) const {
  const auto family = counters_.find(name);
  if (family == counters_.end()) return 0;
  const auto stream = family->second.find(labels);
  return stream == family->second.end() ? 0 : stream->second.value();
}

void MetricsRegistry::set_help(const std::string& name, std::string text) {
  help_[name] = std::move(text);
}

const std::string& MetricsRegistry::help(const std::string& name) const {
  static const std::string empty;
  const auto it = help_.find(name);
  return it == help_.end() ? empty : it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, family] : other.counters_) {
    for (const auto& [labels, c] : family) counter(name, labels).inc(c.value());
  }
  for (const auto& [name, family] : other.gauges_) {
    for (const auto& [labels, g] : family) gauge(name, labels).set(g.value());
  }
  for (const auto& [name, family] : other.histograms_) {
    const auto opts_it = other.histogram_options_.find(name);
    const HistogramOptions opts =
        opts_it == other.histogram_options_.end() ? HistogramOptions{} : opts_it->second;
    for (const auto& [labels, h] : family) {
      HistogramMetric& mine = histogram(name, labels, opts);
      // Re-observe bucket midpoints; moments merge exactly via OnlineSummary
      // would lose the bucket counts, so the bucketed view wins here and the
      // summary is approximated at bin centres.
      const des::Histogram& bins = h.bins();
      for (std::size_t b = 0; b < bins.bins(); ++b) {
        const double mid = 0.5 * (bins.bin_lower(b) + bins.bin_upper(b));
        for (std::uint64_t i = 0; i < bins.count(b); ++i) mine.observe(mid);
      }
    }
  }
  for (const auto& [name, sc] : other.sharded_) {
    sharded_counter(name, sc.shards()).merge(sc);
  }
  for (const auto& [name, text] : other.help_) {
    help_.emplace(name, text);  // first registration wins
  }
}

void MetricsRegistry::export_prometheus(std::ostream& os) const {
  // HELP precedes TYPE for every family that registered text; histograms
  // always get one (the exposition consumers the conformance test mimics
  // expect HELP+TYPE pairs on histogram families).
  const auto write_help = [&](const std::string& name, const char* fallback) {
    const auto it = help_.find(name);
    if (it != help_.end()) {
      os << "# HELP " << name << " " << escape_help(it->second) << "\n";
    } else if (fallback != nullptr) {
      os << "# HELP " << name << " " << fallback << "\n";
    }
  };
  for (const auto& [name, family] : counters_) {
    write_help(name, nullptr);
    os << "# TYPE " << name << " counter\n";
    for (const auto& [labels, c] : family) {
      os << name << labels.prometheus() << " " << c.value() << "\n";
    }
  }
  for (const auto& [name, sc] : sharded_) {
    write_help(name, nullptr);
    os << "# TYPE " << name << " counter\n";
    os << name << " " << sc.total() << "\n";
  }
  for (const auto& [name, family] : gauges_) {
    write_help(name, nullptr);
    os << "# TYPE " << name << " gauge\n";
    for (const auto& [labels, g] : family) {
      os << name << labels.prometheus() << " " << format_number(g.value()) << "\n";
    }
  }
  for (const auto& [name, family] : histograms_) {
    write_help(name, "Fixed-bin distribution (cumulative buckets).");
    os << "# TYPE " << name << " histogram\n";
    for (const auto& [labels, h] : family) {
      const des::Histogram& bins = h.bins();
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < bins.bins(); ++b) {
        cumulative += bins.count(b);
        std::vector<std::pair<std::string, std::string>> with_le = labels.pairs();
        with_le.emplace_back("le", format_number(bins.bin_upper(b)));
        os << name << "_bucket" << LabelSet(std::move(with_le)).prometheus() << " "
           << cumulative << "\n";
      }
      std::vector<std::pair<std::string, std::string>> inf = labels.pairs();
      inf.emplace_back("le", "+Inf");
      os << name << "_bucket" << LabelSet(std::move(inf)).prometheus() << " "
         << h.count() << "\n";
      os << name << "_sum" << labels.prometheus() << " " << format_number(h.sum())
         << "\n";
      os << name << "_count" << labels.prometheus() << " " << h.count() << "\n";
    }
  }
}

void MetricsRegistry::export_json(std::ostream& os) const {
  os << "{\"counters\":[";
  bool first = true;
  for (const auto& [name, family] : counters_) {
    for (const auto& [labels, c] : family) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << escape_json(name) << "\",\"labels\":"
         << labels_json(labels) << ",\"value\":" << c.value() << "}";
    }
  }
  for (const auto& [name, sc] : sharded_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << escape_json(name) << "\",\"labels\":{},\"value\":"
       << sc.total() << ",\"shards\":" << sc.shards() << "}";
  }
  os << "],\"gauges\":[";
  first = true;
  for (const auto& [name, family] : gauges_) {
    for (const auto& [labels, g] : family) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << escape_json(name) << "\",\"labels\":"
         << labels_json(labels) << ",\"value\":" << format_number(g.value()) << "}";
    }
  }
  os << "],\"histograms\":[";
  first = true;
  for (const auto& [name, family] : histograms_) {
    for (const auto& [labels, h] : family) {
      if (!first) os << ",";
      first = false;
      const des::OnlineSummary& s = h.summary();
      os << "{\"name\":\"" << escape_json(name) << "\",\"labels\":"
         << labels_json(labels) << ",\"count\":" << s.count()
         << ",\"sum\":" << format_number(h.sum())
         << ",\"mean\":" << format_number(s.mean())
         << ",\"min\":" << format_number(s.count() ? s.min() : 0.0)
         << ",\"max\":" << format_number(s.count() ? s.max() : 0.0)
         << ",\"stddev\":" << format_number(s.stddev()) << "}";
    }
  }
  os << "]}";
}

std::uint64_t MetricsRegistry::next_epoch() noexcept {
  static std::uint64_t counter = 0;
  return ++counter;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  histogram_options_.clear();
  sharded_.clear();
  help_.clear();
  epoch_ = next_epoch();
}

std::size_t MetricsRegistry::family_count() const noexcept {
  return counters_.size() + gauges_.size() + histograms_.size() + sharded_.size();
}

}  // namespace spacecdn::obs
