// Flight recorder: a fixed-size ring of the most recent traces, dumped when
// something goes wrong.
//
// The Tracer pushes every finished trace into the ring; when a resilient
// fetch fails outright or an invariant trips (e.g. a RepairDaemon audit
// finds unrepairable replicas), the instrumented code calls trip(), which
// dumps the retained traces to the configured sink -- the last N requests
// leading up to the incident, exactly like an aircraft flight recorder.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace spacecdn::obs {

struct FlightRecorderConfig {
  std::size_t capacity = 64;  ///< traces retained
};

/// One retained ring slot: the trace plus its global push sequence number
/// and the simulation time it was recorded at, so a post-incident dump can
/// be lined up against the incident timeline even after the ring wraps.
struct FlightEntry {
  std::uint64_t seq = 0;  ///< 0-based push index (monotonic across wraps)
  Milliseconds at{0.0};   ///< sim-time stamp (the trace's request time)
  Trace trace;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  /// Retains `trace`, evicting the oldest when full.  The entry is stamped
  /// with the next sequence number and the trace's sim-time.
  void push(Trace trace);

  /// Retained traces, oldest first.
  [[nodiscard]] std::vector<Trace> snapshot() const;

  /// Retained entries (seq + sim-time + trace), oldest first.
  [[nodiscard]] std::vector<FlightEntry> entries() const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::uint64_t pushed() const noexcept { return pushed_; }

  /// Dumps retained traces to `os` on every trip(); nullptr detaches.
  void set_dump_sink(std::ostream* os) noexcept { dump_ = os; }

  /// Records an incident: bumps the trip counter, remembers `reason`, and
  /// dumps the ring (JSONL preceded by a `# flight-recorder` header line
  /// naming the retained seq range) to the dump sink when one is attached.
  /// Dump order is oldest entry first, even after the ring has wrapped.
  void trip(std::string_view reason, Milliseconds at);

  [[nodiscard]] std::uint64_t trips() const noexcept { return trips_; }
  [[nodiscard]] const std::string& last_trip_reason() const noexcept {
    return last_reason_;
  }

  void clear() noexcept;

 private:
  std::vector<FlightEntry> ring_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t size_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t trips_ = 0;
  std::string last_reason_;
  std::ostream* dump_ = nullptr;
};

}  // namespace spacecdn::obs
