#include "obs/profile.hpp"

#include <ostream>

#include "obs/telemetry.hpp"
#include "util/table.hpp"

namespace spacecdn::obs {

const des::OnlineSummary Profiler::kEmpty{};

void Profiler::record(const char* name, std::uint64_t nanoseconds) {
  sections_[name].add(static_cast<double>(nanoseconds));
}

std::uint64_t Profiler::calls(const std::string& name) const {
  const auto it = sections_.find(name);
  return it == sections_.end() ? 0 : it->second.count();
}

const des::OnlineSummary& Profiler::section(const std::string& name) const {
  const auto it = sections_.find(name);
  return it == sections_.end() ? kEmpty : it->second;
}

void Profiler::report(std::ostream& os) const {
  ConsoleTable table({"section", "calls", "total (ms)", "mean (us)", "min (us)",
                      "max (us)"});
  for (const auto& [name, summary] : sections_) {
    const double total_ms =
        summary.mean() * static_cast<double>(summary.count()) / 1e6;
    table.add_row({name, std::to_string(summary.count()),
                   ConsoleTable::format_fixed(total_ms, 2),
                   ConsoleTable::format_fixed(summary.mean() / 1e3, 2),
                   ConsoleTable::format_fixed(summary.min() / 1e3, 2),
                   ConsoleTable::format_fixed(summary.max() / 1e3, 2)});
  }
  table.render(os);
}

ScopedTimer::ScopedTimer(const char* name) noexcept
    : name_(name), profiler_(profiler()) {
  if (profiler_ != nullptr) start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (profiler_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  profiler_->record(name_, static_cast<std::uint64_t>(
                               std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   elapsed)
                                   .count()));
}

}  // namespace spacecdn::obs
