#include "obs/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <ostream>

namespace spacecdn::obs {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fold_bytes(std::uint64_t hash, const void* data,
                         std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t fold_double(std::uint64_t hash, double value) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return fnv1a_fold(hash, bits);
}

std::uint64_t fold_string(std::uint64_t hash, const std::string& s) noexcept {
  hash = fnv1a_fold(hash, s.size());
  return fold_bytes(hash, s.data(), s.size());
}

void write_escaped(std::ostream& os, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default: os << c; break;
    }
  }
}

}  // namespace

std::uint64_t fnv1a_fold(std::uint64_t hash, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash ^= value & 0xffU;
    hash *= kFnvPrime;
    value >>= 8U;
  }
  return hash;
}

void IncidentTimeline::record(Milliseconds at, std::string kind,
                              std::string subject, std::string detail,
                              double value) {
  events_.push_back(TimelineEvent{at, std::move(kind), std::move(subject),
                                  std::move(detail), value});
}

std::size_t IncidentTimeline::count(std::string_view kind_prefix) const {
  std::size_t n = 0;
  for (const TimelineEvent& event : events_) {
    if (std::string_view{event.kind}.substr(0, kind_prefix.size()) ==
        kind_prefix) {
      ++n;
    }
  }
  return n;
}

std::vector<std::size_t> IncidentTimeline::export_order() const {
  std::vector<std::size_t> order(events_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Stable: simultaneous events keep their insertion (production) order.
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return events_[a].at < events_[b].at;
                   });
  return order;
}

void IncidentTimeline::write_jsonl(std::ostream& os,
                                   std::string_view run) const {
  char number[64];
  for (const std::size_t index : export_order()) {
    const TimelineEvent& event = events_[index];
    os << '{';
    if (!run.empty()) {
      os << "\"run\":\"";
      write_escaped(os, run);
      os << "\",";
    }
    std::snprintf(number, sizeof(number), "%.17g", event.at.value());
    os << "\"at_ms\":" << number << ",\"kind\":\"";
    write_escaped(os, event.kind);
    os << "\",\"subject\":\"";
    write_escaped(os, event.subject);
    os << '"';
    if (!event.detail.empty()) {
      os << ",\"detail\":\"";
      write_escaped(os, event.detail);
      os << '"';
    }
    if (event.value != 0.0) {
      std::snprintf(number, sizeof(number), "%.17g", event.value);
      os << ",\"value\":" << number;
    }
    os << "}\n";
  }
}

std::uint64_t IncidentTimeline::checksum() const {
  std::uint64_t hash = kFnv1aBasis;
  for (const std::size_t index : export_order()) {
    const TimelineEvent& event = events_[index];
    hash = fold_double(hash, event.at.value());
    hash = fold_string(hash, event.kind);
    hash = fold_string(hash, event.subject);
    hash = fold_string(hash, event.detail);
    hash = fold_double(hash, event.value);
  }
  return hash;
}

}  // namespace spacecdn::obs
