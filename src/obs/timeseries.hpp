// Windowed sim-time series: what the run looked like *over time*, not just
// at the end.
//
// The paper's interesting phenomena (reconfiguration dips, failover cliffs,
// burn-rate spikes) only show up as time series, so the recorder samples a
// set of registered probes on a fixed sim-time cadence driven by the DES
// itself: install() schedules one tick per window boundary, and each tick
// closes the window by sampling every column.  Two probe flavors:
//
//   - gauges: sampled as-is at window close (queue depth, open breakers);
//   - counters: the probe returns a cumulative count and the recorded value
//     is the per-window delta (offered, completed, rejects, ...).
//
// Windows align to the interval grid anchored at t=0 regardless of when the
// recorder is installed, so a recorder installed mid-run produces a partial
// first window and a horizon off the grid produces a partial last window --
// series from different runs line up column-for-column.
//
// The recorded TimeSeries is plain data with CSV/JSONL exporters and an
// FNV-1a checksum over every (start, end, values) triple, extending the
// repo's serial-vs-parallel bit-equality gates to timelines.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "des/simulator.hpp"
#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace spacecdn::obs {

/// One closed sampling window: values[i] belongs to TimeSeries::columns[i].
struct SeriesWindow {
  std::uint64_t index = 0;
  Milliseconds start{0.0};
  Milliseconds end{0.0};
  std::vector<double> values;
};

/// Recorded series data: column names plus one row per closed window.
class TimeSeries {
 public:
  std::vector<std::string> columns;
  std::vector<SeriesWindow> windows;

  [[nodiscard]] bool empty() const noexcept { return windows.empty(); }

  /// CSV rows `window,start_ms,end_ms,<columns...>`.  A non-empty `run`
  /// label prepends a `run` column; `header` controls the header row so
  /// multi-run artifacts emit it once.
  void write_csv(std::ostream& os, std::string_view run = {},
                 bool header = true) const;
  /// One JSON object per window (same fields as the CSV columns).
  void write_jsonl(std::ostream& os, std::string_view run = {}) const;

  /// FNV-1a digest over (start, end, values) of every window in order.
  [[nodiscard]] std::uint64_t checksum() const;
};

struct TimeSeriesConfig {
  /// Window width; the sampling grid is anchored at t=0.
  Milliseconds interval{1'000.0};
};

class TimeSeriesRecorder {
 public:
  explicit TimeSeriesRecorder(TimeSeriesConfig config = {});

  /// A probe samples one column at window close.  Window-aware probes also
  /// see the closing window's bounds (rates need the window width; partial
  /// windows make it non-constant).
  using Probe = std::function<double()>;
  using WindowProbe = std::function<double(Milliseconds start, Milliseconds end)>;

  /// Gauge column: recorded value is the probe's sample at window close.
  void add_gauge(std::string column, Probe probe);
  void add_gauge(std::string column, WindowProbe probe);
  /// Counter column: the probe returns a cumulative count; the recorded
  /// value is the delta since the previous window close.
  void add_counter(std::string column, Probe probe);
  /// Registry-backed counter column sampled by delta.  The counter is
  /// created when absent (reads 0 until someone increments it); `column`
  /// defaults to the metric name.
  void track_counter(MetricsRegistry& registry, const std::string& metric,
                     const LabelSet& labels = {}, std::string column = {});
  /// Hook run after each window closes -- the place to reset per-window
  /// accumulators feeding the probes.
  void on_window_close(std::function<void()> hook);

  /// Schedules one window-close tick per grid boundary on `sim` from
  /// sim.now() up to and including `horizon` (a final partial window when
  /// the horizon is off the grid).  Columns must all be registered first.
  void install(des::Simulator& sim, Milliseconds horizon);

  /// Closes the window [previous close, now] directly -- for tests and
  /// non-DES drivers (the telemetry-overhead bench).  `now` must not be
  /// before the previous close.
  void tick(Milliseconds now);

  [[nodiscard]] const TimeSeries& series() const noexcept { return series_; }
  [[nodiscard]] TimeSeries take_series() noexcept {
    return std::move(series_);
  }
  [[nodiscard]] std::uint64_t checksum() const { return series_.checksum(); }
  [[nodiscard]] const TimeSeriesConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Column {
    WindowProbe probe;
    bool delta = false;   ///< record probe() - last instead of probe()
    double last = 0.0;    ///< previous cumulative sample (delta columns)
  };

  void add_column(std::string name, WindowProbe probe, bool delta);

  TimeSeriesConfig config_;
  std::vector<Column> columns_;
  std::vector<std::function<void()>> close_hooks_;
  TimeSeries series_;
  Milliseconds last_close_{0.0};
};

}  // namespace spacecdn::obs
