// Metrics registry: named counters, gauges, and label-set histograms, with
// Prometheus-text and JSON exporters.
//
// The registry is the aggregation side of the telemetry subsystem (traces
// are the per-request side; see obs/trace.hpp).  Instrumented code resolves
// a metric by (name, label set) and bumps it; exporters walk the registry in
// deterministic (name, labels) order so diffing two runs' dumps is
// meaningful.  Histograms reuse the des statistics containers: an
// OnlineSummary for the moments plus a fixed-bin des::Histogram for the
// bucketed export.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "des/stats.hpp"

namespace spacecdn::obs {

/// Sorted (key, value) pairs identifying one stream of a metric family.
/// Construction sorts by key, so {{"b","1"},{"a","2"}} and the reverse are
/// the same stream.
class LabelSet {
 public:
  LabelSet() = default;
  LabelSet(std::initializer_list<std::pair<std::string, std::string>> labels);
  explicit LabelSet(std::vector<std::pair<std::string, std::string>> labels);

  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& pairs()
      const noexcept {
    return labels_;
  }

  /// Prometheus form: `{key="value",...}`, or "" when empty.
  [[nodiscard]] std::string prometheus() const;

  friend bool operator<(const LabelSet& a, const LabelSet& b) {
    return a.labels_ < b.labels_;
  }
  friend bool operator==(const LabelSet& a, const LabelSet& b) {
    return a.labels_ == b.labels_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> labels_;
};

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time value (may go up or down).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double delta) noexcept { value_ += delta; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Mergeable sharded counter: per-shard slots padded to a cache line so
/// future parallel workers can bump disjoint shards without false sharing,
/// then merge() partial registries into a master.  Single-threaded code can
/// treat it as a plain counter via add(shard = anything).
class ShardedCounter {
 public:
  static constexpr std::size_t kDefaultShards = 16;

  explicit ShardedCounter(std::size_t shards = kDefaultShards);

  void add(std::size_t shard, std::uint64_t n = 1) noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept;
  [[nodiscard]] std::size_t shards() const noexcept { return slots_.size(); }
  [[nodiscard]] std::uint64_t shard_value(std::size_t shard) const;

  /// Slot-wise accumulation; grows to the larger shard count.
  void merge(const ShardedCounter& other);

 private:
  struct alignas(64) Slot {
    std::uint64_t value = 0;
  };
  std::vector<Slot> slots_;
};

/// Distribution metric: Welford moments plus fixed bins for bucketed export.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins);

  void observe(double x) noexcept;

  [[nodiscard]] const des::OnlineSummary& summary() const noexcept { return summary_; }
  [[nodiscard]] const des::Histogram& bins() const noexcept { return bins_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return summary_.count(); }
  [[nodiscard]] double sum() const noexcept {
    return summary_.mean() * static_cast<double>(summary_.count());
  }

 private:
  des::OnlineSummary summary_;
  des::Histogram bins_;
};

/// Default bucket layout for histograms created without an explicit range
/// (latencies in milliseconds: 0..10 s in 100 ms bins).
struct HistogramOptions {
  double lo = 0.0;
  double hi = 10'000.0;
  std::size_t bins = 100;
};

/// Named metric store.  Lookup lazily creates; names follow the Prometheus
/// convention (`spacecdn_fetch_total`).  Not thread-safe by design -- the
/// sharded counter plus merge() is the intended path to parallel use.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name, const LabelSet& labels = {});
  [[nodiscard]] Gauge& gauge(const std::string& name, const LabelSet& labels = {});
  /// `options` applies only when the (name) family is first created.
  [[nodiscard]] HistogramMetric& histogram(const std::string& name,
                                           const LabelSet& labels = {},
                                           const HistogramOptions& options = {});
  [[nodiscard]] ShardedCounter& sharded_counter(
      const std::string& name, std::size_t shards = ShardedCounter::kDefaultShards);

  /// Value of an existing counter stream, or 0 when absent (test helper).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name,
                                            const LabelSet& labels = {}) const;

  /// Registers the `# HELP` text of one metric family (any kind).  The
  /// exposition escapes `\` and newlines per the Prometheus text format.
  void set_help(const std::string& name, std::string text);
  /// Registered help text, or "" when none (test helper).
  [[nodiscard]] const std::string& help(const std::string& name) const;

  /// Folds every stream of `other` into this registry (counters add, gauges
  /// take `other`'s value, histograms are re-observed bucket-wise, sharded
  /// counters merge slot-wise).  The merge path for future parallel runs.
  void merge(const MetricsRegistry& other);

  /// Prometheus text exposition format (sorted by name, then labels).
  void export_prometheus(std::ostream& os) const;
  /// One JSON object: {"counters":[...],"gauges":[...],"histograms":[...]}.
  void export_json(std::ostream& os) const;

  void clear();
  [[nodiscard]] std::size_t family_count() const noexcept;

  /// Identity of the registry's current contents: process-unique at
  /// construction, refreshed by clear().  Cached-handle fast paths
  /// (obs::CounterHandle) compare this to detect a stale binding even when a
  /// new registry reuses a freed one's address.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  static std::uint64_t next_epoch() noexcept;

  std::uint64_t epoch_ = next_epoch();
  template <typename T>
  using Family = std::map<LabelSet, T>;

  std::map<std::string, Family<Counter>> counters_;
  std::map<std::string, Family<Gauge>> gauges_;
  std::map<std::string, Family<HistogramMetric>> histograms_;
  std::map<std::string, HistogramOptions> histogram_options_;
  std::map<std::string, ShardedCounter> sharded_;
  std::map<std::string, std::string> help_;
};

}  // namespace spacecdn::obs
