#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <ostream>

#include "util/error.hpp"

namespace spacecdn::obs {

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : ring_(std::max<std::size_t>(config.capacity, 1)) {}

void FlightRecorder::push(Trace trace) {
  const Milliseconds at = trace.at;
  ring_[head_] = FlightEntry{pushed_, at, std::move(trace)};
  head_ = (head_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
  ++pushed_;
}

std::vector<FlightEntry> FlightRecorder::entries() const {
  std::vector<FlightEntry> out;
  out.reserve(size_);
  // Oldest element sits at head_ once the ring has wrapped.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<Trace> FlightRecorder::snapshot() const {
  std::vector<Trace> out;
  out.reserve(size_);
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()].trace);
  }
  return out;
}

void FlightRecorder::trip(std::string_view reason, Milliseconds at) {
  ++trips_;
  last_reason_.assign(reason);
  if (dump_ == nullptr) return;
  *dump_ << "# flight-recorder trip: " << reason << " at " << at.value()
         << " ms (" << size_ << " traces retained";
  if (size_ > 0) {
    *dump_ << ", seq " << pushed_ - size_ << ".." << pushed_ - 1;
  }
  *dump_ << ")\n";
  for (const FlightEntry& entry : entries()) {
    write_jsonl(*dump_, entry.trace);
    *dump_ << "\n";
  }
}

void FlightRecorder::clear() noexcept {
  size_ = 0;
  head_ = 0;
}

}  // namespace spacecdn::obs
