#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace spacecdn::obs {

SloTracker::SloTracker(SloConfig config) : config_(config) {
  SPACECDN_EXPECT(config_.bucket.value() > 0.0,
                  "slo tracker: bucket width must be positive");
  SPACECDN_EXPECT(config_.objective > 0.0 && config_.objective < 1.0,
                  "slo tracker: objective must be in (0, 1)");
  SPACECDN_EXPECT(config_.burn_threshold > 0.0,
                  "slo tracker: burn threshold must be positive");
}

void SloTracker::roll_to(Milliseconds now) {
  const auto index =
      static_cast<std::size_t>(std::floor(now.value() / config_.bucket.value()));
  if (index >= buckets_.size()) buckets_.resize(index + 1);
}

void SloTracker::record(Milliseconds now, bool good) {
  roll_to(now);
  const auto index =
      static_cast<std::size_t>(std::floor(now.value() / config_.bucket.value()));
  if (good) {
    ++buckets_[index].good;
    ++total_good_;
  } else {
    ++buckets_[index].bad;
    ++total_bad_;
  }
}

double SloTracker::burn_rate(Milliseconds now, Milliseconds window) const {
  const double width = config_.bucket.value();
  // Trailing window at bucket granularity: the `span` buckets ending at the
  // bucket boundary at-or-before `now` (evaluations run on boundaries).
  const auto end = static_cast<std::size_t>(std::ceil(now.value() / width));
  const auto span = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(window.value() / width)));
  const std::size_t begin = end > span ? end - span : 0;
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  for (std::size_t b = begin; b < end && b < buckets_.size(); ++b) {
    good += buckets_[b].good;
    bad += buckets_[b].bad;
  }
  const std::uint64_t total = good + bad;
  if (total == 0) return 0.0;
  const double error_rate = static_cast<double>(bad) / static_cast<double>(total);
  return error_rate / error_budget();
}

void SloTracker::evaluate(Milliseconds now) {
  roll_to(now);
  const double short_burn = burn_rate(now, config_.short_window);
  const double long_burn = burn_rate(now, config_.long_window);
  const bool should_fire = short_burn >= config_.burn_threshold &&
                           long_burn >= config_.burn_threshold;
  if (should_fire == firing_) return;
  firing_ = should_fire;
  if (should_fire) ++fired_;
  alerts_.push_back(SloAlert{now, should_fire, short_burn, long_burn});
  if (hook_) hook_(alerts_.back());
}

void SloTracker::install(des::Simulator& sim, Milliseconds horizon) {
  const double width = config_.bucket.value();
  auto k =
      static_cast<std::uint64_t>(std::floor(sim.now().value() / width)) + 1;
  for (double t = static_cast<double>(k) * width; t < horizon.value();
       t = static_cast<double>(++k) * width) {
    if (t <= sim.now().value()) continue;
    sim.schedule_at(Milliseconds{t}, [this, t] { evaluate(Milliseconds{t}); });
  }
  if (horizon > sim.now()) {
    sim.schedule_at(horizon, [this, horizon] { evaluate(horizon); });
  }
}

double SloTracker::budget_consumed() const noexcept {
  const std::uint64_t total = total_good_ + total_bad_;
  if (total == 0) return 0.0;
  const double error_rate =
      static_cast<double>(total_bad_) / static_cast<double>(total);
  return error_rate / error_budget();
}

}  // namespace spacecdn::obs
