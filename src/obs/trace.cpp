#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/flight_recorder.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace spacecdn::obs {

namespace {

std::string escape_json(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string format_ms(double v) {
  if (!std::isfinite(v)) v = 0.0;
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

// ------------------------------------------------------------------- Trace

Milliseconds Trace::children_total() const noexcept {
  Milliseconds sum{0.0};
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].parent == 0) sum += spans[i].duration;
  }
  return sum;
}

std::uint32_t Trace::depth(std::uint32_t index) const noexcept {
  std::uint32_t d = 0;
  while (index < spans.size() && spans[index].parent != kNoParent) {
    index = spans[index].parent;
    ++d;
  }
  return d;
}

// ------------------------------------------------------------ TraceBuilder

TraceBuilder::TraceBuilder(std::string name, Milliseconds at) {
  trace_.name = std::move(name);
  trace_.at = at;
  trace_.spans.push_back(TraceSpan{trace_.name, kNoParent, Milliseconds{0.0},
                                   Milliseconds{0.0}, {}, {}});
}

std::uint32_t TraceBuilder::open(std::string name, std::uint32_t parent) {
  const std::uint32_t resolved = parent == kNoParent ? 0 : parent;
  SPACECDN_EXPECT(resolved < trace_.spans.size(), "trace span parent out of range");
  trace_.spans.push_back(TraceSpan{std::move(name), resolved, Milliseconds{0.0},
                                   Milliseconds{0.0}, {}, {}});
  return static_cast<std::uint32_t>(trace_.spans.size() - 1);
}

void TraceBuilder::set_start(std::uint32_t span, Milliseconds start) {
  SPACECDN_EXPECT(span < trace_.spans.size(), "trace span index out of range");
  trace_.spans[span].start = start;
}

void TraceBuilder::set_duration(std::uint32_t span, Milliseconds duration) {
  SPACECDN_EXPECT(span < trace_.spans.size(), "trace span index out of range");
  trace_.spans[span].duration = duration;
}

void TraceBuilder::attr(std::uint32_t span, std::string key, std::string value) {
  SPACECDN_EXPECT(span < trace_.spans.size(), "trace span index out of range");
  trace_.spans[span].attrs.emplace_back(std::move(key), std::move(value));
}

void TraceBuilder::metric(std::uint32_t span, std::string key, double value) {
  SPACECDN_EXPECT(span < trace_.spans.size(), "trace span index out of range");
  trace_.spans[span].metrics.emplace_back(std::move(key), value);
}

Trace TraceBuilder::finish(bool failed) {
  trace_.failed = failed;
  return std::move(trace_);
}

// ------------------------------------------------------------------ Tracer

void Tracer::set_retain(std::size_t n) {
  retain_ = n;
  if (retained_.size() > retain_) {
    retained_.erase(retained_.begin(),
                    retained_.begin() + static_cast<std::ptrdiff_t>(retained_.size() - retain_));
  }
}

void Tracer::record(Trace trace) {
  trace.id = next_id_++;
  ++recorded_;
  if (jsonl_ != nullptr) {
    write_jsonl(*jsonl_, trace);
    *jsonl_ << "\n";
  }
  if (recorder_ != nullptr) recorder_->push(trace);
  if (retain_ > 0) {
    if (retained_.size() == retain_) retained_.erase(retained_.begin());
    retained_.push_back(std::move(trace));
  }
}

const Trace& Tracer::last() const {
  SPACECDN_EXPECT(!retained_.empty(), "no retained traces (set_retain first)");
  return retained_.back();
}

// ------------------------------------------------------------------- JSONL

void write_jsonl(std::ostream& os, const Trace& trace) {
  os << "{\"trace_id\":" << trace.id << ",\"name\":\"" << escape_json(trace.name)
     << "\",\"at_ms\":" << format_ms(trace.at.value())
     << ",\"failed\":" << (trace.failed ? "true" : "false")
     << ",\"total_ms\":" << format_ms(trace.total().value()) << ",\"spans\":[";
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const TraceSpan& span = trace.spans[i];
    if (i != 0) os << ",";
    os << "{\"name\":\"" << escape_json(span.name) << "\",\"parent\":";
    if (span.parent == kNoParent) {
      os << -1;
    } else {
      os << span.parent;
    }
    os << ",\"start_ms\":" << format_ms(span.start.value())
       << ",\"duration_ms\":" << format_ms(span.duration.value());
    if (!span.attrs.empty()) {
      os << ",\"attrs\":{";
      for (std::size_t a = 0; a < span.attrs.size(); ++a) {
        if (a != 0) os << ",";
        os << "\"" << escape_json(span.attrs[a].first) << "\":\""
           << escape_json(span.attrs[a].second) << "\"";
      }
      os << "}";
    }
    if (!span.metrics.empty()) {
      os << ",\"metrics\":{";
      for (std::size_t m = 0; m < span.metrics.size(); ++m) {
        if (m != 0) os << ",";
        os << "\"" << escape_json(span.metrics[m].first)
           << "\":" << format_ms(span.metrics[m].second);
      }
      os << "}";
    }
    os << "}";
  }
  os << "]}";
}

// --------------------------------------------------------------- waterfall

void render_waterfall(std::ostream& os, const Trace& trace, int width) {
  os << "trace " << trace.name << " @ " << ConsoleTable::format_fixed(trace.at.value(), 1)
     << " ms, total " << ConsoleTable::format_fixed(trace.total().value(), 2) << " ms"
     << (trace.failed ? "  [FAILED]" : "") << "\n";
  const double total = std::max(trace.total().value(), 1e-9);
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const TraceSpan& span = trace.spans[i];
    std::string label;
    for (std::uint32_t d = 0; d < trace.depth(static_cast<std::uint32_t>(i)); ++d) {
      label += "  ";
    }
    label += span.name;
    for (const auto& [k, v] : span.attrs) label += " " + k + "=" + v;
    // Fixed label column, then the time bar: offset spaces, then '#'.
    constexpr std::size_t kLabelWidth = 44;
    if (label.size() < kLabelWidth) label.resize(kLabelWidth, ' ');
    const double frac_start =
        std::clamp(span.start.value() / total, 0.0, 1.0);
    const double frac_len = std::clamp(span.duration.value() / total, 0.0, 1.0);
    const int offset = static_cast<int>(std::lround(frac_start * width));
    int len = static_cast<int>(std::lround(frac_len * width));
    if (span.duration.value() > 0.0 && len == 0) len = 1;
    std::string bar(static_cast<std::size_t>(offset), ' ');
    bar += std::string(static_cast<std::size_t>(std::min(len, width - offset)), '#');
    os << label << " |" << bar;
    for (std::size_t p = bar.size(); p < static_cast<std::size_t>(width); ++p) os << ' ';
    os << "| " << ConsoleTable::format_fixed(span.duration.value(), 2) << " ms\n";
  }
}

}  // namespace spacecdn::obs
