// Physical constants of the Earth and signal propagation media.
#pragma once

namespace spacecdn::geo {

/// Mean Earth radius in km (IUGG), used by the spherical-Earth model that the
/// constellation simulator operates on.
inline constexpr double kEarthRadiusKm = 6371.0;

/// WGS-84 ellipsoid semi-major axis (km) and flattening, used by the precise
/// geodetic <-> ECEF conversions.
inline constexpr double kWgs84SemiMajorKm = 6378.137;
inline constexpr double kWgs84Flattening = 1.0 / 298.257223563;

/// Earth rotation rate (rad/s), sidereal.
inline constexpr double kEarthRotationRadPerSec = 7.2921159e-5;

/// Standard gravitational parameter of the Earth, km^3/s^2.
inline constexpr double kEarthMuKm3PerS2 = 398600.4418;

/// Speed of light in vacuum, km/s.  Governs free-space radio and optical ISL
/// propagation.
inline constexpr double kSpeedOfLightKmPerSec = 299792.458;

/// Effective propagation speed in optical fiber (refractive index ~1.468).
inline constexpr double kFiberSpeedKmPerSec = kSpeedOfLightKmPerSec / 1.468;

inline constexpr double kPi = 3.14159265358979323846;

[[nodiscard]] constexpr double deg_to_rad(double deg) noexcept { return deg * kPi / 180.0; }
[[nodiscard]] constexpr double rad_to_deg(double rad) noexcept { return rad * 180.0 / kPi; }

}  // namespace spacecdn::geo
