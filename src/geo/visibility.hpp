// Ground-to-satellite visibility geometry: slant range, elevation angle and
// coverage footprints.  All on the spherical Earth model, matching the
// constellation simulator.
#pragma once

#include "geo/coordinates.hpp"
#include "util/units.hpp"

namespace spacecdn::geo {

/// Line-of-sight distance from a ground point to a satellite position.
[[nodiscard]] Kilometers slant_range(const GeoPoint& ground, const Ecef& satellite) noexcept;

/// Elevation angle (degrees above the local horizon) of `satellite` as seen
/// from `ground`.  Negative when the satellite is below the horizon.
[[nodiscard]] double elevation_angle_deg(const GeoPoint& ground,
                                         const Ecef& satellite) noexcept;

/// Elevation angle with the ground point already converted to spherical ECEF.
/// Bit-identical to the GeoPoint overload (same math after the conversion);
/// lets hot loops amortise `to_ecef_spherical` across many satellites.
[[nodiscard]] double elevation_angle_deg(const Ecef& ground_ecef,
                                         const Ecef& satellite) noexcept;

/// True when the satellite is at or above `min_elevation_deg` from `ground`.
/// Starlink user terminals require ~25 degrees; gateways ~10.
[[nodiscard]] bool is_visible(const GeoPoint& ground, const Ecef& satellite,
                              double min_elevation_deg) noexcept;

/// is_visible with a pre-converted spherical-ECEF ground point.
[[nodiscard]] bool is_visible(const Ecef& ground_ecef, const Ecef& satellite,
                              double min_elevation_deg) noexcept;

/// Radius (along the Earth's surface) of the coverage disc of a satellite at
/// `altitude`, for terminals requiring `min_elevation_deg`.
[[nodiscard]] Kilometers coverage_radius(Kilometers altitude,
                                         double min_elevation_deg) noexcept;

/// The same coverage footprint expressed as the Earth-central angle psi in
/// degrees (the quantity spatial-grid visibility queries bucket by).
[[nodiscard]] double coverage_central_angle_deg(Kilometers altitude,
                                                double min_elevation_deg) noexcept;

/// Slant range to a satellite at `altitude` seen at elevation
/// `elevation_deg`; the classic law-of-cosines relation.
[[nodiscard]] Kilometers slant_range_at_elevation(Kilometers altitude,
                                                  double elevation_deg) noexcept;

}  // namespace spacecdn::geo
