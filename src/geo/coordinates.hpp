// Geodetic and Cartesian coordinate types with conversions.
//
// Two Earth models coexist:
//  * a spherical model (mean radius) used by the constellation simulator,
//    where orbits are circles around the Earth's centre; and
//  * the WGS-84 ellipsoid for precise geodetic <-> ECEF conversions, used
//    when comparing against real-world site coordinates.
#pragma once

#include <iosfwd>

#include "geo/earth.hpp"
#include "util/units.hpp"

namespace spacecdn::geo {

/// A point given by geodetic latitude/longitude (degrees) and altitude above
/// the surface (km).  Invariant: lat in [-90, 90], lon in [-180, 180].
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
  double alt_km = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Earth-centred Earth-fixed Cartesian coordinates in km.
struct Ecef {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend bool operator==(const Ecef&, const Ecef&) = default;
};

/// Validates and normalises a GeoPoint: clamps latitude into [-90, 90] is NOT
/// done silently -- out-of-range latitude throws; longitude is wrapped into
/// [-180, 180).
[[nodiscard]] GeoPoint normalized(GeoPoint p);

/// Euclidean norm of an ECEF vector (km).
[[nodiscard]] Kilometers norm(const Ecef& v) noexcept;

/// Straight-line (chord) distance between two ECEF points (km).
[[nodiscard]] Kilometers euclidean_distance(const Ecef& a, const Ecef& b) noexcept;

/// Spherical-Earth conversion: geodetic -> ECEF with radius R + alt.
[[nodiscard]] Ecef to_ecef_spherical(const GeoPoint& p) noexcept;

/// Spherical-Earth inverse conversion.
[[nodiscard]] GeoPoint to_geodetic_spherical(const Ecef& v) noexcept;

/// WGS-84 geodetic -> ECEF.
[[nodiscard]] Ecef to_ecef_wgs84(const GeoPoint& p) noexcept;

/// WGS-84 ECEF -> geodetic using Bowring's method (sub-millimetre for
/// near-Earth points).
[[nodiscard]] GeoPoint to_geodetic_wgs84(const Ecef& v) noexcept;

std::ostream& operator<<(std::ostream& os, const GeoPoint& p);
std::ostream& operator<<(std::ostream& os, const Ecef& v);

}  // namespace spacecdn::geo
