// Great-circle geometry on the spherical Earth.
#pragma once

#include "geo/coordinates.hpp"
#include "util/units.hpp"

namespace spacecdn::geo {

/// Central angle between two surface points (radians), haversine formula.
/// Altitudes are ignored; only the direction matters.
[[nodiscard]] double central_angle_rad(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Great-circle (surface) distance between two points, spherical Earth.
[[nodiscard]] Kilometers great_circle_distance(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Initial bearing from `a` towards `b`, degrees clockwise from north in
/// [0, 360).
[[nodiscard]] double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Destination point after travelling `distance` from `origin` along
/// `bearing_deg` on a great circle.  Altitude of the origin is preserved.
[[nodiscard]] GeoPoint destination(const GeoPoint& origin, double bearing_deg,
                                   Kilometers distance) noexcept;

/// Point a fraction f in [0,1] of the way along the great circle a -> b
/// (spherical linear interpolation of the surface track).
[[nodiscard]] GeoPoint intermediate_point(const GeoPoint& a, const GeoPoint& b,
                                          double f) noexcept;

}  // namespace spacecdn::geo
