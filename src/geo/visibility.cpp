#include "geo/visibility.hpp"

#include <algorithm>
#include <cmath>

namespace spacecdn::geo {

Kilometers slant_range(const GeoPoint& ground, const Ecef& satellite) noexcept {
  return euclidean_distance(to_ecef_spherical(ground), satellite);
}

double elevation_angle_deg(const GeoPoint& ground, const Ecef& satellite) noexcept {
  return elevation_angle_deg(to_ecef_spherical(ground), satellite);
}

double elevation_angle_deg(const Ecef& g, const Ecef& satellite) noexcept {
  const Ecef los{satellite.x - g.x, satellite.y - g.y, satellite.z - g.z};
  const double range = norm(los).value();
  if (range < 1e-9) return 90.0;
  const double g_norm = norm(g).value();
  // Elevation = angle between the line of sight and the local horizontal
  // plane = 90 deg - angle(los, local up); local up is g / |g| on a sphere.
  const double dot = (los.x * g.x + los.y * g.y + los.z * g.z) / (range * g_norm);
  return rad_to_deg(std::asin(std::clamp(dot, -1.0, 1.0)));
}

bool is_visible(const GeoPoint& ground, const Ecef& satellite,
                double min_elevation_deg) noexcept {
  return elevation_angle_deg(ground, satellite) >= min_elevation_deg;
}

bool is_visible(const Ecef& ground_ecef, const Ecef& satellite,
                double min_elevation_deg) noexcept {
  return elevation_angle_deg(ground_ecef, satellite) >= min_elevation_deg;
}

Kilometers coverage_radius(Kilometers altitude, double min_elevation_deg) noexcept {
  // Geometry: with Earth radius R, orbit radius r = R + h and elevation e,
  // the Earth-central angle to the edge of coverage is
  //   psi = acos(R cos e / r) - e.
  const double r = kEarthRadiusKm + altitude.value();
  const double e = deg_to_rad(min_elevation_deg);
  const double psi = std::acos(std::clamp(kEarthRadiusKm * std::cos(e) / r, -1.0, 1.0)) - e;
  return Kilometers{kEarthRadiusKm * std::max(0.0, psi)};
}

double coverage_central_angle_deg(Kilometers altitude, double min_elevation_deg) noexcept {
  return rad_to_deg(coverage_radius(altitude, min_elevation_deg).value() / kEarthRadiusKm);
}

Kilometers slant_range_at_elevation(Kilometers altitude, double elevation_deg) noexcept {
  const double r = kEarthRadiusKm + altitude.value();
  const double e = deg_to_rad(elevation_deg);
  // Law of cosines in the Earth-centre / ground / satellite triangle:
  //   d = sqrt(r^2 - R^2 cos^2 e) - R sin e.
  const double cos_e = std::cos(e);
  const double d =
      std::sqrt(std::max(0.0, r * r - kEarthRadiusKm * kEarthRadiusKm * cos_e * cos_e)) -
      kEarthRadiusKm * std::sin(e);
  return Kilometers{d};
}

}  // namespace spacecdn::geo
