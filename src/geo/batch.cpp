#include "geo/batch.hpp"

#include <algorithm>
#include <cmath>

#include "geo/earth.hpp"
#include "util/error.hpp"

namespace spacecdn::geo {

namespace {

// Pass 1 of the elevation kernel: the clamped sine of the elevation angle,
// or the sentinel for the degenerate ground==satellite case.  Everything
// here is mul/add/div/sqrt/min/max -- the autovectorizable part.
// 2.0 is outside clamp's [-1, 1] range, so it is unambiguous.
constexpr double kDegenerate = 2.0;

inline double elevation_sine(const Ecef& g, double g_norm, double sx, double sy,
                             double sz) noexcept {
  // Identical expression sequence to elevation_angle_deg(): los, |los|,
  // dot / (|los| |g|), clamp.  Do not reorder or reassociate.
  const double dx = sx - g.x;
  const double dy = sy - g.y;
  const double dz = sz - g.z;
  const double range = std::sqrt(dx * dx + dy * dy + dz * dz);
  if (range < 1e-9) return kDegenerate;
  const double dot = (dx * g.x + dy * g.y + dz * g.z) / (range * g_norm);
  return std::clamp(dot, -1.0, 1.0);
}

// Pass 2: the scalar-libm tail shared by both elevation entry points.
inline void sines_to_degrees(std::span<double> out) noexcept {
  for (double& v : out) {
    v = v > 1.5 ? 90.0 : rad_to_deg(std::asin(v));
  }
}

}  // namespace

void elevation_angles_deg(const Ecef& ground, std::span<const double> xs,
                          std::span<const double> ys, std::span<const double> zs,
                          std::span<double> out) noexcept {
  const std::size_t n = out.size();
  // g_norm is loop-invariant in the scalar path too (same call, same
  // argument), so hoisting it cannot change any element's result.
  const double g_norm = norm(ground).value();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = elevation_sine(ground, g_norm, xs[i], ys[i], zs[i]);
  }
  sines_to_degrees(out);
}

void elevation_angles_deg(const Ecef& ground, std::span<const double> xs,
                          std::span<const double> ys, std::span<const double> zs,
                          std::span<const std::uint32_t> ids,
                          std::span<double> out) noexcept {
  const std::size_t n = out.size();
  const double g_norm = norm(ground).value();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t id = ids[i];
    out[i] = elevation_sine(ground, g_norm, xs[id], ys[id], zs[id]);
  }
  sines_to_degrees(out);
}

void slant_ranges_km(const Ecef& ground, std::span<const double> xs,
                     std::span<const double> ys, std::span<const double> zs,
                     std::span<double> out) noexcept {
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Same expression as euclidean_distance(): difference then sum of
    // squares then sqrt.
    const double dx = ground.x - xs[i];
    const double dy = ground.y - ys[i];
    const double dz = ground.z - zs[i];
    out[i] = std::sqrt(dx * dx + dy * dy + dz * dz);
  }
}

}  // namespace spacecdn::geo
