// Propagation-delay helpers: distance -> one-way delay per medium.
#pragma once

#include "geo/earth.hpp"
#include "util/units.hpp"

namespace spacecdn::geo {

/// Transmission medium of a link; determines propagation speed.
enum class Medium {
  kVacuum,  ///< free-space radio or optical ISL
  kFiber,   ///< terrestrial optical fiber
};

/// Propagation speed for a medium, km/s.
[[nodiscard]] constexpr double propagation_speed_km_per_sec(Medium m) noexcept {
  switch (m) {
    case Medium::kVacuum:
      return kSpeedOfLightKmPerSec;
    case Medium::kFiber:
      return kFiberSpeedKmPerSec;
  }
  return kSpeedOfLightKmPerSec;  // unreachable; keeps -Wreturn-type quiet
}

/// One-way propagation delay over `distance` through medium `m`.
[[nodiscard]] constexpr Milliseconds propagation_delay(Kilometers distance,
                                                       Medium m) noexcept {
  return Milliseconds{distance.value() / propagation_speed_km_per_sec(m) * 1000.0};
}

}  // namespace spacecdn::geo
