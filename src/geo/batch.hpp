// Batched visibility geometry over struct-of-arrays satellite positions.
//
// The per-satellite scalar functions in geo/visibility.hpp are the checked
// references; these kernels compute the *same per-element expression
// sequence* over whole position arrays so the compiler can keep the
// mul/add/div/sqrt/clamp portion in vector registers (the trailing asin is a
// libm call and stays scalar).  Bit-identity with the scalar path is a hard
// contract -- serving-satellite selection breaks exact elevation ties by id,
// and a one-ulp drift could flip a tie and with it a committed run checksum
// -- so the kernels hoist only values that are loop-invariant anyway (the
// ground norm) and never reassociate the per-element arithmetic.
#pragma once

#include <cstdint>
#include <span>

#include "geo/coordinates.hpp"

namespace spacecdn::geo {

/// Elevation angles (degrees) of satellites (xs[i], ys[i], zs[i]) as seen
/// from the spherical-ECEF ground point `ground`.  out[i] is bit-identical
/// to elevation_angle_deg(ground, Ecef{xs[i], ys[i], zs[i]}).
/// All spans must have equal length.
void elevation_angles_deg(const Ecef& ground, std::span<const double> xs,
                          std::span<const double> ys, std::span<const double> zs,
                          std::span<double> out) noexcept;

/// Gathered variant: satellite `ids[i]` out of the SoA arrays, for spatial-
/// index candidate lists.  out[i] is bit-identical to
/// elevation_angle_deg(ground, Ecef{xs[ids[i]], ...}).
void elevation_angles_deg(const Ecef& ground, std::span<const double> xs,
                          std::span<const double> ys, std::span<const double> zs,
                          std::span<const std::uint32_t> ids,
                          std::span<double> out) noexcept;

/// Slant ranges (km) from `ground` to every satellite; out[i] is
/// bit-identical to euclidean_distance(ground, Ecef{xs[i], ys[i], zs[i]}).
void slant_ranges_km(const Ecef& ground, std::span<const double> xs,
                     std::span<const double> ys, std::span<const double> zs,
                     std::span<double> out) noexcept;

}  // namespace spacecdn::geo
