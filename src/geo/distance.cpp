#include "geo/distance.hpp"

#include <algorithm>
#include <cmath>

namespace spacecdn::geo {

double central_angle_rad(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * std::asin(std::min(1.0, std::sqrt(h)));
}

Kilometers great_circle_distance(const GeoPoint& a, const GeoPoint& b) noexcept {
  return Kilometers{kEarthRadiusKm * central_angle_rad(a, b)};
}

double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x =
      std::cos(lat1) * std::sin(lat2) - std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  double bearing = rad_to_deg(std::atan2(y, x));
  if (bearing < 0) bearing += 360.0;
  return bearing;
}

GeoPoint destination(const GeoPoint& origin, double bearing_deg,
                     Kilometers distance) noexcept {
  const double delta = distance.value() / kEarthRadiusKm;  // angular distance
  const double theta = deg_to_rad(bearing_deg);
  const double lat1 = deg_to_rad(origin.lat_deg);
  const double lon1 = deg_to_rad(origin.lon_deg);

  const double sin_lat2 = std::sin(lat1) * std::cos(delta) +
                          std::cos(lat1) * std::sin(delta) * std::cos(theta);
  const double lat2 = std::asin(std::clamp(sin_lat2, -1.0, 1.0));
  const double y = std::sin(theta) * std::sin(delta) * std::cos(lat1);
  const double x = std::cos(delta) - std::sin(lat1) * sin_lat2;
  const double lon2 = lon1 + std::atan2(y, x);

  GeoPoint out{rad_to_deg(lat2), rad_to_deg(lon2), origin.alt_km};
  // Wrap longitude into [-180, 180).
  out.lon_deg = std::fmod(out.lon_deg + 540.0, 360.0) - 180.0;
  return out;
}

GeoPoint intermediate_point(const GeoPoint& a, const GeoPoint& b, double f) noexcept {
  const double delta = central_angle_rad(a, b);
  if (delta < 1e-12) return a;
  const double sin_delta = std::sin(delta);
  const double ka = std::sin((1.0 - f) * delta) / sin_delta;
  const double kb = std::sin(f * delta) / sin_delta;

  const double lat1 = deg_to_rad(a.lat_deg), lon1 = deg_to_rad(a.lon_deg);
  const double lat2 = deg_to_rad(b.lat_deg), lon2 = deg_to_rad(b.lon_deg);
  const double x =
      ka * std::cos(lat1) * std::cos(lon1) + kb * std::cos(lat2) * std::cos(lon2);
  const double y =
      ka * std::cos(lat1) * std::sin(lon1) + kb * std::cos(lat2) * std::sin(lon2);
  const double z = ka * std::sin(lat1) + kb * std::sin(lat2);

  const double lat = std::atan2(z, std::sqrt(x * x + y * y));
  const double lon = std::atan2(y, x);
  const double alt = a.alt_km + f * (b.alt_km - a.alt_km);
  return GeoPoint{rad_to_deg(lat), rad_to_deg(lon), alt};
}

}  // namespace spacecdn::geo
