#include "geo/coordinates.hpp"

#include <cmath>
#include <ostream>

#include "util/error.hpp"

namespace spacecdn::geo {

GeoPoint normalized(GeoPoint p) {
  SPACECDN_EXPECT(p.lat_deg >= -90.0 && p.lat_deg <= 90.0,
                  "latitude must be within [-90, 90] degrees");
  // Wrap longitude into [-180, 180).
  double lon = std::fmod(p.lon_deg + 180.0, 360.0);
  if (lon < 0) lon += 360.0;
  p.lon_deg = lon - 180.0;
  return p;
}

Kilometers norm(const Ecef& v) noexcept {
  return Kilometers{std::sqrt(v.x * v.x + v.y * v.y + v.z * v.z)};
}

Kilometers euclidean_distance(const Ecef& a, const Ecef& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double dz = a.z - b.z;
  return Kilometers{std::sqrt(dx * dx + dy * dy + dz * dz)};
}

Ecef to_ecef_spherical(const GeoPoint& p) noexcept {
  const double lat = deg_to_rad(p.lat_deg);
  const double lon = deg_to_rad(p.lon_deg);
  const double r = kEarthRadiusKm + p.alt_km;
  return Ecef{r * std::cos(lat) * std::cos(lon), r * std::cos(lat) * std::sin(lon),
              r * std::sin(lat)};
}

GeoPoint to_geodetic_spherical(const Ecef& v) noexcept {
  const double r = norm(v).value();
  const double lat = std::asin(v.z / r);
  const double lon = std::atan2(v.y, v.x);
  return GeoPoint{rad_to_deg(lat), rad_to_deg(lon), r - kEarthRadiusKm};
}

Ecef to_ecef_wgs84(const GeoPoint& p) noexcept {
  const double a = kWgs84SemiMajorKm;
  const double f = kWgs84Flattening;
  const double e2 = f * (2.0 - f);  // first eccentricity squared
  const double lat = deg_to_rad(p.lat_deg);
  const double lon = deg_to_rad(p.lon_deg);
  const double sin_lat = std::sin(lat);
  // Prime vertical radius of curvature.
  const double n = a / std::sqrt(1.0 - e2 * sin_lat * sin_lat);
  const double h = p.alt_km;
  return Ecef{(n + h) * std::cos(lat) * std::cos(lon),
              (n + h) * std::cos(lat) * std::sin(lon),
              (n * (1.0 - e2) + h) * sin_lat};
}

GeoPoint to_geodetic_wgs84(const Ecef& v) noexcept {
  const double a = kWgs84SemiMajorKm;
  const double f = kWgs84Flattening;
  const double b = a * (1.0 - f);  // semi-minor axis
  const double e2 = f * (2.0 - f);
  const double ep2 = e2 / (1.0 - e2);  // second eccentricity squared

  const double p = std::sqrt(v.x * v.x + v.y * v.y);
  const double lon = std::atan2(v.y, v.x);

  if (p < 1e-9) {
    // Pole: latitude is +-90, height along the z axis.
    const double lat = v.z >= 0 ? 90.0 : -90.0;
    return GeoPoint{lat, 0.0, std::fabs(v.z) - b};
  }

  // Bowring's closed-form first guess, then one Newton-ish refinement; this
  // is accurate to < 1e-9 rad for |alt| < 10,000 km.
  const double theta = std::atan2(v.z * a, p * b);
  const double sin_t = std::sin(theta);
  const double cos_t = std::cos(theta);
  double lat = std::atan2(v.z + ep2 * b * sin_t * sin_t * sin_t,
                          p - e2 * a * cos_t * cos_t * cos_t);
  const double sin_lat = std::sin(lat);
  const double n = a / std::sqrt(1.0 - e2 * sin_lat * sin_lat);
  const double alt = p / std::cos(lat) - n;
  return GeoPoint{rad_to_deg(lat), rad_to_deg(lon), alt};
}

std::ostream& operator<<(std::ostream& os, const GeoPoint& p) {
  return os << "(" << p.lat_deg << ", " << p.lon_deg << ", " << p.alt_km << " km)";
}

std::ostream& operator<<(std::ostream& os, const Ecef& v) {
  return os << "[" << v.x << ", " << v.y << ", " << v.z << "]";
}

}  // namespace spacecdn::geo
