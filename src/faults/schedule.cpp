#include "faults/schedule.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/error.hpp"

namespace spacecdn::faults {

std::string_view to_string(Component component) noexcept {
  switch (component) {
    case Component::kSatellite: return "satellite";
    case Component::kIslTerminal: return "isl-terminal";
    case Component::kGroundStation: return "ground-station";
    case Component::kCacheNode: return "cache-node";
  }
  return "unknown";
}

double ChurnProcess::unavailability() const noexcept {
  if (!enabled()) return 0.0;
  const double total = mtbf.value() + mttr.value();
  return total <= 0.0 ? 0.0 : mttr.value() / total;
}

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events)
    : events_(std::move(events)) {}

namespace {

/// Draws one component instance's alternating up/down timeline.
void draw_timeline(Component component, std::uint32_t target, const ChurnProcess& process,
                   Milliseconds horizon, des::Rng& rng, std::vector<FaultEvent>& out) {
  double t = 0.0;
  while (true) {
    t += rng.exponential(process.mtbf.value());  // up interval
    if (t >= horizon.value()) return;
    out.push_back({Milliseconds{t}, component, Transition::kFail, target});
    t += rng.exponential(process.mttr.value());  // down interval
    if (t >= horizon.value()) return;  // repair outlasts the run: stays down
    out.push_back({Milliseconds{t}, component, Transition::kRecover, target});
  }
}

}  // namespace

FaultSchedule FaultSchedule::generate(const ChurnConfig& config,
                                      const ComponentCounts& counts, des::Rng& rng) {
  SPACECDN_EXPECT(config.horizon.value() > 0.0, "churn horizon must be positive");
  const std::pair<Component, const ChurnProcess*> classes[] = {
      {Component::kSatellite, &config.satellite},
      {Component::kIslTerminal, &config.laser_terminal},
      {Component::kGroundStation, &config.ground_station},
      {Component::kCacheNode, &config.cache_node},
  };
  std::vector<FaultEvent> events;
  for (const auto& [component, process] : classes) {
    if (!process->enabled()) continue;
    SPACECDN_EXPECT(process->mttr.value() > 0.0,
                    "an enabled churn process needs a positive MTTR");
    const std::uint32_t instances = component == Component::kGroundStation
                                        ? counts.ground_stations
                                        : counts.satellites;
    for (std::uint32_t target = 0; target < instances; ++target) {
      draw_timeline(component, target, *process, config.horizon, rng, events);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return FaultSchedule(std::move(events));
}

FaultSchedule FaultSchedule::from_trace(std::vector<FaultEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return FaultSchedule(std::move(events));
}

std::size_t FaultSchedule::count(Component component, Transition transition) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(), [&](const FaultEvent& e) {
        return e.component == component && e.transition == transition;
      }));
}

void FaultSchedule::install(des::Simulator& sim,
                            std::function<void(const FaultEvent&)> apply) const {
  // One shared handler; each event captures only its index.
  auto handler = std::make_shared<std::function<void(const FaultEvent&)>>(std::move(apply));
  for (const FaultEvent& event : events_) {
    sim.schedule_at(event.at, [handler, &event] { (*handler)(event); });
  }
}

}  // namespace spacecdn::faults
