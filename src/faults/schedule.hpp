// Dynamic fault injection: time-varying outage/recovery schedules.
//
// The paper's section 5 deployment challenges (thermal ceilings, duty-cycled
// caches, laser terminals failing routinely at constellation scale) describe
// a system under *continuous* churn, not a static set of dead satellites.
// This module generates fault timelines -- satellite outages, laser-terminal
// flaps, ground-station outages, cache-node crashes -- as alternating
// exponential up/down renewal processes (MTBF/MTTR) from a seeded RNG, or
// replays a scripted trace for deterministic tests.  The schedule is pure
// data; applying events to the network/fleet is the resilience layer's job
// (spacecdn/resilience).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "des/random.hpp"
#include "des/simulator.hpp"
#include "util/units.hpp"

namespace spacecdn::faults {

/// Which piece of infrastructure a fault event touches.
enum class Component : std::uint8_t {
  kSatellite,      ///< whole satellite offline: no serving, no ISLs, no cache
  kIslTerminal,    ///< laser terminals flap: ISLs drop, bus keeps serving
  kGroundStation,  ///< gateway offline: bent-pipe traffic must land elsewhere
  kCacheNode,      ///< cache process crashes: cached contents are lost
};

[[nodiscard]] std::string_view to_string(Component component) noexcept;

/// Whether the event takes the component down or brings it back.
enum class Transition : std::uint8_t { kFail, kRecover };

/// One scheduled state change of one component instance.
struct FaultEvent {
  Milliseconds at{0.0};
  Component component = Component::kSatellite;
  Transition transition = Transition::kFail;
  /// Satellite id, or gateway index for kGroundStation.
  std::uint32_t target = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Alternating-renewal churn parameters of one component class.  A process
/// with mtbf <= 0 is disabled (that class never fails).
struct ChurnProcess {
  /// Mean time between failures (mean of the exponential up-time).
  Milliseconds mtbf{0.0};
  /// Mean time to repair (mean of the exponential down-time).
  Milliseconds mttr{0.0};

  [[nodiscard]] bool enabled() const noexcept { return mtbf.value() > 0.0; }
  /// Long-run fraction of time the component is down: MTTR / (MTBF + MTTR).
  [[nodiscard]] double unavailability() const noexcept;
};

/// Fleet-wide churn configuration over a simulation horizon.
struct ChurnConfig {
  Milliseconds horizon{0.0};
  ChurnProcess satellite{};       ///< whole-satellite outages
  ChurnProcess laser_terminal{};  ///< ISL flaps (short MTTR typically)
  ChurnProcess ground_station{};
  ChurnProcess cache_node{};      ///< crashes that drop cached contents
};

/// How many instances of each component class exist.
struct ComponentCounts {
  std::uint32_t satellites = 0;
  std::uint32_t ground_stations = 0;
};

/// An immutable, time-sorted fault timeline.
///
/// Generation is deterministic: the same config, counts, and RNG seed always
/// produce the same schedule (component classes and instances are drawn in a
/// fixed order), so churn experiments are exactly reproducible.
class FaultSchedule {
 public:
  /// Draws alternating exponential up/down intervals for every instance of
  /// every enabled component class until `config.horizon`.  Every generated
  /// fail has a matching recover, possibly beyond the horizon (clamped out),
  /// so a truncated timeline never ends with a stuck-down component unless
  /// the repair genuinely outlasts the run.
  /// @throws spacecdn::ConfigError on a non-positive horizon or an enabled
  /// process with non-positive MTTR.
  [[nodiscard]] static FaultSchedule generate(const ChurnConfig& config,
                                              const ComponentCounts& counts,
                                              des::Rng& rng);

  /// Wraps a hand-written trace (deterministic tests, replayed incidents).
  /// Events are stably sorted by time; relative order of simultaneous events
  /// is preserved.
  [[nodiscard]] static FaultSchedule from_trace(std::vector<FaultEvent> events);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Number of events matching (component, transition).
  [[nodiscard]] std::size_t count(Component component, Transition transition) const;

  /// Schedules every event on `sim`, invoking `apply` at its timestamp.
  /// The schedule (whose events the callbacks reference) must outlive the
  /// simulation run.
  void install(des::Simulator& sim,
               std::function<void(const FaultEvent&)> apply) const;

 private:
  explicit FaultSchedule(std::vector<FaultEvent> events);

  std::vector<FaultEvent> events_;
};

}  // namespace spacecdn::faults
