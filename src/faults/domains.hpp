// Correlated fault domains: compound failures that hit many components at
// once.
//
// The renewal schedules in schedule.hpp model *independent* churn -- every
// laser terminal flips its own coin.  Real incidents are dominated by
// correlated events instead: a bad software rollout takes out an orbital
// plane, a hurricane floods every gateway in a region, a solar storm grounds
// a large slice of the constellation in one day.  A FaultDomain names the
// blast radius (the member components); correlated_trace / correlated_schedule
// turn scripted or seeded domain-wide events into ordinary FaultSchedules
// whose member events share a timestamp, so the des::Simulator applies them
// atomically.  merge_schedules composes a correlated timeline with the
// independent renewal background without double-recovering components both
// timelines touch.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "data/types.hpp"
#include "des/random.hpp"
#include "faults/schedule.hpp"
#include "geo/coordinates.hpp"
#include "orbit/walker.hpp"
#include "util/units.hpp"

namespace spacecdn::faults {

/// A named set of components that fail together.
struct FaultDomain {
  std::string name;
  /// Member components, in a deterministic build order (member_fraction
  /// subsets index into this list).
  std::vector<std::pair<Component, std::uint32_t>> members;

  [[nodiscard]] bool empty() const noexcept { return members.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return members.size(); }
};

/// Every satellite of one orbital plane (a plane-wide anomaly: bad firmware
/// rollout, debris-avoidance stand-down).
/// @throws spacecdn::ConfigError when `plane` is out of range.
[[nodiscard]] FaultDomain plane_domain(const orbit::WalkerConstellation& constellation,
                                       std::uint32_t plane);

/// Every gateway within `radius` of `center` (a regional disaster: hurricane,
/// grid failure, fiber cut at a shared teleport).  Members are gateway
/// indices into the provided list, i.e. GroundSegment order (the default
/// segment is data::ground_stations() in dataset order).
[[nodiscard]] FaultDomain gateway_region_domain(std::string name,
                                                std::span<const data::GroundStationInfo> gateways,
                                                const geo::GeoPoint& center,
                                                Kilometers radius);

/// The whole constellation (a solar-storm mass-failure day).
[[nodiscard]] FaultDomain constellation_domain(
    const orbit::WalkerConstellation& constellation);

/// One scripted domain-wide outage: at `at` a `member_fraction` subset of the
/// domain fails, recovering together at `at + duration`.
struct CorrelatedEvent {
  Milliseconds at{0.0};
  Milliseconds duration{0.0};
  /// Fraction of the domain hit (1.0 = everything).  Partial subsets are
  /// drawn without replacement from the domain's member list.
  double member_fraction = 1.0;
};

/// Expands scripted domain events into a FaultSchedule.  Member selection
/// for partial events draws from `rng`, so identical (domain, events, seed)
/// produce identical schedules.
/// @throws spacecdn::ConfigError on a negative duration or a fraction
/// outside [0, 1].
[[nodiscard]] FaultSchedule correlated_trace(const FaultDomain& domain,
                                             const std::vector<CorrelatedEvent>& events,
                                             des::Rng& rng);

/// Seeded recurring domain events: exponential inter-event gaps of mean
/// `mean_interval`, each outage lasting an exponential `mean_duration` and
/// hitting a fixed `member_fraction` subset (re-drawn per event).
struct CorrelatedProcess {
  /// Mean time between domain events; <= 0 disables the process.
  Milliseconds mean_interval{0.0};
  Milliseconds mean_duration{0.0};
  double member_fraction = 1.0;

  [[nodiscard]] bool enabled() const noexcept { return mean_interval.value() > 0.0; }
};

/// Draws a recurring correlated-event timeline over [0, horizon).
/// @throws spacecdn::ConfigError on a non-positive horizon or an enabled
/// process with a non-positive mean duration.
[[nodiscard]] FaultSchedule correlated_schedule(const FaultDomain& domain,
                                                const CorrelatedProcess& process,
                                                Milliseconds horizon, des::Rng& rng);

/// Merges several schedules into one consistent timeline.  Overlapping
/// outages of the same (component, target) -- e.g. a renewal failure inside
/// a correlated storm window -- are resolved by union depth: a kFail is
/// emitted when a component's outage depth rises 0 -> 1 and a kRecover when
/// it falls back to 0, so a component never "recovers" while another source
/// still holds it down.  Events keep their timestamps; simultaneous events
/// stay in input order (earlier schedules first).
[[nodiscard]] FaultSchedule merge_schedules(
    const std::vector<const FaultSchedule*>& schedules);

}  // namespace spacecdn::faults
