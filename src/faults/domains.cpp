#include "faults/domains.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>

#include "geo/distance.hpp"
#include "util/error.hpp"

namespace spacecdn::faults {

FaultDomain plane_domain(const orbit::WalkerConstellation& constellation,
                         std::uint32_t plane) {
  // `plane` is a global plane index (shell 0's planes first), so every plane
  // of a multi-shell constellation is addressable as a fault domain.
  SPACECDN_EXPECT(plane < constellation.plane_count(),
                  "plane domain: plane " + std::to_string(plane) + " out of range (" +
                      std::to_string(constellation.plane_count()) + " planes)");
  FaultDomain domain;
  domain.name = "plane-" + std::to_string(plane);
  const std::uint32_t slots = constellation.plane_size(plane);
  domain.members.reserve(slots);
  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    domain.members.emplace_back(Component::kSatellite, constellation.plane_sat(plane, slot));
  }
  return domain;
}

FaultDomain gateway_region_domain(std::string name,
                                  std::span<const data::GroundStationInfo> gateways,
                                  const geo::GeoPoint& center, Kilometers radius) {
  FaultDomain domain;
  domain.name = std::move(name);
  for (std::size_t i = 0; i < gateways.size(); ++i) {
    const geo::GeoPoint at{gateways[i].lat_deg, gateways[i].lon_deg, 0.0};
    if (geo::great_circle_distance(center, at) <= radius) {
      domain.members.emplace_back(Component::kGroundStation,
                                  static_cast<std::uint32_t>(i));
    }
  }
  return domain;
}

FaultDomain constellation_domain(const orbit::WalkerConstellation& constellation) {
  FaultDomain domain;
  domain.name = "constellation";
  domain.members.reserve(constellation.size());
  for (std::uint32_t sat = 0; sat < constellation.size(); ++sat) {
    domain.members.emplace_back(Component::kSatellite, sat);
  }
  return domain;
}

namespace {

/// Appends one domain-wide outage window: the selected members fail at
/// `at` and recover together at `at + duration` (a recovery beyond `clamp`
/// is dropped -- the outage outlasts the run, matching the renewal
/// generator's convention; pass an unbounded clamp for scripted traces).
void expand_event(const FaultDomain& domain, Milliseconds at, Milliseconds duration,
                  double fraction, Milliseconds clamp, des::Rng& rng,
                  std::vector<FaultEvent>& out) {
  SPACECDN_EXPECT(duration.value() >= 0.0,
                  "correlated event in '" + domain.name + "' has a negative duration");
  SPACECDN_EXPECT(fraction >= 0.0 && fraction <= 1.0,
                  "correlated event member fraction must be in [0, 1]");
  std::vector<std::uint32_t> selected;
  if (fraction >= 1.0) {
    selected.resize(domain.size());
    for (std::size_t i = 0; i < selected.size(); ++i) {
      selected[i] = static_cast<std::uint32_t>(i);
    }
  } else {
    const auto k = static_cast<std::uint32_t>(
        std::llround(fraction * static_cast<double>(domain.size())));
    selected = rng.sample_without_replacement(static_cast<std::uint32_t>(domain.size()), k);
    std::sort(selected.begin(), selected.end());
  }
  const Milliseconds recover_at = at + duration;
  for (const std::uint32_t i : selected) {
    const auto& [component, target] = domain.members[i];
    out.push_back({at, component, Transition::kFail, target});
  }
  if (recover_at >= clamp) return;  // outage outlasts the run: stays down
  for (const std::uint32_t i : selected) {
    const auto& [component, target] = domain.members[i];
    out.push_back({recover_at, component, Transition::kRecover, target});
  }
}

}  // namespace

FaultSchedule correlated_trace(const FaultDomain& domain,
                               const std::vector<CorrelatedEvent>& events,
                               des::Rng& rng) {
  std::vector<FaultEvent> out;
  for (const CorrelatedEvent& event : events) {
    expand_event(domain, event.at, event.duration, event.member_fraction,
                 Milliseconds{std::numeric_limits<double>::infinity()}, rng, out);
  }
  return FaultSchedule::from_trace(std::move(out));
}

FaultSchedule correlated_schedule(const FaultDomain& domain,
                                  const CorrelatedProcess& process, Milliseconds horizon,
                                  des::Rng& rng) {
  if (!process.enabled() || domain.empty()) return FaultSchedule::from_trace({});
  SPACECDN_EXPECT(horizon.value() > 0.0, "correlated schedule horizon must be positive");
  SPACECDN_EXPECT(process.mean_duration.value() > 0.0,
                  "an enabled correlated process needs a positive mean duration");
  std::vector<FaultEvent> out;
  double t = 0.0;
  while (true) {
    t += rng.exponential(process.mean_interval.value());
    if (t >= horizon.value()) break;
    const double duration = rng.exponential(process.mean_duration.value());
    expand_event(domain, Milliseconds{t}, Milliseconds{duration},
                 process.member_fraction, horizon, rng, out);
    // The domain does not re-fail mid-outage; the next gap starts at repair.
    t += duration;
  }
  return FaultSchedule::from_trace(std::move(out));
}

FaultSchedule merge_schedules(const std::vector<const FaultSchedule*>& schedules) {
  std::vector<FaultEvent> all;
  for (const FaultSchedule* schedule : schedules) {
    if (schedule == nullptr) continue;
    all.insert(all.end(), schedule->events().begin(), schedule->events().end());
  }
  // Earlier schedules land earlier in `all`, so the stable sort keeps their
  // simultaneous events first.
  std::stable_sort(all.begin(), all.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });

  // Union-depth resolution: a component fails when its first source takes it
  // down and recovers only when the last one lets go.
  std::map<std::pair<Component, std::uint32_t>, std::uint32_t> depth;
  std::vector<FaultEvent> merged;
  merged.reserve(all.size());
  for (const FaultEvent& event : all) {
    std::uint32_t& d = depth[{event.component, event.target}];
    if (event.transition == Transition::kFail) {
      if (d++ == 0) merged.push_back(event);
    } else {
      if (d == 0) continue;  // recovery of something nothing holds down
      if (--d == 0) merged.push_back(event);
    }
  }
  return FaultSchedule::from_trace(std::move(merged));
}

}  // namespace spacecdn::faults
