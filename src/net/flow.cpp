#include "net/flow.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spacecdn::net {

SharedLink::SharedLink(des::Simulator& sim, Mbps capacity)
    : sim_(&sim), capacity_(capacity), last_update_(sim.now()) {
  SPACECDN_EXPECT(capacity.value() > 0.0, "link capacity must be positive");
}

Mbps SharedLink::fair_share() const noexcept {
  if (flows_.empty()) return capacity_;
  return Mbps{capacity_.value() / static_cast<double>(flows_.size())};
}

FlowId SharedLink::start_flow(Megabytes size, Callback on_complete) {
  SPACECDN_EXPECT(size.value() >= 0.0, "flow size must be non-negative");
  SPACECDN_EXPECT(static_cast<bool>(on_complete), "flow needs a completion callback");
  advance_progress();

  const FlowId id = next_id_++;
  flows_.emplace(id, ActiveFlow{size.bytes(), sim_->now(), size, std::move(on_complete)});
  reschedule();
  return id;
}

bool SharedLink::cancel_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  advance_progress();
  flows_.erase(it);
  reschedule();
  return true;
}

void SharedLink::advance_progress() {
  const Milliseconds now = sim_->now();
  const double elapsed_ms = (now - last_update_).value();
  last_update_ = now;
  if (elapsed_ms <= 0.0 || flows_.empty()) return;
  const double bytes_each = fair_share().bytes_per_ms() * elapsed_ms;
  for (auto& [id, flow] : flows_) {
    flow.remaining_bytes = std::max(0.0, flow.remaining_bytes - bytes_each);
  }
}

void SharedLink::reschedule() {
  if (event_scheduled_) {
    sim_->cancel(pending_event_);
    event_scheduled_ = false;
  }
  if (flows_.empty()) return;

  double min_remaining = flows_.begin()->second.remaining_bytes;
  for (const auto& [id, flow] : flows_) {
    min_remaining = std::min(min_remaining, flow.remaining_bytes);
  }
  const double eta_ms = min_remaining / fair_share().bytes_per_ms();
  pending_event_ = sim_->schedule(Milliseconds{eta_ms}, [this] {
    event_scheduled_ = false;
    advance_progress();
    complete_earliest();
    reschedule();
  });
  event_scheduled_ = true;
}

void SharedLink::complete_earliest() {
  // Completes every flow whose remaining bytes have (numerically) drained;
  // ties complete together, as true processor sharing would.
  constexpr double kEpsilonBytes = 1e-6;
  std::vector<FlowId> done;
  for (const auto& [id, flow] : flows_) {
    if (flow.remaining_bytes <= kEpsilonBytes) done.push_back(id);
  }
  for (const FlowId id : done) {
    auto node = flows_.extract(id);
    ActiveFlow& flow = node.mapped();
    ++completed_;
    FlowRecord record{id, flow.size, flow.started, sim_->now()};
    flow.on_complete(record);
  }
}

}  // namespace spacecdn::net
