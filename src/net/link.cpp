#include "net/link.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace spacecdn::net {

QueueingModel::QueueingModel(Milliseconds mean_service_time, Milliseconds max_delay)
    : mean_service_time_(mean_service_time), max_delay_(max_delay) {
  SPACECDN_EXPECT(mean_service_time.value() >= 0.0, "service time must be non-negative");
  SPACECDN_EXPECT(max_delay.value() >= 0.0, "max queueing delay must be non-negative");
}

Milliseconds QueueingModel::expected_delay(double rho) const {
  SPACECDN_EXPECT(rho >= 0.0 && rho <= 1.0, "utilisation must be within [0, 1]");
  if (rho >= 1.0) return max_delay_;
  const double wait = mean_service_time_.value() * rho / (1.0 - rho);
  return Milliseconds{std::min(wait, max_delay_.value())};
}

Milliseconds QueueingModel::sample_delay(double rho, des::Rng& rng) const {
  const Milliseconds mean = expected_delay(rho);
  if (mean.value() <= 0.0) return Milliseconds{0.0};
  return Milliseconds{std::min(rng.exponential(mean.value()), max_delay_.value())};
}

BufferbloatModel::BufferbloatModel(Milliseconds bloat_at_full_load, double sigma)
    : bloat_at_full_load_(bloat_at_full_load), sigma_(sigma) {
  SPACECDN_EXPECT(bloat_at_full_load.value() >= 0.0, "bloat must be non-negative");
  SPACECDN_EXPECT(sigma >= 0.0, "sigma must be non-negative");
}

Milliseconds BufferbloatModel::expected_bloat(double load) const {
  SPACECDN_EXPECT(load >= 0.0 && load <= 1.0, "load must be within [0, 1]");
  // Buffers fill superlinearly with load; quadratic is a good first-order
  // fit to published Starlink loaded-latency curves.
  return Milliseconds{bloat_at_full_load_.value() * load * load};
}

Milliseconds BufferbloatModel::sample_bloat(double load, des::Rng& rng) const {
  const Milliseconds mean = expected_bloat(load);
  if (mean.value() <= 0.0) return Milliseconds{0.0};
  return Milliseconds{rng.lognormal_median(mean.value(), sigma_)};
}

}  // namespace spacecdn::net
