// Analytic TCP connection and transfer-time model.
//
// The NetMet web-browsing reproduction needs the classic decomposition the
// plugin records: DNS lookup, TCP connect, TLS negotiation, HTTP response
// time, and full object download.  We model TCP Reno-style slow start with
// an initial window of 10 segments, doubling per RTT until the path
// bandwidth-delay product is reached, then line-rate delivery.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace spacecdn::net {

/// Tunables of the transport model.
struct TcpConfig {
  std::uint32_t initial_window_segments = 10;  ///< RFC 6928 IW10
  double mss_bytes = 1460.0;
  /// TLS 1.3 adds one round trip after the TCP handshake.
  std::uint32_t tls_round_trips = 1;
};

/// Stateless calculator; all methods are pure functions of (rtt, bandwidth).
class TcpModel {
 public:
  explicit TcpModel(TcpConfig config = {});

  [[nodiscard]] const TcpConfig& config() const noexcept { return config_; }

  /// TCP three-way-handshake completion as seen by the client (one RTT).
  [[nodiscard]] Milliseconds connect_time(Milliseconds rtt) const noexcept;

  /// TLS negotiation time after TCP connect.
  [[nodiscard]] Milliseconds tls_time(Milliseconds rtt) const noexcept;

  /// Time from sending an HTTP GET to receiving the first response byte:
  /// one RTT plus the server think time.
  [[nodiscard]] Milliseconds http_response_time(Milliseconds rtt,
                                                Milliseconds server_think) const noexcept;

  /// Time to download `size` over a path with the given RTT and bottleneck
  /// bandwidth, starting in slow start.  Excludes connection setup.
  [[nodiscard]] Milliseconds transfer_time(Megabytes size, Milliseconds rtt,
                                           Mbps bottleneck) const;

  /// Full page-object fetch: connect + TLS + request + transfer.
  [[nodiscard]] Milliseconds object_fetch_time(Megabytes size, Milliseconds rtt,
                                               Mbps bottleneck,
                                               Milliseconds server_think) const;

 private:
  TcpConfig config_;
};

}  // namespace spacecdn::net
