// DNS resolution-time model.
//
// CDN request routing commonly relies on DNS-based redirection; NetMet
// records the lookup time separately, so the model exposes it separately.
#pragma once

#include "des/random.hpp"
#include "util/units.hpp"

namespace spacecdn::net {

/// Configuration of a client's resolver path.
struct DnsConfig {
  /// RTT between the client stub and its recursive resolver.  For LSN users
  /// this traverses the satellite path too (resolvers sit behind the PoP).
  Milliseconds resolver_rtt{10.0};
  /// Probability the recursive resolver answers from cache.
  double cache_hit_probability = 0.85;
  /// Extra round trips to authoritative servers on a cache miss.
  std::uint32_t miss_round_trips = 2;
  /// RTT of each authoritative round trip (resolver to authoritative).
  Milliseconds authoritative_rtt{30.0};
};

/// Samples DNS lookup times.
class DnsModel {
 public:
  explicit DnsModel(DnsConfig config);

  /// Expected (mean) lookup time.
  [[nodiscard]] Milliseconds expected_lookup_time() const noexcept;

  /// One stochastic lookup.
  [[nodiscard]] Milliseconds sample_lookup_time(des::Rng& rng) const;

  [[nodiscard]] const DnsConfig& config() const noexcept { return config_; }

 private:
  DnsConfig config_;
};

}  // namespace spacecdn::net
