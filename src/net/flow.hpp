// Event-driven flow transfers over a shared bottleneck link.
//
// The analytic TcpModel answers "how long does one transfer take in
// isolation"; this module answers the concurrent question: N flows sharing
// one bottleneck (the access link -- a Starlink downlink or a home
// connection) under processor sharing, driven by the des::Simulator.  Page
// loads with parallel connections, striped prefetching, and speed tests all
// ride on it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "des/simulator.hpp"
#include "util/units.hpp"

namespace spacecdn::net {

using FlowId = std::uint64_t;

/// Completion record handed to the flow's callback.
struct FlowRecord {
  FlowId id = 0;
  Megabytes size{0.0};
  Milliseconds started{0.0};
  Milliseconds finished{0.0};

  [[nodiscard]] Milliseconds duration() const noexcept { return finished - started; }
  /// Achieved goodput.
  [[nodiscard]] Mbps goodput() const noexcept {
    const double ms = duration().value();
    return ms > 0 ? Mbps{size.megabits() / (ms / 1000.0)} : Mbps{0.0};
  }
};

/// A capacity-C link shared by its active flows with egalitarian processor
/// sharing: each of the n active flows progresses at C/n.
///
/// Implementation: on every arrival/completion the remaining bytes of all
/// active flows are advanced at the old rate, the completion event of the
/// new earliest finisher is (re)scheduled, and stale events are cancelled.
/// All times come from the owning Simulator.
class SharedLink {
 public:
  using Callback = std::function<void(const FlowRecord&)>;

  /// @param sim  event engine driving this link; must outlive it.
  SharedLink(des::Simulator& sim, Mbps capacity);
  SharedLink(const SharedLink&) = delete;
  SharedLink& operator=(const SharedLink&) = delete;

  [[nodiscard]] Mbps capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t active_flows() const noexcept { return flows_.size(); }
  /// Instantaneous per-flow rate.
  [[nodiscard]] Mbps fair_share() const noexcept;
  /// Fraction of capacity in use (1.0 whenever any flow is active).
  [[nodiscard]] double utilization() const noexcept {
    return flows_.empty() ? 0.0 : 1.0;
  }

  /// Starts a flow of `size` now; `on_complete` fires from the simulator
  /// when the last byte arrives.
  FlowId start_flow(Megabytes size, Callback on_complete);

  /// Cancels an in-flight flow (no callback); returns false if unknown.
  bool cancel_flow(FlowId id);

  [[nodiscard]] std::uint64_t completed_flows() const noexcept { return completed_; }

 private:
  struct ActiveFlow {
    double remaining_bytes = 0.0;
    Milliseconds started{0.0};
    Megabytes size{0.0};
    Callback on_complete;
  };

  /// Advances all remaining byte counters to now() and reschedules the next
  /// completion event.
  void reschedule();
  void advance_progress();
  void complete_earliest();

  des::Simulator* sim_;
  Mbps capacity_;
  std::map<FlowId, ActiveFlow> flows_;
  FlowId next_id_ = 1;
  Milliseconds last_update_{0.0};
  des::EventId pending_event_ = 0;
  bool event_scheduled_ = false;
  std::uint64_t completed_ = 0;
};

}  // namespace spacecdn::net
