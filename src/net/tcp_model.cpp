#include "net/tcp_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace spacecdn::net {

TcpModel::TcpModel(TcpConfig config) : config_(config) {
  SPACECDN_EXPECT(config_.initial_window_segments > 0, "initial window must be positive");
  SPACECDN_EXPECT(config_.mss_bytes > 0.0, "MSS must be positive");
}

Milliseconds TcpModel::connect_time(Milliseconds rtt) const noexcept { return rtt; }

Milliseconds TcpModel::tls_time(Milliseconds rtt) const noexcept {
  return rtt * static_cast<double>(config_.tls_round_trips);
}

Milliseconds TcpModel::http_response_time(Milliseconds rtt,
                                          Milliseconds server_think) const noexcept {
  return rtt + server_think;
}

Milliseconds TcpModel::transfer_time(Megabytes size, Milliseconds rtt,
                                     Mbps bottleneck) const {
  SPACECDN_EXPECT(rtt.value() > 0.0, "RTT must be positive");
  SPACECDN_EXPECT(bottleneck.value() > 0.0, "bottleneck bandwidth must be positive");
  double remaining_bytes = size.bytes();
  if (remaining_bytes <= 0.0) return Milliseconds{0.0};

  // Bytes deliverable per RTT at line rate (the bandwidth-delay product).
  const double bdp_bytes = bottleneck.bytes_per_ms() * rtt.value();
  double window_bytes = config_.initial_window_segments * config_.mss_bytes;
  double elapsed_ms = 0.0;

  // Slow-start rounds: one window per RTT, window doubling, until either the
  // object is done or the window saturates the path.
  while (window_bytes < bdp_bytes) {
    if (remaining_bytes <= window_bytes) {
      // Last partial round: the tail of the object arrives within this RTT,
      // spread at the effective rate window/rtt.
      elapsed_ms += remaining_bytes / window_bytes * rtt.value();
      return Milliseconds{elapsed_ms};
    }
    remaining_bytes -= window_bytes;
    elapsed_ms += rtt.value();
    window_bytes *= 2.0;
  }

  // Congestion-avoidance phase approximated as line-rate delivery.
  elapsed_ms += remaining_bytes / bottleneck.bytes_per_ms();
  return Milliseconds{elapsed_ms};
}

Milliseconds TcpModel::object_fetch_time(Megabytes size, Milliseconds rtt,
                                         Mbps bottleneck,
                                         Milliseconds server_think) const {
  return connect_time(rtt) + tls_time(rtt) + http_response_time(rtt, server_think) +
         transfer_time(size, rtt, bottleneck);
}

}  // namespace spacecdn::net
