#include "net/anycast.hpp"

#include "util/error.hpp"

namespace spacecdn::net {

AnycastSelector::AnycastSelector(double routing_noise_ms)
    : routing_noise_ms_(routing_noise_ms) {
  SPACECDN_EXPECT(routing_noise_ms >= 0.0, "routing noise must be non-negative");
}

AnycastChoice AnycastSelector::select_ideal(
    const std::vector<Milliseconds>& site_latencies) {
  SPACECDN_EXPECT(!site_latencies.empty(), "anycast needs at least one site");
  std::size_t best = 0;
  for (std::size_t i = 1; i < site_latencies.size(); ++i) {
    if (site_latencies[i] < site_latencies[best]) best = i;
  }
  return AnycastChoice{best, site_latencies[best]};
}

AnycastChoice AnycastSelector::select(const std::vector<Milliseconds>& site_latencies,
                                      des::Rng& rng) const {
  SPACECDN_EXPECT(!site_latencies.empty(), "anycast needs at least one site");
  if (routing_noise_ms_ == 0.0) return select_ideal(site_latencies);
  std::size_t best = 0;
  double best_score = site_latencies[0].value() + rng.exponential(routing_noise_ms_);
  for (std::size_t i = 1; i < site_latencies.size(); ++i) {
    const double score = site_latencies[i].value() + rng.exponential(routing_noise_ms_);
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return AnycastChoice{best, site_latencies[best]};
}

}  // namespace spacecdn::net
