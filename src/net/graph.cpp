#include "net/graph.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace spacecdn::net {

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  csr_dirty_.store(true, std::memory_order_release);
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Graph::add_edge(NodeId from, NodeId to, Milliseconds weight) {
  SPACECDN_EXPECT(from < adjacency_.size() && to < adjacency_.size(),
                  "edge endpoints must be existing nodes");
  SPACECDN_EXPECT(weight.value() >= 0.0, "edge weight must be non-negative");
  adjacency_[from].push_back(Edge{to, weight});
  ++edges_;
  csr_dirty_.store(true, std::memory_order_release);
}

void Graph::add_undirected_edge(NodeId a, NodeId b, Milliseconds weight) {
  add_edge(a, b, weight);
  add_edge(b, a, weight);
}

std::size_t Graph::remove_edge(NodeId from, NodeId to) {
  SPACECDN_EXPECT(from < adjacency_.size() && to < adjacency_.size(),
                  "edge endpoints must be existing nodes");
  auto& adj = adjacency_[from];
  const auto removed_begin =
      std::remove_if(adj.begin(), adj.end(), [to](const Edge& e) { return e.to == to; });
  const auto removed = static_cast<std::size_t>(adj.end() - removed_begin);
  adj.erase(removed_begin, adj.end());
  edges_ -= removed;
  if (removed != 0) csr_dirty_.store(true, std::memory_order_release);
  return removed;
}

std::size_t Graph::remove_undirected_edge(NodeId a, NodeId b) {
  return remove_edge(a, b) + remove_edge(b, a);
}

std::span<const Edge> Graph::neighbors(NodeId node) const {
  SPACECDN_EXPECT(node < adjacency_.size(), "node id out of range");
  return adjacency_[node];
}

void Graph::clear_edges() noexcept {
  for (auto& adj : adjacency_) adj.clear();
  edges_ = 0;
  csr_dirty_.store(true, std::memory_order_release);
}

void Graph::rebuild_csr() const {
  const std::size_t n = adjacency_.size();
  csr_offsets_.assign(n + 1, 0);
  csr_targets_.clear();
  csr_targets_.reserve(edges_);
  csr_weights_.clear();
  csr_weights_.reserve(edges_);
  double min_weight = kUnreachableWeight;
  for (std::size_t u = 0; u < n; ++u) {
    // Flattening preserves per-node edge order, the property the queries
    // rely on for bit-exact relaxation order.
    for (const Edge& e : adjacency_[u]) {
      csr_targets_.push_back(e.to);
      csr_weights_.push_back(e.weight.value());
      if (e.weight.value() < min_weight) min_weight = e.weight.value();
    }
    csr_offsets_[u + 1] = static_cast<std::uint32_t>(csr_targets_.size());
  }
  csr_min_weight_ = min_weight;
}

CsrView Graph::csr() const {
  if (csr_dirty_.load(std::memory_order_acquire)) {
    const std::lock_guard lock(csr_mutex_);
    if (csr_dirty_.load(std::memory_order_relaxed)) {
      rebuild_csr();
      // Publishes the rebuilt arrays: a reader whose acquire load above sees
      // `false` also sees every write rebuild_csr made.
      csr_dirty_.store(false, std::memory_order_release);
    }
  }
  return CsrView{csr_offsets_, csr_targets_, csr_weights_};
}

Milliseconds Graph::min_edge_weight() const {
  (void)csr();  // ensure csr_min_weight_ is current
  return Milliseconds{csr_min_weight_};
}

namespace {

struct QueueEntry {
  double dist;
  NodeId node;
  bool operator>(const QueueEntry& o) const noexcept { return dist > o.dist; }
};

}  // namespace

std::vector<Milliseconds> shortest_distances(const Graph& g, NodeId source) {
  SPACECDN_EXPECT(source < g.node_count(), "source node out of range");
  const CsrView csr = g.csr();
  std::vector<double> dist(g.node_count(), kUnreachable);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[source] = 0.0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;  // stale entry
    // CSR edge order == insertion order, so the relaxation sequence (and any
    // equal-distance tie outcome) matches the adjacency-list loop exactly.
    for (std::uint32_t ei = csr.offsets[u]; ei < csr.offsets[u + 1]; ++ei) {
      const NodeId v = csr.targets[ei];
      const double nd = d + csr.weights[ei];
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.push({nd, v});
      }
    }
  }
  std::vector<Milliseconds> out;
  out.reserve(dist.size());
  for (double d : dist) out.emplace_back(d);
  return out;
}

std::optional<Path> shortest_path(const Graph& g, NodeId source, NodeId target) {
  SPACECDN_EXPECT(source < g.node_count() && target < g.node_count(),
                  "path endpoints must be existing nodes");
  const CsrView csr = g.csr();
  std::vector<double> dist(g.node_count(), kUnreachable);
  std::vector<NodeId> prev(g.node_count(), source);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[source] = 0.0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (u == target) break;
    if (d > dist[u]) continue;
    for (std::uint32_t ei = csr.offsets[u]; ei < csr.offsets[u + 1]; ++ei) {
      const NodeId v = csr.targets[ei];
      const double nd = d + csr.weights[ei];
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = u;
        pq.push({nd, v});
      }
    }
  }
  if (dist[target] == kUnreachable) return std::nullopt;

  Path path;
  path.total = Milliseconds{dist[target]};
  for (NodeId n = target;; n = prev[n]) {
    path.nodes.push_back(n);
    if (n == source) break;
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  return path;
}

std::vector<HopDistance> nodes_within_hops(const Graph& g, NodeId source,
                                           std::uint32_t max_hops) {
  SPACECDN_EXPECT(source < g.node_count(), "source node out of range");
  const CsrView csr = g.csr();
  std::vector<bool> seen(g.node_count(), false);
  std::vector<HopDistance> out;
  std::queue<HopDistance> frontier;
  seen[source] = true;
  frontier.push({source, 0});
  while (!frontier.empty()) {
    const HopDistance cur = frontier.front();
    frontier.pop();
    out.push_back(cur);
    if (cur.hops == max_hops) continue;
    for (std::uint32_t ei = csr.offsets[cur.node]; ei < csr.offsets[cur.node + 1]; ++ei) {
      const NodeId v = csr.targets[ei];
      if (!seen[v]) {
        seen[v] = true;
        frontier.push({v, cur.hops + 1});
      }
    }
  }
  return out;
}

}  // namespace spacecdn::net
