#include "net/graph.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace spacecdn::net {

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Graph::add_edge(NodeId from, NodeId to, Milliseconds weight) {
  SPACECDN_EXPECT(from < adjacency_.size() && to < adjacency_.size(),
                  "edge endpoints must be existing nodes");
  SPACECDN_EXPECT(weight.value() >= 0.0, "edge weight must be non-negative");
  adjacency_[from].push_back(Edge{to, weight});
  ++edges_;
}

void Graph::add_undirected_edge(NodeId a, NodeId b, Milliseconds weight) {
  add_edge(a, b, weight);
  add_edge(b, a, weight);
}

std::size_t Graph::remove_edge(NodeId from, NodeId to) {
  SPACECDN_EXPECT(from < adjacency_.size() && to < adjacency_.size(),
                  "edge endpoints must be existing nodes");
  auto& adj = adjacency_[from];
  const auto removed_begin =
      std::remove_if(adj.begin(), adj.end(), [to](const Edge& e) { return e.to == to; });
  const auto removed = static_cast<std::size_t>(adj.end() - removed_begin);
  adj.erase(removed_begin, adj.end());
  edges_ -= removed;
  return removed;
}

std::size_t Graph::remove_undirected_edge(NodeId a, NodeId b) {
  return remove_edge(a, b) + remove_edge(b, a);
}

std::span<const Edge> Graph::neighbors(NodeId node) const {
  SPACECDN_EXPECT(node < adjacency_.size(), "node id out of range");
  return adjacency_[node];
}

void Graph::clear_edges() noexcept {
  for (auto& adj : adjacency_) adj.clear();
  edges_ = 0;
}

namespace {

struct QueueEntry {
  double dist;
  NodeId node;
  bool operator>(const QueueEntry& o) const noexcept { return dist > o.dist; }
};

}  // namespace

std::vector<Milliseconds> shortest_distances(const Graph& g, NodeId source) {
  SPACECDN_EXPECT(source < g.node_count(), "source node out of range");
  std::vector<double> dist(g.node_count(), kUnreachable);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[source] = 0.0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;  // stale entry
    for (const Edge& e : g.neighbors(u)) {
      const double nd = d + e.weight.value();
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        pq.push({nd, e.to});
      }
    }
  }
  std::vector<Milliseconds> out;
  out.reserve(dist.size());
  for (double d : dist) out.emplace_back(d);
  return out;
}

std::optional<Path> shortest_path(const Graph& g, NodeId source, NodeId target) {
  SPACECDN_EXPECT(source < g.node_count() && target < g.node_count(),
                  "path endpoints must be existing nodes");
  std::vector<double> dist(g.node_count(), kUnreachable);
  std::vector<NodeId> prev(g.node_count(), source);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[source] = 0.0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (u == target) break;
    if (d > dist[u]) continue;
    for (const Edge& e : g.neighbors(u)) {
      const double nd = d + e.weight.value();
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        prev[e.to] = u;
        pq.push({nd, e.to});
      }
    }
  }
  if (dist[target] == kUnreachable) return std::nullopt;

  Path path;
  path.total = Milliseconds{dist[target]};
  for (NodeId n = target;; n = prev[n]) {
    path.nodes.push_back(n);
    if (n == source) break;
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  return path;
}

std::vector<HopDistance> nodes_within_hops(const Graph& g, NodeId source,
                                           std::uint32_t max_hops) {
  SPACECDN_EXPECT(source < g.node_count(), "source node out of range");
  std::vector<bool> seen(g.node_count(), false);
  std::vector<HopDistance> out;
  std::queue<HopDistance> frontier;
  seen[source] = true;
  frontier.push({source, 0});
  while (!frontier.empty()) {
    const HopDistance cur = frontier.front();
    frontier.pop();
    out.push_back(cur);
    if (cur.hops == max_hops) continue;
    for (const Edge& e : g.neighbors(cur.node)) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        frontier.push({e.to, cur.hops + 1});
      }
    }
  }
  return out;
}

}  // namespace spacecdn::net
