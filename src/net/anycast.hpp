// Anycast catchment selection.
//
// Cloudflare announces the same prefix from every site; BGP steers a client
// to one site, usually -- but not always -- the lowest-latency one.  The
// paper notes that "clients from the same city often target several CDN
// servers across different neighbouring countries"; the jitter term
// reproduces that spread.
#pragma once

#include <cstddef>
#include <vector>

#include "des/random.hpp"
#include "util/units.hpp"

namespace spacecdn::net {

/// Result of an anycast routing decision.
struct AnycastChoice {
  std::size_t site_index = 0;
  Milliseconds latency{0.0};  ///< latency to the chosen site (without jitter)
};

/// Policy for turning per-site latencies into a routed site.
class AnycastSelector {
 public:
  /// @param routing_noise_ms  per-decision lognormal-ish perturbation added
  /// to each site's latency before taking the argmin; 0 = ideal anycast.
  explicit AnycastSelector(double routing_noise_ms = 0.0);

  /// Ideal selection: strictly lowest latency.
  [[nodiscard]] static AnycastChoice select_ideal(
      const std::vector<Milliseconds>& site_latencies);

  /// BGP-like selection: argmin over latency + noise; reflects that BGP path
  /// choice is only correlated with latency.
  [[nodiscard]] AnycastChoice select(const std::vector<Milliseconds>& site_latencies,
                                     des::Rng& rng) const;

 private:
  double routing_noise_ms_;
};

}  // namespace spacecdn::net
