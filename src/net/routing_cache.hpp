// Epoch-cached single-source shortest-path routing engine.
//
// LEO topology is static between epoch ticks (ephemeris advances, fail and
// recover events), yet every simulated fetch used to re-run a full Dijkstra
// -- sometimes one per BFS candidate.  Hypatia and StarryNet precompute
// per-snapshot routing state for exactly this reason.  RoutingCache memoises
// whole SSSP trees (distances + parent arrays) per source node, so
// `path_latency`, `latencies_from`, and hop-count reconstruction all come
// from one cached Dijkstra.  Entries are keyed by a topology epoch that the
// graph owner bumps on every mutation; stale trees are discarded lazily and
// an LRU bound caps the number of cached sources.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "net/graph.hpp"

namespace spacecdn::net {

/// One single-source shortest-path tree: the full Dijkstra result from
/// `source`, immutable once computed.  `parent[v]` is the predecessor of `v`
/// on the shortest path (== `source` for the source itself and for
/// unreachable nodes, matching shortest_path()'s convention).
class SsspTree {
 public:
  SsspTree(const Graph& graph, NodeId source);

  [[nodiscard]] NodeId source() const noexcept { return source_; }

  [[nodiscard]] Milliseconds distance(NodeId target) const {
    return distances_[target];
  }
  [[nodiscard]] bool reachable(NodeId target) const {
    return distances_[target].value() != kUnreachable;
  }
  [[nodiscard]] const std::vector<Milliseconds>& distances() const noexcept {
    return distances_;
  }
  [[nodiscard]] const std::vector<NodeId>& parents() const noexcept { return parents_; }

  /// Hop count of the shortest path source -> target; 0 for the source
  /// itself.  @throws spacecdn::ConfigError when target is unreachable.
  [[nodiscard]] std::uint32_t hops_to(NodeId target) const;

  /// Node sequence of the shortest path (source first), reconstructed from
  /// the parent array.  @throws spacecdn::ConfigError when unreachable.
  [[nodiscard]] Path path_to(NodeId target) const;

 private:
  NodeId source_;
  std::vector<Milliseconds> distances_;
  std::vector<NodeId> parents_;
};

/// Cache statistics (cumulative over the cache's lifetime).
struct RoutingCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;      // LRU-bound evictions
  std::uint64_t invalidations = 0;  // epoch bumps

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Epoch-keyed, LRU-bounded memoisation of SSSP trees over one graph.
///
/// Thread-safe: lookups take a shared lock, misses upgrade to exclusive to
/// insert.  Trees are handed out as shared_ptr so a reader keeps its tree
/// alive even if a concurrent miss LRU-evicts the entry.  The graph itself
/// must not be mutated concurrently with queries; owners bump the epoch
/// (invalidate()) under the same external discipline they mutate the graph.
class RoutingCache {
 public:
  /// @param graph        graph to memoise over (must outlive the cache).
  /// @param max_sources  LRU bound on distinct cached source nodes.
  explicit RoutingCache(const Graph& graph, std::size_t max_sources = 256);

  /// The cached SSSP tree from `source`, computing it on a miss.
  [[nodiscard]] std::shared_ptr<const SsspTree> tree(NodeId source) const;

  /// Drops every cached tree by bumping the epoch (O(1); entries are
  /// reclaimed lazily).  Call after any graph mutation.
  void invalidate() noexcept;

  [[nodiscard]] std::uint64_t epoch() const noexcept;
  [[nodiscard]] std::size_t cached_sources() const;
  [[nodiscard]] std::size_t max_sources() const noexcept { return max_sources_; }
  [[nodiscard]] RoutingCacheStats stats() const;

 private:
  struct Entry {
    std::uint64_t epoch = 0;
    std::shared_ptr<const SsspTree> tree;
    std::list<NodeId>::iterator lru_it;  // position in lru_ (front = hottest)
  };

  const Graph* graph_;
  std::size_t max_sources_;
  mutable std::shared_mutex mutex_;
  mutable std::uint64_t epoch_ = 0;
  mutable std::unordered_map<NodeId, Entry> entries_;
  mutable std::list<NodeId> lru_;
  // Atomics: hits are counted under the shared lock, where a plain counter
  // would be a data race between concurrent readers.
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
  mutable std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace spacecdn::net
