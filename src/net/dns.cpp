#include "net/dns.hpp"

#include "util/error.hpp"

namespace spacecdn::net {

DnsModel::DnsModel(DnsConfig config) : config_(config) {
  SPACECDN_EXPECT(config_.resolver_rtt.value() >= 0.0, "resolver RTT must be non-negative");
  SPACECDN_EXPECT(
      config_.cache_hit_probability >= 0.0 && config_.cache_hit_probability <= 1.0,
      "cache hit probability must be within [0, 1]");
}

Milliseconds DnsModel::expected_lookup_time() const noexcept {
  const double miss_extra = (1.0 - config_.cache_hit_probability) *
                            config_.miss_round_trips *
                            config_.authoritative_rtt.value();
  return config_.resolver_rtt + Milliseconds{miss_extra};
}

Milliseconds DnsModel::sample_lookup_time(des::Rng& rng) const {
  Milliseconds t = config_.resolver_rtt;
  if (!rng.chance(config_.cache_hit_probability)) {
    t += config_.authoritative_rtt * static_cast<double>(config_.miss_round_trips);
  }
  return t;
}

}  // namespace spacecdn::net
