#include "net/routing_cache.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace spacecdn::net {

namespace {

struct QueueEntry {
  double dist;
  NodeId node;
  bool operator>(const QueueEntry& o) const noexcept { return dist > o.dist; }
};

}  // namespace

SsspTree::SsspTree(const Graph& graph, NodeId source) : source_(source) {
  SPACECDN_EXPECT(source < graph.node_count(), "source node out of range");
  // CSR keeps the relaxation order of the adjacency-list loop (per-node edge
  // order is insertion order), so cached trees are bit-identical to the
  // direct shortest_path/shortest_distances results they memoise.
  const CsrView csr = graph.csr();
  std::vector<double> dist(graph.node_count(), kUnreachable);
  parents_.assign(graph.node_count(), source);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[source] = 0.0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;  // stale entry
    for (std::uint32_t ei = csr.offsets[u]; ei < csr.offsets[u + 1]; ++ei) {
      const NodeId v = csr.targets[ei];
      const double nd = d + csr.weights[ei];
      if (nd < dist[v]) {
        dist[v] = nd;
        parents_[v] = u;
        pq.push({nd, v});
      }
    }
  }
  distances_.reserve(dist.size());
  for (double d : dist) distances_.emplace_back(d);
}

std::uint32_t SsspTree::hops_to(NodeId target) const {
  SPACECDN_EXPECT(target < distances_.size(), "target node out of range");
  SPACECDN_EXPECT(reachable(target), "target unreachable from SSSP source");
  std::uint32_t hops = 0;
  for (NodeId n = target; n != source_; n = parents_[n]) ++hops;
  return hops;
}

Path SsspTree::path_to(NodeId target) const {
  SPACECDN_EXPECT(target < distances_.size(), "target node out of range");
  SPACECDN_EXPECT(reachable(target), "target unreachable from SSSP source");
  Path path;
  path.total = distances_[target];
  for (NodeId n = target;; n = parents_[n]) {
    path.nodes.push_back(n);
    if (n == source_) break;
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  return path;
}

RoutingCache::RoutingCache(const Graph& graph, std::size_t max_sources)
    : graph_(&graph), max_sources_(max_sources) {
  SPACECDN_EXPECT(max_sources > 0, "routing cache needs room for at least one source");
}

std::shared_ptr<const SsspTree> RoutingCache::tree(NodeId source) const {
  {
    std::shared_lock lock(mutex_);
    const auto it = entries_.find(source);
    if (it != entries_.end() && it->second.epoch == epoch_) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.tree;
    }
  }
  // Miss (or stale): compute outside any lock -- Dijkstra dominates -- then
  // insert.  A racing thread may compute the same tree; both results are
  // identical, the second insert just wins.
  auto computed = std::make_shared<const SsspTree>(*graph_, source);
  std::unique_lock lock(mutex_);
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (const auto it = entries_.find(source); it != entries_.end()) {
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  while (entries_.size() >= max_sources_) {
    const NodeId victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  lru_.push_front(source);
  entries_[source] = Entry{epoch_, computed, lru_.begin()};
  return computed;
}

void RoutingCache::invalidate() noexcept {
  std::unique_lock lock(mutex_);
  ++epoch_;
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  // Entries are discarded lazily on lookup; dropping them now keeps memory
  // proportional to live (current-epoch) trees.
  entries_.clear();
  lru_.clear();
}

std::uint64_t RoutingCache::epoch() const noexcept {
  std::shared_lock lock(mutex_);
  return epoch_;
}

std::size_t RoutingCache::cached_sources() const {
  std::shared_lock lock(mutex_);
  return entries_.size();
}

RoutingCacheStats RoutingCache::stats() const {
  RoutingCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace spacecdn::net
