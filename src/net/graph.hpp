// Weighted graph and shortest-path routing.
//
// Nodes are dense integer ids (satellites, ground stations, PoPs, CDN sites
// all map onto them).  Edge weights are one-way latencies in milliseconds.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "util/units.hpp"

namespace spacecdn::net {

using NodeId = std::uint32_t;

/// One outgoing adjacency.
struct Edge {
  NodeId to = 0;
  Milliseconds weight{0.0};
};

/// A routing result: total latency plus the node sequence (src first).
struct Path {
  Milliseconds total{0.0};
  std::vector<NodeId> nodes;

  [[nodiscard]] std::size_t hop_count() const noexcept {
    return nodes.empty() ? 0 : nodes.size() - 1;
  }
};

/// Adjacency-list digraph with latency weights.
class Graph {
 public:
  Graph() = default;
  /// Pre-creates `n` nodes (ids 0..n-1).
  explicit Graph(std::size_t n) : adjacency_(n) {}

  /// Adds a node; returns its id.
  NodeId add_node();

  [[nodiscard]] std::size_t node_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// Adds a directed edge.  @throws spacecdn::ConfigError on bad ids or
  /// negative weight.
  void add_edge(NodeId from, NodeId to, Milliseconds weight);

  /// Adds edges in both directions with the same weight.
  void add_undirected_edge(NodeId a, NodeId b, Milliseconds weight);

  /// Removes every from->to edge; returns how many were removed.  Used by
  /// incremental failure injection (lsn::IslNetwork::fail/recover), which
  /// surgically detaches a node instead of rebuilding the whole topology.
  std::size_t remove_edge(NodeId from, NodeId to);

  /// Removes a<->b in both directions; returns how many edges were removed.
  std::size_t remove_undirected_edge(NodeId a, NodeId b);

  [[nodiscard]] std::span<const Edge> neighbors(NodeId node) const;

  /// Drops all edges but keeps the nodes (used when the topology is
  /// recomputed every ephemeris step).
  void clear_edges() noexcept;

 private:
  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edges_ = 0;
};

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Single-source shortest distances (Dijkstra, binary heap).  Unreachable
/// nodes get Milliseconds{infinity}.
[[nodiscard]] std::vector<Milliseconds> shortest_distances(const Graph& g, NodeId source);

/// Shortest path between two nodes, or nullopt when unreachable.
[[nodiscard]] std::optional<Path> shortest_path(const Graph& g, NodeId source,
                                                NodeId target);

/// Result of a bounded breadth-first search: node and its hop distance.
struct HopDistance {
  NodeId node = 0;
  std::uint32_t hops = 0;
};

/// All nodes within `max_hops` of `source` (including source at 0 hops),
/// in breadth-first order.  Edge weights are ignored; this is the ISL
/// hop-count search the SpaceCDN lookup uses.
[[nodiscard]] std::vector<HopDistance> nodes_within_hops(const Graph& g, NodeId source,
                                                         std::uint32_t max_hops);

}  // namespace spacecdn::net
