// Weighted graph and shortest-path routing.
//
// Nodes are dense integer ids (satellites, ground stations, PoPs, CDN sites
// all map onto them).  Edge weights are one-way latencies in milliseconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "util/units.hpp"

namespace spacecdn::net {

using NodeId = std::uint32_t;

/// One outgoing adjacency.
struct Edge {
  NodeId to = 0;
  Milliseconds weight{0.0};
};

/// A routing result: total latency plus the node sequence (src first).
struct Path {
  Milliseconds total{0.0};
  std::vector<NodeId> nodes;

  [[nodiscard]] std::size_t hop_count() const noexcept {
    return nodes.empty() ? 0 : nodes.size() - 1;
  }
};

/// Read-only flattened adjacency: three parallel arrays in compressed
/// sparse row layout.  Node u's outgoing edges occupy indices
/// [offsets[u], offsets[u+1]), in exactly the order add_edge created them,
/// so algorithms walking the view relax edges in the same order as the
/// original adjacency-list loops -- bit-identical results, better locality.
struct CsrView {
  std::span<const std::uint32_t> offsets;  // node_count()+1 entries
  std::span<const NodeId> targets;
  std::span<const double> weights;  // milliseconds, raw doubles for the hot loop
};

/// Adjacency-list digraph with latency weights and a lazily-maintained CSR
/// mirror for query hot paths.
class Graph {
 public:
  Graph() = default;
  /// Pre-creates `n` nodes (ids 0..n-1).
  explicit Graph(std::size_t n) : adjacency_(n) {}

  // Copies/moves carry the adjacency lists and leave the CSR mirror dirty;
  // it is a cache, rebuilt on the next query.  (Spelled out because the
  // mutex/atomic members are not copyable.)
  Graph(const Graph& other) : adjacency_(other.adjacency_), edges_(other.edges_) {}
  Graph& operator=(const Graph& other) {
    if (this != &other) {
      adjacency_ = other.adjacency_;
      edges_ = other.edges_;
      csr_dirty_.store(true, std::memory_order_release);
    }
    return *this;
  }
  Graph(Graph&& other) noexcept
      : adjacency_(std::move(other.adjacency_)), edges_(other.edges_) {}
  Graph& operator=(Graph&& other) noexcept {
    if (this != &other) {
      adjacency_ = std::move(other.adjacency_);
      edges_ = other.edges_;
      csr_dirty_.store(true, std::memory_order_release);
    }
    return *this;
  }

  /// Adds a node; returns its id.
  NodeId add_node();

  [[nodiscard]] std::size_t node_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// Adds a directed edge.  @throws spacecdn::ConfigError on bad ids or
  /// negative weight.
  void add_edge(NodeId from, NodeId to, Milliseconds weight);

  /// Adds edges in both directions with the same weight.
  void add_undirected_edge(NodeId a, NodeId b, Milliseconds weight);

  /// Removes every from->to edge; returns how many were removed.  Used by
  /// incremental failure injection (lsn::IslNetwork::fail/recover), which
  /// surgically detaches a node instead of rebuilding the whole topology.
  std::size_t remove_edge(NodeId from, NodeId to);

  /// Removes a<->b in both directions; returns how many edges were removed.
  std::size_t remove_undirected_edge(NodeId a, NodeId b);

  [[nodiscard]] std::span<const Edge> neighbors(NodeId node) const;

  /// Drops all edges but keeps the nodes (used when the topology is
  /// recomputed every ephemeris step).
  void clear_edges() noexcept;

  /// The CSR mirror, rebuilding it first if any mutation happened since the
  /// last query.  The returned spans stay valid until the next mutation.
  ///
  /// Thread-safe against concurrent csr() calls (double-checked rebuild
  /// under an internal mutex), matching the RoutingCache discipline: many
  /// concurrent readers, never a reader concurrent with a mutation.
  [[nodiscard]] CsrView csr() const;

  /// Smallest edge weight in the graph, or Milliseconds{infinity} when the
  /// graph has no edges.  This is the natural conservative lookahead for a
  /// sharded simulation whose cross-shard interactions traverse the graph:
  /// no event can influence another shard in less than one edge delay.
  [[nodiscard]] Milliseconds min_edge_weight() const;

 private:
  /// Flattens adjacency_ into the csr_* arrays; caller holds csr_mutex_.
  void rebuild_csr() const;

  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edges_ = 0;

  // CSR mirror: a cache of adjacency_, rebuilt lazily.  `mutable` + the
  // dirty-flag dance lets const query paths (shortest_distances & friends
  // under RoutingCache's parallel sweeps) share one rebuild without a lock
  // on every query: the release store of `false` publishes the arrays, the
  // acquire load on the fast path synchronises with it.
  mutable std::mutex csr_mutex_;
  mutable std::atomic<bool> csr_dirty_{true};
  mutable std::vector<std::uint32_t> csr_offsets_;
  mutable std::vector<NodeId> csr_targets_;
  mutable std::vector<double> csr_weights_;
  mutable double csr_min_weight_ = kUnreachableWeight;

  static constexpr double kUnreachableWeight = std::numeric_limits<double>::infinity();
};

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Single-source shortest distances (Dijkstra, binary heap).  Unreachable
/// nodes get Milliseconds{infinity}.
[[nodiscard]] std::vector<Milliseconds> shortest_distances(const Graph& g, NodeId source);

/// Shortest path between two nodes, or nullopt when unreachable.
[[nodiscard]] std::optional<Path> shortest_path(const Graph& g, NodeId source,
                                                NodeId target);

/// Result of a bounded breadth-first search: node and its hop distance.
struct HopDistance {
  NodeId node = 0;
  std::uint32_t hops = 0;
};

/// All nodes within `max_hops` of `source` (including source at 0 hops),
/// in breadth-first order.  Edge weights are ignored; this is the ISL
/// hop-count search the SpaceCDN lookup uses.
[[nodiscard]] std::vector<HopDistance> nodes_within_hops(const Graph& g, NodeId source,
                                                         std::uint32_t max_hops);

}  // namespace spacecdn::net
