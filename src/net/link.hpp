// Link-level delay models: serialization, queueing, and bufferbloat.
//
// The paper's web results hinge on two link behaviours beyond propagation
// delay: (i) queueing that grows with utilisation, and (ii) Starlink's
// well-documented bufferbloat, where deep buffers add >200 ms under active
// downloads (paper section 3.2, citing Mohan et al. WWW'24).
#pragma once

#include "des/random.hpp"
#include "util/units.hpp"

namespace spacecdn::net {

/// Static description of a link.
struct LinkSpec {
  Milliseconds propagation{0.0};
  Mbps capacity{100.0};
};

/// Serialization (transmission) delay of pushing `volume` onto the link.
[[nodiscard]] constexpr Milliseconds serialization_delay(const LinkSpec& link,
                                                         Megabytes volume) noexcept {
  return transmission_delay(volume, link.capacity);
}

/// Cheap cumulative-load annotation for one directed link: tracks the time
/// the transmitter is committed through and the bytes it has carried.  The
/// load engine uses it for the cut-through links of a multi-hop path (the
/// backlog a new transfer finds, and per-link utilization), while explicit
/// des-driven queues model the bottleneck hop.
struct LinkLoad {
  Milliseconds busy_until{0.0};
  Megabytes carried{0.0};

  /// Charges a transfer arriving at `now`: returns the backlog wait it finds
  /// and commits the transmitter for `serialization` beyond it.
  Milliseconds charge(Milliseconds now, Milliseconds serialization,
                      Megabytes volume) noexcept {
    const Milliseconds wait =
        busy_until > now ? busy_until - now : Milliseconds{0.0};
    busy_until = now + wait + serialization;
    carried += volume;
    return wait;
  }

  /// Mean utilization of the link over [0, horizon] given its capacity.
  [[nodiscard]] double utilization(Milliseconds horizon, Mbps capacity) const noexcept {
    if (horizon.value() <= 0.0 || capacity.value() <= 0.0) return 0.0;
    return transmission_delay(carried, capacity) / horizon;
  }
};

/// M/M/1-style queueing delay as a function of utilisation.
///
/// mean_wait = service_time * rho / (1 - rho), capped so a saturated link
/// yields `max_delay` instead of infinity (real buffers are finite).
class QueueingModel {
 public:
  QueueingModel(Milliseconds mean_service_time, Milliseconds max_delay);

  /// Expected queueing delay at utilisation `rho` in [0, 1].
  [[nodiscard]] Milliseconds expected_delay(double rho) const;

  /// One stochastic sample (exponential around the expectation).
  [[nodiscard]] Milliseconds sample_delay(double rho, des::Rng& rng) const;

 private:
  Milliseconds mean_service_time_;
  Milliseconds max_delay_;
};

/// Bufferbloat: latency inflation under sustained load.
///
/// Idle connections see no inflation; during an active bulk transfer the
/// bottleneck buffer fills and RTTs inflate towards `bloat_at_full_load`.
/// Parameterised from the Starlink measurements the paper corroborates
/// (>200 ms during active downloads).
class BufferbloatModel {
 public:
  explicit BufferbloatModel(Milliseconds bloat_at_full_load, double sigma = 0.35);

  /// Extra delay when the access link carries `load` in [0, 1] of its
  /// capacity; deterministic expectation.
  [[nodiscard]] Milliseconds expected_bloat(double load) const;

  /// Stochastic sample (lognormal around the expectation).
  [[nodiscard]] Milliseconds sample_bloat(double load, des::Rng& rng) const;

 private:
  Milliseconds bloat_at_full_load_;
  double sigma_;
};

}  // namespace spacecdn::net
