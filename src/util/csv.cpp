#include "util/csv.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace spacecdn {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), arity_(header.size()) {
  SPACECDN_EXPECT(!header.empty(), "CSV header must not be empty");
  write_cells(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  SPACECDN_EXPECT(cells.size() == arity_, "CSV row arity must match header");
  write_cells(cells);
  ++rows_;
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(format_number(v));
  row(formatted);
}

void CsvWriter::row_labeled(std::string_view label, const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size() + 1);
  formatted.emplace_back(label);
  for (double v : cells) formatted.push_back(format_number(v));
  row(formatted);
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string{cell};
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string CsvWriter::format_number(double v) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  // %.6g keeps integers exact up to 1e6 and trims trailing zeros.
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& cell : cells) {
    if (!first) out_ << ',';
    out_ << escape(cell);
    first = false;
  }
  out_ << '\n';
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;  // escaped quote
        } else {
          quoted = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"' && cell.empty()) {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c == '\r' && i + 1 == line.size()) {
      // tolerate CRLF line endings
    } else {
      cell.push_back(c);
    }
  }
  SPACECDN_EXPECT(!quoted, "unterminated quoted CSV cell");
  cells.push_back(std::move(cell));
  return cells;
}

CsvReader::CsvReader(std::istream& in, std::vector<std::string> expected_header)
    : in_(in) {
  std::string line;
  SPACECDN_EXPECT(static_cast<bool>(std::getline(in_, line)),
                  "CSV input must carry a header line");
  header_ = parse_csv_line(line);
  if (!expected_header.empty()) {
    SPACECDN_EXPECT(header_ == expected_header, "CSV header does not match schema");
  }
}

bool CsvReader::next_row(std::vector<std::string>& cells) {
  std::string line;
  if (!std::getline(in_, line)) return false;
  cells = parse_csv_line(line);
  SPACECDN_EXPECT(cells.size() == header_.size(), "CSV row arity must match header");
  ++rows_;
  return true;
}

}  // namespace spacecdn
