// Console table rendering used by the bench harnesses to print the paper's
// tables/figure series in a readable, diff-able form.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace spacecdn {

/// Accumulates rows of string cells and renders an aligned ASCII table.
///
/// Numeric-looking cells are right-aligned; everything else is left-aligned.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: a label cell followed by numeric cells with fixed decimals.
  void add_row(std::string_view label, const std::vector<double>& values, int decimals = 1);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders header, separator, and all rows.
  void render(std::ostream& os) const;

  [[nodiscard]] static std::string format_fixed(double v, int decimals);

 private:
  [[nodiscard]] static bool looks_numeric(std::string_view cell) noexcept;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a horizontal ASCII bar chart line: label, bar, value.  Used by the
/// figure benches for quick visual inspection of distributions.
[[nodiscard]] std::string ascii_bar(std::string_view label, double value, double max_value,
                                    int width = 50);

}  // namespace spacecdn
