// Small-buffer-optimised move-only callable for hot event paths.
//
// des::Simulator stores one action per scheduled event; with std::function
// every capture beyond two pointers heap-allocates, and an open-loop load
// sweep schedules millions of events.  InlineFunction keeps captures up to
// kInlineFunctionBuffer bytes inside the object itself (the event slot pool
// then recycles them allocation-free) and falls back to the heap only for
// oversized captures, preserving correctness for rare fat closures.
//
// Deliberately minimal: void() signature, move-only, no target_type/RTTI.
// Everything the simulator needs, nothing that would grow the per-slot
// footprint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace spacecdn {

/// Inline capture capacity in bytes.  Sized for the load engine's hottest
/// closures (this + a couple of scalars, or one nested completion lambda);
/// larger captures transparently spill to the heap.
inline constexpr std::size_t kInlineFunctionBuffer = 48;

/// Move-only `void()` callable with a fixed inline buffer.
class InlineFunction {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineFunctionBuffer &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      // Oversized or over-aligned capture: spill to the heap, storing the
      // pointer in the buffer.  Rare by construction; correctness first.
      ::new (static_cast<void*>(buffer_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buffer_, buffer_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buffer_, buffer_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buffer_); }

 private:
  struct Ops {
    void (*invoke)(unsigned char* storage);
    /// Move-constructs into `to` and destroys the source (slots never hold
    /// moved-from shells, so one fused operation suffices).
    void (*relocate)(unsigned char* from, unsigned char* to) noexcept;
    void (*destroy)(unsigned char* storage) noexcept;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](unsigned char* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); },
      [](unsigned char* from, unsigned char* to) noexcept {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (static_cast<void*>(to)) Fn(std::move(*src));
        src->~Fn();
      },
      [](unsigned char* storage) noexcept {
        std::launder(reinterpret_cast<Fn*>(storage))->~Fn();
      },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](unsigned char* storage) {
        (**std::launder(reinterpret_cast<Fn**>(storage)))();
      },
      [](unsigned char* from, unsigned char* to) noexcept {
        // The stored pointer is trivially destructible: relocation is a copy.
        ::new (static_cast<void*>(to)) Fn*(*std::launder(reinterpret_cast<Fn**>(from)));
      },
      [](unsigned char* storage) noexcept {
        delete *std::launder(reinterpret_cast<Fn**>(storage));
      },
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buffer_[kInlineFunctionBuffer];
  const Ops* ops_ = nullptr;
};

}  // namespace spacecdn
