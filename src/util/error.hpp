// Error types for the library.
//
// Per C++ Core Guidelines E.2/E.14, errors that a caller cannot reasonably
// prevent are reported via exceptions derived from std::exception; programming
// errors (violated preconditions) are caught with SPACECDN_EXPECT which is
// active in all build types.
#pragma once

#include <stdexcept>
#include <string>

namespace spacecdn {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An entity lookup (city, country, satellite, content item, ...) failed.
class NotFoundError : public Error {
 public:
  using Error::Error;
};

/// A configuration value is out of its documented domain.
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Simulation reached a state that violates a model invariant.
class SimulationError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void precondition_failure(const char* expr, const char* file, int line,
                                       const std::string& message);
}  // namespace detail

}  // namespace spacecdn

/// Precondition check, active in all build types (Core Guidelines I.6).
/// Throws spacecdn::ConfigError on failure so tests can assert on violations.
#define SPACECDN_EXPECT(cond, message)                                              \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      ::spacecdn::detail::precondition_failure(#cond, __FILE__, __LINE__, message); \
    }                                                                               \
  } while (false)
