#include "util/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "util/error.hpp"

namespace spacecdn {

CliArgs::CliArgs(int argc, const char* const* argv) {
  SPACECDN_EXPECT(argc >= 1, "argv must carry the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    SPACECDN_EXPECT(!body.empty() && body[0] != '=', "malformed flag: " + arg);
    // Only --key=value and bare --flag forms: "--key value" is ambiguous
    // with a following positional argument, so it is not supported.
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      flags_[body] = "";  // bare boolean
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  queried_[key] = true;
  return flags_.count(key) != 0;
}

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  queried_[key] = true;
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

double CliArgs::get(const std::string& key, double fallback) const {
  queried_[key] = true;
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  SPACECDN_EXPECT(end != nullptr && *end == '\0' && !it->second.empty(),
                  "flag --" + key + " expects a number, got '" + it->second + "'");
  return value;
}

long CliArgs::get(const std::string& key, long fallback) const {
  queried_[key] = true;
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  // Parse as an integer directly: routing through strtod would silently
  // truncate "--seed=3.7" to 3 and round seeds above 2^53.
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  SPACECDN_EXPECT(!it->second.empty() && end != nullptr && *end == '\0' &&
                      errno != ERANGE,
                  "flag --" + key + " expects an integer, got '" + it->second + "'");
  return value;
}

bool CliArgs::get(const std::string& key, bool fallback) const {
  queried_[key] = true;
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw ConfigError("flag --" + key + " expects a boolean, got '" + v + "'");
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : flags_) {
    if (queried_.find(key) == queried_.end()) out.push_back(key);
  }
  return out;
}

}  // namespace spacecdn
