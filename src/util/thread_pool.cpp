#include "util/thread_pool.hpp"

#include "util/error.hpp"

namespace spacecdn {
namespace {
// Set for the duration of every pool task; parallel_for consults it to run
// nested invocations inline instead of deadlocking in wait_idle.
thread_local bool t_inside_worker = false;
}  // namespace

bool ThreadPool::inside_worker() noexcept { return t_inside_worker; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  SPACECDN_EXPECT(task != nullptr, "cannot submit an empty task");
  {
    const std::lock_guard lock(mutex_);
    SPACECDN_EXPECT(!stopping_, "cannot submit to a stopping pool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  t_inside_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const std::lock_guard lock(mutex_);
      --in_flight_;
    }
    idle_.notify_all();
  }
}

std::size_t ThreadPool::resolve_threads(long requested) {
  SPACECDN_EXPECT(requested >= 0, "--threads must be non-negative");
  if (requested > 0) return static_cast<std::size_t>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace spacecdn
