// Minimal RFC-4180-style CSV writer used by benches and examples to dump
// series that can be re-plotted (the paper's figures are regenerated from
// these files plus the console tables).
#pragma once

#include <initializer_list>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace spacecdn {

/// Streams CSV rows to an std::ostream it does not own.
///
/// Values containing commas, quotes, or newlines are quoted and escaped.
/// Every row must have the same arity as the header; this is checked.
class CsvWriter {
 public:
  /// @param out  destination stream; must outlive the writer.
  /// @param header  column names, written immediately.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Writes one row of preformatted cells.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats each numeric cell with up to 6 significant digits.
  void row_numeric(const std::vector<double>& cells);

  /// Mixed row: first cell a label, rest numeric.
  void row_labeled(std::string_view label, const std::vector<double>& cells);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// Escapes one cell per RFC 4180.
  [[nodiscard]] static std::string escape(std::string_view cell);

  /// Formats a double compactly ("12.5", "0.003", "1e+09").
  [[nodiscard]] static std::string format_number(double v);

 private:
  void write_cells(const std::vector<std::string>& cells);

  std::ostream& out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

/// Splits one CSV line into cells, honouring RFC-4180 quoting ("" escapes a
/// quote inside a quoted cell).  @throws spacecdn::ConfigError on an
/// unterminated quoted cell.
[[nodiscard]] std::vector<std::string> parse_csv_line(std::string_view line);

/// Streaming CSV reader: validates the header on construction, then yields
/// one row of cells per next_row() until the stream drains.
class CsvReader {
 public:
  /// @param in  source stream; must outlive the reader.
  /// @param expected_header  if non-empty, the first line must match exactly
  /// (@throws spacecdn::ConfigError otherwise).
  CsvReader(std::istream& in, std::vector<std::string> expected_header = {});

  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }

  /// Reads the next data row into `cells`; returns false at end of input.
  /// Rows whose arity differs from the header throw spacecdn::ConfigError.
  bool next_row(std::vector<std::string>& cells);

  [[nodiscard]] std::size_t rows_read() const noexcept { return rows_; }

 private:
  std::istream& in_;
  std::vector<std::string> header_;
  std::size_t rows_ = 0;
};

}  // namespace spacecdn
