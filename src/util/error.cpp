#include "util/error.hpp"

#include <sstream>

namespace spacecdn::detail {

void precondition_failure(const char* expr, const char* file, int line,
                          const std::string& message) {
  std::ostringstream os;
  os << "precondition failed: " << message << " [" << expr << " at " << file << ":" << line
     << "]";
  throw ConfigError(os.str());
}

}  // namespace spacecdn::detail
