#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <iomanip>

#include "util/error.hpp"

namespace spacecdn {

ConsoleTable::ConsoleTable(std::vector<std::string> header) : header_(std::move(header)) {
  SPACECDN_EXPECT(!header_.empty(), "table header must not be empty");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  SPACECDN_EXPECT(cells.size() == header_.size(), "table row arity must match header");
  rows_.push_back(std::move(cells));
}

void ConsoleTable::add_row(std::string_view label, const std::vector<double>& values,
                           int decimals) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.emplace_back(label);
  for (double v : values) cells.push_back(format_fixed(v, decimals));
  add_row(std::move(cells));
}

std::string ConsoleTable::format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

bool ConsoleTable::looks_numeric(std::string_view cell) noexcept {
  if (cell.empty()) return false;
  std::size_t i = (cell[0] == '-' || cell[0] == '+') ? 1 : 0;
  if (i == cell.size()) return false;
  bool digit_seen = false;
  for (; i < cell.size(); ++i) {
    const char c = cell[i];
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      digit_seen = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+') {
      return false;
    }
  }
  return digit_seen;
}

void ConsoleTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      const bool right = looks_numeric(row[c]);
      os << (right ? std::right : std::left) << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };

  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string ascii_bar(std::string_view label, double value, double max_value, int width) {
  const double frac = max_value > 0 ? std::clamp(value / max_value, 0.0, 1.0) : 0.0;
  const int filled = static_cast<int>(frac * width + 0.5);
  std::string out;
  out.reserve(label.size() + static_cast<std::size_t>(width) + 24);
  out.append(label);
  out.append("  ");
  out.append(static_cast<std::size_t>(filled), '#');
  out.append(static_cast<std::size_t>(width - filled), ' ');
  char buf[32];
  std::snprintf(buf, sizeof buf, "  %.1f", value);
  out.append(buf);
  return out;
}

}  // namespace spacecdn
