// Minimal command-line flag parsing for the examples and benches.
//
// Supports --key=value and bare --flag booleans; anything not starting with
// "--" is a positional argument ("--key value" is deliberately unsupported:
// it is ambiguous with a following positional).  No registration step -- the
// caller queries by name with a default, so adding a knob to an example is
// one line.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace spacecdn {

/// Parsed argv.
class CliArgs {
 public:
  /// @throws spacecdn::ConfigError on malformed input such as "--=x".
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] const std::string& program() const noexcept { return program_; }
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& key) const;

  /// String value of --key, or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;

  /// Numeric value of --key.  @throws spacecdn::ConfigError when the value
  /// is present but not a number.
  [[nodiscard]] double get(const std::string& key, double fallback) const;
  [[nodiscard]] long get(const std::string& key, long fallback) const;

  /// True when --key was given bare or with a truthy value (1/true/yes/on).
  [[nodiscard]] bool get(const std::string& key, bool fallback) const;

  /// Keys that were provided but never queried; lets examples warn on typos.
  [[nodiscard]] std::vector<std::string> unused() const;

  /// Every parsed --key=value pair, for layering under a scenario file
  /// (sim::ScenarioValues merges the two with CLI winning).
  [[nodiscard]] const std::map<std::string, std::string>& flags() const noexcept {
    return flags_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace spacecdn
