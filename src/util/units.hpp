// Strong unit types used across the library.
//
// The simulator mixes three physical dimensions constantly (time, distance,
// data rate); mixing them up silently is the classic source of latency-model
// bugs.  Following C++ Core Guidelines I.4 ("make interfaces precisely and
// strongly typed"), each dimension gets a tiny value type with explicit
// construction and only the arithmetic that is dimensionally meaningful.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <iosfwd>

namespace spacecdn {

/// Time duration in milliseconds.  The canonical time unit of the simulator.
class Milliseconds {
 public:
  constexpr Milliseconds() noexcept = default;
  constexpr explicit Milliseconds(double ms) noexcept : ms_(ms) {}

  [[nodiscard]] constexpr double value() const noexcept { return ms_; }
  [[nodiscard]] constexpr double seconds() const noexcept { return ms_ / 1000.0; }

  [[nodiscard]] static constexpr Milliseconds from_seconds(double s) noexcept {
    return Milliseconds{s * 1000.0};
  }
  [[nodiscard]] static constexpr Milliseconds from_minutes(double m) noexcept {
    return Milliseconds{m * 60'000.0};
  }

  constexpr Milliseconds& operator+=(Milliseconds o) noexcept { ms_ += o.ms_; return *this; }
  constexpr Milliseconds& operator-=(Milliseconds o) noexcept { ms_ -= o.ms_; return *this; }
  constexpr Milliseconds& operator*=(double k) noexcept { ms_ *= k; return *this; }
  constexpr Milliseconds& operator/=(double k) noexcept { ms_ /= k; return *this; }

  friend constexpr Milliseconds operator+(Milliseconds a, Milliseconds b) noexcept {
    return Milliseconds{a.ms_ + b.ms_};
  }
  friend constexpr Milliseconds operator-(Milliseconds a, Milliseconds b) noexcept {
    return Milliseconds{a.ms_ - b.ms_};
  }
  friend constexpr Milliseconds operator*(Milliseconds a, double k) noexcept {
    return Milliseconds{a.ms_ * k};
  }
  friend constexpr Milliseconds operator*(double k, Milliseconds a) noexcept {
    return Milliseconds{a.ms_ * k};
  }
  friend constexpr Milliseconds operator/(Milliseconds a, double k) noexcept {
    return Milliseconds{a.ms_ / k};
  }
  /// Ratio of two durations is a dimensionless scalar.
  friend constexpr double operator/(Milliseconds a, Milliseconds b) noexcept {
    return a.ms_ / b.ms_;
  }
  friend constexpr auto operator<=>(Milliseconds, Milliseconds) noexcept = default;

 private:
  double ms_ = 0.0;
};

/// Distance in kilometres.
class Kilometers {
 public:
  constexpr Kilometers() noexcept = default;
  constexpr explicit Kilometers(double km) noexcept : km_(km) {}

  [[nodiscard]] constexpr double value() const noexcept { return km_; }
  [[nodiscard]] constexpr double meters() const noexcept { return km_ * 1000.0; }

  constexpr Kilometers& operator+=(Kilometers o) noexcept { km_ += o.km_; return *this; }
  constexpr Kilometers& operator-=(Kilometers o) noexcept { km_ -= o.km_; return *this; }

  friend constexpr Kilometers operator+(Kilometers a, Kilometers b) noexcept {
    return Kilometers{a.km_ + b.km_};
  }
  friend constexpr Kilometers operator-(Kilometers a, Kilometers b) noexcept {
    return Kilometers{a.km_ - b.km_};
  }
  friend constexpr Kilometers operator*(Kilometers a, double k) noexcept {
    return Kilometers{a.km_ * k};
  }
  friend constexpr Kilometers operator*(double k, Kilometers a) noexcept {
    return Kilometers{a.km_ * k};
  }
  friend constexpr Kilometers operator/(Kilometers a, double k) noexcept {
    return Kilometers{a.km_ / k};
  }
  friend constexpr double operator/(Kilometers a, Kilometers b) noexcept {
    return a.km_ / b.km_;
  }
  friend constexpr auto operator<=>(Kilometers, Kilometers) noexcept = default;

 private:
  double km_ = 0.0;
};

/// Data rate in megabits per second.
class Mbps {
 public:
  constexpr Mbps() noexcept = default;
  constexpr explicit Mbps(double v) noexcept : mbps_(v) {}

  [[nodiscard]] constexpr double value() const noexcept { return mbps_; }
  /// Bytes transferable per millisecond at this rate.
  [[nodiscard]] constexpr double bytes_per_ms() const noexcept {
    return mbps_ * 1e6 / 8.0 / 1000.0;
  }

  friend constexpr Mbps operator*(Mbps a, double k) noexcept { return Mbps{a.mbps_ * k}; }
  friend constexpr Mbps operator*(double k, Mbps a) noexcept { return Mbps{a.mbps_ * k}; }
  friend constexpr auto operator<=>(Mbps, Mbps) noexcept = default;

 private:
  double mbps_ = 0.0;
};

/// Data volume in megabytes (decimal, 1 MB = 1e6 bytes).
class Megabytes {
 public:
  constexpr Megabytes() noexcept = default;
  constexpr explicit Megabytes(double v) noexcept : mb_(v) {}

  [[nodiscard]] constexpr double value() const noexcept { return mb_; }
  [[nodiscard]] constexpr double bytes() const noexcept { return mb_ * 1e6; }
  [[nodiscard]] constexpr double megabits() const noexcept { return mb_ * 8.0; }

  [[nodiscard]] static constexpr Megabytes from_bytes(double b) noexcept {
    return Megabytes{b / 1e6};
  }

  constexpr Megabytes& operator+=(Megabytes o) noexcept { mb_ += o.mb_; return *this; }
  constexpr Megabytes& operator-=(Megabytes o) noexcept { mb_ -= o.mb_; return *this; }

  friend constexpr Megabytes operator+(Megabytes a, Megabytes b) noexcept {
    return Megabytes{a.mb_ + b.mb_};
  }
  friend constexpr Megabytes operator-(Megabytes a, Megabytes b) noexcept {
    return Megabytes{a.mb_ - b.mb_};
  }
  friend constexpr Megabytes operator*(Megabytes a, double k) noexcept {
    return Megabytes{a.mb_ * k};
  }
  friend constexpr auto operator<=>(Megabytes, Megabytes) noexcept = default;

 private:
  double mb_ = 0.0;
};

/// Time to push `volume` through a link of rate `rate` (transmission delay).
[[nodiscard]] constexpr Milliseconds transmission_delay(Megabytes volume, Mbps rate) noexcept {
  return Milliseconds{volume.megabits() / rate.value() * 1000.0};
}

namespace literals {

constexpr Milliseconds operator""_ms(long double v) noexcept {
  return Milliseconds{static_cast<double>(v)};
}
constexpr Milliseconds operator""_ms(unsigned long long v) noexcept {
  return Milliseconds{static_cast<double>(v)};
}
constexpr Kilometers operator""_km(long double v) noexcept {
  return Kilometers{static_cast<double>(v)};
}
constexpr Kilometers operator""_km(unsigned long long v) noexcept {
  return Kilometers{static_cast<double>(v)};
}
constexpr Mbps operator""_mbps(long double v) noexcept {
  return Mbps{static_cast<double>(v)};
}
constexpr Mbps operator""_mbps(unsigned long long v) noexcept {
  return Mbps{static_cast<double>(v)};
}
constexpr Megabytes operator""_mb(long double v) noexcept {
  return Megabytes{static_cast<double>(v)};
}
constexpr Megabytes operator""_mb(unsigned long long v) noexcept {
  return Megabytes{static_cast<double>(v)};
}

}  // namespace literals

std::ostream& operator<<(std::ostream& os, Milliseconds v);
std::ostream& operator<<(std::ostream& os, Kilometers v);
std::ostream& operator<<(std::ostream& os, Mbps v);
std::ostream& operator<<(std::ostream& os, Megabytes v);

}  // namespace spacecdn
