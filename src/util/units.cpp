#include "util/units.hpp"

#include <ostream>

namespace spacecdn {

std::ostream& operator<<(std::ostream& os, Milliseconds v) { return os << v.value() << " ms"; }
std::ostream& operator<<(std::ostream& os, Kilometers v) { return os << v.value() << " km"; }
std::ostream& operator<<(std::ostream& os, Mbps v) { return os << v.value() << " Mbps"; }
std::ostream& operator<<(std::ostream& os, Megabytes v) { return os << v.value() << " MB"; }

}  // namespace spacecdn
