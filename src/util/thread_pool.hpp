// A small fixed-size thread pool for sharded bench sweeps.
//
// Design point: the benches need *deterministic* parallelism -- results
// bit-identical to a serial run -- so the pool deliberately offers a static
// sharding helper (parallel_for) where every task index is processed exactly
// once and the caller merges per-index outputs in index order.  Which worker
// runs which index never influences results, only wall-clock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace spacecdn {

/// Fixed-size worker pool with a FIFO task queue.
class ThreadPool {
 public:
  /// @param threads  worker count; 0 means std::thread::hardware_concurrency
  /// (itself falling back to 1 when unknown).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task.  Tasks must not throw; an escaping exception
  /// terminates (workers run them bare).  parallel_for wraps its work with
  /// exception capture, so prefer it for anything that can fail.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// Runs `fn(i)` for every i in [0, count) and blocks until all are done.
  /// fn must write its result into caller-owned per-index storage; the
  /// execution order is unspecified but every index runs exactly once.
  ///
  /// - Indices are handed out in contiguous chunks through one atomic
  ///   cursor (grain scales with count/workers), and `fn` is a template
  ///   parameter, so a million-index sweep costs neither queue churn nor a
  ///   std::function indirection per index.
  /// - Re-entrant: called from inside a worker (a nested parallel_for), it
  ///   runs every index inline on the calling thread.  The naive
  ///   alternative -- submitting lanes and blocking in wait_idle while
  ///   being one of the tasks wait_idle waits for -- deadlocks a
  ///   single-worker pool.
  /// - The first exception thrown by any index is captured and rethrown on
  ///   the calling thread after every lane has stopped; remaining indices
  ///   are abandoned (no partial-result contract under failure).
  template <typename Fn>
  void parallel_for(std::size_t count, const Fn& fn) {
    if (count == 0) return;
    if (inside_worker() || workers_.size() <= 1) {
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    struct Shared {
      std::atomic<std::size_t> cursor{0};
      std::atomic<bool> failed{false};
      std::mutex mutex;
      std::exception_ptr error;
    };
    auto shared = std::make_shared<Shared>();
    // Chunks amortise the cursor across many indices while still giving
    // ~8 hand-outs per worker for dynamic load balance.
    const std::size_t grain =
        std::max<std::size_t>(1, count / (workers_.size() * 8));
    const std::size_t lanes = std::min(count, workers_.size());
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      submit([shared, count, grain, &fn] {
        for (;;) {
          if (shared->failed.load(std::memory_order_acquire)) return;
          const std::size_t begin =
              shared->cursor.fetch_add(grain, std::memory_order_relaxed);
          if (begin >= count) return;
          const std::size_t end = std::min(count, begin + grain);
          try {
            for (std::size_t i = begin; i < end; ++i) fn(i);
          } catch (...) {
            const std::lock_guard lock(shared->mutex);
            if (!shared->error) shared->error = std::current_exception();
            shared->failed.store(true, std::memory_order_release);
            return;
          }
        }
      });
    }
    wait_idle();
    if (shared->error) std::rethrow_exception(shared->error);
  }

  /// The worker count a `--threads=N` flag resolves to: N itself, or
  /// hardware concurrency when N == 0.
  [[nodiscard]] static std::size_t resolve_threads(long requested);

 private:
  void worker_loop();
  /// True on a thread currently executing one of this process's pool tasks
  /// (any pool -- the guard is about re-entrancy, not ownership).
  [[nodiscard]] static bool inside_worker() noexcept;

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace spacecdn
