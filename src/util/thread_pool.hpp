// A small fixed-size thread pool for sharded bench sweeps.
//
// Design point: the benches need *deterministic* parallelism -- results
// bit-identical to a serial run -- so the pool deliberately offers a static
// sharding helper (parallel_for) where every task index is processed exactly
// once and the caller merges per-index outputs in index order.  Which worker
// runs which index never influences results, only wall-clock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spacecdn {

/// Fixed-size worker pool with a FIFO task queue.
class ThreadPool {
 public:
  /// @param threads  worker count; 0 means std::thread::hardware_concurrency
  /// (itself falling back to 1 when unknown).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task.  Tasks must not throw; an escaping exception
  /// terminates (workers run them bare).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// Runs `fn(i)` for every i in [0, count), distributing indices across the
  /// pool dynamically (atomic work-stealing counter), and blocks until all
  /// are done.  fn must write its result into caller-owned per-index storage;
  /// the execution order is unspecified but every index runs exactly once.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// The worker count a `--threads=N` flag resolves to: N itself, or
  /// hardware concurrency when N == 0.
  [[nodiscard]] static std::size_t resolve_threads(long requested);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace spacecdn
