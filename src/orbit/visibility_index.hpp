// Spatial-grid visibility index over sub-satellite points.
//
// Ground-to-satellite visibility is a spherical-cap test: a satellite at
// altitude h is visible above elevation e iff the Earth-central angle between
// the ground point and the sub-satellite point is at most
// psi = acos(R cos e / (R + h)) - e  (geo::coverage_radius).  Bucketing
// satellites by sub-satellite latitude/longitude therefore turns every
// visibility query from an O(N) scan over the constellation into a lookup of
// the few grid cells intersecting the cap — the difference between Shell 1
// (1,584 satellites) and a 10k-satellite Gen2 stack being queryable a
// million times per run.
//
// The index stores satellite ids in CSR layout (one contiguous id array plus
// per-bucket offsets) and is rebuilt from struct-of-arrays ECEF positions on
// every EphemerisSnapshot advance.  Queries return a superset of the truly
// visible satellites (the cap's lat/lon bounding box, padded for rounding);
// callers apply the exact elevation test, so results are identical to the
// brute-force scan.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/coordinates.hpp"

namespace spacecdn::orbit {

class VisibilityIndex {
 public:
  VisibilityIndex() = default;

  /// Rebuild from struct-of-arrays ECEF positions (x/y/z in km, indexed by
  /// satellite id).  Reuses internal buffers across rebuilds.
  void rebuild(const std::vector<double>& x, const std::vector<double>& y,
               const std::vector<double>& z);

  /// Append to `out` every satellite whose sub-satellite point lies in a grid
  /// cell intersecting the spherical cap of radius `psi_deg` around `ground`.
  /// The result is a superset of the satellites within the cap, in ascending
  /// id order per bucket but NOT globally sorted; `out` is not cleared.
  void candidates(const geo::GeoPoint& ground, double psi_deg,
                  std::vector<std::uint32_t>& out) const;

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  /// Number of grid cells (fixed by the cell resolution).
  [[nodiscard]] static constexpr std::uint32_t bucket_count() noexcept {
    return kLatCells * kLonCells;
  }

 private:
  // 3.75-degree cells: 48 latitude rows x 96 longitude columns = 4,608
  // buckets, ~2 satellites per bucket at Gen2 scale.  A user-terminal query
  // (psi ~ 12 degrees) touches ~7 rows x ~9 columns near the equator.
  static constexpr std::uint32_t kLatCells = 48;
  static constexpr std::uint32_t kLonCells = 96;
  static constexpr double kLatCellDeg = 180.0 / kLatCells;
  static constexpr double kLonCellDeg = 360.0 / kLonCells;

  [[nodiscard]] static std::uint32_t lat_row(double lat_deg) noexcept;
  [[nodiscard]] static std::uint32_t lon_col(double lon_deg) noexcept;

  std::vector<std::uint32_t> offsets_;  ///< CSR: bucket b spans ids_[offsets_[b] .. offsets_[b+1])
  std::vector<std::uint32_t> ids_;      ///< satellite ids grouped by bucket, ascending within
  std::vector<std::uint32_t> bucket_of_;  ///< scratch: bucket of each satellite
  std::uint32_t size_ = 0;
};

}  // namespace spacecdn::orbit
