#include "orbit/ground_track.hpp"

#include <algorithm>

#include "geo/visibility.hpp"
#include "util/error.hpp"

namespace spacecdn::orbit {

GroundTrackPredictor::GroundTrackPredictor(const WalkerConstellation& constellation,
                                           Milliseconds scan_step,
                                           Milliseconds refine_tolerance)
    : constellation_(&constellation),
      scan_step_(scan_step),
      refine_tolerance_(refine_tolerance) {
  SPACECDN_EXPECT(scan_step.value() > 0.0, "scan step must be positive");
  SPACECDN_EXPECT(refine_tolerance.value() > 0.0, "refine tolerance must be positive");
}

double GroundTrackPredictor::elevation(std::uint32_t sat, const geo::GeoPoint& point,
                                       Milliseconds t) const {
  return geo::elevation_angle_deg(point, constellation_->orbit(sat).position_ecef(t));
}

Milliseconds GroundTrackPredictor::bisect_crossing(std::uint32_t sat,
                                                   const geo::GeoPoint& point,
                                                   double mask, Milliseconds lo,
                                                   Milliseconds hi) const {
  const bool lo_visible = elevation(sat, point, lo) >= mask;
  while ((hi - lo) > refine_tolerance_) {
    const Milliseconds mid{(lo.value() + hi.value()) / 2.0};
    if ((elevation(sat, point, mid) >= mask) == lo_visible) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

std::vector<Pass> GroundTrackPredictor::passes(std::uint32_t sat,
                                               const geo::GeoPoint& point,
                                               double min_elevation_deg,
                                               Milliseconds start, Milliseconds end) const {
  SPACECDN_EXPECT(end >= start, "observation window must be ordered");

  std::vector<Pass> out;
  std::optional<Pass> current;
  bool prev_visible = elevation(sat, point, start) >= min_elevation_deg;
  if (prev_visible) current = Pass{start, end, elevation(sat, point, start)};

  Milliseconds prev = start;
  for (Milliseconds t = start + scan_step_; prev < end; t += scan_step_) {
    const Milliseconds clamped = std::min(t, end);
    const double elev = elevation(sat, point, clamped);
    const bool visible = elev >= min_elevation_deg;

    if (visible && current) {
      current->max_elevation_deg = std::max(current->max_elevation_deg, elev);
    }
    if (visible && !prev_visible) {
      const Milliseconds rise =
          bisect_crossing(sat, point, min_elevation_deg, prev, clamped);
      current = Pass{rise, end, elev};
    } else if (!visible && prev_visible) {
      const Milliseconds set =
          bisect_crossing(sat, point, min_elevation_deg, prev, clamped);
      if (current) {
        current->set = set;
        out.push_back(*current);
        current.reset();
      }
    }
    prev_visible = visible;
    prev = clamped;
  }
  if (current) {
    current->set = end;
    out.push_back(*current);
  }
  return out;
}

std::optional<Milliseconds> GroundTrackPredictor::next_rise(std::uint32_t sat,
                                                            const geo::GeoPoint& point,
                                                            double min_elevation_deg,
                                                            Milliseconds from,
                                                            Milliseconds horizon) const {
  const auto found = passes(sat, point, min_elevation_deg, from, from + horizon);
  for (const Pass& pass : found) {
    if (pass.rise > from) return pass.rise;
  }
  return std::nullopt;
}

PassStatistics GroundTrackPredictor::statistics(std::uint32_t sat,
                                                const geo::GeoPoint& point,
                                                double min_elevation_deg,
                                                Milliseconds start, Milliseconds end) const {
  const auto found = passes(sat, point, min_elevation_deg, start, end);
  PassStatistics stats;
  stats.pass_count = static_cast<std::uint32_t>(found.size());
  if (found.empty()) {
    stats.max_gap = end - start;
    return stats;
  }
  double total_duration = 0.0;
  for (const Pass& pass : found) total_duration += pass.duration().value();
  stats.mean_duration = Milliseconds{total_duration / static_cast<double>(found.size())};

  double max_gap = (found.front().rise - start).value();
  for (std::size_t i = 1; i < found.size(); ++i) {
    max_gap = std::max(max_gap, (found[i].rise - found[i - 1].set).value());
  }
  max_gap = std::max(max_gap, (end - found.back().set).value());
  stats.max_gap = Milliseconds{max_gap};
  return stats;
}

}  // namespace spacecdn::orbit
