// Circular-orbit propagation.
//
// LEO mega-constellation shells are, to excellent approximation for latency
// work, circular orbits: eccentricity < 0.001 for Starlink Shell 1.  We
// propagate the two-body problem analytically (constant angular rate) and
// convert to ECEF by un-rotating the Earth, which is exact for a spherical
// Earth and ignores J2 precession (irrelevant over the minutes-to-hours
// horizons simulated here; noted in DESIGN.md).
#pragma once

#include "geo/coordinates.hpp"
#include "util/units.hpp"

namespace spacecdn::orbit {

/// A circular orbit, parameterised by altitude, inclination, right ascension
/// of the ascending node (RAAN), and the satellite's phase along the orbit at
/// t = 0 (argument of latitude, degrees).
class CircularOrbit {
 public:
  /// @throws spacecdn::ConfigError if altitude is non-positive or the
  /// inclination is outside [0, 180].
  CircularOrbit(Kilometers altitude, double inclination_deg, double raan_deg,
                double initial_phase_deg);

  [[nodiscard]] Kilometers altitude() const noexcept { return altitude_; }
  [[nodiscard]] double inclination_deg() const noexcept { return inclination_deg_; }
  [[nodiscard]] double raan_deg() const noexcept { return raan_deg_; }
  [[nodiscard]] double initial_phase_deg() const noexcept { return initial_phase_deg_; }

  /// Orbital radius from the Earth's centre.
  [[nodiscard]] Kilometers semi_major_axis() const noexcept;

  /// Orbital period (Kepler's third law).
  [[nodiscard]] Milliseconds period() const noexcept;

  /// Mean motion, rad/s.
  [[nodiscard]] double mean_motion_rad_per_sec() const noexcept;

  /// Orbital speed, km/s.
  [[nodiscard]] double speed_km_per_sec() const noexcept;

  /// Satellite position at simulation time `t` in the Earth-centred inertial
  /// frame (aligned with ECEF at t = 0).
  [[nodiscard]] geo::Ecef position_eci(Milliseconds t) const noexcept;

  /// Satellite position at simulation time `t` in the rotating ECEF frame.
  [[nodiscard]] geo::Ecef position_ecef(Milliseconds t) const noexcept;

  /// Sub-satellite point (geodetic, spherical model) at time `t`.
  [[nodiscard]] geo::GeoPoint subsatellite_point(Milliseconds t) const noexcept;

 private:
  Kilometers altitude_;
  double inclination_deg_;
  double raan_deg_;
  double initial_phase_deg_;
};

}  // namespace spacecdn::orbit
