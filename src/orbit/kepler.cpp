#include "orbit/kepler.hpp"

#include <cmath>

#include "geo/earth.hpp"
#include "util/error.hpp"

namespace spacecdn::orbit {

using geo::deg_to_rad;

CircularOrbit::CircularOrbit(Kilometers altitude, double inclination_deg, double raan_deg,
                             double initial_phase_deg)
    : altitude_(altitude),
      inclination_deg_(inclination_deg),
      raan_deg_(raan_deg),
      initial_phase_deg_(initial_phase_deg) {
  SPACECDN_EXPECT(altitude.value() > 0.0, "orbit altitude must be positive");
  SPACECDN_EXPECT(inclination_deg >= 0.0 && inclination_deg <= 180.0,
                  "inclination must be within [0, 180] degrees");
}

Kilometers CircularOrbit::semi_major_axis() const noexcept {
  return Kilometers{geo::kEarthRadiusKm + altitude_.value()};
}

Milliseconds CircularOrbit::period() const noexcept {
  const double a = semi_major_axis().value();
  const double t_sec = 2.0 * geo::kPi * std::sqrt(a * a * a / geo::kEarthMuKm3PerS2);
  return Milliseconds::from_seconds(t_sec);
}

double CircularOrbit::mean_motion_rad_per_sec() const noexcept {
  const double a = semi_major_axis().value();
  return std::sqrt(geo::kEarthMuKm3PerS2 / (a * a * a));
}

double CircularOrbit::speed_km_per_sec() const noexcept {
  return mean_motion_rad_per_sec() * semi_major_axis().value();
}

geo::Ecef CircularOrbit::position_eci(Milliseconds t) const noexcept {
  const double u = deg_to_rad(initial_phase_deg_) + mean_motion_rad_per_sec() * t.seconds();
  const double i = deg_to_rad(inclination_deg_);
  const double omega = deg_to_rad(raan_deg_);
  const double r = semi_major_axis().value();

  // Position in the orbital plane (perifocal frame, circular orbit).
  const double xp = r * std::cos(u);
  const double yp = r * std::sin(u);

  // Rotate by inclination about the x axis, then by RAAN about the z axis.
  const double x1 = xp;
  const double y1 = yp * std::cos(i);
  const double z1 = yp * std::sin(i);

  return geo::Ecef{x1 * std::cos(omega) - y1 * std::sin(omega),
                   x1 * std::sin(omega) + y1 * std::cos(omega), z1};
}

geo::Ecef CircularOrbit::position_ecef(Milliseconds t) const noexcept {
  const geo::Ecef p = position_eci(t);
  // The Earth has rotated by theta since t = 0; un-rotate the inertial
  // position about the z axis to express it in the rotating frame.
  const double theta = geo::kEarthRotationRadPerSec * t.seconds();
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  return geo::Ecef{p.x * c + p.y * s, -p.x * s + p.y * c, p.z};
}

geo::GeoPoint CircularOrbit::subsatellite_point(Milliseconds t) const noexcept {
  geo::GeoPoint gp = geo::to_geodetic_spherical(position_ecef(t));
  gp.alt_km = 0.0;
  return gp;
}

}  // namespace spacecdn::orbit
