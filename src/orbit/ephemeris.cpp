#include "orbit/ephemeris.hpp"

#include "obs/profile.hpp"
#include "util/error.hpp"

namespace spacecdn::orbit {

EphemerisSnapshot::EphemerisSnapshot(const WalkerConstellation& constellation,
                                     Milliseconds t)
    : time_(t) {
  SPACECDN_PROFILE("EphemerisSnapshot::build");
  positions_ = constellation.positions_ecef(t);
}

const geo::Ecef& EphemerisSnapshot::position(std::uint32_t sat_id) const {
  SPACECDN_EXPECT(sat_id < positions_.size(), "satellite id out of range");
  return positions_[sat_id];
}

std::vector<std::uint32_t> EphemerisSnapshot::visible_satellites(
    const geo::GeoPoint& ground, double min_elevation_deg) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t id = 0; id < positions_.size(); ++id) {
    if (geo::is_visible(ground, positions_[id], min_elevation_deg)) out.push_back(id);
  }
  return out;
}

std::optional<std::uint32_t> EphemerisSnapshot::serving_satellite(
    const geo::GeoPoint& ground, double min_elevation_deg) const {
  std::optional<std::uint32_t> best;
  double best_elev = min_elevation_deg;
  for (std::uint32_t id = 0; id < positions_.size(); ++id) {
    const double elev = geo::elevation_angle_deg(ground, positions_[id]);
    if (elev >= best_elev) {
      best_elev = elev;
      best = id;
    }
  }
  return best;
}

Kilometers EphemerisSnapshot::isl_distance(std::uint32_t a, std::uint32_t b) const {
  SPACECDN_EXPECT(a < positions_.size() && b < positions_.size(),
                  "satellite id out of range");
  return geo::euclidean_distance(positions_[a], positions_[b]);
}

Kilometers EphemerisSnapshot::slant_range(const geo::GeoPoint& ground,
                                          std::uint32_t sat_id) const {
  SPACECDN_EXPECT(sat_id < positions_.size(), "satellite id out of range");
  return geo::slant_range(ground, positions_[sat_id]);
}

}  // namespace spacecdn::orbit
