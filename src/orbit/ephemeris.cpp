#include "orbit/ephemeris.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "geo/batch.hpp"
#include "obs/profile.hpp"
#include "util/error.hpp"

namespace spacecdn::orbit {

namespace {

std::uint64_t next_epoch() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

// Per-thread elevation buffer for the batched kernels: queries run inside
// parallel routing sweeps, and thread_local keeps them allocation-free
// without sharing.
std::vector<double>& elevation_scratch() {
  thread_local std::vector<double> scratch;
  return scratch;
}

}  // namespace

EphemerisSnapshot::EphemerisSnapshot(const WalkerConstellation& constellation,
                                     Milliseconds t)
    : constellation_(&constellation), time_(t) {
  SPACECDN_PROFILE("EphemerisSnapshot::build");
  constellation_->positions_ecef_into(t, x_, y_, z_);
  index_.rebuild(x_, y_, z_);
  epoch_ = next_epoch();
}

void EphemerisSnapshot::advance(Milliseconds t) {
  SPACECDN_PROFILE("EphemerisSnapshot::advance");
  time_ = t;
  constellation_->positions_ecef_into(t, x_, y_, z_);
  index_.rebuild(x_, y_, z_);
  epoch_ = next_epoch();
}

geo::Ecef EphemerisSnapshot::position(std::uint32_t sat_id) const {
  SPACECDN_EXPECT(sat_id < x_.size(), "satellite id out of range");
  return geo::Ecef{x_[sat_id], y_[sat_id], z_[sat_id]};
}

double EphemerisSnapshot::query_psi_deg(double min_elevation_deg) const {
  return geo::coverage_central_angle_deg(constellation_->max_altitude(),
                                         min_elevation_deg);
}

std::vector<std::uint32_t> EphemerisSnapshot::visible_satellites(
    const geo::GeoPoint& ground, double min_elevation_deg) const {
  // Below-horizon queries have no coverage cap to bound the cells; scan.
  if (min_elevation_deg <= 0.0) return visible_satellites_scan(ground, min_elevation_deg);

  std::vector<std::uint32_t> out;
  index_.candidates(ground, query_psi_deg(min_elevation_deg), out);
  std::sort(out.begin(), out.end());

  // Batched gather over the SoA arrays: bit-identical per-element math to
  // the scalar is_visible loop, so the kept set cannot differ.
  const geo::Ecef g = geo::to_ecef_spherical(ground);
  std::vector<double>& elev = elevation_scratch();
  elev.resize(out.size());
  geo::elevation_angles_deg(g, x_, y_, z_, out, elev);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (elev[i] >= min_elevation_deg) out[kept++] = out[i];
  }
  out.resize(kept);
  return out;
}

std::optional<std::uint32_t> EphemerisSnapshot::serving_satellite(
    const geo::GeoPoint& ground, double min_elevation_deg) const {
  if (min_elevation_deg <= 0.0) return serving_satellite_scan(ground, min_elevation_deg);

  thread_local std::vector<std::uint32_t> scratch;
  scratch.clear();
  index_.candidates(ground, query_psi_deg(min_elevation_deg), scratch);

  const geo::Ecef g = geo::to_ecef_spherical(ground);
  std::vector<double>& elev = elevation_scratch();
  elev.resize(scratch.size());
  geo::elevation_angles_deg(g, x_, y_, z_, scratch, elev);
  std::optional<std::uint32_t> best;
  double best_elev = min_elevation_deg;
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    const std::uint32_t id = scratch[i];
    if (elev[i] < best_elev) continue;
    // Strictly-better elevation wins; an exact tie goes to the lowest id, so
    // the result does not depend on bucket enumeration order.
    if (!best || elev[i] > best_elev || id < *best) {
      best_elev = elev[i];
      best = id;
    }
  }
  return best;
}

std::vector<std::uint32_t> EphemerisSnapshot::visible_satellites_scan(
    const geo::GeoPoint& ground, double min_elevation_deg) const {
  // Contiguous batch over the full SoA arrays: the whole-constellation scan
  // is exactly the shape the vectorized kernel is for.
  std::vector<std::uint32_t> out;
  const geo::Ecef g = geo::to_ecef_spherical(ground);
  std::vector<double>& elev = elevation_scratch();
  elev.resize(x_.size());
  geo::elevation_angles_deg(g, x_, y_, z_, elev);
  for (std::uint32_t id = 0; id < size(); ++id) {
    if (elev[id] >= min_elevation_deg) out.push_back(id);
  }
  return out;
}

std::optional<std::uint32_t> EphemerisSnapshot::serving_satellite_scan(
    const geo::GeoPoint& ground, double min_elevation_deg) const {
  const geo::Ecef g = geo::to_ecef_spherical(ground);
  std::vector<double>& elev = elevation_scratch();
  elev.resize(x_.size());
  geo::elevation_angles_deg(g, x_, y_, z_, elev);
  std::optional<std::uint32_t> best;
  double best_elev = min_elevation_deg;
  for (std::uint32_t id = 0; id < size(); ++id) {
    if (elev[id] < best_elev) continue;
    if (!best || elev[id] > best_elev) {  // ascending ids: ties keep the lowest id
      best_elev = elev[id];
      best = id;
    }
  }
  return best;
}

Kilometers EphemerisSnapshot::isl_distance(std::uint32_t a, std::uint32_t b) const {
  SPACECDN_EXPECT(a < x_.size() && b < x_.size(), "satellite id out of range");
  const double dx = x_[a] - x_[b];
  const double dy = y_[a] - y_[b];
  const double dz = z_[a] - z_[b];
  return Kilometers{std::sqrt(dx * dx + dy * dy + dz * dz)};
}

Kilometers EphemerisSnapshot::slant_range(const geo::GeoPoint& ground,
                                          std::uint32_t sat_id) const {
  SPACECDN_EXPECT(sat_id < x_.size(), "satellite id out of range");
  return geo::slant_range(ground, position(sat_id));
}

}  // namespace spacecdn::orbit
