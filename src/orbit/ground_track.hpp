// Ground-track and pass prediction.
//
// Both content bubbles and video striping rely on the *predictability* of
// LEO orbits (paper section 5: "Given the predictable nature of both the
// satellite orbits and content popularity ...").  This module answers the
// operational questions: when does a satellite rise over a point, how long
// does it dwell, and when does it come back (the ~90-minute revisit the
// paper quotes).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/coordinates.hpp"
#include "orbit/walker.hpp"

namespace spacecdn::orbit {

/// One visibility interval of a satellite over a ground point.
struct Pass {
  Milliseconds rise{0.0};  ///< first instant at/above the elevation mask
  Milliseconds set{0.0};   ///< first instant back below the mask
  double max_elevation_deg = 0.0;

  [[nodiscard]] Milliseconds duration() const noexcept { return set - rise; }
};

/// Aggregate pass behaviour over an observation window.
struct PassStatistics {
  std::uint32_t pass_count = 0;
  Milliseconds mean_duration{0.0};
  Milliseconds max_gap{0.0};  ///< longest interval with the satellite unseen
};

/// Predicts passes by coarse scanning plus bisection refinement of the rise
/// and set times (accurate to `refine_tolerance`).
class GroundTrackPredictor {
 public:
  explicit GroundTrackPredictor(const WalkerConstellation& constellation,
                                Milliseconds scan_step = Milliseconds::from_seconds(20.0),
                                Milliseconds refine_tolerance = Milliseconds{100.0});

  /// All passes of `sat` over `point` at >= `min_elevation_deg` within
  /// [start, end).  A pass in progress at `start` is reported as rising at
  /// `start`; one still in progress at `end` sets at `end`.
  [[nodiscard]] std::vector<Pass> passes(std::uint32_t sat, const geo::GeoPoint& point,
                                         double min_elevation_deg, Milliseconds start,
                                         Milliseconds end) const;

  /// The next time `sat` rises over `point` at/after `from` (searching up to
  /// `horizon` ahead); nullopt if it never does within the horizon.
  [[nodiscard]] std::optional<Milliseconds> next_rise(std::uint32_t sat,
                                                      const geo::GeoPoint& point,
                                                      double min_elevation_deg,
                                                      Milliseconds from,
                                                      Milliseconds horizon) const;

  /// Pass statistics over a window.
  [[nodiscard]] PassStatistics statistics(std::uint32_t sat, const geo::GeoPoint& point,
                                          double min_elevation_deg, Milliseconds start,
                                          Milliseconds end) const;

 private:
  [[nodiscard]] double elevation(std::uint32_t sat, const geo::GeoPoint& point,
                                 Milliseconds t) const;
  /// Bisects the mask crossing within (lo, hi], where the predicate
  /// "elevation >= mask" differs at the two ends.
  [[nodiscard]] Milliseconds bisect_crossing(std::uint32_t sat, const geo::GeoPoint& point,
                                             double mask, Milliseconds lo,
                                             Milliseconds hi) const;

  const WalkerConstellation* constellation_;
  Milliseconds scan_step_;
  Milliseconds refine_tolerance_;
};

}  // namespace spacecdn::orbit
