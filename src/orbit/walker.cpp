#include "orbit/walker.hpp"

#include <cmath>
#include <cstdint>

#include "util/error.hpp"

namespace spacecdn::orbit {

WalkerConstellation::WalkerConstellation(const WalkerDesign& design) : design_(design) {
  SPACECDN_EXPECT(design.planes > 0, "constellation must have at least one plane");
  SPACECDN_EXPECT(design.sats_per_plane > 0, "planes must hold at least one satellite");
  SPACECDN_EXPECT(design.phasing < design.planes,
                  "Walker phasing factor must be < number of planes");

  const double raan_step = 360.0 / design.planes;
  const double slot_step = 360.0 / design.sats_per_plane;
  const double phase_step =
      design.phasing * 360.0 / static_cast<double>(design.total_satellites());

  orbits_.reserve(design.total_satellites());
  for (std::uint32_t p = 0; p < design.planes; ++p) {
    for (std::uint32_t s = 0; s < design.sats_per_plane; ++s) {
      const double raan = p * raan_step;
      const double phase = s * slot_step + p * phase_step;
      orbits_.emplace_back(design.altitude, design.inclination_deg, raan, phase);
    }
  }
}

SatelliteIndex WalkerConstellation::index_of(std::uint32_t sat_id) const {
  SPACECDN_EXPECT(sat_id < size(), "satellite id out of range");
  return SatelliteIndex{sat_id / design_.sats_per_plane, sat_id % design_.sats_per_plane};
}

std::uint32_t WalkerConstellation::id_of(SatelliteIndex idx) const {
  SPACECDN_EXPECT(idx.plane < design_.planes && idx.in_plane < design_.sats_per_plane,
                  "satellite index out of range");
  return idx.plane * design_.sats_per_plane + idx.in_plane;
}

const CircularOrbit& WalkerConstellation::orbit(std::uint32_t sat_id) const {
  SPACECDN_EXPECT(sat_id < size(), "satellite id out of range");
  return orbits_[sat_id];
}

std::vector<geo::Ecef> WalkerConstellation::positions_ecef(Milliseconds t) const {
  std::vector<geo::Ecef> out;
  out.reserve(orbits_.size());
  for (const auto& orbit : orbits_) out.push_back(orbit.position_ecef(t));
  return out;
}

std::vector<std::uint32_t> WalkerConstellation::grid_neighbors(std::uint32_t sat_id) const {
  const SatelliteIndex idx = index_of(sat_id);
  const std::uint32_t p = design_.planes;
  const std::uint32_t s = design_.sats_per_plane;
  const double slot_step = 360.0 / s;
  const double phase_step =
      design_.phasing * 360.0 / static_cast<double>(design_.total_satellites());

  std::vector<std::uint32_t> out;
  out.reserve(4);
  // Intra-plane: next and previous slot (always present when s > 1).
  if (s > 1) {
    out.push_back(id_of({idx.plane, (idx.in_plane + 1) % s}));
    out.push_back(id_of({idx.plane, (idx.in_plane + s - 1) % s}));
  }
  // Inter-plane: the *phase-nearest* slot in each adjacent plane.  Using the
  // same slot index would leave the plane wrap-around seam with partners up
  // to ~90 degrees apart along-track -- beyond optical line of sight.  Real
  // ISL terminals track the nearest neighbour, which this selects.
  if (p > 1) {
    const double my_phase = idx.in_plane * slot_step + idx.plane * phase_step;
    for (const std::uint32_t neighbor_plane : {(idx.plane + 1) % p, (idx.plane + p - 1) % p}) {
      const double target = (my_phase - neighbor_plane * phase_step) / slot_step;
      const double rounded = std::round(target);
      const auto slot = static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(rounded) % s + s) % s);
      out.push_back(id_of({neighbor_plane, slot}));
    }
  }
  return out;
}

WalkerDesign starlink_shell1() {
  return WalkerDesign{.planes = 72,
                      .sats_per_plane = 22,
                      .inclination_deg = 53.0,
                      .altitude = Kilometers{550.0},
                      .phasing = 39};
}

WalkerDesign test_shell() {
  return WalkerDesign{.planes = 8,
                      .sats_per_plane = 8,
                      .inclination_deg = 53.0,
                      .altitude = Kilometers{550.0},
                      .phasing = 3};
}

}  // namespace spacecdn::orbit
