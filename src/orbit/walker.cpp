#include "orbit/walker.hpp"

#include <cmath>
#include <cstdint>
#include <string>

#include "geo/visibility.hpp"
#include "util/error.hpp"

namespace spacecdn::orbit {

WalkerConstellation::WalkerConstellation(const MultiShellDesign& design)
    : shells_(design.shells) {
  SPACECDN_EXPECT(!shells_.empty(), "constellation must have at least one shell");

  shell_base_.reserve(shells_.size());
  shell_plane_base_.reserve(shells_.size());
  orbits_.reserve(design.total_satellites());
  for (const WalkerDesign& shell : shells_) {
    SPACECDN_EXPECT(shell.planes > 0, "constellation must have at least one plane");
    SPACECDN_EXPECT(shell.sats_per_plane > 0, "planes must hold at least one satellite");
    SPACECDN_EXPECT(shell.phasing < shell.planes,
                    "Walker phasing factor must be < number of planes");

    shell_base_.push_back(total_);
    shell_plane_base_.push_back(plane_count_);

    const double raan_step = 360.0 / shell.planes;
    const double slot_step = 360.0 / shell.sats_per_plane;
    const double phase_step =
        shell.phasing * 360.0 / static_cast<double>(shell.total_satellites());

    for (std::uint32_t p = 0; p < shell.planes; ++p) {
      for (std::uint32_t s = 0; s < shell.sats_per_plane; ++s) {
        const double raan = p * raan_step;
        const double phase = s * slot_step + p * phase_step;
        orbits_.emplace_back(shell.altitude, shell.inclination_deg, raan, phase);
      }
    }

    total_ += shell.total_satellites();
    plane_count_ += shell.planes;
    if (shell.altitude.value() > max_altitude_.value()) max_altitude_ = shell.altitude;
  }
}

WalkerConstellation::WalkerConstellation(const WalkerDesign& design)
    : WalkerConstellation(MultiShellDesign{design}) {}

const WalkerDesign& WalkerConstellation::shell(std::uint32_t s) const {
  SPACECDN_EXPECT(s < shells_.size(), "shell index out of range");
  return shells_[s];
}

std::uint32_t WalkerConstellation::shell_of(std::uint32_t sat_id) const {
  SPACECDN_EXPECT(sat_id < size(), "satellite id out of range");
  std::uint32_t s = static_cast<std::uint32_t>(shells_.size()) - 1;
  while (shell_base_[s] > sat_id) --s;
  return s;
}

std::uint32_t WalkerConstellation::shell_base(std::uint32_t s) const {
  SPACECDN_EXPECT(s < shells_.size(), "shell index out of range");
  return shell_base_[s];
}

SatelliteIndex WalkerConstellation::index_of(std::uint32_t sat_id) const {
  const std::uint32_t s = shell_of(sat_id);
  const std::uint32_t local = sat_id - shell_base_[s];
  return SatelliteIndex{local / shells_[s].sats_per_plane,
                        local % shells_[s].sats_per_plane, s};
}

std::uint32_t WalkerConstellation::id_of(SatelliteIndex idx) const {
  SPACECDN_EXPECT(idx.shell < shells_.size(), "satellite index out of range");
  const WalkerDesign& shell = shells_[idx.shell];
  SPACECDN_EXPECT(idx.plane < shell.planes && idx.in_plane < shell.sats_per_plane,
                  "satellite index out of range");
  return shell_base_[idx.shell] + idx.plane * shell.sats_per_plane + idx.in_plane;
}

std::uint32_t WalkerConstellation::plane_size(std::uint32_t global_plane) const {
  SPACECDN_EXPECT(global_plane < plane_count_, "plane index out of range");
  std::uint32_t s = static_cast<std::uint32_t>(shells_.size()) - 1;
  while (shell_plane_base_[s] > global_plane) --s;
  return shells_[s].sats_per_plane;
}

std::uint32_t WalkerConstellation::plane_sat(std::uint32_t global_plane,
                                            std::uint32_t in_plane) const {
  SPACECDN_EXPECT(global_plane < plane_count_, "plane index out of range");
  std::uint32_t s = static_cast<std::uint32_t>(shells_.size()) - 1;
  while (shell_plane_base_[s] > global_plane) --s;
  return id_of({global_plane - shell_plane_base_[s], in_plane, s});
}

std::uint32_t WalkerConstellation::plane_of(std::uint32_t sat_id) const {
  const SatelliteIndex idx = index_of(sat_id);
  return shell_plane_base_[idx.shell] + idx.plane;
}

const CircularOrbit& WalkerConstellation::orbit(std::uint32_t sat_id) const {
  SPACECDN_EXPECT(sat_id < size(), "satellite id out of range");
  return orbits_[sat_id];
}

std::vector<geo::Ecef> WalkerConstellation::positions_ecef(Milliseconds t) const {
  std::vector<geo::Ecef> out;
  out.reserve(orbits_.size());
  for (const auto& orbit : orbits_) out.push_back(orbit.position_ecef(t));
  return out;
}

void WalkerConstellation::positions_ecef_into(Milliseconds t, std::vector<double>& x,
                                              std::vector<double>& y,
                                              std::vector<double>& z) const {
  const std::size_t n = orbits_.size();
  x.resize(n);
  y.resize(n);
  z.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geo::Ecef p = orbits_[i].position_ecef(t);
    x[i] = p.x;
    y[i] = p.y;
    z[i] = p.z;
  }
}

std::vector<std::uint32_t> WalkerConstellation::grid_neighbors(std::uint32_t sat_id) const {
  const SatelliteIndex idx = index_of(sat_id);
  const WalkerDesign& shell = shells_[idx.shell];
  const std::uint32_t p = shell.planes;
  const std::uint32_t s = shell.sats_per_plane;
  const double slot_step = 360.0 / s;
  const double phase_step =
      shell.phasing * 360.0 / static_cast<double>(shell.total_satellites());

  std::vector<std::uint32_t> out;
  out.reserve(4);
  // Intra-plane: next and previous slot (always present when s > 1).
  if (s > 1) {
    out.push_back(id_of({idx.plane, (idx.in_plane + 1) % s, idx.shell}));
    out.push_back(id_of({idx.plane, (idx.in_plane + s - 1) % s, idx.shell}));
  }
  // Inter-plane: the *phase-nearest* slot in each adjacent plane.  Using the
  // same slot index would leave the plane wrap-around seam with partners up
  // to ~90 degrees apart along-track -- beyond optical line of sight.  Real
  // ISL terminals track the nearest neighbour, which this selects.  Adjacency
  // is within the satellite's own shell only: cross-shell relative velocities
  // are too high for optical terminals to hold a link.
  if (p > 1) {
    const double my_phase = idx.in_plane * slot_step + idx.plane * phase_step;
    for (const std::uint32_t neighbor_plane : {(idx.plane + 1) % p, (idx.plane + p - 1) % p}) {
      const double target = (my_phase - neighbor_plane * phase_step) / slot_step;
      const double rounded = std::round(target);
      const auto slot = static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(rounded) % s + s) % s);
      out.push_back(id_of({neighbor_plane, slot, idx.shell}));
    }
  }
  return out;
}

WalkerDesign starlink_shell1() {
  return WalkerDesign{.planes = 72,
                      .sats_per_plane = 22,
                      .inclination_deg = 53.0,
                      .altitude = Kilometers{550.0},
                      .phasing = 39};
}

WalkerDesign test_shell() {
  return WalkerDesign{.planes = 8,
                      .sats_per_plane = 8,
                      .inclination_deg = 53.0,
                      .altitude = Kilometers{550.0},
                      .phasing = 3};
}

namespace {

// Published Starlink Gen1 Shells 2-4 (FCC filings; Shell 1 is
// starlink_shell1).  Phasing factors follow the same harmonic-phasing choice
// as Shell 1 (F chosen so adjacent planes interleave roughly half a slot).
WalkerDesign starlink_shell2() {
  return WalkerDesign{.planes = 72,
                      .sats_per_plane = 22,
                      .inclination_deg = 53.2,
                      .altitude = Kilometers{540.0},
                      .phasing = 39};
}

WalkerDesign starlink_shell3() {
  return WalkerDesign{.planes = 36,
                      .sats_per_plane = 20,
                      .inclination_deg = 70.0,
                      .altitude = Kilometers{570.0},
                      .phasing = 11};
}

WalkerDesign starlink_shell4() {
  return WalkerDesign{.planes = 6,
                      .sats_per_plane = 58,
                      .inclination_deg = 97.6,
                      .altitude = Kilometers{560.0},
                      .phasing = 1};
}

// Gen2-style low-inclination capacity shells (modelled on the Gen2 FCC
// amendment's 43 deg and 33 deg entries, scaled so the full stack lands at
// ~10k satellites).
WalkerDesign gen2_shell_43() {
  return WalkerDesign{.planes = 60,
                      .sats_per_plane = 48,
                      .inclination_deg = 43.0,
                      .altitude = Kilometers{530.0},
                      .phasing = 17};
}

WalkerDesign gen2_shell_33() {
  return WalkerDesign{.planes = 48,
                      .sats_per_plane = 60,
                      .inclination_deg = 33.0,
                      .altitude = Kilometers{525.0},
                      .phasing = 13};
}

}  // namespace

MultiShellDesign multi_shell_preset(std::string_view name) {
  if (name == "shell1") return starlink_shell1();
  if (name == "test-shell") return test_shell();
  if (name == "starlink-4shell") {
    return MultiShellDesign{
        {starlink_shell1(), starlink_shell2(), starlink_shell3(), starlink_shell4()}};
  }
  if (name == "gen2-10k") {
    return MultiShellDesign{{starlink_shell1(), starlink_shell2(), starlink_shell3(),
                             starlink_shell4(), gen2_shell_43(), gen2_shell_33()}};
  }
  throw ConfigError("unknown constellation preset: " + std::string(name));
}

const std::vector<std::string>& constellation_preset_names() {
  static const std::vector<std::string> names = {"shell1", "test-shell",
                                                 "starlink-4shell", "gen2-10k"};
  return names;
}

double coverage_lat_limit_deg(const MultiShellDesign& design,
                              double min_elevation_deg) {
  double limit = 0.0;
  for (const WalkerDesign& shell : design.shells) {
    const double incl = shell.inclination_deg > 90.0 ? 180.0 - shell.inclination_deg
                                                     : shell.inclination_deg;
    const double psi_deg = geo::coverage_central_angle_deg(shell.altitude, min_elevation_deg);
    limit = std::max(limit, incl + psi_deg);
  }
  return std::min(limit, 90.0);
}

}  // namespace spacecdn::orbit
