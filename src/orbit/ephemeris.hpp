// Ephemeris snapshots: all satellite positions at an instant, plus the
// geometric queries every higher layer needs (serving satellite selection,
// visibility lists, ISL lengths).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/visibility.hpp"
#include "orbit/walker.hpp"

namespace spacecdn::orbit {

/// Immutable snapshot of a constellation at a single simulation time.
class EphemerisSnapshot {
 public:
  EphemerisSnapshot(const WalkerConstellation& constellation, Milliseconds t);

  [[nodiscard]] Milliseconds time() const noexcept { return time_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(positions_.size());
  }
  [[nodiscard]] const geo::Ecef& position(std::uint32_t sat_id) const;
  [[nodiscard]] const std::vector<geo::Ecef>& positions() const noexcept {
    return positions_;
  }

  /// Ids of all satellites visible from `ground` at >= `min_elevation_deg`.
  [[nodiscard]] std::vector<std::uint32_t> visible_satellites(
      const geo::GeoPoint& ground, double min_elevation_deg) const;

  /// The serving satellite: highest elevation above `min_elevation_deg`, or
  /// nullopt when none qualifies (coverage gap).
  [[nodiscard]] std::optional<std::uint32_t> serving_satellite(
      const geo::GeoPoint& ground, double min_elevation_deg) const;

  /// Straight-line distance between two satellites (ISL length).
  [[nodiscard]] Kilometers isl_distance(std::uint32_t a, std::uint32_t b) const;

  /// Slant range from a ground point to a satellite.
  [[nodiscard]] Kilometers slant_range(const geo::GeoPoint& ground,
                                       std::uint32_t sat_id) const;

 private:
  Milliseconds time_;
  std::vector<geo::Ecef> positions_;
};

}  // namespace spacecdn::orbit
