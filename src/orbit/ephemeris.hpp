// Ephemeris snapshots: all satellite positions at an instant, plus the
// geometric queries every higher layer needs (serving satellite selection,
// visibility lists, ISL lengths).
//
// Positions live in struct-of-arrays form (separate x/y/z km vectors) with a
// spatial-grid visibility index over sub-satellite points, so ground-side
// queries inspect only the grid cells within the constellation's coverage
// cap instead of scanning every satellite.  Snapshots advance in place
// (buffers reused, same propagation math as fresh construction, so positions
// are bit-identical) and carry a process-globally monotonic epoch that
// downstream caches key on — a pointer or a time value can recur after a
// rebuild (ABA), an epoch cannot.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geo/visibility.hpp"
#include "orbit/visibility_index.hpp"
#include "orbit/walker.hpp"

namespace spacecdn::orbit {

/// Snapshot of a constellation at a single simulation time.  Immutable except
/// through advance(), which re-propagates every orbit to a new time in place.
class EphemerisSnapshot {
 public:
  EphemerisSnapshot(const WalkerConstellation& constellation, Milliseconds t);

  [[nodiscard]] Milliseconds time() const noexcept { return time_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(x_.size());
  }
  /// Monotonic generation counter, unique across every snapshot construction
  /// and advance() in the process.  Cache keys MUST use this, never the
  /// snapshot's address or time.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const WalkerConstellation& constellation() const noexcept {
    return *constellation_;
  }

  [[nodiscard]] geo::Ecef position(std::uint32_t sat_id) const;

  /// SoA position columns (ECEF km, indexed by satellite id), the inputs the
  /// batched geometry kernels (geo/batch.hpp) stream over.
  [[nodiscard]] std::span<const double> xs() const noexcept { return x_; }
  [[nodiscard]] std::span<const double> ys() const noexcept { return y_; }
  [[nodiscard]] std::span<const double> zs() const noexcept { return z_; }

  /// Re-propagate all orbits to time `t`, reusing the position buffers and
  /// rebuilding the visibility index.  Positions equal a freshly-constructed
  /// snapshot's bit for bit (identical per-orbit math); epoch() changes.
  void advance(Milliseconds t);

  /// Ids of all satellites visible from `ground` at >= `min_elevation_deg`,
  /// ascending.  Answered through the spatial index; identical to
  /// visible_satellites_scan.
  [[nodiscard]] std::vector<std::uint32_t> visible_satellites(
      const geo::GeoPoint& ground, double min_elevation_deg) const;

  /// The serving satellite: highest elevation at or above
  /// `min_elevation_deg`, or nullopt when none qualifies (coverage gap).
  /// Exact elevation ties break toward the LOWEST satellite id, so the
  /// answer is independent of candidate enumeration order.
  [[nodiscard]] std::optional<std::uint32_t> serving_satellite(
      const geo::GeoPoint& ground, double min_elevation_deg) const;

  /// Brute-force O(N) reference implementations: same contract and same
  /// results as the indexed queries.  Kept for equivalence tests and the
  /// speedup micro-benchmarks.
  [[nodiscard]] std::vector<std::uint32_t> visible_satellites_scan(
      const geo::GeoPoint& ground, double min_elevation_deg) const;
  [[nodiscard]] std::optional<std::uint32_t> serving_satellite_scan(
      const geo::GeoPoint& ground, double min_elevation_deg) const;

  /// Straight-line distance between two satellites (ISL length).
  [[nodiscard]] Kilometers isl_distance(std::uint32_t a, std::uint32_t b) const;

  /// Slant range from a ground point to a satellite.
  [[nodiscard]] Kilometers slant_range(const geo::GeoPoint& ground,
                                       std::uint32_t sat_id) const;

 private:
  /// Coverage cap radius (deg) bounding the index query for a ground-side
  /// visibility question at `min_elevation_deg`.
  [[nodiscard]] double query_psi_deg(double min_elevation_deg) const;

  const WalkerConstellation* constellation_;
  Milliseconds time_;
  std::vector<double> x_, y_, z_;  ///< ECEF km, indexed by satellite id
  VisibilityIndex index_;
  std::uint64_t epoch_ = 0;
};

}  // namespace spacecdn::orbit
