// Walker-delta constellation generation, single- and multi-shell.
//
// A Walker delta pattern i:T/P/F places T satellites in P evenly-spaced
// planes at inclination i; adjacent planes are phase-offset by F * 360 / T
// degrees.  Starlink Shell 1 is (approximately) 53:1584/72/39.  Real
// mega-constellations stack several such shells at different altitudes and
// inclinations (the published Starlink Gen1 design flies four); a
// MultiShellDesign concatenates N Walker shells into one constellation with
// contiguous global satellite ids (shell 0 first, then shell 1, ...).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "orbit/kepler.hpp"

namespace spacecdn::orbit {

/// Index of a satellite within a (multi-shell) Walker constellation.  The
/// plane and slot are *shell-local*; `shell` defaults to 0 so single-shell
/// callers keep writing `{plane, in_plane}`.
struct SatelliteIndex {
  std::uint32_t plane = 0;     ///< orbital plane within the shell
  std::uint32_t in_plane = 0;  ///< slot within the plane, 0 .. sats_per_plane-1
  std::uint32_t shell = 0;     ///< shell ordinal, 0 .. shell_count-1

  friend bool operator==(const SatelliteIndex&, const SatelliteIndex&) = default;
};

/// Parameters of one Walker delta shell.
struct WalkerDesign {
  std::uint32_t planes = 0;
  std::uint32_t sats_per_plane = 0;
  double inclination_deg = 0.0;
  Kilometers altitude{0.0};
  /// Walker phasing factor F in [0, planes); the inter-plane phase offset is
  /// F * 360 / (planes * sats_per_plane) degrees per plane.
  std::uint32_t phasing = 0;

  [[nodiscard]] std::uint32_t total_satellites() const noexcept {
    return planes * sats_per_plane;
  }
};

/// An ordered stack of Walker shells forming one constellation.  Implicitly
/// constructible from a single WalkerDesign, so every pre-multi-shell call
/// site (`config.constellation = starlink_shell1()`) keeps compiling.
struct MultiShellDesign {
  std::vector<WalkerDesign> shells;

  MultiShellDesign() = default;
  MultiShellDesign(std::vector<WalkerDesign> s) : shells(std::move(s)) {}
  MultiShellDesign(const WalkerDesign& single) : shells{single} {}

  [[nodiscard]] std::uint32_t total_satellites() const noexcept {
    std::uint32_t total = 0;
    for (const WalkerDesign& shell : shells) total += shell.total_satellites();
    return total;
  }
};

/// A fully-generated constellation: one CircularOrbit per satellite, with
/// contiguous satellite ids.  Shells are laid out back to back; within a
/// shell, id = shell_base + plane * sats_per_plane + in_plane (for a single
/// shell this is the historical id = plane * sats_per_plane + in_plane).
class WalkerConstellation {
 public:
  /// @throws spacecdn::ConfigError for an empty design, zero planes/sats, or
  /// phasing >= planes in any shell.
  explicit WalkerConstellation(const MultiShellDesign& design);
  explicit WalkerConstellation(const WalkerDesign& design);

  /// The first shell's parameters.  Single-shell convenience kept for tests
  /// and tools that predate multi-shell; plane-structured consumers
  /// (placement, fault domains) use the global-plane accessors below.
  [[nodiscard]] const WalkerDesign& design() const noexcept { return shells_[0]; }

  [[nodiscard]] std::uint32_t size() const noexcept { return total_; }
  [[nodiscard]] std::uint32_t shell_count() const noexcept {
    return static_cast<std::uint32_t>(shells_.size());
  }
  [[nodiscard]] const WalkerDesign& shell(std::uint32_t s) const;
  [[nodiscard]] const std::vector<WalkerDesign>& shells() const noexcept {
    return shells_;
  }
  /// The shell owning a satellite id.
  [[nodiscard]] std::uint32_t shell_of(std::uint32_t sat_id) const;
  /// First global satellite id of a shell.
  [[nodiscard]] std::uint32_t shell_base(std::uint32_t s) const;
  /// Largest shell altitude (the visibility index's coverage bound).
  [[nodiscard]] Kilometers max_altitude() const noexcept { return max_altitude_; }

  [[nodiscard]] SatelliteIndex index_of(std::uint32_t sat_id) const;
  [[nodiscard]] std::uint32_t id_of(SatelliteIndex idx) const;

  // --- global-plane addressing ---
  // Planes are numbered across shells in shell order (shell 0's planes
  // first), so plane-structured policies (k copies per plane, plane fault
  // domains) stay well-defined on multi-shell constellations.  For a single
  // shell the global plane index equals SatelliteIndex::plane.
  [[nodiscard]] std::uint32_t plane_count() const noexcept { return plane_count_; }
  /// Satellites in one global plane.
  [[nodiscard]] std::uint32_t plane_size(std::uint32_t global_plane) const;
  /// Global id of slot `in_plane` of a global plane.
  [[nodiscard]] std::uint32_t plane_sat(std::uint32_t global_plane,
                                        std::uint32_t in_plane) const;
  /// Global plane index of a satellite.
  [[nodiscard]] std::uint32_t plane_of(std::uint32_t sat_id) const;

  [[nodiscard]] const CircularOrbit& orbit(std::uint32_t sat_id) const;

  /// Positions of all satellites at time `t` (ECEF), indexed by satellite id.
  [[nodiscard]] std::vector<geo::Ecef> positions_ecef(Milliseconds t) const;

  /// Struct-of-arrays propagation into caller-owned buffers (resized to
  /// size()).  EphemerisSnapshot's incremental advance reuses its buffers
  /// across re-propagations through this; values are bit-identical to
  /// positions_ecef (same per-orbit math, different storage).
  void positions_ecef_into(Milliseconds t, std::vector<double>& x,
                           std::vector<double>& y, std::vector<double>& z) const;

  /// Neighbour ids in the +grid inter-satellite-link topology: forward and
  /// backward along the plane, plus the phase-nearest slot in the two
  /// adjacent planes of the *same shell*.  Optical terminals cannot track
  /// across shells (relative velocities are too high), so grid links never
  /// cross a shell boundary.
  [[nodiscard]] std::vector<std::uint32_t> grid_neighbors(std::uint32_t sat_id) const;

 private:
  std::vector<WalkerDesign> shells_;
  std::vector<std::uint32_t> shell_base_;        ///< first id per shell
  std::vector<std::uint32_t> shell_plane_base_;  ///< first global plane per shell
  std::vector<CircularOrbit> orbits_;
  std::uint32_t total_ = 0;
  std::uint32_t plane_count_ = 0;
  Kilometers max_altitude_{0.0};
};

/// Starlink Shell 1: 72 planes x 22 satellites at 550 km, 53 deg inclination.
/// The paper configures xeoverse with exactly this shell (1,584 satellites).
[[nodiscard]] WalkerDesign starlink_shell1();

/// A reduced shell (8 planes x 8 sats) used by unit tests and quick examples.
[[nodiscard]] WalkerDesign test_shell();

/// Named multi-shell constellation presets (scenario key `constellation=`):
///  * "shell1"          -- the paper's single Shell 1 (1,584 satellites)
///  * "test-shell"      -- the reduced 8x8 unit-test shell (64)
///  * "starlink-4shell" -- the published Starlink Gen1 Shells 1-4 (4,236)
///  * "gen2-10k"        -- Gen1 shells plus two Gen2-style low-inclination
///                         shells, ~10k satellites (9,996)
/// @throws spacecdn::ConfigError on an unknown preset name.
[[nodiscard]] MultiShellDesign multi_shell_preset(std::string_view name);

/// The preset names multi_shell_preset accepts, for scenario validation.
[[nodiscard]] const std::vector<std::string>& constellation_preset_names();

/// The latitude band a constellation can serve terminals in, derived from
/// the shells' geometry: max over shells of (effective inclination + the
/// coverage half-angle at `min_elevation_deg`), clamped to 90.  A
/// retrograde/polar shell (inclination > 90) reaches |lat| = 180 - incl.
[[nodiscard]] double coverage_lat_limit_deg(const MultiShellDesign& design,
                                            double min_elevation_deg);

}  // namespace spacecdn::orbit
