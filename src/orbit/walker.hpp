// Walker-delta constellation generation.
//
// A Walker delta pattern i:T/P/F places T satellites in P evenly-spaced
// planes at inclination i; adjacent planes are phase-offset by F * 360 / T
// degrees.  Starlink Shell 1 is (approximately) 53:1584/72/39.
#pragma once

#include <cstdint>
#include <vector>

#include "orbit/kepler.hpp"

namespace spacecdn::orbit {

/// Index of a satellite within a Walker constellation.
struct SatelliteIndex {
  std::uint32_t plane = 0;     ///< orbital plane, 0 .. planes-1
  std::uint32_t in_plane = 0;  ///< slot within the plane, 0 .. sats_per_plane-1

  friend bool operator==(const SatelliteIndex&, const SatelliteIndex&) = default;
};

/// Parameters of a Walker delta constellation.
struct WalkerDesign {
  std::uint32_t planes = 0;
  std::uint32_t sats_per_plane = 0;
  double inclination_deg = 0.0;
  Kilometers altitude{0.0};
  /// Walker phasing factor F in [0, planes); the inter-plane phase offset is
  /// F * 360 / (planes * sats_per_plane) degrees per plane.
  std::uint32_t phasing = 0;

  [[nodiscard]] std::uint32_t total_satellites() const noexcept {
    return planes * sats_per_plane;
  }
};

/// A fully-generated Walker constellation: one CircularOrbit per satellite,
/// with contiguous satellite ids (id = plane * sats_per_plane + in_plane).
class WalkerConstellation {
 public:
  /// @throws spacecdn::ConfigError for zero planes/sats or phasing >= planes.
  explicit WalkerConstellation(const WalkerDesign& design);

  [[nodiscard]] const WalkerDesign& design() const noexcept { return design_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return design_.total_satellites(); }

  [[nodiscard]] SatelliteIndex index_of(std::uint32_t sat_id) const;
  [[nodiscard]] std::uint32_t id_of(SatelliteIndex idx) const;

  [[nodiscard]] const CircularOrbit& orbit(std::uint32_t sat_id) const;

  /// Positions of all satellites at time `t` (ECEF), indexed by satellite id.
  [[nodiscard]] std::vector<geo::Ecef> positions_ecef(Milliseconds t) const;

  /// Neighbour ids in the +grid inter-satellite-link topology: forward and
  /// backward along the plane, plus the same slot in the two adjacent planes
  /// (wrapping around).
  [[nodiscard]] std::vector<std::uint32_t> grid_neighbors(std::uint32_t sat_id) const;

 private:
  WalkerDesign design_;
  std::vector<CircularOrbit> orbits_;
};

/// Starlink Shell 1: 72 planes x 22 satellites at 550 km, 53 deg inclination.
/// The paper configures xeoverse with exactly this shell (1,584 satellites).
[[nodiscard]] WalkerDesign starlink_shell1();

/// A reduced shell (8 planes x 8 sats) used by unit tests and quick examples.
[[nodiscard]] WalkerDesign test_shell();

}  // namespace spacecdn::orbit
