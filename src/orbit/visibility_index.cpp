#include "orbit/visibility_index.hpp"

#include <algorithm>
#include <cmath>

#include "geo/earth.hpp"

namespace spacecdn::orbit {

namespace {

// Safety pad against floating-point rounding at cap/cell boundaries.  The
// exact elevation test downstream discards extras, so padding only costs a
// few candidates.
constexpr double kPadDeg = 0.05;

}  // namespace

std::uint32_t VisibilityIndex::lat_row(double lat_deg) noexcept {
  const double r = (lat_deg + 90.0) / kLatCellDeg;
  const auto row = static_cast<std::int32_t>(std::floor(r));
  return static_cast<std::uint32_t>(std::clamp(row, 0, static_cast<std::int32_t>(kLatCells - 1)));
}

std::uint32_t VisibilityIndex::lon_col(double lon_deg) noexcept {
  const double c = (lon_deg + 180.0) / kLonCellDeg;
  auto col = static_cast<std::int32_t>(std::floor(c));
  // atan2 yields (-180, 180]; +180 maps to column kLonCells -> wrap to 0.
  if (col >= static_cast<std::int32_t>(kLonCells)) col -= kLonCells;
  if (col < 0) col += kLonCells;
  return static_cast<std::uint32_t>(col);
}

void VisibilityIndex::rebuild(const std::vector<double>& x, const std::vector<double>& y,
                              const std::vector<double>& z) {
  size_ = static_cast<std::uint32_t>(x.size());
  bucket_of_.resize(size_);
  offsets_.assign(bucket_count() + 1, 0);

  // Pass 1: bucket of each satellite's sub-satellite point + per-bucket counts.
  for (std::uint32_t id = 0; id < size_; ++id) {
    const double r = std::sqrt(x[id] * x[id] + y[id] * y[id] + z[id] * z[id]);
    const double lat = geo::rad_to_deg(std::asin(std::clamp(z[id] / r, -1.0, 1.0)));
    const double lon = geo::rad_to_deg(std::atan2(y[id], x[id]));
    const std::uint32_t bucket = lat_row(lat) * kLonCells + lon_col(lon);
    bucket_of_[id] = bucket;
    ++offsets_[bucket + 1];
  }

  // Pass 2: exclusive prefix sum -> CSR offsets.
  for (std::uint32_t b = 1; b <= bucket_count(); ++b) offsets_[b] += offsets_[b - 1];

  // Pass 3: scatter ids.  Iterating in id order keeps each bucket's id list
  // ascending, which downstream sorts rely on being cheap (nearly sorted).
  ids_.resize(size_);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::uint32_t id = 0; id < size_; ++id) ids_[cursor[bucket_of_[id]]++] = id;
}

void VisibilityIndex::candidates(const geo::GeoPoint& ground, double psi_deg,
                                 std::vector<std::uint32_t>& out) const {
  const double psi = psi_deg + kPadDeg;
  const double lat0 = ground.lat_deg;

  const std::uint32_t row_lo = lat_row(std::max(-90.0, lat0 - psi));
  const std::uint32_t row_hi = lat_row(std::min(90.0, lat0 + psi));

  // Longitude half-width of the cap's bounding box: asin(sin psi / cos lat0).
  // When the cap reaches a pole (|lat0| + psi >= 90) every longitude
  // intersects it, so scan full rows.
  const double sin_psi = std::sin(geo::deg_to_rad(std::min(psi, 90.0)));
  const double cos_lat0 = std::cos(geo::deg_to_rad(lat0));
  bool full_ring = std::abs(lat0) + psi >= 90.0;
  double half_width_deg = 180.0;
  if (!full_ring) {
    const double s = sin_psi / cos_lat0;
    if (s >= 1.0) {
      full_ring = true;
    } else {
      half_width_deg = geo::rad_to_deg(std::asin(s)) + kPadDeg;
    }
  }

  std::uint32_t col_lo = 0;
  std::uint32_t col_count = kLonCells;
  if (!full_ring && 2.0 * half_width_deg < 360.0 - kLonCellDeg) {
    col_lo = lon_col(std::remainder(ground.lon_deg - half_width_deg, 360.0));
    const std::uint32_t col_hi = lon_col(std::remainder(ground.lon_deg + half_width_deg, 360.0));
    col_count = (col_hi + kLonCells - col_lo) % kLonCells + 1;
  }

  for (std::uint32_t row = row_lo; row <= row_hi; ++row) {
    for (std::uint32_t c = 0; c < col_count; ++c) {
      const std::uint32_t bucket = row * kLonCells + (col_lo + c) % kLonCells;
      out.insert(out.end(), ids_.begin() + offsets_[bucket],
                 ids_.begin() + offsets_[bucket + 1]);
    }
  }
}

}  // namespace spacecdn::orbit
