// A terrestrial client-serving ISP for one country: last mile + backbone.
//
// This is the comparison network of the whole study -- every figure puts
// "terrestrial" next to "Starlink".
#pragma once

#include <string>

#include "data/types.hpp"
#include "des/random.hpp"
#include "terrestrial/access.hpp"
#include "terrestrial/backbone.hpp"

namespace spacecdn::terrestrial {

/// Terrestrial ISP model parameterised from the country dataset.
class TerrestrialIsp {
 public:
  /// Builds an ISP from country calibration data.
  explicit TerrestrialIsp(const data::CountryInfo& country);

  /// Explicit construction for tests and sweeps.
  TerrestrialIsp(std::string country_code, AccessConfig access, BackboneConfig backbone);

  [[nodiscard]] const std::string& country_code() const noexcept { return country_code_; }
  [[nodiscard]] const AccessNetwork& access() const noexcept { return access_; }
  [[nodiscard]] const Backbone& backbone() const noexcept { return backbone_; }

  /// Deterministic baseline RTT from a client location to a server location
  /// (median last mile + backbone propagation).
  [[nodiscard]] Milliseconds baseline_rtt(const geo::GeoPoint& client,
                                          const geo::GeoPoint& server) const noexcept;

  /// One stochastic idle-RTT sample.
  [[nodiscard]] Milliseconds sample_idle_rtt(const geo::GeoPoint& client,
                                             const geo::GeoPoint& server,
                                             des::Rng& rng) const;

  /// One stochastic loaded-RTT sample (bulk transfer in progress).
  [[nodiscard]] Milliseconds sample_loaded_rtt(const geo::GeoPoint& client,
                                               const geo::GeoPoint& server, double load,
                                               des::Rng& rng) const;

  [[nodiscard]] Mbps download_bandwidth() const noexcept { return access_.bandwidth(); }

 private:
  std::string country_code_;
  AccessNetwork access_;
  Backbone backbone_;
};

}  // namespace spacecdn::terrestrial
