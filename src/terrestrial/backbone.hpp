// Terrestrial backbone latency model.
//
// Terrestrial paths follow fiber routes, not great circles.  The model is
// distance * stretch at fiber speed plus per-segment router/switching
// overhead; the stretch factor is a per-country calibration (well-meshed
// Europe ~1.5x vs Africa ~2.6x, following Formoso et al.'s measured
// inter-country latencies that the paper cites).
#pragma once

#include "geo/distance.hpp"
#include "util/units.hpp"

namespace spacecdn::terrestrial {

/// Tunables of the backbone model.
struct BackboneConfig {
  /// Fiber route length / great-circle distance.
  double path_stretch = 1.6;
  /// Forwarding overhead added per router hop.
  Milliseconds per_hop_overhead{0.15};
  /// Mean fiber distance between backbone routers; determines hop count.
  Kilometers hop_spacing{400.0};
};

/// Computes one-way and round-trip latencies across the terrestrial WAN.
class Backbone {
 public:
  explicit Backbone(BackboneConfig config);

  [[nodiscard]] const BackboneConfig& config() const noexcept { return config_; }

  /// Fiber route length between two points.
  [[nodiscard]] Kilometers route_length(const geo::GeoPoint& a,
                                        const geo::GeoPoint& b) const noexcept;

  /// One-way latency: propagation along the route plus router overheads.
  [[nodiscard]] Milliseconds one_way_latency(const geo::GeoPoint& a,
                                             const geo::GeoPoint& b) const noexcept;

  [[nodiscard]] Milliseconds rtt(const geo::GeoPoint& a,
                                 const geo::GeoPoint& b) const noexcept;

 private:
  BackboneConfig config_;
};

}  // namespace spacecdn::terrestrial
