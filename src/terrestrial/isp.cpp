#include "terrestrial/isp.hpp"

namespace spacecdn::terrestrial {

namespace {

AccessConfig access_from_country(const data::CountryInfo& country) {
  AccessConfig cfg;
  cfg.median_latency = country.access_latency;
  cfg.bandwidth = country.access_bandwidth;
  return cfg;
}

BackboneConfig backbone_from_country(const data::CountryInfo& country) {
  BackboneConfig cfg;
  cfg.path_stretch = country.path_stretch;
  return cfg;
}

}  // namespace

TerrestrialIsp::TerrestrialIsp(const data::CountryInfo& country)
    : TerrestrialIsp(std::string(country.code), access_from_country(country),
                     backbone_from_country(country)) {}

TerrestrialIsp::TerrestrialIsp(std::string country_code, AccessConfig access,
                               BackboneConfig backbone)
    : country_code_(std::move(country_code)), access_(access), backbone_(backbone) {}

Milliseconds TerrestrialIsp::baseline_rtt(const geo::GeoPoint& client,
                                          const geo::GeoPoint& server) const noexcept {
  return access_.config().median_latency + backbone_.rtt(client, server);
}

Milliseconds TerrestrialIsp::sample_idle_rtt(const geo::GeoPoint& client,
                                             const geo::GeoPoint& server,
                                             des::Rng& rng) const {
  return access_.sample_idle_rtt(rng) + backbone_.rtt(client, server);
}

Milliseconds TerrestrialIsp::sample_loaded_rtt(const geo::GeoPoint& client,
                                               const geo::GeoPoint& server, double load,
                                               des::Rng& rng) const {
  return access_.sample_loaded_rtt(load, rng) + backbone_.rtt(client, server);
}

}  // namespace spacecdn::terrestrial
