#include "terrestrial/access.hpp"

#include "util/error.hpp"

namespace spacecdn::terrestrial {

AccessNetwork::AccessNetwork(AccessConfig config)
    : config_(config), bloat_(config.bloat_at_full_load) {
  SPACECDN_EXPECT(config_.median_latency.value() > 0.0,
                  "median access latency must be positive");
  SPACECDN_EXPECT(config_.bandwidth.value() > 0.0, "access bandwidth must be positive");
}

Milliseconds AccessNetwork::sample_idle_rtt(des::Rng& rng) const {
  return Milliseconds{
      rng.lognormal_median(config_.median_latency.value(), config_.latency_sigma)};
}

Milliseconds AccessNetwork::sample_loaded_rtt(double load, des::Rng& rng) const {
  return sample_idle_rtt(rng) + bloat_.sample_bloat(load, rng);
}

}  // namespace spacecdn::terrestrial
