#include "terrestrial/backbone.hpp"

#include <cmath>

#include "geo/propagation.hpp"
#include "util/error.hpp"

namespace spacecdn::terrestrial {

Backbone::Backbone(BackboneConfig config) : config_(config) {
  SPACECDN_EXPECT(config_.path_stretch >= 1.0, "path stretch must be >= 1");
  SPACECDN_EXPECT(config_.hop_spacing.value() > 0.0, "hop spacing must be positive");
}

Kilometers Backbone::route_length(const geo::GeoPoint& a,
                                  const geo::GeoPoint& b) const noexcept {
  return geo::great_circle_distance(a, b) * config_.path_stretch;
}

Milliseconds Backbone::one_way_latency(const geo::GeoPoint& a,
                                       const geo::GeoPoint& b) const noexcept {
  const Kilometers route = route_length(a, b);
  const double hops = std::ceil(route.value() / config_.hop_spacing.value());
  return geo::propagation_delay(route, geo::Medium::kFiber) +
         config_.per_hop_overhead * hops;
}

Milliseconds Backbone::rtt(const geo::GeoPoint& a, const geo::GeoPoint& b) const noexcept {
  return one_way_latency(a, b) * 2.0;
}

}  // namespace spacecdn::terrestrial
