// Terrestrial last-mile (access network) model.
//
// The AIM dataset mixes wired and wireless access indistinguishably (paper
// section 3.1); the model therefore captures the aggregate: a country-level
// median last-mile latency with lognormal spread, plus bandwidth.
#pragma once

#include "des/random.hpp"
#include "net/link.hpp"
#include "util/units.hpp"

namespace spacecdn::terrestrial {

/// Per-client access characteristics.
struct AccessConfig {
  Milliseconds median_latency{8.0};
  double latency_sigma = 0.4;  ///< lognormal sigma of the last-mile latency
  Mbps bandwidth{100.0};
  /// Bufferbloat of typical home routers; far smaller than Starlink's.
  Milliseconds bloat_at_full_load{60.0};
};

/// Samples access-network contributions to RTT.
class AccessNetwork {
 public:
  explicit AccessNetwork(AccessConfig config);

  [[nodiscard]] const AccessConfig& config() const noexcept { return config_; }

  /// One round-trip contribution of the last mile when idle.
  [[nodiscard]] Milliseconds sample_idle_rtt(des::Rng& rng) const;

  /// Round-trip contribution under load fraction `load` in [0, 1].
  [[nodiscard]] Milliseconds sample_loaded_rtt(double load, des::Rng& rng) const;

  [[nodiscard]] Mbps bandwidth() const noexcept { return config_.bandwidth; }

 private:
  AccessConfig config_;
  net::BufferbloatModel bloat_;
};

}  // namespace spacecdn::terrestrial
