#include "spacecdn/bubble_scheduler.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spacecdn::space {

BubbleScheduler::BubbleScheduler(const orbit::WalkerConstellation& constellation,
                                 const ContentBubbleManager& bubbles,
                                 const cdn::ContentCatalog& catalog,
                                 BubbleScheduleConfig config)
    : constellation_(&constellation),
      bubbles_(&bubbles),
      catalog_(&catalog),
      config_(config),
      predictor_(constellation) {
  SPACECDN_EXPECT(config.feeder_bandwidth.value() > 0.0,
                  "feeder bandwidth must be positive");
}

Milliseconds BubbleScheduler::upload_time(data::Region region) const {
  (void)region;  // sizing uses the catalog mean; see the comment below
  // Bytes of the region's popularity head (what refresh() would insert).
  // Popularity is exposed through the bubble manager's config; sum the
  // top-k object sizes.
  double total_mb = 0.0;
  // Note: the bubble manager resolves top-k via its own popularity model;
  // here we conservatively size with the catalog's items at those ids.
  // (ContentBubbleManager does not expose its popularity reference, so we
  // approximate with k * mean object size -- an upper-bound-ish estimate
  // documented in the header.)
  const double mean_mb =
      catalog_->total_bytes().value() / static_cast<double>(catalog_->size());
  total_mb = mean_mb * static_cast<double>(bubbles_->config().prefetch_top_k);
  return transmission_delay(Megabytes{total_mb}, config_.feeder_bandwidth);
}

std::vector<PrefetchTask> BubbleScheduler::plan(std::uint32_t satellite,
                                                data::Region region,
                                                const geo::GeoPoint& anchor,
                                                Milliseconds from,
                                                Milliseconds horizon) const {
  const auto passes = predictor_.passes(satellite, anchor, config_.min_elevation_deg,
                                        from, from + horizon);
  const Milliseconds upload = upload_time(region);

  std::vector<PrefetchTask> out;
  for (const auto& pass : passes) {
    PrefetchTask task;
    task.satellite = satellite;
    task.region = region;
    task.deadline = pass.rise;
    const double start = pass.rise.value() - upload.value() - config_.margin.value();
    task.start_upload = Milliseconds{std::max(from.value(), start)};
    out.push_back(task);
  }
  return out;
}

std::uint32_t BubbleScheduler::execute_due(std::vector<PrefetchTask>& tasks,
                                           SatelliteFleet& fleet,
                                           const geo::GeoPoint& anchor,
                                           Milliseconds now) const {
  std::uint32_t executed = 0;
  auto it = tasks.begin();
  while (it != tasks.end()) {
    if (it->start_upload <= now) {
      // The refresh targets the content of the region the task names;
      // anchor gives the manager its geographic context.
      (void)bubbles_->refresh(fleet, it->satellite, anchor, now);
      it = tasks.erase(it);
      ++executed;
    } else {
      ++it;
    }
  }
  return executed;
}

}  // namespace spacecdn::space
