// Jump-consistent-hash replica placement with churn-minimal rebalancing.
//
// ContentPlacement (placement.hpp) reproduces the paper's fixed
// k-copies-per-plane layout; it is membership-unaware, so the constellation
// has no principled answer to "where should this object live *now*" once
// satellites fail, recover, or duty-cycle off.  This module is the
// production placement engine ROADMAP item 2 calls for, in the spirit of
// DAOS's jump-map placement:
//
//  * MembershipMap -- a versioned liveness bitmap over the satellite ids.
//    Satellites enter and leave as faults and duty cycles flip them; every
//    change bumps the version, so consumers can detect staleness in O(1).
//
//  * PlacementMap -- a deterministic object -> satellite map over a
//    membership snapshot.  The jump policy assigns replica r of object o by
//    jump_consistent_hash over the *full* id space and deterministically
//    re-probes while the candidate is dead or violates the diversity
//    constraint.  Because probe sequences are per-(object, replica) and
//    independent of the live count, one membership change only moves the
//    objects whose probe sequence actually crossed the flipped satellite:
//    O(1/N) of the catalog, versus the naive mod-live-count baseline policy
//    that reshuffles nearly everything (kBaseline below, kept as the
//    measurable strawman the ablation bench compares against).
//
//  * Orbit-aware diversity -- replicas are forced onto pairwise-distinct
//    orbital planes (kPlane) or distinct planes *and* distinct in-plane
//    phase slots (kPhase), so a plane-level fault domain (faults/domains
//    plane_domain) can never hold every copy of an object.
//
//  * Erasure-coded striping (kJumpEc) -- instead of whole-object replicas,
//    an object is cut into an ErasureProfile's data+parity fragments
//    (striping.hpp), one fragment per satellite, spread with the same
//    diversity rule.  Storage cost drops from replicas x to (k+m)/k x; an
//    object stays readable while any `data` fragments survive.
//
// RepairDaemon (resilience.hpp) consumes the map in delta mode: it keeps
// the membership snapshot it last synced to and, on each audit, moves only
// the (object, slot) pairs whose assignment differs between the synced and
// the current snapshot -- the "bytes moved per churn cycle" metric of
// bench/ablation_placement_map.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cdn/content.hpp"
#include "des/random.hpp"
#include "orbit/walker.hpp"
#include "spacecdn/fleet.hpp"
#include "spacecdn/striping.hpp"

namespace spacecdn::space {

/// Lamping & Veach's jump consistent hash: maps `key` to a bucket in
/// [0, buckets) such that growing the bucket count moves only ~1/buckets of
/// the keys.  Deterministic, stateless, O(ln buckets).
[[nodiscard]] std::uint32_t jump_consistent_hash(std::uint64_t key,
                                                 std::uint32_t buckets) noexcept;

/// Placement policy of a PlacementMap.
enum class PlacementPolicy {
  /// Naive membership-aware recompute: replicas are evenly spaced over the
  /// *live* satellite list, so any liveness change renumbers nearly every
  /// assignment.  This is the re-place-everything behaviour of the k-copies
  /// RepairDaemon policy, kept as the ablation baseline.
  kBaseline,
  /// Jump consistent hashing with deterministic re-probing: one membership
  /// change moves O(1/N) of objects.
  kJump,
  /// Jump placement of erasure-coded fragments instead of whole replicas.
  kJumpEc,
};

[[nodiscard]] std::string_view to_string(PlacementPolicy policy) noexcept;
/// @throws spacecdn::ConfigError on an unknown name
/// ("baseline"/"jump"/"jump-ec").
[[nodiscard]] PlacementPolicy parse_placement_policy(const std::string& name);

/// How strictly replicas must spread across the orbit geometry.
enum class ReplicaDiversity {
  kPlane,  ///< pairwise-distinct orbital planes
  kPhase,  ///< distinct planes AND distinct in-plane phase slots
};

[[nodiscard]] std::string_view to_string(ReplicaDiversity diversity) noexcept;
/// @throws spacecdn::ConfigError on an unknown name ("plane"/"phase").
[[nodiscard]] ReplicaDiversity parse_replica_diversity(const std::string& name);

/// Versioned satellite-liveness map.  A satellite is a placement member
/// while it is online, its cache process is up, and it is duty-cycle
/// enabled; ChurnController keeps the map in sync with fault events.
class MembershipMap {
 public:
  /// All satellites start live at version 0.
  /// @throws spacecdn::ConfigError on an empty constellation.
  explicit MembershipMap(std::uint32_t satellite_count);

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(live_.size());
  }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] bool live(std::uint32_t sat) const;
  [[nodiscard]] std::uint32_t live_count() const noexcept { return live_count_; }

  /// Flips one satellite's membership.  Returns whether liveness actually
  /// changed (and therefore whether the version was bumped); redundant
  /// calls are idempotent and free.
  bool set_live(std::uint32_t sat, bool live);

  /// The liveness bitmap, usable as a snapshot basis for
  /// PlacementMap::replicas_under (copy it to freeze a version).
  [[nodiscard]] const std::vector<bool>& bitmap() const noexcept { return live_; }

 private:
  std::vector<bool> live_;
  std::uint32_t live_count_ = 0;
  std::uint64_t version_ = 0;
};

/// Placement-map configuration.
struct PlacementMapConfig {
  PlacementPolicy policy = PlacementPolicy::kJump;
  /// Whole-object copies per object (kBaseline / kJump).
  std::uint32_t replicas = 4;
  ReplicaDiversity diversity = ReplicaDiversity::kPlane;
  /// Fragment geometry of the kJumpEc mode (data + parity fragments, one
  /// satellite each).
  ErasureProfile ec = {};
  /// Jump re-probe budget before the deterministic linear fallback kicks in
  /// (only reachable when diversity constraints leave very few candidates).
  std::uint32_t max_probe_attempts = 64;
};

/// Deterministic object -> satellite placement over a versioned membership.
class PlacementMap {
 public:
  /// @throws spacecdn::ConfigError when the config asks for more placements
  /// than the constellation has planes (diversity would be unsatisfiable),
  /// or for zero replicas / an invalid erasure profile.
  PlacementMap(const orbit::WalkerConstellation& constellation,
               PlacementMapConfig config);

  [[nodiscard]] const PlacementMapConfig& config() const noexcept { return config_; }
  [[nodiscard]] MembershipMap& membership() noexcept { return membership_; }
  [[nodiscard]] const MembershipMap& membership() const noexcept {
    return membership_;
  }

  /// Placements per object: `replicas` whole copies, or data+parity
  /// fragments under kJumpEc.
  [[nodiscard]] std::uint32_t placements_per_object() const noexcept;

  /// Live placements an object needs to stay readable: 1 whole copy, or
  /// `ec.data` fragments under kJumpEc.
  [[nodiscard]] std::uint32_t min_live_for_read() const noexcept;

  /// Bytes one holder stores for `item`: the full object, or one fragment
  /// (size / ec.data) under kJumpEc.
  [[nodiscard]] Megabytes stored_bytes(const cdn::ContentItem& item) const noexcept;

  /// Holder satellites of `id` under the current membership, in placement
  /// order.  Deterministic: same membership version => identical result.
  [[nodiscard]] std::vector<std::uint32_t> replicas(cdn::ContentId id) const;

  /// Holders under an explicit liveness snapshot (delta repair, what-if).
  /// `live` must have one entry per satellite.
  [[nodiscard]] std::vector<std::uint32_t> replicas_under(
      cdn::ContentId id, const std::vector<bool>& live) const;

  /// Inserts `item` (or its fragments) into every current holder's cache.
  void place(SatelliteFleet& fleet, const cdn::ContentItem& item,
             Milliseconds now) const;

  /// Per-satellite assignment-count skew over a catalog prefix [0, size):
  /// mean, p99, and max of placements per *live* satellite.  Uniformity is
  /// the placement-quality half of the DAOS pl_bench measurement.
  struct LoadSkew {
    double mean = 0.0;
    double p99 = 0.0;
    double max = 0.0;
    [[nodiscard]] double p99_over_mean() const noexcept {
      return mean > 0.0 ? p99 / mean : 0.0;
    }
  };
  [[nodiscard]] LoadSkew load_skew(std::uint64_t catalog_size) const;

  /// Hop-distance statistics to the nearest live holder, over `probes`
  /// random (satellite, object) pairs -- the hit-distance half of placement
  /// quality (grid-hop metric shared with ContentPlacement::analyze).
  struct HopStats {
    double mean_hops = 0.0;
    std::uint32_t max_hops = 0;
    double p99_hops = 0.0;
  };
  [[nodiscard]] HopStats analyze(std::uint32_t probes, std::uint64_t catalog_size,
                                 des::Rng& rng) const;

  /// Exact +grid hop distance between two satellites (UINT32_MAX across
  /// shells, where no grid ISLs exist).
  [[nodiscard]] std::uint32_t grid_hop_distance(std::uint32_t a,
                                                std::uint32_t b) const;

 private:
  /// Appends the placement for (id, slot r) under `live` to `chosen`.
  void pick_jump(cdn::ContentId id, std::uint32_t r, const std::vector<bool>& live,
                 std::vector<std::uint32_t>& chosen) const;
  [[nodiscard]] bool diversity_ok(std::uint32_t candidate,
                                  const std::vector<std::uint32_t>& chosen) const;

  const orbit::WalkerConstellation* constellation_;
  PlacementMapConfig config_;
  MembershipMap membership_;
};

}  // namespace spacecdn::space
