// The SpaceCDN request router: the paper's three-tier fetch (Figure 6).
//
//   (i)  content cached on the satellite directly overhead -> fetch it
//        straight down (red arrow);
//   (ii) otherwise route over ISLs to the nearest satellite with the object
//        (blue arrow);
//   (iii) otherwise fall back to the ground cache near the gateway / PoP
//        (black arrow) -- i.e. today's bent-pipe CDN path.
#pragma once

#include <cstdint>
#include <optional>

#include "cdn/deployment.hpp"
#include "lsn/starlink.hpp"
#include "spacecdn/fleet.hpp"
#include "spacecdn/lookup.hpp"

namespace spacecdn::space {

/// Where a request was ultimately served from.
enum class FetchTier {
  kServingSatellite,  ///< tier (i): the overhead satellite's cache
  kIslNeighbor,       ///< tier (ii): a nearby satellite over ISLs
  kGround,            ///< tier (iii): ground CDN via bent pipe
};

[[nodiscard]] std::string_view to_string(FetchTier tier) noexcept;

/// Outcome of one SpaceCDN fetch.
struct FetchResult {
  FetchTier tier = FetchTier::kGround;
  /// Client-observed first-byte round trip (includes access overhead).
  Milliseconds rtt{0.0};
  std::uint32_t isl_hops = 0;     ///< hops used in tier (ii) / ground path
  std::uint32_t source_satellite = 0;  ///< holder for tiers (i)/(ii)
  bool ground_cache_hit = false;  ///< tier (iii): did the ground edge hit?
};

/// Router configuration.
struct RouterConfig {
  /// Hop budget of the ISL lookup (tier ii).
  std::uint32_t max_isl_hops = 10;
  /// Admit objects into the serving satellite's cache after a tier (ii)/(iii)
  /// fetch (pull-through caching).
  bool admit_on_fetch = true;
  /// Median request-service overhead of a satellite cache fetch (MAC slot +
  /// onboard processing).  Deliberately far below the bent-pipe access
  /// overhead: the paper's xeoverse simulation charges satellite fetches
  /// propagation plus small processing only, while measured Starlink paths
  /// carry the full scheduler/queueing overhead (see EXPERIMENTS.md).
  Milliseconds service_overhead_rtt{2.0};
  double service_overhead_sigma = 0.3;
};

/// Serves content requests across the three tiers.
class SpaceCdnRouter {
 public:
  SpaceCdnRouter(const lsn::StarlinkNetwork& network, SatelliteFleet& fleet,
                 cdn::CdnDeployment& ground_cdn, RouterConfig config = {});

  /// Serves one request from a client.  Returns nullopt when the client has
  /// no satellite coverage.
  [[nodiscard]] std::optional<FetchResult> fetch(const geo::GeoPoint& client,
                                                 const data::CountryInfo& country,
                                                 const cdn::ContentItem& item,
                                                 des::Rng& rng, Milliseconds now);

  [[nodiscard]] const RouterConfig& config() const noexcept { return config_; }
  [[nodiscard]] SatelliteFleet& fleet() noexcept { return *fleet_; }

 private:
  const lsn::StarlinkNetwork* network_;
  SatelliteFleet* fleet_;
  cdn::CdnDeployment* ground_cdn_;
  RouterConfig config_;
};

}  // namespace spacecdn::space
