// The SpaceCDN request router: the paper's three-tier fetch (Figure 6).
//
//   (i)  content cached on the satellite directly overhead -> fetch it
//        straight down (red arrow);
//   (ii) otherwise route over ISLs to the nearest satellite with the object
//        (blue arrow);
//   (iii) otherwise fall back to the ground cache near the gateway / PoP
//        (black arrow) -- i.e. today's bent-pipe CDN path.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "cdn/deployment.hpp"
#include "lsn/starlink.hpp"
#include "spacecdn/fleet.hpp"
#include "spacecdn/lookup.hpp"

namespace spacecdn::obs {
class TraceBuilder;
}

namespace spacecdn::space {

/// Where a request was ultimately served from.
enum class FetchTier {
  kServingSatellite,  ///< tier (i): the overhead satellite's cache
  kIslNeighbor,       ///< tier (ii): a nearby satellite over ISLs
  kGround,            ///< tier (iii): ground CDN via bent pipe
};

[[nodiscard]] std::string_view to_string(FetchTier tier) noexcept;

/// Outcome of one SpaceCDN fetch.
struct FetchResult {
  FetchTier tier = FetchTier::kGround;
  /// Client-observed first-byte round trip (includes access overhead).
  Milliseconds rtt{0.0};
  std::uint32_t isl_hops = 0;     ///< hops used in tier (ii) / ground path
  std::uint32_t source_satellite = 0;  ///< holder for tiers (i)/(ii)
  bool ground_cache_hit = false;  ///< tier (iii): did the ground edge hit?
  /// The satellite overhead of the client that served the downlink.
  std::uint32_t serving_satellite = 0;
  /// Gateway index of the bent-pipe leg (tier iii only).
  std::optional<std::size_t> gateway;
  /// Satellites traversed over ISLs, serving first (tier ii: serving ->
  /// replica holder; tier iii: serving -> landing satellite).  Filled only
  /// when RouterConfig::record_paths is set -- the load engine needs the
  /// concrete links to charge bandwidth against, latency-only callers
  /// should not pay the allocation.
  std::vector<std::uint32_t> isl_path;
};

/// Retry/timeout policy of the resilient fetch path (fetch_resilient).
///
/// Attempts are bounded; each failed attempt costs the client the attempt
/// timeout plus an exponentially growing backoff before the retry, mirroring
/// an HTTP client riding over a flapping LEO path.
struct ResilienceConfig {
  /// Total tries per fetch (1 initial + max_attempts-1 retries).
  std::uint32_t max_attempts = 4;
  /// A response slower than this counts as a timeout and is retried.
  Milliseconds attempt_timeout{1500.0};
  /// Backoff before retry k (0-based) is base * multiplier^k.
  Milliseconds backoff_base{50.0};
  double backoff_multiplier = 2.0;
  /// Probability that an attempt is lost in flight even when a path exists
  /// (handover stalls, transient link flaps below the fault model's
  /// granularity).  0 disables.
  double transient_loss = 0.0;
};

/// Outcome of one resilient fetch (possibly after retries/escalation).
struct ResilientFetchResult {
  bool success = false;
  /// Tier/RTT/source of the attempt that succeeded (unset on failure).
  std::optional<FetchResult> served;
  /// Everything the client waited: successful RTT plus timeouts and backoff
  /// of the failed attempts before it.
  Milliseconds total_latency{0.0};
  std::uint32_t attempts = 0;
  std::uint32_t retries = 0;
};

/// Router configuration.
struct RouterConfig {
  /// Hop budget of the ISL lookup (tier ii).
  std::uint32_t max_isl_hops = 10;
  /// Admit objects into the serving satellite's cache after a tier (ii)/(iii)
  /// fetch (pull-through caching).
  bool admit_on_fetch = true;
  /// Median request-service overhead of a satellite cache fetch (MAC slot +
  /// onboard processing).  Deliberately far below the bent-pipe access
  /// overhead: the paper's xeoverse simulation charges satellite fetches
  /// propagation plus small processing only, while measured Starlink paths
  /// carry the full scheduler/queueing overhead (see EXPERIMENTS.md).
  Milliseconds service_overhead_rtt{2.0};
  double service_overhead_sigma = 0.3;
  /// Fill FetchResult::isl_path (and tier-iii gateway) so callers can charge
  /// the transfer against the traversed links.  Off by default: it costs a
  /// path reconstruction + allocation per fetch.
  bool record_paths = false;
  /// Retry/timeout policy for fetch_resilient.
  ResilienceConfig resilience = {};
};

/// Serves content requests across the three tiers.
class SpaceCdnRouter {
 public:
  SpaceCdnRouter(const lsn::StarlinkNetwork& network, SatelliteFleet& fleet,
                 cdn::CdnDeployment& ground_cdn, RouterConfig config = {});

  /// Serves one request from a client.  Returns nullopt when the client has
  /// no satellite coverage.
  [[nodiscard]] std::optional<FetchResult> fetch(const geo::GeoPoint& client,
                                                 const data::CountryInfo& country,
                                                 const cdn::ContentItem& item,
                                                 des::Rng& rng, Milliseconds now);

  /// Fault-aware fetch with bounded retry, per-attempt timeout, and tier
  /// escalation: offline satellites are never chosen to serve, crashed or
  /// unreachable replica holders are skipped (tier ii falls through to the
  /// ground), and failed gateways are routed around.  A fetch only fails
  /// outright when every tier is unreachable on every attempt (e.g. total
  /// coverage gap).
  [[nodiscard]] ResilientFetchResult fetch_resilient(const geo::GeoPoint& client,
                                                     const data::CountryInfo& country,
                                                     const cdn::ContentItem& item,
                                                     des::Rng& rng, Milliseconds now);

  [[nodiscard]] const RouterConfig& config() const noexcept { return config_; }
  [[nodiscard]] SatelliteFleet& fleet() noexcept { return *fleet_; }

 private:
  /// The highest satellite above `client` that is online (fault-aware
  /// variant of EphemerisSnapshot::serving_satellite).
  [[nodiscard]] std::optional<std::uint32_t> healthy_serving_satellite(
      const geo::GeoPoint& client) const;

  /// One fault-aware attempt across the three tiers from `serving`.  When a
  /// tracer is installed, tier spans are appended to `trace` under
  /// `parent_span` (pass nullptr to skip tracing).
  [[nodiscard]] std::optional<FetchResult> attempt_from(std::uint32_t serving,
                                                        const geo::GeoPoint& client,
                                                        const data::CountryInfo& country,
                                                        const cdn::ContentItem& item,
                                                        des::Rng& rng, Milliseconds now,
                                                        obs::TraceBuilder* trace,
                                                        std::uint32_t parent_span);

  const lsn::StarlinkNetwork* network_;
  SatelliteFleet* fleet_;
  cdn::CdnDeployment* ground_cdn_;
  RouterConfig config_;
};

}  // namespace spacecdn::space
