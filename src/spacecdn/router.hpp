// The SpaceCDN request router: the paper's three-tier fetch (Figure 6).
//
//   (i)  content cached on the satellite directly overhead -> fetch it
//        straight down (red arrow);
//   (ii) otherwise route over ISLs to the nearest satellite with the object
//        (blue arrow);
//   (iii) otherwise fall back to the ground cache near the gateway / PoP
//        (black arrow) -- i.e. today's bent-pipe CDN path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "cdn/deployment.hpp"
#include "lsn/starlink.hpp"
#include "spacecdn/circuit_breaker.hpp"
#include "spacecdn/fleet.hpp"
#include "spacecdn/lookup.hpp"
#include "spacecdn/placement_map.hpp"

namespace spacecdn::obs {
class TraceBuilder;
}

namespace spacecdn::space {

/// Where a request was ultimately served from.
enum class FetchTier {
  kServingSatellite,  ///< tier (i): the overhead satellite's cache
  kIslNeighbor,       ///< tier (ii): a nearby satellite over ISLs
  kGround,            ///< tier (iii): ground CDN via bent pipe
};

[[nodiscard]] std::string_view to_string(FetchTier tier) noexcept;

/// Outcome of one SpaceCDN fetch.
struct FetchResult {
  FetchTier tier = FetchTier::kGround;
  /// Client-observed first-byte round trip (includes access overhead).
  Milliseconds rtt{0.0};
  std::uint32_t isl_hops = 0;     ///< hops used in tier (ii) / ground path
  std::uint32_t source_satellite = 0;  ///< holder for tiers (i)/(ii)
  bool ground_cache_hit = false;  ///< tier (iii): did the ground edge hit?
  /// The satellite overhead of the client that served the downlink.
  std::uint32_t serving_satellite = 0;
  /// Gateway index of the bent-pipe leg (tier iii only).
  std::optional<std::size_t> gateway;
  /// Satellites traversed over ISLs, serving first (tier ii: serving ->
  /// replica holder; tier iii: serving -> landing satellite).  Filled only
  /// when RouterConfig::record_paths is set -- the load engine needs the
  /// concrete links to charge bandwidth against, latency-only callers
  /// should not pay the allocation.
  std::vector<std::uint32_t> isl_path;
};

/// Retry/timeout policy of the resilient fetch path (fetch_resilient).
///
/// Attempts are bounded; each failed attempt costs the client the attempt
/// timeout plus an exponentially growing backoff before the retry, mirroring
/// an HTTP client riding over a flapping LEO path.
struct ResilienceConfig {
  /// Total tries per fetch (1 initial + max_attempts-1 retries).
  std::uint32_t max_attempts = 4;
  /// A response slower than this counts as a timeout and is retried.
  Milliseconds attempt_timeout{1500.0};
  /// Backoff before retry k (0-based) is base * multiplier^k.
  Milliseconds backoff_base{50.0};
  double backoff_multiplier = 2.0;
  /// Probability that an attempt is lost in flight even when a path exists
  /// (handover stalls, transient link flaps below the fault model's
  /// granularity).  0 disables.
  double transient_loss = 0.0;
  /// Per-request deadline budget: attempts and backoffs stop once the
  /// cumulative wait reaches it, and each attempt's timeout is clipped to
  /// the remaining budget (a live-video segment is worthless after its
  /// deadline).  0 = unbounded, the historical behavior.
  Milliseconds deadline{0.0};
  /// Uniform jitter on the exponential backoff: each backoff is scaled by
  /// 1 + backoff_jitter * U(-1, 1), de-synchronising retry storms.  0 keeps
  /// the historical deterministic backoff and draws no RNG.
  double backoff_jitter = 0.0;
  /// Hedged request: when a served attempt's RTT exceeds this delay, a
  /// second request is issued from the next-best serving satellite and the
  /// client takes whichever response lands first (effective RTT
  /// min(primary, hedge_delay + hedge)).  0 disables.  Load callers set it
  /// from a trailing p99 (the classic tail-at-scale rule).
  Milliseconds hedge_delay{0.0};
  /// Per-gateway circuit breaker on the bent-pipe leg; failure_threshold 0
  /// (default) disables it.
  BreakerConfig breaker = {};
};

/// Outcome of one resilient fetch (possibly after retries/escalation).
struct ResilientFetchResult {
  bool success = false;
  /// Tier/RTT/source of the attempt that succeeded (unset on failure).
  std::optional<FetchResult> served;
  /// Everything the client waited: successful RTT plus timeouts and backoff
  /// of the failed attempts before it.
  Milliseconds total_latency{0.0};
  std::uint32_t attempts = 0;
  std::uint32_t retries = 0;
  /// The deadline budget ran out before any attempt succeeded.
  bool deadline_exceeded = false;
  /// A hedged second request was issued / won the race.
  bool hedged = false;
  bool hedge_won = false;
};

/// Router configuration.
struct RouterConfig {
  /// Hop budget of the ISL lookup (tier ii).
  std::uint32_t max_isl_hops = 10;
  /// Admit objects into the serving satellite's cache after a tier (ii)/(iii)
  /// fetch (pull-through caching).
  bool admit_on_fetch = true;
  /// Median request-service overhead of a satellite cache fetch (MAC slot +
  /// onboard processing).  Deliberately far below the bent-pipe access
  /// overhead: the paper's xeoverse simulation charges satellite fetches
  /// propagation plus small processing only, while measured Starlink paths
  /// carry the full scheduler/queueing overhead (see EXPERIMENTS.md).
  Milliseconds service_overhead_rtt{2.0};
  double service_overhead_sigma = 0.3;
  /// Fill FetchResult::isl_path (and tier-iii gateway) so callers can charge
  /// the transfer against the traversed links.  Off by default: it costs a
  /// path reconstruction + allocation per fetch.
  bool record_paths = false;
  /// Retry/timeout policy for fetch_resilient.
  ResilienceConfig resilience = {};
};

/// Serves content requests across the three tiers.
class SpaceCdnRouter {
 public:
  SpaceCdnRouter(const lsn::StarlinkNetwork& network, SatelliteFleet& fleet,
                 cdn::CdnDeployment& ground_cdn, RouterConfig config = {});

  /// Serves one request from a client.  Returns nullopt when the client has
  /// no satellite coverage.
  [[nodiscard]] std::optional<FetchResult> fetch(const geo::GeoPoint& client,
                                                 const data::CountryInfo& country,
                                                 const cdn::ContentItem& item,
                                                 des::Rng& rng, Milliseconds now);

  /// Fault-aware fetch with bounded retry, per-attempt timeout, and tier
  /// escalation: offline satellites are never chosen to serve, crashed or
  /// unreachable replica holders are skipped (tier ii falls through to the
  /// ground), and failed gateways are routed around.  A fetch only fails
  /// outright when every tier is unreachable on every attempt (e.g. total
  /// coverage gap).
  [[nodiscard]] ResilientFetchResult fetch_resilient(const geo::GeoPoint& client,
                                                     const data::CountryInfo& country,
                                                     const cdn::ContentItem& item,
                                                     des::Rng& rng, Milliseconds now);

  [[nodiscard]] const RouterConfig& config() const noexcept { return config_; }
  [[nodiscard]] SatelliteFleet& fleet() noexcept { return *fleet_; }

  /// A serving-satellite veto consulted by the resilient path (degradation
  /// policies mark hot satellites).  Return false to steer a request away
  /// from a satellite; when every candidate is vetoed the best vetoed one
  /// still serves (availability beats politeness).
  using ServingFilter = std::function<bool(std::uint32_t satellite)>;
  void set_serving_filter(ServingFilter filter) { serving_filter_ = std::move(filter); }

  /// Directs tier (ii) by a placement map instead of the BFS content
  /// discovery: holders come from map->replicas(id), so the lookup is one
  /// SSSP query over a known holder set rather than a frontier expansion.
  /// Under an erasure-coded map the fetch completes when min_live_for_read
  /// fragments are reachable and its latency is bounded by the slowest
  /// needed fragment; tier (i) and pull-through admission are disabled there
  /// (one satellite holds a fragment, not the object).  nullptr (default)
  /// keeps the BFS path byte-identical to the published figures.  The map
  /// must outlive the router.
  void set_placement_map(const PlacementMap* map) noexcept { placement_map_ = map; }
  [[nodiscard]] const PlacementMap* placement_map() const noexcept {
    return placement_map_;
  }

  /// Overrides the configured hedge delay (load callers re-derive it from a
  /// trailing latency p99 while a run is in flight).  <= 0 disables hedging.
  void set_hedge_delay(Milliseconds delay) noexcept {
    config_.resilience.hedge_delay = delay;
  }

  /// Degraded mode: skip the space tiers and serve everything over the
  /// bent pipe (tier iii), today's ground-CDN path.  The load engine's
  /// shed-to-ground policy flips this around a single re-fetch.
  void set_ground_only(bool ground_only) noexcept { ground_only_ = ground_only; }

  /// The bent-pipe breaker of one gateway (kClosed when breakers are off or
  /// the gateway has never been tried).
  [[nodiscard]] const CircuitBreaker& gateway_breaker(std::size_t gateway) const;
  /// Total open transitions and open-breaker skips across all gateways.
  [[nodiscard]] std::uint64_t breaker_opens() const noexcept;
  [[nodiscard]] std::uint64_t breaker_short_circuits() const noexcept;
  /// Gateways whose breaker is currently open (a series-recorder gauge).
  [[nodiscard]] std::size_t breaker_open_count() const noexcept;

  /// Observes every gateway-breaker state change (the incident timeline's
  /// "breaker.*" events).  Installing a listener wires existing breakers and
  /// any created later; an empty function detaches.
  using BreakerListener =
      std::function<void(std::size_t gateway, CircuitBreaker::State from,
                         CircuitBreaker::State to, Milliseconds at)>;
  void set_breaker_listener(BreakerListener listener);

 private:
  /// The highest satellite above `client` that is online (fault-aware
  /// variant of EphemerisSnapshot::serving_satellite), skipping `exclude`
  /// (hedged requests need a second opinion) and preferring satellites the
  /// serving filter accepts.
  [[nodiscard]] std::optional<std::uint32_t> healthy_serving_satellite(
      const geo::GeoPoint& client,
      std::optional<std::uint32_t> exclude = std::nullopt) const;

  /// Tier-(ii) lookup against the installed placement map: the hop-budgeted
  /// nearest live holder (or, erasure-coded, the min_live_for_read-th
  /// nearest fragment holder, whose latency bounds the reconstruction).
  [[nodiscard]] std::optional<LookupResult> map_lookup(std::uint32_t serving,
                                                       cdn::ContentId id) const;

  /// The breaker guarding one gateway's bent pipe, or nullptr when breakers
  /// are disabled.  Lazily sizes the breaker set on first use.
  [[nodiscard]] CircuitBreaker* breaker_for(std::size_t gateway) const;

  /// Points one breaker's transition hook at breaker_listener_.
  void wire_breaker(std::size_t gateway) const;

  /// One fault-aware attempt across the three tiers from `serving`.  When a
  /// tracer is installed, tier spans are appended to `trace` under
  /// `parent_span` (pass nullptr to skip tracing).
  [[nodiscard]] std::optional<FetchResult> attempt_from(std::uint32_t serving,
                                                        const geo::GeoPoint& client,
                                                        const data::CountryInfo& country,
                                                        const cdn::ContentItem& item,
                                                        des::Rng& rng, Milliseconds now,
                                                        obs::TraceBuilder* trace,
                                                        std::uint32_t parent_span);

  const lsn::StarlinkNetwork* network_;
  SatelliteFleet* fleet_;
  cdn::CdnDeployment* ground_cdn_;
  RouterConfig config_;
  ServingFilter serving_filter_;
  const PlacementMap* placement_map_ = nullptr;
  bool ground_only_ = false;
  /// Per-gateway bent-pipe breakers, lazily sized on first use; stays empty
  /// while breakers are disabled so the default path costs nothing.
  mutable std::vector<CircuitBreaker> gateway_breakers_;
  BreakerListener breaker_listener_;
};

}  // namespace spacecdn::space
