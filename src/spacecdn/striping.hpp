// Video striping across successive satellites (paper section 4).
//
// "A video object can be striped ... such that the first stripe of n
// minutes is cached on the first satellite if it will be visible to the
// user for the first n minutes of playback; the next few stripes can be
// located on the second satellite which will be overhead of the user while
// its stripes are being served ... subsequent stripes can be uploaded onto
// the caches of the satellites that follow, thereby hiding the latency of
// the bent pipe."
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lsn/starlink.hpp"
#include "orbit/ephemeris.hpp"
#include "spacecdn/fleet.hpp"

namespace spacecdn::space {

/// Erasure-code geometry for fragment-striped placement (PlacementMap's
/// jump-ec mode): an object splits into `data` fragments of size/data each
/// plus `parity` coded fragments of the same size, one satellite per
/// fragment; any `data` of the data+parity fragments reconstruct it.
struct ErasureProfile {
  std::uint32_t data = 4;
  std::uint32_t parity = 2;
  [[nodiscard]] std::uint32_t fragments() const noexcept { return data + parity; }
  /// Storage expansion over the raw object: (data + parity) / data.
  [[nodiscard]] double overhead() const noexcept {
    return data > 0 ? static_cast<double>(data + parity) / static_cast<double>(data)
                    : 0.0;
  }
};

/// One stripe of a striped video: a playback interval bound to the
/// satellite that will be overhead during it.
struct StripeAssignment {
  std::uint32_t index = 0;
  Milliseconds start{0.0};  ///< playback time the stripe begins
  Milliseconds end{0.0};
  /// Satellite overhead of the viewer during the interval (nullopt =
  /// coverage gap; the stripe must come from the ground).
  std::optional<std::uint32_t> satellite;
};

/// Plans stripe-to-satellite assignments from the orbital ephemeris.
class StripingPlanner {
 public:
  StripingPlanner(const orbit::WalkerConstellation& constellation,
                  double user_min_elevation_deg = 25.0);

  /// Splits [start, start + video_duration) into stripes of
  /// `stripe_duration` and assigns each the satellite serving `user` at the
  /// stripe's midpoint.
  /// @throws spacecdn::ConfigError on non-positive durations.
  [[nodiscard]] std::vector<StripeAssignment> plan(const geo::GeoPoint& user,
                                                   Milliseconds start,
                                                   Milliseconds video_duration,
                                                   Milliseconds stripe_duration) const;

 private:
  const orbit::WalkerConstellation* constellation_;
  double user_min_elevation_deg_;
};

/// Result of simulating one playback session.
struct PlaybackReport {
  std::uint32_t stripes_total = 0;
  std::uint32_t stripes_from_space = 0;  ///< served by the overhead satellite
  std::uint32_t stripes_from_ground = 0;
  Milliseconds startup_latency{0.0};  ///< first-byte time of stripe 0
  /// Mean/worst first-byte RTT across stripes.
  Milliseconds mean_stripe_rtt{0.0};
  Milliseconds worst_stripe_rtt{0.0};
  /// Bytes pre-positioned onto satellites over the bent pipe, invisible to
  /// the viewer (the cost hidden by striping).
  Megabytes prefetch_upload{0.0};
};

/// Simulates striped playback against ground-CDN playback.
class StripedPlaybackSimulator {
 public:
  StripedPlaybackSimulator(const lsn::StarlinkNetwork& network,
                           const StripingPlanner& planner);

  /// Striped session: each stripe's first byte comes from the satellite
  /// overhead at that moment (pre-positioned), falling back to the bent
  /// pipe during coverage gaps.
  [[nodiscard]] PlaybackReport simulate_striped(const geo::GeoPoint& user,
                                                const data::CountryInfo& country,
                                                Milliseconds video_duration,
                                                Milliseconds stripe_duration,
                                                Megabytes stripe_size, des::Rng& rng) const;

  /// Baseline: every stripe fetched over today's bent-pipe CDN path.
  [[nodiscard]] PlaybackReport simulate_ground(const geo::GeoPoint& user,
                                               const data::CountryInfo& country,
                                               Milliseconds video_duration,
                                               Milliseconds stripe_duration,
                                               Megabytes stripe_size, des::Rng& rng) const;

 private:
  const lsn::StarlinkNetwork* network_;
  const StripingPlanner* planner_;
};

}  // namespace spacecdn::space
