#include "spacecdn/space_vm.hpp"

#include <algorithm>

#include "geo/propagation.hpp"
#include "orbit/ephemeris.hpp"
#include "util/error.hpp"

namespace spacecdn::space {

SpaceVmOrchestrator::SpaceVmOrchestrator(const orbit::WalkerConstellation& constellation,
                                         VmConfig config, double min_elevation_deg)
    : constellation_(&constellation),
      config_(config),
      tracker_(constellation, min_elevation_deg) {
  SPACECDN_EXPECT(config.isl_bandwidth.value() > 0.0, "ISL bandwidth must be positive");
  SPACECDN_EXPECT(config.sync_interval.value() > 0.0, "sync interval must be positive");
  SPACECDN_EXPECT(
      config.residual_dirty_fraction >= 0.0 && config.residual_dirty_fraction <= 1.0,
      "residual dirty fraction must be within [0, 1]");
}

Milliseconds SpaceVmOrchestrator::transfer_time(Megabytes size,
                                                Kilometers distance) const {
  return geo::propagation_delay(distance, geo::Medium::kVacuum) +
         transmission_delay(size, config_.isl_bandwidth);
}

std::vector<MigrationEvent> SpaceVmOrchestrator::plan_migrations(
    const geo::GeoPoint& area, Milliseconds start, Milliseconds end,
    des::Rng& rng) const {
  const auto timeline = tracker_.timeline(area, start, end);
  std::vector<MigrationEvent> out;

  const lsn::ServingInterval* previous = nullptr;
  for (const auto& interval : timeline) {
    if (!interval.satellite) continue;  // outage: no one to migrate to yet
    if (previous != nullptr && previous->satellite &&
        *previous->satellite != *interval.satellite) {
      MigrationEvent event;
      event.at = interval.start;
      event.from_satellite = *previous->satellite;
      event.to_satellite = *interval.satellite;
      // Residual dirty state pushed during stop-and-copy, over the actual
      // ISL distance between the two satellites at handover time.
      const orbit::EphemerisSnapshot snapshot(*constellation_, interval.start);
      const Kilometers distance =
          snapshot.isl_distance(event.from_satellite, event.to_satellite);
      const Megabytes residual{
          rng.lognormal_median(config_.state_delta.value(), config_.delta_sigma) *
          config_.residual_dirty_fraction};
      event.switchover = transfer_time(residual, distance);
      out.push_back(event);
    }
    previous = &interval;
  }
  return out;
}

VmRunReport SpaceVmOrchestrator::run(const geo::GeoPoint& area, Milliseconds start,
                                     Milliseconds end, des::Rng& rng) const {
  VmRunReport report;
  const auto timeline = tracker_.timeline(area, start, end);
  const auto migrations = plan_migrations(area, start, end, rng);

  report.migrations = static_cast<std::uint32_t>(migrations.size());
  double switchover_total = 0.0;
  for (const auto& m : migrations) {
    switchover_total += m.switchover.value();
    report.worst_switchover =
        Milliseconds{std::max(report.worst_switchover.value(), m.switchover.value())};
    report.migration_traffic += Megabytes{
        config_.state_delta.value() * config_.residual_dirty_fraction};
  }
  if (!migrations.empty()) {
    report.mean_switchover =
        Milliseconds{switchover_total / static_cast<double>(migrations.size())};
  }

  // Background sync traffic: one delta per sync interval while served.
  double served_ms = 0.0;
  for (const auto& interval : timeline) {
    if (interval.satellite) served_ms += interval.duration().value();
  }
  const double syncs = served_ms / config_.sync_interval.value();
  report.sync_traffic = Megabytes{syncs * config_.state_delta.value()};

  const double window_ms = (end - start).value();
  const double downtime = switchover_total + (window_ms - served_ms);
  report.continuity = window_ms > 0 ? std::max(0.0, 1.0 - downtime / window_ms) : 1.0;
  return report;
}

}  // namespace spacecdn::space
