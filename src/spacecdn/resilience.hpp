// Self-healing SpaceCDN: applying fault events and repairing the damage.
//
// Two cooperating pieces sit on top of the faults/ schedule:
//
//  * ChurnController translates faults::FaultEvent into state transitions on
//    the live network and fleet -- ISL surgery on lsn::IslNetwork, gateway
//    masks on the ground segment, online/cache-process flags on the
//    SatelliteFleet -- and keeps per-satellite flags so that independent
//    fault processes (a laser flap during a whole-satellite outage) compose
//    correctly.
//
//  * RepairDaemon periodically audits the placement invariant and
//    re-replicates under-replicated objects from surviving space holders (or
//    the ground origin as a last resort), restoring the redundancy a cache
//    crash destroyed.  It reports time-to-repair so churn experiments can
//    quantify how long the constellation runs degraded.  Against the legacy
//    ContentPlacement it re-audits every slot each scan; against a
//    PlacementMap it runs in *delta* mode -- diff the membership snapshot it
//    last synced against the current one and move only the changed
//    assignments, which is the bytes-moved metric bench/ablation_placement_map
//    compares across policies.
#pragma once

#include <cstdint>
#include <vector>

#include "des/simulator.hpp"
#include "des/stats.hpp"
#include "faults/schedule.hpp"
#include "lsn/starlink.hpp"
#include "spacecdn/fleet.hpp"
#include "spacecdn/placement.hpp"
#include "spacecdn/placement_map.hpp"

namespace spacecdn::space {

/// Applies fault-schedule events to a StarlinkNetwork + SatelliteFleet pair.
class ChurnController {
 public:
  /// Per-class transition counters (for reporting).
  struct Counters {
    std::uint64_t satellite_failures = 0;
    std::uint64_t satellite_recoveries = 0;
    std::uint64_t isl_flaps = 0;
    std::uint64_t isl_flap_recoveries = 0;
    std::uint64_t gateway_failures = 0;
    std::uint64_t gateway_recoveries = 0;
    std::uint64_t cache_crashes = 0;
    std::uint64_t cache_restores = 0;
  };

  ChurnController(lsn::StarlinkNetwork& network, SatelliteFleet& fleet);

  /// Applies one event.  Satellite/ISL-terminal processes on the same
  /// satellite compose: the ISLs stay down until *both* the whole-satellite
  /// outage and any laser flap have recovered.
  /// @throws spacecdn::ConfigError on an out-of-range target.
  void apply(const faults::FaultEvent& event);

  /// Mirrors per-satellite cache liveness (online AND cache process up AND
  /// duty-enabled) into a placement membership map on every satellite or
  /// cache-node transition.  The map is synced in full on attach; pass
  /// nullptr to detach.
  void set_membership(MembershipMap* membership);

  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

  /// Satellites currently fully offline (power fault, not just a flap).
  [[nodiscard]] std::uint32_t satellites_down() const noexcept { return sats_down_; }

 private:
  void sync_isl(std::uint32_t sat);
  void sync_membership(std::uint32_t sat);

  lsn::StarlinkNetwork* network_;
  SatelliteFleet* fleet_;
  MembershipMap* membership_ = nullptr;
  std::vector<bool> sat_down_;
  std::vector<bool> isl_flapped_;
  std::uint32_t sats_down_ = 0;
  Counters counters_;
};

/// Repair-daemon policy.
struct RepairConfig {
  /// Audit cadence; the paper-scale default is one placement scan per
  /// five simulated minutes.
  Milliseconds scan_interval{300'000.0};
};

/// Result of one placement audit (and the running totals).
struct RepairReport {
  std::uint64_t objects_scanned = 0;
  std::uint64_t under_replicated = 0;  ///< missing (object, replica-slot) pairs
  std::uint64_t re_replicated = 0;     ///< restored from a surviving space holder
  std::uint64_t ground_refills = 0;    ///< restored from the ground origin
  std::uint64_t unrepairable = 0;      ///< slot offline; deferred to a later scan
  /// Copies re-positioned because a membership delta re-routed their
  /// assignment (map mode; subset of re_replicated + ground_refills).
  std::uint64_t moved = 0;
  /// Stale copies dropped from satellites an object no longer maps to (map
  /// mode; local deletes, no network cost).
  std::uint64_t evicted_stale = 0;
  /// Repair traffic injected into the constellation: megabytes of every
  /// copy (or erasure fragment) the daemon installed.
  double bytes_moved_mb = 0.0;

  RepairReport& operator+=(const RepairReport& other) noexcept;
};

/// Detects and repairs under-replication against a ContentPlacement.
class RepairDaemon {
 public:
  /// @param catalog  the objects whose placement invariant the daemon
  /// guards; copied so the daemon owns its audit list.
  RepairDaemon(SatelliteFleet& fleet, const ContentPlacement& placement,
               std::vector<cdn::ContentItem> catalog, RepairConfig config = {});

  /// Map-mode daemon: audits a PlacementMap in delta mode.  Each scan moves
  /// only the (object, slot) assignments that changed since the membership
  /// snapshot it last synced -- plus crash-lost copies -- and evicts stale
  /// copies from satellites an object no longer maps to.  The map must
  /// outlive the daemon.
  RepairDaemon(SatelliteFleet& fleet, const PlacementMap& map,
               std::vector<cdn::ContentItem> catalog, RepairConfig config = {});

  /// Records a cache crash (the churn controller calls this) so the next
  /// completed repair yields a time-to-repair sample.
  void note_crash(std::uint32_t sat, Milliseconds at);

  /// One audit pass: every missing replica on a live, duty-enabled slot is
  /// re-inserted from a surviving replica holder, or the ground origin when
  /// every space copy died.  Slots that are offline stay unrepaired until a
  /// later pass finds them back up.
  RepairReport run_once(Milliseconds now);

  /// Schedules run_once every scan_interval on `sim` until `horizon`.
  /// The daemon must outlive the simulation run.
  void install(des::Simulator& sim, Milliseconds horizon);

  [[nodiscard]] const RepairReport& totals() const noexcept { return totals_; }
  [[nodiscard]] std::uint64_t scans() const noexcept { return scans_; }
  /// Crash-to-fully-repaired durations (ms) of every closed crash.
  [[nodiscard]] const des::SampleSet& time_to_repair() const noexcept {
    return time_to_repair_;
  }
  [[nodiscard]] std::size_t open_crashes() const noexcept {
    return open_crashes_.size();
  }
  [[nodiscard]] const RepairConfig& config() const noexcept { return config_; }

  /// Total repair megabytes installed so far (totals().bytes_moved_mb).
  [[nodiscard]] Megabytes bytes_moved() const noexcept {
    return Megabytes{totals_.bytes_moved_mb};
  }

 private:
  /// Whether every object with `sat` in its replica set is present there.
  [[nodiscard]] bool fully_replicated_on(std::uint32_t sat) const;
  /// Holders of `id` under the daemon's current placement source.
  [[nodiscard]] std::vector<std::uint32_t> current_replicas(cdn::ContentId id) const;
  void audit_placement(Milliseconds now, RepairReport& report);
  void audit_map(Milliseconds now, RepairReport& report);

  SatelliteFleet* fleet_;
  const ContentPlacement* placement_ = nullptr;
  const PlacementMap* map_ = nullptr;
  std::vector<cdn::ContentItem> catalog_;
  RepairConfig config_;
  RepairReport totals_;
  std::uint64_t scans_ = 0;
  std::vector<std::pair<std::uint32_t, Milliseconds>> open_crashes_;
  des::SampleSet time_to_repair_;
  // Delta-repair state (map mode): the membership snapshot the fleet's cache
  // contents were last reconciled against.
  std::vector<bool> synced_live_;
  std::uint64_t synced_version_ = 0;
};

}  // namespace spacecdn::space
