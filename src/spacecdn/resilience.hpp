// Self-healing SpaceCDN: applying fault events and repairing the damage.
//
// Two cooperating pieces sit on top of the faults/ schedule:
//
//  * ChurnController translates faults::FaultEvent into state transitions on
//    the live network and fleet -- ISL surgery on lsn::IslNetwork, gateway
//    masks on the ground segment, online/cache-process flags on the
//    SatelliteFleet -- and keeps per-satellite flags so that independent
//    fault processes (a laser flap during a whole-satellite outage) compose
//    correctly.
//
//  * RepairDaemon periodically audits the k-copies-per-plane placement
//    invariant and re-replicates under-replicated objects from surviving
//    space holders (or the ground origin as a last resort), restoring the
//    redundancy a cache crash destroyed.  It reports time-to-repair so churn
//    experiments can quantify how long the constellation runs degraded.
#pragma once

#include <cstdint>
#include <vector>

#include "des/simulator.hpp"
#include "des/stats.hpp"
#include "faults/schedule.hpp"
#include "lsn/starlink.hpp"
#include "spacecdn/fleet.hpp"
#include "spacecdn/placement.hpp"

namespace spacecdn::space {

/// Applies fault-schedule events to a StarlinkNetwork + SatelliteFleet pair.
class ChurnController {
 public:
  /// Per-class transition counters (for reporting).
  struct Counters {
    std::uint64_t satellite_failures = 0;
    std::uint64_t satellite_recoveries = 0;
    std::uint64_t isl_flaps = 0;
    std::uint64_t isl_flap_recoveries = 0;
    std::uint64_t gateway_failures = 0;
    std::uint64_t gateway_recoveries = 0;
    std::uint64_t cache_crashes = 0;
    std::uint64_t cache_restores = 0;
  };

  ChurnController(lsn::StarlinkNetwork& network, SatelliteFleet& fleet);

  /// Applies one event.  Satellite/ISL-terminal processes on the same
  /// satellite compose: the ISLs stay down until *both* the whole-satellite
  /// outage and any laser flap have recovered.
  /// @throws spacecdn::ConfigError on an out-of-range target.
  void apply(const faults::FaultEvent& event);

  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

  /// Satellites currently fully offline (power fault, not just a flap).
  [[nodiscard]] std::uint32_t satellites_down() const noexcept { return sats_down_; }

 private:
  void sync_isl(std::uint32_t sat);

  lsn::StarlinkNetwork* network_;
  SatelliteFleet* fleet_;
  std::vector<bool> sat_down_;
  std::vector<bool> isl_flapped_;
  std::uint32_t sats_down_ = 0;
  Counters counters_;
};

/// Repair-daemon policy.
struct RepairConfig {
  /// Audit cadence; the paper-scale default is one placement scan per
  /// five simulated minutes.
  Milliseconds scan_interval{300'000.0};
};

/// Result of one placement audit (and the running totals).
struct RepairReport {
  std::uint64_t objects_scanned = 0;
  std::uint64_t under_replicated = 0;  ///< missing (object, replica-slot) pairs
  std::uint64_t re_replicated = 0;     ///< restored from a surviving space holder
  std::uint64_t ground_refills = 0;    ///< restored from the ground origin
  std::uint64_t unrepairable = 0;      ///< slot offline; deferred to a later scan

  RepairReport& operator+=(const RepairReport& other) noexcept;
};

/// Detects and repairs under-replication against a ContentPlacement.
class RepairDaemon {
 public:
  /// @param catalog  the objects whose placement invariant the daemon
  /// guards; copied so the daemon owns its audit list.
  RepairDaemon(SatelliteFleet& fleet, const ContentPlacement& placement,
               std::vector<cdn::ContentItem> catalog, RepairConfig config = {});

  /// Records a cache crash (the churn controller calls this) so the next
  /// completed repair yields a time-to-repair sample.
  void note_crash(std::uint32_t sat, Milliseconds at);

  /// One audit pass: every missing replica on a live, duty-enabled slot is
  /// re-inserted from a surviving replica holder, or the ground origin when
  /// every space copy died.  Slots that are offline stay unrepaired until a
  /// later pass finds them back up.
  RepairReport run_once(Milliseconds now);

  /// Schedules run_once every scan_interval on `sim` until `horizon`.
  /// The daemon must outlive the simulation run.
  void install(des::Simulator& sim, Milliseconds horizon);

  [[nodiscard]] const RepairReport& totals() const noexcept { return totals_; }
  [[nodiscard]] std::uint64_t scans() const noexcept { return scans_; }
  /// Crash-to-fully-repaired durations (ms) of every closed crash.
  [[nodiscard]] const des::SampleSet& time_to_repair() const noexcept {
    return time_to_repair_;
  }
  [[nodiscard]] std::size_t open_crashes() const noexcept {
    return open_crashes_.size();
  }
  [[nodiscard]] const RepairConfig& config() const noexcept { return config_; }

 private:
  /// Whether every object with `sat` in its replica set is present there.
  [[nodiscard]] bool fully_replicated_on(std::uint32_t sat) const;

  SatelliteFleet* fleet_;
  const ContentPlacement* placement_;
  std::vector<cdn::ContentItem> catalog_;
  RepairConfig config_;
  RepairReport totals_;
  std::uint64_t scans_ = 0;
  std::vector<std::pair<std::uint32_t, Milliseconds>> open_crashes_;
  des::SampleSet time_to_repair_;
};

}  // namespace spacecdn::space
