// Space VMs: stateful edge services on moving satellites.
//
// Paper section 5: "we plan to explore the possibility of locating
// replicated VMs on successive satellites that will be serving a geographic
// area, and use techniques developed for VM migration in data centers to
// sync the state change deltas (~< 100 MBs) from the satellite currently
// serving an area to the satellite(s) which will be overhead next, thereby
// providing seamless operations".
//
// The orchestrator anchors a VM to a geographic service area, follows the
// serving-satellite timeline (handovers every few minutes), pre-copies state
// deltas to the successor over ISLs, and accounts the switchover downtime
// and sync traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "des/random.hpp"
#include "geo/coordinates.hpp"
#include "lsn/handover.hpp"
#include "orbit/walker.hpp"

namespace spacecdn::space {

/// Service/VM parameters.
struct VmConfig {
  Megabytes image_size{2000.0};  ///< full image, shipped once per satellite
  /// Mean accumulated dirty state between syncs; the paper's "< 100 MB".
  Megabytes state_delta{80.0};
  double delta_sigma = 0.4;        ///< lognormal spread of delta sizes
  Mbps isl_bandwidth{2000.0};      ///< optical ISL line rate
  Milliseconds sync_interval{5000.0};  ///< background delta sync cadence
  /// Fraction of the final delta still dirty at switchover (pre-copy leaves
  /// a residual working set, as in live VM migration).
  double residual_dirty_fraction = 0.15;
};

/// One handover-driven migration event.
struct MigrationEvent {
  Milliseconds at{0.0};
  std::uint32_t from_satellite = 0;
  std::uint32_t to_satellite = 0;
  /// Stop-and-copy time: residual delta over the ISL path (the service is
  /// unavailable for this long).
  Milliseconds switchover{0.0};
};

/// Aggregate outcome of running a service over a window.
struct VmRunReport {
  std::uint32_t migrations = 0;
  Milliseconds mean_switchover{0.0};
  Milliseconds worst_switchover{0.0};
  Megabytes sync_traffic{0.0};      ///< background delta traffic over ISLs
  Megabytes migration_traffic{0.0}; ///< stop-and-copy residual transfers
  /// Fraction of the window the service was reachable (excludes switchover
  /// downtime and coverage outages).
  double continuity = 1.0;
};

/// Plans and accounts VM replication across successive serving satellites.
class SpaceVmOrchestrator {
 public:
  SpaceVmOrchestrator(const orbit::WalkerConstellation& constellation, VmConfig config,
                      double min_elevation_deg = 25.0);

  [[nodiscard]] const VmConfig& config() const noexcept { return config_; }

  /// Time to push one state delta of `size` to a satellite `distance` away:
  /// ISL propagation plus transmission at the ISL line rate.
  [[nodiscard]] Milliseconds transfer_time(Megabytes size, Kilometers distance) const;

  /// Runs the service anchored at `area` over [start, end) and returns the
  /// migration/continuity accounting.
  [[nodiscard]] VmRunReport run(const geo::GeoPoint& area, Milliseconds start,
                                Milliseconds end, des::Rng& rng) const;

  /// The migration events alone (for inspection/tests).
  [[nodiscard]] std::vector<MigrationEvent> plan_migrations(const geo::GeoPoint& area,
                                                            Milliseconds start,
                                                            Milliseconds end,
                                                            des::Rng& rng) const;

 private:
  const orbit::WalkerConstellation* constellation_;
  VmConfig config_;
  lsn::HandoverTracker tracker_;
};

}  // namespace spacecdn::space
