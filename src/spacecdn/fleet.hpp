// The satellite cache fleet: one cache per satellite, with a duty-cycle
// enable mask.
//
// Paper section 5 sizes this: a COTS edge server carries ~150 TB of storage,
// so 6,000 satellites could host >900 PB -- more than 300 million 2-hour
// 1080p videos.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cdn/cache.hpp"

namespace spacecdn::space {

/// Fleet-wide cache configuration.
struct FleetConfig {
  /// Per-satellite storage (attached to the in-orbit server; paper cites the
  /// HPE DL325's ~150 TB).
  Megabytes capacity_per_satellite{150'000'000.0 / 1000.0};  // 150 TB in MB
  cdn::CachePolicy policy = cdn::CachePolicy::kLru;
};

/// Per-satellite caches plus the duty-cycle mask (which satellites currently
/// *serve* as caches; the rest only relay).
class SatelliteFleet {
 public:
  SatelliteFleet(std::uint32_t satellite_count, const FleetConfig& config);

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(caches_.size());
  }
  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }

  [[nodiscard]] cdn::Cache& cache(std::uint32_t sat);
  [[nodiscard]] const cdn::Cache& cache(std::uint32_t sat) const;

  /// Whether `sat` currently offers cache service: duty-cycle enabled AND
  /// the satellite is online AND its cache process is up.
  [[nodiscard]] bool cache_enabled(std::uint32_t sat) const;

  /// Enables every satellite as a cache (the default).
  void enable_all();

  /// Enables exactly the given satellites; everything else becomes a relay.
  void set_enabled(const std::vector<std::uint32_t>& sats);

  [[nodiscard]] std::uint32_t enabled_count() const noexcept;

  // --- failure injection (spacecdn/resilience drives these) ---

  /// Whole-satellite power state.  An offline satellite neither serves
  /// clients nor offers its cache; its contents survive (the bus rebooted,
  /// the disks did not die).
  void set_online(std::uint32_t sat, bool online);
  [[nodiscard]] bool online(std::uint32_t sat) const;

  /// Crashes the cache process on `sat`: all cached contents are lost and
  /// the cache stays down until restore_cache().
  void crash_cache(std::uint32_t sat);

  /// Brings a crashed cache back online -- empty, awaiting re-replication.
  void restore_cache(std::uint32_t sat);
  [[nodiscard]] bool cache_up(std::uint32_t sat) const;

  /// True when `sat` is cache-enabled and holds `id` (no stats update).
  [[nodiscard]] bool holds(std::uint32_t sat, cdn::ContentId id) const;

  /// Aggregated stats over all satellite caches.
  [[nodiscard]] cdn::CacheStats aggregate_stats() const noexcept;

  /// Total fleet storage.
  [[nodiscard]] Megabytes total_capacity() const noexcept;

 private:
  FleetConfig config_;
  std::vector<std::unique_ptr<cdn::Cache>> caches_;
  std::vector<bool> enabled_;
  std::vector<bool> online_;    // whole-satellite power (fault injection)
  std::vector<bool> cache_up_;  // cache process alive (crashes drop contents)
};

}  // namespace spacecdn::space
